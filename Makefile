# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

examples:
	for e in quickstart kv_cache process_launch sparse_analytics \
	         durable_log shared_pointers external_sort; do \
	  echo "== $$e"; dune exec examples/$$e.exe; done

clean:
	dune clean

# Build + tests + a metrics smoke run whose JSON must parse. CI runs this.
# (No fmt step: the repo has no .ocamlformat, so @fmt is not configured.)
check:
	dune build @all
	dune runtest
	dune exec bin/o1mem_cli.exe -- metrics --compact > metrics_smoke.json
	python3 -m json.tool metrics_smoke.json > /dev/null && echo "metrics JSON ok"

# Regression gate: regenerate the bench JSON and diff it against the most
# recent committed BENCH_*.json baseline. Fails on >10% metric drift or
# any complexity-class downgrade. CI runs this after `make check`.
bench-diff:
	dune exec bench/main.exe -- --json --out fresh_bench.json
	dune exec bin/o1mem_cli.exe -- bench-diff \
	  $$(ls BENCH_*.json | sort | tail -1) fresh_bench.json --threshold 10

# Host wall-clock ops/sec over the end-to-end scenarios (the one
# non-deterministic harness; see EXPERIMENTS.md "Throughput harness").
throughput:
	dune exec bench/main.exe -- --throughput

# P1 cycle-attribution call trees for the churn workload, both heap
# backends (see EXPERIMENTS.md "P1 — where do the cycles go?").
profile:
	dune exec bin/o1mem_cli.exe -- profile --backend malloc
	dune exec bin/o1mem_cli.exe -- profile --backend fom

# H1 host-cost attribution: what the HOST pays per simulated op — ranked
# tables of self host-ns and self allocated words per call-tree path,
# plus a collapsed-stack file for flamegraph.pl / speedscope (see
# EXPERIMENTS.md "H1 — what does the host pay?").
hotspots:
	dune exec bin/o1mem_cli.exe -- hotspots --backend malloc
	dune exec bin/o1mem_cli.exe -- hotspots --backend fom
	dune exec bin/o1mem_cli.exe -- hotspots --backend fom --format collapsed > hotspots.collapsed
	@echo "wrote hotspots.collapsed ($$(wc -l < hotspots.collapsed) stacks)"

# T1 Chrome timeline for the 4-core migration workload: per-core slices,
# causal flow arrows, sampled busy counters. Load timeline.json in
# chrome://tracing or https://ui.perfetto.dev.
timeline:
	dune exec bin/o1mem_cli.exe -- timeline > timeline.json
	python3 -m json.tool timeline.json > /dev/null && echo "timeline.json ok"

# T1 makespan decomposition + machine-checked O(1) batched critical path.
# Exit 1 if attribution falls below 95% or a hop-count sweep misses its
# class. CI runs this.
critical-path:
	dune exec bin/o1mem_cli.exe -- critical-path

# R1/R2 chaos matrix: crash-at-every-step explorers (WAL, FOM fs, and
# the persistent store with its torn/flip damage arms) plus every named
# fault plan under a fixed seed matrix, then the store end-to-end
# crash/recovery demo. Exit 1 on any unexpected invariant violation
# (see EXPERIMENTS.md "R1 — does it survive?" and "R2 — does the store
# survive?"). CI runs this.
chaos:
	dune exec bin/o1mem_cli.exe -- faults --seed 42 --plan each --explore
	dune exec bin/o1mem_cli.exe -- faults --seed 7 --plan each
	dune exec bin/o1mem_cli.exe -- faults --seed 2017 --plan each
	dune exec bin/o1mem_cli.exe -- faults --seed 99 --plan tlb --rounds 32
	dune exec bin/o1mem_cli.exe -- faults --seed 31 --plan store --rounds 24
	dune exec bin/o1mem_cli.exe -- store

.PHONY: all test test-verbose bench examples clean check bench-diff throughput profile hotspots chaos timeline critical-path
