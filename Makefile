# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

examples:
	for e in quickstart kv_cache process_launch sparse_analytics \
	         durable_log shared_pointers external_sort; do \
	  echo "== $$e"; dune exec examples/$$e.exe; done

clean:
	dune clean

# Build + tests + a metrics smoke run whose JSON must parse. CI runs this.
# (No fmt step: the repo has no .ocamlformat, so @fmt is not configured.)
check:
	dune build @all
	dune runtest
	dune exec bin/o1mem_cli.exe -- metrics --compact > metrics_smoke.json
	python3 -m json.tool metrics_smoke.json > /dev/null && echo "metrics JSON ok"

.PHONY: all test test-verbose bench examples clean check
