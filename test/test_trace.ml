open Helpers

let mk ?(capacity = 4) () =
  let clock = mk_clock () in
  (Sim.Trace.create ~clock ~capacity (), clock)

let test_create_validation () =
  let clock = mk_clock () in
  Alcotest.check_raises "zero capacity" (Invalid_argument "Trace.create: capacity must be positive")
    (fun () -> ignore (Sim.Trace.create ~clock ~capacity:0 ()))

let test_ring_wraparound () =
  let tr, clock = mk () in
  for i = 1 to 6 do
    let start = Sim.Clock.now clock in
    Sim.Clock.charge clock i;
    Sim.Trace.record tr ~op:"op" ~start ~arg:i ()
  done;
  check_int "recorded counts everything" 6 (Sim.Trace.recorded tr);
  check_int "dropped = recorded - capacity" 2 (Sim.Trace.dropped tr);
  let evs = Sim.Trace.events tr in
  check_int "ring retains capacity events" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest retained first, newest last" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Sim.Trace.arg) evs);
  List.iter
    (fun e -> check_int "latency matches the charge" e.Sim.Trace.arg (e.Sim.Trace.finish - e.Sim.Trace.start))
    evs;
  (match Sim.Trace.latency tr "op" with
  | Some h -> check_int "histogram keeps even dropped samples" 6 (Sim.Histogram.count h)
  | None -> Alcotest.fail "latency histogram missing");
  Sim.Trace.reset tr;
  check_int "reset clears recorded" 0 (Sim.Trace.recorded tr);
  check_int "reset clears events" 0 (List.length (Sim.Trace.events tr))

let test_span_nesting () =
  let tr, clock = mk () in
  let v =
    Sim.Trace.span tr ~op:"outer" (fun () ->
        Sim.Clock.charge clock 5;
        let inner = Sim.Trace.span tr ~op:"inner" (fun () -> Sim.Clock.charge clock 7; 1) in
        Sim.Clock.charge clock 2;
        inner + 1)
  in
  check_int "span returns f's value" 2 v;
  let lat op =
    match Sim.Trace.latency tr op with
    | Some h -> Sim.Histogram.max_value h
    | None -> Alcotest.fail (op ^ " not recorded")
  in
  check_int "inner span charges only its own work" 7 (lat "inner");
  check_int "outer span covers inner + its own work" 14 (lat "outer");
  Alcotest.(check (list string)) "inner completes (records) before outer" [ "inner"; "outer" ]
    (List.map (fun e -> e.Sim.Trace.op) (Sim.Trace.events tr))

let test_span_outcome_and_exception () =
  let tr, clock = mk () in
  let n =
    Sim.Trace.span tr ~op:"probe" ~outcome:(fun n -> if n > 0 then "hit" else "miss") (fun () -> 3)
  in
  check_int "value through outcome mapping" 3 n;
  (try
     Sim.Trace.span tr ~op:"boom" (fun () ->
         Sim.Clock.charge clock 3;
         failwith "x")
   with Failure _ -> ());
  match Sim.Trace.events tr with
  | [ probe; boom ] ->
    check_string "mapped outcome" "hit" probe.Sim.Trace.outcome;
    check_string "exception records raised" "raised" boom.Sim.Trace.outcome;
    check_int "latency up to the raise" 3 (boom.Sim.Trace.finish - boom.Sim.Trace.start)
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length evs))

let test_disabled_sentinel () =
  let tr = Sim.Trace.disabled in
  check_bool "disabled" false (Sim.Trace.enabled tr);
  Sim.Trace.record tr ~op:"x" ~start:0 ();
  check_int "record is a no-op" 0 (Sim.Trace.recorded tr);
  check_int "span still runs f" 9 (Sim.Trace.span tr ~op:"x" (fun () -> 9));
  check_int "no events" 0 (List.length (Sim.Trace.events tr))

let test_json_well_formed () =
  let tr, clock = mk ~capacity:8 () in
  let start = Sim.Clock.now clock in
  Sim.Clock.charge clock 11;
  Sim.Trace.record tr ~op:"needs \"escaping\"\n" ~start ~arg:4096 ~outcome:"hit" ();
  Sim.Trace.record tr ~op:"walk" ~start ~arg:2 ();
  let s = Sim.Json.to_string ~pretty:true (Sim.Trace.to_json tr) in
  match Sim.Json.of_string s with
  | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
  | Ok v ->
    check_bool "ops object present" true (Sim.Json.member v "ops" <> None);
    (match Sim.Json.member v "recorded" with
    | Some (Sim.Json.Int n) -> check_int "recorded field" 2 n
    | _ -> Alcotest.fail "recorded field missing");
    (match Sim.Json.member v "events" with
    | Some (Sim.Json.List evs) -> check_int "both events exported" 2 (List.length evs)
    | _ -> Alcotest.fail "events field missing")

let test_json_events_limit () =
  let tr, clock = mk ~capacity:8 () in
  for i = 1 to 5 do
    let start = Sim.Clock.now clock in
    Sim.Clock.charge clock 1;
    Sim.Trace.record tr ~op:"op" ~start ~arg:i ()
  done;
  match Sim.Json.member (Sim.Trace.to_json ~events_limit:2 tr) "events" with
  | Some (Sim.Json.List evs) ->
    check_int "limited to newest 2" 2 (List.length evs);
    let args =
      List.map (fun e -> match Sim.Json.member e "arg" with Some (Sim.Json.Int a) -> a | _ -> -1) evs
    in
    Alcotest.(check (list int)) "keeps the newest events" [ 4; 5 ] args
  | _ -> Alcotest.fail "events field missing"

let test_json_op_ring_occupancy () =
  let tr, clock = mk () in
  (* 6 "hot" records against capacity 4: the ring wraps, so the op summary
     must distinguish total recorded from events still in the ring. *)
  for i = 1 to 6 do
    let start = Sim.Clock.now clock in
    Sim.Clock.charge clock 1;
    Sim.Trace.record tr ~op:"hot" ~start ~arg:i ()
  done;
  let op_field name =
    match Sim.Json.member (Sim.Trace.to_json tr) "ops" with
    | Some ops -> (
      match Sim.Json.member ops "hot" with
      | Some summary -> (
        match Sim.Json.member summary name with
        | Some (Sim.Json.Int n) -> n
        | _ -> Alcotest.fail (name ^ " missing from op summary"))
      | None -> Alcotest.fail "hot op missing")
    | None -> Alcotest.fail "ops object missing"
  in
  check_int "recorded counts wrapped events" 6 (op_field "recorded");
  check_int "in_ring capped at capacity" 4 (op_field "in_ring")

let suite =
  [
    Alcotest.test_case "trace: create validation" `Quick test_create_validation;
    Alcotest.test_case "trace: ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "trace: span nesting" `Quick test_span_nesting;
    Alcotest.test_case "trace: span outcome + exception" `Quick test_span_outcome_and_exception;
    Alcotest.test_case "trace: disabled sentinel" `Quick test_disabled_sentinel;
    Alcotest.test_case "trace: JSON well-formed" `Quick test_json_well_formed;
    Alcotest.test_case "trace: JSON events_limit" `Quick test_json_events_limit;
    Alcotest.test_case "trace: JSON op recorded vs in_ring" `Quick test_json_op_ring_occupancy;
  ]
