(* Complexity fitting (Sim.Complexity) and the bench regression gate
   (Sim.Regress): fits on synthetic series with known scaling, plus
   document comparison including the failure modes the CLI gate relies
   on (threshold breaches, class downgrades, incompatible provenance). *)

open Helpers

module C = Sim.Complexity
module R = Sim.Regress

let check_float = Alcotest.(check (float 1e-6))

(* ----------------------------- least squares ----------------------------- *)

let test_lsq_exact_line () =
  let { C.slope; intercept; r2 } = C.least_squares [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ] in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept;
  check_float "r2 of exact fit" 1.0 r2

let test_lsq_flat_line () =
  (* All y equal: zero slope fits exactly, so r2 is reported as 1. *)
  let { C.slope; r2; _ } = C.least_squares [ (1.0, 4.0); (2.0, 4.0); (10.0, 4.0) ] in
  check_float "slope" 0.0 slope;
  check_float "r2" 1.0 r2

let test_lsq_rejects_degenerate () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Complexity.least_squares: need at least two points") (fun () ->
      ignore (C.least_squares [ (1.0, 1.0) ]));
  Alcotest.check_raises "all x equal"
    (Invalid_argument "Complexity.least_squares: all x coincide") (fun () ->
      ignore (C.least_squares [ (2.0, 1.0); (2.0, 5.0) ]))

(* ------------------------------ fit + classify ------------------------------ *)

let sizes = List.init 10 (fun i -> 1 lsl (2 * i + 2)) (* 4 .. 2^20, geometric *)

let test_fit_constant () =
  let f = C.fit (List.map (fun n -> (n, 700)) sizes) in
  check_string "class" "O(1)" (C.cls_name f.C.cls);
  check_float "exponent" 0.0 f.C.exponent;
  check_float "growth" 1.0 f.C.growth

let test_fit_logarithmic () =
  let f = C.fit (List.map (fun n -> (n, 50 * Sim.Units.log2_ceil n)) sizes) in
  check_string "class" "O(log n)" (C.cls_name f.C.cls);
  check_bool "exponent well below linear" true (f.C.exponent < 0.4);
  check_bool "but material growth" true (f.C.growth > 2.0)

let test_fit_linear () =
  let f = C.fit (List.map (fun n -> (n, 3 * n)) sizes) in
  check_string "class" "O(n)" (C.cls_name f.C.cls);
  Alcotest.(check (float 0.01)) "exponent ~1" 1.0 f.C.exponent;
  Alcotest.(check (float 0.01)) "r2 ~1" 1.0 f.C.r2

let test_fit_quadratic () =
  let f = C.fit (List.map (fun n -> (n, n * n)) (List.filteri (fun i _ -> i < 8) sizes)) in
  check_string "class" "O(n^2+)" (C.cls_name f.C.cls);
  Alcotest.(check (float 0.01)) "exponent ~2" 2.0 f.C.exponent

let test_fit_clamps_free_ops () =
  (* Zero-cost operations are clamped to 1 cycle, not log(0). *)
  let f = C.fit (List.map (fun n -> (n, 0)) sizes) in
  check_string "free op is O(1)" "O(1)" (C.cls_name f.C.cls)

let test_classify_thresholds () =
  check_string "1.4 is superlinear" "O(n^2+)" (C.cls_name (C.classify ~exponent:1.4 ~growth:1e6));
  check_string "0.6 is linear" "O(n)" (C.cls_name (C.classify ~exponent:0.6 ~growth:100.0));
  check_string "flat + growth is log" "O(log n)"
    (C.cls_name (C.classify ~exponent:0.1 ~growth:2.5));
  check_string "flat + no growth is constant" "O(1)"
    (C.cls_name (C.classify ~exponent:0.1 ~growth:1.5))

let test_cls_names_round_trip () =
  List.iter
    (fun c ->
      match C.cls_of_name (C.cls_name c) with
      | Some c' -> check_int "round trip" (C.rank c) (C.rank c')
      | None -> Alcotest.fail "cls_of_name rejected its own cls_name")
    [ C.Constant; C.Logarithmic; C.Linear; C.Superlinear ];
  check_bool "unknown name" true (C.cls_of_name "O(n log n)" = None);
  check_bool "rank order" true
    (C.rank C.Constant < C.rank C.Logarithmic
    && C.rank C.Logarithmic < C.rank C.Linear
    && C.rank C.Linear < C.rank C.Superlinear)

let test_fit_to_json () =
  let f = C.fit (List.map (fun n -> (n, 2 * n)) sizes) in
  let j = C.fit_to_json f in
  check_bool "class member" true (Sim.Json.member j "class" = Some (Sim.Json.String "O(n)"));
  List.iter
    (fun k -> check_bool k true (Sim.Json.member j k <> None))
    [ "exponent"; "r2"; "growth" ]

(* ------------------------------- regression gate ------------------------------- *)

(* A minimal metrics document in the o1mem.metrics/3 shape. *)
let doc ?(schema = "o1mem.metrics/3") ?(capacity = 1024) ?(clock = 100_000) ?(counters = [])
    ?(ops = []) ?(complexity = []) () =
  Sim.Json.Obj
    [
      ("schema", Sim.Json.String schema);
      ( "provenance",
        Sim.Json.Obj
          [
            ("cost_model", Sim.Cost_model.to_json Sim.Cost_model.default);
            ("trace_capacity", Sim.Json.Int capacity);
          ] );
      ("clock_cycles", Sim.Json.Int clock);
      ("stats", Sim.Json.Obj (List.map (fun (k, v) -> (k, Sim.Json.Int v)) counters));
      ( "trace",
        Sim.Json.Obj
          [
            ( "ops",
              Sim.Json.Obj
                (List.map
                   (fun (name, p50, p99) ->
                     (name, Sim.Json.Obj [ ("p50", Sim.Json.Int p50); ("p99", Sim.Json.Int p99) ]))
                   ops) );
          ] );
      ( "complexity",
        Sim.Json.Obj
          (List.map
             (fun (name, cls, e) ->
               ( name,
                 Sim.Json.Obj
                   [ ("class", Sim.Json.String cls); ("exponent", Sim.Json.Float e) ] ))
             complexity) );
    ]

let compare_ok ?threshold_pct old_doc new_doc =
  match R.compare_docs ?threshold_pct ~old_doc ~new_doc () with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected incompatibility: %s" e

let test_regress_self_compare_empty () =
  let d =
    doc ~counters:[ ("tlb.hit", 42) ] ~ops:[ ("mmap", 10, 20) ]
      ~complexity:[ ("mmap_fom", "O(1)", 0.01) ]
      ()
  in
  let r = compare_ok d d in
  check_bool "no deltas" true (r.R.deltas = []);
  check_bool "nothing compared is nonzero" true (r.R.compared > 0);
  check_bool "no regressions" true (R.regressions r = []);
  check_bool "render says no differences" true
    (contains ~needle:"no differences" (R.render r))

let test_regress_threshold () =
  let old_doc = doc ~counters:[ ("walk.refs", 1000) ] () in
  (* +5% on a 10% threshold: reported as Within, gate passes. *)
  let r5 = compare_ok old_doc (doc ~counters:[ ("walk.refs", 1050) ] ()) in
  check_int "one delta" 1 (List.length r5.R.deltas);
  check_bool "within threshold" true ((List.hd r5.R.deltas).R.status = R.Within);
  check_bool "gate passes" true (R.regressions r5 = []);
  (* +20%: Regressed, gate fails. *)
  let r20 = compare_ok old_doc (doc ~counters:[ ("walk.refs", 1200) ] ()) in
  check_bool "regressed" true ((List.hd r20.R.deltas).R.status = R.Regressed);
  check_int "gate fails" 1 (List.length (R.regressions r20));
  (* Same +20% under a 25% threshold: passes again. *)
  let loose = compare_ok ~threshold_pct:25.0 old_doc (doc ~counters:[ ("walk.refs", 1200) ] ()) in
  check_bool "loose threshold passes" true (R.regressions loose = []);
  (* -20%: Improved, not a regression. *)
  let better = compare_ok old_doc (doc ~counters:[ ("walk.refs", 800) ] ()) in
  check_bool "improved" true ((List.hd better.R.deltas).R.status = R.Improved);
  check_bool "improvement passes" true (R.regressions better = [])

let test_regress_added_removed () =
  let r =
    compare_ok
      (doc ~counters:[ ("gone", 7) ] ())
      (doc ~counters:[ ("fresh", 9) ] ())
  in
  let statuses = List.map (fun d -> (d.R.key, d.R.status)) r.R.deltas in
  check_bool "removed" true (List.mem ("gone", R.Removed) statuses);
  check_bool "added" true (List.mem ("fresh", R.Added) statuses);
  check_bool "one-sided metrics do not fail the gate" true (R.regressions r = [])

let test_regress_class_downgrade () =
  let old_doc = doc ~complexity:[ ("mmap_fom", "O(1)", 0.01) ] () in
  let r = compare_ok old_doc (doc ~complexity:[ ("mmap_fom", "O(n)", 0.97) ] ()) in
  check_bool "downgrade detected" true
    (List.exists (fun d -> d.R.status = R.Downgraded) r.R.deltas);
  check_bool "downgrade fails the gate" true (R.regressions r <> []);
  (* The reverse direction is an upgrade and passes. *)
  let up = compare_ok (doc ~complexity:[ ("mmap_fom", "O(n)", 0.97) ] ()) old_doc in
  check_bool "upgrade detected" true (List.exists (fun d -> d.R.status = R.Upgraded) up.R.deltas);
  check_bool "upgrade passes" true (R.regressions up = []);
  (* Unknown class names fail safe: treated as a downgrade. *)
  let odd = compare_ok old_doc (doc ~complexity:[ ("mmap_fom", "O(?)", 0.5) ] ()) in
  check_bool "unknown class fails safe" true (R.regressions odd <> [])

let test_regress_exponent_informational () =
  let r =
    compare_ok
      (doc ~complexity:[ ("graft", "O(log n)", 0.18) ] ())
      (doc ~complexity:[ ("graft", "O(log n)", 0.21) ] ())
  in
  check_bool "exponent drift reported" true
    (List.exists (fun d -> d.R.key = "graft exponent") r.R.deltas);
  check_bool "but never fails the gate" true (R.regressions r = [])

let test_regress_incompatible () =
  let fails old_doc new_doc =
    match R.compare_docs ~old_doc ~new_doc () with Ok _ -> false | Error _ -> true
  in
  let base = doc () in
  check_bool "schema mismatch" true (fails base (doc ~schema:"o1mem.metrics/1" ()));
  check_bool "missing schema" true (fails base (Sim.Json.Obj [ ("clock_cycles", Sim.Json.Int 1) ]));
  check_bool "provenance mismatch" true (fails base (doc ~capacity:2048 ()));
  check_bool "provenance missing on one side" true
    (fails base
       (Sim.Json.Obj [ ("schema", Sim.Json.String "o1mem.metrics/3"); ("clock_cycles", Sim.Json.Int 1) ]));
  check_bool "self compare still fine" true (not (fails base (doc ())))

let test_regress_render_table () =
  let r = compare_ok (doc ~counters:[ ("c", 100) ] ()) (doc ~counters:[ ("c", 200) ] ()) in
  let s = R.render r in
  check_bool "table names metric" true (contains ~needle:"c" s);
  check_bool "percent delta shown" true (contains ~needle:"+100.0%" s);
  check_bool "verdict counts regressions" true (contains ~needle:"1 regression" s)

let suite =
  [
    Alcotest.test_case "lsq: exact line" `Quick test_lsq_exact_line;
    Alcotest.test_case "lsq: flat line has r2=1" `Quick test_lsq_flat_line;
    Alcotest.test_case "lsq: degenerate inputs rejected" `Quick test_lsq_rejects_degenerate;
    Alcotest.test_case "fit: constant series" `Quick test_fit_constant;
    Alcotest.test_case "fit: logarithmic series" `Quick test_fit_logarithmic;
    Alcotest.test_case "fit: linear series" `Quick test_fit_linear;
    Alcotest.test_case "fit: quadratic series" `Quick test_fit_quadratic;
    Alcotest.test_case "fit: zero-cost ops clamp to O(1)" `Quick test_fit_clamps_free_ops;
    Alcotest.test_case "classify: thresholds" `Quick test_classify_thresholds;
    Alcotest.test_case "cls: names round-trip, ranks ordered" `Quick test_cls_names_round_trip;
    Alcotest.test_case "fit_to_json: fields present" `Quick test_fit_to_json;
    Alcotest.test_case "regress: self-comparison is empty" `Quick test_regress_self_compare_empty;
    Alcotest.test_case "regress: threshold splits within/regressed" `Quick test_regress_threshold;
    Alcotest.test_case "regress: added/removed are one-sided" `Quick test_regress_added_removed;
    Alcotest.test_case "regress: class downgrade fails the gate" `Quick
      test_regress_class_downgrade;
    Alcotest.test_case "regress: exponent drift is informational" `Quick
      test_regress_exponent_informational;
    Alcotest.test_case "regress: incompatible documents refused" `Quick test_regress_incompatible;
    Alcotest.test_case "regress: render shows deltas and verdict" `Quick test_regress_render_table;
  ]
