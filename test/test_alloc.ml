open Helpers
module Frame = Physmem.Frame

let mk_buddy ?(frames = 4096) ?(merge = true) () =
  let mem = mk_mem () in
  (Alloc.Buddy.create ~mem ~first:0 ~count:frames ~merge (), mem)

(* Buddy *)

let test_buddy_basic_alloc_free () =
  let b, _ = mk_buddy () in
  check_int "initially all free" 4096 (Alloc.Buddy.free_frames_count b);
  let p = Option.get (Alloc.Buddy.alloc b ~order:0) in
  check_int "one frame gone" 4095 (Alloc.Buddy.free_frames_count b);
  check_bool "allocated not free" false (Alloc.Buddy.is_free b p);
  Alloc.Buddy.free b p ~order:0;
  check_int "back to full" 4096 (Alloc.Buddy.free_frames_count b);
  check_bool "free again" true (Alloc.Buddy.is_free b p)

let test_buddy_split_and_merge () =
  let b, mem = mk_buddy ~frames:1024 () in
  let p = Option.get (Alloc.Buddy.alloc b ~order:0) in
  check_bool "splits happened" true (Sim.Stats.get (Physmem.Phys_mem.stats mem) "buddy_split" > 0);
  Alloc.Buddy.free b p ~order:0;
  check_bool "merges happened" true (Sim.Stats.get (Physmem.Phys_mem.stats mem) "buddy_merge" > 0);
  check_int "one max-order block restored" 1
    (Alloc.Buddy.free_blocks_per_order b).(Alloc.Buddy.max_order b)

let test_buddy_no_merge_mode () =
  let b, _ = mk_buddy ~frames:1024 ~merge:false () in
  let p = Option.get (Alloc.Buddy.alloc b ~order:0) in
  Alloc.Buddy.free b p ~order:0;
  (* Without merging the top-order block is not reconstituted. *)
  check_bool "fragmented" true ((Alloc.Buddy.free_blocks_per_order b).(Alloc.Buddy.max_order b) = 0);
  check_int "frames conserved" 1024 (Alloc.Buddy.free_frames_count b)

let test_buddy_alignment () =
  let b, _ = mk_buddy () in
  for order = 0 to 5 do
    let p = Option.get (Alloc.Buddy.alloc b ~order) in
    check_int (Printf.sprintf "order %d aligned" order) 0 (p land ((1 lsl order) - 1))
  done

let test_buddy_exhaustion () =
  let b, _ = mk_buddy ~frames:1024 () in
  let blocks = ref [] in
  let rec drain () =
    match Alloc.Buddy.alloc b ~order:10 with
    | Some p ->
      blocks := p :: !blocks;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "exactly one top block" 1 (List.length !blocks);
  check_bool "order-0 exhausted too" true (Alloc.Buddy.alloc b ~order:0 = None);
  List.iter (fun p -> Alloc.Buddy.free b p ~order:10) !blocks;
  check_int "restored" 1024 (Alloc.Buddy.free_frames_count b)

let test_buddy_double_free_detected () =
  let b, _ = mk_buddy () in
  let p = Option.get (Alloc.Buddy.alloc b ~order:3) in
  Alloc.Buddy.free b p ~order:3;
  Alcotest.check_raises "double free" (Invalid_argument "Buddy.free: double free") (fun () ->
      Alloc.Buddy.free b p ~order:3)

let test_buddy_alloc_frames_rounding () =
  let b, _ = mk_buddy () in
  let p = Option.get (Alloc.Buddy.alloc_frames b ~frames:5) in
  (* 5 frames -> order 3 block (8 frames). *)
  check_int "rounded to 8" (4096 - 8) (Alloc.Buddy.free_frames_count b);
  Alloc.Buddy.free b p ~order:3

let prop_buddy_no_overlap =
  qtest "buddy blocks never overlap" ~count:60
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 4))
    (fun orders ->
      let b, _ = mk_buddy ~frames:2048 () in
      let blocks =
        List.filter_map (fun order -> Option.map (fun p -> (p, order)) (Alloc.Buddy.alloc b ~order)) orders
      in
      let covered = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun (p, order) ->
          for f = p to p + (1 lsl order) - 1 do
            if Hashtbl.mem covered f then ok := false;
            Hashtbl.replace covered f ()
          done)
        blocks;
      List.iter (fun (p, order) -> Alloc.Buddy.free b p ~order) blocks;
      !ok && Alloc.Buddy.free_frames_count b = 2048)

(* Bitmap *)

let mk_bitmap ?(frames = 1024) () =
  let mem = mk_mem () in
  Alloc.Bitmap_alloc.create ~mem ~first:100 ~count:frames

let test_bitmap_contig () =
  let b = mk_bitmap () in
  let p = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:10) in
  check_int "starts at base" 100 p;
  check_int "free" 1014 (Alloc.Bitmap_alloc.free_frames b);
  let q = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:5) in
  check_int "next fit continues" 110 q;
  Alloc.Bitmap_alloc.free_range b ~first:p ~count:10;
  check_int "freed" 1019 (Alloc.Bitmap_alloc.free_frames b);
  check_bool "is_free" true (Alloc.Bitmap_alloc.is_free b 100);
  check_bool "allocated still held" false (Alloc.Bitmap_alloc.is_free b 110)

let test_bitmap_wrap_around () =
  let b = mk_bitmap ~frames:16 () in
  let p1 = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:12) in
  Alloc.Bitmap_alloc.free_range b ~first:p1 ~count:12;
  (* Cursor now points past frame 112; a 14-frame request must wrap. *)
  let p2 = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:14) in
  check_int "wrapped to base" 100 p2

let test_bitmap_fragmentation_blocks_large () =
  let b = mk_bitmap ~frames:16 () in
  let ps = List.init 8 (fun _ -> Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:2)) in
  (* Free every other block: 8 free frames but max run = 2. *)
  List.iteri
    (fun i p -> if i mod 2 = 0 then Alloc.Bitmap_alloc.free_range b ~first:p ~count:2)
    ps;
  check_int "free frames" 8 (Alloc.Bitmap_alloc.free_frames b);
  check_int "largest run" 2 (Alloc.Bitmap_alloc.largest_free_run b);
  check_bool "big alloc fails" true (Alloc.Bitmap_alloc.alloc_contig b ~count:4 = None);
  check_bool "small alloc fits" true (Alloc.Bitmap_alloc.alloc_contig b ~count:2 <> None)

let test_bitmap_double_free () =
  let b = mk_bitmap () in
  let p = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:4) in
  Alloc.Bitmap_alloc.free_range b ~first:p ~count:4;
  Alcotest.check_raises "double free" (Invalid_argument "Bitmap_alloc.free_range: double free")
    (fun () -> Alloc.Bitmap_alloc.free_range b ~first:p ~count:4)

let test_bitmap_cursor_in_last_window_terminates () =
  (* Regression: with the next-fit cursor inside the final [count]-sized
     window and only scattered single free frames, the scan used to loop
     forever (the wrap test could never reach the cursor). *)
  let b = mk_bitmap ~frames:64 () in
  let a = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:62) in
  let _b1 = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:1) in
  let _b2 = Option.get (Alloc.Bitmap_alloc.alloc_contig b ~count:1) in
  (* cursor now points at index 63 (inside the last 4-frame window). *)
  List.iter
    (fun off -> Alloc.Bitmap_alloc.free_range b ~first:(a + off) ~count:1)
    [ 5; 7; 9; 11 ];
  (* 4 free frames, no 4-run: must return None, not hang. *)
  check_bool "no run found terminates" true (Alloc.Bitmap_alloc.alloc_contig b ~count:4 = None);
  check_bool "singles still allocatable" true (Alloc.Bitmap_alloc.alloc_contig b ~count:1 <> None)

let test_bitmap_metadata () =
  let b = mk_bitmap ~frames:1024 () in
  check_int "one bit per frame" 128 (Alloc.Bitmap_alloc.metadata_bytes b);
  Alcotest.(check (float 0.001)) "utilization zero" 0.0 (Alloc.Bitmap_alloc.utilization b)

let prop_bitmap_conservation =
  qtest "bitmap conserves frames" ~count:60
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 1 20))
    (fun sizes ->
      let b = mk_bitmap ~frames:512 () in
      let allocs =
        List.filter_map
          (fun count -> Option.map (fun p -> (p, count)) (Alloc.Bitmap_alloc.alloc_contig b ~count))
          sizes
      in
      let held = List.fold_left (fun acc (_, c) -> acc + c) 0 allocs in
      let ok = Alloc.Bitmap_alloc.free_frames b = 512 - held in
      List.iter (fun (p, count) -> Alloc.Bitmap_alloc.free_range b ~first:p ~count) allocs;
      ok && Alloc.Bitmap_alloc.free_frames b = 512)

(* Extent allocator *)

let mk_extent ?(frames = 1024) ?(policy = Alloc.Extent_alloc.First_fit) () =
  let mem = mk_mem () in
  Alloc.Extent_alloc.create ~mem ~first:0 ~count:frames ~policy

let test_extent_alloc_free_coalesce () =
  let e = mk_extent () in
  check_int "one extent" 1 (Alloc.Extent_alloc.extent_count e);
  let a = Option.get (Alloc.Extent_alloc.alloc e ~frames:100) in
  let b = Option.get (Alloc.Extent_alloc.alloc e ~frames:100) in
  check_int "contiguous first fit" 100 b;
  Alloc.Extent_alloc.free e ~first:a ~frames:100;
  check_int "two extents while hole" 2 (Alloc.Extent_alloc.extent_count e);
  Alloc.Extent_alloc.free e ~first:b ~frames:100;
  check_int "coalesced back to one" 1 (Alloc.Extent_alloc.extent_count e);
  check_int "all free" 1024 (Alloc.Extent_alloc.free_frames e)

let test_extent_best_fit () =
  let e = mk_extent ~policy:Alloc.Extent_alloc.Best_fit () in
  let a = Option.get (Alloc.Extent_alloc.alloc e ~frames:10) in
  let _b = Option.get (Alloc.Extent_alloc.alloc e ~frames:50) in
  let c = Option.get (Alloc.Extent_alloc.alloc e ~frames:10) in
  (* Free the two 10-frame holes plus the big tail; best-fit for 10 should
     take a 10-frame hole, not carve the tail. *)
  Alloc.Extent_alloc.free e ~first:a ~frames:10;
  Alloc.Extent_alloc.free e ~first:c ~frames:10;
  let d = Option.get (Alloc.Extent_alloc.alloc e ~frames:10) in
  check_bool "reused small hole" true (d = a || d = c)

let test_extent_overlap_free_rejected () =
  let e = mk_extent () in
  let a = Option.get (Alloc.Extent_alloc.alloc e ~frames:10) in
  Alloc.Extent_alloc.free e ~first:a ~frames:10;
  Alcotest.check_raises "overlap" (Invalid_argument "Extent_alloc.free: overlaps free space")
    (fun () -> Alloc.Extent_alloc.free e ~first:a ~frames:10)

let test_extent_largest_and_fragmentation () =
  let e = mk_extent ~frames:100 () in
  Alcotest.(check (float 0.001)) "no frag when whole" 0.0 (Alloc.Extent_alloc.fragmentation e);
  let a = Option.get (Alloc.Extent_alloc.alloc e ~frames:40) in
  let _b = Option.get (Alloc.Extent_alloc.alloc e ~frames:20) in
  Alloc.Extent_alloc.free e ~first:a ~frames:40;
  (* Free space: [0,40) and [60,100) -> largest 40 of 80. *)
  check_int "largest" 40 (Alloc.Extent_alloc.largest_free e);
  Alcotest.(check (float 0.001)) "frag 0.5" 0.5 (Alloc.Extent_alloc.fragmentation e)

let test_extent_alloc_largest () =
  let e = mk_extent ~frames:100 () in
  let a = Option.get (Alloc.Extent_alloc.alloc e ~frames:30) in
  Alloc.Extent_alloc.free e ~first:a ~frames:30;
  ignore (Option.get (Alloc.Extent_alloc.alloc e ~frames:10));
  (* holes: [10,30) is 20; [30..100) minus alloc'd... compute via API *)
  let start, len = Option.get (Alloc.Extent_alloc.alloc_largest e) in
  check_bool "grabbed the biggest" true (len >= 20);
  Alloc.Extent_alloc.free e ~first:start ~frames:len

let prop_extent_conservation =
  qtest "extent allocator conserves frames and coalesces fully" ~count:60
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 1 30))
    (fun sizes ->
      let e = mk_extent ~frames:512 () in
      let allocs =
        List.filter_map
          (fun frames -> Option.map (fun p -> (p, frames)) (Alloc.Extent_alloc.alloc e ~frames))
          sizes
      in
      List.iter (fun (p, frames) -> Alloc.Extent_alloc.free e ~first:p ~frames) allocs;
      Alloc.Extent_alloc.free_frames e = 512 && Alloc.Extent_alloc.extent_count e = 1)

(* Slab *)

let mk_slab ?(obj_bytes = 4096) () =
  let mem = mk_mem () in
  let buddy = Alloc.Buddy.create ~mem ~first:0 ~count:4096 () in
  (Alloc.Slab.create_cache ~mem ~backing:buddy ~name:"t" ~obj_bytes (), buddy)

let test_slab_alloc_free () =
  let c, _ = mk_slab () in
  let a = Option.get (Alloc.Slab.alloc c) in
  let b = Option.get (Alloc.Slab.alloc c) in
  check_bool "distinct objects" true (a <> b);
  check_int "live" 2 (Alloc.Slab.live_objects c);
  Alloc.Slab.free c a;
  check_int "live after free" 1 (Alloc.Slab.live_objects c);
  let a' = Option.get (Alloc.Slab.alloc c) in
  check_int "LIFO reuse" a a'

let test_slab_reaps_empty_slabs () =
  let c, buddy = mk_slab () in
  let before = Alloc.Buddy.free_frames_count buddy in
  let objs = List.init 8 (fun _ -> Option.get (Alloc.Slab.alloc c)) in
  check_bool "buddy consumed" true (Alloc.Buddy.free_frames_count buddy < before);
  List.iter (Alloc.Slab.free c) objs;
  check_int "slabs reaped" 0 (Alloc.Slab.slab_count c);
  check_int "buddy restored" before (Alloc.Buddy.free_frames_count buddy)

let test_slab_rounding_and_waste () =
  let c, _ = mk_slab ~obj_bytes:100 () in
  check_int "rounded to 128" 128 (Alloc.Slab.obj_bytes c);
  let _o = Option.get (Alloc.Slab.alloc c) in
  check_bool "waste accounted" true (Alloc.Slab.wasted_bytes c > 0);
  check_bool "footprint covers objects" true
    (Alloc.Slab.footprint_bytes c >= Alloc.Slab.live_objects c * Alloc.Slab.obj_bytes c)

let test_slab_double_free () =
  let c, _ = mk_slab () in
  let a = Option.get (Alloc.Slab.alloc c) in
  let _b = Option.get (Alloc.Slab.alloc c) in
  Alloc.Slab.free c a;
  Alcotest.check_raises "double free" (Invalid_argument "Slab.free: double free") (fun () ->
      Alloc.Slab.free c a)

let prop_slab_distinct_addresses =
  qtest "slab objects are distinct and aligned" ~count:40
    QCheck2.Gen.(int_range 1 100)
    (fun n ->
      let c, _ = mk_slab ~obj_bytes:256 () in
      let objs = List.init n (fun _ -> Option.get (Alloc.Slab.alloc c)) in
      let distinct = List.sort_uniq compare objs in
      List.length distinct = n && List.for_all (fun a -> a mod 256 = 0) objs)

(* Log-structured allocator *)

let mk_log () =
  let mem = mk_mem () in
  let extents = Alloc.Extent_alloc.create ~mem ~first:0 ~count:4096 ~policy:Alloc.Extent_alloc.First_fit in
  Alloc.Log_alloc.create ~mem ~backing:extents ~segment_frames:256 ()

let test_log_alloc_basic () =
  let l = mk_log () in
  let h1 = Option.get (Alloc.Log_alloc.alloc l ~bytes:100) in
  let h2 = Option.get (Alloc.Log_alloc.alloc l ~bytes:100) in
  check_bool "bump allocation is contiguous" true
    (Alloc.Log_alloc.addr_of l h2 = Alloc.Log_alloc.addr_of l h1 + 112);
  check_int "sizes rounded to 16" 112 (Alloc.Log_alloc.size_of l h1);
  Alloc.Log_alloc.free l h1;
  Alcotest.check_raises "stale handle" Not_found (fun () ->
      ignore (Alloc.Log_alloc.addr_of l h1))

let test_log_cleaner_reclaims () =
  let l = mk_log () in
  (* Fill a few segments then free most objects. *)
  let handles = List.init 64 (fun _ -> Option.get (Alloc.Log_alloc.alloc l ~bytes:65536)) in
  let segs_before = Alloc.Log_alloc.segment_count l in
  check_bool "several segments" true (segs_before >= 4);
  List.iteri (fun i h -> if i mod 4 <> 0 then Alloc.Log_alloc.free l h) handles;
  let reclaimed = Alloc.Log_alloc.clean l ~max_segments:16 in
  check_bool "cleaner reclaimed segments" true (reclaimed > 0);
  check_bool "live objects survive with valid addresses" true
    (List.for_all
       (fun (i, h) -> i mod 4 <> 0 || Alloc.Log_alloc.addr_of l h >= 0)
       (List.mapi (fun i h -> (i, h)) handles));
  check_bool "utilization improved" true (Alloc.Log_alloc.utilization l > 0.2)

let test_log_double_free () =
  let l = mk_log () in
  let h = Option.get (Alloc.Log_alloc.alloc l ~bytes:64) in
  Alloc.Log_alloc.free l h;
  Alcotest.check_raises "double free" (Invalid_argument "Log_alloc.free: unknown or already-freed handle")
    (fun () -> Alloc.Log_alloc.free l h)

let test_log_oversized_rejected () =
  let l = mk_log () in
  Alcotest.check_raises "too big" (Invalid_argument "Log_alloc.alloc: object larger than segment")
    (fun () -> ignore (Alloc.Log_alloc.alloc l ~bytes:(Sim.Units.mib 2)))

let prop_log_live_accounting =
  qtest "log allocator live-byte accounting" ~count:40
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 16 4096))
    (fun sizes ->
      let l = mk_log () in
      let hs = List.filter_map (fun bytes -> Alloc.Log_alloc.alloc l ~bytes) sizes in
      let expect =
        List.fold_left (fun acc h -> acc + Alloc.Log_alloc.size_of l h) 0 hs
      in
      let ok = Alloc.Log_alloc.live_bytes l = expect in
      List.iter (Alloc.Log_alloc.free l) hs;
      ok && Alloc.Log_alloc.live_bytes l = 0)

let suite =
  [
    Alcotest.test_case "buddy: alloc/free round trip" `Quick test_buddy_basic_alloc_free;
    Alcotest.test_case "buddy: split and merge" `Quick test_buddy_split_and_merge;
    Alcotest.test_case "buddy: non-merging mode fragments" `Quick test_buddy_no_merge_mode;
    Alcotest.test_case "buddy: block alignment" `Quick test_buddy_alignment;
    Alcotest.test_case "buddy: exhaustion and restore" `Quick test_buddy_exhaustion;
    Alcotest.test_case "buddy: double free detected" `Quick test_buddy_double_free_detected;
    Alcotest.test_case "buddy: alloc_frames rounds up" `Quick test_buddy_alloc_frames_rounding;
    prop_buddy_no_overlap;
    Alcotest.test_case "bitmap: contiguous alloc, next-fit" `Quick test_bitmap_contig;
    Alcotest.test_case "bitmap: wrap-around search" `Quick test_bitmap_wrap_around;
    Alcotest.test_case "bitmap: fragmentation blocks large" `Quick test_bitmap_fragmentation_blocks_large;
    Alcotest.test_case "bitmap: double free detected" `Quick test_bitmap_double_free;
    Alcotest.test_case "bitmap: metadata is one bit per frame" `Quick test_bitmap_metadata;
    Alcotest.test_case "bitmap: cursor-in-last-window terminates" `Quick
      test_bitmap_cursor_in_last_window_terminates;
    prop_bitmap_conservation;
    Alcotest.test_case "extent: alloc/free/coalesce" `Quick test_extent_alloc_free_coalesce;
    Alcotest.test_case "extent: best fit reuses holes" `Quick test_extent_best_fit;
    Alcotest.test_case "extent: overlapping free rejected" `Quick test_extent_overlap_free_rejected;
    Alcotest.test_case "extent: fragmentation metric" `Quick test_extent_largest_and_fragmentation;
    Alcotest.test_case "extent: alloc_largest" `Quick test_extent_alloc_largest;
    prop_extent_conservation;
    Alcotest.test_case "slab: alloc/free, LIFO reuse" `Quick test_slab_alloc_free;
    Alcotest.test_case "slab: empty slabs reaped to buddy" `Quick test_slab_reaps_empty_slabs;
    Alcotest.test_case "slab: rounding and waste accounting" `Quick test_slab_rounding_and_waste;
    Alcotest.test_case "slab: double free detected" `Quick test_slab_double_free;
    prop_slab_distinct_addresses;
    Alcotest.test_case "log: bump allocation" `Quick test_log_alloc_basic;
    Alcotest.test_case "log: cleaner reclaims segments" `Quick test_log_cleaner_reclaims;
    Alcotest.test_case "log: double free detected" `Quick test_log_double_free;
    Alcotest.test_case "log: oversized object rejected" `Quick test_log_oversized_rejected;
    prop_log_live_accounting;
  ]
