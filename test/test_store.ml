(* The persistent object store: transactions, recovery, damage
   detection, degradation, and the crash explorer. *)

open Helpers
module K = Os.Kernel
module P = O1mem.Persistence
module Kv = Store.Kv
module SC = Store.Chaos
module FI = Sim.Fault_inject

let store_config =
  {
    Os.Kernel.default_config with
    Os.Kernel.dram_bytes = Sim.Units.mib 8;
    nvm_bytes = Sim.Units.mib 8;
  }

let mk_store ?(seed = 1) ?arena_bytes ?wal_bytes ?manifest_bytes () =
  let kernel = K.create ~config:store_config () in
  let plane = FI.create ~seed ~stats:(K.stats kernel) () in
  Sim.Trace.attach_faults (K.trace kernel) plane;
  let fom = O1mem.Fom.create kernel () in
  let proc = K.create_process kernel () in
  let st = Kv.create fom proc ?arena_bytes ?wal_bytes ?manifest_bytes ~name:"/kv" () in
  (kernel, fom, plane, st)

let commit_put st kvs roots =
  ignore (Kv.begin_txn st);
  List.iter (fun (k, v) -> Kv.put st k v) kvs;
  List.iter (fun (r, k) -> Kv.set_root st r k) roots;
  Kv.commit st

(* ------------------------------ basics ------------------------------ *)

let test_basic () =
  let kernel, _, _, st = mk_store () in
  commit_put st [ ("alpha", "one"); ("beta", String.make 200 'b') ] [ ("head", "alpha") ];
  Alcotest.(check (option string)) "get" (Some "one") (Kv.get st "alpha");
  Alcotest.(check (option string)) "get big" (Some (String.make 200 'b')) (Kv.get st "beta");
  Alcotest.(check (option string)) "root" (Some "alpha") (Kv.root st "head");
  check_int "count" 2 (Kv.object_count st);
  check_bool "no open txn" false (Kv.txn_live st);
  check_int "gauge tracks objects" 2 (Sim.Stats.gauge (K.stats kernel) "store_objects");
  check_bool "wal holds the txn" true (Kv.wal_record_count st > 0);
  Alcotest.(check (list string)) "keys sorted" [ "alpha"; "beta" ] (Kv.keys st);
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

let test_abort_discards () =
  let _, _, _, st = mk_store () in
  commit_put st [ ("keep", "v") ] [];
  ignore (Kv.begin_txn st);
  Kv.put st "drop" "x";
  Kv.delete st "keep";
  Kv.abort st;
  check_bool "aborted put invisible" false (Kv.mem st "drop");
  Alcotest.(check (option string)) "aborted delete undone" (Some "v") (Kv.get st "keep");
  Kv.detach st

let test_delete_clears_roots () =
  let _, _, _, st = mk_store () in
  commit_put st [ ("a", "1"); ("b", "2") ] [ ("head", "a"); ("tail", "b") ];
  ignore (Kv.begin_txn st);
  Kv.delete st "a";
  Kv.commit st;
  Alcotest.(check (option string)) "root of deleted key cleared" None (Kv.root st "head");
  Alcotest.(check (option string)) "other root intact" (Some "b") (Kv.root st "tail");
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

let test_validation () =
  let kernel, fom, _, st = mk_store () in
  Alcotest.check_raises "no txn" (Invalid_argument "Store: no open transaction") (fun () ->
      Kv.put st "k" "v");
  ignore (Kv.begin_txn st);
  Alcotest.check_raises "double begin" (Invalid_argument "Store.begin_txn: transaction already open")
    (fun () -> ignore (Kv.begin_txn st));
  Alcotest.check_raises "empty key" (Invalid_argument "Store.put: bad key") (fun () ->
      Kv.put st "" "v");
  Alcotest.check_raises "oversized value" (Invalid_argument "Store.put: bad value size") (fun () ->
      Kv.put st "k" (String.make (Sim.Units.kib 17) 'x'));
  Kv.abort st;
  Alcotest.check_raises "relative name" (Invalid_argument "Store.create: name must be an absolute path")
    (fun () -> ignore (Kv.create fom (K.create_process kernel ()) ~name:"kv" ()));
  Alcotest.check_raises "create over an existing store"
    (Invalid_argument "Store.create: /kv.wal already exists (create never reopens a prior store)")
    (fun () -> ignore (Kv.create fom (K.create_process kernel ()) ~name:"/kv" ()));
  Kv.detach st

(* ------------------------------ recovery ---------------------------- *)

let test_crash_recovers_committed_prefix () =
  let _, fom, _, st = mk_store () in
  commit_put st [ ("stable", "before") ] [ ("head", "stable") ];
  let proc_before = Kv.proc st in
  ignore (Kv.begin_txn st);
  Kv.put st "inflight" "never committed";
  (* Power fails with the transaction open: nothing of it was logged. *)
  let report = P.crash_and_recover fom in
  check_bool "store hook ran" true
    (List.mem_assoc "store/kv" report.P.hook_records);
  Alcotest.(check (option string)) "committed survives" (Some "before") (Kv.get st "stable");
  Alcotest.(check (option string)) "root survives" (Some "stable") (Kv.root st "head");
  check_bool "in-flight txn gone" false (Kv.mem st "inflight");
  check_bool "open txn dropped" false (Kv.txn_live st);
  check_bool "recovery re-homed the store" true (not (Kv.proc st == proc_before));
  (* The relocated store keeps working. *)
  commit_put st [ ("after", "crash") ] [];
  Alcotest.(check (option string)) "post-recovery write" (Some "crash") (Kv.get st "after");
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

let test_recover_twice_idempotent () =
  let kernel, fom, _, st = mk_store () in
  commit_put st [ ("a", "1"); ("b", String.make 300 'b') ] [ ("head", "b") ];
  ignore (P.crash_and_recover fom);
  let snap1 = (Kv.keys st, Kv.roots st, Kv.last_replayed st) in
  let gauge1 = Sim.Stats.gauge (K.stats kernel) "store_objects" in
  ignore (P.crash_and_recover fom);
  let snap2 = (Kv.keys st, Kv.roots st, Kv.last_replayed st) in
  check_bool "recover twice == recover once" true (snap1 = snap2);
  check_int "object gauge stable" gauge1 (Sim.Stats.gauge (K.stats kernel) "store_objects");
  check_int "wal gauge re-baselined" (Kv.wal_used_bytes st)
    (Sim.Stats.gauge (K.stats kernel) "store_wal_bytes");
  Alcotest.(check (option string)) "values intact" (Some "1") (Kv.get st "a");
  check_int "recover counted" 2 (Sim.Stats.get (K.stats kernel) "store_recover");
  Kv.detach st

let test_checkpoint_cuts_replay () =
  let _, fom, _, st = mk_store () in
  for i = 0 to 9 do
    commit_put st [ (Printf.sprintf "k%d" i, Printf.sprintf "v%d" i) ] []
  done;
  Kv.checkpoint st;
  check_int "wal cut" 0 (Kv.wal_record_count st);
  check_bool "generation bumped" true (Kv.generation st >= 1);
  ignore (P.crash_and_recover fom);
  check_int "nothing to replay after checkpoint" 0 (Kv.last_replayed st);
  check_int "all objects back from the snapshot" 10 (Kv.object_count st);
  Alcotest.(check (option string)) "snapshot data" (Some "v7") (Kv.get st "k7");
  (* Post-checkpoint commits replay on top of the snapshot. *)
  commit_put st [ ("k3", "updated") ] [];
  ignore (P.crash_and_recover fom);
  Alcotest.(check (option string)) "log wins over snapshot" (Some "updated") (Kv.get st "k3");
  check_bool "replayed the tail only" true (Kv.last_replayed st <= 2);
  Kv.detach st

let test_wal_full_autocheckpoint () =
  let kernel, _, _, st = mk_store ~wal_bytes:(Sim.Units.kib 8) () in
  for i = 1 to 24 do
    commit_put st [ (Printf.sprintf "k%d" (i mod 6), String.make 900 (Char.chr (64 + i))) ] []
  done;
  check_bool "auto-checkpoint fired" true
    (Sim.Stats.get (K.stats kernel) "store_wal_checkpoint" >= 1);
  Alcotest.(check (option string)) "latest value served" (Some (String.make 900 'X'))
    (Kv.get st (Printf.sprintf "k%d" (24 mod 6)));
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

(* ------------------------------ degradation ------------------------- *)

let test_enospc_typed_and_clean () =
  let _, _, _, st = mk_store ~wal_bytes:(Sim.Units.kib 8) () in
  commit_put st [ ("seed", "v") ] [];
  (try
     ignore (Kv.begin_txn st);
     for j = 1 to 10 do
       Kv.put st (Printf.sprintf "big%d" j) (String.make 1500 'x')
     done;
     Kv.commit st;
     Alcotest.fail "oversized transaction must raise ENOSPC"
   with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> ());
  check_bool "txn rolled back" false (Kv.txn_live st);
  check_bool "no partial object" false (Kv.mem st "big1");
  Alcotest.(check (option string)) "prior state intact" (Some "v") (Kv.get st "seed");
  commit_put st [ ("after", "ok") ] [];
  Alcotest.(check (option string)) "store still usable" (Some "ok") (Kv.get st "after");
  Kv.detach st

(* A commit that overflows the WAL even after the auto-checkpoint rolls
   back AND durably cuts its partial records: a crash after a later
   successful commit must never resurrect the rolled-back ops. *)
let test_failed_commit_orphans_cut () =
  let _, fom, _, st = mk_store ~wal_bytes:(Sim.Units.kib 8) () in
  commit_put st [ ("seed", "v") ] [];
  (try
     ignore (Kv.begin_txn st);
     for j = 1 to 10 do
       Kv.put st (Printf.sprintf "big%d" j) (String.make 1500 'x')
     done;
     Kv.commit st;
     Alcotest.fail "oversized transaction must raise ENOSPC"
   with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> ());
  check_int "failed attempt's records durably cut" 0 (Kv.wal_record_count st);
  commit_put st [ ("after", "ok") ] [];
  ignore (P.crash_and_recover fom);
  check_bool "rolled-back put not resurrected" false (Kv.mem st "big1");
  Alcotest.(check (option string)) "seed intact" (Some "v") (Kv.get st "seed");
  Alcotest.(check (option string)) "later commit intact" (Some "ok") (Kv.get st "after");
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

(* When the auto-checkpoint itself cannot land (snapshot outgrew a
   manifest half), the log cannot be cut and the failed commit's records
   linger ahead of later transactions — replay must refuse to attribute
   them to a later commit record. *)
let test_checkpoint_enospc_orphans_inert () =
  let kernel, fom, _, st =
    mk_store ~wal_bytes:(Sim.Units.kib 8) ~manifest_bytes:(Sim.Units.kib 1) ()
  in
  (* Enough objects that the snapshot no longer fits a 512-byte manifest
     half: the WAL-full auto-checkpoint fails with ENOSPC mid-commit. *)
  for i = 0 to 19 do
    commit_put st [ (Printf.sprintf "seedkey%03d" i, "v") ] []
  done;
  (try
     ignore (Kv.begin_txn st);
     Kv.put st "bigA" (String.make 3500 'x');
     Kv.put st "bigB" (String.make 3500 'y');
     Kv.commit st;
     Alcotest.fail "commit must raise ENOSPC when the checkpoint cannot land"
   with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> ());
  check_bool "txn rolled back" false (Kv.txn_live st);
  check_bool "orphan records linger in the log" true (Kv.wal_record_count st > 0);
  commit_put st [ ("after", "ok") ] [];
  ignore (P.crash_and_recover fom);
  check_bool "orphans dropped at replay" true
    (Sim.Stats.get (K.stats kernel) "store_wal_orphans" >= 1);
  check_bool "rolled-back put not resurrected" false (Kv.mem st "bigA");
  Alcotest.(check (option string)) "later commit intact" (Some "ok") (Kv.get st "after");
  check_int "seeds plus the later commit" 21 (Kv.object_count st);
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

let test_injected_fault_sites () =
  let kernel, _, plane, st = mk_store () in
  (* Commit abort: typed EIO before anything is logged. *)
  FI.arm plane ~site:FI.site_store_commit (FI.On_nth 1);
  ignore (Kv.begin_txn st);
  Kv.put st "k" "v";
  (try
     Kv.commit st;
     Alcotest.fail "injected commit abort must raise EIO"
   with Sim.Errno.Error (Sim.Errno.EIO, _) -> ());
  check_bool "aborted commit leaves nothing" false (Kv.mem st "k");
  (* Allocation failure: defragment-and-retry saves the commit. On_nth
     counts cumulative per-site evaluations, so arm relative to now. *)
  FI.arm plane ~site:FI.site_store_alloc
    (FI.On_nth (FI.evaluations plane ~site:FI.site_store_alloc + 1));
  commit_put st [ ("k", "v2") ] [];
  Alcotest.(check (option string)) "retried alloc committed" (Some "v2") (Kv.get st "k");
  check_int "alloc retry counted" 1 (Sim.Stats.get (K.stats kernel) "store_alloc_retry");
  (* Media-write retry: the redo is charged, the data lands. *)
  FI.arm plane ~site:FI.site_store_apply
    (FI.On_nth (FI.evaluations plane ~site:FI.site_store_apply + 1));
  commit_put st [ ("k", "v3") ] [];
  Alcotest.(check (option string)) "retried apply committed" (Some "v3") (Kv.get st "k");
  check_int "apply retry counted" 1 (Sim.Stats.get (K.stats kernel) "store_apply_retry");
  check_int "self-check clean" 0 (List.length (Kv.verify st));
  Kv.detach st

(* ------------------------------ invariant rule ----------------------- *)

let test_check_rule_guards_roots () =
  let kernel, fom, _, st = mk_store () in
  commit_put st [ ("a", "1") ] [ ("head", "a") ];
  check_int "rule quiet on a healthy store" 0
    (List.length (List.filter (fun v -> v.Os.Check.check = "store_roots") (Os.Check.run kernel)));
  (* Destroy the arena behind the live root: the rule must notice. *)
  Fs.Memfs.unlink (O1mem.Fom.fs fom) "/kv.arena.0";
  let tripped =
    List.filter (fun v -> v.Os.Check.check = "store_roots") (Os.Check.run kernel)
  in
  check_bool "rule trips on a lost arena" true (tripped <> []);
  Kv.detach st;
  check_int "detached rule unregistered" 0
    (List.length (List.filter (fun v -> v.Os.Check.check = "store_roots") (Os.Check.run kernel)))

(* ------------------------------ corruption (qcheck) ------------------ *)

(* Crash with one WAL byte corrupted at a random offset: recovery must
   land on a transaction boundary — some prefix of the committed states,
   never a partial transaction — and must count a detection. *)
let prop_torn_wal_byte =
  qtest ~count:20 "random WAL corruption never yields a partial transaction"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 1000))
    (fun (off, seed) ->
      let _, fom, _, st = mk_store ~seed () in
      let mirrors = ref [ (Kv.keys st, Kv.roots st) ] in
      for c = 1 to 3 do
        commit_put st
          [ (Printf.sprintf "k%d" c, String.make (30 * c) 'v'); ("shared", String.make (20 + c) 's') ]
          [ ("head", Printf.sprintf "k%d" c) ];
        mirrors := (Kv.keys st, Kv.roots st) :: !mirrors
      done;
      let fsys = O1mem.Fom.fs fom in
      let wal_ino = Option.get (Fs.Memfs.lookup fsys "/kv.wal") in
      let base =
        match Fs.Memfs.file_extents fsys wal_ino with
        | e :: _ -> Physmem.Frame.to_addr e.Fs.Extent.start
        | [] -> Alcotest.fail "WAL has no extents"
      in
      let target = base + (off mod Kv.wal_used_bytes st) in
      let mem = Fs.Memfs.mem fsys in
      let byte = Bytes.get (Physmem.Phys_mem.read mem ~addr:target ~len:1) 0 in
      Physmem.Phys_mem.restore_range mem ~addr:target
        (String.make 1 (Char.chr (Char.code byte lxor 0xFF)));
      ignore (P.crash_and_recover fom);
      let state = (Kv.keys st, Kv.roots st) in
      let clean = List.exists (fun m -> m = state) !mirrors in
      let detected = Kv.recovery_truncations st >= 1 in
      Kv.detach st;
      clean && detected)

(* ------------------------------ explorer & plan ---------------------- *)

let test_explorer_exhaustive () =
  let r = SC.explore_store ~keys:4 ~txns:2 ~seed:13 () in
  Alcotest.(check (list string)) "no violations" [] r.SC.violations;
  check_bool "boundaries found" true (r.SC.steps > 0);
  check_bool "every boundary crashed (plus damage arms)" true (r.SC.crashes > r.SC.steps);
  check_bool "torn arm detected damage" true (r.SC.torn_detections >= 1);
  check_bool "flip arm detected damage" true (r.SC.flip_detections >= 1)

let test_store_plan () =
  let o = SC.run_plan ~seed:3 ~rounds:10 () in
  check_string "plan name" "store" o.O1mem.Chaos.plan;
  Alcotest.(check (list string)) "no invariant violations" []
    (List.map Os.Check.violation_to_string o.O1mem.Chaos.checks);
  check_bool "faults were injected" true (o.O1mem.Chaos.injected_total >= 1);
  check_bool "ENOSPC finale degraded typed" true (o.O1mem.Chaos.enospc >= 1);
  check_bool "store sites consulted" true
    (List.exists (fun (s, evals, _) -> s = FI.site_store_commit && evals > 0) o.O1mem.Chaos.sites)

let suite =
  [
    Alcotest.test_case "basic put/get/root/commit" `Quick test_basic;
    Alcotest.test_case "abort discards the transaction" `Quick test_abort_discards;
    Alcotest.test_case "delete clears referencing roots" `Quick test_delete_clears_roots;
    Alcotest.test_case "API validation" `Quick test_validation;
    Alcotest.test_case "crash recovers the committed prefix" `Quick
      test_crash_recovers_committed_prefix;
    Alcotest.test_case "recovery is idempotent, gauges re-baselined" `Quick
      test_recover_twice_idempotent;
    Alcotest.test_case "checkpoint cuts the replay" `Quick test_checkpoint_cuts_replay;
    Alcotest.test_case "WAL-full commit auto-checkpoints" `Quick test_wal_full_autocheckpoint;
    Alcotest.test_case "over-capacity commit degrades to typed ENOSPC" `Quick
      test_enospc_typed_and_clean;
    Alcotest.test_case "failed commit's WAL records are durably cut" `Quick
      test_failed_commit_orphans_cut;
    Alcotest.test_case "orphan records of a failed commit are never replayed" `Quick
      test_checkpoint_enospc_orphans_inert;
    Alcotest.test_case "injected store faults degrade and retry" `Quick test_injected_fault_sites;
    Alcotest.test_case "check rule guards live roots" `Quick test_check_rule_guards_roots;
    prop_torn_wal_byte;
    Alcotest.test_case "explorer: crash at every boundary" `Slow test_explorer_exhaustive;
    Alcotest.test_case "store fault plan" `Quick test_store_plan;
  ]
