(* End-to-end scenarios mirroring the paper's experiments: these check the
   *shapes* the benchmarks report (linear vs constant, who wins) so the
   bench harness cannot silently drift. *)
open Helpers
module K = Os.Kernel
module F = O1mem.Fom

let time_of k f =
  let clock = K.clock k in
  let before = Sim.Clock.now clock in
  f ();
  Sim.Clock.elapsed clock ~since:before

(* E1 shape: MAP_POPULATE mmap linear in size; demand mmap flat. *)
let test_fig1a_shape () =
  let run ~populate kb =
    let k = mk_kernel () in
    let p = K.create_process k () in
    let fs = K.tmpfs k in
    let ino = Fs.Memfs.create_file fs "/f" ~persistence:Fs.Inode.Volatile in
    Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib kb);
    time_of k (fun () ->
        ignore
          (K.mmap_file k p ~fs ~path:"/f" ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate ()))
  in
  let pop4 = run ~populate:true 4 and pop1024 = run ~populate:true 1024 in
  let dem4 = run ~populate:false 4 and dem1024 = run ~populate:false 1024 in
  (* The populate-only work (total minus the flat mmap base) is linear. *)
  check_bool "populate work linear in size" true (pop1024 - dem1024 > 40 * (pop4 - dem4));
  check_bool "populate visibly above demand at 1MB" true (pop1024 > 5 * dem1024);
  check_int "demand flat" dem4 dem1024;
  check_bool "demand mmap is ~8us" true
    (let us = Sim.Clock.us (K.clock (mk_kernel ())) dem4 in
     us > 2.0 && us < 20.0)

(* E2 shape: touching one byte per page, demand faulting is >> populate. *)
let test_fig1b_shape () =
  let run ~populate kb =
    let k = mk_kernel () in
    let p = K.create_process k () in
    let fs = K.tmpfs k in
    let ino = Fs.Memfs.create_file fs "/f" ~persistence:Fs.Inode.Volatile in
    Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib kb);
    let va =
      K.mmap_file k p ~fs ~path:"/f" ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate ()
    in
    time_of k (fun () ->
        ignore
          (K.access_range k p ~va ~len:(Sim.Units.kib kb) ~write:false ~stride:Sim.Units.page_size))
  in
  let dem = run ~populate:false 1024 in
  let pop = run ~populate:true 1024 in
  check_bool "demand read >> populated read (paper: 50x)" true (dem > 10 * pop)

(* E3 shape: malloc vs PMFS file allocation within ~2x of each other. *)
let test_fig7_shape () =
  let pages = 256 in
  let len = pages * Sim.Units.page_size in
  (* malloc + touch every page *)
  let k = mk_kernel () in
  let p = K.create_process k () in
  let h = Heap.Malloc_sim.create k p in
  let t_malloc =
    time_of k (fun () ->
        let va = Heap.Malloc_sim.malloc h ~bytes:len in
        ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size))
  in
  (* PMFS file + map + touch every page *)
  let kernel, fom = mk_fom () in
  let proc = K.create_process kernel () in
  let t_pmfs =
    time_of kernel (fun () ->
        let r = F.alloc fom proc ~len ~prot:Hw.Prot.rw () in
        ignore (F.access_range fom proc ~va:r.F.va ~len ~write:true ~stride:Sim.Units.page_size))
  in
  check_bool "same ballpark (paper: little extra cost)" true
    (t_pmfs < 2 * t_malloc && t_malloc < 8 * t_pmfs)

(* E5 shape: mapping a shared file into N processes is O(1)-per-process
   with shared subtrees, linear per process in the baseline. *)
let test_fig3_shape () =
  let len = Sim.Units.mib 16 in
  (* Baseline: each process populates its own PTEs. *)
  let k = mk_kernel () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/shared" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:len;
  let baseline_per_proc =
    let p = K.create_process k () in
    time_of k (fun () ->
        ignore (K.mmap_file k p ~fs ~path:"/shared" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:true ()))
  in
  (* FOM: graft the master subtree. *)
  let kernel, fom = mk_fom () in
  let p1 = K.create_process kernel () in
  ignore (F.alloc fom p1 ~name:"/shared" ~len ~prot:Hw.Prot.r ());
  let fom_per_proc =
    let p2 = K.create_process kernel () in
    time_of kernel (fun () -> ignore (F.map_path fom p2 "/shared"))
  in
  check_bool "grafting at least 10x cheaper" true (baseline_per_proc > 10 * fom_per_proc)

(* E7 shape: range TLB needs far fewer walk refs than page TLB on a
   sparse scan of a large region. *)
let test_fig9_shape () =
  (* 32 MiB: leaves room for the PMFS journal in the 64 MiB test FS. *)
  let len = Sim.Units.mib 32 in
  let kernel, fom = mk_fom () in
  let stats = K.stats kernel in
  (* Page-table process. *)
  let p_pt = K.create_process kernel () in
  let r_pt = F.alloc fom p_pt ~strategy:F.Per_page ~len ~prot:Hw.Prot.rw () in
  ignore (F.access_range fom p_pt ~va:r_pt.F.va ~len ~write:false ~stride:Sim.Units.page_size);
  let pt_walk_refs = Sim.Stats.get stats "walk_refs" in
  let pt_misses = Sim.Stats.get stats "tlb_miss" in
  F.free fom p_pt r_pt;
  (* Range-translation process. *)
  let p_rt = K.create_process kernel ~range_translations:true () in
  let r_rt = F.alloc fom p_rt ~strategy:F.Range_translation ~len ~prot:Hw.Prot.rw () in
  let walks_before = Sim.Stats.get stats "page_walks" in
  let range_walks_before = Sim.Stats.get stats "range_walks" in
  ignore (F.access_range fom p_rt ~va:r_rt.F.va ~len ~write:false ~stride:Sim.Units.page_size);
  check_int "no page walks at all" walks_before (Sim.Stats.get stats "page_walks");
  check_int "exactly one range walk" (range_walks_before + 1) (Sim.Stats.get stats "range_walks");
  check_bool "baseline page path misses a lot" true (pt_misses > 1000 && pt_walk_refs > 4000)

(* E8: read() of 16KB vs demand-mapped access, cold TLB. *)
let test_read_vs_mmap_claim () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/r" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 (String.make 16384 'y');
  let t_read = time_of k (fun () -> ignore (K.read_syscall k p ~fs ~ino ~off:0 ~len:16384)) in
  let va = K.mmap_file k p ~fs ~path:"/r" ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate:false () in
  (* Reading 16 KB through the mapping means touching every line of it,
     faulting and walking along the way. *)
  let t_mmap_demand =
    time_of k (fun () -> ignore (K.access_range k p ~va ~len:16384 ~write:false ~stride:64))
  in
  check_bool "read() beats demand-faulted mapped access" true (t_read < t_mmap_demand)

(* E12 shape: reclaiming N MiB via page scanning costs far more than
   deleting a discardable file. *)
let test_reclaim_shape () =
  let len = Sim.Units.mib 4 in
  let k = mk_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  let t_scan =
    time_of k (fun () ->
        ignore (Os.Reclaim.scan (K.reclaim k) ~target_frames:(len / Sim.Units.page_size)))
  in
  let kernel, fom = mk_fom () in
  let d = O1mem.Discard.create ~fs:(F.fs fom) in
  O1mem.Discard.register_cache_file d ~path:"/cache" ~size:len;
  let t_discard = time_of kernel (fun () -> ignore (O1mem.Discard.pressure d ~needed_bytes:len)) in
  check_bool "file discard way cheaper than page scan" true (t_scan > 20 * t_discard)

(* E14 shape: end-to-end alloc+touch, FOM wins at large sizes. *)
let test_o1_headline () =
  let t_baseline len =
    let k = mk_kernel () in
    let p = K.create_process k () in
    time_of k (fun () ->
        let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
        ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size))
  in
  let t_fom len =
    let kernel, fom = mk_fom () in
    let proc = K.create_process kernel () in
    time_of kernel (fun () ->
        let r = F.alloc fom proc ~len ~prot:Hw.Prot.rw () in
        ignore (F.access_range fom proc ~va:r.F.va ~len ~write:true ~stride:Sim.Units.page_size))
  in
  let len = Sim.Units.mib 16 in
  check_bool "FOM beats demand paging end-to-end at 16 MiB" true (t_fom len < t_baseline len)

(* E16 shape: process launch with pre-created page tables is cheaper than
   baseline launch (touching all segments). *)
let test_launch_shape () =
  let code = Sim.Units.mib 2 and heap = Sim.Units.mib 4 and stack = Sim.Units.mib 1 in
  let k = mk_kernel () in
  let t_baseline =
    time_of k (fun () ->
        let p = K.create_process k () in
        let touch len =
          let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
          ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size)
        in
        touch code;
        touch heap;
        touch stack)
  in
  let kernel, fom = mk_fom () in
  (* Warm-up launch builds the code master; the measured launch reuses it. *)
  let p0, _ = F.launch fom ~code_bytes:code ~heap_bytes:heap ~stack_bytes:stack in
  F.exit_process fom p0;
  let t_fom =
    time_of kernel (fun () ->
        let p, regions = F.launch fom ~code_bytes:code ~heap_bytes:heap ~stack_bytes:stack in
        List.iter
          (fun (r : F.region) ->
            ignore
              (F.access_range fom p ~va:r.F.va ~len:r.F.len ~write:r.F.prot.Hw.Prot.write
                 ~stride:Sim.Units.page_size))
          regions)
  in
  check_bool "FOM launch cheaper than baseline" true (t_fom < t_baseline)

(* E13: metadata accounting across designs. *)
let test_metadata_accounting () =
  let k = mk_kernel () in
  (* struct page for the whole machine. *)
  let frames = Physmem.Phys_mem.total_frames (K.mem k) in
  check_int "64B per frame" (frames * 64) (Os.Page_meta.metadata_bytes (K.page_meta k));
  (* FS-side metadata for a 16 MiB file: inode + 1 extent + bitmap share. *)
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/big" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.mib 16);
  let node = Fs.Memfs.inode fs ino in
  check_bool "per-file metadata tiny vs struct page" true
    (Fs.Inode.metadata_bytes node * 100 < (Sim.Units.mib 16 / Sim.Units.page_size) * 64)

let suite =
  [
    Alcotest.test_case "E1: populate linear, demand flat" `Quick test_fig1a_shape;
    Alcotest.test_case "E2: demand read >> populated read" `Quick test_fig1b_shape;
    Alcotest.test_case "E3: malloc ~ PMFS allocation" `Quick test_fig7_shape;
    Alcotest.test_case "E5: shared-subtree map beats per-process PTEs" `Quick test_fig3_shape;
    Alcotest.test_case "E7: range TLB avoids page walks" `Quick test_fig9_shape;
    Alcotest.test_case "E8: read() vs cold mapped access" `Quick test_read_vs_mmap_claim;
    Alcotest.test_case "E12: discard beats page scanning" `Quick test_reclaim_shape;
    Alcotest.test_case "E14: FOM wins end-to-end" `Quick test_o1_headline;
    Alcotest.test_case "E16: FOM launch cheaper" `Quick test_launch_shape;
    Alcotest.test_case "E13: metadata accounting" `Quick test_metadata_accounting;
  ]
