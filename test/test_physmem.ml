open Helpers
module PM = Physmem.Phys_mem
module Frame = Physmem.Frame

let test_frame_arith () =
  check_int "to_addr" 8192 (Frame.to_addr 2);
  check_int "of_addr" 2 (Frame.of_addr 8192);
  check_int "of_addr mid" 2 (Frame.of_addr 8200);
  check_int "offset" 8 (Frame.offset_in_frame 8200)

let test_create_validation () =
  let clock, stats = mk_env () in
  Alcotest.check_raises "unaligned dram" (Invalid_argument "Phys_mem.create: dram_bytes not page-aligned")
    (fun () -> ignore (PM.create ~clock ~stats ~dram_bytes:4097 ~nvm_bytes:0 ()));
  Alcotest.check_raises "empty" (Invalid_argument "Phys_mem.create: empty machine") (fun () ->
      ignore (PM.create ~clock ~stats ~dram_bytes:0 ~nvm_bytes:0 ()))

let test_regions () =
  let mem = mk_mem ~dram:(Sim.Units.mib 4) ~nvm:(Sim.Units.mib 4) () in
  check_int "total frames" 2048 (PM.total_frames mem);
  check_int "dram frames" 1024 (PM.dram_frames mem);
  check_int "nvm frames" 1024 (PM.nvm_frames mem);
  check_bool "dram region" true (PM.region_of_frame mem 0 = PM.Dram);
  check_bool "nvm region" true (PM.region_of_frame mem 1024 = PM.Nvm);
  check_bool "valid" true (PM.valid_frame mem 2047);
  check_bool "invalid" false (PM.valid_frame mem 2048)

let test_read_write_bytes () =
  let mem = mk_mem () in
  check_bool "initially zero" true (PM.read_byte mem 1000 = '\000');
  PM.write_byte mem 1000 'A';
  check_bool "written" true (PM.read_byte mem 1000 = 'A');
  PM.write_byte mem 1000 '\000';
  check_bool "rewritten to zero" true (PM.read_byte mem 1000 = '\000');
  check_int "no residue stored" 0 (PM.resident_bytes mem)

let test_bulk_read_write () =
  let mem = mk_mem () in
  PM.write mem ~addr:4096 "hello world";
  let b = PM.read mem ~addr:4096 ~len:11 in
  check_string "round trip" "hello world" (Bytes.to_string b);
  let partial = PM.read mem ~addr:4100 ~len:5 in
  check_string "offset read" "o wor" (Bytes.to_string partial)

let test_access_charges () =
  let mem = mk_mem ~dram:(Sim.Units.mib 4) ~nvm:(Sim.Units.mib 4) () in
  let clock = PM.clock mem in
  let model = Sim.Clock.model clock in
  let before = Sim.Clock.now clock in
  PM.touch mem 0;
  check_int "dram touch cost" model.Sim.Cost_model.mem_ref_dram (Sim.Clock.elapsed clock ~since:before);
  let before = Sim.Clock.now clock in
  PM.write_byte mem (Frame.to_addr 1024) 'x';
  check_int "nvm write cost" model.Sim.Cost_model.mem_ref_nvm_write
    (Sim.Clock.elapsed clock ~since:before);
  check_int "stats dram_read" 1 (Sim.Stats.get (PM.stats mem) "dram_read");
  check_int "stats nvm_write" 1 (Sim.Stats.get (PM.stats mem) "nvm_write")

let test_bulk_charges_per_line () =
  let mem = mk_mem () in
  let clock = PM.clock mem in
  let model = Sim.Clock.model clock in
  let before = Sim.Clock.now clock in
  ignore (PM.read mem ~addr:0 ~len:256);
  (* Streaming: one full-latency line + bandwidth cost for the rest. *)
  check_int "first-line latency + stream"
    (model.Sim.Cost_model.mem_ref_dram + Sim.Cost_model.copy_cost model ~bytes:256)
    (Sim.Clock.elapsed clock ~since:before)

let test_zero_frame () =
  let mem = mk_mem () in
  PM.write mem ~addr:8192 "dirty";
  check_bool "frame dirty" false (PM.frame_is_zero mem 2);
  let clock = PM.clock mem in
  let before = Sim.Clock.now clock in
  PM.zero_frame mem 2;
  check_bool "frame clean" true (PM.frame_is_zero mem 2);
  check_int "zeroing charged" 1024 (Sim.Clock.elapsed clock ~since:before);
  check_int "bytes_zeroed stat" 4096 (Sim.Stats.get (PM.stats mem) "bytes_zeroed")

let test_out_of_range () =
  let mem = mk_mem ~dram:(Sim.Units.mib 1) ~nvm:0 () in
  Alcotest.check_raises "read oob" (Invalid_argument "Phys_mem: address out of range") (fun () ->
      ignore (PM.read_byte mem (Sim.Units.mib 1)))

let test_crash_drops_dram_keeps_nvm () =
  let mem = mk_mem ~dram:(Sim.Units.mib 4) ~nvm:(Sim.Units.mib 4) () in
  PM.write mem ~addr:0 "volatile";
  let nvm_addr = Frame.to_addr 1024 in
  PM.write mem ~addr:nvm_addr "durable";
  PM.crash mem;
  check_string "dram lost" (String.make 8 '\000') (Bytes.to_string (PM.read mem ~addr:0 ~len:8));
  check_string "nvm kept" "durable" (Bytes.to_string (PM.read mem ~addr:nvm_addr ~len:7))

let test_discard_no_cost () =
  let mem = mk_mem () in
  PM.write mem ~addr:4096 "x";
  let clock = PM.clock mem in
  let before = Sim.Clock.now clock in
  PM.discard_frame mem 1;
  check_int "free of charge" 0 (Sim.Clock.elapsed clock ~since:before);
  check_bool "cleared" true (PM.frame_is_zero mem 1)

(* Zero engine *)

let test_zero_engine_pool () =
  let mem = mk_mem () in
  let z = Physmem.Zero_engine.create mem in
  check_bool "pool empty" true (Physmem.Zero_engine.take_zeroed z = None);
  PM.write mem ~addr:(Frame.to_addr 5) "junk";
  Physmem.Zero_engine.put_dirty z [ 5; 6 ];
  check_int "pending" 2 (Physmem.Zero_engine.pending z);
  check_int "zeroed two" 2 (Physmem.Zero_engine.background_step z ~budget_frames:10);
  check_int "available" 2 (Physmem.Zero_engine.available z);
  check_bool "frame 5 clean" true (PM.frame_is_zero mem 5);
  check_bool "handout" true (Physmem.Zero_engine.take_zeroed z = Some 5)

let test_zero_engine_budget () =
  let mem = mk_mem () in
  let z = Physmem.Zero_engine.create mem in
  Physmem.Zero_engine.put_dirty z [ 1; 2; 3; 4 ];
  check_int "partial" 3 (Physmem.Zero_engine.background_step z ~budget_frames:3);
  check_int "left pending" 1 (Physmem.Zero_engine.pending z)

let test_bulk_erase_constant_cost () =
  let mem = mk_mem () in
  let z = Physmem.Zero_engine.create mem in
  for i = 0 to 63 do
    PM.write mem ~addr:(Frame.to_addr i) "payload"
  done;
  let clock = PM.clock mem in
  let t1 =
    let before = Sim.Clock.now clock in
    Physmem.Zero_engine.bulk_erase z ~first:0 ~count:1;
    Sim.Clock.elapsed clock ~since:before
  in
  for i = 0 to 63 do
    PM.write mem ~addr:(Frame.to_addr i) "payload"
  done;
  let t64 =
    let before = Sim.Clock.now clock in
    Physmem.Zero_engine.bulk_erase z ~first:0 ~count:64;
    Sim.Clock.elapsed clock ~since:before
  in
  check_int "erase cost independent of size" t1 t64;
  check_bool "all clean" true (PM.frame_is_zero mem 63)

(* NVM persistence primitives *)

let test_nvm_flush_fence () =
  let mem = mk_mem ~dram:(Sim.Units.mib 4) ~nvm:(Sim.Units.mib 4) () in
  let nvm = Physmem.Nvm.create mem in
  let addr = Frame.to_addr 1024 in
  Physmem.Nvm.write_persistent nvm ~addr "important";
  check_bool "unflushed lines" true (Physmem.Nvm.unflushed_lines nvm > 0);
  Physmem.Nvm.flush nvm ~addr ~len:9;
  Physmem.Nvm.fence nvm;
  check_int "all flushed" 0 (Physmem.Nvm.unflushed_lines nvm);
  Physmem.Nvm.crash nvm;
  check_string "durable after crash" "important"
    (Bytes.to_string (PM.read mem ~addr ~len:9))

let test_nvm_torn_write () =
  let mem = mk_mem ~dram:(Sim.Units.mib 4) ~nvm:(Sim.Units.mib 4) () in
  let nvm = Physmem.Nvm.create mem in
  let addr = Frame.to_addr 1024 in
  Physmem.Nvm.write_persistent nvm ~addr "lost";
  (* no flush *)
  Physmem.Nvm.crash nvm;
  check_string "unflushed data torn" (String.make 4 '\000')
    (Bytes.to_string (PM.read mem ~addr ~len:4))

(* Cache hierarchy *)

let mk_cached_mem () =
  let mem = mk_mem () in
  let cache =
    Physmem.Cache_hier.create ~clock:(PM.clock mem) ~stats:(PM.stats mem) ()
  in
  PM.attach_cache mem cache;
  (mem, cache)

let test_cache_hit_after_miss () =
  let mem, _ = mk_cached_mem () in
  let clock = PM.clock mem in
  let cold =
    let b = Sim.Clock.now clock in
    PM.touch mem 4096;
    Sim.Clock.elapsed clock ~since:b
  in
  let warm =
    let b = Sim.Clock.now clock in
    PM.touch mem 4096;
    Sim.Clock.elapsed clock ~since:b
  in
  check_bool "cold miss pays memory" true (cold > 80);
  check_int "warm hit is L1 latency" 4 warm;
  check_int "one llc miss" 1 (Sim.Stats.get (PM.stats mem) "llc_miss");
  check_int "one l1 hit" 1 (Sim.Stats.get (PM.stats mem) "l1_hit")

let test_cache_same_line_shares () =
  let mem, _ = mk_cached_mem () in
  PM.touch mem 0;
  (* Byte 63 is in the same 64B line: hits. *)
  PM.touch mem 63;
  check_int "same line hits" 1 (Sim.Stats.get (PM.stats mem) "l1_hit");
  (* Byte 64 is the next line: misses. *)
  PM.touch mem 64;
  check_int "next line misses" 2 (Sim.Stats.get (PM.stats mem) "llc_miss")

let test_cache_capacity_spill_to_l2 () =
  let mem, _ = mk_cached_mem () in
  (* Touch 64 KiB of distinct lines: twice the 32 KiB L1. *)
  let lines = 1024 in
  for i = 0 to lines - 1 do
    PM.touch mem (i * 64)
  done;
  (* Second pass: the early lines fell out of L1 but fit in L2. *)
  Sim.Stats.reset (PM.stats mem);
  for i = 0 to lines - 1 do
    PM.touch mem (i * 64)
  done;
  check_int "no LLC misses on re-scan" 0 (Sim.Stats.get (PM.stats mem) "llc_miss");
  check_bool "some L2 hits" true (Sim.Stats.get (PM.stats mem) "l2_hit" > 0)

let test_cache_dirty_writeback_counted () =
  let clock, stats = mk_env () in
  (* A tiny 1-set cache so evictions are immediate. *)
  let cache =
    Physmem.Cache_hier.create ~clock ~stats
      ~levels:[ { Physmem.Cache_hier.name = "t"; size_bytes = 128; ways = 2; latency = 1 } ]
      ()
  in
  ignore (Physmem.Cache_hier.access cache ~addr:0 ~write:true);
  ignore (Physmem.Cache_hier.access cache ~addr:64 ~write:false);
  check_int "no writeback yet" 0 (Sim.Stats.get stats "cache_writeback");
  (* Third distinct line evicts the dirty LRU line (addr 0). *)
  ignore (Physmem.Cache_hier.access cache ~addr:128 ~write:false);
  check_int "dirty victim written back" 1 (Sim.Stats.get stats "cache_writeback")

let test_cache_flush () =
  let mem, cache = mk_cached_mem () in
  PM.touch mem 0;
  check_bool "resident" true (Physmem.Cache_hier.line_count cache > 0);
  Physmem.Cache_hier.flush cache;
  check_int "empty after flush" 0 (Physmem.Cache_hier.line_count cache);
  Sim.Stats.reset (PM.stats mem);
  PM.touch mem 0;
  check_int "cold again" 1 (Sim.Stats.get (PM.stats mem) "llc_miss")

let test_cache_detach_restores_flat_cost () =
  let mem, _ = mk_cached_mem () in
  PM.touch mem 0;
  PM.detach_cache mem;
  let clock = PM.clock mem in
  let b = Sim.Clock.now clock in
  PM.touch mem 0;
  check_int "flat DRAM latency again" 80 (Sim.Clock.elapsed clock ~since:b)

(* Properties *)

let prop_write_read_roundtrip =
  qtest "bulk write/read round-trips" ~count:100
    QCheck2.Gen.(pair (int_bound 10_000) (string_size ~gen:printable (int_range 1 200)))
    (fun (addr, s) ->
      let mem = mk_mem () in
      PM.write mem ~addr s;
      Bytes.to_string (PM.read mem ~addr ~len:(String.length s)) = s)

let prop_zero_then_read_zero =
  qtest "zero_range clears everything" ~count:50
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 500))
    (fun (addr, len) ->
      let mem = mk_mem () in
      PM.write mem ~addr (String.make len 'z');
      PM.zero_range mem ~addr ~len;
      Bytes.to_string (PM.read mem ~addr ~len) = String.make len '\000')

let suite =
  [
    Alcotest.test_case "frame: address arithmetic" `Quick test_frame_arith;
    Alcotest.test_case "phys_mem: create validation" `Quick test_create_validation;
    Alcotest.test_case "phys_mem: regions" `Quick test_regions;
    Alcotest.test_case "phys_mem: byte read/write" `Quick test_read_write_bytes;
    Alcotest.test_case "phys_mem: bulk read/write" `Quick test_bulk_read_write;
    Alcotest.test_case "phys_mem: access costs by region" `Quick test_access_charges;
    Alcotest.test_case "phys_mem: bulk streaming charge" `Quick test_bulk_charges_per_line;
    Alcotest.test_case "phys_mem: zero_frame" `Quick test_zero_frame;
    Alcotest.test_case "phys_mem: out of range" `Quick test_out_of_range;
    Alcotest.test_case "phys_mem: crash semantics" `Quick test_crash_drops_dram_keeps_nvm;
    Alcotest.test_case "phys_mem: discard is free" `Quick test_discard_no_cost;
    Alcotest.test_case "zero_engine: background pool" `Quick test_zero_engine_pool;
    Alcotest.test_case "zero_engine: budget respected" `Quick test_zero_engine_budget;
    Alcotest.test_case "zero_engine: bulk erase is O(1)" `Quick test_bulk_erase_constant_cost;
    Alcotest.test_case "nvm: flush+fence durability" `Quick test_nvm_flush_fence;
    Alcotest.test_case "nvm: torn unflushed write" `Quick test_nvm_torn_write;
    Alcotest.test_case "cache: miss then hit" `Quick test_cache_hit_after_miss;
    Alcotest.test_case "cache: line granularity" `Quick test_cache_same_line_shares;
    Alcotest.test_case "cache: L1 spill caught by L2" `Quick test_cache_capacity_spill_to_l2;
    Alcotest.test_case "cache: dirty write-back counted" `Quick test_cache_dirty_writeback_counted;
    Alcotest.test_case "cache: flush" `Quick test_cache_flush;
    Alcotest.test_case "cache: detach restores flat cost" `Quick test_cache_detach_restores_flat_cost;
    prop_write_read_roundtrip;
    prop_zero_then_read_zero;
  ]
