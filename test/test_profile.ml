open Helpers

let mk () =
  let clock = mk_clock () in
  (Sim.Profile.create ~clock (), clock)

(* ----------------------------- spans ------------------------------- *)

let test_span_nesting () =
  let p, clock = mk () in
  let v =
    Sim.Profile.span p "outer" (fun () ->
        Sim.Clock.charge clock 5;
        let inner = Sim.Profile.span p "inner" (fun () -> Sim.Clock.charge clock 7; 1) in
        Sim.Clock.charge clock 2;
        inner + 1)
  in
  check_int "span returns f's value" 2 v;
  check_int "stack drained" 0 (Sim.Profile.depth p);
  match Sim.Profile.tree p with
  | [ outer ] ->
    check_string "root name" "outer" outer.Sim.Profile.name;
    check_int "outer cum covers everything" 14 outer.Sim.Profile.cum;
    check_int "outer self excludes inner" 7 outer.Sim.Profile.self;
    check_int "one call" 1 outer.Sim.Profile.calls;
    (match outer.Sim.Profile.children with
    | [ inner ] ->
      check_string "child name" "inner" inner.Sim.Profile.name;
      check_int "inner cum" 7 inner.Sim.Profile.cum;
      check_int "leaf self = cum" 7 inner.Sim.Profile.self
    | cs -> Alcotest.fail (Printf.sprintf "expected 1 child, got %d" (List.length cs)))
  | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots))

let test_same_name_distinct_paths () =
  let p, clock = mk () in
  (* "work" as a root and "work" under "outer" are different tree nodes. *)
  Sim.Profile.span p "work" (fun () -> Sim.Clock.charge clock 3);
  Sim.Profile.span p "outer" (fun () ->
      Sim.Profile.span p "work" (fun () -> Sim.Clock.charge clock 10));
  let flat = Sim.Profile.flatten p in
  let find path =
    match List.find_opt (fun (pth, _, _, _) -> pth = path) flat with
    | Some (_, _, self, _) -> self
    | None -> Alcotest.fail ("missing path " ^ path)
  in
  check_int "root work" 3 (find "work");
  check_int "nested work" 10 (find "outer;work")

let test_exception_unwinding () =
  let p, clock = mk () in
  (try
     Sim.Profile.span p "outer" (fun () ->
         Sim.Profile.span p "boom" (fun () ->
             Sim.Clock.charge clock 4;
             failwith "x"))
   with Failure _ -> ());
  check_int "no leaked frames" 0 (Sim.Profile.depth p);
  match Sim.Profile.tree p with
  | [ outer ] ->
    check_int "cycles up to the raise attributed" 4 outer.Sim.Profile.cum;
    check_int "outer call still counted" 1 outer.Sim.Profile.calls;
    (match outer.Sim.Profile.children with
    | [ boom ] -> check_int "inner counted too" 1 boom.Sim.Profile.calls
    | _ -> Alcotest.fail "inner span missing")
  | _ -> Alcotest.fail "outer span missing"

let test_self_vs_cum_invariant () =
  let p, clock = mk () in
  for i = 1 to 5 do
    Sim.Profile.span p "a" (fun () ->
        Sim.Clock.charge clock i;
        Sim.Profile.span p "b" (fun () -> Sim.Clock.charge clock (2 * i));
        Sim.Profile.span p "c" (fun () -> Sim.Clock.charge clock 1))
  done;
  let rec check_node (n : Sim.Profile.node) =
    let child_cum =
      List.fold_left (fun acc (c : Sim.Profile.node) -> acc + c.Sim.Profile.cum) 0
        n.Sim.Profile.children
    in
    check_int
      (Printf.sprintf "self = cum - children at %s" n.Sim.Profile.name)
      n.Sim.Profile.self
      (n.Sim.Profile.cum - child_cum);
    List.iter check_node n.Sim.Profile.children
  in
  List.iter check_node (Sim.Profile.tree p);
  check_int "all cycles attributed" (Sim.Profile.total_cycles p) (Sim.Profile.attributed_cycles p);
  check_int "nothing unattributed" 0 (Sim.Profile.unattributed_cycles p)

let test_unattributed () =
  let p, clock = mk () in
  Sim.Clock.charge clock 100 (* outside any span *);
  Sim.Profile.span p "a" (fun () -> Sim.Clock.charge clock 50);
  check_int "total sees everything" 150 (Sim.Profile.total_cycles p);
  check_int "attributed only in-span" 50 (Sim.Profile.attributed_cycles p);
  check_int "remainder explicit" 100 (Sim.Profile.unattributed_cycles p);
  let f = Sim.Profile.attributed_fraction p in
  check_bool "fraction = 1/3" true (Float.abs (f -. (1.0 /. 3.0)) < 1e-9);
  check_bool "collapsed reports the remainder" true
    (contains ~needle:"(unattributed) 100" (Sim.Profile.to_collapsed p))

let test_disabled_sentinel () =
  let p = Sim.Profile.disabled in
  check_bool "disabled" false (Sim.Profile.enabled p);
  check_int "span still runs f" 9 (Sim.Profile.span p "x" (fun () -> 9));
  check_int "no tree" 0 (List.length (Sim.Profile.tree p));
  check_int "no cycles" 0 (Sim.Profile.total_cycles p)

let test_reset () =
  let p, clock = mk () in
  Sim.Profile.span p "a" (fun () -> Sim.Clock.charge clock 10);
  Sim.Profile.reset p;
  check_int "tree cleared" 0 (List.length (Sim.Profile.tree p));
  check_int "attribution restarts at reset" 0 (Sim.Profile.total_cycles p);
  check_int "events cleared" 0 (Sim.Profile.events_recorded p);
  Sim.Clock.charge clock 7;
  check_int "cycles after reset count" 7 (Sim.Profile.total_cycles p)

(* ------------------------- zero overhead --------------------------- *)

(* The profiler must never charge the clock: a profiled run spends
   exactly the same simulated cycles as an unprofiled one. *)
let run_workload k =
  let p = Os.Kernel.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = Os.Kernel.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (Os.Kernel.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  Os.Kernel.munmap k p ~va ~len;
  Sim.Clock.now (Os.Kernel.clock k)

let test_zero_overhead () =
  let k_plain = mk_kernel () in
  let cycles_plain = run_workload k_plain in
  let k_prof = mk_kernel () in
  let profile = Sim.Profile.create ~clock:(Os.Kernel.clock k_prof) () in
  Sim.Trace.attach_profile (Os.Kernel.trace k_prof) profile;
  let cycles_prof = run_workload k_prof in
  check_int "identical total cycles with profiling on" cycles_plain cycles_prof;
  check_bool "profiler saw the work" true (Sim.Profile.attributed_cycles profile > 0)

let test_attach_disabled_rejected () =
  Alcotest.check_raises "cannot attach to the shared disabled trace"
    (Invalid_argument "Trace.attach_profile: disabled trace") (fun () ->
      Sim.Trace.attach_profile Sim.Trace.disabled (Sim.Profile.disabled))

(* --------------------------- exporters ----------------------------- *)

let golden_profile () =
  let p, clock = mk () in
  Sim.Profile.span p "mmap" (fun () ->
      Sim.Clock.charge clock 100;
      Sim.Profile.span p "fault" (fun () -> Sim.Clock.charge clock 40));
  Sim.Profile.span p "access" (fun () -> Sim.Clock.charge clock 10);
  (p, clock)

let test_collapsed_golden () =
  let p, _ = golden_profile () in
  check_string "collapsed stacks, DFS order, self cycles"
    "access 10\nmmap 100\nmmap;fault 40\n" (Sim.Profile.to_collapsed p)

let test_chrome_golden () =
  let p, _ = golden_profile () in
  let json = Sim.Profile.to_chrome_json p in
  (* Re-parse: the export must be valid JSON. *)
  (match Sim.Json.of_string (Sim.Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome JSON does not parse: " ^ e));
  match Sim.Json.member json "traceEvents" with
  | Some (Sim.Json.List evs) ->
    check_int "three complete events" 3 (List.length evs);
    let field e name =
      match Sim.Json.member e name with
      | Some (Sim.Json.String s) -> s
      | Some (Sim.Json.Int i) -> string_of_int i
      | _ -> Alcotest.fail ("missing field " ^ name)
    in
    (* Sorted parents-first: mmap (starts first, longest), then fault. *)
    Alcotest.(check (list string))
      "parents before children, then by start" [ "mmap"; "fault"; "access" ]
      (List.map (fun e -> field e "name") evs);
    List.iter (fun e -> check_string "complete event" "X" (field e "ph")) evs;
    let durs = List.map (fun e -> field e "dur") evs in
    Alcotest.(check (list string)) "durations in virtual cycles" [ "140"; "40"; "10" ] durs
  | _ -> Alcotest.fail "traceEvents missing"

let test_to_json_shape () =
  let p, _ = golden_profile () in
  let json = Sim.Profile.to_json p in
  (match Sim.Json.of_string (Sim.Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("profile JSON does not parse: " ^ e));
  (match Sim.Json.member json "attributed_cycles" with
  | Some (Sim.Json.Int n) -> check_int "attributed" 150 n
  | _ -> Alcotest.fail "attributed_cycles missing");
  match Sim.Json.member json "tree" with
  | Some (Sim.Json.Obj roots) ->
    Alcotest.(check (list string)) "roots sorted by name" [ "access"; "mmap" ]
      (List.map fst roots)
  | _ -> Alcotest.fail "tree missing"

let test_top_spans () =
  let p, _ = golden_profile () in
  match Sim.Profile.top_spans ~k:2 p with
  | [ (p1, _, s1, _); (p2, _, s2, _) ] ->
    check_string "hottest self first" "mmap" p1;
    check_int "hottest self cycles" 100 s1;
    check_string "then fault" "mmap;fault" p2;
    check_int "second self cycles" 40 s2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l))

let test_event_ring_bounded () =
  let clock = mk_clock () in
  let p = Sim.Profile.create ~clock ~events_capacity:4 () in
  for _ = 1 to 6 do
    Sim.Profile.span p "op" (fun () -> Sim.Clock.charge clock 1)
  done;
  check_int "recorded counts everything" 6 (Sim.Profile.events_recorded p);
  check_int "dropped = recorded - capacity" 2 (Sim.Profile.events_dropped p);
  (* The call tree stays exact even when the ring wrapped. *)
  match Sim.Profile.tree p with
  | [ op ] ->
    check_int "tree keeps every call" 6 op.Sim.Profile.calls;
    check_int "tree keeps every cycle" 6 op.Sim.Profile.cum
  | _ -> Alcotest.fail "expected one root"

(* ----------------------------- gauges ------------------------------ *)

let test_gauge_hwm () =
  let stats = Sim.Stats.create () in
  Sim.Stats.set_gauge stats "depth" 5;
  Sim.Stats.add_gauge stats "depth" 3;
  Sim.Stats.add_gauge stats "depth" (-6);
  check_int "value tracks updates" 2 (Sim.Stats.gauge stats "depth");
  check_int "hwm sticks at the peak" 8 (Sim.Stats.gauge_hwm stats "depth");
  check_int "untouched gauge reads 0" 0 (Sim.Stats.gauge stats "nope");
  Sim.Stats.reset stats;
  check_int "reset clears value" 0 (Sim.Stats.gauge stats "depth");
  check_int "reset clears hwm" 0 (Sim.Stats.gauge_hwm stats "depth")

let test_gauge_sampling () =
  let stats = Sim.Stats.create () in
  Sim.Stats.set_gauge stats "g" 1;
  Sim.Stats.sample stats ~now:100;
  check_int "sampling off by default" 0 (List.length (Sim.Stats.series stats "g"));
  Sim.Stats.set_sample_interval stats ~cycles:10;
  Sim.Stats.sample stats ~now:100;
  Sim.Stats.sample stats ~now:105 (* within the interval: skipped *);
  Sim.Stats.set_gauge stats "g" 7;
  Sim.Stats.sample stats ~now:110;
  Alcotest.(check (list (pair int int)))
    "points at interval boundaries"
    [ (100, 1); (110, 7) ]
    (Sim.Stats.series stats "g");
  match Sim.Stats.gauges_to_json stats with
  | Sim.Json.Obj [ ("g", Sim.Json.Obj fields) ] ->
    check_bool "samples exported" true (List.mem_assoc "samples" fields)
  | _ -> Alcotest.fail "gauges_to_json shape"

let suite =
  [
    Alcotest.test_case "profile: span nesting" `Quick test_span_nesting;
    Alcotest.test_case "profile: same name, distinct paths" `Quick test_same_name_distinct_paths;
    Alcotest.test_case "profile: exception unwinding" `Quick test_exception_unwinding;
    Alcotest.test_case "profile: self vs cum invariant" `Quick test_self_vs_cum_invariant;
    Alcotest.test_case "profile: unattributed remainder" `Quick test_unattributed;
    Alcotest.test_case "profile: disabled sentinel" `Quick test_disabled_sentinel;
    Alcotest.test_case "profile: reset" `Quick test_reset;
    Alcotest.test_case "profile: zero simulated overhead" `Quick test_zero_overhead;
    Alcotest.test_case "profile: attach to disabled trace rejected" `Quick
      test_attach_disabled_rejected;
    Alcotest.test_case "profile: collapsed golden" `Quick test_collapsed_golden;
    Alcotest.test_case "profile: chrome golden" `Quick test_chrome_golden;
    Alcotest.test_case "profile: to_json shape" `Quick test_to_json_shape;
    Alcotest.test_case "profile: top spans" `Quick test_top_spans;
    Alcotest.test_case "profile: event ring bounded" `Quick test_event_ring_bounded;
    Alcotest.test_case "stats: gauge high watermark" `Quick test_gauge_hwm;
    Alcotest.test_case "stats: gauge sampling" `Quick test_gauge_sampling;
  ]
