(* Shared fixtures for the test suite. *)

let mk_clock () = Sim.Clock.create Sim.Cost_model.default

let mk_env () =
  let clock = mk_clock () in
  let stats = Sim.Stats.create () in
  (clock, stats)

let mk_mem ?(dram = Sim.Units.mib 64) ?(nvm = Sim.Units.mib 64) () =
  let clock, stats = mk_env () in
  Physmem.Phys_mem.create ~clock ~stats ~dram_bytes:dram ~nvm_bytes:nvm ()

let small_config =
  {
    Os.Kernel.default_config with
    Os.Kernel.dram_bytes = Sim.Units.mib 64;
    nvm_bytes = Sim.Units.mib 64;
  }

let mk_kernel ?(config = small_config) () = Os.Kernel.create ~config ()

let mk_fom ?config ?strategy () =
  let kernel = mk_kernel ?config () in
  let fom = O1mem.Fom.create kernel ?strategy () in
  (kernel, fom)

(* A page table whose node frames come from a trivial bump counter —
   enough for pure MMU tests that never touch the frames. *)
let mk_page_table ?(levels = 4) () =
  let clock, stats = mk_env () in
  let next = ref 0 in
  let alloc_frame () =
    incr next;
    !next
  in
  (Hw.Page_table.create ~clock ~stats ~levels ~alloc_frame, clock, stats)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0
