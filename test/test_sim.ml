open Helpers

let test_units_basic () =
  check_int "kib" 4096 (Sim.Units.kib 4);
  check_int "mib" (1024 * 1024) (Sim.Units.mib 1);
  check_int "gib" (1024 * 1024 * 1024) (Sim.Units.gib 1);
  check_int "tib" (Sim.Units.gib 1024) (Sim.Units.tib 1);
  check_int "page size" 4096 Sim.Units.page_size;
  check_int "2m" (Sim.Units.mib 2) Sim.Units.huge_2m;
  check_int "1g" (Sim.Units.gib 1) Sim.Units.huge_1g

let test_units_pages () =
  check_int "zero bytes" 0 (Sim.Units.pages_of_bytes 0);
  check_int "one byte" 1 (Sim.Units.pages_of_bytes 1);
  check_int "exactly one page" 1 (Sim.Units.pages_of_bytes 4096);
  check_int "one over" 2 (Sim.Units.pages_of_bytes 4097)

let test_units_round () =
  check_int "up aligned" 8192 (Sim.Units.round_up 8192 ~align:4096);
  check_int "up" 8192 (Sim.Units.round_up 4097 ~align:4096);
  check_int "down" 4096 (Sim.Units.round_down 8191 ~align:4096);
  check_bool "aligned" true (Sim.Units.is_aligned 8192 ~align:4096);
  check_bool "unaligned" false (Sim.Units.is_aligned 8191 ~align:4096)

let test_units_log2 () =
  check_bool "pow2 1" true (Sim.Units.is_power_of_two 1);
  check_bool "pow2 1024" true (Sim.Units.is_power_of_two 1024);
  check_bool "pow2 1023" false (Sim.Units.is_power_of_two 1023);
  check_bool "pow2 0" false (Sim.Units.is_power_of_two 0);
  check_int "log2c 1" 0 (Sim.Units.log2_ceil 1);
  check_int "log2c 5" 3 (Sim.Units.log2_ceil 5);
  check_int "log2f 5" 2 (Sim.Units.log2_floor 5);
  check_int "log2f 8" 3 (Sim.Units.log2_floor 8)

let test_units_pp () =
  check_string "bytes" "64KiB" (Sim.Units.bytes_to_string (Sim.Units.kib 64));
  check_string "odd" "4097B" (Sim.Units.bytes_to_string 4097);
  check_string "gib" "2GiB" (Sim.Units.bytes_to_string (Sim.Units.gib 2))

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:42 and b = Sim.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_copy () =
  let a = Sim.Rng.create ~seed:7 in
  ignore (Sim.Rng.int a 10);
  let b = Sim.Rng.copy a in
  check_int "copy continues identically" (Sim.Rng.int a 1_000_000) (Sim.Rng.int b 1_000_000)

let test_rng_bounds () =
  let r = Sim.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17);
    let w = Sim.Rng.int_in r ~lo:5 ~hi:9 in
    check_bool "int_in range" true (w >= 5 && w <= 9);
    let f = Sim.Rng.float r in
    check_bool "float range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_zipf () =
  let r = Sim.Rng.create ~seed:3 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.zipf r ~n:100 ~theta:0.9 in
    check_bool "zipf in range" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "zipf is skewed towards low ranks" true (counts.(0) > counts.(50))

let test_rng_shuffle () =
  let r = Sim.Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Sim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_clock_charge () =
  let c = mk_clock () in
  check_int "starts at zero" 0 (Sim.Clock.now c);
  Sim.Clock.charge c 100;
  Sim.Clock.charge c 23;
  check_int "accumulates" 123 (Sim.Clock.now c);
  check_int "elapsed" 23 (Sim.Clock.elapsed c ~since:100);
  Sim.Clock.reset c;
  check_int "reset" 0 (Sim.Clock.now c)

let test_clock_time () =
  let c = mk_clock () in
  let r, cyc = Sim.Clock.time c (fun () -> Sim.Clock.charge c 55; "x") in
  check_string "result" "x" r;
  check_int "cycles" 55 cyc

let test_cost_model_conversion () =
  let m = Sim.Cost_model.default in
  Alcotest.(check (float 1e-9)) "2000 cycles at 2GHz = 1us" 1.0 (Sim.Cost_model.cycles_to_us m 2000);
  check_int "zero cost of a page" 1024 (Sim.Cost_model.zero_cost m ~bytes:4096);
  check_int "copy cost" 512 (Sim.Cost_model.copy_cost m ~bytes:4096)

let test_stats () =
  let s = Sim.Stats.create () in
  check_int "unset is zero" 0 (Sim.Stats.get s "x");
  Sim.Stats.incr s "x";
  Sim.Stats.add s "x" 4;
  Sim.Stats.incr s "y";
  check_int "x" 5 (Sim.Stats.get s "x");
  let snap = Sim.Stats.snapshot s in
  Alcotest.(check (list (pair string int))) "snapshot sorted" [ ("x", 5); ("y", 1) ] snap;
  Sim.Stats.incr s "x";
  let d = Sim.Stats.diff ~before:snap ~after:(Sim.Stats.snapshot s) in
  Alcotest.(check (list (pair string int))) "diff" [ ("x", 1) ] d;
  Sim.Stats.reset s;
  check_int "reset" 0 (Sim.Stats.get s "x")

let test_histogram () =
  let h = Sim.Histogram.create () in
  check_int "empty count" 0 (Sim.Histogram.count h);
  List.iter (Sim.Histogram.observe h) [ 1; 2; 3; 4; 100 ];
  check_int "count" 5 (Sim.Histogram.count h);
  check_int "total" 110 (Sim.Histogram.total h);
  check_int "min" 1 (Sim.Histogram.min_value h);
  check_int "max" 100 (Sim.Histogram.max_value h);
  Alcotest.(check (float 0.01)) "mean" 22.0 (Sim.Histogram.mean h);
  check_bool "p50 below p99" true (Sim.Histogram.percentile h 50.0 <= Sim.Histogram.percentile h 99.0)

let test_histogram_rejects_negative () =
  let h = Sim.Histogram.create () in
  Sim.Histogram.observe h 3;
  Alcotest.check_raises "latencies cannot be negative"
    (Invalid_argument "Histogram.observe: negative sample") (fun () -> Sim.Histogram.observe h (-1));
  check_int "rejected sample not recorded" 1 (Sim.Histogram.count h)

let test_histogram_stddev () =
  let h = Sim.Histogram.create () in
  check_bool "empty stddev is 0" true (Sim.Histogram.stddev h = 0.0);
  Sim.Histogram.observe h 5;
  check_bool "singleton stddev is 0" true (Sim.Histogram.stddev h = 0.0);
  (* [2; 4; 4; 4; 5; 5; 7; 9] is the classic population-stddev example:
     mean 5, stddev exactly 2. *)
  let h = Sim.Histogram.create () in
  List.iter (Sim.Histogram.observe h) [ 2; 4; 4; 4; 5; 5; 7; 9 ];
  Alcotest.(check (float 1e-9)) "population stddev" 2.0 (Sim.Histogram.stddev h);
  match Sim.Json.member (Sim.Histogram.to_json h) "stddev" with
  | Some (Sim.Json.Float v) -> Alcotest.(check (float 1e-9)) "stddev exported" 2.0 v
  | _ -> Alcotest.fail "stddev field missing from to_json"

let test_table_render () =
  let t = Sim.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Sim.Table.add_row t [ "1"; "2" ];
  Sim.Table.add_row t [ "333"; "4" ];
  let s = Sim.Table.render t in
  check_bool "title present" true (String.length s > 0 && String.sub s 0 7 = "== demo");
  check_bool "contains row" true (Helpers.contains ~needle:"333" s)

let json_error s =
  match Sim.Json.of_string s with
  | Ok _ -> Alcotest.failf "parser accepted %S" s
  | Error e -> e

let test_json_roundtrip () =
  let v =
    Sim.Json.Obj
      [
        ("a", Sim.Json.List [ Sim.Json.Int 1; Sim.Json.Float 2.5; Sim.Json.Null ]);
        ("b", Sim.Json.Obj [ ("nested", Sim.Json.Bool true) ]);
        ("s", Sim.Json.String "quote \" slash \\ tab \t");
      ]
  in
  (match Sim.Json.of_string (Sim.Json.to_string v) with
  | Ok v' -> check_bool "compact round trip" true (v = v')
  | Error e -> Alcotest.fail e);
  match Sim.Json.of_string (Sim.Json.to_string ~pretty:true v) with
  | Ok v' -> check_bool "pretty round trip" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_truncated () =
  check_bool "truncated object" true
    (Helpers.contains ~needle:"expected" (json_error {|{"a": 1|}));
  check_bool "truncated list" true (Helpers.contains ~needle:"expected" (json_error "[1, 2"));
  check_bool "truncated string" true
    (Helpers.contains ~needle:"unterminated string" (json_error {|"abc|}));
  check_bool "truncated escape" true
    (Helpers.contains ~needle:"unterminated escape" (json_error "\"a\\"));
  check_bool "truncated unicode escape" true
    (Helpers.contains ~needle:"\\u escape" (json_error {|"\u00|}));
  check_bool "lone minus" true (Helpers.contains ~needle:"digit" (json_error "-"));
  check_bool "empty input" true (Helpers.contains ~needle:"unexpected" (json_error ""))

let test_json_trailing_garbage () =
  check_bool "trailing token" true (Helpers.contains ~needle:"trailing" (json_error "1 x"));
  check_bool "two documents" true (Helpers.contains ~needle:"trailing" (json_error "{} {}"));
  check_bool "trailing ws alone is fine" true
    (Sim.Json.of_string "  {}  \n" = Ok (Sim.Json.Obj []))

let test_json_bad_tokens () =
  check_bool "bad escape" true (Helpers.contains ~needle:"bad escape" (json_error {|"\q"|}));
  check_bool "bad \\u" true (Helpers.contains ~needle:"bad \\u escape" (json_error {|"\uzzzz"|}));
  check_bool "unquoted key" true (Helpers.contains ~needle:"expected" (json_error "{a: 1}"));
  check_bool "error reports offset" true (Helpers.contains ~needle:"at offset" (json_error "[1,]"))

let test_json_deep_nesting () =
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Sim.Json.of_string (deep 100) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 100 should parse: %s" e);
  check_bool "default depth cap" true
    (Helpers.contains ~needle:"nesting too deep" (json_error (deep 5000)));
  check_bool "explicit cap" true
    (match Sim.Json.of_string ~max_depth:3 "[[[[1]]]]" with
    | Error e -> Helpers.contains ~needle:"nesting too deep" e
    | Ok _ -> false);
  check_bool "objects count too" true
    (match Sim.Json.of_string ~max_depth:2 {|{"a": {"b": {"c": 1}}}|} with
    | Error e -> Helpers.contains ~needle:"nesting too deep" e
    | Ok _ -> false);
  check_bool "at the cap is fine" true
    (Sim.Json.of_string ~max_depth:2 "[[1]]"
    = Ok (Sim.Json.List [ Sim.Json.List [ Sim.Json.Int 1 ] ]))

(* Property tests *)

let prop_round_up_ge =
  qtest "round_up >= n and aligned"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 0 10))
    (fun (n, k) ->
      let align = 1 lsl k in
      let r = Sim.Units.round_up n ~align in
      r >= n && Sim.Units.is_aligned r ~align && r - n < align)

let prop_round_down_le =
  qtest "round_down <= n and aligned"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 0 10))
    (fun (n, k) ->
      let align = 1 lsl k in
      let r = Sim.Units.round_down n ~align in
      r <= n && Sim.Units.is_aligned r ~align && n - r < align)

let prop_log2 =
  qtest "log2_floor/ceil bracket n" QCheck2.Gen.(int_range 1 1_000_000) (fun n ->
      let f = Sim.Units.log2_floor n and c = Sim.Units.log2_ceil n in
      (1 lsl f) <= n && n <= (1 lsl c) && c - f <= 1)

let prop_histogram_percentile_bounds =
  qtest "percentile bounded by min/max"
    QCheck2.Gen.(pair (list_size (int_range 1 50) (int_bound 10_000)) (float_bound_inclusive 100.0))
    (fun (samples, p) ->
      let h = Sim.Histogram.create () in
      List.iter (Sim.Histogram.observe h) samples;
      let v = Sim.Histogram.percentile h p in
      Sim.Histogram.min_value h <= v && v <= Sim.Histogram.max_value h)

let prop_histogram_percentile_monotone =
  qtest "percentile monotone in p"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 50) (int_bound 10_000))
        (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (samples, p1, p2) ->
      let h = Sim.Histogram.create () in
      List.iter (Sim.Histogram.observe h) samples;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Sim.Histogram.percentile h lo <= Sim.Histogram.percentile h hi)

let test_histogram_percentile_clamped () =
  (* Regression: a single sample of 100 lands in bucket [64, 128); the raw
     bucket bound is 128, but every percentile must report a value that was
     actually possible, i.e. within [min, max]. *)
  let h = Sim.Histogram.create () in
  Sim.Histogram.observe h 100;
  check_int "p50 of a singleton" 100 (Sim.Histogram.percentile h 50.0);
  check_int "p100 does not overshoot max" 100 (Sim.Histogram.percentile h 100.0);
  Sim.Histogram.observe h 3;
  let p0 = Sim.Histogram.percentile h 0.0 in
  check_bool "p0 stays within [min, max]" true (p0 >= 3 && p0 <= 100);
  check_int "empty histogram percentile" 0 (Sim.Histogram.percentile (Sim.Histogram.create ()) 99.0)

let suite =
  [
    Alcotest.test_case "units: basic sizes" `Quick test_units_basic;
    Alcotest.test_case "units: pages_of_bytes" `Quick test_units_pages;
    Alcotest.test_case "units: rounding" `Quick test_units_round;
    Alcotest.test_case "units: log2 helpers" `Quick test_units_log2;
    Alcotest.test_case "units: pretty printing" `Quick test_units_pp;
    Alcotest.test_case "rng: determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: copy" `Quick test_rng_copy;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: zipf skew" `Quick test_rng_zipf;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick test_rng_shuffle;
    Alcotest.test_case "clock: charge/elapsed/reset" `Quick test_clock_charge;
    Alcotest.test_case "clock: time wrapper" `Quick test_clock_time;
    Alcotest.test_case "cost model: conversions" `Quick test_cost_model_conversion;
    Alcotest.test_case "stats: counters and diff" `Quick test_stats;
    Alcotest.test_case "histogram: moments" `Quick test_histogram;
    Alcotest.test_case "histogram: negative samples rejected" `Quick
      test_histogram_rejects_negative;
    Alcotest.test_case "histogram: stddev" `Quick test_histogram_stddev;
    Alcotest.test_case "histogram: percentile clamped to observed range" `Quick
      test_histogram_percentile_clamped;
    Alcotest.test_case "table: renders" `Quick test_table_render;
    Alcotest.test_case "json: round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: truncated inputs rejected" `Quick test_json_truncated;
    Alcotest.test_case "json: trailing garbage rejected" `Quick test_json_trailing_garbage;
    Alcotest.test_case "json: bad tokens rejected with offsets" `Quick test_json_bad_tokens;
    Alcotest.test_case "json: nesting depth capped" `Quick test_json_deep_nesting;
    prop_round_up_ge;
    prop_round_down_le;
    prop_log2;
    prop_histogram_percentile_bounds;
    prop_histogram_percentile_monotone;
  ]
