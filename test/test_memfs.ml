open Helpers
module M = Fs.Memfs

let mk_fs ?(frames = 4096) ?(mode = M.Tmpfs) ?quota_frames () =
  let mem = mk_mem ~dram:(Sim.Units.mib 32) ~nvm:(Sim.Units.mib 32) () in
  let first = match mode with M.Tmpfs -> 0 | M.Pmfs -> Physmem.Phys_mem.dram_frames mem in
  (M.create ~mem ~first ~count:frames ~mode ?quota_frames (), mem)

(* Fs_path *)

let test_path_split () =
  Alcotest.(check (list string)) "simple" [ "a"; "b" ] (Fs.Fs_path.split "/a/b");
  Alcotest.(check (list string)) "root" [] (Fs.Fs_path.split "/");
  Alcotest.(check (list string)) "dots and doubles" [ "a"; "b" ] (Fs.Fs_path.split "//a/./b/");
  Alcotest.check_raises "relative" (Invalid_argument "Fs_path.split: path must be absolute")
    (fun () -> ignore (Fs.Fs_path.split "a/b"));
  Alcotest.check_raises "dotdot" (Invalid_argument "Fs_path.split: '..' not supported") (fun () ->
      ignore (Fs.Fs_path.split "/a/../b"))

let test_path_dirname () =
  let dir, base = Fs.Fs_path.dirname_basename "/a/b/c" in
  Alcotest.(check (list string)) "dir" [ "a"; "b" ] dir;
  check_string "base" "c" base;
  check_bool "valid" true (Fs.Fs_path.valid_name "x");
  check_bool "slash invalid" false (Fs.Fs_path.valid_name "a/b");
  check_bool "empty invalid" false (Fs.Fs_path.valid_name "")

(* Extent tree *)

let test_extent_tree_append_merge () =
  let t = Fs.Extent_tree.create () in
  Fs.Extent_tree.append t ~start:10 ~count:4;
  Fs.Extent_tree.append t ~start:14 ~count:4;
  check_int "merged physically-contiguous appends" 1 (Fs.Extent_tree.extent_count t);
  Fs.Extent_tree.append t ~start:100 ~count:2;
  check_int "discontiguous stays separate" 2 (Fs.Extent_tree.extent_count t);
  check_int "pages" 10 (Fs.Extent_tree.pages t);
  check_bool "lookup first" true (Fs.Extent_tree.lookup t ~page:0 = Some 10);
  check_bool "lookup middle" true (Fs.Extent_tree.lookup t ~page:7 = Some 17);
  check_bool "lookup tail" true (Fs.Extent_tree.lookup t ~page:9 = Some 101);
  check_bool "past end" true (Fs.Extent_tree.lookup t ~page:10 = None)

let test_extent_tree_truncate () =
  let t = Fs.Extent_tree.create () in
  Fs.Extent_tree.append t ~start:0 ~count:8;
  Fs.Extent_tree.append t ~start:100 ~count:8;
  let cut = Fs.Extent_tree.truncate_to t ~pages:4 in
  check_int "pages after" 4 (Fs.Extent_tree.pages t);
  (* Cut pieces: tail of first extent (4 frames at 4) + whole second. *)
  check_int "two pieces cut" 2 (List.length cut);
  let total_cut = List.fold_left (fun acc (e : Fs.Extent.t) -> acc + e.Fs.Extent.count) 0 cut in
  check_int "12 frames returned" 12 total_cut

let test_extent_tree_insert_overlap () =
  let t = Fs.Extent_tree.create () in
  Fs.Extent_tree.insert t { Fs.Extent.logical = 0; start = 0; count = 4 };
  Alcotest.check_raises "overlap" (Invalid_argument "Extent_tree.insert: overlapping extent")
    (fun () -> Fs.Extent_tree.insert t { Fs.Extent.logical = 2; start = 50; count = 4 })

(* Quota *)

let test_quota () =
  let q = Fs.Quota.create ~limit_frames:10 () in
  check_bool "charge ok" true (Fs.Quota.try_charge q ~frames:8);
  check_bool "over limit" false (Fs.Quota.try_charge q ~frames:3);
  check_int "used unchanged on failure" 8 (Fs.Quota.used q);
  Fs.Quota.release q ~frames:4;
  check_bool "after release" true (Fs.Quota.try_charge q ~frames:3);
  Fs.Quota.set_limit q None;
  check_bool "unlimited" true (Fs.Quota.try_charge q ~frames:1_000_000)

(* Memfs namespace *)

let test_fs_create_lookup () =
  let fs, _ = mk_fs () in
  let ino = M.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
  check_bool "lookup" true (M.lookup fs "/a" = Some ino);
  check_bool "missing" true (M.lookup fs "/b" = None);
  check_int "one file" 1 (M.file_count fs)

let test_fs_mkdir_nested () =
  let fs, _ = mk_fs () in
  M.mkdir fs "/d";
  M.mkdir fs "/d/e";
  let ino = M.create_file fs "/d/e/f" ~persistence:Fs.Inode.Volatile in
  check_bool "nested lookup" true (M.lookup fs "/d/e/f" = Some ino);
  Alcotest.(check (list string)) "readdir" [ "e" ] (M.readdir fs "/d");
  Alcotest.check_raises "missing parent" (Invalid_argument "Memfs.create_file: missing parent directory")
    (fun () -> ignore (M.create_file fs "/nope/x" ~persistence:Fs.Inode.Volatile))

let test_fs_duplicate_rejected () =
  let fs, _ = mk_fs () in
  ignore (M.create_file fs "/a" ~persistence:Fs.Inode.Volatile);
  Alcotest.check_raises "dup" (Invalid_argument "Memfs.create_file: name exists") (fun () ->
      ignore (M.create_file fs "/a" ~persistence:Fs.Inode.Volatile))

let test_fs_unlink_frees_space () =
  let fs, _ = mk_fs () in
  let free0 = M.free_bytes fs in
  let ino = M.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:(Sim.Units.kib 64);
  check_int "space consumed" (free0 - Sim.Units.kib 64) (M.free_bytes fs);
  M.unlink fs "/a";
  check_int "space restored" free0 (M.free_bytes fs);
  check_bool "inode gone" true (try ignore (M.inode fs ino); false with Not_found -> true)

let test_fs_unlink_deferred_while_open () =
  let fs, _ = mk_fs () in
  let free0 = M.free_bytes fs in
  let ino = M.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:4096;
  M.open_file fs ino;
  M.unlink fs "/a";
  check_bool "still reachable by ino" true (try ignore (M.inode fs ino); true with Not_found -> false);
  check_bool "space still held" true (M.free_bytes fs < free0);
  M.close_file fs ino;
  check_int "freed at last close" free0 (M.free_bytes fs)

let test_fs_write_read () =
  let fs, _ = mk_fs () in
  let ino = M.create_file fs "/data" ~persistence:Fs.Inode.Volatile in
  M.write_file fs ino ~off:0 "hello, file-only memory";
  check_string "read back" "hello, file-only memory"
    (Bytes.to_string (M.read_file fs ino ~off:0 ~len:23));
  check_string "offset read" "file-only" (Bytes.to_string (M.read_file fs ino ~off:7 ~len:9));
  M.write_file fs ino ~off:7 "FILE-ONLY";
  check_string "overwrite" "FILE-ONLY" (Bytes.to_string (M.read_file fs ino ~off:7 ~len:9))

let test_fs_write_extends () =
  let fs, _ = mk_fs () in
  let ino = M.create_file fs "/grow" ~persistence:Fs.Inode.Volatile in
  M.write_file fs ino ~off:(Sim.Units.kib 8) "tail";
  check_int "size grown" (Sim.Units.kib 8 + 4) (M.inode fs ino).Fs.Inode.size;
  check_string "hole reads zero" (String.make 4 '\000')
    (Bytes.to_string (M.read_file fs ino ~off:100 ~len:4));
  check_string "eof clamps" "tail" (Bytes.to_string (M.read_file fs ino ~off:(Sim.Units.kib 8) ~len:100))

let test_fs_extend_contiguous () =
  let fs, _ = mk_fs () in
  let ino = M.create_file fs "/big" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:(Sim.Units.mib 4);
  (* Far-from-full FS: one extent. *)
  check_int "single extent" 1 (List.length (M.file_extents fs ino));
  check_int "size" (Sim.Units.mib 4) (M.inode fs ino).Fs.Inode.size

let test_fs_extend_zeroes () =
  let fs, mem = mk_fs () in
  let ino = M.create_file fs "/z" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:4096;
  let e = List.hd (M.file_extents fs ino) in
  check_bool "frames zeroed at allocation" true
    (Physmem.Phys_mem.frame_is_zero mem e.Fs.Extent.start)

let test_fs_truncate () =
  let fs, _ = mk_fs () in
  let free0 = M.free_bytes fs in
  let ino = M.create_file fs "/t" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:(Sim.Units.kib 64);
  M.truncate fs ino ~bytes:(Sim.Units.kib 16);
  check_int "size shrunk" (Sim.Units.kib 16) (M.inode fs ino).Fs.Inode.size;
  check_int "space partially restored" (free0 - Sim.Units.kib 16) (M.free_bytes fs)

let test_fs_quota_enforced () =
  let fs, _ = mk_fs ~quota_frames:8 () in
  let ino = M.create_file fs "/q" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:(Sim.Units.kib 32);
  Alcotest.check_raises "quota hit"
    (Sim.Errno.Error (Sim.Errno.ENOSPC, "Memfs.extend: quota")) (fun () ->
      M.extend fs ino ~bytes_wanted:4096)

let test_fs_whole_file_prot () =
  let fs, _ = mk_fs () in
  let ino = M.create_file fs "/p" ~persistence:Fs.Inode.Volatile in
  check_bool "default rw" true (Hw.Prot.equal (M.inode fs ino).Fs.Inode.prot Hw.Prot.rw);
  M.set_prot fs ino Hw.Prot.r;
  check_bool "read only now" true (Hw.Prot.equal (M.inode fs ino).Fs.Inode.prot Hw.Prot.r)

let test_fs_access_time_coarse () =
  let fs, mem = mk_fs () in
  let clock = Physmem.Phys_mem.clock mem in
  let ino = M.create_file fs "/hot" ~persistence:Fs.Inode.Volatile in
  let t0 = (M.inode fs ino).Fs.Inode.last_access in
  Sim.Clock.charge clock 10_000;
  M.write_file fs ino ~off:0 "x";
  check_bool "access time advanced" true ((M.inode fs ino).Fs.Inode.last_access > t0)

let test_fs_reclaim_discardable () =
  let fs, mem = mk_fs () in
  let clock = Physmem.Phys_mem.clock mem in
  let mk name =
    let ino = M.create_file fs name ~persistence:Fs.Inode.Volatile in
    M.extend fs ino ~bytes_wanted:(Sim.Units.kib 16);
    M.set_discardable fs ino true;
    Sim.Clock.charge clock 1000;
    ino
  in
  let _c1 = mk "/cache1" in
  let c2 = mk "/cache2" in
  (* Touch cache2 so cache1 is the coldest. *)
  Sim.Clock.charge clock 1000;
  M.open_file fs c2;
  M.close_file fs c2;
  let freed = M.reclaim_discardable fs ~target_bytes:(Sim.Units.kib 16) in
  check_int "freed exactly one file" (Sim.Units.kib 16) freed;
  check_bool "coldest deleted" true (M.lookup fs "/cache1" = None);
  check_bool "warm survives" true (M.lookup fs "/cache2" <> None)

let test_fs_utilization_metadata () =
  let fs, _ = mk_fs ~frames:1024 () in
  Alcotest.(check (float 0.001)) "empty" 0.0 (M.utilization fs);
  let ino = M.create_file fs "/u" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:(Sim.Units.mib 1);
  Alcotest.(check (float 0.001)) "quarter used" 0.25 (M.utilization fs);
  check_bool "metadata is small" true (M.metadata_bytes fs < Sim.Units.kib 4)

let test_fs_iter_files () =
  let fs, _ = mk_fs () in
  M.mkdir fs "/d";
  ignore (M.create_file fs "/a" ~persistence:Fs.Inode.Volatile);
  ignore (M.create_file fs "/d/b" ~persistence:Fs.Inode.Persistent);
  let paths = ref [] in
  M.iter_files fs (fun p _ -> paths := p :: !paths);
  Alcotest.(check (list string)) "all files found" [ "/a"; "/d/b" ] (List.sort compare !paths)

(* Write-ahead log *)

let mk_wal ?(capacity = Sim.Units.kib 16) () =
  let mem = mk_mem ~dram:(Sim.Units.mib 4) ~nvm:(Sim.Units.mib 4) () in
  let nvm = Physmem.Nvm.create mem in
  let base = Physmem.Frame.to_addr (Physmem.Phys_mem.dram_frames mem) in
  (Fs.Wal.create ~nvm ~base ~capacity, nvm, base, capacity)

let test_wal_append_recover () =
  let wal, nvm, base, capacity = mk_wal () in
  List.iter (Fs.Wal.append_exn wal) [ "alpha"; "beta"; "gamma" ];
  Alcotest.(check (list string)) "entries" [ "alpha"; "beta"; "gamma" ] (Fs.Wal.entries wal);
  Physmem.Nvm.crash nvm;
  let back = Fs.Wal.recover ~nvm ~base ~capacity in
  Alcotest.(check (list string)) "all durable records recovered" [ "alpha"; "beta"; "gamma" ]
    (Fs.Wal.entries back);
  (* The recovered log can keep appending. *)
  Fs.Wal.append_exn back "delta";
  check_int "four now" 4 (Fs.Wal.entry_count back)

let test_wal_torn_tail_dropped () =
  let wal, nvm, base, capacity = mk_wal () in
  Fs.Wal.append_exn wal "committed-1";
  Fs.Wal.append_exn wal "committed-2";
  (* The buggy path: no flushes. A crash tears it. *)
  Fs.Wal.append_exn ~durable:false wal "torn";
  Physmem.Nvm.crash nvm;
  let back = Fs.Wal.recover ~nvm ~base ~capacity in
  Alcotest.(check (list string)) "only the committed prefix survives"
    [ "committed-1"; "committed-2" ] (Fs.Wal.entries back)

let test_wal_checksum_rejects_corruption () =
  let wal, nvm, base, capacity = mk_wal () in
  Fs.Wal.append_exn wal "good";
  Fs.Wal.append_exn wal "evil";
  (* Flip a payload byte of the second record behind the log's back. *)
  let second_payload = base + Fs.Wal.used_bytes wal - 1 (* marker *) - 4 in
  Physmem.Phys_mem.write (Physmem.Nvm.mem nvm) ~addr:second_payload "X";
  let back = Fs.Wal.recover ~nvm ~base ~capacity in
  Alcotest.(check (list string)) "corrupt record rejected" [ "good" ] (Fs.Wal.entries back)

let test_wal_full_and_reset () =
  let wal, nvm, base, capacity = mk_wal ~capacity:64 () in
  Fs.Wal.append_exn wal (String.make 40 'x');
  check_bool "full append refused, not raised" true
    (Fs.Wal.append wal (String.make 40 'y') = Error Fs.Wal.Wal_full);
  Alcotest.check_raises "append_exn maps Wal_full to ENOSPC"
    (Sim.Errno.Error (Sim.Errno.ENOSPC, "Wal.append")) (fun () ->
      Fs.Wal.append_exn wal (String.make 40 'y'));
  Fs.Wal.reset wal;
  check_int "empty after reset" 0 (Fs.Wal.entry_count wal);
  Fs.Wal.append_exn wal (String.make 40 'z');
  (* Reset is durable: recovery after a crash sees the new record only. *)
  Physmem.Nvm.crash nvm;
  let back = Fs.Wal.recover ~nvm ~base ~capacity in
  Alcotest.(check (list string)) "post-reset log" [ String.make 40 'z' ] (Fs.Wal.entries back)

let prop_wal_roundtrip =
  qtest "random records survive crash+recover" ~count:40
    QCheck2.Gen.(list_size (int_range 1 20) (string_size ~gen:printable (int_range 1 50)))
    (fun records ->
      let wal, nvm, base, capacity = mk_wal ~capacity:(Sim.Units.kib 64) () in
      List.iter (Fs.Wal.append_exn wal) records;
      Physmem.Nvm.crash nvm;
      Fs.Wal.entries (Fs.Wal.recover ~nvm ~base ~capacity) = records)

(* PMFS metadata journal *)

let test_journal_records_ops () =
  let fs, _ = mk_fs ~mode:M.Pmfs () in
  let ino = M.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:(Sim.Units.kib 8);
  M.set_persistence fs ino Fs.Inode.Persistent;
  M.rename fs ~old_path:"/a" ~new_path:"/b";
  M.link fs ~existing:"/b" ~new_path:"/c";
  M.unlink fs "/c";
  Alcotest.(check (list string)) "journal narrative"
    [
      "create /a V";
      Printf.sprintf "extend %d 2" ino;
      Printf.sprintf "persist %d P" ino;
      "rename /a /b";
      "link /b /c";
      "unlink /c";
    ]
    (M.journal_records fs);
  (* tmpfs journals nothing. *)
  let tfs, _ = mk_fs ~mode:M.Tmpfs () in
  ignore (M.create_file tfs "/x" ~persistence:Fs.Inode.Volatile);
  Alcotest.(check (list string)) "tmpfs has no journal" [] (M.journal_records tfs)

let test_journal_replay_matches_namespace () =
  (* The journal must be a complete redo log: replaying it into a trivial
     model reproduces the live namespace (paths and sizes). *)
  let fs, _ = mk_fs ~mode:M.Pmfs () in
  let rng = Sim.Rng.create ~seed:99 in
  let paths = ref [] in
  let fresh = ref 0 in
  for _ = 1 to 120 do
    match Sim.Rng.int rng 4 with
    | 0 ->
      let path = Printf.sprintf "/j%d" !fresh in
      incr fresh;
      ignore (M.create_file fs path ~persistence:Fs.Inode.Volatile);
      paths := path :: !paths
    | 1 -> (
      match !paths with
      | [] -> ()
      | p :: _ ->
        let ino = Option.get (M.lookup fs p) in
        (try M.extend fs ino ~bytes_wanted:(Sim.Units.page_size * Sim.Rng.int_in rng ~lo:1 ~hi:4)
         with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> ()))
    | 2 -> (
      match !paths with
      | [] -> ()
      | p :: rest ->
        M.unlink fs p;
        paths := rest)
    | _ -> (
      match !paths with
      | [] -> ()
      | p :: rest ->
        let p' = p ^ "r" in
        M.rename fs ~old_path:p ~new_path:p';
        paths := p' :: rest)
  done;
  (* Replay. *)
  let model_files : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let model_inos : (int, int) Hashtbl.t = Hashtbl.create 16 (* ino -> pages *) in
  let ino_of_path : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_replay_ino = ref 0 in
  List.iter
    (fun record ->
      match String.split_on_char ' ' record with
      | [ "create"; path; _ ] ->
        incr next_replay_ino;
        Hashtbl.replace ino_of_path path !next_replay_ino;
        Hashtbl.replace model_inos !next_replay_ino 0;
        Hashtbl.replace model_files path !next_replay_ino
      | [ "extend"; _ino; pages ] ->
        (* our replay inos are dense and allocated in creation order, so
           map via the live journal's ino by position: instead, track by
           the fact extends follow creates; use the recorded ino text. *)
        ignore pages;
        ()
      | [ "unlink"; path ] -> Hashtbl.remove model_files path
      | [ "rename"; old_p; new_p ] -> (
        match Hashtbl.find_opt model_files old_p with
        | Some ino ->
          Hashtbl.remove model_files old_p;
          Hashtbl.replace model_files new_p ino
        | None -> ())
      | _ -> ())
    (M.journal_records fs);
  (* Same set of live paths. *)
  let live = ref [] in
  M.iter_files fs (fun p _ -> live := p :: !live);
  let model_paths = Hashtbl.fold (fun p _ acc -> p :: acc) model_files [] in
  Alcotest.(check (list string)) "replayed namespace matches"
    (List.sort compare !live) (List.sort compare model_paths)

let test_journal_checkpoints_when_full () =
  let fs, _ = mk_fs ~mode:M.Pmfs () in
  (* Each create+unlink writes ~2 small records; hammer until the 64 KiB
     journal wraps. *)
  for i = 1 to 2000 do
    let p = Printf.sprintf "/tmp%d" i in
    ignore (M.create_file fs p ~persistence:Fs.Inode.Volatile);
    M.unlink fs p
  done;
  check_bool "checkpointed at least once" true (M.journal_checkpoints fs >= 1);
  (* FS still coherent. *)
  let ino = M.create_file fs "/after" ~persistence:Fs.Inode.Volatile in
  M.extend fs ino ~bytes_wanted:4096;
  check_bool "still works" true (M.lookup fs "/after" = Some ino)

let test_journal_costs_charged () =
  (* PMFS metadata ops must cost more than tmpfs ones: the journal's
     clwb/fence traffic is real. *)
  let cost mode =
    let fs, mem = mk_fs ~mode () in
    let clock = Physmem.Phys_mem.clock mem in
    let before = Sim.Clock.now clock in
    ignore (M.create_file fs "/f" ~persistence:Fs.Inode.Volatile);
    Sim.Clock.elapsed clock ~since:before
  in
  check_bool "durable metadata costs more" true (cost M.Pmfs > cost M.Tmpfs)

(* Crash / recovery *)

let test_tmpfs_crash_loses_everything () =
  let fs, _ = mk_fs ~mode:M.Tmpfs () in
  ignore (M.create_file fs "/gone" ~persistence:Fs.Inode.Persistent);
  M.crash fs;
  check_bool "namespace wiped" true (M.lookup fs "/gone" = None);
  Alcotest.check_raises "tmpfs cannot recover"
    (Invalid_argument "Memfs.recover: tmpfs does not recover") (fun () -> ignore (M.recover fs))

let test_pmfs_crash_recover () =
  let fs, mem = mk_fs ~mode:M.Pmfs () in
  let keep = M.create_file fs "/keep" ~persistence:Fs.Inode.Persistent in
  M.write_file fs keep ~off:0 "durable data";
  let lose = M.create_file fs "/lose" ~persistence:Fs.Inode.Volatile in
  M.extend fs lose ~bytes_wanted:4096;
  M.open_file fs lose;
  Physmem.Phys_mem.crash mem;
  M.crash fs;
  let scanned = M.recover fs in
  check_int "scanned both files" 2 scanned;
  check_bool "persistent file survives" true (M.lookup fs "/keep" = Some keep);
  check_string "contents survive (NVM)" "durable data"
    (Bytes.to_string (M.read_file fs keep ~off:0 ~len:12));
  check_bool "volatile file deleted" true (M.lookup fs "/lose" = None)

let test_pmfs_recovery_cost_is_per_file () =
  let fs, mem = mk_fs ~mode:M.Pmfs () in
  let clock = Physmem.Phys_mem.clock mem in
  (* One small and one large volatile file: recovery should not scale
     with bytes (bulk erase), only with file count. *)
  let small = M.create_file fs "/small" ~persistence:Fs.Inode.Volatile in
  M.extend fs small ~bytes_wanted:4096;
  let t_small =
    M.crash fs;
    let before = Sim.Clock.now clock in
    ignore (M.recover fs);
    Sim.Clock.elapsed clock ~since:before
  in
  let big = M.create_file fs "/big" ~persistence:Fs.Inode.Volatile in
  M.extend fs big ~bytes_wanted:(Sim.Units.mib 8);
  let t_big =
    M.crash fs;
    let before = Sim.Clock.now clock in
    ignore (M.recover fs);
    Sim.Clock.elapsed clock ~since:before
  in
  check_bool "recovery cost roughly size-independent" true (t_big < t_small * 4)

let prop_fs_write_read_roundtrip =
  qtest "file write/read round-trips at random offsets" ~count:60
    QCheck2.Gen.(pair (int_bound 20_000) (string_size ~gen:printable (int_range 1 100)))
    (fun (off, data) ->
      let fs, _ = mk_fs () in
      let ino = M.create_file fs "/f" ~persistence:Fs.Inode.Volatile in
      M.write_file fs ino ~off data;
      Bytes.to_string (M.read_file fs ino ~off ~len:(String.length data)) = data)

let prop_fs_space_conservation =
  qtest "create+extend+unlink conserves space" ~count:40
    QCheck2.Gen.(list_size (int_range 1 10) (int_range 1 64))
    (fun sizes_kib ->
      let fs, _ = mk_fs () in
      let free0 = M.free_bytes fs in
      List.iteri
        (fun i kib ->
          let ino = M.create_file fs (Printf.sprintf "/f%d" i) ~persistence:Fs.Inode.Volatile in
          M.extend fs ino ~bytes_wanted:(Sim.Units.kib kib))
        sizes_kib;
      List.iteri (fun i _ -> M.unlink fs (Printf.sprintf "/f%d" i)) sizes_kib;
      M.free_bytes fs = free0)

let suite =
  [
    Alcotest.test_case "path: split" `Quick test_path_split;
    Alcotest.test_case "path: dirname/basename" `Quick test_path_dirname;
    Alcotest.test_case "extent tree: append + merge" `Quick test_extent_tree_append_merge;
    Alcotest.test_case "extent tree: truncate splits" `Quick test_extent_tree_truncate;
    Alcotest.test_case "extent tree: overlap rejected" `Quick test_extent_tree_insert_overlap;
    Alcotest.test_case "quota: limits" `Quick test_quota;
    Alcotest.test_case "fs: create/lookup" `Quick test_fs_create_lookup;
    Alcotest.test_case "fs: nested directories" `Quick test_fs_mkdir_nested;
    Alcotest.test_case "fs: duplicates rejected" `Quick test_fs_duplicate_rejected;
    Alcotest.test_case "fs: unlink frees space" `Quick test_fs_unlink_frees_space;
    Alcotest.test_case "fs: unlink deferred while open" `Quick test_fs_unlink_deferred_while_open;
    Alcotest.test_case "fs: write/read" `Quick test_fs_write_read;
    Alcotest.test_case "fs: write extends" `Quick test_fs_write_extends;
    Alcotest.test_case "fs: large extend is one extent" `Quick test_fs_extend_contiguous;
    Alcotest.test_case "fs: extend zeroes frames" `Quick test_fs_extend_zeroes;
    Alcotest.test_case "fs: truncate" `Quick test_fs_truncate;
    Alcotest.test_case "fs: quota enforced" `Quick test_fs_quota_enforced;
    Alcotest.test_case "fs: whole-file protection" `Quick test_fs_whole_file_prot;
    Alcotest.test_case "fs: coarse access tracking" `Quick test_fs_access_time_coarse;
    Alcotest.test_case "fs: discardable reclaim order" `Quick test_fs_reclaim_discardable;
    Alcotest.test_case "fs: utilization + tiny metadata" `Quick test_fs_utilization_metadata;
    Alcotest.test_case "fs: iter_files" `Quick test_fs_iter_files;
    Alcotest.test_case "journal: records every op" `Quick test_journal_records_ops;
    Alcotest.test_case "journal: replay matches namespace" `Quick
      test_journal_replay_matches_namespace;
    Alcotest.test_case "journal: checkpoints when full" `Quick test_journal_checkpoints_when_full;
    Alcotest.test_case "journal: durability costs charged" `Quick test_journal_costs_charged;
    Alcotest.test_case "wal: append + recover" `Quick test_wal_append_recover;
    Alcotest.test_case "wal: torn tail dropped" `Quick test_wal_torn_tail_dropped;
    Alcotest.test_case "wal: checksum rejects corruption" `Quick test_wal_checksum_rejects_corruption;
    Alcotest.test_case "wal: full + durable reset" `Quick test_wal_full_and_reset;
    prop_wal_roundtrip;
    Alcotest.test_case "fs: tmpfs crash loses all" `Quick test_tmpfs_crash_loses_everything;
    Alcotest.test_case "fs: pmfs crash + recover" `Quick test_pmfs_crash_recover;
    Alcotest.test_case "fs: recovery cost per-file not per-byte" `Quick test_pmfs_recovery_cost_is_per_file;
    prop_fs_write_read_roundtrip;
    prop_fs_space_conservation;
  ]
