(* The PR-3 fast paths: mmu_gather-style batched shootdowns, the
   pre-zeroed frame cache, and the O(1) data-structure rewrites (TLB slot
   arrays, interval-map range TLB). *)

open Helpers
module K = Os.Kernel

let page = Sim.Units.page_size

(* ------------------------- batched shootdowns ---------------------- *)

(* n pages spread over k VMAs tear down with exactly one batch: below the
   full-flush threshold that is one INVLPG per page, and never one
   shootdown pass per VMA. *)
let test_batch_invlpg_accounting () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let vmas = 4 and pages_per_vma = 4 in
  for i = 0 to vmas - 1 do
    (* Alternate protections so adjacent VMAs never merge. *)
    let prot = if i land 1 = 0 then Hw.Prot.rw else Hw.Prot.r in
    ignore (K.mmap_anon k p ~len:(pages_per_vma * page) ~prot ~populate:true)
  done;
  let stats = K.stats k in
  let batches0 = Sim.Stats.get stats "tlb_batch" in
  let shoot0 = Sim.Stats.get stats "tlb_shootdown" in
  let flush0 = Sim.Stats.get stats "tlb_flush" in
  K.exit_process k p;
  check_int "one batch for the whole exit" 1 (Sim.Stats.get stats "tlb_batch" - batches0);
  check_int "batch pages = total pages" (vmas * pages_per_vma)
    (Sim.Stats.get stats "tlb_batch_pages");
  check_int "16 pages < threshold: per-page INVLPGs" (vmas * pages_per_vma)
    (Sim.Stats.get stats "tlb_shootdown" - shoot0);
  check_int "no full flush below threshold" 0 (Sim.Stats.get stats "tlb_flush" - flush0)

let test_batch_full_flush_above_threshold () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  for i = 0 to 3 do
    let prot = if i land 1 = 0 then Hw.Prot.rw else Hw.Prot.r in
    ignore (K.mmap_anon k p ~len:(16 * page) ~prot ~populate:true)
  done;
  let stats = K.stats k in
  let shoot0 = Sim.Stats.get stats "tlb_shootdown" in
  let flush0 = Sim.Stats.get stats "tlb_flush" in
  K.exit_process k p;
  (* 64 pages >= 33: the batch degenerates to one full flush. *)
  check_int "one full flush" 1 (Sim.Stats.get stats "tlb_flush" - flush0);
  check_int "no per-page shootdowns" 0 (Sim.Stats.get stats "tlb_shootdown" - shoot0);
  check_int "one batch" 1 (Sim.Stats.get stats "tlb_batch")

let test_batch_empty_is_free () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let mmu = Os.Address_space.mmu p.Os.Proc.aspace in
  let before = Sim.Clock.now (K.clock k) in
  let b = Hw.Tlb_batch.create mmu in
  Hw.Tlb_batch.flush b;
  check_int "empty flush charges nothing" 0 (Sim.Clock.elapsed (K.clock k) ~since:before);
  check_int "no batch counted" 0 (Sim.Stats.get (K.stats k) "tlb_batch")

(* FOM process exit gathers every region's shootdown into one batch. *)
let test_fom_exit_single_batch () =
  let kernel, fom = mk_fom () in
  let p = K.create_process kernel () in
  for _ = 1 to 3 do
    ignore (O1mem.Fom.alloc fom p ~len:(Sim.Units.mib 2) ~prot:Hw.Prot.rw ())
  done;
  let stats = K.stats kernel in
  let batches0 = Sim.Stats.get stats "tlb_batch" in
  O1mem.Fom.exit_process fom p;
  check_int "one batch for 3 regions" 1 (Sim.Stats.get stats "tlb_batch" - batches0)

(* -------------------------- zeroed-frame cache --------------------- *)

let test_zero_cache_hit_miss () =
  let mem = mk_mem () in
  let engine = Physmem.Zero_engine.create mem in
  let zc = Alloc.Zero_cache.create ~mem ~engine () in
  let stats = Physmem.Phys_mem.stats mem in
  check_bool "empty cache misses" true (Alloc.Zero_cache.take zc ~order:0 = None);
  check_int "miss counted" 1 (Sim.Stats.get stats "zero_cache_miss");
  Physmem.Zero_engine.put_dirty engine [ 5; 6 ];
  check_int "refill launders both" 2 (Alloc.Zero_cache.refill zc ~budget_frames:8);
  check_int "available" 2 (Alloc.Zero_cache.available zc ~order:0);
  let clock = Physmem.Phys_mem.clock mem in
  let before = Sim.Clock.now clock in
  check_bool "hit" true (Alloc.Zero_cache.take zc ~order:0 <> None);
  check_int "hit charges the O(1) pop"
    Sim.Cost_model.default.Sim.Cost_model.zero_cache_pop
    (Sim.Clock.elapsed clock ~since:before);
  check_int "hit counted" 1 (Sim.Stats.get stats "zero_cache_hit");
  check_bool "second hit" true (Alloc.Zero_cache.take zc ~order:0 <> None);
  (* Exhausted again: back to misses, no crash. *)
  check_bool "exhausted" true (Alloc.Zero_cache.take zc ~order:0 = None);
  check_int "misses" 2 (Sim.Stats.get stats "zero_cache_miss");
  check_bool "unknown order misses" true (Alloc.Zero_cache.take zc ~order:99 = None)

(* Fault path: populate works with an empty cache (eager fallback), and
   hits the cache once background zeroing has run. *)
let test_fault_path_uses_cache () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let stats = K.stats k in
  let len = 8 * page in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  check_int "cold populate: all misses" 8 (Sim.Stats.get stats "zero_cache_miss");
  check_int "no hits yet" 0 (Sim.Stats.get stats "zero_cache_hit");
  K.munmap k p ~va ~len;
  (* The 8 freed frames are dirty; launder them into the cache. *)
  check_int "background zero" 8 (K.background_zero k ~budget_frames:32);
  ignore (K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true);
  check_int "warm populate: all hits" 8 (Sim.Stats.get stats "zero_cache_hit")

(* --------------------------- TLB evictions ------------------------- *)

let test_tlb_evictions_counter () =
  let clock, stats = mk_env () in
  let tlb = Hw.Tlb.create ~clock ~stats ~sets:1 ~ways:2 () in
  let ins va = Hw.Tlb.insert tlb ~va ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small () in
  ins 0;
  ins page;
  check_int "fills are not evictions" 0 (Sim.Stats.get stats "tlb_evictions");
  ins (2 * page);
  check_int "capacity eviction counted" 1 (Sim.Stats.get stats "tlb_evictions");
  ins (2 * page);
  check_int "refill of resident page is free" 1 (Sim.Stats.get stats "tlb_evictions");
  check_int "entry count stable" 2 (Hw.Tlb.entry_count tlb)

(* ------------------- range TLB vs the linear model ----------------- *)

(* Reference: the pre-rewrite list implementation (MRU-first, overlap
   eviction on insert, LRU tail drop at capacity). The interval-map
   version must be observationally identical. *)
module Linear_model = struct
  type t = { capacity : int; mutable entries : Hw.Range_table.entry list }

  let create capacity = { capacity; entries = [] }

  let lookup t ~va =
    let hit =
      List.find_opt
        (fun (e : Hw.Range_table.entry) -> va >= e.base && va < e.base + e.limit)
        t.entries
    in
    (match hit with
    | Some e -> t.entries <- e :: List.filter (fun x -> x != e) t.entries
    | None -> ());
    hit

  let overlaps (a : Hw.Range_table.entry) (b : Hw.Range_table.entry) =
    a.base < b.base + b.limit && b.base < a.base + a.limit

  let insert t e =
    let without = List.filter (fun x -> not (overlaps x e)) t.entries in
    let trimmed =
      if List.length without >= t.capacity then
        List.filteri (fun i _ -> i < t.capacity - 1) without
      else without
    in
    t.entries <- e :: trimmed

  let invalidate t ~base =
    t.entries <- List.filter (fun (e : Hw.Range_table.entry) -> e.base <> base) t.entries

  let entry_count t = List.length t.entries
end

type rtlb_op = Insert of int * int | Lookup of int | Invalidate of int

let rtlb_op_gen =
  (* Small grid so inserts overlap and collide often. *)
  QCheck2.Gen.(
    oneof
      [
        map2 (fun b l -> Insert (b * 4096, (1 + l) * 4096)) (int_bound 15) (int_bound 3);
        map (fun v -> Lookup (v * 4096)) (int_bound 19);
        map (fun b -> Invalidate (b * 4096)) (int_bound 15);
      ])

let prop_range_tlb_vs_linear_model =
  qtest "range tlb == linear reference" QCheck2.Gen.(list_size (int_bound 60) rtlb_op_gen)
    (fun ops ->
      let clock, stats = mk_env () in
      let rtlb = Hw.Range_tlb.create ~clock ~stats ~entries:4 () in
      let model = Linear_model.create 4 in
      List.iter
        (fun op ->
          match op with
          | Insert (base, limit) ->
            let e = { Hw.Range_table.base; limit; offset = base * 2; prot = Hw.Prot.rw } in
            Hw.Range_tlb.insert rtlb e;
            Linear_model.insert model e
          | Lookup va ->
            let a = Hw.Range_tlb.lookup rtlb ~va () in
            let b = Linear_model.lookup model ~va in
            if a <> b then
              QCheck2.Test.fail_reportf "lookup %d diverged (va=%d)" va
                (match a with Some e -> e.Hw.Range_table.base | None -> -1)
          | Invalidate base ->
            Hw.Range_tlb.invalidate rtlb ~base ();
            Linear_model.invalidate model ~base)
        ops;
      Hw.Range_tlb.entry_count rtlb = Linear_model.entry_count model)

(* ------------------------- extent truncate ------------------------- *)

let test_truncate_boundary_only () =
  let t = Fs.Extent_tree.create () in
  (* Three separate extents (non-mergeable frame runs). *)
  Fs.Extent_tree.append t ~start:0 ~count:4;
  Fs.Extent_tree.append t ~start:100 ~count:4;
  Fs.Extent_tree.append t ~start:200 ~count:4;
  (* Cut through the middle extent. *)
  let cut = Fs.Extent_tree.truncate_to t ~pages:6 in
  check_int "pages after cut" 6 (Fs.Extent_tree.pages t);
  check_int "two pieces cut" 2 (List.length cut);
  (match cut with
  | [ tail; whole ] ->
    check_int "tail logical" 6 tail.Fs.Extent.logical;
    check_int "tail start" 102 tail.Fs.Extent.start;
    check_int "tail count" 2 tail.Fs.Extent.count;
    check_int "whole logical" 8 whole.Fs.Extent.logical;
    check_int "whole count" 4 whole.Fs.Extent.count
  | _ -> Alcotest.fail "expected [tail; whole]");
  (* The kept side still translates. *)
  check_bool "kept head intact" true (Fs.Extent_tree.lookup t ~page:5 = Some 101);
  check_bool "cut side gone" true (Fs.Extent_tree.lookup t ~page:6 = None);
  (* Truncate exactly on an extent boundary: nothing straddles. *)
  let cut2 = Fs.Extent_tree.truncate_to t ~pages:4 in
  check_int "boundary cut piece" 1 (List.length cut2);
  check_int "boundary pages" 4 (Fs.Extent_tree.pages t)

let suite =
  [
    Alcotest.test_case "batch: n pages, k VMAs, 1 batch (INVLPG)" `Quick
      test_batch_invlpg_accounting;
    Alcotest.test_case "batch: full flush above threshold" `Quick
      test_batch_full_flush_above_threshold;
    Alcotest.test_case "batch: empty flush is free" `Quick test_batch_empty_is_free;
    Alcotest.test_case "batch: FOM exit flushes once" `Quick test_fom_exit_single_batch;
    Alcotest.test_case "zero cache: hit/miss/exhaustion" `Quick test_zero_cache_hit_miss;
    Alcotest.test_case "zero cache: fault path fallback + warm hits" `Quick
      test_fault_path_uses_cache;
    Alcotest.test_case "tlb: eviction counter" `Quick test_tlb_evictions_counter;
    prop_range_tlb_vs_linear_model;
    Alcotest.test_case "extent tree: truncate touches only the boundary" `Quick
      test_truncate_boundary_only;
  ]
