(* Tests for the paper's optional/extension machinery: userfaultfd-style
   paging, user-level swap over FOM, transparent huge pages, fork+CoW,
   FS defragmentation, erase policies and the TCMalloc comparator. *)
open Helpers
module K = Os.Kernel
module F = O1mem.Fom

(* Userfault *)

let test_userfault_provide_and_zero () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let base = 0x5000_0000 in
  let log = ref [] in
  Os.Userfault.register (K.userfault k) ~pid:p.Os.Proc.pid ~va:base ~len:(Sim.Units.kib 8)
    ~prot:Hw.Prot.rw (fun ~va ~write ->
      ignore write;
      log := va :: !log;
      if va < base + 4096 then Os.Userfault.Provide "hello-uffd" else Os.Userfault.Zero_page);
  K.access k p ~va:(base + 2) ~write:false;
  check_int "handler called once" 1 (List.length !log);
  (* Content installed. *)
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  (match Hw.Page_table.lookup table ~va:base with
  | Some (pa, _) ->
    check_string "provided bytes" "hello-uffd"
      (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa ~len:10))
  | None -> Alcotest.fail "page not installed");
  (* Second access: no new upcall. *)
  K.access k p ~va:(base + 100) ~write:true;
  check_int "no re-fault" 1 (List.length !log);
  (* Zero page path. *)
  K.access k p ~va:(base + 4096) ~write:false;
  check_int "second page handled" 2 (List.length !log);
  check_int "userfault stat" 2 (Sim.Stats.get (K.stats k) "userfault")

let test_userfault_sigbus () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let base = 0x5000_0000 in
  Os.Userfault.register (K.userfault k) ~pid:p.Os.Proc.pid ~va:base ~len:4096 ~prot:Hw.Prot.rw
    (fun ~va:_ ~write:_ -> Os.Userfault.Sigbus);
  Alcotest.check_raises "sigbus" (Os.Fault.Segfault base) (fun () ->
      K.access k p ~va:base ~write:false)

let test_userfault_overlap_rejected () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let uf = K.userfault k in
  Os.Userfault.register uf ~pid:p.Os.Proc.pid ~va:0 ~len:8192 ~prot:Hw.Prot.rw
    (fun ~va:_ ~write:_ -> Os.Userfault.Zero_page);
  Alcotest.check_raises "overlap" (Invalid_argument "Userfault.register: overlapping registration")
    (fun () ->
      Os.Userfault.register uf ~pid:p.Os.Proc.pid ~va:4096 ~len:4096 ~prot:Hw.Prot.rw
        (fun ~va:_ ~write:_ -> Os.Userfault.Zero_page));
  Os.Userfault.unregister uf ~pid:p.Os.Proc.pid ~va:0;
  check_int "unregistered" 0 (Os.Userfault.region_count uf ~pid:p.Os.Proc.pid)

let test_user_page_release () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let base = 0x6000_0000 in
  Os.Userfault.register (K.userfault k) ~pid:p.Os.Proc.pid ~va:base ~len:4096 ~prot:Hw.Prot.rw
    (fun ~va:_ ~write:_ -> Os.Userfault.Zero_page);
  K.access k p ~va:base ~write:true;
  check_bool "released" true (K.user_page_release k p ~va:base <> None);
  check_bool "release of unmapped is None" true (K.user_page_release k p ~va:base = None);
  (* Next access faults to the handler again. *)
  K.access k p ~va:base ~write:false;
  check_int "evict stat" 1 (Sim.Stats.get (K.stats k) "userfault_evict")

(* Uswap: user-level swapping over a FOM backing file *)

let mk_uswap ~file_pages ~window_pages =
  let kernel, fom = mk_fom () in
  let proc = K.create_process kernel () in
  let fs = F.fs fom in
  let ino = Fs.Memfs.create_file fs "/swapfile" ~persistence:Fs.Inode.Persistent in
  Fs.Memfs.extend fs ino ~bytes_wanted:(file_pages * Sim.Units.page_size);
  let u = O1mem.Uswap.create fom proc ~backing_path:"/swapfile" ~window_pages in
  (kernel, fom, proc, u)

let test_uswap_window_paging () =
  let kernel, fom, _, u = mk_uswap ~file_pages:16 ~window_pages:4 in
  ignore kernel;
  let fs = F.fs fom in
  let ino = Option.get (Fs.Memfs.lookup fs "/swapfile") in
  (* Plant recognizable data in page 10 via the file API. *)
  Fs.Memfs.write_file fs ino ~off:(10 * Sim.Units.page_size) "page-ten";
  check_bool "reads through the window" true
    (O1mem.Uswap.read_byte u ~off:((10 * Sim.Units.page_size) + 5) = 't');
  check_int "one fault" 1 (O1mem.Uswap.faults u);
  (* Touch more pages than the window holds: evictions happen. *)
  for i = 0 to 7 do
    ignore (O1mem.Uswap.read_byte u ~off:(i * Sim.Units.page_size))
  done;
  check_bool "window bounded" true (O1mem.Uswap.resident_pages u <= 4);
  check_bool "evictions happened" true (O1mem.Uswap.evictions u > 0)

let test_uswap_writeback () =
  let _, fom, _, u = mk_uswap ~file_pages:8 ~window_pages:2 in
  let fs = F.fs fom in
  let ino = Option.get (Fs.Memfs.lookup fs "/swapfile") in
  (* Dirty page 0 through the window, then force it out by touching others. *)
  O1mem.Uswap.write_byte u ~off:3 'Z';
  for i = 1 to 4 do
    ignore (O1mem.Uswap.read_byte u ~off:(i * Sim.Units.page_size))
  done;
  check_bool "wrote back" true (O1mem.Uswap.writebacks u >= 1);
  check_bool "data persisted to backing file" true
    (Bytes.get (Fs.Memfs.read_file fs ino ~off:3 ~len:1) 0 = 'Z');
  (* And reading it again pages it back in with the data. *)
  check_bool "read back through window" true (O1mem.Uswap.read_byte u ~off:3 = 'Z')

let test_uswap_destroy () =
  let kernel, fom, proc, u = mk_uswap ~file_pages:8 ~window_pages:4 in
  ignore fom;
  ignore (O1mem.Uswap.read_byte u ~off:0);
  O1mem.Uswap.destroy u;
  check_int "nothing resident" 0 (O1mem.Uswap.resident_pages u);
  check_int "registry empty" 0
    (Os.Userfault.region_count (K.userfault kernel) ~pid:proc.Os.Proc.pid)

(* THP *)

let test_thp_collapse () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  (* A fully populated 4 MiB anon region: two collapsible windows. *)
  let va = K.mmap_anon k p ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw ~populate:true in
  (* Plant a marker to verify data survives the copy. *)
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  let marker_va = va + Sim.Units.huge_2m + 4096 + 7 in
  (match Hw.Page_table.lookup table ~va:marker_va with
  | Some (pa, _) -> Physmem.Phys_mem.write (K.mem k) ~addr:pa "thp-marker"
  | None -> Alcotest.fail "unmapped");
  let stats = Os.Thp.scan_process k p () in
  (* VA is only page-aligned: at least one full window fits inside. *)
  check_bool "collapsed >= 1 window" true (stats.Os.Thp.collapsed >= 1);
  (* The marker survived relocation. *)
  (match Hw.Page_table.lookup table ~va:marker_va with
  | Some (pa, leaf) ->
    check_bool "marker page now huge" true (leaf.Hw.Page_table.size = Hw.Page_size.Huge_2m);
    check_string "data survived" "thp-marker"
      (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa ~len:10))
  | None -> Alcotest.fail "mapping lost");
  check_bool "stat" true (Sim.Stats.get (K.stats k) "thp_collapse" >= 1)

let test_thp_collapse_reduces_tlb_misses () =
  let run collapse =
    let k = mk_kernel () in
    let p = K.create_process k () in
    let len = Sim.Units.mib 8 in
    let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
    if collapse then ignore (Os.Thp.scan_process k p ());
    Hw.Mmu.flush_tlbs (Os.Address_space.mmu p.Os.Proc.aspace);
    let before = Sim.Stats.get (K.stats k) "tlb_miss" in
    ignore (K.access_range k p ~va ~len ~write:false ~stride:Sim.Units.page_size);
    Sim.Stats.get (K.stats k) "tlb_miss" - before
  in
  let base = run false and thp = run true in
  check_bool "far fewer misses after collapse" true (thp * 10 < base)

let test_thp_threshold () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw ~populate:false in
  (* Fault in only a handful of pages: below the 90% threshold. *)
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 64) ~write:true ~stride:Sim.Units.page_size);
  let stats = Os.Thp.scan_process k p () in
  check_int "nothing collapsed" 0 stats.Os.Thp.collapsed

let test_thp_split () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw ~populate:true in
  ignore (Os.Thp.scan_process k p ());
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  let huge_va =
    (* Find a huge leaf. *)
    let found = ref None in
    Hw.Page_table.iter_leaves table (fun lva leaf ->
        if leaf.Hw.Page_table.size = Hw.Page_size.Huge_2m && !found = None then found := Some lva);
    match !found with Some v -> v | None -> Alcotest.fail "no huge page to split"
  in
  ignore va;
  check_bool "split works" true (Os.Thp.split_huge k p ~va:(huge_va + 12345));
  (match Hw.Page_table.lookup table ~va:huge_va with
  | Some (_, leaf) -> check_bool "now base pages" true (leaf.Hw.Page_table.size = Hw.Page_size.Small)
  | None -> Alcotest.fail "split lost the mapping");
  check_bool "split of base page is false" true (not (Os.Thp.split_huge k p ~va:huge_va))

(* Fork + CoW *)

let test_fork_shares_then_cows () =
  let k = mk_kernel () in
  let parent = K.create_process k () in
  let va = K.mmap_anon k parent ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:true in
  (* Parent writes a marker. *)
  let p_table = Os.Address_space.page_table parent.Os.Proc.aspace in
  let pa_before =
    match Hw.Page_table.lookup p_table ~va with Some (pa, _) -> pa | None -> Alcotest.fail "unmapped"
  in
  Physmem.Phys_mem.write (K.mem k) ~addr:pa_before "from-parent";
  let child = Os.Fork.fork k parent in
  let c_table = Os.Address_space.page_table child.Os.Proc.aspace in
  (* Same frame visible in both. *)
  (match Hw.Page_table.lookup c_table ~va with
  | Some (pa, leaf) ->
    check_int "same frame" pa_before pa;
    check_bool "read-only in child" false leaf.Hw.Page_table.prot.Hw.Prot.write
  | None -> Alcotest.fail "child missing mapping");
  check_bool "shared pages counted" true (Os.Fork.cow_shared_pages k child >= 4);
  (* Child reads parent's data. *)
  K.access k child ~va ~write:false;
  (* Child writes: CoW gives it a private copy. *)
  K.access k child ~va:(va + 1) ~write:true;
  let pa_child =
    match Hw.Page_table.lookup c_table ~va with Some (pa, _) -> pa | None -> Alcotest.fail "lost"
  in
  check_bool "child got its own frame" true (pa_child <> pa_before);
  check_bool "cow fault happened" true (Sim.Stats.get (K.stats k) "cow_fault" >= 1);
  (* Parent's data intact, child's copy diverged at byte 1 only. *)
  check_string "parent intact" "from-parent"
    (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa_before ~len:11));
  (* Byte 1 diverged ('x' from the write); the rest is the parent's data. *)
  check_string "child copy carried data" "om-parent"
    (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:(pa_child + 2) ~len:9))

let test_fork_parent_write_also_cows () =
  let k = mk_kernel () in
  let parent = K.create_process k () in
  let va = K.mmap_anon k parent ~len:4096 ~prot:Hw.Prot.rw ~populate:true in
  let child = Os.Fork.fork k parent in
  (* The parent writes after fork: parent CoWs, child keeps the original. *)
  K.access k parent ~va ~write:true;
  let p_pa =
    match Hw.Page_table.lookup (Os.Address_space.page_table parent.Os.Proc.aspace) ~va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "parent lost"
  in
  let c_pa =
    match Hw.Page_table.lookup (Os.Address_space.page_table child.Os.Proc.aspace) ~va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "child lost"
  in
  check_bool "frames diverged" true (p_pa <> c_pa);
  (* Child can now write its own copy without affecting the parent. *)
  K.access k child ~va ~write:true

let test_fork_shared_file_mapping_aliases () =
  let k = mk_kernel () in
  let parent = K.create_process k () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/shared" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 "x";
  let va =
    K.mmap_file k parent ~fs ~path:"/shared" ~prot:Hw.Prot.rw ~share:Os.Vma.Shared ~populate:true ()
  in
  let refs_before = (Fs.Memfs.inode fs ino).Fs.Inode.refs in
  let child = Os.Fork.fork k parent in
  check_int "file reference taken" (refs_before + 1) (Fs.Memfs.inode fs ino).Fs.Inode.refs;
  (* Writes are visible both ways: same frame, full prot. *)
  K.access k child ~va ~write:true;
  let p_pa =
    match Hw.Page_table.lookup (Os.Address_space.page_table parent.Os.Proc.aspace) ~va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "?"
  in
  let c_pa =
    match Hw.Page_table.lookup (Os.Address_space.page_table child.Os.Proc.aspace) ~va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "?"
  in
  check_int "same frame for shared file" p_pa c_pa

(* Defragmentation *)

let test_defragment_coalesces () =
  let mem = mk_mem ~dram:(Sim.Units.mib 32) () in
  (* A small, completely full FS: interleave two files, delete one, and
     grow a third through the resulting 4-frame holes. *)
  let fs = Fs.Memfs.create ~mem ~first:0 ~count:96 ~mode:Fs.Memfs.Tmpfs () in
  let a = Fs.Memfs.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
  let b = Fs.Memfs.create_file fs "/b" ~persistence:Fs.Inode.Volatile in
  for _ = 1 to 12 do
    Fs.Memfs.extend fs a ~bytes_wanted:(Sim.Units.kib 16);
    Fs.Memfs.extend fs b ~bytes_wanted:(Sim.Units.kib 16)
  done;
  Fs.Memfs.unlink fs "/b";
  let c = Fs.Memfs.create_file fs "/c" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs c ~bytes_wanted:(Sim.Units.kib 96);
  Fs.Memfs.write_file fs c ~off:(Sim.Units.kib 90) "frag";
  let frag_before = List.length (Fs.Memfs.file_extents fs c) in
  check_bool "c is fragmented" true (frag_before > 1);
  check_bool "fragmentation metric sees it" true (Fs.Memfs.average_extents_per_file fs > 1.0);
  (* Deleting /a opens a large contiguous run; compaction can relocate. *)
  Fs.Memfs.unlink fs "/a";
  let moved = Fs.Memfs.defragment fs () in
  check_bool "compacted something" true (moved >= 1);
  check_int "c now one extent" 1 (List.length (Fs.Memfs.file_extents fs c));
  check_string "data survived relocation" "frag"
    (Bytes.to_string (Fs.Memfs.read_file fs c ~off:(Sim.Units.kib 90) ~len:4))

let test_defragment_skips_open_files () =
  let mem = mk_mem ~dram:(Sim.Units.mib 32) () in
  let fs = Fs.Memfs.create ~mem ~first:0 ~count:1024 ~mode:Fs.Memfs.Tmpfs () in
  let a = Fs.Memfs.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
  let b = Fs.Memfs.create_file fs "/hole" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs a ~bytes_wanted:(Sim.Units.kib 16);
  Fs.Memfs.extend fs b ~bytes_wanted:(Sim.Units.kib 16);
  Fs.Memfs.extend fs a ~bytes_wanted:(Sim.Units.kib 16);
  Fs.Memfs.unlink fs "/hole";
  check_bool "a fragmented" true (List.length (Fs.Memfs.file_extents fs a) > 1);
  Fs.Memfs.open_file fs a;
  check_int "open file not moved" 0 (Fs.Memfs.defragment fs ());
  Fs.Memfs.close_file fs a;
  check_bool "movable when closed" true (Fs.Memfs.defragment fs () >= 1)

(* Erase policies in the FS *)

let test_fs_erase_policies_keep_frames_zero () =
  List.iter
    (fun erase ->
      let mem = mk_mem ~dram:(Sim.Units.mib 32) () in
      let fs = Fs.Memfs.create ~mem ~first:0 ~count:1024 ~mode:Fs.Memfs.Tmpfs ~erase () in
      (* Dirty a file, free it, let any background work run, re-allocate. *)
      let a = Fs.Memfs.create_file fs "/a" ~persistence:Fs.Inode.Volatile in
      Fs.Memfs.write_file fs a ~off:0 (String.make 4096 's');
      Fs.Memfs.unlink fs "/a";
      ignore (Fs.Memfs.background_zero_step fs ~budget_frames:64);
      let b = Fs.Memfs.create_file fs "/b" ~persistence:Fs.Inode.Volatile in
      Fs.Memfs.extend fs b ~bytes_wanted:4096;
      let e = List.hd (Fs.Memfs.file_extents fs b) in
      check_bool "no data leak across files" true
        (Physmem.Phys_mem.frame_is_zero mem e.Fs.Extent.start))
    [ Fs.Memfs.Eager_zero; Fs.Memfs.Background_zero; Fs.Memfs.Device_erase ]

let test_fs_background_zero_cheapens_extend () =
  let cost erase prime =
    let mem = mk_mem ~dram:(Sim.Units.mib 64) () in
    let clock = Physmem.Phys_mem.clock mem in
    let fs = Fs.Memfs.create ~mem ~first:0 ~count:8192 ~mode:Fs.Memfs.Tmpfs ~erase () in
    if prime then begin
      (* Churn once so the background zeroer has a stocked pool. *)
      let a = Fs.Memfs.create_file fs "/prime" ~persistence:Fs.Inode.Volatile in
      Fs.Memfs.extend fs a ~bytes_wanted:(Sim.Units.mib 4);
      Fs.Memfs.unlink fs "/prime";
      ignore (Fs.Memfs.background_zero_step fs ~budget_frames:2048)
    end;
    let b = Fs.Memfs.create_file fs "/b" ~persistence:Fs.Inode.Volatile in
    let before = Sim.Clock.now clock in
    Fs.Memfs.extend fs b ~bytes_wanted:(Sim.Units.mib 4);
    Sim.Clock.elapsed clock ~since:before
  in
  let eager = cost Fs.Memfs.Eager_zero false in
  let bg = cost Fs.Memfs.Background_zero true in
  check_bool "pooled frames make extend far cheaper" true (bg * 10 < eager)

(* TCMalloc comparator *)

let test_tcmalloc_basic () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let h = Heap.Tcmalloc_sim.create k p () in
  let a = Heap.Tcmalloc_sim.malloc h ~thread:0 ~bytes:100 in
  let b = Heap.Tcmalloc_sim.malloc h ~thread:0 ~bytes:100 in
  check_bool "distinct" true (a <> b);
  check_bool "class size" true (Heap.Tcmalloc_sim.size_of h a = Some 128);
  Heap.Tcmalloc_sim.free h ~thread:0 a;
  let a' = Heap.Tcmalloc_sim.malloc h ~thread:0 ~bytes:100 in
  check_int "thread-cache LIFO reuse" a a';
  check_int "one central refill so far" 1 (Heap.Tcmalloc_sim.central_refills h)

let test_tcmalloc_thread_isolation () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let h = Heap.Tcmalloc_sim.create k p ~threads:2 () in
  let a = Heap.Tcmalloc_sim.malloc h ~thread:0 ~bytes:64 in
  Heap.Tcmalloc_sim.free h ~thread:0 a;
  (* Thread 1 misses its own cache and refills from central. *)
  let refills_before = Heap.Tcmalloc_sim.central_refills h in
  ignore (Heap.Tcmalloc_sim.malloc h ~thread:1 ~bytes:64);
  check_int "thread 1 refilled separately" (refills_before + 1) (Heap.Tcmalloc_sim.central_refills h)

let test_tcmalloc_waste_accounting () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let h = Heap.Tcmalloc_sim.create k p () in
  let blocks = List.init 10 (fun _ -> Heap.Tcmalloc_sim.malloc h ~thread:0 ~bytes:4096) in
  check_int "live" (10 * 4096) (Heap.Tcmalloc_sim.live_bytes h);
  check_bool "cached waste exists (batched span)" true (Heap.Tcmalloc_sim.cached_bytes h > 0);
  List.iter (Heap.Tcmalloc_sim.free h ~thread:0) blocks;
  check_int "nothing live" 0 (Heap.Tcmalloc_sim.live_bytes h);
  check_bool "memory retained, not returned (the trade)" true
    (Heap.Tcmalloc_sim.footprint_bytes h > 0)

let test_tcmalloc_amortized_lock_cost () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let h = Heap.Tcmalloc_sim.create k p () in
  (* 320 allocations = 10 batches of 32: at most ~10 lock acquisitions. *)
  for _ = 1 to 320 do
    ignore (Heap.Tcmalloc_sim.malloc h ~thread:0 ~bytes:64)
  done;
  check_bool "locks amortized" true (Heap.Tcmalloc_sim.central_refills h <= 11)

let mk () =
  let kernel, fom = mk_fom () in
  let proc = K.create_process kernel ~range_translations:true () in
  (kernel, fom, proc)

(* FS: hard links and rename *)

let test_fs_link () =
  let kernel, fom = mk_fom () in
  ignore kernel;
  let fs = F.fs fom in
  let ino = Fs.Memfs.create_file fs "/orig" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 "linked-data";
  Fs.Memfs.link fs ~existing:"/orig" ~new_path:"/alias";
  check_bool "alias resolves to same inode" true (Fs.Memfs.lookup fs "/alias" = Some ino);
  check_int "nlink 2" 2 (Fs.Memfs.inode fs ino).Fs.Inode.nlink;
  (* Deleting one name keeps the data alive. *)
  Fs.Memfs.unlink fs "/orig";
  check_string "data via alias" "linked-data"
    (Bytes.to_string (Fs.Memfs.read_file fs ino ~off:0 ~len:11));
  let free0 = Fs.Memfs.free_bytes fs in
  Fs.Memfs.unlink fs "/alias";
  check_bool "frames freed at last unlink" true (Fs.Memfs.free_bytes fs > free0);
  Alcotest.check_raises "cannot link directories"
    (Invalid_argument "Memfs.link: cannot link a directory") (fun () ->
      Fs.Memfs.mkdir fs "/d";
      Fs.Memfs.link fs ~existing:"/d" ~new_path:"/d2")

let test_fs_rename () =
  let kernel, fom = mk_fom () in
  ignore kernel;
  let fs = F.fs fom in
  Fs.Memfs.mkdir fs "/a";
  Fs.Memfs.mkdir fs "/b";
  let ino = Fs.Memfs.create_file fs "/a/f" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.mib 4);
  let clock = Os.Kernel.clock kernel in
  let before = Sim.Clock.now clock in
  Fs.Memfs.rename fs ~old_path:"/a/f" ~new_path:"/b/g";
  let cost = Sim.Clock.elapsed clock ~since:before in
  check_bool "old gone" true (Fs.Memfs.lookup fs "/a/f" = None);
  check_bool "new resolves" true (Fs.Memfs.lookup fs "/b/g" = Some ino);
  check_bool "O(1): no data movement" true (cost < 10_000);
  Alcotest.check_raises "no clobber" (Invalid_argument "Memfs.rename: destination exists")
    (fun () ->
      ignore (Fs.Memfs.create_file fs "/b/h" ~persistence:Fs.Inode.Volatile);
      Fs.Memfs.rename fs ~old_path:"/b/g" ~new_path:"/b/h")

(* Fom.grow *)

let test_fom_grow () =
  let kernel, fom, proc = mk () in
  let fs = F.fs fom in
  let r = F.alloc fom proc ~len:(Sim.Units.mib 1) ~prot:Hw.Prot.rw () in
  Fs.Memfs.write_file fs r.F.ino ~off:100 "keep-me";
  let first_extent_before = (List.hd (Fs.Memfs.file_extents fs r.F.ino)).Fs.Extent.start in
  let r2 = F.grow fom proc r ~new_len:(Sim.Units.mib 8) in
  ignore kernel;
  check_int "grown" (Sim.Units.mib 8) r2.F.len;
  check_int "data never moved (same first extent)" first_extent_before
    (List.hd (Fs.Memfs.file_extents fs r2.F.ino)).Fs.Extent.start;
  check_bool "same file" true (r2.F.ino = r.F.ino);
  check_string "data preserved (never moved)" "keep-me"
    (Bytes.to_string (Fs.Memfs.read_file fs r2.F.ino ~off:100 ~len:7));
  (* Whole new region translates. *)
  ignore (F.access_range fom proc ~va:r2.F.va ~len:r2.F.len ~write:true ~stride:Sim.Units.page_size);
  (* Old base no longer maps (the region moved). *)
  if r2.F.va <> r.F.va then
    Alcotest.check_raises "old base unmapped" (Os.Fault.Segfault r.F.va) (fun () ->
        F.access fom proc ~va:r.F.va ~write:false)

let test_fom_grow_range_strategy () =
  let _, fom, proc = mk () in
  let rt = Option.get (Os.Address_space.range_table proc.Os.Proc.aspace) in
  let r = F.alloc fom proc ~strategy:F.Range_translation ~len:(Sim.Units.mib 2) ~prot:Hw.Prot.rw () in
  check_int "one entry" 1 (Hw.Range_table.entry_count rt);
  let r2 = F.grow fom proc r ~new_len:(Sim.Units.mib 16) in
  ignore (F.access_range fom proc ~va:r2.F.va ~len:r2.F.len ~write:false ~stride:Sim.Units.huge_2m);
  check_bool "entries match extents" true
    (Hw.Range_table.entry_count rt = List.length (Fs.Memfs.file_extents (F.fs fom) r2.F.ino))

let test_grow_does_not_break_other_mappers () =
  (* Regression: p1 grows a shared file (rebuilding its master); p2, who
     mapped the file before the grow, must still unmap cleanly with its
     original graft geometry. *)
  let kernel, fom, p1 = mk () in
  let p2 = K.create_process kernel () in
  let r1 = F.alloc fom p1 ~name:"/shared" ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw () in
  let r2 = F.map_path fom p2 "/shared" in
  let r1' = F.grow fom p1 r1 ~new_len:(Sim.Units.mib 12) in
  (* p2's (pre-grow) mapping still translates over its original extent. *)
  F.access fom p2 ~va:r2.F.va ~write:false;
  F.access fom p2 ~va:(r2.F.va + r2.F.len - 1) ~write:false;
  (* And unmapping it must not touch windows p2 never grafted. *)
  F.unmap fom p2 r2;
  Alcotest.check_raises "p2 unmapped" (Os.Fault.Segfault r2.F.va) (fun () ->
      F.access fom p2 ~va:r2.F.va ~write:false);
  (* p1's grown mapping is unaffected. *)
  ignore (F.access_range fom p1 ~va:r1'.F.va ~len:r1'.F.len ~write:true ~stride:Sim.Units.page_size)

(* Guard pages *)

let test_fom_guard_pages () =
  let _, fom, proc = mk () in
  (* Without a guard, two per-page regions can be VA-adjacent: an
     overflow from the first lands in the second. *)
  let a = F.alloc fom proc ~strategy:F.Per_page ~len:4096 ~prot:Hw.Prot.rw () in
  let b = F.alloc fom proc ~strategy:F.Per_page ~len:4096 ~prot:Hw.Prot.rw () in
  check_int "adjacent without guard" (a.F.va + a.F.len) b.F.va;
  F.access fom proc ~va:(a.F.va + a.F.len) ~write:true (* silently hits b! *);
  (* With a guard, the overflow faults. *)
  let c = F.alloc fom proc ~strategy:F.Per_page ~guard:true ~len:4096 ~prot:Hw.Prot.rw () in
  let d = F.alloc fom proc ~strategy:F.Per_page ~len:4096 ~prot:Hw.Prot.rw () in
  check_bool "hole after guarded region" true (d.F.va > c.F.va + c.F.len);
  Alcotest.check_raises "overflow faults" (Os.Fault.Segfault (c.F.va + c.F.len)) (fun () ->
      F.access fom proc ~va:(c.F.va + c.F.len) ~write:true)

(* Swap backing variants *)

let test_swap_on_pmfs () =
  let config = { Helpers.small_config with Os.Kernel.swap_backing = `Pmfs } in
  let k = mk_kernel ~config () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:4096 ~prot:Hw.Prot.rw ~populate:false in
  K.access k p ~va ~write:true;
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  let pfn =
    match Hw.Page_table.lookup table ~va with
    | Some (_, leaf) -> leaf.Hw.Page_table.pfn
    | None -> Alcotest.fail "unmapped"
  in
  Physmem.Phys_mem.write (K.mem k) ~addr:(Physmem.Frame.to_addr pfn) "swap-to-nvm";
  (* Evict: the page should land in /swapfile inside PMFS. *)
  ignore (Os.Reclaim.scan (K.reclaim k) ~target_frames:1);
  let pmfs = Option.get (K.pmfs k) in
  let sw = Option.get (Fs.Memfs.lookup pmfs "/swapfile") in
  check_bool "swapfile grew" true ((Fs.Memfs.inode pmfs sw).Fs.Inode.size >= 4096);
  (* Fault back: contents intact, slot recycled. *)
  K.access k p ~va ~write:false;
  let pa = match Hw.Page_table.lookup table ~va with Some (pa, _) -> pa | None -> Alcotest.fail "?" in
  check_string "contents restored from NVM swapfile" "swap-to-nvm"
    (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa ~len:11));
  check_int "slot freed" 0 (Os.Swap.slots_used (K.swap k))

(* OOM killer *)

let test_oom_picks_largest () =
  let k = mk_kernel () in
  let small = K.create_process k () in
  let big = K.create_process k () in
  let va_s = K.mmap_anon k small ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:true in
  let va_b = K.mmap_anon k big ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:true in
  ignore (va_s, va_b);
  (match Os.Oom.pick_victim k () with
  | Some v -> check_int "largest rss chosen" big.Os.Proc.pid v.Os.Proc.pid
  | None -> Alcotest.fail "no victim");
  check_bool "killed" true (Os.Oom.on_pressure k () = Some big.Os.Proc.pid);
  check_int "one process left" 1 (K.process_count k);
  check_bool "except honoured" true
    (Os.Oom.pick_victim k ~except:small.Os.Proc.pid () = None)

let test_oom_recovers_allocation () =
  (* A machine whose anon pool is tiny: one hog fills it with *pinned*
     memory (so the reclaim-then-retry pass cannot swap its way out), a
     newcomer gets a typed ENOMEM, the killer frees the hog, the
     newcomer proceeds. *)
  let config =
    { Helpers.small_config with Os.Kernel.dram_bytes = Sim.Units.mib 16; nvm_bytes = 0 }
  in
  let k = mk_kernel ~config () in
  let hog = K.create_process k () in
  (* Anon pool is 8MiB (half of DRAM rounded to buddy blocks). *)
  let va = K.mmap_anon k hog ~len:(Sim.Units.mib 6) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k hog ~va ~len:(Sim.Units.mib 6) ~write:true ~stride:Sim.Units.page_size);
  K.mlock k hog ~va ~len:(Sim.Units.mib 6);
  let newcomer = K.create_process k () in
  let va2 = K.mmap_anon k newcomer ~len:(Sim.Units.mib 3) ~prot:Hw.Prot.rw ~populate:false in
  (* The newcomer pins as it faults, so reclaim cannot rob Peter to pay
     Paul with the newcomer's own cold pages: pressure is genuine. *)
  let oomed =
    try
      K.mlock k newcomer ~va:va2 ~len:(Sim.Units.mib 3);
      false
    with Sim.Errno.Error (Sim.Errno.ENOMEM, _) -> true
  in
  check_bool "allocation pressure hit" true oomed;
  check_bool "killer found the hog" true (Os.Oom.on_pressure k ~except:newcomer.Os.Proc.pid () = Some hog.Os.Proc.pid);
  (* Freed frames recirculate through the zero pool: retry succeeds. *)
  ignore (K.access_range k newcomer ~va:va2 ~len:(Sim.Units.mib 3) ~write:true ~stride:Sim.Units.page_size)

(* Context switching / ASIDs *)

let test_context_switch_flush_vs_asid () =
  let run asids =
    let k = mk_kernel () in
    let p1 = K.create_process k () in
    let p2 = K.create_process k () in
    let va = K.mmap_anon k p1 ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:true in
    ignore (K.access_range k p1 ~va ~len:(Sim.Units.kib 16) ~write:false ~stride:Sim.Units.page_size);
    let m0 = Sim.Stats.get (K.stats k) "tlb_miss" in
    K.context_switch k ~from_:p1 ~to_:p2 ~asids;
    K.context_switch k ~from_:p2 ~to_:p1 ~asids;
    ignore (K.access_range k p1 ~va ~len:(Sim.Units.kib 16) ~write:false ~stride:Sim.Units.page_size);
    Sim.Stats.get (K.stats k) "tlb_miss" - m0
  in
  check_int "no ASIDs: full re-miss" 4 (run false);
  check_int "ASIDs: entries survived" 0 (run true)

(* madvise *)

let test_madvise_releases_and_refaults_zero () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 8) ~prot:Hw.Prot.rw ~populate:false in
  K.access k p ~va ~write:true;
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  (match Hw.Page_table.lookup table ~va with
  | Some (pa, _) -> Physmem.Phys_mem.write (K.mem k) ~addr:pa "precious"
  | None -> Alcotest.fail "unmapped");
  let released = K.madvise_dontneed k p ~va ~len:(Sim.Units.kib 8) in
  check_int "one resident page released" 1 released;
  check_bool "unmapped now" true (Hw.Page_table.lookup table ~va = None);
  check_bool "vma survives" true (Os.Address_space.find_vma p.Os.Proc.aspace ~va <> None);
  (* Refault: fresh zero page, data gone (DONTNEED semantics). *)
  K.access k p ~va ~write:false;
  match Hw.Page_table.lookup table ~va with
  | Some (pa, _) ->
    check_string "zero-filled" (String.make 8 ' ')
      (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa ~len:8))
  | None -> Alcotest.fail "refault failed"

let test_malloc_trim () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let h = Heap.Malloc_sim.create k p in
  let blocks = List.init 4 (fun _ -> Heap.Malloc_sim.malloc h ~bytes:(Sim.Units.kib 16)) in
  List.iter
    (fun va -> ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:true ~stride:Sim.Units.page_size))
    blocks;
  List.iter (Heap.Malloc_sim.free h) blocks;
  let released = Heap.Malloc_sim.trim h in
  check_int "16 pages released" 16 released;
  check_int "trim again releases nothing" 0 (Heap.Malloc_sim.trim h);
  (* Blocks are still allocatable and refault cleanly. *)
  let va = Heap.Malloc_sim.malloc h ~bytes:(Sim.Units.kib 16) in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:true ~stride:Sim.Units.page_size)

(* procfs *)

let test_procfs_maps_and_rss () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 32) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:true ~stride:Sim.Units.page_size);
  let maps = Os.Procfs.maps p in
  check_bool "maps lists the vma" true (Helpers.contains ~needle:"anon" maps);
  check_int "rss counts only touched pages" 4 (Os.Procfs.rss_pages p);
  check_bool "pt bytes positive" true (Os.Procfs.pt_bytes p > 0);
  check_bool "summary mentions rss" true
    (Helpers.contains ~needle:"rss 16KiB" (Os.Procfs.smaps_summary k p))

let test_procfs_pss_splits_shared () =
  let k = mk_kernel () in
  let p1 = K.create_process k () in
  let p2 = K.create_process k () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/shared" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib 16);
  let map p =
    let va = K.mmap_file k p ~fs ~path:"/shared" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:true () in
    ignore va
  in
  map p1;
  Alcotest.(check (float 0.01)) "sole owner: pss = rss" 4.0 (Os.Procfs.pss_pages k p1);
  map p2;
  Alcotest.(check (float 0.01)) "shared: pss halves" 2.0 (Os.Procfs.pss_pages k p1);
  Alcotest.(check (float 0.01)) "both halves" 2.0 (Os.Procfs.pss_pages k p2)

(* chart *)

let test_chart_renders () =
  let s =
    Sim.Chart.render ~width:20 ~height:8 ~logx:true ~logy:true ~title:"t"
      [ { Sim.Chart.label = "a"; points = [ (1.0, 1.0); (10.0, 10.0); (100.0, 100.0) ] };
        { Sim.Chart.label = "b"; points = [ (1.0, 100.0); (100.0, 1.0) ] } ]
  in
  check_bool "title" true (Helpers.contains ~needle:"t
" s);
  check_bool "marker a" true (Helpers.contains ~needle:"*" s);
  check_bool "marker b" true (Helpers.contains ~needle:"+" s);
  check_bool "legend" true (Helpers.contains ~needle:"a" s && Helpers.contains ~needle:"b" s);
  check_bool "empty handled" true
    (Helpers.contains ~needle:"(no data)" (Sim.Chart.render ~title:"e" []))

(* 1 GiB graft windows *)

let test_gib_file_grafts_coarse () =
  let config =
    { Helpers.small_config with Os.Kernel.nvm_bytes = Sim.Units.gib 3; dram_bytes = Sim.Units.mib 256 }
  in
  let kernel = mk_kernel ~config () in
  let fom = F.create kernel () in
  let p = K.create_process kernel () in
  let before = Sim.Stats.get (K.stats kernel) "fom_grafts" in
  let r = F.alloc fom p ~name:"/huge" ~len:(Sim.Units.gib 2) ~prot:Hw.Prot.rw () in
  let grafts = Sim.Stats.get (K.stats kernel) "fom_grafts" - before in
  check_int "2 GiB file = 2 grafts" 2 grafts;
  (* Translation works across the whole range. *)
  F.access fom p ~va:r.F.va ~write:true;
  F.access fom p ~va:(r.F.va + Sim.Units.gib 2 - 1) ~write:true

let suite =
  [
    Alcotest.test_case "userfault: provide/zero resolutions" `Quick test_userfault_provide_and_zero;
    Alcotest.test_case "userfault: sigbus" `Quick test_userfault_sigbus;
    Alcotest.test_case "userfault: overlap + unregister" `Quick test_userfault_overlap_rejected;
    Alcotest.test_case "userfault: page release" `Quick test_user_page_release;
    Alcotest.test_case "uswap: window paging" `Quick test_uswap_window_paging;
    Alcotest.test_case "uswap: dirty write-back" `Quick test_uswap_writeback;
    Alcotest.test_case "uswap: destroy" `Quick test_uswap_destroy;
    Alcotest.test_case "thp: collapse preserves data" `Quick test_thp_collapse;
    Alcotest.test_case "thp: collapse cuts TLB misses" `Quick test_thp_collapse_reduces_tlb_misses;
    Alcotest.test_case "thp: threshold respected" `Quick test_thp_threshold;
    Alcotest.test_case "thp: split" `Quick test_thp_split;
    Alcotest.test_case "fork: CoW shares then splits" `Quick test_fork_shares_then_cows;
    Alcotest.test_case "fork: parent write CoWs too" `Quick test_fork_parent_write_also_cows;
    Alcotest.test_case "fork: shared file mappings alias" `Quick test_fork_shared_file_mapping_aliases;
    Alcotest.test_case "defrag: coalesces fragmented files" `Quick test_defragment_coalesces;
    Alcotest.test_case "defrag: skips open files" `Quick test_defragment_skips_open_files;
    Alcotest.test_case "fs erase: no cross-file data leaks" `Quick test_fs_erase_policies_keep_frames_zero;
    Alcotest.test_case "fs erase: background pool cheapens extend" `Quick
      test_fs_background_zero_cheapens_extend;
    Alcotest.test_case "tcmalloc: basic + thread cache" `Quick test_tcmalloc_basic;
    Alcotest.test_case "tcmalloc: per-thread caches" `Quick test_tcmalloc_thread_isolation;
    Alcotest.test_case "tcmalloc: waste accounting" `Quick test_tcmalloc_waste_accounting;
    Alcotest.test_case "tcmalloc: lock amortization" `Quick test_tcmalloc_amortized_lock_cost;
    Alcotest.test_case "fom: GiB files graft in GiB windows" `Quick test_gib_file_grafts_coarse;
    Alcotest.test_case "fs: hard links" `Quick test_fs_link;
    Alcotest.test_case "fs: rename is O(1)" `Quick test_fs_rename;
    Alcotest.test_case "fom: grow remaps without copying" `Quick test_fom_grow;
    Alcotest.test_case "fom: grow under range strategy" `Quick test_fom_grow_range_strategy;
    Alcotest.test_case "fom: grow does not break other mappers" `Quick
      test_grow_does_not_break_other_mappers;
    Alcotest.test_case "fom: guard pages" `Quick test_fom_guard_pages;
    Alcotest.test_case "swap: PMFS swapfile backing" `Quick test_swap_on_pmfs;
    Alcotest.test_case "oom: victim selection" `Quick test_oom_picks_largest;
    Alcotest.test_case "oom: pressure recovery" `Quick test_oom_recovers_allocation;
    Alcotest.test_case "kernel: context switch flush vs ASIDs" `Quick test_context_switch_flush_vs_asid;
    Alcotest.test_case "kernel: madvise releases + zero refault" `Quick
      test_madvise_releases_and_refaults_zero;
    Alcotest.test_case "heap: trim via madvise" `Quick test_malloc_trim;
    Alcotest.test_case "procfs: maps and rss" `Quick test_procfs_maps_and_rss;
    Alcotest.test_case "procfs: pss splits shared pages" `Quick test_procfs_pss_splits_shared;
    Alcotest.test_case "chart: renders series" `Quick test_chart_renders;
  ]
