open Helpers
module PT = Hw.Page_table
module Btree = Hw.Btree

let test_prot () =
  check_bool "rw allows write" true (Hw.Prot.allows Hw.Prot.rw ~write:true ~exec:false);
  check_bool "r denies write" false (Hw.Prot.allows Hw.Prot.r ~write:true ~exec:false);
  check_bool "rx allows exec" true (Hw.Prot.allows Hw.Prot.rx ~write:false ~exec:true);
  check_bool "r subset rw" true (Hw.Prot.subset Hw.Prot.r ~of_:Hw.Prot.rw);
  check_bool "rw not subset r" false (Hw.Prot.subset Hw.Prot.rw ~of_:Hw.Prot.r);
  check_string "pp" "rw-" (Format.asprintf "%a" Hw.Prot.pp Hw.Prot.rw)

let test_page_size () =
  check_int "small" 4096 (Hw.Page_size.bytes Hw.Page_size.Small);
  check_int "2m frames" 512 (Hw.Page_size.frames Hw.Page_size.Huge_2m);
  check_int "1g frames" (512 * 512) (Hw.Page_size.frames Hw.Page_size.Huge_1g);
  check_bool "largest 1g" true
    (Hw.Page_size.largest_for ~addr:0 ~len:(Sim.Units.gib 2) = Hw.Page_size.Huge_1g);
  check_bool "largest 2m" true
    (Hw.Page_size.largest_for ~addr:Sim.Units.huge_2m ~len:(Sim.Units.mib 4) = Hw.Page_size.Huge_2m);
  check_bool "unaligned falls to small" true
    (Hw.Page_size.largest_for ~addr:4096 ~len:(Sim.Units.gib 2) = Hw.Page_size.Small)

let test_pt_map_lookup () =
  let pt, _, _ = mk_page_table () in
  check_int "va bits" 48 (PT.va_bits pt);
  PT.map_page pt ~va:0x1000 ~pfn:42 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  (match PT.lookup pt ~va:0x1234 with
  | Some (pa, leaf) ->
    check_int "translated" ((42 * 4096) + 0x234) pa;
    check_bool "prot" true (Hw.Prot.equal leaf.PT.prot Hw.Prot.rw)
  | None -> Alcotest.fail "expected mapping");
  check_bool "unmapped va" true (PT.lookup pt ~va:0x5000 = None)

let test_pt_counts_and_prune () =
  let pt, _, _ = mk_page_table () in
  check_int "root only" 1 (PT.node_count pt);
  PT.map_page pt ~va:0x1000 ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  (* Root + 3 interior nodes for a 4-level walk. *)
  check_int "path created" 4 (PT.node_count pt);
  check_int "one pte" 1 (PT.pte_count pt);
  check_int "metadata" (4 * 4096) (PT.metadata_bytes pt);
  PT.unmap_page pt ~va:0x1000;
  check_int "pruned back to root" 1 (PT.node_count pt);
  check_int "no ptes" 0 (PT.pte_count pt)

let test_pt_double_map_rejected () =
  let pt, _, _ = mk_page_table () in
  PT.map_page pt ~va:0 ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  Alcotest.check_raises "remap" (Invalid_argument "Page_table.map_page: already mapped") (fun () ->
      PT.map_page pt ~va:0 ~pfn:2 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small)

let test_pt_huge_pages () =
  let pt, _, _ = mk_page_table () in
  PT.map_page pt ~va:Sim.Units.huge_2m ~pfn:512 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Huge_2m;
  (match PT.lookup pt ~va:(Sim.Units.huge_2m + 12345) with
  | Some (pa, leaf) ->
    check_int "huge translation" ((512 * 4096) + 12345) pa;
    check_bool "leaf size" true (leaf.PT.size = Hw.Page_size.Huge_2m)
  | None -> Alcotest.fail "expected huge mapping");
  (* A 2 MiB leaf occupies a depth-2 slot: only root + 2 interior nodes. *)
  check_int "shallower path" 3 (PT.node_count pt)

let test_pt_map_range_mixed () =
  let pt, _, _ = mk_page_table () in
  (* 4 MiB range starting 2M-aligned, physically 2M-aligned: two 2M leaves. *)
  let n = PT.map_range pt ~va:Sim.Units.huge_2m ~pfn:512 ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw ~huge:true in
  check_int "two huge leaves" 2 n;
  (* Unaligned length tail uses small pages. *)
  let pt2, _, _ = mk_page_table () in
  let n2 = PT.map_range pt2 ~va:0 ~pfn:0 ~len:(Sim.Units.mib 2 + Sim.Units.kib 8) ~prot:Hw.Prot.rw ~huge:true in
  check_int "one huge + two small" 3 n2

let test_pt_map_range_small () =
  let pt, _, _ = mk_page_table () in
  let n = PT.map_range pt ~va:0 ~pfn:0 ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~huge:false in
  check_int "16 ptes" 16 n;
  check_int "16 found" 16 (PT.pte_count pt)

let test_pt_unmap_range () =
  let pt, _, _ = mk_page_table () in
  ignore (PT.map_range pt ~va:0 ~pfn:0 ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~huge:false);
  let n = PT.unmap_range pt ~va:0 ~len:(Sim.Units.kib 32) in
  check_int "8 cleared" 8 n;
  check_int "8 left" 8 (PT.pte_count pt)

let test_pt_protect_range () =
  let pt, _, _ = mk_page_table () in
  ignore (PT.map_range pt ~va:0 ~pfn:0 ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~huge:false);
  let n = PT.protect_range pt ~va:0 ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.r in
  check_int "4 ptes touched" 4 n;
  match PT.lookup pt ~va:0 with
  | Some (_, leaf) -> check_bool "now read-only" true (Hw.Prot.equal leaf.PT.prot Hw.Prot.r)
  | None -> Alcotest.fail "mapping lost"

let test_pt_iter_leaves_order () =
  let pt, _, _ = mk_page_table () in
  ignore (PT.map_range pt ~va:Sim.Units.huge_2m ~pfn:0 ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~huge:false);
  let vas = ref [] in
  PT.iter_leaves pt (fun va _ -> vas := va :: !vas);
  let vas = List.rev !vas in
  check_int "four leaves" 4 (List.length vas);
  check_bool "ascending" true (List.sort compare vas = vas);
  check_int "first at base" Sim.Units.huge_2m (List.nth vas 0)

let test_pt_five_levels () =
  let pt, _, _ = mk_page_table ~levels:5 () in
  check_int "57-bit space" 57 (PT.va_bits pt);
  let big_va = 1 lsl 50 in
  PT.map_page pt ~va:big_va ~pfn:7 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  (match PT.lookup pt ~va:big_va with
  | Some (pa, _) -> check_int "translates" (7 * 4096) pa
  | None -> Alcotest.fail "expected mapping");
  check_int "five-level path" 5 (PT.node_count pt)

let test_pt_share_subtree () =
  let a, _, _ = mk_page_table () in
  let b, _, _ = mk_page_table () in
  let base = Sim.Units.huge_2m * 7 in
  ignore (PT.map_range a ~va:base ~pfn:0 ~len:Sim.Units.huge_2m ~prot:Hw.Prot.rw ~huge:false);
  let nodes_b_before = PT.node_count b in
  PT.share_subtree ~src:a ~src_va:base ~dst:b ~dst_va:base ~depth:3;
  (match PT.lookup b ~va:(base + 8192) with
  | Some (pa, _) -> check_int "shared translation" 8192 pa
  | None -> Alcotest.fail "graft did not translate");
  check_bool "b gained only path nodes" true (PT.node_count b - nodes_b_before <= 3);
  check_bool "shared flag" true (PT.is_shared_at b ~va:base ~depth:3);
  (* Changes through a are visible through b (same physical nodes). *)
  ignore (PT.protect_range a ~va:base ~len:4096 ~prot:Hw.Prot.r);
  (match PT.lookup b ~va:base with
  | Some (_, leaf) -> check_bool "write-protect visible via b" true (Hw.Prot.equal leaf.PT.prot Hw.Prot.r)
  | None -> Alcotest.fail "lost");
  PT.unshare b ~va:base ~depth:3;
  check_bool "b no longer translates" true (PT.lookup b ~va:base = None);
  (match PT.lookup a ~va:base with
  | Some _ -> ()
  | None -> Alcotest.fail "a must keep its mapping")

let test_pt_share_alignment_checks () =
  let a, _, _ = mk_page_table () in
  let b, _, _ = mk_page_table () in
  ignore (PT.map_range a ~va:0 ~pfn:0 ~len:Sim.Units.huge_2m ~prot:Hw.Prot.rw ~huge:false);
  Alcotest.check_raises "unaligned dst"
    (Invalid_argument "Page_table.share_subtree: VAs not aligned to subtree span") (fun () ->
      PT.share_subtree ~src:a ~src_va:0 ~dst:b ~dst_va:4096 ~depth:3)

let test_pt_shared_node_not_pruned () =
  let a, _, _ = mk_page_table () in
  let b, _, _ = mk_page_table () in
  ignore (PT.map_range a ~va:0 ~pfn:0 ~len:(Sim.Units.kib 8) ~prot:Hw.Prot.rw ~huge:false);
  PT.share_subtree ~src:a ~src_va:0 ~dst:b ~dst_va:0 ~depth:3;
  (* Unmapping the leaves through a must not free the node b points at. *)
  ignore (PT.unmap_range a ~va:0 ~len:(Sim.Units.kib 8));
  check_bool "b sees the (now empty) shared subtree without crash" true (PT.lookup b ~va:0 = None);
  (* Remap through a: b sees it again via the same shared node. *)
  PT.map_page a ~va:0 ~pfn:99 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  match PT.lookup b ~va:0 with
  | Some (pa, _) -> check_int "shared node reused" (99 * 4096) pa
  | None -> Alcotest.fail "shared node was pruned"

let test_ensure_node () =
  let pt, _, _ = mk_page_table () in
  PT.ensure_node pt ~va:0 ~depth:3;
  check_int "path pre-created" 4 (PT.node_count pt);
  PT.ensure_node pt ~va:0 ~depth:3;
  check_int "idempotent" 4 (PT.node_count pt)

(* Walker *)

let test_walk_ref_counts () =
  check_int "native 4K in 4-level" 4
    (Hw.Walker.refs_for_walk ~guest_levels:4 ~leaf_depth:3 ~mode:Hw.Walker.Native);
  check_int "native 2M leaf" 3
    (Hw.Walker.refs_for_walk ~guest_levels:4 ~leaf_depth:2 ~mode:Hw.Walker.Native);
  check_int "virtualized 4-on-4 = 24" 24
    (Hw.Walker.refs_for_walk ~guest_levels:4 ~leaf_depth:3 ~mode:(Hw.Walker.Virtualized 4));
  check_int "virtualized 5-on-5 = 35" 35
    (Hw.Walker.refs_for_walk ~guest_levels:5 ~leaf_depth:4 ~mode:(Hw.Walker.Virtualized 5))

let test_walk_charges_and_access_bit () =
  let pt, clock, stats = mk_page_table () in
  PT.map_page pt ~va:0x1000 ~pfn:3 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  let before = Sim.Clock.now clock in
  (match Hw.Walker.walk ~clock ~stats ~table:pt ~mode:Hw.Walker.Native ~va:0x1000 () with
  | Some (pa, leaf) ->
    check_int "pa" (3 * 4096) pa;
    check_bool "accessed set" true leaf.PT.accessed
  | None -> Alcotest.fail "walk failed");
  let m = Sim.Cost_model.default in
  check_int "leaf from DRAM, upper levels from walk caches"
    (m.Sim.Cost_model.mem_ref_dram + (3 * m.Sim.Cost_model.cache_ref))
    (Sim.Clock.elapsed clock ~since:before);
  check_int "stat" 4 (Sim.Stats.get stats "walk_refs")

(* TLB *)

let mk_tlb () =
  let clock, stats = mk_env () in
  (Hw.Tlb.create ~clock ~stats ~sets:4 ~ways:2 (), clock, stats)

let test_tlb_hit_miss () =
  let tlb, _, stats = mk_tlb () in
  check_bool "cold miss" true (Hw.Tlb.lookup tlb ~va:0x1000 () = None);
  Hw.Tlb.insert tlb ~va:0x1000 ~pfn:5 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  (match Hw.Tlb.lookup tlb ~va:0x1234 () with
  | Some (pfn, _, size) ->
    check_int "pfn" 5 pfn;
    check_bool "size" true (size = Hw.Page_size.Small)
  | None -> Alcotest.fail "expected hit");
  check_int "one miss" 1 (Sim.Stats.get stats "tlb_miss");
  check_int "one hit" 1 (Sim.Stats.get stats "tlb_hit")

let test_tlb_lru_eviction () =
  let tlb, _, _ = mk_tlb () in
  (* Fill one set beyond capacity: vpns congruent mod 4. *)
  let va i = i * 4 * 4096 in
  Hw.Tlb.insert tlb ~va:(va 0) ~pfn:0 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  Hw.Tlb.insert tlb ~va:(va 1) ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  ignore (Hw.Tlb.lookup tlb ~va:(va 0) ());
  (* va0 is MRU; inserting a third evicts va1. *)
  Hw.Tlb.insert tlb ~va:(va 2) ~pfn:2 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  check_bool "va0 survives" true (Hw.Tlb.lookup tlb ~va:(va 0) () <> None);
  check_bool "va1 evicted" true (Hw.Tlb.lookup tlb ~va:(va 1) () = None)

let test_tlb_huge_entry () =
  let tlb, _, _ = mk_tlb () in
  Hw.Tlb.insert tlb ~va:Sim.Units.huge_2m ~pfn:512 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Huge_2m ();
  (* One entry covers the whole 2 MiB. *)
  check_bool "start" true (Hw.Tlb.lookup tlb ~va:Sim.Units.huge_2m () <> None);
  check_bool "middle" true (Hw.Tlb.lookup tlb ~va:(Sim.Units.huge_2m + Sim.Units.mib 1) () <> None);
  check_bool "past end" true (Hw.Tlb.lookup tlb ~va:(2 * Sim.Units.huge_2m) () = None)

let test_tlb_invalidate () =
  let tlb, _, _ = mk_tlb () in
  Hw.Tlb.insert tlb ~va:0x1000 ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  Hw.Tlb.insert tlb ~va:0x2000 ~pfn:2 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  Hw.Tlb.invalidate_page tlb ~va:0x1000 ();
  check_bool "gone" true (Hw.Tlb.lookup tlb ~va:0x1000 () = None);
  check_bool "other survives" true (Hw.Tlb.lookup tlb ~va:0x2000 () <> None);
  Hw.Tlb.invalidate_range tlb ~va:0 ~len:(Sim.Units.mib 1) ();
  check_bool "range cleared" true (Hw.Tlb.lookup tlb ~va:0x2000 () = None);
  Hw.Tlb.insert tlb ~va:0x3000 ~pfn:3 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  Hw.Tlb.flush tlb;
  check_int "flush empties" 0 (Hw.Tlb.entry_count tlb)

let test_tlb_invalidate_range_accounting () =
  let tlb, clock, stats = mk_tlb () in
  let per_page = Sim.Cost_model.shootdown_cost Sim.Cost_model.default in
  (* 2 resident pages inside an 8-page range: one INVLPG per page in the
     range, resident or not — never one up-front plus one per eviction. *)
  Hw.Tlb.insert tlb ~va:0x1000 ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  Hw.Tlb.insert tlb ~va:0x3000 ~pfn:3 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  let t0 = Sim.Clock.now clock and s0 = Sim.Stats.get stats "tlb_shootdown" in
  Hw.Tlb.invalidate_range tlb ~va:0 ~len:(8 * Sim.Units.page_size) ();
  check_int "8-page range charges 8 INVLPGs" (8 * per_page) (Sim.Clock.now clock - t0);
  check_int "counter counts INVLPGs, not evictions" 8 (Sim.Stats.get stats "tlb_shootdown" - s0);
  check_int "resident entries dropped" 0 (Hw.Tlb.entry_count tlb);
  (* A fully non-resident range must charge and count the same way. *)
  let t1 = Sim.Clock.now clock and s1 = Sim.Stats.get stats "tlb_shootdown" in
  Hw.Tlb.invalidate_range tlb ~va:(Sim.Units.mib 1) ~len:(4 * Sim.Units.page_size) ();
  check_int "non-resident range still charges per page" (4 * per_page) (Sim.Clock.now clock - t1);
  check_int "non-resident range still counts per page" 4 (Sim.Stats.get stats "tlb_shootdown" - s1)

let test_tlb_invalidate_range_full_flush () =
  let tlb, clock, stats = mk_tlb () in
  Hw.Tlb.insert tlb ~va:0x1000 ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
  let t0 = Sim.Clock.now clock in
  Hw.Tlb.invalidate_range tlb ~va:0 ~len:(33 * Sim.Units.page_size) ();
  check_int "33+ pages cost one full flush, not 33 INVLPGs"
    (Sim.Cost_model.shootdown_cost Sim.Cost_model.default)
    (Sim.Clock.now clock - t0);
  check_int "flush counted" 1 (Sim.Stats.get stats "tlb_flush");
  check_int "no per-page shootdowns counted" 0 (Sim.Stats.get stats "tlb_shootdown");
  check_int "emptied" 0 (Hw.Tlb.entry_count tlb)

(* Range table and range TLB *)

let mk_rt () =
  let clock, stats = mk_env () in
  (Hw.Range_table.create ~clock ~stats (), clock, stats)

let test_range_table_lookup () =
  let rt, _, _ = mk_rt () in
  Hw.Range_table.insert rt ~base:0x10000 ~limit:(Sim.Units.mib 64) ~offset:(-0x10000) ~prot:Hw.Prot.rw;
  (match Hw.Range_table.lookup rt ~va:0x10000 with
  | Some e -> check_int "offset translate" 0 (0x10000 + e.Hw.Range_table.offset)
  | None -> Alcotest.fail "expected entry");
  check_bool "middle covered" true (Hw.Range_table.lookup rt ~va:(0x10000 + Sim.Units.mib 32) <> None);
  check_bool "past end" true (Hw.Range_table.lookup rt ~va:(0x10000 + Sim.Units.mib 64) = None);
  check_int "metadata 32B per entry" 32 (Hw.Range_table.metadata_bytes rt)

let test_range_table_overlap_rejected () =
  let rt, _, _ = mk_rt () in
  Hw.Range_table.insert rt ~base:0 ~limit:(Sim.Units.mib 1) ~offset:0 ~prot:Hw.Prot.rw;
  Alcotest.check_raises "overlap" (Invalid_argument "Range_table.insert: overlapping range")
    (fun () ->
      Hw.Range_table.insert rt ~base:(Sim.Units.kib 512) ~limit:(Sim.Units.mib 1) ~offset:0
        ~prot:Hw.Prot.rw)

let test_range_table_remove () =
  let rt, _, _ = mk_rt () in
  Hw.Range_table.insert rt ~base:0 ~limit:4096 ~offset:42 ~prot:Hw.Prot.r;
  let e = Hw.Range_table.remove rt ~base:0 in
  check_int "returned entry" 42 e.Hw.Range_table.offset;
  check_int "empty" 0 (Hw.Range_table.entry_count rt);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Hw.Range_table.remove rt ~base:0))

let test_range_tlb_lru_and_shootdown () =
  let clock, stats = mk_env () in
  let rtlb = Hw.Range_tlb.create ~clock ~stats ~entries:2 () in
  let e base = { Hw.Range_table.base; limit = 4096; offset = 0; prot = Hw.Prot.rw } in
  Hw.Range_tlb.insert rtlb (e 0);
  Hw.Range_tlb.insert rtlb (e 4096);
  ignore (Hw.Range_tlb.lookup rtlb ~va:0 ());
  Hw.Range_tlb.insert rtlb (e 8192);
  check_bool "MRU kept" true (Hw.Range_tlb.lookup rtlb ~va:0 () <> None);
  check_bool "LRU evicted" true (Hw.Range_tlb.lookup rtlb ~va:4096 () = None);
  Hw.Range_tlb.invalidate rtlb ~base:0 ();
  check_bool "shootdown" true (Hw.Range_tlb.lookup rtlb ~va:0 () = None);
  check_int "misses counted" 2 (Sim.Stats.get stats "range_tlb_miss")

let test_range_tlb_insert_overlap_evicts () =
  let clock, stats = mk_env () in
  let rtlb = Hw.Range_tlb.create ~clock ~stats ~entries:4 () in
  let e ~base ~limit ~offset = { Hw.Range_table.base; limit; offset; prot = Hw.Prot.rw } in
  Hw.Range_tlb.insert rtlb (e ~base:0 ~limit:(Sim.Units.kib 8) ~offset:0);
  (* Overlaps the first entry's tail under a different base: the stale entry
     must be evicted or a lookup in the overlap could return either. *)
  Hw.Range_tlb.insert rtlb (e ~base:Sim.Units.page_size ~limit:(Sim.Units.kib 8) ~offset:100);
  check_int "overlapping entry evicted" 1 (Hw.Range_tlb.entry_count rtlb);
  (match Hw.Range_tlb.lookup rtlb ~va:Sim.Units.page_size () with
  | Some hit -> check_int "fresh entry wins in the overlap" 100 hit.Hw.Range_table.offset
  | None -> Alcotest.fail "expected range TLB hit");
  check_bool "va only the stale entry covered now misses" true
    (Hw.Range_tlb.lookup rtlb ~va:0 () = None);
  Hw.Range_tlb.insert rtlb (e ~base:(Sim.Units.mib 1) ~limit:Sim.Units.page_size ~offset:7);
  check_int "disjoint entries coexist" 2 (Hw.Range_tlb.entry_count rtlb)

(* PTE bit-level encoding *)

let test_pte_roundtrip () =
  let e =
    Hw.Pte.encode ~present:true ~pfn:0x1234 ~prot:Hw.Prot.rw ~accessed:true ~dirty:false
      ~huge:false
  in
  check_bool "present" true (Hw.Pte.present e);
  check_int "pfn" 0x1234 (Hw.Pte.pfn e);
  check_bool "write" true (Hw.Pte.prot e).Hw.Prot.write;
  check_bool "nx" false (Hw.Pte.prot e).Hw.Prot.exec;
  check_bool "accessed" true (Hw.Pte.accessed e);
  check_bool "clean" false (Hw.Pte.dirty e);
  let e = Hw.Pte.set_dirty e true in
  check_bool "dirty now" true (Hw.Pte.dirty e);
  check_bool "not present decodes" true (Hw.Pte.to_leaf Hw.Pte.not_present = None);
  Alcotest.check_raises "pfn too wide" (Invalid_argument "Pte.encode: PFN out of 40 bits")
    (fun () ->
      ignore
        (Hw.Pte.encode ~present:true ~pfn:(1 lsl 40) ~prot:Hw.Prot.r ~accessed:false
           ~dirty:false ~huge:false))

let prop_pte_leaf_roundtrip =
  qtest "leaf -> PTE -> leaf round-trips" ~count:100
    QCheck2.Gen.(quad (int_bound 0xFFFFF) bool bool bool)
    (fun (pfn, w, x, huge) ->
      let leaf =
        {
          Hw.Page_table.pfn;
          prot = { Hw.Prot.read = true; write = w; exec = x };
          accessed = huge (* arbitrary reuse of the generator's bits *);
          dirty = w;
          size = (if huge then Hw.Page_size.Huge_2m else Hw.Page_size.Small);
        }
      in
      match Hw.Pte.to_leaf (Hw.Pte.of_leaf leaf) with
      | None -> false
      | Some l ->
        l.Hw.Page_table.pfn = pfn
        && Hw.Prot.equal l.Hw.Page_table.prot leaf.Hw.Page_table.prot
        && l.Hw.Page_table.accessed = leaf.Hw.Page_table.accessed
        && l.Hw.Page_table.dirty = leaf.Hw.Page_table.dirty
        && l.Hw.Page_table.size = leaf.Hw.Page_table.size)

(* B-tree (the range table's index) *)

let test_btree_basics () =
  let b = Btree.create () in
  check_int "empty" 0 (Btree.cardinal b);
  check_int "height 1" 1 (Btree.height b);
  for i = 0 to 99 do
    Btree.insert b ~key:(i * 2) (i * 10)
  done;
  check_int "cardinal" 100 (Btree.cardinal b);
  check_bool "height grew" true (Btree.height b >= 2);
  check_bool "invariants" true (Btree.check_invariants b);
  check_bool "find hit" true (Btree.find b ~key:42 = Some 210);
  check_bool "find miss" true (Btree.find b ~key:43 = None);
  check_bool "last_leq exact" true (Btree.find_last_leq b ~key:42 = Some (42, 210));
  check_bool "last_leq between" true (Btree.find_last_leq b ~key:43 = Some (42, 210));
  check_bool "last_leq below-all" true (Btree.find_last_leq b ~key:(-1) = None);
  check_bool "first_gt" true (Btree.find_first_gt b ~key:42 = Some (44, 220));
  check_bool "first_gt above-all" true (Btree.find_first_gt b ~key:1000 = None);
  Alcotest.check_raises "duplicate" (Invalid_argument "Btree.insert: duplicate key") (fun () ->
      Btree.insert b ~key:42 0)

let test_btree_iter_sorted () =
  let b = Btree.create () in
  let rng = Sim.Rng.create ~seed:5 in
  let keys = ref [] in
  for _ = 1 to 200 do
    let k = Sim.Rng.int rng 100_000 in
    if Btree.find b ~key:k = None then begin
      Btree.insert b ~key:k k;
      keys := k :: !keys
    end
  done;
  let seen = ref [] in
  Btree.iter b (fun k _ -> seen := k :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check (list int)) "ascending" (List.sort compare !keys) seen

let test_btree_delete_all () =
  let b = Btree.create () in
  for i = 0 to 499 do
    Btree.insert b ~key:i i
  done;
  (* Delete in an adversarial order: evens ascending, odds descending. *)
  for i = 0 to 249 do
    check_bool "removed even" true (Btree.remove b ~key:(i * 2) = Some (i * 2));
    check_bool "inv" true (Btree.check_invariants b)
  done;
  let i = ref 499 in
  while !i >= 1 do
    check_bool "removed odd" true (Btree.remove b ~key:!i = Some !i);
    i := !i - 2
  done;
  check_int "empty again" 0 (Btree.cardinal b);
  check_bool "remove missing" true (Btree.remove b ~key:7 = None)

let prop_btree_vs_map_model =
  qtest "btree agrees with a Map reference under random ops" ~count:60
    QCheck2.Gen.(list_size (int_range 10 300) (pair (int_bound 500) bool))
    (fun ops ->
      let b = Btree.create () in
      let m = ref [] (* assoc list model *) in
      List.iter
        (fun (k, ins) ->
          if ins then (
            if not (List.mem_assoc k !m) then begin
              Btree.insert b ~key:k (k * 3);
              m := (k, k * 3) :: !m
            end)
          else begin
            let expect = List.assoc_opt k !m in
            let got = Btree.remove b ~key:k in
            if got <> expect then failwith "remove mismatch";
            m := List.remove_assoc k !m
          end)
        ops;
      Btree.check_invariants b
      && Btree.cardinal b = List.length !m
      && List.for_all (fun (k, v) -> Btree.find b ~key:k = Some v) !m
      && (let probe = List.init 50 (fun i -> i * 11) in
          List.for_all
            (fun k ->
              let model_leq =
                List.filter (fun (k', _) -> k' <= k) !m
                |> List.sort (fun (a, _) (b, _) -> compare b a)
                |> function [] -> None | x :: _ -> Some x
              in
              Btree.find_last_leq b ~key:k = model_leq)
            probe))

(* Mmu front end *)

let mk_mmu ?range_table () =
  let pt, clock, stats = mk_page_table () in
  (Hw.Mmu.create ~clock ~stats ~table:pt ?range_table (), pt, clock, stats)

let test_mmu_translate_via_pt () =
  let mmu, pt, _, stats = mk_mmu () in
  PT.map_page pt ~va:0x1000 ~pfn:9 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  (match Hw.Mmu.translate mmu ~va:0x1010 ~write:false ~exec:false with
  | Ok pa -> check_int "pa" ((9 * 4096) + 0x10) pa
  | Error _ -> Alcotest.fail "expected translation");
  check_int "first access misses" 1 (Sim.Stats.get stats "tlb_miss");
  (match Hw.Mmu.translate mmu ~va:0x1020 ~write:false ~exec:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "expected hit");
  check_int "second hits" 1 (Sim.Stats.get stats "tlb_hit")

let test_mmu_protection_fault () =
  let mmu, pt, _, _ = mk_mmu () in
  PT.map_page pt ~va:0 ~pfn:1 ~prot:Hw.Prot.r ~size:Hw.Page_size.Small;
  check_bool "write to ro" true
    (Hw.Mmu.translate mmu ~va:0 ~write:true ~exec:false = Error Hw.Mmu.Protection);
  check_bool "unmapped" true
    (Hw.Mmu.translate mmu ~va:0x100000 ~write:false ~exec:false = Error Hw.Mmu.Not_mapped)

let test_mmu_dirty_bit_on_write () =
  let mmu, pt, _, _ = mk_mmu () in
  PT.map_page pt ~va:0 ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
  ignore (Hw.Mmu.translate mmu ~va:0 ~write:false ~exec:false);
  (match PT.lookup pt ~va:0 with
  | Some (_, leaf) -> check_bool "clean after read" false leaf.PT.dirty
  | None -> Alcotest.fail "lost");
  ignore (Hw.Mmu.translate mmu ~va:0 ~write:true ~exec:false);
  match PT.lookup pt ~va:0 with
  | Some (_, leaf) -> check_bool "dirty after write" true leaf.PT.dirty
  | None -> Alcotest.fail "lost"

let test_mmu_range_path () =
  let clock, stats = mk_env () in
  let rt = Hw.Range_table.create ~clock ~stats () in
  let next = ref 0 in
  let pt = PT.create ~clock ~stats ~levels:4 ~alloc_frame:(fun () -> incr next; !next) in
  let mmu = Hw.Mmu.create ~clock ~stats ~table:pt ~range_table:rt () in
  Hw.Range_table.insert rt ~base:0x100000 ~limit:(Sim.Units.gib 1) ~offset:(-0x100000) ~prot:Hw.Prot.rw;
  (match Hw.Mmu.translate mmu ~va:(0x100000 + 777) ~write:true ~exec:false with
  | Ok pa -> check_int "range translation" 777 pa
  | Error _ -> Alcotest.fail "range path failed");
  check_int "one range walk" 1 (Sim.Stats.get stats "range_walks");
  ignore (Hw.Mmu.translate mmu ~va:(0x100000 + Sim.Units.mib 500) ~write:false ~exec:false);
  check_int "second access hits range TLB" 1 (Sim.Stats.get stats "range_tlb_hit")

let prop_pt_map_lookup_roundtrip =
  qtest "map/lookup round-trips over random pages" ~count:60
    QCheck2.Gen.(list_size (int_range 1 30) (int_bound 100_000))
    (fun vpns ->
      let pt, _, _ = mk_page_table () in
      let vpns = List.sort_uniq compare vpns in
      List.iteri
        (fun i vpn ->
          PT.map_page pt ~va:(vpn * 4096) ~pfn:(i + 1) ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small)
        vpns;
      List.for_all
        (fun vpn ->
          match PT.lookup pt ~va:(vpn * 4096) with Some (pa, _) -> pa mod 4096 = 0 | None -> false)
        vpns
      && PT.pte_count pt = List.length vpns)

let prop_pt_unmap_all_prunes =
  qtest "unmapping everything prunes to the root" ~count:40
    QCheck2.Gen.(list_size (int_range 1 20) (int_bound 50_000))
    (fun vpns ->
      let pt, _, _ = mk_page_table () in
      let vpns = List.sort_uniq compare vpns in
      List.iter
        (fun vpn -> PT.map_page pt ~va:(vpn * 4096) ~pfn:1 ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small)
        vpns;
      List.iter (fun vpn -> PT.unmap_page pt ~va:(vpn * 4096)) vpns;
      PT.node_count pt = 1 && PT.pte_count pt = 0)

let prop_tlb_inclusion =
  qtest "whatever the TLB returns matches the page table" ~count:40
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 2000))
    (fun vpns ->
      let mmu, pt, _, _ = mk_mmu () in
      List.iter
        (fun vpn ->
          if PT.lookup pt ~va:(vpn * 4096) = None then
            PT.map_page pt ~va:(vpn * 4096) ~pfn:(vpn + 1) ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small)
        vpns;
      List.for_all
        (fun vpn ->
          match Hw.Mmu.translate mmu ~va:(vpn * 4096) ~write:false ~exec:false with
          | Ok pa -> pa = (vpn + 1) * 4096
          | Error _ -> false)
        (vpns @ vpns))

(* Model-based: TLB against a reference LRU model *)

let prop_tlb_vs_lru_model =
  qtest "TLB agrees with an LRU reference model" ~count:40
    QCheck2.Gen.(list_size (int_range 20 200) (int_bound 31))
    (fun vpns ->
      (* A 1-set, 4-way TLB is a pure 4-entry LRU: model it with a list. *)
      let clock, stats = mk_env () in
      let tlb = Hw.Tlb.create ~clock ~stats ~sets:1 ~ways:4 () in
      let model = ref [] (* MRU first, max 4 *) in
      List.for_all
        (fun vpn ->
          let va = vpn * Sim.Units.page_size in
          let model_hit = List.mem vpn !model in
          let tlb_hit = Hw.Tlb.lookup tlb ~va () <> None in
          (if model_hit then model := vpn :: List.filter (( <> ) vpn) !model
           else begin
             Hw.Tlb.insert tlb ~va ~pfn:vpn ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small ();
             model := vpn :: List.filteri (fun i _ -> i < 3) (List.filter (( <> ) vpn) !model)
           end);
          tlb_hit = model_hit)
        vpns)

(* Model-based: single-level cache against an LRU reference *)

let prop_cache_vs_lru_model =
  qtest "cache agrees with an LRU reference model" ~count:40
    QCheck2.Gen.(list_size (int_range 20 200) (int_bound 7))
    (fun line_ids ->
      let clock, stats = mk_env () in
      (* One set, 4 ways, 64B lines: addresses i*SETS*64 all map to set 0
         — with sets=1 any line index works. *)
      let cache =
        Physmem.Cache_hier.create ~clock ~stats
          ~levels:[ { Physmem.Cache_hier.name = "c"; size_bytes = 256; ways = 4; latency = 1 } ]
          ()
      in
      let model = ref [] in
      List.for_all
        (fun line ->
          let addr = line * 64 in
          let model_hit = List.mem line !model in
          let outcome = Physmem.Cache_hier.access cache ~addr ~write:false in
          (if model_hit then model := line :: List.filter (( <> ) line) !model
           else
             model := line :: List.filteri (fun i _ -> i < 3) (List.filter (( <> ) line) !model));
          (outcome = Physmem.Cache_hier.Hit 0) = model_hit)
        line_ids)

let suite =
  [
    Alcotest.test_case "prot: allow/subset/pp" `Quick test_prot;
    Alcotest.test_case "page sizes: geometry" `Quick test_page_size;
    Alcotest.test_case "page table: map/lookup" `Quick test_pt_map_lookup;
    Alcotest.test_case "page table: node accounting + pruning" `Quick test_pt_counts_and_prune;
    Alcotest.test_case "page table: double map rejected" `Quick test_pt_double_map_rejected;
    Alcotest.test_case "page table: huge pages" `Quick test_pt_huge_pages;
    Alcotest.test_case "page table: map_range picks page sizes" `Quick test_pt_map_range_mixed;
    Alcotest.test_case "page table: map_range small" `Quick test_pt_map_range_small;
    Alcotest.test_case "page table: unmap_range" `Quick test_pt_unmap_range;
    Alcotest.test_case "page table: protect_range" `Quick test_pt_protect_range;
    Alcotest.test_case "page table: iter_leaves ordered" `Quick test_pt_iter_leaves_order;
    Alcotest.test_case "page table: 5-level mode" `Quick test_pt_five_levels;
    Alcotest.test_case "page table: subtree sharing (Fig 3)" `Quick test_pt_share_subtree;
    Alcotest.test_case "page table: share alignment enforced" `Quick test_pt_share_alignment_checks;
    Alcotest.test_case "page table: shared nodes never pruned" `Quick test_pt_shared_node_not_pruned;
    Alcotest.test_case "page table: ensure_node" `Quick test_ensure_node;
    Alcotest.test_case "walker: reference counts (incl. 24/35)" `Quick test_walk_ref_counts;
    Alcotest.test_case "walker: charges and accessed bit" `Quick test_walk_charges_and_access_bit;
    Alcotest.test_case "tlb: hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb: LRU eviction" `Quick test_tlb_lru_eviction;
    Alcotest.test_case "tlb: huge-page entries" `Quick test_tlb_huge_entry;
    Alcotest.test_case "tlb: invalidate/flush" `Quick test_tlb_invalidate;
    Alcotest.test_case "tlb: invalidate_range charges per page" `Quick
      test_tlb_invalidate_range_accounting;
    Alcotest.test_case "tlb: invalidate_range full-flush path" `Quick
      test_tlb_invalidate_range_full_flush;
    Alcotest.test_case "pte: bit-level encoding" `Quick test_pte_roundtrip;
    prop_pte_leaf_roundtrip;
    Alcotest.test_case "btree: basics" `Quick test_btree_basics;
    Alcotest.test_case "btree: iteration sorted" `Quick test_btree_iter_sorted;
    Alcotest.test_case "btree: adversarial deletion" `Quick test_btree_delete_all;
    prop_btree_vs_map_model;
    Alcotest.test_case "range table: insert/lookup" `Quick test_range_table_lookup;
    Alcotest.test_case "range table: overlap rejected" `Quick test_range_table_overlap_rejected;
    Alcotest.test_case "range table: remove" `Quick test_range_table_remove;
    Alcotest.test_case "range tlb: LRU + shootdown" `Quick test_range_tlb_lru_and_shootdown;
    Alcotest.test_case "range tlb: insert evicts overlaps" `Quick
      test_range_tlb_insert_overlap_evicts;
    Alcotest.test_case "mmu: translate via page table + TLB fill" `Quick test_mmu_translate_via_pt;
    Alcotest.test_case "mmu: faults" `Quick test_mmu_protection_fault;
    Alcotest.test_case "mmu: dirty bit on write" `Quick test_mmu_dirty_bit_on_write;
    Alcotest.test_case "mmu: range translation path" `Quick test_mmu_range_path;
    prop_tlb_vs_lru_model;
    prop_cache_vs_lru_model;
    prop_pt_map_lookup_roundtrip;
    prop_pt_unmap_all_prunes;
    prop_tlb_inclusion;
  ]
