open Helpers
module F = O1mem.Fom
module K = Os.Kernel

let mk ?strategy () =
  let kernel, fom = mk_fom ?strategy () in
  let proc = K.create_process kernel ~range_translations:true () in
  (kernel, fom, proc)

let test_alloc_creates_file () =
  let _, fom, proc = mk () in
  let r = F.alloc fom proc ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
  check_bool "temp file" true r.F.temp;
  check_bool "file exists" true (Fs.Memfs.lookup (F.fs fom) r.F.path = Some r.F.ino);
  check_int "length page-rounded" (Sim.Units.kib 64) r.F.len;
  check_bool "strategy default" true (r.F.strategy = F.Shared_subtree)

let test_alloc_named_persistent () =
  let _, fom, proc = mk () in
  let r = F.alloc fom proc ~name:"/pers" ~len:4096 ~prot:Hw.Prot.rw () in
  check_bool "not temp" false r.F.temp;
  let node = Fs.Memfs.inode (F.fs fom) r.F.ino in
  check_bool "persistent by default when named" true
    (node.Fs.Inode.persistence = Fs.Inode.Persistent)

let test_access_never_faults () =
  let kernel, fom, proc = mk () in
  let r = F.alloc fom proc ~len:(Sim.Units.mib 1) ~prot:Hw.Prot.rw () in
  let n = F.access_range fom proc ~va:r.F.va ~len:r.F.len ~write:true ~stride:Sim.Units.page_size in
  check_int "256 touches" 256 n;
  check_int "zero page faults, ever" 0 (Sim.Stats.get (K.stats kernel) "page_fault")

let test_each_strategy_translates () =
  List.iter
    (fun strategy ->
      let _, fom, proc = mk () in
      let r = F.alloc fom proc ~strategy ~len:(Sim.Units.kib 512) ~prot:Hw.Prot.rw () in
      ignore (F.access_range fom proc ~va:r.F.va ~len:r.F.len ~write:true ~stride:Sim.Units.page_size);
      F.access fom proc ~va:(r.F.va + r.F.len - 1) ~write:false)
    [ F.Per_page; F.Huge_pages; F.Shared_subtree; F.Range_translation ]

let test_out_of_region_segfaults () =
  let _, fom, proc = mk () in
  let r = F.alloc fom proc ~len:4096 ~prot:Hw.Prot.rw () in
  Alcotest.check_raises "past end" (Os.Fault.Segfault (r.F.va + Sim.Units.huge_2m)) (fun () ->
      F.access fom proc ~va:(r.F.va + Sim.Units.huge_2m) ~write:false)

let test_whole_file_protection () =
  let _, fom, proc = mk () in
  let r = F.alloc fom proc ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
  F.access fom proc ~va:r.F.va ~write:true;
  let r = F.protect fom proc r ~prot:Hw.Prot.r in
  Alcotest.check_raises "write now denied" (Os.Fault.Segfault r.F.va) (fun () ->
      F.access fom proc ~va:r.F.va ~write:true);
  F.access fom proc ~va:r.F.va ~write:false

let test_unmap_then_free () =
  let _, fom, proc = mk () in
  let fs = F.fs fom in
  let free0 = Fs.Memfs.free_bytes fs in
  let r = F.alloc fom proc ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
  check_bool "space used" true (Fs.Memfs.free_bytes fs < free0);
  F.free fom proc r;
  check_int "space back after free" free0 (Fs.Memfs.free_bytes fs);
  check_bool "region gone" true (F.region_of fom proc ~va:r.F.va = None);
  Alcotest.check_raises "access after free" (Os.Fault.Segfault r.F.va) (fun () ->
      F.access fom proc ~va:r.F.va ~write:false)

let test_named_file_survives_unmap () =
  let _, fom, proc = mk () in
  let fs = F.fs fom in
  let r = F.alloc fom proc ~name:"/data" ~len:4096 ~prot:Hw.Prot.rw () in
  F.free fom proc r;
  check_bool "named file still there" true (Fs.Memfs.lookup fs "/data" <> None)

let test_shared_subtree_sharing_across_processes () =
  let kernel, fom, p1 = mk () in
  let p2 = K.create_process kernel () in
  let r1 =
    F.alloc fom p1 ~name:"/shared" ~strategy:F.Shared_subtree ~len:(Sim.Units.mib 8)
      ~prot:Hw.Prot.rw ()
  in
  (* Write through p1, read the same physical bytes through p2. *)
  F.access fom p1 ~va:r1.F.va ~write:true;
  let nodes_before = Hw.Page_table.node_count (Os.Address_space.page_table p2.Os.Proc.aspace) in
  let pte_before = Sim.Stats.get (K.stats kernel) "pte_write" in
  let r2 = F.map_path fom p2 ~strategy:F.Shared_subtree "/shared" in
  let pte_after = Sim.Stats.get (K.stats kernel) "pte_write" in
  (* Mapping 8 MiB = 2048 pages took only ~4 graft pointer writes. *)
  check_bool "grafts, not per-page PTEs" true (pte_after - pte_before < 32);
  check_bool "p2 gained few nodes" true
    (Hw.Page_table.node_count (Os.Address_space.page_table p2.Os.Proc.aspace) - nodes_before <= 4);
  (* Same physical translation in both processes. *)
  let pa1 =
    match Hw.Page_table.lookup (Os.Address_space.page_table p1.Os.Proc.aspace) ~va:r1.F.va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "p1 unmapped"
  in
  let pa2 =
    match Hw.Page_table.lookup (Os.Address_space.page_table p2.Os.Proc.aspace) ~va:r2.F.va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "p2 unmapped"
  in
  check_int "same physical page" pa1 pa2

let test_master_reused_across_maps () =
  let kernel, fom, p1 = mk () in
  ignore (F.alloc fom p1 ~name:"/lib" ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw ());
  check_int "one master" 1 (O1mem.Shared_pt.master_count (F.shared_pt fom));
  let p2 = K.create_process kernel () in
  ignore (F.map_path fom p2 "/lib");
  check_int "still one master" 1 (O1mem.Shared_pt.master_count (F.shared_pt fom))

let test_range_translation_entries () =
  let _, fom, proc = mk () in
  let rt = Option.get (Os.Address_space.range_table proc.Os.Proc.aspace) in
  let r =
    F.alloc fom proc ~strategy:F.Range_translation ~len:(Sim.Units.mib 16) ~prot:Hw.Prot.rw ()
  in
  (* One extent -> one entry, regardless of 16 MiB size. *)
  check_int "one range entry" 1 (Hw.Range_table.entry_count rt);
  F.access fom proc ~va:(r.F.va + Sim.Units.mib 8) ~write:true;
  F.free fom proc r;
  check_int "entry removed at unmap" 0 (Hw.Range_table.entry_count rt)

let test_pbm_same_va_everywhere () =
  let kernel, fom, _ = mk () in
  let pbm = O1mem.Pbm.create kernel in
  let p1 = K.create_process kernel () in
  let p2 = K.create_process kernel () in
  (* Carve a physical extent via the FOM file system. *)
  let fs = F.fs fom in
  let ino = Fs.Memfs.create_file fs "/pbm-backing" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib 64);
  let e = List.hd (Fs.Memfs.file_extents fs ino) in
  let va = O1mem.Pbm.map_region pbm ~first:e.Fs.Extent.start ~count:e.Fs.Extent.count ~prot:Hw.Prot.rw in
  check_int "va derived from pa" (O1mem.Pbm.va_of_addr (Physmem.Frame.to_addr e.Fs.Extent.start)) va;
  O1mem.Pbm.attach pbm p1;
  O1mem.Pbm.attach pbm p2;
  let lookup p =
    match Hw.Page_table.lookup (Os.Address_space.page_table p.Os.Proc.aspace) ~va with
    | Some (pa, _) -> pa
    | None -> Alcotest.fail "pbm not visible"
  in
  check_int "identical translation in p1 and p2" (lookup p1) (lookup p2);
  check_int "va maps to its own pa" (Physmem.Frame.to_addr e.Fs.Extent.start) (lookup p1);
  (* Attach is O(1): one subtree share per process. *)
  check_int "two attaches" 2 (Sim.Stats.get (K.stats kernel) "pbm_attach");
  O1mem.Pbm.detach pbm p2;
  check_bool "p2 detached" true
    (Hw.Page_table.lookup (Os.Address_space.page_table p2.Os.Proc.aspace) ~va = None);
  check_int "p1 still attached" (Physmem.Frame.to_addr e.Fs.Extent.start) (lookup p1)

let test_pbm_double_attach_rejected () =
  let kernel, _, proc = mk () in
  let pbm = O1mem.Pbm.create kernel in
  O1mem.Pbm.attach pbm proc;
  Alcotest.check_raises "double attach" (Invalid_argument "Pbm.attach: already attached")
    (fun () -> O1mem.Pbm.attach pbm proc)

let test_discardable_cache_reclaim () =
  let kernel, fom, _ = mk () in
  ignore kernel;
  let d = O1mem.Discard.create ~fs:(F.fs fom) in
  O1mem.Discard.register_cache_file d ~path:"/cache-a" ~size:(Sim.Units.kib 64);
  O1mem.Discard.register_cache_file d ~path:"/cache-b" ~size:(Sim.Units.kib 64);
  Sim.Clock.charge (K.clock kernel) 5000;
  O1mem.Discard.touch d ~path:"/cache-b";
  let freed = O1mem.Discard.pressure d ~needed_bytes:(Sim.Units.kib 64) in
  check_int "freed one file" (Sim.Units.kib 64) freed;
  check_bool "cold cache gone" false (O1mem.Discard.still_present d ~path:"/cache-a");
  check_bool "hot cache kept" true (O1mem.Discard.still_present d ~path:"/cache-b")

let test_erase_strategies () =
  let mem = mk_mem () in
  let fill first count =
    for pfn = first to first + count - 1 do
      Physmem.Phys_mem.write mem ~addr:(Physmem.Frame.to_addr pfn) "dirt"
    done
  in
  let cost strategy first count =
    let e = O1mem.Erase.create ~mem ~strategy in
    fill first count;
    O1mem.Erase.critical_path_cycles e (fun () -> O1mem.Erase.erase_extent e ~first ~count)
  in
  let eager_1 = cost O1mem.Erase.Eager 0 1 in
  let eager_64 = cost O1mem.Erase.Eager 64 64 in
  check_bool "eager is linear" true (eager_64 >= 32 * eager_1);
  let bg_1 = cost O1mem.Erase.Background 128 1 in
  let bg_64 = cost O1mem.Erase.Background 192 64 in
  check_int "background critical path O(1)" bg_1 bg_64;
  let bulk_1 = cost O1mem.Erase.Bulk_device 256 1 in
  let bulk_64 = cost O1mem.Erase.Bulk_device 320 64 in
  check_int "bulk erase O(1)" bulk_1 bulk_64

let test_erase_background_completes () =
  let mem = mk_mem () in
  let e = O1mem.Erase.create ~mem ~strategy:O1mem.Erase.Background in
  Physmem.Phys_mem.write mem ~addr:0 "x";
  O1mem.Erase.erase_extent e ~first:0 ~count:4;
  check_bool "not yet zero" false (Physmem.Phys_mem.frame_is_zero mem 0);
  check_int "drained" 4 (O1mem.Erase.drain_background e ~budget_frames:10);
  check_bool "now zero" true (Physmem.Phys_mem.frame_is_zero mem 0)

let test_crash_recovery_persistence () =
  let _, fom, proc = mk () in
  let fs = F.fs fom in
  (* One persistent named region with data; one volatile temp region. *)
  let keep = F.alloc fom proc ~name:"/keep" ~len:4096 ~prot:Hw.Prot.rw () in
  Fs.Memfs.write_file fs keep.F.ino ~off:0 "still here";
  let lose = F.alloc fom proc ~len:4096 ~prot:Hw.Prot.rw () in
  let lose_path = lose.F.path in
  let report = O1mem.Persistence.crash_and_recover fom in
  check_bool "scanned files" true (report.O1mem.Persistence.files_scanned >= 2);
  check_bool "persistent survived" true (Fs.Memfs.lookup fs "/keep" <> None);
  check_bool "volatile deleted" true (Fs.Memfs.lookup fs lose_path = None);
  let ino = Option.get (Fs.Memfs.lookup fs "/keep") in
  check_string "data survived" "still here" (Bytes.to_string (Fs.Memfs.read_file fs ino ~off:0 ~len:10))

let test_masters_survive_crash_for_persistent_files () =
  let _, fom, proc = mk () in
  ignore (F.alloc fom proc ~name:"/code" ~len:(Sim.Units.mib 2) ~prot:Hw.Prot.rx ());
  check_int "master built" 1 (O1mem.Shared_pt.master_count (F.shared_pt fom));
  let report = O1mem.Persistence.crash_and_recover fom in
  check_int "master kept (pre-created PT reusable)" 1 report.O1mem.Persistence.masters_kept

let test_launch_and_exit () =
  let kernel, fom, _ = mk () in
  let proc, regions =
    F.launch fom ~code_bytes:(Sim.Units.kib 64) ~heap_bytes:(Sim.Units.mib 1)
      ~stack_bytes:(Sim.Units.kib 256)
  in
  check_int "three segments" 3 (List.length regions);
  List.iter
    (fun (r : F.region) -> F.access fom proc ~va:r.F.va ~write:(r.F.prot.Hw.Prot.write))
    regions;
  (* Second launch reuses the code file's master: only heap and stack
     masters are built anew. *)
  let built1 = Sim.Stats.get (K.stats kernel) "fom_master_built" in
  let proc2, _ = F.launch fom ~code_bytes:(Sim.Units.kib 64) ~heap_bytes:(Sim.Units.mib 1)
      ~stack_bytes:(Sim.Units.kib 256)
  in
  check_int "code master reused" (built1 + 2) (Sim.Stats.get (K.stats kernel) "fom_master_built");
  F.exit_process fom proc;
  F.exit_process fom proc2;
  check_int "only the fixture process remains" 1 (K.process_count kernel)

let test_fom_no_per_page_metadata_updates () =
  let kernel, fom, proc = mk () in
  let before = Sim.Stats.get (K.stats kernel) "struct_page_update" in
  let r = F.alloc fom proc ~len:(Sim.Units.mib 2) ~prot:Hw.Prot.rw () in
  ignore (F.access_range fom proc ~va:r.F.va ~len:r.F.len ~write:true ~stride:Sim.Units.page_size);
  check_int "FOM path never touches struct page" before
    (Sim.Stats.get (K.stats kernel) "struct_page_update")

let prop_fom_alloc_free_conserves_space =
  qtest "fom alloc/free conserves FS space" ~count:30
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 1 64))
    (fun sizes_kib ->
      let _, fom, proc = mk () in
      let fs = F.fs fom in
      let free0 = Fs.Memfs.free_bytes fs in
      let regions =
        List.map (fun kib -> F.alloc fom proc ~len:(Sim.Units.kib kib) ~prot:Hw.Prot.rw ()) sizes_kib
      in
      List.iter (fun r -> F.free fom proc r) regions;
      Fs.Memfs.free_bytes fs = free0)

let prop_fom_data_integrity =
  qtest "bytes written through FOM mappings read back" ~count:30
    QCheck2.Gen.(pair (int_range 0 60) (string_size ~gen:printable (int_range 1 50)))
    (fun (page, data) ->
      let kernel, fom, proc = mk () in
      let r = F.alloc fom proc ~len:(Sim.Units.kib 256) ~prot:Hw.Prot.rw () in
      let va = r.F.va + (page * Sim.Units.page_size) in
      (* Resolve and write physically, then read via the file API. *)
      match Hw.Page_table.lookup (Os.Address_space.page_table proc.Os.Proc.aspace) ~va with
      | None -> false
      | Some (pa, _) ->
        Physmem.Phys_mem.write (K.mem kernel) ~addr:pa data;
        let got =
          Fs.Memfs.read_file (F.fs fom) r.F.ino ~off:(page * Sim.Units.page_size)
            ~len:(String.length data)
        in
        Bytes.to_string got = data)

let test_smaps () =
  let _, fom, proc = mk () in
  let r = F.alloc fom proc ~name:"/data" ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw () in
  ignore (F.alloc fom proc ~strategy:F.Range_translation ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.r ());
  let out = F.smaps fom proc in
  check_bool "lists named region" true (Helpers.contains ~needle:"/data" out);
  check_bool "lists strategy" true (Helpers.contains ~needle:"shared-subtree" out);
  check_bool "lists range region" true (Helpers.contains ~needle:"range-translation" out);
  check_bool "totals" true (Helpers.contains ~needle:"regions" out);
  ignore r

let suite =
  [
    Alcotest.test_case "fom: alloc creates a file" `Quick test_alloc_creates_file;
    Alcotest.test_case "fom: named allocs persistent" `Quick test_alloc_named_persistent;
    Alcotest.test_case "fom: access never faults" `Quick test_access_never_faults;
    Alcotest.test_case "fom: all strategies translate" `Quick test_each_strategy_translates;
    Alcotest.test_case "fom: segfault outside region" `Quick test_out_of_region_segfaults;
    Alcotest.test_case "fom: whole-file protection" `Quick test_whole_file_protection;
    Alcotest.test_case "fom: free returns space" `Quick test_unmap_then_free;
    Alcotest.test_case "fom: named files survive unmap" `Quick test_named_file_survives_unmap;
    Alcotest.test_case "fom: subtree sharing across processes (Fig 3)" `Quick
      test_shared_subtree_sharing_across_processes;
    Alcotest.test_case "fom: master reuse" `Quick test_master_reused_across_maps;
    Alcotest.test_case "fom: range translations O(extents)" `Quick test_range_translation_entries;
    Alcotest.test_case "pbm: same VA in every process (Fig 8)" `Quick test_pbm_same_va_everywhere;
    Alcotest.test_case "pbm: double attach rejected" `Quick test_pbm_double_attach_rejected;
    Alcotest.test_case "discard: cache files reclaimed cold-first" `Quick test_discardable_cache_reclaim;
    Alcotest.test_case "erase: strategy cost shapes" `Quick test_erase_strategies;
    Alcotest.test_case "erase: background completes" `Quick test_erase_background_completes;
    Alcotest.test_case "persistence: crash + recover" `Quick test_crash_recovery_persistence;
    Alcotest.test_case "persistence: masters survive for persistent files" `Quick
      test_masters_survive_crash_for_persistent_files;
    Alcotest.test_case "fom: launch/exit with file segments" `Quick test_launch_and_exit;
    Alcotest.test_case "fom: no struct-page traffic" `Quick test_fom_no_per_page_metadata_updates;
    Alcotest.test_case "fom: smaps rollup" `Quick test_smaps;
    prop_fom_alloc_free_conserves_space;
    prop_fom_data_integrity;
  ]
