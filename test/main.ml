let () =
  Alcotest.run "o1mem"
    [
      ("sim", Test_sim.suite);
      ("complexity", Test_complexity.suite);
      ("trace", Test_trace.suite);
      ("profile", Test_profile.suite);
      ("hostprof", Test_hostprof.suite);
      ("physmem", Test_physmem.suite);
      ("alloc", Test_alloc.suite);
      ("mmu", Test_mmu.suite);
      ("fastpath", Test_fastpath.suite);
      ("memfs", Test_memfs.suite);
      ("os", Test_os.suite);
      ("fom", Test_fom.suite);
      ("heap", Test_heap.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
      ("model", Test_model.suite);
      ("smp", Test_smp.suite);
      ("causal", Test_causal.suite);
      ("faults", Test_faults.suite);
      ("store", Test_store.suite);
      ("integration", Test_integration.suite);
    ]
