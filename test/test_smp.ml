(* SMP: per-core TLBs, the round-robin scheduler, IPI shootdown rounds,
   per-core counter reconciliation, and NUMA-aware memory costs. *)

open Helpers
module K = Os.Kernel

let page = Sim.Units.page_size

let smp_config ?(cores = 2) ?(numa_nodes = 1) () =
  { small_config with Os.Kernel.cores; numa_nodes }

let no_violations msg k =
  Alcotest.(check (list string)) msg []
    (List.map Os.Check.violation_to_string (Os.Check.run k))

(* Count TLB entries a given core holds for one address space. *)
let entries_for ~asid (core : Hw.Smp.core) =
  let n = ref 0 in
  Hw.Tlb.iter core.Hw.Smp.tlb (fun ~asid:a ~va:_ ~size:_ ~pfn:_ ~prot:_ ->
      if a = asid then incr n);
  !n

(* ------------------- satellite: local flushes are IPI-free ----------- *)

(* The old analytic model charged (cores-1)*ipi on every flush, even a
   purely local one. Regression: a context-switch flush on a 4-core
   machine costs exactly [tlb_shootdown] and moves no IPI counter. *)
let test_local_flush_costs_no_ipi () =
  let table, clock, stats = mk_page_table () in
  let smp = Hw.Smp.create ~clock ~stats ~cores:4 () in
  let mmu = Hw.Mmu.create ~clock ~stats ~table ~smp ~asid:1 () in
  for i = 0 to 3 do
    Hw.Page_table.map_page table ~va:(i * page) ~pfn:(100 + i) ~prot:Hw.Prot.rw
      ~size:Hw.Page_size.Small
  done;
  for i = 0 to 3 do
    match Hw.Mmu.translate mmu ~va:(i * page) ~write:false ~exec:false with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "translate failed"
  done;
  check_bool "translations cached" true (Hw.Tlb.entry_count (Hw.Mmu.tlb mmu) > 0);
  let model = Sim.Clock.model clock in
  let before = Sim.Clock.now clock in
  Hw.Mmu.flush_tlbs mmu;
  check_int "local flush costs exactly tlb_shootdown"
    (Sim.Cost_model.shootdown_cost model)
    (Sim.Clock.now clock - before);
  check_int "no IPIs recorded" 0 (Sim.Stats.get stats "ipi_sent");
  Hw.Smp.iter_cores smp (fun c ->
      check_int "core sent no IPI" 0 c.Hw.Smp.ipi_sent;
      check_int "core received no IPI" 0 c.Hw.Smp.ipi_received);
  check_int "local TLB empty" 0 (Hw.Tlb.entry_count (Hw.Mmu.tlb mmu))

(* --------------------------- the scheduler --------------------------- *)

let test_sched_round_robin_affinity () =
  let s = Os.Sched.create ~cores:4 in
  Alcotest.(check (list int))
    "free procs rotate over all cores" [ 0; 1; 2; 3; 0 ]
    (List.init 5 (fun _ -> Os.Sched.pick s ~affinity:(-1)));
  Alcotest.(check (list int))
    "affinity pins the rotation" [ 2; 2; 2 ]
    (List.init 3 (fun _ -> Os.Sched.pick s ~affinity:(1 lsl 2)));
  Alcotest.check_raises "empty affinity rejected"
    (Invalid_argument "Sched.pick: affinity excludes every core") (fun () ->
      ignore (Os.Sched.pick s ~affinity:0))

(* ----------------- migration keeps per-core state sane --------------- *)

let test_migration_keeps_coherence () =
  let k = mk_kernel ~config:(smp_config ()) () in
  let p = K.create_process k () in
  let len = Sim.Units.kib 32 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
  K.migrate k p ~core:1;
  check_int "proc now on core 1" 1 p.Os.Proc.core;
  check_int "migration counted" 1 (Sim.Stats.get (K.stats k) "migration");
  ignore (K.access_range k p ~va ~len ~write:false ~stride:page);
  no_violations "coherent after migration" k;
  (* Unmap from core 1: the pages are cached on core 0, so the teardown
     must cross cores. *)
  K.munmap k p ~va ~len;
  check_bool "cross-core unmap sent IPIs" true
    (Sim.Stats.get (K.stats k) "ipi_sent" > 0);
  no_violations "coherent after cross-core unmap" k

let test_exit_on_a_flushes_b () =
  let k = mk_kernel ~config:(smp_config ()) () in
  let p = K.create_process k () in
  let len = Sim.Units.kib 16 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  ignore (K.access_range k p ~va ~len ~write:false ~stride:page);
  let core0 = Hw.Smp.core (K.smp k) 0 in
  let asid = p.Os.Proc.pid in
  check_bool "core 0 caches the pages" true (entries_for ~asid core0 > 0);
  K.migrate k p ~core:1;
  K.exit_process k p;
  check_int "exit on core 1 flushed core 0" 0 (entries_for ~asid core0);
  no_violations "no stale state after exit" k

(* ------------- Tlb_batch: one IPI round per flush, not per page ------ *)

let test_batch_single_ipi_round () =
  let ipis_for pages =
    let k = mk_kernel ~config:(smp_config ()) () in
    let p = K.create_process k () in
    let len = pages * page in
    let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
    ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
    K.migrate k p ~core:1;
    let before = Sim.Stats.get (K.stats k) "ipi_sent" in
    K.munmap k p ~va ~len;
    Sim.Stats.get (K.stats k) "ipi_sent" - before
  in
  check_int "4-page unmap: one IPI" 1 (ipis_for 4);
  check_int "16-page unmap: one IPI" 1 (ipis_for 16);
  check_int "64-page unmap: one IPI (full-flush branch)" 1 (ipis_for 64)

(* ------------- per-core counters reconcile with the stats ------------ *)

let test_tlb_accounting_reconciles () =
  let k = mk_kernel ~config:(smp_config ()) () in
  let p = K.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
  K.migrate k p ~core:1;
  K.munmap k p ~va ~len;
  (* Exercise the full-flush branch too. *)
  let q = K.create_process k () in
  K.context_switch k ~from_:p ~to_:q ~asids:false;
  no_violations "per-core counters sum to the global stats" k;
  (* Skew the global stat: the reconciliation rule must notice. *)
  Sim.Stats.incr (K.stats k) "tlb_shootdown";
  check_bool "skew detected" true
    (List.exists
       (fun v -> v.Os.Check.check = "tlb_accounting")
       (Os.Check.run k))

(* ------------------------------- NUMA -------------------------------- *)

let test_numa_remote_ref_costs_more () =
  let clock, stats = mk_env () in
  let mem =
    Physmem.Phys_mem.create ~clock ~stats ~dram_bytes:(Sim.Units.mib 1)
      ~nvm_bytes:(Sim.Units.mib 1) ~numa_nodes:2 ()
  in
  check_int "two nodes" 2 (Physmem.Phys_mem.numa_nodes mem);
  let frames = Physmem.Phys_mem.dram_frames mem in
  check_int "first frame on node 0" 0 (Physmem.Phys_mem.node_of_frame mem 0);
  check_int "last frame on node 1" 1
    (Physmem.Phys_mem.node_of_frame mem (frames - 1));
  Physmem.Phys_mem.set_accessor_node mem 0;
  let cost addr =
    let t0 = Sim.Clock.now clock in
    ignore (Physmem.Phys_mem.read mem ~addr ~len:8);
    Sim.Clock.now clock - t0
  in
  let model = Sim.Clock.model clock in
  check_int "local read at DRAM latency" model.Sim.Cost_model.mem_ref_dram
    (cost 0);
  check_int "remote read at remote latency"
    model.Sim.Cost_model.mem_ref_dram_remote
    (cost (Physmem.Frame.to_addr (frames - 1)));
  check_int "remote line counted" 1 (Sim.Stats.get stats "numa_remote_ref")

let test_numa_alloc_attribution () =
  let k = mk_kernel ~config:(smp_config ~numa_nodes:2 ()) () in
  let p = K.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
  let local = Sim.Stats.get (K.stats k) "numa_local_alloc" in
  let remote = Sim.Stats.get (K.stats k) "numa_remote_alloc" in
  check_int "every demand-installed frame attributed to a node" 16
    (local + remote)

let suite =
  [
    Alcotest.test_case "flush: local-only, zero IPIs" `Quick
      test_local_flush_costs_no_ipi;
    Alcotest.test_case "sched: round robin + affinity" `Quick
      test_sched_round_robin_affinity;
    Alcotest.test_case "migrate: coherence preserved" `Quick
      test_migration_keeps_coherence;
    Alcotest.test_case "exit on core A flushes core B" `Quick
      test_exit_on_a_flushes_b;
    Alcotest.test_case "batch: one IPI round per flush" `Quick
      test_batch_single_ipi_round;
    Alcotest.test_case "accounting: per-core sums reconcile" `Quick
      test_tlb_accounting_reconciles;
    Alcotest.test_case "numa: remote refs cost more" `Quick
      test_numa_remote_ref_costs_more;
    Alcotest.test_case "numa: allocations attributed" `Quick
      test_numa_alloc_attribution;
  ]
