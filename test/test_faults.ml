(* Fault injection, crash exploration, invariant checking, graceful
   degradation. *)

open Helpers
module K = Os.Kernel
module F = O1mem.Fom
module FI = Sim.Fault_inject

let chaos_config =
  {
    Os.Kernel.default_config with
    Os.Kernel.dram_bytes = Sim.Units.mib 16;
    nvm_bytes = Sim.Units.mib 16;
  }

let mk_faulted_kernel ?(config = chaos_config) ?(seed = 1) () =
  let k = K.create ~config () in
  let plane = FI.create ~seed ~stats:(K.stats k) () in
  Sim.Trace.attach_faults (K.trace k) plane;
  (k, plane)

(* ------------------------------ the plane --------------------------- *)

let test_plane_deterministic () =
  let pattern seed =
    let plane = FI.create ~seed () in
    FI.arm plane ~site:"s" (FI.Prob 0.3);
    List.init 64 (fun _ -> FI.fires plane ~site:"s")
  in
  check_bool "same seed, same faults" true (pattern 9 = pattern 9);
  check_bool "different seed, different faults" true (pattern 9 <> pattern 10)

let test_plane_modes_and_counts () =
  let plane = FI.create ~seed:1 () in
  FI.arm plane ~site:"s" (FI.On_nth 2);
  Alcotest.(check (list bool)) "on_nth fires exactly once"
    [ false; true; false; false ]
    (List.init 4 (fun _ -> FI.fires plane ~site:"s"));
  check_int "evaluations counted" 4 (FI.evaluations plane ~site:"s");
  check_int "injections counted" 1 (FI.injected plane ~site:"s");
  (* Unarmed sites count evaluations but never fire — the crash explorer
     relies on this to enumerate durable steps. *)
  check_bool "unarmed never fires" false (FI.fires plane ~site:"quiet");
  check_int "unarmed still counted" 1 (FI.evaluations plane ~site:"quiet");
  check_int "total" 1 (FI.injected_total plane);
  Alcotest.check_raises "bad probability rejected"
    (Invalid_argument "Fault_inject.arm: probability not in [0,1]") (fun () ->
      FI.arm plane ~site:"s" (FI.Prob 1.5))

let test_disabled_plane_inert () =
  check_bool "disabled never fires" false (FI.fires FI.disabled ~site:"s");
  check_bool "disabled not enabled" false (FI.enabled FI.disabled);
  Alcotest.check_raises "arming the sentinel rejected"
    (Invalid_argument "Fault_inject.arm: disabled plane") (fun () ->
      FI.arm FI.disabled ~site:"s" FI.Always)

let test_injection_traced_and_counted () =
  let clock = mk_clock () in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create ~clock () in
  let plane = FI.create ~seed:1 ~stats () in
  Sim.Trace.attach_faults trace plane;
  FI.arm plane ~site:FI.site_zero_cache_empty FI.Always;
  check_bool "fires" true (FI.fires plane ~site:FI.site_zero_cache_empty);
  check_int "global counter" 1 (Sim.Stats.get stats "fault_inject");
  check_int "per-site counter" 1
    (Sim.Stats.get stats ("fault_inject:" ^ FI.site_zero_cache_empty));
  match Sim.Trace.events trace with
  | [ e ] ->
    check_string "trace op" "fault_inject" e.Sim.Trace.op;
    check_string "trace outcome" FI.site_zero_cache_empty e.Sim.Trace.outcome
  | es -> Alcotest.failf "expected one trace event, got %d" (List.length es)

(* --------------------------- WAL under crash ------------------------- *)

let mk_wal ?(capacity = Sim.Units.kib 16) () =
  let clock = mk_clock () in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create ~clock () in
  let mem =
    Physmem.Phys_mem.create ~clock ~stats ~trace ~dram_bytes:(Sim.Units.mib 4)
      ~nvm_bytes:(Sim.Units.mib 4) ()
  in
  let nvm = Physmem.Nvm.create mem in
  let base = Physmem.Frame.to_addr (Physmem.Phys_mem.dram_frames mem) in
  (Fs.Wal.create ~nvm ~base ~capacity, nvm, base, capacity)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

(* Satellite 3: power failure at a uniformly random byte offset — model
   it by zeroing the media from that offset on — always recovers a
   checksum-valid committed prefix, never a torn record. *)
let prop_wal_random_tear =
  qtest "crash at any byte offset leaves a clean prefix" ~count:60
    QCheck2.Gen.(
      pair (list_size (int_range 1 12) (string_size ~gen:printable (int_range 1 60)))
        (int_bound 10_000))
    (fun (records, x) ->
      let wal, nvm, base, capacity = mk_wal ~capacity:(Sim.Units.kib 32) () in
      List.iter (Fs.Wal.append_exn wal) records;
      let used = Fs.Wal.used_bytes wal in
      let cut = x mod (used + 1) in
      if used > cut then
        Physmem.Phys_mem.write (Physmem.Nvm.mem nvm) ~addr:(base + cut)
          (String.make (used - cut) '\000');
      let recovered = Fs.Wal.entries (Fs.Wal.recover ~nvm ~base ~capacity) in
      is_prefix recovered records
      && (cut < used || recovered = records))

let test_wal_partial_flush_torn_by_crash () =
  let wal, nvm, base, capacity = mk_wal () in
  let plane = FI.create ~seed:1 () in
  Sim.Trace.attach_faults (Physmem.Phys_mem.trace (Physmem.Nvm.mem nvm)) plane;
  Fs.Wal.append_exn wal "durable";
  (* A buggy flush loop writes only half the record's lines; the crash
     tears the rest, and recovery must reject the half-written record.
     The record spans several cache lines so the marker's own line flush
     cannot accidentally heal the hole. *)
  FI.arm plane ~site:FI.site_wal_partial_flush FI.Always;
  Fs.Wal.append_exn wal (String.make 300 'y');
  Physmem.Nvm.crash nvm;
  Alcotest.(check (list string)) "torn record rejected" [ "durable" ]
    (Fs.Wal.entries (Fs.Wal.recover ~nvm ~base ~capacity))

(* --------------------------- crash explorers ------------------------- *)

let test_explore_wal_every_step () =
  let r = O1mem.Chaos.explore_wal ~records:3 ~seed:5 () in
  (* Each append crosses exactly five durable boundaries: flush(blank
     next header), flush(record), fence, flush(marker), fence — the
     explorer must enumerate all of them, i.e. every clwb batch and
     every sfence of the workload. *)
  check_int "steps = 5 per record" 15 r.O1mem.Chaos.steps;
  check_int "fences = 2 per record" 6 r.O1mem.Chaos.fences;
  check_int "one crash per step" r.O1mem.Chaos.steps r.O1mem.Chaos.crashes;
  Alcotest.(check (list string)) "no violations" [] r.O1mem.Chaos.violations

let test_explore_fs_every_step () =
  let r = O1mem.Chaos.explore_fs ~files:2 ~seed:3 () in
  check_bool "durable steps found" true (r.O1mem.Chaos.steps > 0);
  check_int "one crash per step" r.O1mem.Chaos.steps r.O1mem.Chaos.crashes;
  Alcotest.(check (list string)) "no violations" [] r.O1mem.Chaos.violations

(* -------------------------- invariant checker ------------------------ *)

let test_check_clean_after_fork_and_fom () =
  let k, fom = mk_fom () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:true ~stride:Sim.Units.page_size);
  let child = Os.Fork.fork k p in
  (* CoW break in the child, FOM region, then an unmap — a little of
     every mapping flavour. *)
  K.access k child ~va ~write:true;
  let r = F.alloc fom p ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
  ignore (F.access_range fom p ~va:r.F.va ~len:r.F.len ~write:true ~stride:Sim.Units.page_size);
  K.munmap k child ~va ~len:(Sim.Units.kib 16);
  Alcotest.(check (list string)) "all invariants hold" []
    (List.map Os.Check.violation_to_string (Os.Check.run k))

let test_check_clean_after_reclaim () =
  let k = mk_kernel ~config:chaos_config () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 64) ~write:true ~stride:Sim.Units.page_size);
  check_bool "something evicted" true (Os.Reclaim.scan (K.reclaim k) ~target_frames:4 > 0);
  Alcotest.(check (list string)) "consistent after eviction" []
    (List.map Os.Check.violation_to_string (Os.Check.run k))

let test_check_detects_planted_bug () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:Sim.Units.page_size ~prot:Hw.Prot.rw ~populate:true in
  check_int "clean before tampering" 0 (List.length (Os.Check.run k));
  (* Corrupt struct-page accounting behind the checker's back. *)
  (match Hw.Page_table.lookup (Os.Address_space.page_table p.Os.Proc.aspace) ~va with
  | Some (pa, _) -> Os.Page_meta.inc_mapcount (K.page_meta k) (Physmem.Frame.of_addr pa)
  | None -> Alcotest.fail "page not mapped");
  let vs = Os.Check.run k in
  check_bool "tampering detected" true
    (List.exists (fun v -> v.Os.Check.check = "mapcount") vs)

let test_check_detects_lost_shootdown () =
  (* A lost ack only matters on a REMOTE core: fill core 0's TLB, migrate
     to core 1, and unmap from there. The IPI back to core 0 drops its
     ack, so core 0 skips the invalidate and keeps the stale entries. *)
  let config = { chaos_config with Os.Kernel.cores = 2 } in
  let k, plane = mk_faulted_kernel ~config () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:true in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:false ~stride:Sim.Units.page_size);
  K.migrate k p ~core:1;
  FI.arm plane ~site:FI.site_tlb_ack_lost FI.Always;
  K.munmap k p ~va ~len:(Sim.Units.kib 16);
  let vs = Os.Check.run k in
  check_bool "stale TLB entries found" true
    (List.exists (fun v -> v.Os.Check.check = "tlb_coherence") vs)

(* ------------------------- graceful degradation ---------------------- *)

let test_alloc_retry_survives_failure () =
  let k, plane = mk_faulted_kernel () in
  let p = K.create_process k () in
  (* Residency to reclaim: 16 touched pages. *)
  let va0 = K.mmap_anon k p ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va:va0 ~len:(Sim.Units.kib 64) ~write:true ~stride:Sim.Units.page_size);
  (* From here on the buddy refuses every request. The next fault can
     only be served by the reclaim-then-retry pass evicting pages and
     recirculating their frames — which must happen, with no OOM. *)
  FI.arm plane ~site:FI.site_frame_alloc_fail FI.Always;
  let va = K.mmap_anon k p ~len:Sim.Units.page_size ~prot:Hw.Prot.rw ~populate:false in
  K.access k p ~va ~write:true;
  check_bool "reclaim-then-retry pass taken" true
    (Sim.Stats.get (K.stats k) "alloc_retry_reclaim" >= 1);
  check_bool "frames reclaimed" true
    (Sim.Stats.get (K.stats k) "alloc_reclaimed_frames" >= 1);
  check_int "no OOM" 0 (Sim.Stats.get (K.stats k) "alloc_oom");
  check_bool "faults injected" true (FI.injected plane ~site:FI.site_frame_alloc_fail >= 1)

let test_alloc_exhaustion_is_typed_enomem () =
  let k, plane = mk_faulted_kernel () in
  let p = K.create_process k () in
  (* Nothing is resident yet, so reclaim has nothing to give back: a
     buddy that always refuses must surface as a typed ENOMEM. *)
  FI.arm plane ~site:FI.site_frame_alloc_fail FI.Always;
  let va = K.mmap_anon k p ~len:Sim.Units.page_size ~prot:Hw.Prot.rw ~populate:false in
  let oomed = try K.access k p ~va ~write:true; false
    with Sim.Errno.Error (Sim.Errno.ENOMEM, _) -> true
  in
  check_bool "typed ENOMEM" true oomed;
  check_bool "OOM counted" true (Sim.Stats.get (K.stats k) "alloc_oom" >= 1)

let test_forced_zero_cache_miss_still_allocates () =
  let k, plane = mk_faulted_kernel () in
  let p = K.create_process k () in
  (* Stock the cache, then force misses: allocation must fall back to
     the slower path, not fail. *)
  let va0 = K.mmap_anon k p ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:true in
  K.munmap k p ~va:va0 ~len:(Sim.Units.kib 16);
  ignore (K.background_zero k ~budget_frames:8);
  check_bool "cache stocked" true (Alloc.Zero_cache.depth (K.zero_cache k) > 0);
  FI.arm plane ~site:FI.site_zero_cache_empty FI.Always;
  let misses0 = Sim.Stats.get (K.stats k) "zero_cache_miss" in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:true ~stride:Sim.Units.page_size);
  check_bool "misses forced" true (Sim.Stats.get (K.stats k) "zero_cache_miss" > misses0)

let test_quota_enospc_typed_and_cleaned () =
  let k, plane = mk_faulted_kernel () in
  let fom = F.create k () in
  let p = K.create_process k () in
  FI.arm plane ~site:FI.site_quota_enospc FI.Always;
  let refused =
    try ignore (F.alloc fom p ~name:"/refused" ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ()); false
    with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> true
  in
  check_bool "typed ENOSPC" true refused;
  check_bool "no empty husk left behind" true (Fs.Memfs.lookup (F.fs fom) "/refused" = None);
  check_int "degradation counted" 1 (Sim.Stats.get (K.stats k) "fom_alloc_enospc")

let test_run_plan_outcomes () =
  let o = O1mem.Chaos.run_plan ~seed:42 ~plan:"alloc" () in
  check_bool "faults were injected" true (o.O1mem.Chaos.injected_total > 0);
  check_bool "reclaim retries happened" true (o.O1mem.Chaos.retried > 0);
  Alcotest.(check (list string)) "invariants hold under the alloc plan" []
    (List.map Os.Check.violation_to_string o.O1mem.Chaos.checks);
  let t = O1mem.Chaos.run_plan ~seed:42 ~plan:"tlb" () in
  check_bool "tlb plan plants detectable damage" true (t.O1mem.Chaos.checks <> []);
  check_bool "tlb plan expects violations" true (O1mem.Chaos.plan_expects_violations "tlb");
  Alcotest.check_raises "unknown plan rejected"
    (Invalid_argument
       "Chaos.run_plan: unknown plan \"bogus\" (expected one of alloc, nvm, quota, tlb, all)")
    (fun () -> ignore (O1mem.Chaos.run_plan ~plan:"bogus" ()))

(* ------------------------- zero cost when off ------------------------ *)

let test_injection_zero_cost_when_off () =
  let workload attach =
    let k = mk_kernel ~config:chaos_config () in
    if attach then begin
      let plane = FI.create ~seed:2 ~stats:(K.stats k) () in
      Sim.Trace.attach_faults (K.trace k) plane;
      List.iter (fun site -> FI.arm plane ~site (FI.Prob 0.0)) FI.all_sites
    end;
    let fom = F.create k () in
    let p = K.create_process k () in
    let va = K.mmap_anon k p ~len:(Sim.Units.kib 32) ~prot:Hw.Prot.rw ~populate:false in
    ignore (K.access_range k p ~va ~len:(Sim.Units.kib 32) ~write:true ~stride:Sim.Units.page_size);
    K.munmap k p ~va ~len:(Sim.Units.kib 32);
    let r = F.alloc fom p ~name:"/z" ~persistence:Fs.Inode.Persistent ~len:(Sim.Units.kib 16)
        ~prot:Hw.Prot.rw () in
    F.free fom p r;
    Sim.Clock.now (K.clock k)
  in
  check_int "identical cycles with the plane attached but never firing"
    (workload false) (workload true)

(* --------------------------- crash recovery -------------------------- *)

let test_crash_rebaselines_gauges () =
  let k, fom = mk_fom () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 32) ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 32) ~write:true ~stride:Sim.Units.page_size);
  check_bool "pages resident before crash" true (Sim.Stats.gauge (K.stats k) "resident_pages" > 0);
  ignore (O1mem.Persistence.crash_and_recover fom);
  check_int "resident gauge re-baselined" 0 (Sim.Stats.gauge (K.stats k) "resident_pages");
  check_int "tlb gauge re-baselined" 0 (Sim.Stats.gauge (K.stats k) "tlb_entries");
  check_int "zero-cache gauge tracks reality"
    (Alloc.Zero_cache.depth (K.zero_cache k))
    (Sim.Stats.gauge (K.stats k) "zero_cache_depth");
  check_int "dead processes dropped" 0 (K.process_count k);
  Alcotest.(check (list string)) "post-crash machine consistent" []
    (List.map Os.Check.violation_to_string (Os.Check.run k))

let suite =
  [
    Alcotest.test_case "plane: deterministic" `Quick test_plane_deterministic;
    Alcotest.test_case "plane: modes and counts" `Quick test_plane_modes_and_counts;
    Alcotest.test_case "plane: disabled sentinel inert" `Quick test_disabled_plane_inert;
    Alcotest.test_case "plane: injection traced + counted" `Quick test_injection_traced_and_counted;
    prop_wal_random_tear;
    Alcotest.test_case "wal: partial flush torn by crash" `Quick test_wal_partial_flush_torn_by_crash;
    Alcotest.test_case "explorer: WAL crash at every step" `Quick test_explore_wal_every_step;
    Alcotest.test_case "explorer: FS crash at every step" `Slow test_explore_fs_every_step;
    Alcotest.test_case "check: clean after fork + FOM" `Quick test_check_clean_after_fork_and_fom;
    Alcotest.test_case "check: clean after reclaim" `Quick test_check_clean_after_reclaim;
    Alcotest.test_case "check: planted bug detected" `Quick test_check_detects_planted_bug;
    Alcotest.test_case "check: lost shootdown detected" `Quick test_check_detects_lost_shootdown;
    Alcotest.test_case "degrade: buddy refusal, reclaimed" `Quick test_alloc_retry_survives_failure;
    Alcotest.test_case "degrade: exhaustion is typed ENOMEM" `Quick test_alloc_exhaustion_is_typed_enomem;
    Alcotest.test_case "degrade: forced cache miss survives" `Quick test_forced_zero_cache_miss_still_allocates;
    Alcotest.test_case "degrade: quota ENOSPC typed + cleaned" `Quick test_quota_enospc_typed_and_cleaned;
    Alcotest.test_case "plans: outcomes and verdicts" `Slow test_run_plan_outcomes;
    Alcotest.test_case "plane: zero cost when off" `Quick test_injection_zero_cost_when_off;
    Alcotest.test_case "crash: gauges re-baselined" `Quick test_crash_rebaselines_gauges;
  ]
