open Helpers
module K = Os.Kernel

let mk_malloc () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  (k, p, Heap.Malloc_sim.create k p)

let test_malloc_basic () =
  let _, _, h = mk_malloc () in
  let a = Heap.Malloc_sim.malloc h ~bytes:100 in
  let b = Heap.Malloc_sim.malloc h ~bytes:100 in
  check_bool "distinct" true (a <> b);
  check_bool "size class rounding" true (Heap.Malloc_sim.size_of h a = Some 128);
  Heap.Malloc_sim.free h a;
  let a' = Heap.Malloc_sim.malloc h ~bytes:100 in
  check_int "free-list reuse" a a'

let test_malloc_large_uses_mmap () =
  let _, _, h = mk_malloc () in
  let before = Heap.Malloc_sim.arena_count h in
  let big = Heap.Malloc_sim.malloc h ~bytes:(Sim.Units.kib 256) in
  check_int "no arena used for large" before (Heap.Malloc_sim.arena_count h);
  check_bool "page-rounded" true (Heap.Malloc_sim.size_of h big = Some (Sim.Units.kib 256));
  Heap.Malloc_sim.free h big;
  check_bool "freed" true (Heap.Malloc_sim.size_of h big = None)

let test_malloc_touch_faults () =
  let k, p, h = mk_malloc () in
  let va = Heap.Malloc_sim.malloc h ~bytes:(Sim.Units.kib 256) in
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 256) ~write:true ~stride:Sim.Units.page_size);
  check_int "touching mallocd memory faults per page" 64
    (Sim.Stats.get (K.stats k) "minor_fault")

let test_malloc_accounting () =
  let _, _, h = mk_malloc () in
  let a = Heap.Malloc_sim.malloc h ~bytes:1000 in
  check_int "live" 1024 (Heap.Malloc_sim.live_bytes h);
  check_bool "footprint covers arena" true (Heap.Malloc_sim.footprint_bytes h >= Sim.Units.mib 1);
  Heap.Malloc_sim.free h a;
  check_int "live zero" 0 (Heap.Malloc_sim.live_bytes h);
  Alcotest.check_raises "double free" (Invalid_argument "Malloc_sim.free: unknown block")
    (fun () -> Heap.Malloc_sim.free h a)

let mk_fheap () =
  let kernel, fom = mk_fom () in
  let proc = Os.Kernel.create_process kernel () in
  (kernel, fom, proc, Heap.Fom_heap.create fom proc ())

let test_fom_heap_basic () =
  let _, _, _, h = mk_fheap () in
  let a = Heap.Fom_heap.malloc h ~bytes:100 in
  let b = Heap.Fom_heap.malloc h ~bytes:5000 in
  check_bool "distinct" true (a <> b);
  check_bool "sizes" true (Heap.Fom_heap.size_of h a = Some 128);
  Heap.Fom_heap.free h a;
  let a' = Heap.Fom_heap.malloc h ~bytes:90 in
  check_int "reuse" a a'

let test_fom_heap_large_is_own_file () =
  let _, fom, _, h = mk_fheap () in
  let files_before = Fs.Memfs.file_count (O1mem.Fom.fs fom) in
  let big = Heap.Fom_heap.malloc h ~bytes:(Sim.Units.mib 1) in
  check_int "one more file" (files_before + 1) (Fs.Memfs.file_count (O1mem.Fom.fs fom));
  Heap.Fom_heap.free h big;
  check_int "file deleted on free" files_before (Fs.Memfs.file_count (O1mem.Fom.fs fom))

let test_fom_heap_no_faults_on_touch () =
  let kernel, fom, proc, h = mk_fheap () in
  let va = Heap.Fom_heap.malloc h ~bytes:(Sim.Units.kib 256) in
  ignore
    (O1mem.Fom.access_range fom proc ~va ~len:(Sim.Units.kib 256) ~write:true
       ~stride:Sim.Units.page_size);
  check_int "no faults" 0 (Sim.Stats.get (Os.Kernel.stats kernel) "page_fault")

let test_fom_heap_destroy () =
  let _, fom, _, h = mk_fheap () in
  let fs = O1mem.Fom.fs fom in
  let free0 = Fs.Memfs.free_bytes fs in
  ignore (Heap.Fom_heap.malloc h ~bytes:1000);
  ignore (Heap.Fom_heap.malloc h ~bytes:(Sim.Units.mib 1));
  check_bool "space in use" true (Fs.Memfs.free_bytes fs < free0);
  Heap.Fom_heap.destroy h;
  check_int "all space returned" free0 (Fs.Memfs.free_bytes fs);
  check_int "no regions" 0 (Heap.Fom_heap.region_count h)

let prop_both_heaps_distinct_blocks =
  qtest "heap blocks never overlap (both heaps)" ~count:20
    QCheck2.Gen.(list_size (int_range 2 25) (int_range 1 10_000))
    (fun sizes ->
      let _, _, mh = mk_malloc () in
      let _, _, _, fh = mk_fheap () in
      let check malloc size_of =
        let blocks = List.map (fun b -> (malloc b, b)) sizes in
        let ok = ref true in
        let sorted = List.sort compare blocks in
        let rec overlap = function
          | (va1, _) :: ((va2, _) :: _ as rest) ->
            (match size_of va1 with
            | Some s when va1 + s > va2 -> ok := false
            | _ -> ());
            overlap rest
          | _ -> ()
        in
        overlap sorted;
        !ok
      in
      check (fun bytes -> Heap.Malloc_sim.malloc mh ~bytes) (Heap.Malloc_sim.size_of mh)
      && check (fun bytes -> Heap.Fom_heap.malloc fh ~bytes) (Heap.Fom_heap.size_of fh))

let suite =
  [
    Alcotest.test_case "malloc: size classes + reuse" `Quick test_malloc_basic;
    Alcotest.test_case "malloc: large goes to mmap" `Quick test_malloc_large_uses_mmap;
    Alcotest.test_case "malloc: touches fault per page" `Quick test_malloc_touch_faults;
    Alcotest.test_case "malloc: accounting + double free" `Quick test_malloc_accounting;
    Alcotest.test_case "fom heap: size classes + reuse" `Quick test_fom_heap_basic;
    Alcotest.test_case "fom heap: large blocks are files" `Quick test_fom_heap_large_is_own_file;
    Alcotest.test_case "fom heap: no faults on touch" `Quick test_fom_heap_no_faults_on_touch;
    Alcotest.test_case "fom heap: destroy returns space" `Quick test_fom_heap_destroy;
    prop_both_heaps_distinct_blocks;
  ]
