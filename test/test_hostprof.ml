open Helpers

(* A deterministic fake host clock: each read advances by [step] ns. *)
let fake_ns ?(step = 10) () =
  let t = ref 0 in
  fun () ->
    t := !t + step;
    !t

let mk ?vclock ?rss_kb ?step () = Sim.Hostprof.create ~now_ns:(fake_ns ?step ()) ?vclock ?rss_kb ()

(* ----------------------------- spans ------------------------------- *)

let test_span_nesting () =
  let clock = mk_clock () in
  let hp = mk ~vclock:clock () in
  let v =
    Sim.Hostprof.span hp "outer" (fun () ->
        Sim.Clock.charge clock 5;
        let inner = Sim.Hostprof.span hp "inner" (fun () -> Sim.Clock.charge clock 7; 1) in
        inner + 1)
  in
  check_int "span returns f's value" 2 v;
  check_int "stack drained" 0 (Sim.Hostprof.depth hp);
  match Sim.Hostprof.tree hp with
  | [ outer ] ->
    check_string "root name" "outer" outer.Sim.Hostprof.name;
    check_int "one call" 1 outer.Sim.Hostprof.calls;
    check_int "outer vcycles cover everything" 12 outer.Sim.Hostprof.vcycles;
    check_bool "outer ns positive" true (outer.Sim.Hostprof.ns > 0);
    check_bool "self excludes inner ns" true (outer.Sim.Hostprof.self_ns < outer.Sim.Hostprof.ns);
    (match outer.Sim.Hostprof.children with
    | [ inner ] ->
      check_string "child name" "inner" inner.Sim.Hostprof.name;
      check_int "inner vcycles" 7 inner.Sim.Hostprof.vcycles;
      check_bool "inner ns positive" true (inner.Sim.Hostprof.ns > 0)
    | cs -> Alcotest.fail (Printf.sprintf "expected 1 child, got %d" (List.length cs)))
  | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots))

let test_exception_unwinding () =
  let hp = mk () in
  (try
     Sim.Hostprof.span hp "outer" (fun () ->
         Sim.Hostprof.span hp "boom" (fun () -> failwith "x"))
   with Failure _ -> ());
  check_int "no leaked frames" 0 (Sim.Hostprof.depth hp);
  match Sim.Hostprof.tree hp with
  | [ outer ] -> (
    check_int "outer call still counted" 1 outer.Sim.Hostprof.calls;
    match outer.Sim.Hostprof.children with
    | [ boom ] -> check_int "inner counted too" 1 boom.Sim.Hostprof.calls
    | _ -> Alcotest.fail "inner span missing")
  | _ -> Alcotest.fail "outer span missing"

(* A host clock that goes BACKWARDS between reads: every exported delta
   must clamp to zero, never negative. *)
let test_monotonicity_clamped () =
  let t = ref 1_000_000 in
  let backwards () =
    t := !t - 50;
    !t
  in
  let hp = Sim.Hostprof.create ~now_ns:backwards () in
  Sim.Hostprof.span hp "a" (fun () -> Sim.Hostprof.span hp "b" (fun () -> ()));
  let rec check_node (n : Sim.Hostprof.node) =
    check_bool (n.Sim.Hostprof.name ^ " ns >= 0") true (n.Sim.Hostprof.ns >= 0);
    check_bool (n.Sim.Hostprof.name ^ " self_ns >= 0") true (n.Sim.Hostprof.self_ns >= 0);
    List.iter check_node n.Sim.Hostprof.children
  in
  List.iter check_node (Sim.Hostprof.tree hp);
  check_bool "total_ns clamped" true (Sim.Hostprof.total_ns hp >= 0);
  check_bool "attributed_ns clamped" true (Sim.Hostprof.attributed_ns hp >= 0)

let test_self_vs_cum_invariant () =
  let hp = mk () in
  for i = 1 to 5 do
    Sim.Hostprof.span hp "a" (fun () ->
        Sim.Hostprof.span hp "b" (fun () -> ignore (List.init i (fun j -> j)));
        Sim.Hostprof.span hp "c" (fun () -> ()))
  done;
  let rec check_node (n : Sim.Hostprof.node) =
    let sum f = List.fold_left (fun acc c -> acc + f c) 0 n.Sim.Hostprof.children in
    check_int
      (Printf.sprintf "self_ns = ns - children at %s" n.Sim.Hostprof.name)
      n.Sim.Hostprof.self_ns
      (n.Sim.Hostprof.ns - sum (fun c -> c.Sim.Hostprof.ns));
    check_int
      (Printf.sprintf "self_words = words - children at %s" n.Sim.Hostprof.name)
      n.Sim.Hostprof.self_words
      (n.Sim.Hostprof.words - sum (fun c -> c.Sim.Hostprof.words));
    List.iter check_node n.Sim.Hostprof.children
  in
  List.iter check_node (Sim.Hostprof.tree hp)

let test_disabled_sentinel () =
  let hp = Sim.Hostprof.disabled in
  check_bool "disabled" false (Sim.Hostprof.enabled hp);
  check_int "span still runs f" 9 (Sim.Hostprof.span hp "x" (fun () -> 9));
  check_int "no tree" 0 (List.length (Sim.Hostprof.tree hp));
  check_int "no ns" 0 (Sim.Hostprof.total_ns hp);
  check_int "no words" 0 (Sim.Hostprof.total_words hp);
  Sim.Hostprof.sample_self hp;
  check_int "sample_self is a no-op" 0 (Sim.Hostprof.self_recorded hp)

let test_attach_disabled_rejected () =
  Alcotest.check_raises "cannot attach to the shared disabled trace"
    (Invalid_argument "Trace.attach_hostprof: disabled trace") (fun () ->
      Sim.Trace.attach_hostprof Sim.Trace.disabled Sim.Hostprof.disabled)

(* --------------------- zero virtual-clock cost --------------------- *)

(* Host profiling must never touch the virtual clock or the stats plane:
   a profiled churn run is byte-identical to an unprofiled one in
   simulated cycles AND every counter. *)
let run_churn_workload k =
  let p = Os.Kernel.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = Os.Kernel.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (Os.Kernel.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  Os.Kernel.munmap k p ~va ~len;
  ( Sim.Clock.now (Os.Kernel.clock k),
    Sim.Json.to_string (Sim.Stats.to_json (Os.Kernel.stats k)) )

let test_zero_virtual_cost () =
  let k_plain = mk_kernel () in
  let cycles_plain, stats_plain = run_churn_workload k_plain in
  let k_prof = mk_kernel () in
  let hp = mk ~vclock:(Os.Kernel.clock k_prof) () in
  Sim.Trace.attach_hostprof (Os.Kernel.trace k_prof) hp;
  let cycles_prof, stats_prof = run_churn_workload k_prof in
  check_int "identical virtual cycles with host profiling on" cycles_plain cycles_prof;
  check_string "identical counters with host profiling on" stats_plain stats_prof;
  check_bool "host profiler saw the work" true (Sim.Hostprof.attributed_ns hp > 0);
  check_bool "vcycles attributed too" true (Sim.Hostprof.total_vcycles hp > 0)

(* -------------------- allocation determinism ----------------------- *)

(* Allocated-words attribution depends only on the allocation sequence,
   which is fixed for a fixed binary and workload — two identical runs
   must agree word-for-word on every path. (A warm-up run first absorbs
   any one-time lazy module initialisation.) *)
let words_profile () =
  let k = mk_kernel () in
  let hp = mk ~vclock:(Os.Kernel.clock k) () in
  Sim.Trace.attach_hostprof (Os.Kernel.trace k) hp;
  ignore (run_churn_workload k);
  List.map
    (fun (path, (n : Sim.Hostprof.node)) ->
      (path, n.Sim.Hostprof.calls, n.Sim.Hostprof.words, n.Sim.Hostprof.vcycles))
    (Sim.Hostprof.flatten hp)

let test_words_deterministic () =
  ignore (words_profile ());
  let a = words_profile () in
  let b = words_profile () in
  check_int "same paths" (List.length a) (List.length b);
  List.iter2
    (fun (pa, ca, wa, va) (pb, cb, wb, vb) ->
      check_string "path" pa pb;
      check_int (pa ^ " calls") ca cb;
      check_int (pa ^ " words") wa wb;
      check_int (pa ^ " vcycles") va vb)
    a b

(* -------------------------- self gauges ---------------------------- *)

let test_self_samples_bounded () =
  let hp = mk ~rss_kb:(fun () -> 42) () in
  for _ = 1 to 1100 do
    Sim.Hostprof.sample_self hp
  done;
  check_int "recorded counts everything" 1100 (Sim.Hostprof.self_recorded hp);
  let samples = Sim.Hostprof.self_samples hp in
  check_int "retained bounded at capacity" 1024 (List.length samples);
  List.iter
    (fun s ->
      check_int "injected rss reader used" 42 s.Sim.Hostprof.rss_kb;
      check_bool "heap gauge populated" true (s.Sim.Hostprof.heap_words > 0))
    samples;
  (* at_ns is non-decreasing in sample order *)
  ignore
    (List.fold_left
       (fun prev s ->
         check_bool "at_ns non-decreasing" true (s.Sim.Hostprof.at_ns >= prev);
         s.Sim.Hostprof.at_ns)
       0 samples)

(* --------------------------- exporters ----------------------------- *)

let test_collapsed_golden () =
  (* step=10 and no inner reads between: outer span = 2 reads around f
     plus 2 around the inner span's bracket — exact ns are clock-step
     arithmetic, so pin the self-ns collapsed lines (by:`Ns only emits
     ns; the words remainder line is real GC state and stays out). *)
  let hp = mk ~step:10 () in
  Sim.Hostprof.span hp "mmap" (fun () -> Sim.Hostprof.span hp "fault" (fun () -> ()));
  Sim.Hostprof.span hp "access" (fun () -> ());
  let s = Sim.Hostprof.to_collapsed ~by:`Ns hp in
  check_bool "mmap line present" true (contains ~needle:"mmap " s);
  check_bool "nested path present" true (contains ~needle:"mmap;fault " s);
  check_bool "access line present" true (contains ~needle:"access " s);
  check_bool "unattributed remainder explicit" true (contains ~needle:"(unattributed) " s)

let test_to_json_shape () =
  let clock = mk_clock () in
  let hp = mk ~vclock:clock () in
  Sim.Hostprof.span hp "mmap" (fun () ->
      Sim.Clock.charge clock 100;
      Sim.Hostprof.span hp "fault" (fun () -> Sim.Clock.charge clock 40));
  let json = Sim.Hostprof.to_json hp in
  (match Sim.Json.of_string (Sim.Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("hostprof JSON does not parse: " ^ e));
  (match Sim.Json.member json "total_vcycles" with
  | Some (Sim.Json.Int n) -> check_int "vcycles totalled" 140 n
  | _ -> Alcotest.fail "total_vcycles missing");
  (match Sim.Json.member json "gc" with
  | Some gc -> (
    match Sim.Json.member gc "allocated_words" with
    | Some (Sim.Json.Int _) -> ()
    | _ -> Alcotest.fail "gc.allocated_words missing")
  | None -> Alcotest.fail "gc block missing");
  match Sim.Json.member json "tree" with
  | Some (Sim.Json.Obj [ ("mmap", m) ]) -> (
    match Sim.Json.member m "vcycles" with
    | Some (Sim.Json.Int n) -> check_int "per-node vcycles" 140 n
    | _ -> Alcotest.fail "node vcycles missing")
  | _ -> Alcotest.fail "tree missing"

let test_top_paths_ranking () =
  let hp = mk ~step:1 () in
  (* "big" burns many fake-ns (extra spans inside), "small" few. *)
  Sim.Hostprof.span hp "big" (fun () ->
      for _ = 1 to 50 do
        Sim.Hostprof.span hp "inner" (fun () -> ())
      done);
  Sim.Hostprof.span hp "small" (fun () -> ());
  match Sim.Hostprof.top_paths ~k:3 ~by:`Ns hp with
  | [ (p1, n1); (p2, n2); (p3, n3) ] ->
    check_bool "big paths outrank small" true (p1 <> "small" && p2 <> "small");
    check_string "coldest self-ns path last" "small" p3;
    check_bool "ranking is by descending self_ns" true
      (n1.Sim.Hostprof.self_ns >= n2.Sim.Hostprof.self_ns
      && n2.Sim.Hostprof.self_ns >= n3.Sim.Hostprof.self_ns)
  | l -> Alcotest.fail (Printf.sprintf "expected 3 ranked paths, got %d" (List.length l))

(* ------------------------- order statistics ------------------------ *)

let test_quantiles () =
  check_bool "median odd" true (Sim.Regress.median [ 3.0; 1.0; 2.0 ] = 2.0);
  check_bool "median even interpolates" true (Sim.Regress.median [ 4.0; 1.0; 3.0; 2.0 ] = 2.5);
  check_bool "singleton" true (Sim.Regress.quantile [ 7.0 ] 0.99 = 7.0);
  let p25, med, p75 = Sim.Regress.quartiles [ 1.0; 2.0; 3.0; 4.0 ] in
  check_bool "p25" true (p25 = 1.75);
  check_bool "median" true (med = 2.5);
  check_bool "p75" true (p75 = 3.25);
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Regress.quantile: empty sample") (fun () ->
      ignore (Sim.Regress.quantile [] 0.5))

(* ------------------------ regress gating --------------------------- *)

(* Minimal comparable documents (same schema + provenance). *)
let doc sections =
  Sim.Json.Obj
    ([ ("schema", Sim.Json.String "test/1"); ("provenance", Sim.Json.Obj [] ) ] @ sections)

let throughput_doc ~median ~iqr =
  doc
    [
      ( "throughput",
        Sim.Json.Obj
          [
            ( "churn",
              Sim.Json.Obj
                [
                  ("median_ops_per_sec", Sim.Json.Float median);
                  ("iqr_ops_per_sec", Sim.Json.Float iqr);
                ] );
          ] );
    ]

let diff ?gate_throughput ?gate_host_alloc old_doc new_doc =
  match Sim.Regress.compare_docs ?gate_throughput ?gate_host_alloc ~old_doc ~new_doc () with
  | Ok r -> r
  | Error e -> Alcotest.fail ("compare_docs: " ^ e)

let test_throughput_noise_floor () =
  (* A 15% drop with a 10% default threshold would gate — but the old
     run's IQR is 10% of its median, so the noise floor is 20% and the
     drop must NOT flag even with the gate on. *)
  let old_doc = throughput_doc ~median:1000.0 ~iqr:100.0 in
  let new_doc = throughput_doc ~median:850.0 ~iqr:10.0 in
  let r = diff ~gate_throughput:true old_doc new_doc in
  check_int "inside noise floor: no regressions" 0 (List.length (Sim.Regress.regressions r));
  (* A 50% drop is far outside the floor: gates when asked... *)
  let new_bad = throughput_doc ~median:500.0 ~iqr:10.0 in
  let r = diff ~gate_throughput:true old_doc new_bad in
  check_int "outside noise floor: gated" 1 (List.length (Sim.Regress.regressions r));
  (* ...and is report-only without the gate. *)
  let r = diff old_doc new_bad in
  check_int "report-only by default" 0 (List.length (Sim.Regress.regressions r))

let host_doc ~words =
  doc
    [
      ( "host",
        Sim.Json.Obj
          [
            ( "churn_malloc",
              Sim.Json.Obj
                [
                  ("enabled", Sim.Json.Bool true);
                  ("total_ns", Sim.Json.Int 12345);
                  ("attributed_words", Sim.Json.Int words);
                  ( "tree",
                    Sim.Json.Obj
                      [
                        ( "malloc",
                          Sim.Json.Obj
                            [
                              ("calls", Sim.Json.Int 100);
                              ("ns", Sim.Json.Int 999);
                              ("self_ns", Sim.Json.Int 999);
                              ("words", Sim.Json.Int words);
                              ("self_words", Sim.Json.Int words);
                              ("vcycles", Sim.Json.Int 5000);
                            ] );
                      ] );
                ] );
          ] );
    ]

let test_host_alloc_gate () =
  let old_doc = host_doc ~words:1000 in
  let new_doc = host_doc ~words:1500 (* +50% allocation *) in
  let r = diff old_doc new_doc in
  check_int "host words report-only by default" 0 (List.length (Sim.Regress.regressions r));
  check_bool "but the delta is reported" true
    (List.exists (fun d -> d.Sim.Regress.key = "attributed_words") r.Sim.Regress.deltas);
  let r = diff ~gate_host_alloc:true old_doc new_doc in
  let regs = Sim.Regress.regressions r in
  check_bool "gated under --gate-host-alloc" true (List.length regs >= 1);
  check_bool "per-path words gated too" true
    (List.exists
       (fun d -> d.Sim.Regress.section = "host.churn_malloc.tree.malloc" && d.Sim.Regress.key = "words")
       regs);
  (* ns keys never gate, even under the alloc gate *)
  check_bool "ns never gates" true
    (List.for_all
       (fun d -> not (contains ~needle:"ns" d.Sim.Regress.key))
       regs);
  (* an improvement (fewer words) never gates *)
  let r = diff ~gate_host_alloc:true new_doc old_doc in
  check_int "shrinking allocation passes" 0 (List.length (Sim.Regress.regressions r))

let test_host_enabled_flip_gates () =
  let flip enabled =
    doc
      [
        ( "host",
          Sim.Json.Obj
            [ ("churn_malloc", Sim.Json.Obj [ ("enabled", Sim.Json.Bool enabled) ]) ] );
      ]
  in
  let r = diff (flip true) (flip false) in
  check_int "plane silently detaching is a regression" 1
    (List.length (Sim.Regress.regressions r))

let suite =
  [
    Alcotest.test_case "hostprof: span nesting" `Quick test_span_nesting;
    Alcotest.test_case "hostprof: exception unwinding" `Quick test_exception_unwinding;
    Alcotest.test_case "hostprof: non-monotonic clock clamped" `Quick test_monotonicity_clamped;
    Alcotest.test_case "hostprof: self vs cum invariant" `Quick test_self_vs_cum_invariant;
    Alcotest.test_case "hostprof: disabled sentinel" `Quick test_disabled_sentinel;
    Alcotest.test_case "hostprof: attach to disabled trace rejected" `Quick
      test_attach_disabled_rejected;
    Alcotest.test_case "hostprof: zero virtual-clock cost" `Quick test_zero_virtual_cost;
    Alcotest.test_case "hostprof: allocated words deterministic" `Quick test_words_deterministic;
    Alcotest.test_case "hostprof: self samples bounded" `Quick test_self_samples_bounded;
    Alcotest.test_case "hostprof: collapsed export" `Quick test_collapsed_golden;
    Alcotest.test_case "hostprof: to_json shape" `Quick test_to_json_shape;
    Alcotest.test_case "hostprof: top paths ranking" `Quick test_top_paths_ranking;
    Alcotest.test_case "regress: quantile helpers" `Quick test_quantiles;
    Alcotest.test_case "regress: throughput IQR noise floor" `Quick test_throughput_noise_floor;
    Alcotest.test_case "regress: host alloc gate" `Quick test_host_alloc_gate;
    Alcotest.test_case "regress: host enabled flip gates" `Quick test_host_enabled_flip_gates;
  ]
