(* The cross-core causal plane: sequence numbers, core stamping, the
   IPI/migrate/sched/NUMA/reclaim edge emission, lost-ack visibility,
   the critical-path engine, and the makespan decomposition. *)

open Helpers
module K = Os.Kernel
module Ca = Sim.Causal
module FI = Sim.Fault_inject

let page = Sim.Units.page_size

let smp_config ?(cores = 2) ?(numa_nodes = 1) () =
  { small_config with Os.Kernel.cores; numa_nodes }

let attach_causal k =
  let causal = Ca.create ~clock:(K.clock k) () in
  Sim.Trace.attach_causal (K.trace k) causal;
  causal

(* The migration round-trip from the SMP suite: touch, hop, touch,
   unmap — every interaction kind except reclaim. *)
let migration_workload ?(cores = 2) ?numa_nodes () =
  let k = mk_kernel ~config:(smp_config ~cores ?numa_nodes ()) () in
  let causal = attach_causal k in
  let p = K.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
  K.migrate k p ~core:1;
  ignore (K.access_range k p ~va ~len ~write:false ~stride:page);
  K.munmap k p ~va ~len;
  (k, causal)

let ops_named name causal = List.filter (fun n -> n.Ca.op = name) (Ca.nodes causal)

(* ------------------- satellite: sequence numbers --------------------- *)

(* Zero-cost ops stamp the same virtual cycle; the monotonic [seq] keeps
   their export order deterministic anyway. *)
let test_seq_monotonic () =
  let clock = mk_clock () in
  let trace = Sim.Trace.create ~clock () in
  for _ = 1 to 5 do
    (* No clock charge: all five events land on cycle 0. *)
    Sim.Trace.record trace ~op:"zero_cost" ~start:(Sim.Clock.now clock) ()
  done;
  let evs = Sim.Trace.events trace in
  check_int "five events" 5 (List.length evs);
  List.iteri (fun i e -> check_int "seq is emission order" i e.Sim.Trace.seq) evs;
  let chrome = Sim.Trace.chrome_events trace in
  let seqs =
    List.map
      (fun j ->
        match Option.bind (Sim.Json.member j "args") (fun a -> Sim.Json.member a "seq") with
        | Some (Sim.Json.Int s) -> s
        | _ -> Alcotest.fail "chrome event without seq")
      chrome
  in
  Alcotest.(check (list int)) "equal-cycle events export in seq order" [ 0; 1; 2; 3; 4 ] seqs

let test_core_stamp_and_disabled () =
  let clock = mk_clock () in
  let trace = Sim.Trace.create ~clock () in
  check_int "default core 0" 0 (Sim.Trace.current_core trace);
  Sim.Trace.set_core trace 3;
  Sim.Trace.record trace ~op:"stamped" ~start:0 ();
  Sim.Trace.record trace ~op:"explicit" ~start:0 ~core:7 ();
  (match Sim.Trace.events trace with
  | [ a; b ] ->
    check_int "stamped with current core" 3 a.Sim.Trace.core;
    check_int "explicit core wins" 7 b.Sim.Trace.core
  | _ -> Alcotest.fail "expected two events");
  (* The shared disabled sentinel must not accumulate core state. *)
  Sim.Trace.set_core Sim.Trace.disabled 5;
  check_int "disabled sentinel ignores set_core" 0
    (Sim.Trace.current_core Sim.Trace.disabled);
  (* And the disabled causal plane swallows everything. *)
  check_int "disabled emit returns -1" (-1) (Ca.emit Ca.disabled ~core:0 ~op:"x" ());
  Ca.link Ca.disabled ~src:(-1) ~dst:(-1) ~kind:"x";
  Ca.add_busy Ca.disabled ~core:0 ~cycles:10;
  check_int "disabled stays empty" 0 (Ca.node_count Ca.disabled);
  check_int "disabled busy stays zero" 0 (Ca.busy_of Ca.disabled ~core:0)

(* --------------------- IPI send -> deliver -> ack --------------------- *)

let test_ipi_edges_and_histogram () =
  let _, causal = migration_workload () in
  let sends = ops_named "ipi_send" causal in
  let delivers = ops_named "ipi_deliver" causal in
  let acks = ops_named "ipi_ack" causal in
  check_bool "IPIs happened" true (sends <> []);
  check_int "every send delivered" (List.length sends) (List.length delivers);
  check_int "every deliver acked" (List.length delivers) (List.length acks);
  let edges = Ca.edges causal in
  List.iter
    (fun (d : Ca.node) ->
      check_bool "deliver has an incoming ipi edge" true
        (List.exists (fun e -> e.Ca.dst = d.Ca.id && e.Ca.kind = "ipi") edges);
      check_bool "deliver has an outgoing ack edge" true
        (List.exists (fun e -> e.Ca.src = d.Ca.id && e.Ca.kind = "ack") edges))
    delivers;
  (* The per-core-pair latency histogram saw exactly the send count. *)
  match Ca.to_json causal with
  | Sim.Json.Obj fields -> (
    match List.assoc "ipi_latency" fields with
    | Sim.Json.Obj pairs ->
      check_bool "at least one core pair" true (pairs <> []);
      let total =
        List.fold_left
          (fun acc (_, h) ->
            match Sim.Json.member h "count" with Some (Sim.Json.Int c) -> acc + c | _ -> acc)
          0 pairs
      in
      check_int "histogram samples = IPIs sent" (List.length sends) total
    | _ -> Alcotest.fail "ipi_latency not an object")
  | _ -> Alcotest.fail "to_json not an object"

(* -------------------- satellite: lost-ack visibility ------------------ *)

let test_lost_ack_visible_in_graph_and_timeline () =
  let k = mk_kernel ~config:(smp_config ()) () in
  let causal = attach_causal k in
  let fi = FI.create ~stats:(K.stats k) () in
  Sim.Trace.attach_faults (K.trace k) fi;
  let p = K.create_process k () in
  let len = Sim.Units.kib 32 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
  K.migrate k p ~core:1;
  FI.arm fi ~site:FI.site_tlb_ack_lost FI.Always;
  K.munmap k p ~va ~len;
  FI.disarm fi ~site:FI.site_tlb_ack_lost;
  let delivers = ops_named "ipi_deliver" causal in
  check_bool "a deliver edge reached the victim core" true (delivers <> []);
  check_int "no ack node anywhere" 0 (List.length (ops_named "ipi_ack" causal));
  let edges = Ca.edges causal in
  List.iter
    (fun (d : Ca.node) ->
      check_bool "deliver has NO outgoing ack edge" false
        (List.exists (fun e -> e.Ca.src = d.Ca.id && e.Ca.kind = "ack") edges))
    delivers;
  (* Reconcile ipi_acked < ipi_received from the exported timeline alone:
     count the flow-arrow kinds in the Chrome document. *)
  let chrome = Ca.chrome_events causal in
  let count_flows kind =
    List.length
      (List.filter
         (fun j ->
           Sim.Json.member j "ph" = Some (Sim.Json.String "s")
           && Sim.Json.member j "name" = Some (Sim.Json.String kind))
         chrome)
  in
  let received = count_flows "ipi" and acked = count_flows "ack" in
  check_bool "timeline shows deliveries" true (received > 0);
  check_bool "timeline reconciles acked < received" true (acked < received);
  let lost = ref 0 in
  Hw.Smp.iter_cores (K.smp k) (fun c ->
      lost := !lost + c.Hw.Smp.ipi_received - c.Hw.Smp.ipi_acked);
  check_int "graph matches the victims' counters" !lost (received - acked)

(* ----------------------- critical-path engine ------------------------ *)

(* A hand-built diamond: the longest chain must follow the explicit
   edges, and same-core program order must chain implicitly. *)
let test_critical_path_on_synthetic_graph () =
  let clock = mk_clock () in
  let c = Ca.create ~clock () in
  let a = Ca.emit c ~core:0 ~op:"a" () in
  let b = Ca.emit c ~core:1 ~op:"b" () in
  let d = Ca.emit c ~core:2 ~op:"d" () in
  Ca.link c ~src:a ~dst:b ~kind:"x";
  Ca.link c ~src:b ~dst:d ~kind:"x";
  let cp = Ca.critical_path c in
  check_int "explicit chain a->b->d" 3 cp.Ca.hops;
  (* Two more nodes on core 2: program order extends the chain. *)
  ignore (Ca.emit c ~core:2 ~op:"e" ());
  ignore (Ca.emit c ~core:2 ~op:"f" ());
  check_int "program order chains same-core nodes" 5 (Ca.critical_path c).Ca.hops;
  (* Off-core service nodes (core -1) never program-order chain. *)
  ignore (Ca.emit c ~core:(-1) ~op:"serve1" ());
  ignore (Ca.emit c ~core:(-1) ~op:"serve2" ());
  check_int "negative cores don't chain" 5 (Ca.critical_path c).Ca.hops

(* The tentpole claim on the graph: a batched shootdown's longest chain
   is flat in the page count, the per-page path grows with it. *)
let test_batched_critical_path_o1 () =
  let hops ~batched pages =
    let k = mk_kernel ~config:(smp_config ()) () in
    let causal = attach_causal k in
    let p = K.create_process k () in
    let len = pages * page in
    let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
    ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
    K.migrate k p ~core:1;
    Ca.reset causal;
    if batched then K.munmap k p ~va ~len
    else
      for i = 0 to pages - 1 do
        Hw.Mmu.invalidate_page (Os.Address_space.mmu p.Os.Proc.aspace) ~va:(va + (i * page))
      done;
    (Ca.critical_path causal).Ca.hops
  in
  check_int "batched unmap: same chain at 4x the pages" (hops ~batched:true 4)
    (hops ~batched:true 16);
  check_bool "per-page chain grows with the pages" true
    (hops ~batched:false 16 >= 4 * hops ~batched:false 4)

(* --------------------- makespan decomposition ------------------------ *)

let test_makespan_breakdown_attributes () =
  let k, causal = migration_workload () in
  let smp_makespan = ref 0 in
  Hw.Smp.iter_cores (K.smp k) (fun c ->
      smp_makespan := max !smp_makespan c.Hw.Smp.busy_cycles);
  check_int "causal makespan = max per-core busy" !smp_makespan (Ca.makespan causal);
  check_bool ">= 95% of makespan cycles attributed" true
    (Ca.attributed_fraction causal >= 0.95);
  (match Ca.makespan_core causal with
  | None -> Alcotest.fail "no makespan core"
  | Some b ->
    check_int "shares partition busy" b.Ca.bd_busy
      (b.Ca.work + b.Ca.ipi_wait + b.Ca.sched + b.Ca.numa_remote);
    check_bool "IPI wait share is real" true (Ca.share_of causal ~core:b.Ca.bd_core Ca.Ipi_wait >= 0));
  (* The migration handoff is an edge in the graph. *)
  let edges = Ca.edges causal in
  let out = ops_named "migrate_out" causal and in_ = ops_named "migrate_in" causal in
  check_int "one migrate_out" 1 (List.length out);
  check_int "one migrate_in" 1 (List.length in_);
  check_bool "migrate edge links them" true
    (List.exists
       (fun e ->
         e.Ca.kind = "migrate"
         && e.Ca.src = (List.hd out).Ca.id
         && e.Ca.dst = (List.hd in_).Ca.id)
       edges);
  (* And the spawn -> placement handoff is too. *)
  check_bool "sched placement edge exists" true
    (List.exists (fun e -> e.Ca.kind = "sched") edges)

(* ------------- satellite: per-core busy gauge time series ------------- *)

let test_busy_gauge_series () =
  let k = mk_kernel ~config:(smp_config ()) () in
  ignore (attach_causal k);
  Sim.Stats.set_sample_interval (K.stats k) ~cycles:100;
  let p = K.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
  let c0 = Hw.Smp.core (K.smp k) 0 in
  check_int "gauge mirrors the core counter" c0.Hw.Smp.busy_cycles
    (Sim.Stats.gauge (K.stats k) "core0_busy");
  let series = Sim.Stats.series (K.stats k) "core0_busy" in
  check_bool "busy series sampled over time" true (List.length series >= 2);
  let values = List.map snd series in
  check_bool "series is monotone" true
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length values - 1) values)
       (List.tl values))

(* ------------------------------- NUMA -------------------------------- *)

let test_numa_matrix_and_share () =
  let k, causal = migration_workload ~numa_nodes:2 () in
  ignore k;
  (* Post-migration reads from core 1 hit frames homed by the old node:
     the traffic matrix and the numa_remote share must both see it. *)
  match Ca.to_json causal with
  | Sim.Json.Obj fields -> (
    match List.assoc "numa_traffic" fields with
    | Sim.Json.Obj cells ->
      let total =
        List.fold_left
          (fun acc (_, v) -> match v with Sim.Json.Int n -> acc + n | _ -> acc)
          0 cells
      in
      check_bool "remote traffic recorded" true (total > 0);
      List.iter
        (fun (key, _) ->
          check_bool "matrix keys are src->dst" true (String.contains key '>'))
        cells;
      let reqs = ops_named "numa_req" causal and serves = ops_named "numa_serve" causal in
      check_int "every request served" (List.length reqs) (List.length serves);
      List.iter
        (fun (s : Ca.node) -> check_int "service point is off-core" (-1) s.Ca.core)
        serves;
      check_bool "some core carries a numa_remote share" true
        (List.exists (fun b -> b.Ca.numa_remote > 0) (Ca.breakdowns causal))
    | _ -> Alcotest.fail "numa_traffic not an object")
  | _ -> Alcotest.fail "to_json not an object"

(* --------------------------- reclaim wake ---------------------------- *)

let test_reclaim_wake_edge () =
  let k = mk_kernel () in
  let causal = attach_causal k in
  let fi = FI.create ~stats:(K.stats k) () in
  Sim.Trace.attach_faults (K.trace k) fi;
  let p = K.create_process k () in
  (* Populate some reclaimable pages first, then choke the allocator. *)
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:true in
  ignore va;
  FI.arm fi ~site:FI.site_frame_alloc_fail FI.Always;
  (try ignore (K.mmap_anon k p ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~populate:true)
   with Sim.Errno.Error _ -> ());
  FI.disarm fi ~site:FI.site_frame_alloc_fail;
  let stalls = ops_named "alloc_stall" causal and wakes = ops_named "reclaim_wake" causal in
  check_bool "allocation stalled" true (stalls <> []);
  check_int "every stall woke reclaim" (List.length stalls) (List.length wakes);
  check_bool "stall -> wake edge recorded" true
    (List.exists (fun e -> e.Ca.kind = "reclaim") (Ca.edges causal))

(* Like the profiler, the causal plane does its bookkeeping off the
   virtual clock: an attached run spends exactly the same simulated
   cycles as a detached one. *)
let test_zero_cost_when_attached () =
  let run ~attach =
    let k = mk_kernel ~config:(smp_config ~cores:2 ~numa_nodes:2 ()) () in
    if attach then ignore (attach_causal k);
    let p = K.create_process k () in
    let len = Sim.Units.kib 64 in
    let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
    ignore (K.access_range k p ~va ~len ~write:true ~stride:page);
    K.migrate k p ~core:1;
    ignore (K.access_range k p ~va ~len ~write:false ~stride:page);
    K.munmap k p ~va ~len;
    Sim.Clock.now (K.clock k)
  in
  check_int "attached run spends the same cycles" (run ~attach:false) (run ~attach:true)

let suite =
  [
    Alcotest.test_case "trace: seq numbers order equal-cycle events" `Quick test_seq_monotonic;
    Alcotest.test_case "trace: core stamping, disabled sentinel safe" `Quick
      test_core_stamp_and_disabled;
    Alcotest.test_case "ipi: send->deliver->ack edges + histogram" `Quick
      test_ipi_edges_and_histogram;
    Alcotest.test_case "ipi: lost ack visible in graph and timeline" `Quick
      test_lost_ack_visible_in_graph_and_timeline;
    Alcotest.test_case "critical path: explicit + program-order edges" `Quick
      test_critical_path_on_synthetic_graph;
    Alcotest.test_case "critical path: batched O(1) vs per-page" `Quick
      test_batched_critical_path_o1;
    Alcotest.test_case "makespan: decomposition attributes >= 95%" `Quick
      test_makespan_breakdown_attributes;
    Alcotest.test_case "gauges: core busy sampled over time" `Quick test_busy_gauge_series;
    Alcotest.test_case "numa: traffic matrix and remote share" `Quick test_numa_matrix_and_share;
    Alcotest.test_case "reclaim: stall -> wake edge" `Quick test_reclaim_wake_edge;
    Alcotest.test_case "overhead: zero virtual cycles when attached" `Quick
      test_zero_cost_when_attached;
  ]
