open Helpers
module K = Os.Kernel

let mk () =
  let k = mk_kernel () in
  let p = K.create_process k () in
  (k, p)

(* Page_meta *)

let test_page_meta_flags_refs () =
  let clock, stats = mk_env () in
  let m = Os.Page_meta.create ~clock ~stats ~frames:100 in
  check_bool "flag default false" false (Os.Page_meta.get_flag m 5 Os.Page_meta.Dirty);
  Os.Page_meta.set_flag m 5 Os.Page_meta.Dirty true;
  check_bool "flag set" true (Os.Page_meta.get_flag m 5 Os.Page_meta.Dirty);
  Os.Page_meta.set_flag m 5 Os.Page_meta.Dirty false;
  check_bool "flag cleared" false (Os.Page_meta.get_flag m 5 Os.Page_meta.Dirty);
  Os.Page_meta.get_page m 5;
  Os.Page_meta.get_page m 5;
  check_int "refcount" 2 (Os.Page_meta.refcount m 5);
  Os.Page_meta.put_page m 5;
  Os.Page_meta.put_page m 5;
  Alcotest.check_raises "underflow" (Invalid_argument "Page_meta.put_page: refcount underflow")
    (fun () -> Os.Page_meta.put_page m 5)

let test_page_meta_boot_cost_linear () =
  let clock, stats = mk_env () in
  let m = Os.Page_meta.create ~clock ~stats ~frames:10_000 in
  let before = Sim.Clock.now clock in
  Os.Page_meta.init_range m ~first:0 ~count:10_000;
  let c1 = Sim.Clock.elapsed clock ~since:before in
  check_int "linear init" (10_000 * Sim.Cost_model.default.Sim.Cost_model.struct_page_init) c1;
  check_int "64B per page" (10_000 * 64) (Os.Page_meta.metadata_bytes m)

(* Vma + address space *)

let test_vma_merge_rules () =
  let a = Os.Vma.make ~start:0 ~len:4096 ~prot:Hw.Prot.rw ~backing:Os.Vma.Anon ~share:Os.Vma.Private in
  let b = Os.Vma.make ~start:4096 ~len:4096 ~prot:Hw.Prot.rw ~backing:Os.Vma.Anon ~share:Os.Vma.Private in
  check_bool "adjacent anon merge" true (Os.Vma.can_merge a b);
  let c = Os.Vma.make ~start:8192 ~len:4096 ~prot:Hw.Prot.r ~backing:Os.Vma.Anon ~share:Os.Vma.Private in
  check_bool "different prot no merge" false (Os.Vma.can_merge b c);
  let d = Os.Vma.make ~start:16384 ~len:4096 ~prot:Hw.Prot.rw ~backing:Os.Vma.Anon ~share:Os.Vma.Private in
  check_bool "non-adjacent no merge" false (Os.Vma.can_merge b d)

let test_aspace_insert_merges () =
  let k, p = mk () in
  ignore k;
  let aspace = p.Os.Proc.aspace in
  let n0 = Os.Address_space.vma_count aspace in
  let mk_vma start =
    Os.Vma.make ~start ~len:4096 ~prot:Hw.Prot.rw ~backing:Os.Vma.Anon ~share:Os.Vma.Private
  in
  Os.Address_space.insert_vma aspace (mk_vma 0x10000);
  Os.Address_space.insert_vma aspace (mk_vma 0x11000);
  check_int "merged into one" (n0 + 1) (Os.Address_space.vma_count aspace);
  match Os.Address_space.find_vma aspace ~va:0x11abc with
  | Some v -> check_int "merged length" 8192 v.Os.Vma.len
  | None -> Alcotest.fail "merged VMA missing"

let test_aspace_remove_splits () =
  let _, p = mk () in
  let aspace = p.Os.Proc.aspace in
  let v =
    Os.Vma.make ~start:0x100000 ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ~backing:Os.Vma.Anon
      ~share:Os.Vma.Private
  in
  Os.Address_space.insert_vma aspace v;
  (* Punch a page out of the middle. *)
  let removed = Os.Address_space.remove_range aspace ~start:0x101000 ~len:4096 in
  check_int "one piece removed" 1 (List.length removed);
  check_bool "head survives" true (Os.Address_space.find_vma aspace ~va:0x100000 <> None);
  check_bool "hole gone" true (Os.Address_space.find_vma aspace ~va:0x101000 = None);
  check_bool "tail survives" true (Os.Address_space.find_vma aspace ~va:0x102000 <> None)

(* mmap anon + faults *)

let test_mmap_anon_demand_faults () =
  let k, p = mk () in
  let len = Sim.Units.kib 16 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  check_int "no faults yet" 0 (Sim.Stats.get (K.stats k) "page_fault");
  let n = K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size in
  check_int "4 accesses" 4 n;
  check_int "4 minor faults" 4 (Sim.Stats.get (K.stats k) "minor_fault");
  (* Re-access: no further faults. *)
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  check_int "still 4" 4 (Sim.Stats.get (K.stats k) "page_fault")

let test_mmap_anon_populate_no_faults () =
  let k, p = mk () in
  let len = Sim.Units.kib 16 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  check_int "populate avoids all faults" 0 (Sim.Stats.get (K.stats k) "page_fault")

let test_mmap_populate_cost_linear_demand_flat () =
  (* The Figure 6a shape: populate grows with size, demand mmap is flat. *)
  let time_mmap ~populate len =
    let k, p = mk () in
    let clock = K.clock k in
    let before = Sim.Clock.now clock in
    ignore (K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate);
    Sim.Clock.elapsed clock ~since:before
  in
  let pop_small = time_mmap ~populate:true (Sim.Units.kib 16) in
  let pop_big = time_mmap ~populate:true (Sim.Units.mib 1) in
  let dem_small = time_mmap ~populate:false (Sim.Units.kib 16) in
  let dem_big = time_mmap ~populate:false (Sim.Units.mib 1) in
  check_bool "populate scales with size" true (pop_big > 10 * pop_small);
  check_int "demand mmap cost size-independent" dem_small dem_big

let test_segfault_outside_mapping () =
  let k, p = mk () in
  Alcotest.check_raises "segfault" (Os.Fault.Segfault 0xdead000) (fun () ->
      K.access k p ~va:0xdead000 ~write:false)

let test_segfault_write_to_readonly () =
  let k, p = mk () in
  let va = K.mmap_anon k p ~len:4096 ~prot:Hw.Prot.r ~populate:false in
  ignore (K.access k p ~va ~write:false);
  Alcotest.check_raises "write denied" (Os.Fault.Segfault va) (fun () ->
      K.access k p ~va ~write:true)

(* File mappings *)

let test_mmap_file_shared_reads_file_data () =
  let k, p = mk () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/data" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 "shared-bytes";
  let va =
    K.mmap_file k p ~fs ~path:"/data" ~prot:Hw.Prot.rw ~share:Os.Vma.Shared ~populate:false ()
  in
  K.access k p ~va ~write:false;
  (* The mapped page is the file's frame: read through physical memory. *)
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  (match Hw.Page_table.lookup table ~va with
  | Some (pa, _) ->
    check_string "file frame mapped" "shared-bytes"
      (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa ~len:12))
  | None -> Alcotest.fail "not mapped");
  check_int "one minor fault" 1 (Sim.Stats.get (K.stats k) "minor_fault")

let test_smaps_pss_shared_rounds () =
  let k = mk_kernel () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/pss" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib 8);
  let procs = List.init 3 (fun _ -> K.create_process k ()) in
  List.iter
    (fun p ->
      ignore (K.mmap_file k p ~fs ~path:"/pss" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:true ()))
    procs;
  (* 2 pages shared by 3 processes: PSS = 8192/3 = 2730.67 B. Truncation
     used to report 2730B; nearest rounding gives 2731B. *)
  let summary = Os.Procfs.smaps_summary k (List.hd procs) in
  check_bool "pss rounds to nearest" true (Helpers.contains ~needle:"pss 2731B" summary);
  check_bool "rss unaffected" true (Helpers.contains ~needle:"rss 8KiB" summary)

let test_smaps_machine_gauges () =
  let k, p = mk () in
  let len = Sim.Units.kib 16 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  ignore (K.access_range k p ~va ~len ~write:false ~stride:Sim.Units.page_size);
  let summary = Os.Procfs.smaps_summary k p in
  (* Gauges are machine-wide aggregates kept live by the hot paths: after
     populating 4 pages, residency must match and the TLB holds the
     populate-time insertions. *)
  check_bool "machine roll-up line" true (Helpers.contains ~needle:"machine: resident" summary);
  check_bool "resident matches populated pages" true
    (Helpers.contains ~needle:"resident 4 pages (hwm 4)" summary);
  check_int "gauge agrees with procfs rss" (Os.Procfs.rss_pages p)
    (Sim.Stats.gauge (K.stats k) "resident_pages");
  check_bool "tlb occupancy tracked" true (Sim.Stats.gauge (K.stats k) "tlb_entries" > 0);
  K.munmap k p ~va ~len;
  let summary = Os.Procfs.smaps_summary k p in
  check_bool "unmap drains residency, hwm sticks" true
    (Helpers.contains ~needle:"resident 0 pages (hwm 4)" summary)

let test_mmap_file_private_cow () =
  let k, p = mk () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/cow" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 "original";
  let va =
    K.mmap_file k p ~fs ~path:"/cow" ~prot:Hw.Prot.rw ~share:Os.Vma.Private ~populate:false ()
  in
  (* Read fault maps the file frame read-only. *)
  K.access k p ~va ~write:false;
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  let pa_before =
    match Hw.Page_table.lookup table ~va with Some (pa, _) -> pa | None -> Alcotest.fail "unmapped"
  in
  (* Write triggers CoW: new frame, file untouched. *)
  K.access k p ~va ~write:true;
  let pa_after =
    match Hw.Page_table.lookup table ~va with Some (pa, _) -> pa | None -> Alcotest.fail "unmapped"
  in
  check_bool "frame replaced" true (pa_before <> pa_after);
  check_int "cow fault counted" 1 (Sim.Stats.get (K.stats k) "cow_fault");
  check_string "file data intact" "original"
    (Bytes.to_string (Fs.Memfs.read_file fs ino ~off:0 ~len:8));
  (* Byte 0 was overwritten by the triggering write; the rest is copied. *)
  check_string "private copy has the data" "riginal"
    (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:(pa_after + 1) ~len:7))

let test_mmap_file_permission_check () =
  let k, p = mk () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/ro" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 "x";
  Fs.Memfs.set_prot fs ino Hw.Prot.r;
  Alcotest.check_raises "whole-file permission denied"
    (Invalid_argument "Kernel.mmap_file: file permission denied") (fun () ->
      ignore
        (K.mmap_file k p ~fs ~path:"/ro" ~prot:Hw.Prot.rw ~share:Os.Vma.Shared ~populate:false ()))

let test_munmap_releases () =
  let k, p = mk () in
  let len = Sim.Units.kib 16 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  check_int "4 ptes" 4 (Hw.Page_table.pte_count table);
  K.munmap k p ~va ~len;
  check_int "ptes gone" 0 (Hw.Page_table.pte_count table);
  check_bool "vma gone" true (Os.Address_space.find_vma p.Os.Proc.aspace ~va = None);
  Alcotest.check_raises "access after munmap" (Os.Fault.Segfault va) (fun () ->
      K.access k p ~va ~write:false)

let test_munmap_file_drops_reference () =
  let k, p = mk () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/ref" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 "x";
  let va = K.mmap_file k p ~fs ~path:"/ref" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:true () in
  check_int "one reference" 1 (Fs.Memfs.inode fs ino).Fs.Inode.refs;
  K.munmap k p ~va ~len:4096;
  check_int "reference dropped" 0 (Fs.Memfs.inode fs ino).Fs.Inode.refs

let test_mprotect () =
  let k, p = mk () in
  let va = K.mmap_anon k p ~len:4096 ~prot:Hw.Prot.rw ~populate:true in
  K.access k p ~va ~write:true;
  K.mprotect k p ~va ~len:4096 ~prot:Hw.Prot.r;
  Alcotest.check_raises "now read-only" (Os.Fault.Segfault va) (fun () ->
      K.access k p ~va ~write:true);
  K.access k p ~va ~write:false

let test_exit_process_cleans_up () =
  let k, p = mk () in
  ignore (K.mmap_anon k p ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:true);
  check_int "process registered" 1 (K.process_count k);
  K.exit_process k p;
  check_int "process gone" 0 (K.process_count k);
  check_bool "dead" false p.Os.Proc.alive;
  check_int "no ptes left" 0 (Hw.Page_table.pte_count (Os.Address_space.page_table p.Os.Proc.aspace))

let test_mlock_pins () =
  let k, p = mk () in
  let va = K.mmap_anon k p ~len:(Sim.Units.kib 8) ~prot:Hw.Prot.rw ~populate:false in
  K.mlock k p ~va ~len:(Sim.Units.kib 8);
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  (match Hw.Page_table.lookup table ~va with
  | Some (_, leaf) ->
    check_bool "pinned flag" true
      (Os.Page_meta.get_flag (K.page_meta k) leaf.Hw.Page_table.pfn Os.Page_meta.Pinned)
  | None -> Alcotest.fail "mlock did not populate");
  check_int "stat" 2 (Sim.Stats.get (K.stats k) "mlocked_pages")

(* Swap + reclaim *)

let test_swap_roundtrip () =
  let k, _ = mk () in
  let sw = K.swap k in
  let mem = K.mem k in
  Physmem.Phys_mem.write mem ~addr:(Physmem.Frame.to_addr 10) "precious";
  Os.Swap.swap_out sw ~key:(1, 0x1000) ~pfn:10;
  check_bool "frame zeroed" true (Physmem.Phys_mem.frame_is_zero mem 10);
  check_bool "slot exists" true (Os.Swap.contains sw ~key:(1, 0x1000));
  check_bool "restored" true (Os.Swap.swap_in sw ~key:(1, 0x1000) ~pfn:20);
  check_string "contents back" "precious"
    (Bytes.to_string (Physmem.Phys_mem.read mem ~addr:(Physmem.Frame.to_addr 20) ~len:8));
  check_bool "slot consumed" false (Os.Swap.contains sw ~key:(1, 0x1000))

let test_reclaim_clock_second_chance () =
  let k, p = mk () in
  let len = Sim.Units.kib 32 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  (* Fault in 8 pages (writes -> dirty). *)
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  check_int "tracked" 8 (Os.Reclaim.tracked (K.reclaim k));
  (* All pages were just accessed: first scan clears accessed bits (second
     chance), then evicts. *)
  let got = Os.Reclaim.scan (K.reclaim k) ~target_frames:4 in
  check_int "4 reclaimed" 4 got;
  check_bool "dirty pages went to swap" true (Sim.Stats.get (K.stats k) "reclaim_swapped" >= 4);
  (* Touching a reclaimed page faults it back in (major). *)
  K.access k p ~va ~write:false;
  check_bool "major fault on return" true (Sim.Stats.get (K.stats k) "major_fault" >= 1);
  (* Data integrity via swap round trip is covered by content checks. *)
  check_bool "examined more pages than reclaimed" true
    (Os.Reclaim.pages_examined (K.reclaim k) > 4)

let test_reclaim_preserves_content () =
  let k, p = mk () in
  let va = K.mmap_anon k p ~len:4096 ~prot:Hw.Prot.rw ~populate:false in
  K.access k p ~va ~write:true;
  (* Find the frame and plant recognizable content. *)
  let table = Os.Address_space.page_table p.Os.Proc.aspace in
  let pfn =
    match Hw.Page_table.lookup table ~va with
    | Some (_, leaf) -> leaf.Hw.Page_table.pfn
    | None -> Alcotest.fail "unmapped"
  in
  Physmem.Phys_mem.write (K.mem k) ~addr:(Physmem.Frame.to_addr pfn) "survive-swap";
  (* Force eviction (needs two passes: first clears accessed). *)
  let n = Os.Reclaim.scan (K.reclaim k) ~target_frames:1 in
  check_int "evicted" 1 n;
  check_bool "unmapped after eviction" true (Hw.Page_table.lookup table ~va = None);
  (* Fault back and verify content. *)
  K.access k p ~va ~write:false;
  let pa =
    match Hw.Page_table.lookup table ~va with Some (pa, _) -> pa | None -> Alcotest.fail "lost"
  in
  check_string "content survived swap" "survive-swap"
    (Bytes.to_string (Physmem.Phys_mem.read (K.mem k) ~addr:pa ~len:12))

let test_reclaim_two_q () =
  let config = { Helpers.small_config with Os.Kernel.reclaim_policy = Os.Reclaim.Two_q } in
  let k = mk_kernel ~config () in
  let p = K.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  (* Keep the first four pages hot. *)
  ignore (K.access_range k p ~va ~len:(Sim.Units.kib 16) ~write:false ~stride:Sim.Units.page_size);
  let got = Os.Reclaim.scan (K.reclaim k) ~target_frames:4 in
  check_int "reclaimed under 2Q" 4 got

let test_read_syscall_returns_bytes () =
  let k, p = mk () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/r" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 (String.make 16384 'r');
  let n = K.read_syscall k p ~fs ~ino ~off:0 ~len:16384 in
  check_int "full read" 16384 n;
  check_bool "syscall counted" true (Sim.Stats.get (K.stats k) "syscall" > 0)

let test_five_level_kernel_walk_refs () =
  let config = { Helpers.small_config with Os.Kernel.levels = 5 } in
  let k = mk_kernel ~config () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:4096 ~prot:Hw.Prot.rw ~populate:true in
  let before = Sim.Stats.get (K.stats k) "walk_refs" in
  K.access k p ~va ~write:false;
  check_int "5 refs for a 5-level walk" (before + 5) (Sim.Stats.get (K.stats k) "walk_refs")

let test_virtualized_walk_cost () =
  let config = { Helpers.small_config with Os.Kernel.walk_mode = Hw.Walker.Virtualized 4 } in
  let k = mk_kernel ~config () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:4096 ~prot:Hw.Prot.rw ~populate:true in
  let before = Sim.Stats.get (K.stats k) "walk_refs" in
  K.access k p ~va ~write:false;
  check_int "24 refs nested" (before + 24) (Sim.Stats.get (K.stats k) "walk_refs")

let prop_demand_faults_equal_pages_touched =
  qtest "minor faults = distinct pages touched" ~count:30
    QCheck2.Gen.(int_range 1 32)
    (fun pages ->
      let k, p = mk () in
      let len = pages * Sim.Units.page_size in
      let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
      ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
      Sim.Stats.get (K.stats k) "minor_fault" = pages)

let suite =
  [
    Alcotest.test_case "page_meta: flags and refcounts" `Quick test_page_meta_flags_refs;
    Alcotest.test_case "page_meta: boot init linear" `Quick test_page_meta_boot_cost_linear;
    Alcotest.test_case "vma: merge rules" `Quick test_vma_merge_rules;
    Alcotest.test_case "aspace: insert merges anon VMAs" `Quick test_aspace_insert_merges;
    Alcotest.test_case "aspace: remove splits VMAs" `Quick test_aspace_remove_splits;
    Alcotest.test_case "kernel: demand faults" `Quick test_mmap_anon_demand_faults;
    Alcotest.test_case "kernel: MAP_POPULATE avoids faults" `Quick test_mmap_anon_populate_no_faults;
    Alcotest.test_case "kernel: populate linear, demand flat (Fig 6a)" `Quick
      test_mmap_populate_cost_linear_demand_flat;
    Alcotest.test_case "kernel: segfault outside mappings" `Quick test_segfault_outside_mapping;
    Alcotest.test_case "kernel: segfault on readonly write" `Quick test_segfault_write_to_readonly;
    Alcotest.test_case "kernel: shared file mapping" `Quick test_mmap_file_shared_reads_file_data;
    Alcotest.test_case "kernel: private file CoW" `Quick test_mmap_file_private_cow;
    Alcotest.test_case "procfs: shared-mapping PSS rounds to nearest" `Quick
      test_smaps_pss_shared_rounds;
    Alcotest.test_case "procfs: smaps machine gauge roll-up" `Quick test_smaps_machine_gauges;
    Alcotest.test_case "kernel: file permission check" `Quick test_mmap_file_permission_check;
    Alcotest.test_case "kernel: munmap releases pages" `Quick test_munmap_releases;
    Alcotest.test_case "kernel: munmap drops file reference" `Quick test_munmap_file_drops_reference;
    Alcotest.test_case "kernel: mprotect" `Quick test_mprotect;
    Alcotest.test_case "kernel: exit cleans up" `Quick test_exit_process_cleans_up;
    Alcotest.test_case "kernel: mlock pins pages" `Quick test_mlock_pins;
    Alcotest.test_case "swap: round trip" `Quick test_swap_roundtrip;
    Alcotest.test_case "reclaim: CLOCK second chance" `Quick test_reclaim_clock_second_chance;
    Alcotest.test_case "reclaim: content survives swap" `Quick test_reclaim_preserves_content;
    Alcotest.test_case "reclaim: 2Q policy" `Quick test_reclaim_two_q;
    Alcotest.test_case "kernel: read() syscall" `Quick test_read_syscall_returns_bytes;
    Alcotest.test_case "kernel: 5-level walks" `Quick test_five_level_kernel_walk_refs;
    Alcotest.test_case "kernel: virtualized walks cost 24 refs" `Quick test_virtualized_walk_cost;
    prop_demand_faults_equal_pages_touched;
  ]
