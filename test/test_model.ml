(* Model-based randomized tests: long random operation sequences checked
   against simple reference models, plus crash injection at random
   points. These are the heaviest correctness artillery in the suite. *)
open Helpers
module K = Os.Kernel
module F = O1mem.Fom

(* --- FS churn against a reference model, with crash injection ------- *)

type file_model = { mutable size : int; mutable persistent : bool; mutable stamp : char }

let fs_random_ops ~seed ~ops ~crash_at =
  let mem = mk_mem ~dram:(Sim.Units.mib 8) ~nvm:(Sim.Units.mib 32) () in
  let fs =
    Fs.Memfs.create ~mem ~first:(Physmem.Phys_mem.dram_frames mem) ~count:8192
      ~mode:Fs.Memfs.Pmfs ()
  in
  let rng = Sim.Rng.create ~seed in
  let model : (string, file_model) Hashtbl.t = Hashtbl.create 16 in
  let live_paths () = Hashtbl.fold (fun p _ acc -> p :: acc) model [] |> List.sort compare in
  let fresh = ref 0 in
  let crashed = ref false in
  for step = 0 to ops - 1 do
    if step = crash_at then begin
      Physmem.Phys_mem.crash mem;
      Fs.Memfs.crash fs;
      ignore (Fs.Memfs.recover fs);
      crashed := true;
      (* Volatile files are gone from the model too. *)
      let doomed =
        Hashtbl.fold (fun p m acc -> if not m.persistent then p :: acc else acc) model []
      in
      List.iter (Hashtbl.remove model) doomed
    end;
    match Sim.Rng.int rng 6 with
    | 0 ->
      (* create *)
      let path = Printf.sprintf "/f%d" !fresh in
      incr fresh;
      let persistent = Sim.Rng.bool rng in
      ignore
        (Fs.Memfs.create_file fs path
           ~persistence:(if persistent then Fs.Inode.Persistent else Fs.Inode.Volatile));
      Hashtbl.replace model path { size = 0; persistent; stamp = '\000' }
    | 1 -> (
      (* extend + stamp *)
      match live_paths () with
      | [] -> ()
      | paths ->
        let path = List.nth paths (Sim.Rng.int rng (List.length paths)) in
        let m = Hashtbl.find model path in
        let ino = Option.get (Fs.Memfs.lookup fs path) in
        let add = Sim.Units.page_size * Sim.Rng.int_in rng ~lo:1 ~hi:8 in
        (try
           Fs.Memfs.extend fs ino ~bytes_wanted:add;
           m.size <- m.size + add;
           let stamp = Char.chr (Char.code 'a' + Sim.Rng.int rng 26) in
           Fs.Memfs.write_file fs ino ~off:0 (String.make 16 stamp);
           m.stamp <- stamp
         with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> () (* acceptable *)))
    | 2 -> (
      (* unlink *)
      match live_paths () with
      | [] -> ()
      | paths ->
        let path = List.nth paths (Sim.Rng.int rng (List.length paths)) in
        Fs.Memfs.unlink fs path;
        Hashtbl.remove model path)
    | 3 -> (
      (* toggle persistence *)
      match live_paths () with
      | [] -> ()
      | paths ->
        let path = List.nth paths (Sim.Rng.int rng (List.length paths)) in
        let m = Hashtbl.find model path in
        let ino = Option.get (Fs.Memfs.lookup fs path) in
        m.persistent <- not m.persistent;
        Fs.Memfs.set_persistence fs ino
          (if m.persistent then Fs.Inode.Persistent else Fs.Inode.Volatile))
    | 4 -> (
      (* truncate *)
      match live_paths () with
      | [] -> ()
      | paths ->
        let path = List.nth paths (Sim.Rng.int rng (List.length paths)) in
        let m = Hashtbl.find model path in
        if m.size > Sim.Units.page_size then begin
          let ino = Option.get (Fs.Memfs.lookup fs path) in
          let new_size = Sim.Units.page_size in
          Fs.Memfs.truncate fs ino ~bytes:new_size;
          m.size <- new_size
        end)
    | _ -> (
      (* verify a random live file right now *)
      match live_paths () with
      | [] -> ()
      | paths ->
        let path = List.nth paths (Sim.Rng.int rng (List.length paths)) in
        let m = Hashtbl.find model path in
        let ino = Option.get (Fs.Memfs.lookup fs path) in
        if (Fs.Memfs.inode fs ino).Fs.Inode.size <> m.size then
          Alcotest.failf "size mismatch for %s" path)
  done;
  (* Final coherence checks. *)
  Hashtbl.iter
    (fun path m ->
      match Fs.Memfs.lookup fs path with
      | None -> Alcotest.failf "model file %s missing from FS" path
      | Some ino ->
        let node = Fs.Memfs.inode fs ino in
        check_int (path ^ " size") m.size node.Fs.Inode.size;
        if m.stamp <> '\000' && m.size >= 16 then
          check_string (path ^ " contents") (String.make 16 m.stamp)
            (Bytes.to_string (Fs.Memfs.read_file fs ino ~off:0 ~len:16)))
    model;
  (* FS-side files must all be in the model. *)
  Fs.Memfs.iter_files fs (fun path _ ->
      if not (Hashtbl.mem model path) then Alcotest.failf "unexpected FS file %s" path);
  (* Space accounting: used = sum of file pages. *)
  let model_bytes =
    Hashtbl.fold (fun _ m acc -> acc + Sim.Units.round_up m.size ~align:Sim.Units.page_size) model 0
  in
  check_int "space accounting" model_bytes (Fs.Memfs.used_bytes fs);
  (* Extent disjointness across all files. *)
  let seen = Hashtbl.create 256 in
  Fs.Memfs.iter_files fs (fun path node ->
      Fs.Extent_tree.iter (Fs.Inode.extents node) (fun e ->
          for pfn = e.Fs.Extent.start to e.Fs.Extent.start + e.Fs.Extent.count - 1 do
            if Hashtbl.mem seen pfn then Alcotest.failf "frame %d owned twice (%s)" pfn path;
            Hashtbl.replace seen pfn ()
          done));
  !crashed

let test_fs_model_with_crashes () =
  for seed = 1 to 10 do
    let crashed = fs_random_ops ~seed ~ops:120 ~crash_at:(40 + (seed * 3)) in
    check_bool "crash actually injected" true crashed
  done

let test_fs_model_no_crash () =
  for seed = 11 to 16 do
    ignore (fs_random_ops ~seed ~ops:150 ~crash_at:max_int)
  done

(* --- FOM region lifecycle against a model --------------------------- *)

let test_fom_model () =
  for seed = 1 to 6 do
    let kernel, fom = mk_fom () in
    let proc = K.create_process kernel ~range_translations:true () in
    let rng = Sim.Rng.create ~seed in
    let live : (int, F.region) Hashtbl.t = Hashtbl.create 16 in
    let freed : (int, F.region) Hashtbl.t = Hashtbl.create 16 in
    let next_id = ref 0 in
    for _ = 0 to 80 do
      match Sim.Rng.int rng 4 with
      | 0 ->
        (* alloc with a random strategy *)
        let strategy =
          match Sim.Rng.int rng 4 with
          | 0 -> F.Per_page
          | 1 -> F.Huge_pages
          | 2 -> F.Shared_subtree
          | _ -> F.Range_translation
        in
        let len = Sim.Units.page_size * Sim.Rng.int_in rng ~lo:1 ~hi:64 in
        (try
           let r = F.alloc fom proc ~strategy ~len ~prot:Hw.Prot.rw () in
           Hashtbl.replace live !next_id r;
           incr next_id
         with Sim.Errno.Error ((Sim.Errno.ENOSPC | Sim.Errno.ENOMEM), _) -> ())
      | 1 -> (
        (* free a random live region *)
        let ids = Hashtbl.fold (fun id _ acc -> id :: acc) live [] in
        match ids with
        | [] -> ()
        | _ ->
          let id = List.nth ids (Sim.Rng.int rng (List.length ids)) in
          let r = Hashtbl.find live id in
          F.free fom proc r;
          Hashtbl.remove live id;
          Hashtbl.replace freed id r)
      | 2 -> (
        (* every live region must translate at a random in-bounds offset *)
        let ids = Hashtbl.fold (fun id _ acc -> id :: acc) live [] in
        match ids with
        | [] -> ()
        | _ ->
          let id = List.nth ids (Sim.Rng.int rng (List.length ids)) in
          let r = Hashtbl.find live id in
          let off = Sim.Rng.int rng r.F.len in
          F.access fom proc ~va:(r.F.va + off) ~write:(Sim.Rng.bool rng))
      | _ -> (
        (* freed regions must NOT translate *)
        let ids = Hashtbl.fold (fun id _ acc -> id :: acc) freed [] in
        match ids with
        | [] -> ()
        | _ ->
          let id = List.nth ids (Sim.Rng.int rng (List.length ids)) in
          let r = Hashtbl.find freed id in
          match F.access fom proc ~va:r.F.va ~write:false with
          | () -> Alcotest.fail "freed region still translates"
          | exception Os.Fault.Segfault _ -> ())
    done;
    (* Drain: free everything and confirm full space recovery. *)
    let fs = F.fs fom in
    Hashtbl.iter (fun _ r -> F.free fom proc r) live;
    let used = Fs.Memfs.used_bytes fs in
    check_int "all space recovered" 0 used
  done

(* --- Address-translation agreement under random map churn ----------- *)

let test_translation_model () =
  for seed = 21 to 26 do
    let pt, _, _ = mk_page_table () in
    let rng = Sim.Rng.create ~seed in
    let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
    (* VPNs in a small arena so map/unmap collide frequently. *)
    for _ = 0 to 400 do
      let vpn = Sim.Rng.int rng 128 in
      let va = vpn * Sim.Units.page_size in
      match Sim.Rng.int rng 3 with
      | 0 ->
        if not (Hashtbl.mem model vpn) then begin
          let pfn = 1 + Sim.Rng.int rng 10_000 in
          Hw.Page_table.map_page pt ~va ~pfn ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small;
          Hashtbl.replace model vpn pfn
        end
      | 1 ->
        if Hashtbl.mem model vpn then begin
          Hw.Page_table.unmap_page pt ~va;
          Hashtbl.remove model vpn
        end
      | _ -> (
        match (Hw.Page_table.lookup pt ~va, Hashtbl.find_opt model vpn) with
        | Some (pa, _), Some pfn -> check_int "translation agrees" (pfn * 4096) pa
        | None, None -> ()
        | Some _, None -> Alcotest.fail "table maps a page the model freed"
        | None, Some _ -> Alcotest.fail "table lost a mapping")
    done;
    check_int "leaf count agrees" (Hashtbl.length model) (Hw.Page_table.pte_count pt)
  done

(* --- copy_region (the CoW substitute) ------------------------------- *)

let test_copy_region () =
  let kernel, fom = mk_fom () in
  let proc = K.create_process kernel () in
  let fs = F.fs fom in
  let src = F.alloc fom proc ~name:"/orig" ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
  Fs.Memfs.write_file fs src.F.ino ~off:(Sim.Units.kib 30) "original-data";
  let dst = F.copy_region fom proc src () in
  check_bool "separate file" true (dst.F.ino <> src.F.ino);
  check_bool "separate mapping" true (dst.F.va <> src.F.va);
  check_string "contents duplicated" "original-data"
    (Bytes.to_string (Fs.Memfs.read_file fs dst.F.ino ~off:(Sim.Units.kib 30) ~len:13));
  (* Divergence: writing the copy leaves the original untouched. *)
  Fs.Memfs.write_file fs dst.F.ino ~off:(Sim.Units.kib 30) "MUTATED-!data";
  check_string "original intact" "original-data"
    (Bytes.to_string (Fs.Memfs.read_file fs src.F.ino ~off:(Sim.Units.kib 30) ~len:13));
  (* Both translate. *)
  F.access fom proc ~va:src.F.va ~write:true;
  F.access fom proc ~va:dst.F.va ~write:true

let test_copy_region_cost_is_upfront () =
  let kernel, fom = mk_fom () in
  let proc = K.create_process kernel () in
  let clock = K.clock kernel in
  let cost len =
    let src = F.alloc fom proc ~len ~prot:Hw.Prot.rw () in
    let before = Sim.Clock.now clock in
    let dst = F.copy_region fom proc src () in
    let c = Sim.Clock.elapsed clock ~since:before in
    F.free fom proc src;
    F.free fom proc dst;
    c
  in
  let c1 = cost (Sim.Units.mib 1) in
  let c4 = cost (Sim.Units.mib 4) in
  check_bool "copy cost linear (it is a copy)" true (c4 > 3 * c1 && c4 < 6 * c1)

(* --- Interplay: uswap survives a crash of its backing file's machine -- *)

let test_uswap_after_crash () =
  let kernel, fom = mk_fom () in
  let proc = K.create_process kernel () in
  let fs = F.fs fom in
  let ino = Fs.Memfs.create_file fs "/uswap-backing" ~persistence:Fs.Inode.Persistent in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib 32);
  Fs.Memfs.write_file fs ino ~off:(2 * Sim.Units.page_size) "persist";
  (* Crash before any window exists: the backing file must survive. *)
  ignore (O1mem.Persistence.crash_and_recover fom);
  let proc2 = K.create_process kernel () in
  ignore proc;
  let u = O1mem.Uswap.create fom proc2 ~backing_path:"/uswap-backing" ~window_pages:2 in
  check_bool "data readable through a fresh window after reboot" true
    (O1mem.Uswap.read_byte u ~off:(2 * Sim.Units.page_size) = 'p')

(* --- Interplay: fork a process that used THP ------------------------- *)

let test_fork_after_thp () =
  let k = mk_kernel () in
  let parent = K.create_process k () in
  let va = K.mmap_anon k parent ~len:(Sim.Units.mib 4) ~prot:Hw.Prot.rw ~populate:true in
  ignore (Os.Thp.scan_process k parent ());
  (* fork must split huge anon leaves before CoW-sharing them. *)
  let child = Os.Fork.fork k parent in
  let c_table = Os.Address_space.page_table child.Os.Proc.aspace in
  let probe = Sim.Units.round_up va ~align:Sim.Units.huge_2m in
  (match Hw.Page_table.lookup c_table ~va:probe with
  | Some (_, leaf) ->
    check_bool "child sees base pages" true (leaf.Hw.Page_table.size = Hw.Page_size.Small)
  | None -> Alcotest.fail "child missing mapping");
  (* Both can write independently after the CoW break. *)
  K.access k child ~va:probe ~write:true;
  K.access k parent ~va:probe ~write:true

(* --- Interplay: FOM access pattern under an attached cache ---------- *)

let test_fom_with_cache () =
  let kernel, fom = mk_fom () in
  let cache =
    Physmem.Cache_hier.create ~clock:(K.clock kernel) ~stats:(K.stats kernel) ()
  in
  Physmem.Phys_mem.attach_cache (K.mem kernel) cache;
  let proc = K.create_process kernel () in
  let r = F.alloc fom proc ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw () in
  F.access fom proc ~va:r.F.va ~write:true;
  let h0 = Sim.Stats.get (K.stats kernel) "l1_hit" in
  F.access fom proc ~va:r.F.va ~write:false;
  check_bool "repeat FOM access hits the cache" true
    (Sim.Stats.get (K.stats kernel) "l1_hit" > h0)

(* --- Interplay: reclaim pressure while a FOM process is running ------ *)

let test_reclaim_leaves_fom_alone () =
  let kernel, fom = mk_fom () in
  let p_baseline = K.create_process kernel () in
  let p_fom = K.create_process kernel () in
  let r = F.alloc fom p_fom ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
  ignore (F.access_range fom p_fom ~va:r.F.va ~len:r.F.len ~write:true ~stride:Sim.Units.page_size);
  (* Baseline process creates reclaim pressure. *)
  let va = K.mmap_anon kernel p_baseline ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:false in
  ignore
    (K.access_range kernel p_baseline ~va ~len:(Sim.Units.kib 64) ~write:true
       ~stride:Sim.Units.page_size);
  ignore (Os.Reclaim.scan (K.reclaim kernel) ~target_frames:8);
  (* FOM pages are implicitly pinned: never on the reclaim lists. *)
  ignore (F.access_range fom p_fom ~va:r.F.va ~len:r.F.len ~write:false ~stride:Sim.Units.page_size);
  check_int "fom region fully resident" 16 (Os.Procfs.rss_pages p_fom)

(* --- Property: defragmentation never changes what files contain ------ *)

let prop_defrag_preserves_contents =
  qtest "defragment preserves every file's bytes" ~count:25
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let mem = mk_mem ~dram:(Sim.Units.mib 16) () in
      let fs = Fs.Memfs.create ~mem ~first:0 ~count:512 ~mode:Fs.Memfs.Tmpfs () in
      let rng = Sim.Rng.create ~seed in
      (* Random create/extend/write/unlink churn to shuffle the bitmap. *)
      let live = ref [] in
      let fresh = ref 0 in
      for _ = 1 to 60 do
        match Sim.Rng.int rng 3 with
        | 0 ->
          let path = Printf.sprintf "/p%d" !fresh in
          incr fresh;
          let ino = Fs.Memfs.create_file fs path ~persistence:Fs.Inode.Volatile in
          (try
             Fs.Memfs.extend fs ino
               ~bytes_wanted:(Sim.Units.page_size * Sim.Rng.int_in rng ~lo:1 ~hi:6);
             let stamp = String.make 32 (Char.chr (Char.code 'a' + Sim.Rng.int rng 26)) in
             Fs.Memfs.write_file fs ino ~off:0 stamp;
             live := (path, stamp) :: !live
           with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> Fs.Memfs.unlink fs path)
        | 1 -> (
          match !live with
          | [] -> ()
          | (path, _) :: rest ->
            Fs.Memfs.unlink fs path;
            live := rest)
        | _ -> ()
      done;
      ignore (Fs.Memfs.defragment fs ());
      List.for_all
        (fun (path, stamp) ->
          match Fs.Memfs.lookup fs path with
          | None -> false
          | Some ino ->
            Bytes.to_string (Fs.Memfs.read_file fs ino ~off:0 ~len:32) = stamp)
        !live)

(* --- Property: grafted mappings agree across processes --------------- *)

let prop_graft_translation_agreement =
  qtest "all processes sharing a file translate identically" ~count:20
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 8))
    (fun (seed, nprocs) ->
      let kernel, fom = mk_fom () in
      let rng = Sim.Rng.create ~seed in
      let p0 = K.create_process kernel () in
      let len = Sim.Units.page_size * Sim.Rng.int_in rng ~lo:1 ~hi:1024 in
      ignore (F.alloc fom p0 ~name:"/shared" ~len ~prot:Hw.Prot.rw ());
      let mappings =
        List.init nprocs (fun _ ->
            let p = K.create_process kernel () in
            (p, F.map_path fom p "/shared"))
      in
      (* At random offsets, every process resolves to the same frame. *)
      List.for_all
        (fun _ ->
          let off = Sim.Rng.int rng len in
          let translations =
            List.map
              (fun ((p : Os.Proc.t), (r : F.region)) ->
                match
                  Hw.Page_table.lookup (Os.Address_space.page_table p.Os.Proc.aspace)
                    ~va:(r.F.va + off)
                with
                | Some (pa, _) -> pa
                | None -> -1)
              mappings
          in
          match translations with
          | [] -> true
          | x :: rest -> x >= 0 && List.for_all (( = ) x) rest)
        (List.init 16 Fun.id))

(* --- Property: scenario runs are deterministic ----------------------- *)

let prop_scenario_deterministic =
  qtest "identical seeds give identical simulated time" ~count:10
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let run () =
        let k = mk_kernel () in
        let apps = Wl.Scenario.desktop_mix ~rng:(Sim.Rng.create ~seed) ~apps:2 ~steps:30 in
        (Wl.Scenario.run k ~backend:Wl.Scenario.Baseline ~asids:true ~quantum:4 apps)
          .Wl.Scenario.sim_us
      in
      run () = run ())

let suite =
  [
    Alcotest.test_case "model: FS churn with crash injection (10 seeds)" `Slow
      test_fs_model_with_crashes;
    Alcotest.test_case "model: FS churn without crash (6 seeds)" `Slow test_fs_model_no_crash;
    Alcotest.test_case "model: FOM region lifecycle (6 seeds)" `Slow test_fom_model;
    Alcotest.test_case "model: translation agreement (6 seeds)" `Slow test_translation_model;
    Alcotest.test_case "fom: copy_region duplicates and diverges" `Quick test_copy_region;
    Alcotest.test_case "fom: copy_region cost is upfront and linear" `Quick
      test_copy_region_cost_is_upfront;
    Alcotest.test_case "interplay: uswap after crash" `Quick test_uswap_after_crash;
    Alcotest.test_case "interplay: fork after THP" `Quick test_fork_after_thp;
    Alcotest.test_case "interplay: FOM under a cache" `Quick test_fom_with_cache;
    Alcotest.test_case "interplay: reclaim never touches FOM pages" `Quick
      test_reclaim_leaves_fom_alone;
    prop_defrag_preserves_contents;
    prop_graft_translation_agreement;
    prop_scenario_deterministic;
  ]
