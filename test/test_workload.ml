open Helpers

let test_sweeps () =
  check_int "size sweep spans 4..1024 KB" 9 (List.length (Wl.Workload.size_sweep_kb ()));
  check_int "page sweep ends at 16k" 16384
    (List.nth (Wl.Workload.page_sweep ()) (List.length (Wl.Workload.page_sweep ()) - 1))

let test_patterns () =
  let rng = Sim.Rng.create ~seed:1 in
  let offs = Wl.Workload.offsets ~rng Wl.Workload.One_byte_per_page ~len:(Sim.Units.kib 16) in
  Alcotest.(check (list int)) "one per page" [ 0; 4096; 8192; 12288 ] offs;
  let offs = Wl.Workload.offsets ~rng (Wl.Workload.Random_pages 100) ~len:(Sim.Units.kib 16) in
  check_int "count honoured" 100 (List.length offs);
  check_bool "in range" true (List.for_all (fun o -> o >= 0 && o < Sim.Units.kib 16) offs);
  let seq = Wl.Workload.offsets ~rng Wl.Workload.Sequential ~len:256 in
  Alcotest.(check (list int)) "sequential is line-strided" [ 0; 64; 128; 192 ] seq

let test_touch_with_counts () =
  let rng = Sim.Rng.create ~seed:2 in
  let touched = ref [] in
  let n =
    Wl.Workload.touch_with
      ~access:(fun ~va ~write -> ignore write; touched := va :: !touched)
      ~base:1000 ~rng Wl.Workload.One_byte_per_page ~len:(Sim.Units.kib 8) ~write:false
  in
  check_int "two pages" 2 n;
  Alcotest.(check (list int)) "bases applied" [ 1000; 1000 + 4096 ] (List.rev !touched)

let test_churn_trace_well_formed () =
  let rng = Sim.Rng.create ~seed:3 in
  let trace = Wl.Churn.generate ~rng ~ops:200 () in
  let live = Hashtbl.create 64 in
  let allocs = ref 0 and frees = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Wl.Churn.Alloc { id; bytes } ->
        check_bool "positive size" true (bytes > 0);
        check_bool "fresh id" false (Hashtbl.mem live id);
        Hashtbl.replace live id ();
        incr allocs
      | Wl.Churn.Touch { id } -> check_bool "touch live" true (Hashtbl.mem live id)
      | Wl.Churn.Free { id } ->
        check_bool "free live" true (Hashtbl.mem live id);
        Hashtbl.remove live id;
        incr frees)
    trace;
  check_int "200 allocations" 200 !allocs;
  check_int "every allocation freed" 200 !frees;
  check_int "nothing left live" 0 (Hashtbl.length live)

let test_churn_runs_on_both_heaps () =
  let rng = Sim.Rng.create ~seed:4 in
  let trace = Wl.Churn.generate ~rng ~ops:50 ~max_bytes:(Sim.Units.kib 64) () in
  (* Baseline heap. *)
  let k = mk_kernel () in
  let p = Os.Kernel.create_process k () in
  let mh = Heap.Malloc_sim.create k p in
  let driver_baseline =
    {
      Wl.Churn.h_malloc = (fun ~bytes -> Heap.Malloc_sim.malloc mh ~bytes);
      h_free = (fun va -> Heap.Malloc_sim.free mh va);
      h_touch =
        (fun ~va ~bytes ->
          ignore (Os.Kernel.access_range k p ~va ~len:(max 1 bytes) ~write:true ~stride:Sim.Units.page_size));
    }
  in
  let n1 = Wl.Churn.run trace driver_baseline in
  (* FOM heap. *)
  let kernel, fom = mk_fom () in
  let proc = Os.Kernel.create_process kernel () in
  let fh = Heap.Fom_heap.create fom proc () in
  let driver_fom =
    {
      Wl.Churn.h_malloc = (fun ~bytes -> Heap.Fom_heap.malloc fh ~bytes);
      h_free = (fun va -> Heap.Fom_heap.free fh va);
      h_touch =
        (fun ~va ~bytes ->
          ignore
            (O1mem.Fom.access_range fom proc ~va ~len:(max 1 bytes) ~write:true
               ~stride:Sim.Units.page_size));
    }
  in
  let n2 = Wl.Churn.run trace driver_fom in
  check_int "same op count on both backends" n1 n2;
  check_int "fom heap ends empty" 0 (Heap.Fom_heap.live_bytes fh);
  check_int "baseline heap ends empty" 0 (Heap.Malloc_sim.live_bytes mh)

let test_churn_serialization_roundtrip () =
  let rng = Sim.Rng.create ~seed:8 in
  let trace = Wl.Churn.generate ~rng ~ops:100 () in
  let back = Wl.Churn.of_string (Wl.Churn.to_string trace) in
  check_bool "round trip" true (back = trace);
  Alcotest.check_raises "bad input" (Invalid_argument "Churn.of_string: bad line: garbage")
    (fun () -> ignore (Wl.Churn.of_string "garbage"))

let test_fs_study_matches_agrawal () =
  let rng = Sim.Rng.create ~seed:5 in
  let r = Wl.Fs_study.run ~rng Wl.Fs_study.default_params in
  check_bool "samples collected" true (r.Wl.Fs_study.samples > 1000);
  (* The paper's §2 claim: mean and median utilization below 50%. *)
  check_bool "mean below 50%" true (r.Wl.Fs_study.mean_utilization < 0.5);
  check_bool "median below 50%" true (r.Wl.Fs_study.median_utilization < 0.5);
  check_bool "most samples below half" true (r.Wl.Fs_study.fraction_below_half > 0.5);
  check_bool "utilization positive" true (r.Wl.Fs_study.mean_utilization > 0.05)

let test_fs_study_deterministic () =
  let run seed =
    Wl.Fs_study.run ~rng:(Sim.Rng.create ~seed) Wl.Fs_study.default_params
  in
  let a = run 9 and b = run 9 in
  Alcotest.(check (float 1e-12)) "same seed, same mean" a.Wl.Fs_study.mean_utilization
    b.Wl.Fs_study.mean_utilization

let test_scenario_desktop_mix_well_formed () =
  let apps = Wl.Scenario.desktop_mix ~rng:(Sim.Rng.create ~seed:1) ~apps:3 ~steps:50 in
  check_int "three apps" 3 (List.length apps);
  List.iter
    (fun (a : Wl.Scenario.app) ->
      (* Every alloc is eventually freed; frees target live slots. *)
      let live = Hashtbl.create 8 in
      List.iter
        (fun op ->
          match op with
          | Wl.Scenario.Alloc { slot; bytes } ->
            check_bool "positive" true (bytes > 0);
            Hashtbl.replace live slot ()
          | Wl.Scenario.Free slot ->
            check_bool "free live slot" true (Hashtbl.mem live slot);
            Hashtbl.remove live slot
          | Wl.Scenario.Touch { slot; _ } -> check_bool "touch live" true (Hashtbl.mem live slot)
          | Wl.Scenario.Compute c -> check_bool "compute positive" true (c > 0))
        a.Wl.Scenario.script;
      check_int "script drains" 0 (Hashtbl.length live))
    apps

let test_scenario_runs_both_backends () =
  let apps () = Wl.Scenario.desktop_mix ~rng:(Sim.Rng.create ~seed:2) ~apps:3 ~steps:60 in
  let k = mk_kernel () in
  let r_base =
    Wl.Scenario.run k ~backend:Wl.Scenario.Baseline ~asids:true ~quantum:4 (apps ())
  in
  check_bool "baseline faulted" true (r_base.Wl.Scenario.faults > 0);
  check_bool "switched" true (r_base.Wl.Scenario.switches > 0);
  check_int "all processes exited" 0 (Os.Kernel.process_count k);
  let k2 = mk_kernel () in
  let fom = O1mem.Fom.create k2 () in
  let r_fom = Wl.Scenario.run k2 ~fom ~backend:Wl.Scenario.Fom ~asids:true ~quantum:4 (apps ()) in
  check_int "FOM never faults" 0 r_fom.Wl.Scenario.faults;
  check_bool "FOM finishes sooner" true (r_fom.Wl.Scenario.sim_us < r_base.Wl.Scenario.sim_us);
  (* All FOM space returned. *)
  check_int "space clean" 0 (Fs.Memfs.used_bytes (O1mem.Fom.fs fom))

let test_scenario_asids_cheaper () =
  let apps () = Wl.Scenario.desktop_mix ~rng:(Sim.Rng.create ~seed:3) ~apps:4 ~steps:60 in
  let run asids =
    let k = mk_kernel () in
    (Wl.Scenario.run k ~backend:Wl.Scenario.Baseline ~asids ~quantum:4 (apps ())).Wl.Scenario.sim_us
  in
  check_bool "ASIDs never slower" true (run true <= run false)

let suite =
  [
    Alcotest.test_case "sweeps" `Quick test_sweeps;
    Alcotest.test_case "access patterns" `Quick test_patterns;
    Alcotest.test_case "touch_with drives accessor" `Quick test_touch_with_counts;
    Alcotest.test_case "churn: trace well-formed" `Quick test_churn_trace_well_formed;
    Alcotest.test_case "churn: replays on both heaps" `Quick test_churn_runs_on_both_heaps;
    Alcotest.test_case "churn: serialization round-trips" `Quick test_churn_serialization_roundtrip;
    Alcotest.test_case "fs study: utilization under 50% (Agrawal)" `Quick test_fs_study_matches_agrawal;
    Alcotest.test_case "fs study: deterministic" `Quick test_fs_study_deterministic;
    Alcotest.test_case "scenario: desktop mix well-formed" `Quick
      test_scenario_desktop_mix_well_formed;
    Alcotest.test_case "scenario: baseline vs FOM" `Quick test_scenario_runs_both_backends;
    Alcotest.test_case "scenario: ASIDs never slower" `Quick test_scenario_asids_cheaper;
  ]
