(* A durable write-ahead log on persistent memory, built directly on the
   clwb/sfence primitives (Physmem.Nvm) that persistent-memory file
   systems like PMFS rely on.

   Records are appended with a commit marker written *after* the payload
   is flushed and fenced. A crash mid-append tears the unflushed tail;
   recovery scans markers and keeps exactly the committed prefix —
   demonstrating why the ordering discipline matters and what the
   machine model guarantees. Run with: dune exec examples/durable_log.exe *)

let record_size = 64 (* one cache line per record: payload 63B + marker *)

let () =
  let clock = Sim.Clock.create Sim.Cost_model.default in
  let stats = Sim.Stats.create () in
  let mem =
    Physmem.Phys_mem.create ~clock ~stats ~dram_bytes:(Sim.Units.mib 16)
      ~nvm_bytes:(Sim.Units.mib 16) ()
  in
  let nvm = Physmem.Nvm.create mem in
  let log_base = Physmem.Frame.to_addr (Physmem.Phys_mem.dram_frames mem) in

  let record_addr i = log_base + (i * record_size) in
  let append ~durable i payload =
    let payload = String.sub (payload ^ String.make 62 ' ') 0 62 in
    let addr = record_addr i in
    Physmem.Nvm.write_persistent nvm ~addr payload;
    if durable then begin
      (* Correct protocol: flush payload, fence, then commit marker,
         flush, fence. *)
      Physmem.Nvm.flush nvm ~addr ~len:62;
      Physmem.Nvm.fence nvm;
      Physmem.Nvm.write_persistent nvm ~addr:(addr + 63) "C";
      Physmem.Nvm.flush nvm ~addr:(addr + 63) ~len:1;
      Physmem.Nvm.fence nvm
    end
    else
      (* Buggy fast path: the marker goes out without flushing. *)
      Physmem.Nvm.write_persistent nvm ~addr:(addr + 63) "C"
  in
  let committed i =
    Physmem.Phys_mem.read_byte mem (record_addr i + 63) = 'C'
  in
  let payload_of i =
    String.trim (Bytes.to_string (Physmem.Phys_mem.read mem ~addr:(record_addr i) ~len:62))
  in

  Printf.printf "Appending 5 records with the correct flush+fence protocol...\n";
  for i = 0 to 4 do
    append ~durable:true i (Printf.sprintf "record-%d" i)
  done;
  Printf.printf "Appending 3 more with a buggy protocol (no flush before crash)...\n";
  for i = 5 to 7 do
    append ~durable:false i (Printf.sprintf "record-%d" i)
  done;
  Printf.printf "Unflushed cache lines at crash time: %d\n" (Physmem.Nvm.unflushed_lines nvm);

  Printf.printf "\n*** power failure ***\n\n";
  Physmem.Nvm.crash nvm;

  (* Recovery: scan for committed records. *)
  let recovered = ref [] in
  (try
     for i = 0 to 7 do
       if committed i then recovered := payload_of i :: !recovered else raise Exit
     done
   with Exit -> ());
  let recovered = List.rev !recovered in
  Printf.printf "Recovered %d committed records:\n" (List.length recovered);
  List.iter (fun r -> Printf.printf "  %s\n" r) recovered;
  Printf.printf "Records 5-7 were lost: their lines were torn in the cache hierarchy.\n";
  assert (List.length recovered = 5);
  Printf.printf "\nLesson: durability needs explicit ordering (flush+fence), which PMFS\n";
  Printf.printf "pays once per metadata update - and which file-only memory inherits\n";
  Printf.printf "for free by storing data in a persistent file system.\n";
  Printf.printf "Simulated time: %.1f us\n" (Sim.Clock.us clock (Sim.Clock.now clock))
