(* A key-value store whose cache tier lives in discardable files.

   The paper (§4.1): "if applications use a file API to access
   non-critical data (i.e., discardable data such as caches), the OS can
   reclaim the memory by deleting non-critical files" — the benefits of
   transcendent memory without per-page scanning.

   This example builds a KV store with a persistent log file and a set of
   per-shard cache files. Under memory pressure the OS deletes the coldest
   shards; the store transparently rebuilds them from the log on the next
   miss. Run with: dune exec examples/kv_cache.exe *)

module F = O1mem.Fom

type store = {
  fom : F.t;
  fs : Fs.Memfs.t;
  log_ino : int;
  mutable log_entries : (string * string) list; (* newest first *)
  shards : int;
}

let shard_path i = Printf.sprintf "/kv/shard-%d" i
let shard_of store key = Hashtbl.hash key mod store.shards

let create fom ~shards =
  let fs = F.fs fom in
  Fs.Memfs.mkdir fs "/kv";
  let log_ino = Fs.Memfs.create_file fs "/kv/log" ~persistence:Fs.Inode.Persistent in
  { fom; fs; log_ino; log_entries = []; shards }

(* Rebuild a shard cache file from the log: an expensive miss path. *)
let rebuild_shard store i =
  let path = shard_path i in
  (match Fs.Memfs.lookup store.fs path with
  | Some _ -> ()
  | None ->
    let ino = Fs.Memfs.create_file store.fs path ~persistence:Fs.Inode.Volatile in
    Fs.Memfs.set_discardable store.fs ino true;
    (* Serialize this shard's entries into the cache file. *)
    let entries =
      List.filter (fun (k, _) -> shard_of store k = i) store.log_entries
    in
    let payload = String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) entries) in
    Fs.Memfs.write_file store.fs ino ~off:0 (if payload = "" then ";" else payload);
    (* Pad the cache to a realistic working-set size. *)
    Fs.Memfs.extend store.fs ino ~bytes_wanted:(Sim.Units.kib 256));
  Option.get (Fs.Memfs.lookup store.fs path)

let put store key value =
  (* Append to the durable log... *)
  let entry = key ^ "=" ^ value ^ "\n" in
  let off = (Fs.Memfs.inode store.fs store.log_ino).Fs.Inode.size in
  Fs.Memfs.write_file store.fs store.log_ino ~off entry;
  store.log_entries <- (key, value) :: store.log_entries;
  (* ...and update the shard cache if it is currently materialized. *)
  let i = shard_of store key in
  match Fs.Memfs.lookup store.fs (shard_path i) with
  | Some ino -> Fs.Memfs.write_file store.fs ino ~off:0 (key ^ "=" ^ value)
  | None -> ()

let get store key =
  let i = shard_of store key in
  let hit = Fs.Memfs.lookup store.fs (shard_path i) <> None in
  let ino = rebuild_shard store i in
  ignore ino;
  let value = List.assoc_opt key store.log_entries in
  (value, hit)

let () =
  let kernel = Os.Kernel.create () in
  let fom = O1mem.Fom.create kernel () in
  let store = create fom ~shards:16 in
  let rng = Sim.Rng.create ~seed:2017 in

  (* Load phase: 200 keys, then warm every shard. *)
  for i = 1 to 200 do
    put store (Printf.sprintf "user:%d" i) (Printf.sprintf "profile-%d" i)
  done;
  for i = 0 to store.shards - 1 do
    ignore (rebuild_shard store i)
  done;
  Printf.printf "Store loaded: %d keys across %d cached shards (%s of cache)\n"
    200 store.shards
    (Sim.Units.bytes_to_string (store.shards * Sim.Units.kib 256));

  (* Serve a zipf-skewed read workload; everything hits. *)
  let hits = ref 0 and misses = ref 0 in
  let serve n =
    for _ = 1 to n do
      let k = Printf.sprintf "user:%d" (1 + Sim.Rng.zipf rng ~n:200 ~theta:0.9) in
      match get store k with
      | Some _, true -> incr hits
      | Some _, false -> incr misses
      | None, _ -> failwith "lost a key!"
    done
  in
  serve 500;
  Printf.printf "Warm phase: %d hits, %d misses\n" !hits !misses;

  (* Memory pressure: the OS needs 2 MiB back *now*. Instead of scanning
     page lists, it deletes the coldest discardable shard files. *)
  let freed =
    Fs.Memfs.reclaim_discardable store.fs ~target_bytes:(Sim.Units.mib 2)
  in
  let surviving =
    List.length
      (List.filter
         (fun i -> Fs.Memfs.lookup store.fs (shard_path i) <> None)
         (List.init store.shards Fun.id))
  in
  Printf.printf "Pressure! Reclaimed %s by deleting %d cold shards in O(files) time.\n"
    (Sim.Units.bytes_to_string freed)
    (store.shards - surviving);

  (* Keep serving: reclaimed shards rebuild lazily, nothing is lost. *)
  hits := 0;
  misses := 0;
  serve 500;
  Printf.printf "Post-reclaim phase: %d hits, %d misses (rebuilds), all keys intact.\n" !hits !misses;
  Printf.printf "Simulated time: %.1f ms\n"
    (Sim.Cost_model.cycles_to_ms
       (Sim.Clock.model (Os.Kernel.clock kernel))
       (Sim.Clock.now (Os.Kernel.clock kernel)))
