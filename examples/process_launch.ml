(* Launching a fleet of workers that share a large code/data file — the
   paper's Figure 3 scenario, end to end.

   A 64 MiB "shared library" file is mapped into 16 worker processes
   three ways: baseline demand paging, baseline MAP_POPULATE, and
   file-only memory grafting pre-created page-table subtrees. The grafted
   mapping costs a handful of pointer writes per process and the workers
   share one set of leaf page tables. Run with:
   dune exec examples/process_launch.exe *)

module K = Os.Kernel
module F = O1mem.Fom

let lib_bytes = Sim.Units.mib 64
let workers = 16

let time_us k f =
  let clock = K.clock k in
  let before = Sim.Clock.now clock in
  f ();
  Sim.Clock.us clock (Sim.Clock.elapsed clock ~since:before)

let baseline ~populate =
  let k = K.create ~config:{ K.default_config with K.dram_bytes = Sim.Units.gib 2 } () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/libhuge.so" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:lib_bytes;
  let pt_bytes = ref 0 in
  let t =
    time_us k (fun () ->
        for _ = 1 to workers do
          let p = K.create_process k () in
          let va =
            K.mmap_file k p ~fs ~path:"/libhuge.so" ~prot:Hw.Prot.r ~share:Os.Vma.Shared
              ~populate ()
          in
          (* Each worker reads the first page of every 2 MiB chunk (e.g.
             resolving symbols scattered through the library). *)
          ignore (K.access_range k p ~va ~len:lib_bytes ~write:false ~stride:Sim.Units.huge_2m);
          pt_bytes :=
            !pt_bytes
            + Hw.Page_table.metadata_bytes (Os.Address_space.page_table p.Os.Proc.aspace)
        done)
  in
  (t, !pt_bytes)

let fom_grafted () =
  let k = K.create ~config:{ K.default_config with K.dram_bytes = Sim.Units.gib 2 } () in
  let fom = F.create k () in
  (* Build the library file once; its master page table is built on the
     first map and shared by everyone after that. *)
  let p0 = K.create_process k () in
  ignore (F.alloc fom p0 ~name:"/libhuge.so" ~len:lib_bytes ~prot:Hw.Prot.r ());
  let pt_bytes = ref 0 in
  let t =
    time_us k (fun () ->
        for _ = 1 to workers do
          let p = K.create_process k () in
          let r = F.map_path fom p "/libhuge.so" in
          ignore
            (F.access_range fom p ~va:r.F.va ~len:lib_bytes ~write:false
               ~stride:Sim.Units.huge_2m);
          pt_bytes :=
            !pt_bytes
            + Hw.Page_table.metadata_bytes (Os.Address_space.page_table p.Os.Proc.aspace)
        done)
  in
  let shared = O1mem.Shared_pt.metadata_bytes (F.shared_pt fom) in
  (t, !pt_bytes, shared)

let () =
  Printf.printf "Mapping a %s shared library into %d workers\n\n"
    (Sim.Units.bytes_to_string lib_bytes) workers;
  let t_demand, pt_demand = baseline ~populate:false in
  Printf.printf "%-34s %10.1f us   per-worker PT: %s\n" "baseline, demand paging:" t_demand
    (Sim.Units.bytes_to_string (pt_demand / workers));
  let t_pop, pt_pop = baseline ~populate:true in
  Printf.printf "%-34s %10.1f us   per-worker PT: %s\n" "baseline, MAP_POPULATE:" t_pop
    (Sim.Units.bytes_to_string (pt_pop / workers));
  let t_fom, pt_fom, shared = fom_grafted () in
  Printf.printf "%-34s %10.1f us   per-worker PT: %s (+%s shared once)\n"
    "file-only memory, grafted:" t_fom
    (Sim.Units.bytes_to_string (pt_fom / workers))
    (Sim.Units.bytes_to_string shared);
  Printf.printf "\nGrafting is %.0fx faster than MAP_POPULATE and uses %.0fx less per-worker\n"
    (t_pop /. t_fom)
    (float_of_int pt_pop /. float_of_int (max 1 pt_fom));
  Printf.printf "page-table memory, because all %d workers point at the same subtrees.\n" workers
