(* Sorting a dataset larger than the memory you allow it to occupy —
   user-level paging in anger.

   Under file-only memory the kernel never swaps (§4.1); an application
   that wants a bounded resident set implements paging itself with
   userfaultfd (§3.1). This example sorts 64 KiB of records while keeping
   at most a 16 KiB window of each file resident, using the classic
   external merge sort: sort window-sized chunks in place, then k-way
   merge through the windows. Run with: dune exec examples/external_sort.exe *)

module F = O1mem.Fom
module U = O1mem.Uswap

let ints = 16 * 1024 (* 64 KiB of 4-byte records *)
let window_pages = 4 (* 16 KiB resident per file *)

let read_int u ~idx =
  let off = idx * 4 in
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (U.read_byte u ~off:(off + i))
  done;
  Int32.to_int (Bytes.get_int32_le b 0)

let write_int u ~idx v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  for i = 0 to 3 do
    U.write_byte u ~off:(idx * 4 + i) (Bytes.get b i)
  done

let () =
  let kernel = Os.Kernel.create () in
  let fom = O1mem.Fom.create kernel () in
  let proc = Os.Kernel.create_process kernel () in
  let fs = F.fs fom in

  (* The unsorted dataset, written through the file API. *)
  let data = Fs.Memfs.create_file fs "/data" ~persistence:Fs.Inode.Persistent in
  Fs.Memfs.extend fs data ~bytes_wanted:(ints * 4);
  let rng = Sim.Rng.create ~seed:7 in
  let buf = Bytes.create (ints * 4) in
  for i = 0 to ints - 1 do
    Bytes.set_int32_le buf (i * 4) (Int32.of_int (Sim.Rng.int rng 1_000_000))
  done;
  Fs.Memfs.write_file fs data ~off:0 (Bytes.to_string buf);
  let out = Fs.Memfs.create_file fs "/sorted" ~persistence:Fs.Inode.Persistent in
  Fs.Memfs.extend fs out ~bytes_wanted:(ints * 4);

  let u_in = U.create fom proc ~backing_path:"/data" ~window_pages in
  let u_out = U.create fom proc ~backing_path:"/sorted" ~window_pages in
  Printf.printf "Sorting %d records (%s) through two %s windows\n" ints
    (Sim.Units.bytes_to_string (ints * 4))
    (Sim.Units.bytes_to_string (window_pages * Sim.Units.page_size));

  (* Phase 1: sort each window-sized chunk in place. The chunk fits the
     resident window, so this phase faults each page in exactly once. *)
  let chunk_ints = window_pages * Sim.Units.page_size / 4 in
  let chunks = (ints + chunk_ints - 1) / chunk_ints in
  for c = 0 to chunks - 1 do
    let base = c * chunk_ints in
    let n = min chunk_ints (ints - base) in
    let a = Array.init n (fun i -> read_int u_in ~idx:(base + i)) in
    Array.sort compare a;
    Array.iteri (fun i v -> write_int u_in ~idx:(base + i) v) a
  done;
  Printf.printf "Phase 1: %d sorted chunks; input window took %d faults, %d writebacks\n"
    chunks (U.faults u_in) (U.writebacks u_in);

  (* Phase 2: k-way merge of the sorted chunks into the output file.
     Each chunk cursor advances sequentially, so the window replacement
     stays civilized even with k streams. *)
  let cursors = Array.init chunks (fun c -> c * chunk_ints) in
  let limits = Array.init chunks (fun c -> min ((c + 1) * chunk_ints) ints) in
  for dst = 0 to ints - 1 do
    let best = ref (-1) in
    for c = 0 to chunks - 1 do
      if cursors.(c) < limits.(c) then
        if !best < 0 || read_int u_in ~idx:cursors.(c) < read_int u_in ~idx:cursors.(!best) then
          best := c
    done;
    write_int u_out ~idx:dst (read_int u_in ~idx:cursors.(!best));
    cursors.(!best) <- cursors.(!best) + 1
  done;
  U.destroy u_in;
  U.destroy u_out;

  (* Verify through the plain file API. *)
  let sorted = Fs.Memfs.read_file fs out ~off:0 ~len:(ints * 4) in
  let prev = ref min_int in
  let ok = ref true in
  for i = 0 to ints - 1 do
    let v = Int32.to_int (Bytes.get_int32_le sorted (i * 4)) in
    if v < !prev then ok := false;
    prev := v
  done;
  Printf.printf "Phase 2: merged; output is %s\n" (if !ok then "SORTED" else "BROKEN");
  assert !ok;
  Printf.printf
    "Total user-level paging: %d faults, %d evictions, %d dirty write-backs - all\n"
    (Sim.Stats.get (Os.Kernel.stats kernel) "userfault")
    (Sim.Stats.get (Os.Kernel.stats kernel) "userfault_evict")
    (U.writebacks u_in + U.writebacks u_out);
  Printf.printf "paid by this one opted-in process; the kernel ran no reclaim machinery.\n";
  Printf.printf "Simulated time: %.1f ms\n"
    (Sim.Cost_model.cycles_to_ms
       (Sim.Clock.model (Os.Kernel.clock kernel))
       (Sim.Clock.now (Os.Kernel.clock kernel)))
