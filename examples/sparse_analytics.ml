(* Sparse analytics over a large in-memory dataset: the workload the
   paper uses to motivate O(1) mapping ("for sparse access to large data
   sets, the fundamental linear operation cost remains").

   A 1 GiB dataset file is probed at 50,000 random records. Three
   configurations: baseline demand paging, file-only memory on classic
   page tables, and file-only memory with range translations (one range
   TLB entry covers the whole dataset). Run with:
   dune exec examples/sparse_analytics.exe *)

module K = Os.Kernel
module F = O1mem.Fom

let dataset = Sim.Units.gib 1
let probes = 50_000

let machine () =
  K.create
    ~config:
      { K.default_config with K.dram_bytes = Sim.Units.gib 2; nvm_bytes = Sim.Units.gib 4 }
    ()

let time_us k f =
  let clock = K.clock k in
  let before = Sim.Clock.now clock in
  f ();
  Sim.Clock.us clock (Sim.Clock.elapsed clock ~since:before)

let probe_offsets () =
  let rng = Sim.Rng.create ~seed:42 in
  List.init probes (fun _ -> Sim.Rng.int rng (dataset / 64) * 64)

let run_baseline offs =
  let k = machine () in
  let p = K.create_process k () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/dataset" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:dataset;
  let va =
    K.mmap_file k p ~fs ~path:"/dataset" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:false ()
  in
  let t = time_us k (fun () -> List.iter (fun off -> K.access k p ~va:(va + off) ~write:false) offs) in
  (t, Sim.Stats.get (K.stats k) "page_fault", Sim.Stats.get (K.stats k) "walk_refs")

let run_fom strategy range offs =
  let k = machine () in
  let fom = F.create k () in
  let p = K.create_process k ~range_translations:range () in
  let r = F.alloc fom p ~name:"/dataset" ~strategy ~len:dataset ~prot:Hw.Prot.rw () in
  let t =
    time_us k (fun () ->
        List.iter (fun off -> F.access fom p ~va:(r.F.va + off) ~write:false) offs)
  in
  (t, Sim.Stats.get (K.stats k) "tlb_miss", Sim.Stats.get (K.stats k) "range_tlb_miss")

let () =
  Printf.printf "Probing %d random 64B records in a %s mapped dataset\n\n" probes
    (Sim.Units.bytes_to_string dataset);
  let offs = probe_offsets () in
  let t_base, faults, refs = run_baseline offs in
  Printf.printf "%-40s %12.1f us  (%d demand faults, %d walk refs)\n"
    "baseline mmap (demand paging):" t_base faults refs;
  let t_pt, misses, _ = run_fom F.Per_page false offs in
  Printf.printf "%-40s %12.1f us  (0 faults, %d TLB misses)\n"
    "file-only memory, page tables:" t_pt misses;
  let t_huge, misses_huge, _ = run_fom F.Huge_pages false offs in
  Printf.printf "%-40s %12.1f us  (0 faults, %d TLB misses via huge pages)\n"
    "file-only memory, huge pages:" t_huge misses_huge;
  let t_rt, _, range_misses = run_fom F.Range_translation true offs in
  Printf.printf "%-40s %12.1f us  (%d range-TLB misses: the whole dataset is one entry)\n"
    "file-only memory, range translations:" t_rt range_misses;
  Printf.printf "\nSpeedup over baseline: page tables %.1fx, huge pages %.1fx, ranges %.1fx\n"
    (t_base /. t_pt) (t_base /. t_huge) (t_base /. t_rt)
