(* Quickstart: boot a simulated machine, allocate memory as a file,
   touch it with zero page faults, survive a power failure, and read the
   data back. Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A machine: 1 GiB DRAM + 4 GiB persistent memory (NVM). *)
  let kernel = Os.Kernel.create () in
  let fom = O1mem.Fom.create kernel () in
  let proc = Os.Kernel.create_process kernel () in
  Printf.printf "Booted: %d MiB DRAM, %d MiB NVM\n"
    (Physmem.Phys_mem.dram_frames (Os.Kernel.mem kernel) * Sim.Units.page_size / Sim.Units.mib 1)
    (Physmem.Phys_mem.nvm_frames (Os.Kernel.mem kernel) * Sim.Units.page_size / Sim.Units.mib 1);

  (* 2. Allocate 16 MiB of memory *as a named file* and map it whole. *)
  let region =
    O1mem.Fom.alloc fom proc ~name:"/my-dataset" ~len:(Sim.Units.mib 16) ~prot:Hw.Prot.rw ()
  in
  Printf.printf "Allocated %s at VA %#x backed by file %s (strategy: %s)\n"
    (Sim.Units.bytes_to_string region.O1mem.Fom.len)
    region.O1mem.Fom.va region.O1mem.Fom.path
    (O1mem.Fom.strategy_name region.O1mem.Fom.strategy);

  (* 3. Touch every page. File-only memory is fully mapped up front, so
     this never takes a page fault. *)
  let touched =
    O1mem.Fom.access_range fom proc ~va:region.O1mem.Fom.va ~len:region.O1mem.Fom.len
      ~write:true ~stride:Sim.Units.page_size
  in
  Printf.printf "Touched %d pages; page faults taken: %d\n" touched
    (Sim.Stats.get (Os.Kernel.stats kernel) "page_fault");

  (* 4. Write some real data through the file API and mark it persistent. *)
  let fs = O1mem.Fom.fs fom in
  Fs.Memfs.write_file fs region.O1mem.Fom.ino ~off:0 "records: 42";
  O1mem.Fom.persist fom region;
  Printf.printf "Wrote data and marked the file persistent.\n";

  (* 5. Power failure. All processes die; DRAM is gone. *)
  let report = O1mem.Persistence.crash_and_recover fom in
  Printf.printf "Crash! Recovery scanned %d files in %.1f us (O(files), not O(bytes)).\n"
    report.O1mem.Persistence.files_scanned
    (Sim.Clock.us (Os.Kernel.clock kernel) report.O1mem.Persistence.recovery_cycles);

  (* 6. The named file survived, data intact; map it into a new process. *)
  let proc2 = Os.Kernel.create_process kernel () in
  let region2 = O1mem.Fom.map_path fom proc2 "/my-dataset" in
  let ino = region2.O1mem.Fom.ino in
  let back = Fs.Memfs.read_file fs ino ~off:0 ~len:11 in
  Printf.printf "After reboot, /my-dataset reads: %S\n" (Bytes.to_string back);

  (* 7. Whole-file operations: one call changes protection for all 16 MiB. *)
  let region2 = O1mem.Fom.protect fom proc2 region2 ~prot:Hw.Prot.r in
  Printf.printf "Downgraded the whole mapping to read-only in one O(windows) call.\n";
  (try
     O1mem.Fom.access fom proc2 ~va:region2.O1mem.Fom.va ~write:true;
     print_endline "BUG: write should have been denied"
   with Os.Fault.Segfault _ -> Printf.printf "Write correctly denied after protect.\n");

  Printf.printf "Total simulated time: %.1f us\n"
    (Sim.Clock.us (Os.Kernel.clock kernel) (Sim.Clock.now (Os.Kernel.clock kernel)))
