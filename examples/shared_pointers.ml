(* Pointer-based data structures shared across processes — and across
   reboots — without serialization or pointer swizzling.

   Physically based mappings (paper §4.2) give every process the same
   virtual address for a physical byte: VA = PA + offset. So a linked
   list built in PBM memory by one process can be traversed by another
   using the raw embedded pointers; and because the backing is a
   persistent file whose extents stay at the same physical addresses, the
   pointers are *still* valid after a power failure.

   Run with: dune exec examples/shared_pointers.exe *)

module F = O1mem.Fom
module PM = Physmem.Phys_mem

(* Node layout: 8-byte next pointer | 8-byte value, in PBM memory. *)
let node_size = 16

let write_i64 mem ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  PM.write mem ~addr (Bytes.to_string b)

let read_i64 mem ~addr = Int64.to_int (Bytes.get_int64_le (PM.read mem ~addr ~len:8) 0)

let () =
  let kernel = Os.Kernel.create () in
  let fom = O1mem.Fom.create kernel () in
  let pbm = O1mem.Pbm.create kernel in
  let mem = Os.Kernel.mem kernel in
  let fs = F.fs fom in

  (* A persistent file provides the physical extent. *)
  let ino = Fs.Memfs.create_file fs "/list-heap" ~persistence:Fs.Inode.Persistent in
  Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib 64);
  let extent = List.hd (Fs.Memfs.file_extents fs ino) in
  let base_pa = Physmem.Frame.to_addr extent.Fs.Extent.start in
  let va =
    O1mem.Pbm.map_region pbm ~first:extent.Fs.Extent.start ~count:extent.Fs.Extent.count
      ~prot:Hw.Prot.rw
  in
  Printf.printf "PBM region at VA %#x (= PA %#x + fixed offset)\n" va base_pa;

  (* Process A builds a 5-node linked list using *virtual* pointers. *)
  let producer = Os.Kernel.create_process kernel () in
  O1mem.Pbm.attach pbm producer;
  let node i = va + (i * node_size) in
  for i = 0 to 4 do
    (* next pointer: VA of node i+1, or 0 for end-of-list. *)
    let pa = O1mem.Pbm.addr_of_va (node i) in
    write_i64 mem ~addr:pa (if i = 4 then 0 else node (i + 1));
    write_i64 mem ~addr:(pa + 8) ((i + 1) * 111)
  done;
  Printf.printf "Process %d built a linked list of 5 nodes, head at %#x\n"
    producer.Os.Proc.pid (node 0);

  (* Process B attaches (one pointer write!) and chases the raw pointers. *)
  let consumer = Os.Kernel.create_process kernel () in
  O1mem.Pbm.attach pbm consumer;
  let traverse () =
    (* Translate through the consumer's own page table: same VA works. *)
    let table = Os.Address_space.page_table consumer.Os.Proc.aspace in
    let rec walk ptr acc =
      if ptr = 0 then List.rev acc
      else
        match Hw.Page_table.lookup table ~va:ptr with
        | Some (pa, _) ->
          let next = read_i64 mem ~addr:pa in
          let value = read_i64 mem ~addr:(pa + 8) in
          walk next (value :: acc)
        | None -> failwith "pointer did not translate"
    in
    walk (node 0) []
  in
  let values = traverse () in
  Printf.printf "Process %d traversed it untranslated: [%s]\n" consumer.Os.Proc.pid
    (String.concat "; " (List.map string_of_int values));
  assert (values = [ 111; 222; 333; 444; 555 ]);

  (* Power failure. The file is persistent; its extents (and therefore the
     physical addresses the pointers encode) survive. *)
  ignore (O1mem.Persistence.crash_and_recover fom);
  Printf.printf "\n*** crash + recovery ***\n\n";
  let ino' = Option.get (Fs.Memfs.lookup fs "/list-heap") in
  let extent' = List.hd (Fs.Memfs.file_extents fs ino') in
  assert (extent'.Fs.Extent.start = extent.Fs.Extent.start);
  let pbm' = O1mem.Pbm.create kernel in
  let va' =
    O1mem.Pbm.map_region pbm' ~first:extent'.Fs.Extent.start ~count:extent'.Fs.Extent.count
      ~prot:Hw.Prot.rw
  in
  assert (va' = va);
  let reborn = Os.Kernel.create_process kernel () in
  O1mem.Pbm.attach pbm' reborn;
  let rec walk ptr acc =
    if ptr = 0 then List.rev acc
    else
      match Hw.Page_table.lookup (Os.Address_space.page_table reborn.Os.Proc.aspace) ~va:ptr with
      | Some (pa, _) -> walk (read_i64 mem ~addr:pa) (read_i64 mem ~addr:(pa + 8) :: acc)
      | None -> failwith "pointer did not survive"
  in
  let values' = walk (node 0) [] in
  Printf.printf "After reboot, a new process chased the same pointers: [%s]\n"
    (String.concat "; " (List.map string_of_int values'));
  assert (values' = values);
  Printf.printf "No serialization, no swizzling: VA = PA + offset is stable across\n";
  Printf.printf "processes and reboots. (What single-address-space OSes promised [4].)\n"
