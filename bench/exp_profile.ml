(* P1 — where do the cycles go?

   Runs the allocation-churn workload with a cycle-attribution profiler
   attached to the machine trace, so every syscall/fault/TLB/zeroing
   span shows up in a call tree. The profiler is attached AFTER machine
   and heap setup: boot-time cycles (struct page init etc.) are out of
   scope, and the attributed fraction measures how much of the measured
   workload's cycles land in named spans.

   Everything runs on the virtual clock with a fixed seed, so the
   exported profile is byte-identical across runs and hosts. *)

module K = Os.Kernel

let default_ops = 400
let sample_interval_cycles = 50_000

let attach k =
  let profile = Sim.Profile.create ~clock:(K.clock k) () in
  Sim.Trace.attach_profile (K.trace k) profile;
  Sim.Stats.set_sample_interval (K.stats k) ~cycles:sample_interval_cycles;
  profile

(* Build machine + heap, attach the profiler, replay the churn trace.
   Returns the kernel (for gauges and procfs rollups) and the profile. *)
let run_churn ?(ops = default_ops) backend =
  let rng = Sim.Rng.create ~seed:42 in
  let trace = Wl.Churn.generate ~rng ~ops ~max_bytes:(Sim.Units.kib 64) () in
  let k = Bench_env.kernel ~dram:(Sim.Units.gib 1) ~nvm:(Sim.Units.gib 1) () in
  (match backend with
  | `Malloc ->
    let p = K.create_process k () in
    let h = Heap.Malloc_sim.create k p in
    let _profile_from_here = attach k in
    ignore
      (Wl.Churn.run trace
         {
           Wl.Churn.h_malloc = (fun ~bytes -> Heap.Malloc_sim.malloc h ~bytes);
           h_free = (fun va -> Heap.Malloc_sim.free h va);
           h_touch =
             (fun ~va ~bytes ->
               ignore
                 (K.access_range k p ~va ~len:(max 1 bytes) ~write:true
                    ~stride:Sim.Units.page_size));
         })
  | `Fom ->
    let fom = O1mem.Fom.create k () in
    let p = K.create_process k () in
    let h = Heap.Fom_heap.create fom p () in
    let _profile_from_here = attach k in
    ignore
      (Wl.Churn.run trace
         {
           Wl.Churn.h_malloc = (fun ~bytes -> Heap.Fom_heap.malloc h ~bytes);
           h_free = (fun va -> Heap.Fom_heap.free h va);
           h_touch =
             (fun ~va ~bytes ->
               ignore
                 (O1mem.Fom.access_range fom p ~va ~len:(max 1 bytes) ~write:true
                    ~stride:Sim.Units.page_size));
         }));
  (k, Sim.Trace.profile (K.trace k))

(* Deterministic export for the bench JSON: attribution summary, full
   call tree, and the gauge registry after the profiled churn_fom run. *)
let to_json ?(ops = default_ops) () =
  let k, profile = run_churn ~ops `Fom in
  Sim.Json.Obj
    [
      ("workload", Sim.Json.String "churn_fom");
      ("ops", Sim.Json.Int ops);
      ("profile", Sim.Profile.to_json profile);
      ("gauges", Sim.Stats.gauges_to_json (K.stats k));
    ]

let run ?(ops = default_ops) () =
  Bench_env.print_header "P1"
    "Cycle attribution for the churn workload: call tree over the virtual clock.";
  List.iter
    (fun (name, backend) ->
      let _, profile = run_churn ~ops backend in
      Printf.printf "--- churn_%s (%d ops) ---\n" name ops;
      Format.printf "%a@." Sim.Profile.pp profile)
    [ ("malloc", `Malloc); ("fom", `Fom) ]
