(* A small deterministic workload that exercises every traced hot path —
   TLB lookups and shootdowns, page walks, fault handling, range-table
   ops, file create/extend/truncate, FOM map/graft/erase — and exports the
   machine's stats and per-operation latency distributions as JSON.

   Everything here runs on the virtual clock, so the output is identical
   across runs and hosts: the bench harness writes it to BENCH_<date>.json
   to give the repo a perf trajectory across PRs. *)

module K = Os.Kernel

let run_workload () =
  let k = Bench_env.kernel () in
  (* Anonymous VM: demand faults on first touch, TLB hits on the second
     pass, per-page teardown on munmap. *)
  let p = K.create_process k () in
  let len = Sim.Units.kib 256 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  ignore (K.access_range k p ~va ~len ~write:false ~stride:Sim.Units.page_size);
  K.munmap k p ~va ~len;
  (* A small mapping whose unmap stays below the full-flush threshold:
     exercises the per-page INVLPG shootdown path. *)
  let small = Sim.Units.kib 32 in
  let va2 = K.mmap_anon k p ~len:small ~prot:Hw.Prot.rw ~populate:true in
  K.munmap k p ~va:va2 ~len:small;
  (* The frames freed above are dirty: launder some in "idle time", then
     re-populate so the fault path hits the pre-zeroed cache. *)
  ignore (K.background_zero k ~budget_frames:32);
  let va3 = K.mmap_anon k p ~len:small ~prot:Hw.Prot.rw ~populate:true in
  K.munmap k p ~va:va3 ~len:small;
  (* File metadata: create/extend/truncate/unlink a batch of files. *)
  let fs = K.tmpfs k in
  for i = 0 to 7 do
    let path = Printf.sprintf "/metrics.%d" i in
    let ino = Fs.Memfs.create_file fs path ~persistence:Fs.Inode.Volatile in
    Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib (16 * (i + 1)));
    Fs.Memfs.truncate fs ino ~bytes:(Sim.Units.kib 4);
    Fs.Memfs.unlink fs path
  done;
  (* FOM: range translations (range-table insert/walk/remove + range-TLB
     traffic) and shared-subtree grafts. *)
  let fom = O1mem.Fom.create k () in
  let p2 = K.create_process k ~range_translations:true () in
  let r =
    O1mem.Fom.alloc fom p2 ~strategy:O1mem.Fom.Range_translation ~len:(Sim.Units.mib 2)
      ~prot:Hw.Prot.rw ()
  in
  ignore
    (O1mem.Fom.access_range fom p2 ~va:r.O1mem.Fom.va ~len:r.O1mem.Fom.len ~write:true
       ~stride:Sim.Units.page_size);
  O1mem.Fom.free fom p2 r;
  let g =
    O1mem.Fom.alloc fom p2 ~strategy:O1mem.Fom.Shared_subtree ~len:(Sim.Units.mib 4)
      ~prot:Hw.Prot.rw ()
  in
  ignore
    (O1mem.Fom.access_range fom p2 ~va:g.O1mem.Fom.va ~len:g.O1mem.Fom.len ~write:false
       ~stride:Sim.Units.huge_2m);
  O1mem.Fom.free fom p2 g;
  k

(* SMP: a 4-core, 2-node machine where every process migrates between
   touching its pages and unmapping them, so each teardown is a
   cross-core shootdown. Exports per-core IPI/TLB/busy counters — the
   measured traffic that replaced the analytic (cores-1)*ipi term. *)
let run_smp_workload () =
  let k = Bench_env.kernel ~cores:4 ~numa_nodes:2 () in
  let procs = List.init 4 (fun _ -> K.create_process k ()) in
  List.iteri
    (fun i p ->
      let len = Sim.Units.kib 64 in
      let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
      ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
      K.migrate k p ~core:((i + 1) mod 4);
      K.munmap k p ~va ~len)
    procs;
  k

let smp_to_json () =
  let k = run_smp_workload () in
  let smp = K.smp k in
  let stats = K.stats k in
  let stat n = Sim.Json.Int (Sim.Stats.get stats n) in
  let per_core =
    List.init (Hw.Smp.cores smp) (fun i ->
        let c = Hw.Smp.core smp i in
        ( Printf.sprintf "core%d" i,
          Sim.Json.Obj
            [
              ("numa_node", Sim.Json.Int c.Hw.Smp.numa_node);
              ("ipi_sent", Sim.Json.Int c.Hw.Smp.ipi_sent);
              ("ipi_received", Sim.Json.Int c.Hw.Smp.ipi_received);
              ("ipi_acked", Sim.Json.Int c.Hw.Smp.ipi_acked);
              ("busy_cycles", Sim.Json.Int c.Hw.Smp.busy_cycles);
              ("tlb_shootdowns", Sim.Json.Int (Hw.Tlb.shootdowns c.Hw.Smp.tlb));
              ("tlb_flushes", Sim.Json.Int (Hw.Tlb.flushes c.Hw.Smp.tlb));
            ] ))
  in
  Sim.Json.Obj
    ([
       ("cores", Sim.Json.Int (Hw.Smp.cores smp));
       ("numa_nodes", Sim.Json.Int (Hw.Smp.numa_nodes smp));
       ("clock_cycles", Sim.Json.Int (Sim.Clock.now (K.clock k)));
       ("ipi_sent", stat "ipi_sent");
       ("ipi_acked", stat "ipi_acked");
       ("migrations", stat "migration");
       ("numa_local_alloc", stat "numa_local_alloc");
       ("numa_remote_alloc", stat "numa_remote_alloc");
       ("numa_remote_ref", stat "numa_remote_ref");
     ]
    @ per_core)

let schema_version = "o1mem.metrics/9"

(* Provenance: everything a reader needs to decide whether two exports are
   comparable. Runs under different cost models or trace capacities would
   differ for configuration reasons, not code reasons, so `bench-diff`
   refuses to compare them. *)
let provenance k =
  let cfg = K.config k in
  Sim.Json.Obj
    [
      ("cost_model", Sim.Cost_model.to_json cfg.K.cost_model);
      ("trace_capacity", Sim.Json.Int cfg.K.trace_capacity);
    ]

let to_json ?events_limit k =
  Sim.Json.Obj
    [
      ("schema", Sim.Json.String schema_version);
      ("provenance", provenance k);
      ("clock_cycles", Sim.Json.Int (Sim.Clock.now (K.clock k)));
      ("stats", Sim.Stats.to_json (K.stats k));
      ("trace", Sim.Trace.to_json ?events_limit (K.trace k));
      ("complexity", Exp_complexity.to_json ());
      ("profile", Exp_profile.to_json ());
      ("faults", Exp_faults.to_json ());
      ("store", Exp_store.to_json ());
      ("smp", smp_to_json ());
      ("causal", Exp_causal.to_json ());
    ]

let run_to_json ?events_limit () = to_json ?events_limit (run_workload ())
