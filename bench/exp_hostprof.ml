(* H1 — what does the host pay?

   Runs the allocation-churn workload with BOTH attribution planes
   attached to the machine trace: Profile (virtual cycles) and Hostprof
   (monotonic host nanoseconds + GC allocated words). Because both ride
   the same Trace.prof_span combinator, the call trees share their paths
   and every hot span gets host-ns/op, allocated-words/op, and a
   host-ns-per-simulated-cycle ratio.

   Each driver op (malloc/free/touch) is wrapped in a top-level span, so
   the whole measured workload — driver and kernel alike — lands in the
   tree; the attributed fraction should be ~1.0. Self-gauges (OCaml heap
   words, GC collections, RSS) are sampled inside the op span so the
   sampling cost is attributed too, not hidden in the remainder.

   Like P1, the planes attach AFTER machine and heap setup: boot cost is
   out of scope. Word and cycle counts are deterministic for a fixed
   binary; only the ns values are host noise. *)

module K = Os.Kernel

let default_ops = 400

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Resident set from /proc/self/statm (second field, in pages). Assumes
   4 KiB host pages; good enough for a gauge. 0 where /proc is absent. *)
let read_rss_kb () =
  match open_in "/proc/self/statm" with
  | exception _ -> 0
  | ic ->
    let line = try input_line ic with _ -> "" in
    close_in ic;
    (match String.split_on_char ' ' line with
    | _ :: resident :: _ -> (try int_of_string resident * 4 with _ -> 0)
    | _ -> 0)

let attach k =
  let profile = Sim.Profile.create ~clock:(K.clock k) () in
  Sim.Trace.attach_profile (K.trace k) profile;
  let hp = Sim.Hostprof.create ~now_ns ~vclock:(K.clock k) ~rss_kb:read_rss_kb () in
  Sim.Trace.attach_hostprof (K.trace k) hp;
  hp

(* Build machine + heap, attach both planes, replay the churn trace with
   each driver op wrapped in its own top-level span. Returns the kernel
   and the host profiler. *)
let run_churn ?(ops = default_ops) backend =
  let rng = Sim.Rng.create ~seed:42 in
  let trace = Wl.Churn.generate ~rng ~ops ~max_bytes:(Sim.Units.kib 64) () in
  let k = Bench_env.kernel ~dram:(Sim.Units.gib 1) ~nvm:(Sim.Units.gib 1) () in
  let tr = K.trace k in
  (match backend with
  | `Malloc ->
    let p = K.create_process k () in
    let h = Heap.Malloc_sim.create k p in
    let hp = attach k in
    let op name f =
      Sim.Trace.prof_span tr name @@ fun () ->
      let r = f () in
      Sim.Hostprof.sample_self hp;
      r
    in
    ignore
      (Wl.Churn.run trace
         {
           Wl.Churn.h_malloc = (fun ~bytes -> op "malloc" (fun () -> Heap.Malloc_sim.malloc h ~bytes));
           h_free = (fun va -> op "free" (fun () -> Heap.Malloc_sim.free h va));
           h_touch =
             (fun ~va ~bytes ->
               op "touch" (fun () ->
                   ignore
                     (K.access_range k p ~va ~len:(max 1 bytes) ~write:true
                        ~stride:Sim.Units.page_size)));
         })
  | `Fom ->
    let fom = O1mem.Fom.create k () in
    let p = K.create_process k () in
    let h = Heap.Fom_heap.create fom p () in
    let hp = attach k in
    let op name f =
      Sim.Trace.prof_span tr name @@ fun () ->
      let r = f () in
      Sim.Hostprof.sample_self hp;
      r
    in
    ignore
      (Wl.Churn.run trace
         {
           Wl.Churn.h_malloc = (fun ~bytes -> op "malloc" (fun () -> Heap.Fom_heap.malloc h ~bytes));
           h_free = (fun va -> op "free" (fun () -> Heap.Fom_heap.free h va));
           h_touch =
             (fun ~va ~bytes ->
               op "touch" (fun () ->
                   ignore
                     (O1mem.Fom.access_range fom p ~va ~len:(max 1 bytes) ~write:true
                        ~stride:Sim.Units.page_size)));
         }));
  (k, Sim.Trace.hostprof tr)

(* The "host" section of the bench JSON: one Hostprof export per churn
   backend. Word/call/vcycle counts are deterministic per binary —
   bench-diff gates on those under --gate-host-alloc; ns is report-only. *)
let to_json ?(ops = default_ops) () =
  let backend_json backend =
    let _, hp = run_churn ~ops backend in
    Sim.Hostprof.to_json hp
  in
  Sim.Json.Obj
    [
      ("ops", Sim.Json.Int ops);
      ("churn_malloc", backend_json `Malloc);
      ("churn_fom", backend_json `Fom);
    ]

let run ?(ops = default_ops) () =
  Bench_env.print_header "H1"
    "Host-side cost attribution: wall-clock ns and GC allocated words per span.";
  List.iter
    (fun (name, backend) ->
      let _, hp = run_churn ~ops backend in
      Printf.printf "--- churn_%s (%d ops) ---\n" name ops;
      Format.printf "%a@." Sim.Hostprof.pp hp)
    [ ("malloc", `Malloc); ("fom", `Fom) ]
