(* T1 — where does the makespan go?

   The 4-core migration workload from the SMP section, re-run with the
   causal plane attached: every process touches its pages, migrates to
   the next core, touches them again (now partly remote in NUMA terms)
   and unmaps — each teardown a cross-core shootdown. The causal graph
   collected along the way decomposes the makespan (max per-core busy
   cycles) into work / IPI-wait / scheduler / remote-NUMA shares, and
   the critical-path engine reports the longest dependent chain.

   On top of the workload, two C1-style sweeps make the paper's claim
   about batching machine-checkable on the *graph* rather than on
   cycles: the critical path of a per-page shootdown grows one
   send→deliver→ack hop group per page (O(pages)), while a batched
   shootdown keeps one IPI round whatever the batch size (O(1) hops).

   Everything runs on the virtual clock: identical output across runs
   and hosts. *)

module K = Os.Kernel
module C = Sim.Complexity
open Bench_env

(* Gauge series cadence for the per-core busy counters: fine enough to
   see per-process phases on a ~1M-cycle workload, coarse enough to stay
   far from the 1024-point series bound. *)
let sample_interval = 20_000

let attach k =
  let causal = Sim.Causal.create ~clock:(K.clock k) () in
  Sim.Trace.attach_causal (K.trace k) causal;
  Sim.Stats.set_sample_interval (K.stats k) ~cycles:sample_interval;
  causal

(* The SMP bench workload (exp_metrics) plus a post-migration read pass:
   after the hop, the process's frames live on its old core's NUMA node,
   so the second pass generates the remote references T1 attributes. *)
let run_migration ?(cores = 4) ?(numa_nodes = 2) () =
  let k = kernel ~cores ~numa_nodes () in
  let causal = attach k in
  let procs = List.init cores (fun _ -> K.create_process k ()) in
  List.iteri
    (fun i p ->
      let len = Sim.Units.kib 64 in
      let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
      ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
      K.migrate k p ~core:((i + 1) mod cores);
      ignore (K.access_range k p ~va ~len ~write:false ~stride:Sim.Units.page_size);
      K.munmap k p ~va ~len)
    procs;
  (k, causal)

(* ---------------------- critical-path sweeps ----------------------- *)

(* A standalone shootdown rig (exp_complexity's [smp_env] with the trace
   and causal plane live): [cores] cores all caching [pages]
   translations of address space 1, so every core is a shootdown
   target. [f] runs the teardown; the measurement is the causal graph's
   longest chain in HOPS, not cycles — per-page INVLPG work between
   deliver and ack makes even the batched path's *cycles* grow with the
   batch, but its hop count cannot. *)
let causal_env ~cores ~pages f =
  let clock = Sim.Clock.create Sim.Cost_model.default in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create ~clock () in
  let causal = Sim.Causal.create ~clock () in
  Sim.Trace.attach_causal trace causal;
  let next = ref 0 in
  let alloc_frame () =
    incr next;
    !next
  in
  let table = Hw.Page_table.create ~clock ~stats ~levels:4 ~alloc_frame in
  let smp = Hw.Smp.create ~clock ~stats ~trace ~cores () in
  let mmu = Hw.Mmu.create ~clock ~stats ~trace ~table ~smp ~asid:1 () in
  for i = 0 to pages - 1 do
    Hw.Page_table.map_page table ~va:(i * Sim.Units.page_size) ~pfn:(1000 + i)
      ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small
  done;
  for c = 0 to cores - 1 do
    Hw.Mmu.set_core mmu c;
    for i = 0 to pages - 1 do
      ignore (Hw.Mmu.translate mmu ~va:(i * Sim.Units.page_size) ~write:false ~exec:false)
    done
  done;
  Hw.Mmu.set_core mmu 0;
  (* Only the teardown's own interactions count. *)
  Sim.Causal.reset causal;
  f mmu pages;
  (Sim.Causal.critical_path causal).Sim.Causal.hops

(* 1 .. 32 pages: below the 33-page full-flush threshold, so the
   per-page path really is one IPI round per page. *)
let pages_sweep = [ 1; 2; 4; 8; 16; 32 ]

let per_page_hops pages =
  causal_env ~cores:4 ~pages (fun mmu pages ->
      for i = 0 to pages - 1 do
        Hw.Mmu.invalidate_page mmu ~va:(i * Sim.Units.page_size)
      done)

let batched_hops pages =
  causal_env ~cores:4 ~pages (fun mmu pages ->
      let batch = Hw.Tlb_batch.create mmu in
      Hw.Tlb_batch.add batch ~va:0 ~len:(pages * Sim.Units.page_size);
      Hw.Tlb_batch.flush batch)

type sweep_result = {
  sw_name : string;
  sw_expected : C.cls;
  sw_points : (int * int) list;
  sw_fit : C.fit;
}

let run_sweep name expected measure =
  let points = List.map (fun n -> (n, measure n)) pages_sweep in
  { sw_name = name; sw_expected = expected; sw_points = points; sw_fit = C.fit points }

type t = { kernel : K.t; causal : Sim.Causal.t; sweeps : sweep_result list }

(* Deterministic, so one run per process serves the JSON exporter, the
   console report, and the timeline alike. *)
let all =
  lazy
    (let k, causal = run_migration () in
     {
       kernel = k;
       causal;
       sweeps =
         [
           run_sweep "critical_path_per_page_hops" C.Linear per_page_hops;
           run_sweep "critical_path_batched_hops" C.Constant batched_hops;
         ];
     })

let results () = Lazy.force all

(* ------------------------------ export ----------------------------- *)

let sweep_to_json r =
  let fit_fields = match C.fit_to_json r.sw_fit with Sim.Json.Obj f -> f | _ -> [] in
  Sim.Json.Obj
    (("expected", Sim.Json.String (C.cls_name r.sw_expected))
    :: ("match", Sim.Json.Bool (r.sw_fit.C.cls = r.sw_expected))
    :: fit_fields
    @ [
        ("unit", Sim.Json.String "pages");
        ("hops_min", Sim.Json.Int (snd (List.hd r.sw_points)));
        ("hops_max", Sim.Json.Int (snd (List.nth r.sw_points (List.length r.sw_points - 1))));
      ])

let to_json () =
  let r = results () in
  let cau = r.causal in
  let frac = Sim.Causal.attributed_fraction cau in
  let cp = Sim.Causal.critical_path cau in
  let mk =
    match Sim.Causal.makespan_core cau with Some b -> b.Sim.Causal.bd_core | None -> -1
  in
  Sim.Json.Obj
    [
      ("workload", Sim.Json.String "smp_migration");
      ("cores", Sim.Json.Int (Hw.Smp.cores (K.smp r.kernel)));
      ("numa_nodes", Sim.Json.Int (Hw.Smp.numa_nodes (K.smp r.kernel)));
      ("nodes", Sim.Json.Int (Sim.Causal.node_count cau));
      ("edges", Sim.Json.Int (Sim.Causal.edge_count cau));
      ("makespan_cycles", Sim.Json.Int (Sim.Causal.makespan cau));
      ("makespan_core", Sim.Json.Int mk);
      ("attributed_fraction", Sim.Json.Float frac);
      ("attributed", Sim.Json.Bool (frac >= 0.95));
      ( "per_core",
        Sim.Json.Obj
          (List.map
             (fun b ->
               ( Printf.sprintf "core%d" b.Sim.Causal.bd_core,
                 Sim.Json.Obj
                   [
                     ("busy", Sim.Json.Int b.Sim.Causal.bd_busy);
                     ("work", Sim.Json.Int b.Sim.Causal.work);
                     ("ipi_wait", Sim.Json.Int b.Sim.Causal.ipi_wait);
                     ("sched", Sim.Json.Int b.Sim.Causal.sched);
                     ("numa_remote", Sim.Json.Int b.Sim.Causal.numa_remote);
                   ] ))
             (Sim.Causal.breakdowns cau)) );
      ( "critical_path",
        Sim.Json.Obj
          [
            ("hops", Sim.Json.Int cp.Sim.Causal.hops);
            ("cycles", Sim.Json.Int cp.Sim.Causal.cycles);
          ] );
      ( "ipi_latency",
        match Sim.Causal.to_json cau with
        | Sim.Json.Obj fields ->
          Option.value (List.assoc_opt "ipi_latency" fields) ~default:Sim.Json.Null
        | _ -> Sim.Json.Null );
      ( "numa_traffic",
        match Sim.Causal.to_json cau with
        | Sim.Json.Obj fields ->
          Option.value (List.assoc_opt "numa_traffic" fields) ~default:Sim.Json.Null
        | _ -> Sim.Json.Null );
      ("sweeps", Sim.Json.Obj (List.map (fun s -> (s.sw_name, sweep_to_json s)) r.sweeps));
    ]

(* ------------------------- Chrome timeline ------------------------- *)

(* One self-contained trace-event document: the trace ring as per-core
   slices, the causal graph as flow arrows between them, the sampled
   core<N>_busy gauges as counter tracks, and thread-name metadata so
   chrome://tracing labels each core's track. *)
let timeline_json () =
  let r = results () in
  let k = r.kernel in
  let cores = Hw.Smp.cores (K.smp k) in
  let thread_meta =
    List.init cores (fun i ->
        Sim.Json.Obj
          [
            ("name", Sim.Json.String "thread_name");
            ("ph", Sim.Json.String "M");
            ("pid", Sim.Json.Int 1);
            ("tid", Sim.Json.Int i);
            ( "args",
              Sim.Json.Obj [ ("name", Sim.Json.String (Printf.sprintf "core %d" i)) ] );
          ])
  in
  let counters =
    List.concat
      (List.init cores (fun i ->
           let name = Printf.sprintf "core%d_busy" i in
           List.map
             (fun (ts, v) ->
               Sim.Json.Obj
                 [
                   ("name", Sim.Json.String name);
                   ("ph", Sim.Json.String "C");
                   ("ts", Sim.Json.Int ts);
                   ("pid", Sim.Json.Int 1);
                   ("args", Sim.Json.Obj [ ("busy", Sim.Json.Int v) ]);
                 ])
             (Sim.Stats.series (K.stats k) name)))
  in
  Sim.Json.Obj
    [
      ( "traceEvents",
        Sim.Json.List
          (thread_meta
          @ Sim.Trace.chrome_events (K.trace k)
          @ Sim.Causal.chrome_events r.causal
          @ counters) );
      ("displayTimeUnit", Sim.Json.String "ns");
      ( "otherData",
        Sim.Json.Obj
          [
            ("workload", Sim.Json.String "smp_migration");
            ("time_unit", Sim.Json.String "virtual cycles as microseconds");
          ] );
    ]

(* ------------------------------ report ----------------------------- *)

let run () =
  print_header "T1" "Where does the makespan go? Causal critical-path decomposition.";
  let r = results () in
  let cau = r.causal in
  let t =
    Sim.Table.create ~title:"T1 - per-core makespan decomposition (cycles)"
      ~columns:[ "core"; "busy"; "work"; "ipi_wait"; "sched"; "numa_remote" ]
  in
  List.iter
    (fun b ->
      Sim.Table.add_row t
        [
          string_of_int b.Sim.Causal.bd_core;
          string_of_int b.Sim.Causal.bd_busy;
          string_of_int b.Sim.Causal.work;
          string_of_int b.Sim.Causal.ipi_wait;
          string_of_int b.Sim.Causal.sched;
          string_of_int b.Sim.Causal.numa_remote;
        ])
    (Sim.Causal.breakdowns cau);
  Sim.Table.print t;
  let cp = Sim.Causal.critical_path cau in
  Printf.printf "makespan: %d cycles (core %d), %.1f%% attributed to named shares\n"
    (Sim.Causal.makespan cau)
    (match Sim.Causal.makespan_core cau with Some b -> b.Sim.Causal.bd_core | None -> -1)
    (100.0 *. Sim.Causal.attributed_fraction cau);
  Printf.printf "critical path: %d hops spanning %d cycles\n" cp.Sim.Causal.hops
    cp.Sim.Causal.cycles;
  let st =
    Sim.Table.create ~title:"T1 - shootdown critical path vs batch size (hops on the graph)"
      ~columns:[ "sweep"; "expected"; "fitted"; "hops(1)"; "hops(32)"; "ok" ]
  in
  List.iter
    (fun s ->
      Sim.Table.add_row st
        [
          s.sw_name;
          C.cls_name s.sw_expected;
          C.cls_name s.sw_fit.C.cls;
          string_of_int (snd (List.hd s.sw_points));
          string_of_int (snd (List.nth s.sw_points (List.length s.sw_points - 1)));
          (if s.sw_fit.C.cls = s.sw_expected then "yes" else "NO");
        ])
    r.sweeps;
  Sim.Table.print st
