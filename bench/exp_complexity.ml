(* C1 — the scaling-law profiler: run each memory-management operation at
   geometrically increasing operand sizes on the virtual clock, fit a
   log-log least-squares slope (Sim.Complexity), and classify it O(1) /
   O(log n) / O(n). The paper's thesis — every FOM operation is constant
   in operand size while the per-page baseline is linear — becomes a
   machine-checked table: the classes are exported into the bench JSON and
   `o1mem_cli bench-diff` fails on any class downgrade.

   Every data point runs on a fresh machine so measurements never
   contaminate each other; everything is virtual-clock time, so the fits
   are bit-identical across runs and hosts. *)

module K = Os.Kernel
module F = O1mem.Fom
module C = Sim.Complexity
open Bench_env

type sweep = {
  name : string;
  expected : C.cls;
  unit_ : string;  (* "bytes", "entries", "files" *)
  note : string;
  sizes : int list;
  measure : int -> int;  (* operand -> virtual cycles *)
}

type result = { sweep : sweep; points : (int * int) list; fit : C.fit }

let geometric ~base ~factor ~count =
  List.init count (fun i ->
      let rec pow acc k = if k = 0 then acc else pow (acc * factor) (k - 1) in
      base * pow 1 i)

(* 4 KiB .. 256 MiB in x4 steps: large enough to separate the classes,
   small enough that per-page baselines stay inside the default machine. *)
let bytes_sweep = geometric ~base:Sim.Units.page_size ~factor:4 ~count:9

(* 4 KiB .. 128 KiB (1..32 pages): below the TLB full-flush threshold. *)
let invlpg_sweep = geometric ~base:Sim.Units.page_size ~factor:2 ~count:6

(* 256 KiB .. 1 GiB (64+ pages): at or above the full-flush threshold. *)
let flush_sweep = geometric ~base:(Sim.Units.kib 256) ~factor:4 ~count:7

(* 1 .. 4096 pre-existing entries/files (occupancy sweeps). *)
let count_sweep = geometric ~base:1 ~factor:4 ~count:7

(* ------------------------- baseline VM ops ------------------------- *)

(* DRAM is split half anonymous pool, half tmpfs, so a 256 MiB operand
   needs more than the default 512 MiB machine: give byte sweeps 2 GiB. *)
let big_kernel () = kernel ~dram:(Sim.Units.gib 2) ()

let mmap_baseline n =
  let k = big_kernel () in
  let p = K.create_process k () in
  let fs, path, _ = tmpfs_file k ~bytes:n in
  cycles k (fun () ->
      ignore (K.mmap_file k p ~fs ~path ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate:true ()))

let munmap_baseline n =
  let k = big_kernel () in
  let p = K.create_process k () in
  let fs, path, _ = tmpfs_file k ~bytes:n in
  let va = K.mmap_file k p ~fs ~path ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate:true () in
  cycles k (fun () -> K.munmap k p ~va ~len:n)

let mprotect_baseline n =
  let k = big_kernel () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len:n ~prot:Hw.Prot.rw ~populate:true in
  cycles k (fun () -> K.mprotect k p ~va ~len:n ~prot:Hw.Prot.r)

(* ---------------------------- FOM ops ------------------------------ *)

(* Pre-create a named file of [n] bytes with one process, then hand a
   second (fresh) process to [f]: the timed operation is always the
   steady-state map/unmap/protect, never the first-touch file build. *)
let with_fom ~strategy n f =
  let k, fom = kernel_and_fom () in
  let p0 = K.create_process k ~range_translations:true () in
  ignore (F.alloc fom p0 ~name:"/c" ~strategy ~len:n ~prot:Hw.Prot.rw ());
  let p = K.create_process k ~range_translations:true () in
  f k fom p

let mmap_fom ~strategy n =
  with_fom ~strategy n (fun k fom p ->
      cycles k (fun () -> ignore (F.map_path fom p ~strategy "/c")))

let munmap_fom ~strategy n =
  with_fom ~strategy n (fun k fom p ->
      let r = F.map_path fom p ~strategy "/c" in
      cycles k (fun () -> F.unmap fom p r))

let mprotect_fom n =
  with_fom ~strategy:F.Range_translation n (fun k fom p ->
      let r = F.map_path fom p ~strategy:F.Range_translation "/c" in
      cycles k (fun () -> ignore (F.protect fom p r ~prot:Hw.Prot.r)))

(* --------------------------- file system --------------------------- *)

let file_create n =
  let k = kernel () in
  let fs = K.tmpfs k in
  for i = 1 to n do
    ignore (Fs.Memfs.create_file fs (Printf.sprintf "/f%d" i) ~persistence:Fs.Inode.Volatile)
  done;
  cycles k (fun () -> ignore (Fs.Memfs.create_file fs "/target" ~persistence:Fs.Inode.Volatile))

let file_extend n =
  let k = big_kernel () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/x" ~persistence:Fs.Inode.Volatile in
  cycles k (fun () -> Fs.Memfs.extend fs ino ~bytes_wanted:n)

let file_truncate n =
  let k = big_kernel () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/x" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:n;
  cycles k (fun () -> Fs.Memfs.truncate fs ino ~bytes:0)

let erase ~strategy n =
  let k = kernel () in
  let e = O1mem.Erase.create ~mem:(K.mem k) ~strategy in
  cycles k (fun () -> O1mem.Erase.erase_extent e ~first:0 ~count:(n / Sim.Units.page_size))

(* Fixed 16 MiB of mappings split across n VMAs (alternating protections
   so adjacent VMAs never merge), then tear the process down: with
   mmu_gather-style batching, exit pays one syscall and one flush no
   matter how fragmented the address space is. *)
let munmap_batched_vmas n =
  let k = big_kernel () in
  let p = K.create_process k () in
  let total_pages = 4096 in
  let pages_per_vma = max 1 (total_pages / n) in
  for i = 0 to n - 1 do
    let prot = if i land 1 = 0 then Hw.Prot.rw else Hw.Prot.r in
    ignore (K.mmap_anon k p ~len:(pages_per_vma * Sim.Units.page_size) ~prot ~populate:true)
  done;
  cycles k (fun () -> K.exit_process k p)

(* ------------------- range table / TLB shootdown ------------------- *)

let with_range_table n f =
  let clock = Sim.Clock.create Sim.Cost_model.default in
  let stats = Sim.Stats.create () in
  let rt = Hw.Range_table.create ~clock ~stats () in
  for i = 0 to n - 1 do
    Hw.Range_table.insert rt ~base:(i * Sim.Units.mib 4) ~limit:(Sim.Units.mib 2) ~offset:0
      ~prot:Hw.Prot.rw
  done;
  let before = Sim.Clock.now clock in
  f rt (n * Sim.Units.mib 4);
  Sim.Clock.elapsed clock ~since:before

let range_table_insert n =
  with_range_table n (fun rt fresh_base ->
      Hw.Range_table.insert rt ~base:fresh_base ~limit:(Sim.Units.mib 2) ~offset:0
        ~prot:Hw.Prot.rw)

let range_table_remove n =
  with_range_table n (fun rt _ -> ignore (Hw.Range_table.remove rt ~base:0))

let tlb_shootdown n =
  let clock = Sim.Clock.create Sim.Cost_model.default in
  let stats = Sim.Stats.create () in
  let tlb = Hw.Tlb.create ~clock ~stats () in
  let before = Sim.Clock.now clock in
  Hw.Tlb.invalidate_range tlb ~va:0 ~len:n ();
  Sim.Clock.elapsed clock ~since:before

(* ------------------- SMP shootdowns and fault scaling --------------- *)

(* 2 .. 32 simulated cores. Starts at 2: a 1-core point has no IPI
   traffic at all and would drag a clean O(cores) fit toward zero. *)
let cores_sweep = geometric ~base:2 ~factor:2 ~count:5

(* 1 .. 32 pages: stays below the 33-page full-flush threshold so the
   per-page IPI path is what gets measured. *)
let pages_sweep = geometric ~base:1 ~factor:2 ~count:6

(* 1 .. 64 pages: crosses the full-flush threshold, which must NOT
   change the number of IPI rounds a batch issues. *)
let batch_pages_sweep = geometric ~base:1 ~factor:2 ~count:7

(* A machine of [cores] cores where every core caches [pages]
   translations of one address space (asid 1), so the cpumask makes each
   of them a shootdown target — the worst case for per-page unmap. With
   [range], the pages sit behind a single range-table entry and each
   core's range TLB caches it. *)
let smp_env ?(range = false) ~cores ~pages f =
  let clock = Sim.Clock.create Sim.Cost_model.default in
  let stats = Sim.Stats.create () in
  let next = ref 0 in
  let alloc_frame () =
    incr next;
    !next
  in
  let table = Hw.Page_table.create ~clock ~stats ~levels:4 ~alloc_frame in
  let range_table =
    if range then begin
      let rt = Hw.Range_table.create ~clock ~stats () in
      Hw.Range_table.insert rt ~base:0 ~limit:(pages * Sim.Units.page_size) ~offset:0
        ~prot:Hw.Prot.rw;
      Some rt
    end
    else None
  in
  let smp = Hw.Smp.create ~clock ~stats ~cores () in
  let mmu = Hw.Mmu.create ~clock ~stats ~table ?range_table ~smp ~asid:1 () in
  if not range then
    for i = 0 to pages - 1 do
      Hw.Page_table.map_page table ~va:(i * Sim.Units.page_size) ~pfn:(1000 + i)
        ~prot:Hw.Prot.rw ~size:Hw.Page_size.Small
    done;
  for c = 0 to cores - 1 do
    Hw.Mmu.set_core mmu c;
    for i = 0 to pages - 1 do
      ignore (Hw.Mmu.translate mmu ~va:(i * Sim.Units.page_size) ~write:false ~exec:false)
    done
  done;
  Hw.Mmu.set_core mmu 0;
  let before = Sim.Clock.now clock in
  f mmu stats;
  Sim.Clock.elapsed clock ~since:before

let unmap_pages mmu pages =
  for i = 0 to pages - 1 do
    Hw.Mmu.invalidate_page mmu ~va:(i * Sim.Units.page_size)
  done

(* Per-page unmap of a fixed 8-page buffer as the machine grows: every
   page pays one IPI per remote core, O(cores * pages) overall. *)
let smp_per_page_cores n = smp_env ~cores:n ~pages:8 (fun mmu _ -> unmap_pages mmu 8)

(* The same unmap through one range entry: one invalidation, one IPI
   round — O(cores), independent of the range's size. *)
let smp_range_cores n =
  smp_env ~range:true ~cores:n ~pages:8 (fun mmu _ -> Hw.Mmu.invalidate_base mmu ~base:0)

(* Per-page unmap on a fixed 8-core machine as the buffer grows: the
   core count only scales the slope, the pages scale the cost. *)
let smp_per_page_pages n = smp_env ~cores:8 ~pages:n (fun mmu _ -> unmap_pages mmu n)

(* IPIs (not cycles) a batched teardown issues on a fixed 8-core
   machine: Tlb_batch amortizes the whole batch — INVLPG path or
   full-flush path — into ONE round, so the count never moves. *)
let smp_batch_ipis n =
  let sent = ref 0 in
  ignore
    (smp_env ~cores:8 ~pages:n (fun mmu stats ->
         let batch = Hw.Tlb_batch.create mmu in
         Hw.Tlb_batch.add batch ~va:0 ~len:(n * Sim.Units.page_size);
         Hw.Tlb_batch.flush batch;
         sent := Sim.Stats.get stats "ipi_sent"));
  !sent

(* Demand-fault throughput as cores grow, one process per core doing the
   same 32-page workload: cycles are attributed to the core the faulting
   process runs on, so the makespan (max per-core busy) stays flat when
   fault handling scales. *)
let smp_fault_makespan n =
  let k = kernel ~cores:n () in
  let procs = List.init n (fun _ -> K.create_process k ()) in
  List.iter
    (fun p ->
      let len = 32 * Sim.Units.page_size in
      let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
      ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size))
    procs;
  let makespan = ref 0 in
  Hw.Smp.iter_cores (K.smp k) (fun c ->
      makespan := max !makespan c.Hw.Smp.busy_cycles);
  !makespan

(* ----------------------------- sweeps ------------------------------ *)

let sweeps =
  [
    {
      name = "mmap_baseline_per_page";
      expected = C.Linear;
      unit_ = "bytes";
      note = "MAP_POPULATE file map: one PTE per page";
      sizes = bytes_sweep;
      measure = mmap_baseline;
    };
    {
      name = "munmap_baseline_per_page";
      expected = C.Linear;
      unit_ = "bytes";
      note = "per-page PTE teardown + frame release";
      sizes = bytes_sweep;
      measure = munmap_baseline;
    };
    {
      name = "mprotect_baseline";
      expected = C.Linear;
      unit_ = "bytes";
      note = "per-page PTE permission rewrite";
      sizes = bytes_sweep;
      measure = mprotect_baseline;
    };
    {
      name = "mmap_fom_range";
      expected = C.Constant;
      unit_ = "bytes";
      note = "one range-table entry per extent";
      sizes = bytes_sweep;
      measure = mmap_fom ~strategy:F.Range_translation;
    };
    {
      name = "munmap_fom_range";
      expected = C.Constant;
      unit_ = "bytes";
      note = "one range entry removed + one shootdown";
      sizes = bytes_sweep;
      measure = munmap_fom ~strategy:F.Range_translation;
    };
    {
      name = "mprotect_fom";
      expected = C.Constant;
      unit_ = "bytes";
      note = "whole-file protection: O(extents)";
      sizes = bytes_sweep;
      measure = mprotect_fom;
    };
    {
      name = "mmap_fom_graft";
      expected = C.Logarithmic;
      unit_ = "bytes";
      note = "one pointer per 2 MiB window (sublinear in bytes)";
      sizes = bytes_sweep;
      measure = mmap_fom ~strategy:F.Shared_subtree;
    };
    {
      name = "ungraft_fom";
      expected = C.Logarithmic;
      unit_ = "bytes";
      note = "drop one pointer per window";
      sizes = bytes_sweep;
      measure = munmap_fom ~strategy:F.Shared_subtree;
    };
    {
      name = "file_create";
      expected = C.Constant;
      unit_ = "files";
      note = "create with N pre-existing files";
      sizes = count_sweep;
      measure = file_create;
    };
    {
      name = "file_extend";
      expected = C.Linear;
      unit_ = "bytes";
      note = "eager zeroing of new frames (the last linear op)";
      sizes = bytes_sweep;
      measure = file_extend;
    };
    {
      name = "file_truncate";
      expected = C.Constant;
      unit_ = "bytes";
      note = "extents back to the bitmap";
      sizes = bytes_sweep;
      measure = file_truncate;
    };
    {
      name = "erase_eager";
      expected = C.Linear;
      unit_ = "bytes";
      note = "synchronous memset on the critical path";
      sizes = bytes_sweep;
      measure = erase ~strategy:O1mem.Erase.Eager;
    };
    {
      name = "erase_device";
      expected = C.Constant;
      unit_ = "bytes";
      note = "one device erase command per extent";
      sizes = bytes_sweep;
      measure = erase ~strategy:O1mem.Erase.Bulk_device;
    };
    {
      name = "range_table_insert";
      expected = C.Constant;
      unit_ = "entries";
      note = "insert with N entries resident";
      sizes = count_sweep;
      measure = range_table_insert;
    };
    {
      name = "range_table_remove";
      expected = C.Constant;
      unit_ = "entries";
      note = "remove with N entries resident";
      sizes = count_sweep;
      measure = range_table_remove;
    };
    {
      name = "munmap_batched_vmas";
      expected = C.Constant;
      unit_ = "vmas";
      note = "16 MiB teardown across N VMAs: one batched flush";
      sizes = count_sweep;
      measure = munmap_batched_vmas;
    };
    {
      name = "tlb_shootdown_invlpg";
      expected = C.Linear;
      unit_ = "bytes";
      note = "per-page INVLPG below the 33-page threshold";
      sizes = invlpg_sweep;
      measure = tlb_shootdown;
    };
    {
      name = "tlb_shootdown_full_flush";
      expected = C.Constant;
      unit_ = "bytes";
      note = "33+ pages: one full flush, size-independent";
      sizes = flush_sweep;
      measure = tlb_shootdown;
    };
    {
      name = "smp_shootdown_per_page_cores";
      expected = C.Linear;
      unit_ = "cores";
      note = "8-page unmap: one IPI per page per remote core";
      sizes = cores_sweep;
      measure = smp_per_page_cores;
    };
    {
      name = "smp_shootdown_range_cores";
      expected = C.Linear;
      unit_ = "cores";
      note = "range unmap: one IPI round, O(cores) total";
      sizes = cores_sweep;
      measure = smp_range_cores;
    };
    {
      name = "smp_shootdown_per_page_pages";
      expected = C.Linear;
      unit_ = "pages";
      note = "8 cores: per-page IPIs scale with the buffer";
      sizes = pages_sweep;
      measure = smp_per_page_pages;
    };
    {
      name = "smp_batch_ipis_pages";
      expected = C.Constant;
      unit_ = "pages";
      note = "IPIs per batched flush: one round whatever the size";
      sizes = batch_pages_sweep;
      measure = smp_batch_ipis;
    };
    {
      name = "smp_fault_makespan_cores";
      expected = C.Constant;
      unit_ = "cores";
      note = "per-core demand-fault makespan: flat = perfect scaling";
      sizes = cores_sweep;
      measure = smp_fault_makespan;
    };
  ]

let run_sweep s =
  let points = List.map (fun n -> (n, s.measure n)) s.sizes in
  { sweep = s; points; fit = C.fit points }

(* Deterministic, so computing once per process is safe; both the table
   printer and the JSON exporter share the same run. *)
let all = lazy (List.map run_sweep sweeps)

let results () = Lazy.force all

(* ------------------------------ export ----------------------------- *)

let result_to_json r =
  let n_min, c_min = List.hd r.points in
  let n_max, c_max = List.nth r.points (List.length r.points - 1) in
  let fit_fields = match C.fit_to_json r.fit with Sim.Json.Obj f -> f | _ -> [] in
  Sim.Json.Obj
    (("expected", Sim.Json.String (C.cls_name r.sweep.expected))
     :: ("match", Sim.Json.Bool (r.fit.C.cls = r.sweep.expected))
     :: fit_fields
    @ [
        ("unit", Sim.Json.String r.sweep.unit_);
        ("n_min", Sim.Json.Int n_min);
        ("n_max", Sim.Json.Int n_max);
        ("cost_min_cycles", Sim.Json.Int c_min);
        ("cost_max_cycles", Sim.Json.Int c_max);
      ])

let to_json () =
  Sim.Json.Obj (List.map (fun r -> (r.sweep.name, result_to_json r)) (results ()))

(* ------------------------------ report ----------------------------- *)

let run () =
  print_header "C1"
    "Scaling laws, machine-checked: fitted log-log exponent and class per operation.";
  let t =
    Sim.Table.create ~title:"C1 - complexity classes (least-squares fit on the virtual clock)"
      ~columns:[ "operation"; "operands"; "expected"; "fitted"; "exponent"; "r^2"; "growth"; "ok" ]
  in
  List.iter
    (fun r ->
      let n_min, _ = List.hd r.points in
      let n_max, _ = List.nth r.points (List.length r.points - 1) in
      let span =
        if r.sweep.unit_ = "bytes" then
          Printf.sprintf "%s..%s" (Sim.Units.bytes_to_string n_min)
            (Sim.Units.bytes_to_string n_max)
        else Printf.sprintf "%d..%d %s" n_min n_max r.sweep.unit_
      in
      Sim.Table.add_row t
        [
          r.sweep.name;
          span;
          C.cls_name r.sweep.expected;
          C.cls_name r.fit.C.cls;
          Sim.Table.cell_float ~dp:3 r.fit.C.exponent;
          Sim.Table.cell_float ~dp:3 r.fit.C.r2;
          Sim.Table.cell_float ~dp:1 r.fit.C.growth;
          (if r.fit.C.cls = r.sweep.expected then "yes" else "NO");
        ])
    (results ());
  Sim.Table.print t;
  let mismatches = List.filter (fun r -> r.fit.C.cls <> r.sweep.expected) (results ()) in
  if mismatches <> [] then
    Printf.printf "WARNING: %d operation(s) off their expected class: %s\n\n"
      (List.length mismatches)
      (String.concat ", " (List.map (fun r -> r.sweep.name) mismatches));
  let us = Sim.Cost_model.cycles_to_us Sim.Cost_model.default in
  let series name =
    match List.find_opt (fun r -> r.sweep.name = name) (results ()) with
    | Some r ->
      [ { Sim.Chart.label = name; points = List.map (fun (n, c) -> (float_of_int n, us c)) r.points } ]
    | None -> []
  in
  Sim.Chart.print ~logx:true ~logy:true
    ~title:"C1 (chart): map cost (us) vs operand size (bytes), log-log"
    (series "mmap_baseline_per_page" @ series "mmap_fom_graft" @ series "mmap_fom_range")
