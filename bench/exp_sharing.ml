(* E5/E6/E16 — page-table sharing experiments (paper Figures 3 and 8 and
   the §4.1 process-launch story). *)
open Bench_env

(* E5 / Figure 3: map a 64 MiB shared file into N processes. Baseline
   populates per-process PTEs; FOM grafts the master subtree. *)
let fig3 () =
  let t = Sim.Table.create
      ~title:"Figure 3 - map shared 64MiB file into N processes (total us, PT bytes)"
      ~columns:[ "procs"; "baseline us"; "baseline PT"; "graft us"; "graft PT (per-proc)" ]
  in
  let len = Sim.Units.mib 64 in
  List.iter
    (fun procs ->
      (* Baseline. *)
      let k = kernel ~dram:(Sim.Units.gib 1) () in
      let fs = K.tmpfs k in
      let ino = Fs.Memfs.create_file fs "/lib" ~persistence:Fs.Inode.Volatile in
      Fs.Memfs.extend fs ino ~bytes_wanted:len;
      let base_pt = ref 0 in
      let t_base =
        time_us k (fun () ->
            for _ = 1 to procs do
              let p = K.create_process k () in
              ignore
                (K.mmap_file k p ~fs ~path:"/lib" ~prot:Hw.Prot.r ~share:Os.Vma.Shared
                   ~populate:true ());
              base_pt :=
                !base_pt + Hw.Page_table.metadata_bytes (Os.Address_space.page_table p.Os.Proc.aspace)
            done)
      in
      (* FOM grafting. *)
      let k2, fom = kernel_and_fom () in
      let p0 = K.create_process k2 () in
      ignore (F.alloc fom p0 ~name:"/lib" ~len ~prot:Hw.Prot.r ());
      let fom_pt = ref 0 in
      let t_fom =
        time_us k2 (fun () ->
            for _ = 1 to procs do
              let p = K.create_process k2 () in
              ignore (F.map_path fom p "/lib");
              fom_pt :=
                !fom_pt + Hw.Page_table.metadata_bytes (Os.Address_space.page_table p.Os.Proc.aspace)
            done)
      in
      Sim.Table.add_row t
        [
          Sim.Table.cell_int procs;
          Sim.Table.cell_float t_base;
          Sim.Table.cell_bytes !base_pt;
          Sim.Table.cell_float t_fom;
          Sim.Table.cell_bytes !fom_pt;
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  t

(* E6 / Figure 8: physically based mappings. Every process sees the same
   VA; attach is a single pointer write regardless of region count. *)
let fig8 () =
  let t = Sim.Table.create ~title:"Figure 8 - PBM: attach cost vs number of PBM regions (us)"
      ~columns:[ "regions"; "attach us"; "PBM table bytes"; "per-proc PT writes" ]
  in
  List.iter
    (fun regions ->
      let k, fom = kernel_and_fom () in
      let pbm = O1mem.Pbm.create k in
      let fs = F.fs fom in
      for i = 1 to regions do
        let ino =
          Fs.Memfs.create_file fs (Printf.sprintf "/pbm%d" i) ~persistence:Fs.Inode.Volatile
        in
        Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.mib 1);
        let e = List.hd (Fs.Memfs.file_extents fs ino) in
        ignore (O1mem.Pbm.map_region pbm ~first:e.Fs.Extent.start ~count:e.Fs.Extent.count ~prot:Hw.Prot.rw)
      done;
      let p = K.create_process k () in
      let writes_before = stat k "pt_subtree_share" in
      let t_attach = time_us k (fun () -> O1mem.Pbm.attach pbm p) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_int regions;
          Sim.Table.cell_float t_attach;
          Sim.Table.cell_bytes (O1mem.Pbm.metadata_bytes pbm);
          Sim.Table.cell_int (stat k "pt_subtree_share" - writes_before);
        ])
    [ 1; 4; 16; 64 ];
  t

(* E16: process launch. Baseline demand-pages three anon segments; FOM
   maps three files, reusing the code file's persistent master table. *)
let tab_launch () =
  let t = Sim.Table.create ~title:"E16 - process launch, code 2MiB + heap 4MiB + stack 1MiB (us)"
      ~columns:[ "variant"; "launch+touch us" ]
  in
  let code = Sim.Units.mib 2 and heap = Sim.Units.mib 4 and stack = Sim.Units.mib 1 in
  let k = kernel () in
  let t_base =
    time_us k (fun () ->
        let p = K.create_process k () in
        List.iter
          (fun len ->
            let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
            touch_pages_kernel k p ~va ~len ~write:true)
          [ code; heap; stack ])
  in
  Sim.Table.add_row t [ "baseline (anon, demand)"; Sim.Table.cell_float t_base ];
  let k2 = kernel () in
  let t_base_pop =
    time_us k2 (fun () ->
        let p = K.create_process k2 () in
        List.iter
          (fun len ->
            let va = K.mmap_anon k2 p ~len ~prot:Hw.Prot.rw ~populate:true in
            touch_pages_kernel k2 p ~va ~len ~write:true)
          [ code; heap; stack ])
  in
  Sim.Table.add_row t [ "baseline (anon, populate)"; Sim.Table.cell_float t_base_pop ];
  let k3, fom = kernel_and_fom () in
  let launch_and_touch () =
    let p, regions = F.launch fom ~code_bytes:code ~heap_bytes:heap ~stack_bytes:stack in
    List.iter
      (fun (r : F.region) ->
        touch_pages_fom fom p ~va:r.F.va ~len:r.F.len ~write:r.F.prot.Hw.Prot.write)
      regions;
    p
  in
  let t_first = time_us k3 (fun () -> ignore (launch_and_touch ())) in
  Sim.Table.add_row t [ "FOM first launch (builds masters)"; Sim.Table.cell_float t_first ];
  let t_second = time_us k3 (fun () -> ignore (launch_and_touch ())) in
  Sim.Table.add_row t [ "FOM relaunch (code master reused)"; Sim.Table.cell_float t_second ];
  (* Post-crash relaunch: persistent code master survives. *)
  ignore (O1mem.Persistence.crash_and_recover fom);
  let t_after_crash = time_us k3 (fun () -> ignore (launch_and_touch ())) in
  Sim.Table.add_row t
    [ "FOM relaunch after crash (persistent PTs)"; Sim.Table.cell_float t_after_crash ];
  t

let run () =
  print_header "E5" "Shared mappings: grafting pre-created subtrees vs per-process PTE population.";
  Sim.Table.print (fig3 ());
  print_header "E6" "Physically based mappings: one pointer attaches a process to every PBM region.";
  Sim.Table.print (fig8 ());
  print_header "E16" "Process launch with file segments and reusable (persistent) page tables.";
  Sim.Table.print (tab_launch ())
