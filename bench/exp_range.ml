(* E7/E10 — hardware-translation experiments (paper Figures 4/5/9 and the
   §2 five-level-paging observation). *)
open Bench_env

(* E7 / Figure 9: sparse scan (1 byte per page) of a large mapped region,
   radix page table + TLB vs range table + range TLB. *)
let fig9 () =
  let t = Sim.Table.create
      ~title:"Figure 9 - sparse scan: page TLB vs range TLB (us, misses, walk refs)"
      ~columns:
        [ "region"; "page-TLB us"; "tlb misses"; "walk refs"; "range-TLB us"; "range walks" ]
  in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      (* Page-table path. *)
      let k, fom = kernel_and_fom ~nvm:(Sim.Units.gib 4) () in
      let p = K.create_process k () in
      let r = F.alloc fom p ~strategy:F.Per_page ~len ~prot:Hw.Prot.rw () in
      let misses0 = stat k "tlb_miss" and refs0 = stat k "walk_refs" in
      let t_pt = time_us k (fun () -> touch_pages_fom fom p ~va:r.F.va ~len ~write:false) in
      let misses = stat k "tlb_miss" - misses0 and refs = stat k "walk_refs" - refs0 in
      (* Range path (fresh machine). *)
      let k2, fom2 = kernel_and_fom ~nvm:(Sim.Units.gib 4) () in
      let p2 = K.create_process k2 ~range_translations:true () in
      let r2 = F.alloc fom2 p2 ~strategy:F.Range_translation ~len ~prot:Hw.Prot.rw () in
      let rw0 = stat k2 "range_walks" in
      let t_rt = time_us k2 (fun () -> touch_pages_fom fom2 p2 ~va:r2.F.va ~len ~write:false) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes len;
          Sim.Table.cell_float t_pt;
          Sim.Table.cell_int misses;
          Sim.Table.cell_int refs;
          Sim.Table.cell_float t_rt;
          Sim.Table.cell_int (stat k2 "range_walks" - rw0);
        ])
    [ 4; 16; 64; 256; 1024 ];
  t

(* Figure 9 second panel: map/unmap cost, per-page PTEs vs one range
   entry, across region sizes. *)
let fig9_map_unmap () =
  let t = Sim.Table.create ~title:"Figure 9 (map/unmap) - O(pages) PTEs vs O(1) range entry (us)"
      ~columns:[ "region"; "per-page map"; "per-page unmap"; "range map"; "range unmap" ]
  in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      let k, fom = kernel_and_fom ~nvm:(Sim.Units.gib 4) () in
      let p = K.create_process k ~range_translations:true () in
      let r = ref None in
      let t_map_pp =
        time_us k (fun () -> r := Some (F.alloc fom p ~strategy:F.Per_page ~len ~prot:Hw.Prot.rw ()))
      in
      let t_unmap_pp = time_us k (fun () -> F.free fom p (Option.get !r)) in
      let t_map_rt =
        time_us k (fun () ->
            r := Some (F.alloc fom p ~strategy:F.Range_translation ~len ~prot:Hw.Prot.rw ()))
      in
      let t_unmap_rt = time_us k (fun () -> F.free fom p (Option.get !r)) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes len;
          Sim.Table.cell_float t_map_pp;
          Sim.Table.cell_float t_unmap_pp;
          Sim.Table.cell_float t_map_rt;
          Sim.Table.cell_float t_unmap_rt;
        ])
    [ 4; 16; 64; 256; 1024 ];
  t

(* E10 / §2: memory references per TLB miss across paging configurations;
   the 4->24 and 5->35 blowup the paper cites. *)
let tab_walk_refs () =
  let t = Sim.Table.create ~title:"E10 - memory references to resolve one TLB miss"
      ~columns:[ "configuration"; "refs (4K leaf)"; "refs (2M leaf)" ]
  in
  let row name levels mode =
    Sim.Table.add_row t
      [
        name;
        Sim.Table.cell_int
          (Hw.Walker.refs_for_walk ~guest_levels:levels ~leaf_depth:(levels - 1) ~mode);
        Sim.Table.cell_int
          (Hw.Walker.refs_for_walk ~guest_levels:levels ~leaf_depth:(levels - 2) ~mode);
      ]
  in
  row "4-level native" 4 Hw.Walker.Native;
  row "5-level native" 5 Hw.Walker.Native;
  row "4-level on 4-level EPT" 4 (Hw.Walker.Virtualized 4);
  row "5-level on 5-level EPT" 5 (Hw.Walker.Virtualized 5);
  Sim.Table.add_row t [ "range TLB hit (any size)"; "0"; "0" ];
  t

(* E10b: the end-to-end effect — the same demand-read workload under
   4-level native vs 5-level virtualized translation. *)
let tab_walk_cost_e2e () =
  let t = Sim.Table.create ~title:"E10b - 64MiB sparse scan under different translation modes (us)"
      ~columns:[ "mode"; "scan us"; "walk refs" ]
  in
  let run name levels mode =
    let k = kernel ~dram:(Sim.Units.gib 1) ~levels ~walk_mode:mode () in
    let p = K.create_process k () in
    let len = Sim.Units.mib 64 in
    let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
    let refs0 = stat k "walk_refs" in
    let tt = time_us k (fun () -> touch_pages_kernel k p ~va ~len ~write:false) in
    Sim.Table.add_row t
      [ name; Sim.Table.cell_float tt; Sim.Table.cell_int (stat k "walk_refs" - refs0) ]
  in
  run "4-level native" 4 Hw.Walker.Native;
  run "5-level native" 5 Hw.Walker.Native;
  run "4-on-4 virtualized" 4 (Hw.Walker.Virtualized 4);
  run "5-on-5 virtualized" 5 (Hw.Walker.Virtualized 5);
  t

let run () =
  print_header "E7" "Range translations: constant-size hardware state translates any region size.";
  Sim.Table.print (fig9 ());
  Sim.Table.print (fig9_map_unmap ());
  print_header "E10" "Translation reference counts: nested 5-level paging needs up to 35 references.";
  Sim.Table.print (tab_walk_refs ());
  Sim.Table.print (tab_walk_cost_e2e ())
