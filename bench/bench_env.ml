(* Shared fixtures for the experiment harness: fresh machines per data
   point so measurements never contaminate each other, and helpers to
   read the simulated clock. *)

module K = Os.Kernel
module F = O1mem.Fom

let config ?(dram = Sim.Units.mib 512) ?(nvm = Sim.Units.gib 2) ?(levels = 4)
    ?(walk_mode = Hw.Walker.Native) ?(reclaim = Os.Reclaim.Clock) ?(cores = 1)
    ?(numa_nodes = 1) () =
  {
    K.default_config with
    K.dram_bytes = dram;
    nvm_bytes = nvm;
    levels;
    walk_mode;
    reclaim_policy = reclaim;
    cores;
    numa_nodes;
  }

let kernel ?dram ?nvm ?levels ?walk_mode ?reclaim ?cores ?numa_nodes () =
  K.create ~config:(config ?dram ?nvm ?levels ?walk_mode ?reclaim ?cores ?numa_nodes ()) ()

let kernel_and_fom ?dram ?nvm ?strategy () =
  let k = kernel ?dram ?nvm () in
  (k, F.create k ?strategy ())

(* Simulated cycles spent in [f], on [k]'s clock. *)
let cycles k f =
  let clock = K.clock k in
  let before = Sim.Clock.now clock in
  f ();
  Sim.Clock.elapsed clock ~since:before

let us k c = Sim.Clock.us (K.clock k) c

(* Simulated microseconds spent in [f]. *)
let time_us k f = us k (cycles k f)

let stat k name = Sim.Stats.get (K.stats k) name

(* Make a tmpfs file of [bytes] and return (fs, path). *)
let tmpfs_file k ~bytes =
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/bench-file" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend fs ino ~bytes_wanted:bytes;
  (fs, "/bench-file", ino)

let touch_pages_kernel k p ~va ~len ~write =
  ignore (K.access_range k p ~va ~len ~write ~stride:Sim.Units.page_size)

let touch_pages_fom fom p ~va ~len ~write =
  ignore (F.access_range fom p ~va ~len ~write ~stride:Sim.Units.page_size)

let print_header title what =
  Printf.printf "\n#### %s\n%s\n\n" title what
