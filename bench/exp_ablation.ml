(* Ablations (A1..A8): the design choices DESIGN.md calls out, each
   isolated — huge-page fix-up vs born-contiguous extents, erase
   policies, graft window size, translation-cache geometry, heap
   designs, fork, and user-level paging. *)
open Bench_env

(* A1: transparent huge pages patch the baseline after the fact; FOM
   extents are born contiguous. Cost of the fix-up pass vs the win. *)
let tab_thp () =
  let t = Sim.Table.create ~title:"A1 - THP collapse: fix-up cost vs TLB win (64MiB region)"
      ~columns:[ "variant"; "setup us"; "scan us"; "tlb misses" ]
  in
  let len = Sim.Units.mib 64 in
  let sparse_scan k p va =
    Hw.Mmu.flush_tlbs (Os.Address_space.mmu p.Os.Proc.aspace);
    let m0 = stat k "tlb_miss" in
    let tt = time_us k (fun () -> touch_pages_kernel k p ~va ~len ~write:false) in
    (tt, stat k "tlb_miss" - m0)
  in
  (* Baseline, 4K pages. *)
  let k = kernel ~dram:(Sim.Units.gib 1) () in
  let p = K.create_process k () in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
  let scan_us, misses = sparse_scan k p va in
  Sim.Table.add_row t
    [ "baseline 4K pages"; "0.00"; Sim.Table.cell_float scan_us; Sim.Table.cell_int misses ];
  (* Baseline + khugepaged pass. *)
  let t_collapse = time_us k (fun () -> ignore (Os.Thp.scan_process k p ())) in
  let scan_us2, misses2 = sparse_scan k p va in
  Sim.Table.add_row t
    [
      "baseline + THP collapse";
      Sim.Table.cell_float t_collapse;
      Sim.Table.cell_float scan_us2;
      Sim.Table.cell_int misses2;
    ];
  (* FOM huge pages: contiguity by construction, no fix-up. *)
  let k2, fom = kernel_and_fom () in
  let p2 = K.create_process k2 () in
  let t_alloc =
    time_us k2 (fun () ->
        ignore (F.alloc fom p2 ~strategy:F.Huge_pages ~len ~prot:Hw.Prot.rw ()))
  in
  let r = Option.get (F.region_of fom p2 ~va:(List.hd (F.regions_of fom p2)).F.va) in
  Hw.Mmu.flush_tlbs (Os.Address_space.mmu p2.Os.Proc.aspace);
  let m0 = stat k2 "tlb_miss" in
  let scan3 = time_us k2 (fun () -> touch_pages_fom fom p2 ~va:r.F.va ~len ~write:false) in
  Sim.Table.add_row t
    [
      "FOM huge pages (born contiguous)";
      Sim.Table.cell_float t_alloc;
      Sim.Table.cell_float scan3;
      Sim.Table.cell_int (stat k2 "tlb_miss" - m0);
    ];
  t

(* A2: with zeroing off the critical path, FOM allocation itself is
   near-O(1): the paper's erase question answered in the alloc path. *)
let tab_alloc_erase () =
  let t = Sim.Table.create
      ~title:"A2 - FOM alloc+map latency (no touch) under erase policies (us)"
      ~columns:[ "size"; "eager zero"; "background pool"; "device erase" ]
  in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      let run erase prime =
        let cfg =
          {
            (Bench_env.config ~nvm:(Sim.Units.gib 4) ()) with
            Os.Kernel.fs_erase = erase;
          }
        in
        let k = K.create ~config:cfg () in
        let fom = F.create k () in
        let p = K.create_process k () in
        if prime then begin
          (* Previous churn left the pool stocked / extents erased. *)
          let r = F.alloc fom p ~len ~prot:Hw.Prot.rw () in
          F.free fom p r;
          ignore
            (Fs.Memfs.background_zero_step (F.fs fom)
               ~budget_frames:(len / Sim.Units.page_size))
        end;
        time_us k (fun () -> ignore (F.alloc fom p ~len ~prot:Hw.Prot.rw ()))
      in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes len;
          Sim.Table.cell_float (run Fs.Memfs.Eager_zero false);
          Sim.Table.cell_float (run Fs.Memfs.Background_zero true);
          Sim.Table.cell_float (run Fs.Memfs.Device_erase true);
        ])
    [ 1; 16; 64; 256; 1024 ];
  t

(* A3: graft window size. GiB files graft in GiB units. *)
let tab_graft_window () =
  let t = Sim.Table.create ~title:"A3 - graft granularity: pointers written per map"
      ~columns:[ "file size"; "grafts"; "map us" ]
  in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      let k, fom = kernel_and_fom ~dram:(Sim.Units.mib 512) ~nvm:(Sim.Units.gib 6) () in
      let p0 = K.create_process k () in
      ignore (F.alloc fom p0 ~name:"/f" ~len ~prot:Hw.Prot.rw ());
      let p = K.create_process k () in
      let g0 = stat k "fom_grafts" in
      let tt = time_us k (fun () -> ignore (F.map_path fom p "/f")) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes len;
          Sim.Table.cell_int (stat k "fom_grafts" - g0);
          Sim.Table.cell_float tt;
        ])
    [ 2; 64; 512; 1024; 2048; 4096 ];
  t

(* A4: range-TLB capacity: many live regions, uniform probes. *)
let tab_range_tlb_capacity () =
  let t = Sim.Table.create ~title:"A4 - range-TLB capacity vs miss rate (64 regions, 10k probes)"
      ~columns:[ "entries"; "hits"; "misses"; "probe us" ]
  in
  List.iter
    (fun entries ->
      let cfg =
        { (Bench_env.config ~nvm:(Sim.Units.gib 2) ()) with Os.Kernel.range_tlb_entries = entries }
      in
      let k = K.create ~config:cfg () in
      let fom = F.create k () in
      let p = K.create_process k ~range_translations:true () in
      let regions =
        List.init 64 (fun _ ->
            F.alloc fom p ~strategy:F.Range_translation ~len:(Sim.Units.mib 1) ~prot:Hw.Prot.rw ())
      in
      let rng = Sim.Rng.create ~seed:9 in
      let h0 = stat k "range_tlb_hit" and m0 = stat k "range_tlb_miss" in
      let tt =
        time_us k (fun () ->
            for _ = 1 to 10_000 do
              let r = List.nth regions (Sim.Rng.int rng 64) in
              F.access fom p ~va:(r.F.va + Sim.Rng.int rng r.F.len) ~write:false
            done)
      in
      Sim.Table.add_row t
        [
          Sim.Table.cell_int entries;
          Sim.Table.cell_int (stat k "range_tlb_hit" - h0);
          Sim.Table.cell_int (stat k "range_tlb_miss" - m0);
          Sim.Table.cell_float tt;
        ])
    [ 4; 8; 16; 32; 64; 128 ];
  t

(* A5: page-TLB geometry on a fixed sparse scan. *)
let tab_tlb_geometry () =
  let t = Sim.Table.create ~title:"A5 - page-TLB geometry: 32MiB sparse scan"
      ~columns:[ "sets x ways"; "entries"; "tlb misses"; "scan us" ]
  in
  List.iter
    (fun (sets, ways) ->
      let cfg =
        { (Bench_env.config ~dram:(Sim.Units.gib 1) ()) with Os.Kernel.tlb_sets = sets; tlb_ways = ways }
      in
      let k = K.create ~config:cfg () in
      let p = K.create_process k () in
      let len = Sim.Units.mib 32 in
      let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:true in
      (* Two passes: the second shows whether the set fits. *)
      ignore (K.access_range k p ~va ~len ~write:false ~stride:Sim.Units.page_size);
      let m0 = stat k "tlb_miss" in
      let tt =
        time_us k (fun () ->
            ignore (K.access_range k p ~va ~len ~write:false ~stride:Sim.Units.page_size))
      in
      Sim.Table.add_row t
        [
          Printf.sprintf "%dx%d" sets ways;
          Sim.Table.cell_int (sets * ways);
          Sim.Table.cell_int (stat k "tlb_miss" - m0);
          Sim.Table.cell_float tt;
        ])
    [ (16, 4); (64, 4); (128, 8); (512, 8); (1024, 16) ];
  t

(* A6: heap designs under one churn trace. *)
let tab_heaps () =
  let t = Sim.Table.create ~title:"A6 - heap designs under churn (1000 ops, <=256KiB objects)"
      ~columns:[ "heap"; "total us"; "footprint"; "central refills" ]
  in
  let trace =
    Wl.Churn.generate ~rng:(Sim.Rng.create ~seed:12) ~ops:1000 ~max_bytes:(Sim.Units.kib 256) ()
  in
  let replay k malloc free touch =
    let driver = { Wl.Churn.h_malloc = malloc; h_free = free; h_touch = touch } in
    time_us k (fun () -> ignore (Wl.Churn.run trace driver))
  in
  (* dlmalloc-style *)
  let k1 = kernel ~dram:(Sim.Units.gib 1) () in
  let p1 = K.create_process k1 () in
  let mh = Heap.Malloc_sim.create k1 p1 in
  let t1 =
    replay k1
      (fun ~bytes -> Heap.Malloc_sim.malloc mh ~bytes)
      (Heap.Malloc_sim.free mh)
      (fun ~va ~bytes ->
        ignore (K.access_range k1 p1 ~va ~len:(max 1 bytes) ~write:true ~stride:Sim.Units.page_size))
  in
  Sim.Table.add_row t
    [ "dlmalloc-style"; Sim.Table.cell_float t1;
      Sim.Table.cell_bytes (Heap.Malloc_sim.footprint_bytes mh); "-" ];
  (* tcmalloc-style, 4 threads round-robin *)
  let k2 = kernel ~dram:(Sim.Units.gib 1) () in
  let p2 = K.create_process k2 () in
  let tc = Heap.Tcmalloc_sim.create k2 p2 ~threads:4 () in
  let next = ref 0 in
  let thread_of = Hashtbl.create 64 in
  let t2 =
    replay k2
      (fun ~bytes ->
        let th = !next mod 4 in
        incr next;
        let va = Heap.Tcmalloc_sim.malloc tc ~thread:th ~bytes in
        Hashtbl.replace thread_of va th;
        va)
      (fun va ->
        let th = Option.value (Hashtbl.find_opt thread_of va) ~default:0 in
        Heap.Tcmalloc_sim.free tc ~thread:th va)
      (fun ~va ~bytes ->
        ignore (K.access_range k2 p2 ~va ~len:(max 1 bytes) ~write:true ~stride:Sim.Units.page_size))
  in
  Sim.Table.add_row t
    [ "tcmalloc-style (4 threads)"; Sim.Table.cell_float t2;
      Sim.Table.cell_bytes (Heap.Tcmalloc_sim.footprint_bytes tc);
      Sim.Table.cell_int (Heap.Tcmalloc_sim.central_refills tc) ];
  (* FOM heap *)
  let k3, fom = kernel_and_fom () in
  let p3 = K.create_process k3 () in
  let fh = Heap.Fom_heap.create fom p3 () in
  let t3 =
    replay k3
      (fun ~bytes -> Heap.Fom_heap.malloc fh ~bytes)
      (Heap.Fom_heap.free fh)
      (fun ~va ~bytes ->
        ignore
          (F.access_range fom p3 ~va ~len:(max 1 bytes) ~write:true ~stride:Sim.Units.page_size))
  in
  Sim.Table.add_row t
    [ "FOM heap (file-backed)"; Sim.Table.cell_float t3;
      Sim.Table.cell_bytes (Heap.Fom_heap.footprint_bytes fh); "-" ];
  t

(* A7: fork cost is per-resident-page in the baseline; the FOM equivalent
   of "start a sibling worker over the same state" is whole-file mapping. *)
let tab_fork () =
  let t = Sim.Table.create ~title:"A7 - fork vs FOM sibling launch (us)"
      ~columns:[ "resident"; "fork (CoW setup)"; "FOM map same files" ]
  in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      let k = kernel ~dram:(Sim.Units.gib 2) () in
      let parent = K.create_process k () in
      let va = K.mmap_anon k parent ~len ~prot:Hw.Prot.rw ~populate:true in
      ignore va;
      let t_fork = time_us k (fun () -> ignore (Os.Fork.fork k parent)) in
      let k2, fom = kernel_and_fom ~nvm:(Sim.Units.gib 4) () in
      let p0 = K.create_process k2 () in
      ignore (F.alloc fom p0 ~name:"/state" ~len ~prot:Hw.Prot.rw ());
      let t_fom =
        time_us k2 (fun () ->
            let sibling = K.create_process k2 () in
            ignore (F.map_path fom sibling "/state"))
      in
      Sim.Table.add_row t
        [ Sim.Table.cell_bytes len; Sim.Table.cell_float t_fork; Sim.Table.cell_float t_fom ])
    [ 1; 4; 16; 64 ];
  t

(* A8: user-level paging (the paper's answer for apps that still need
   swapping): window scan overhead vs mapping the whole file. *)
let tab_uswap () =
  let t = Sim.Table.create
      ~title:"A8 - user-level swap: scan 16MiB through a window (us, faults)"
      ~columns:[ "window"; "scan us"; "userfaults"; "writebacks" ]
  in
  let file_len = Sim.Units.mib 16 in
  List.iter
    (fun window_pages ->
      let k, fom = kernel_and_fom () in
      let p = K.create_process k () in
      let fs = F.fs fom in
      let ino = Fs.Memfs.create_file fs "/swapfile" ~persistence:Fs.Inode.Persistent in
      Fs.Memfs.extend fs ino ~bytes_wanted:file_len;
      let u = O1mem.Uswap.create fom p ~backing_path:"/swapfile" ~window_pages in
      let f0 = stat k "userfault" in
      let tt =
        time_us k (fun () ->
            for i = 0 to (file_len / Sim.Units.page_size) - 1 do
              ignore (O1mem.Uswap.read_byte u ~off:(i * Sim.Units.page_size))
            done)
      in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes (window_pages * Sim.Units.page_size);
          Sim.Table.cell_float tt;
          Sim.Table.cell_int (stat k "userfault" - f0);
          Sim.Table.cell_int (O1mem.Uswap.writebacks u);
        ])
    [ 64; 256; 1024; 4096 ];
  (* Reference: the whole file mapped, no window. *)
  let k, fom = kernel_and_fom () in
  let p = K.create_process k () in
  let r = F.alloc fom p ~name:"/swapfile" ~len:file_len ~prot:Hw.Prot.rw () in
  let tt = time_us k (fun () -> touch_pages_fom fom p ~va:r.F.va ~len:file_len ~write:false) in
  Sim.Table.add_row t [ "whole file (FOM)"; Sim.Table.cell_float tt; "0"; "0" ];
  t

(* A9: the VMA-merging optimisation FOM gives up (paper §4.1): region
   metadata under fragmented anonymous mmaps vs FOM files. *)
let tab_vma_merging () =
  let t = Sim.Table.create ~title:"A9 - region metadata: VMA merging vs one-file-per-alloc"
      ~columns:[ "allocs"; "baseline VMAs (merged)"; "FOM files" ]
  in
  List.iter
    (fun n ->
      let k = kernel () in
      let p = K.create_process k () in
      for _ = 1 to n do
        ignore (K.mmap_anon k p ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ~populate:false)
      done;
      let k2, fom = kernel_and_fom () in
      let p2 = K.create_process k2 () in
      for _ = 1 to n do
        ignore (F.alloc fom p2 ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw ())
      done;
      Sim.Table.add_row t
        [
          Sim.Table.cell_int n;
          Sim.Table.cell_int (Os.Address_space.vma_count p.Os.Proc.aspace);
          Sim.Table.cell_int (List.length (F.regions_of fom p2));
        ])
    [ 8; 64; 256 ];
  t

(* A10: cache behaviour. Working-set cliff under the cache hierarchy,
   and the report's LLC-miss comparison between malloc and PMFS paths. *)
let tab_cache () =
  let t = Sim.Table.create ~title:"A10a - cache working-set cliff (cycles/access, 2nd pass)"
      ~columns:[ "working set"; "l1 hits"; "l2 hits"; "llc hits"; "llc misses"; "cyc/access" ]
  in
  List.iter
    (fun kb ->
      let clock = Sim.Clock.create Sim.Cost_model.default in
      let stats = Sim.Stats.create () in
      let mem =
        Physmem.Phys_mem.create ~clock ~stats ~dram_bytes:(Sim.Units.mib 64) ~nvm_bytes:0 ()
      in
      let cache = Physmem.Cache_hier.create ~clock ~stats () in
      Physmem.Phys_mem.attach_cache mem cache;
      let lines = Sim.Units.kib kb / 64 in
      for i = 0 to lines - 1 do
        Physmem.Phys_mem.touch mem (i * 64)
      done;
      Sim.Stats.reset stats;
      let before = Sim.Clock.now clock in
      for i = 0 to lines - 1 do
        Physmem.Phys_mem.touch mem (i * 64)
      done;
      let cyc = Sim.Clock.elapsed clock ~since:before in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes (Sim.Units.kib kb);
          Sim.Table.cell_int (Sim.Stats.get stats "l1_hit");
          Sim.Table.cell_int (Sim.Stats.get stats "l2_hit");
          Sim.Table.cell_int (Sim.Stats.get stats "llc_hit");
          Sim.Table.cell_int (Sim.Stats.get stats "llc_miss");
          Sim.Table.cell_float ~dp:1 (float_of_int cyc /. float_of_int lines);
        ])
    [ 16; 128; 1024; 4096; 16384 ];
  t

let tab_cache_alloc_paths () =
  let t = Sim.Table.create
      ~title:"A10b - LLC misses while allocating+touching 4096 pages (report's comparison)"
      ~columns:[ "path"; "llc misses"; "l1 hits"; "total us" ]
  in
  let with_cache k = Physmem.Phys_mem.attach_cache (K.mem k)
      (Physmem.Cache_hier.create ~clock:(K.clock k) ~stats:(K.stats k) ()) in
  let pages = 4096 in
  let len = pages * Sim.Units.page_size in
  (* malloc path *)
  let k = kernel ~dram:(Sim.Units.gib 1) () in
  with_cache k;
  let p = K.create_process k () in
  let h = Heap.Malloc_sim.create k p in
  let tt =
    time_us k (fun () ->
        let va = Heap.Malloc_sim.malloc h ~bytes:len in
        touch_pages_kernel k p ~va ~len ~write:true)
  in
  Sim.Table.add_row t
    [ "malloc (demand faults)"; Sim.Table.cell_int (stat k "llc_miss");
      Sim.Table.cell_int (stat k "l1_hit"); Sim.Table.cell_float tt ];
  (* PMFS / FOM path *)
  let k2, fom = kernel_and_fom () in
  with_cache k2;
  let p2 = K.create_process k2 () in
  let tt2 =
    time_us k2 (fun () ->
        let r = F.alloc fom p2 ~len ~prot:Hw.Prot.rw () in
        touch_pages_fom fom p2 ~va:r.F.va ~len ~write:true)
  in
  Sim.Table.add_row t
    [ "pmfs file (FOM)"; Sim.Table.cell_int (stat k2 "llc_miss");
      Sim.Table.cell_int (stat k2 "l1_hit"); Sim.Table.cell_float tt2 ];
  t

(* A11: context switches without ASIDs flush the TLB; working sets must
   be refetched after every switch. *)
let tab_context_switch () =
  let t = Sim.Table.create
      ~title:"A11 - 2 processes ping-pong over 2MiB working sets, 50 switches (us)"
      ~columns:[ "variant"; "total us"; "tlb misses" ]
  in
  let run asids =
    let k = kernel ~dram:(Sim.Units.gib 1) () in
    let p1 = K.create_process k () in
    let p2 = K.create_process k () in
    let len = Sim.Units.mib 2 in
    let va1 = K.mmap_anon k p1 ~len ~prot:Hw.Prot.rw ~populate:true in
    let va2 = K.mmap_anon k p2 ~len ~prot:Hw.Prot.rw ~populate:true in
    (* Warm both. *)
    touch_pages_kernel k p1 ~va:va1 ~len ~write:false;
    touch_pages_kernel k p2 ~va:va2 ~len ~write:false;
    let m0 = stat k "tlb_miss" in
    let tt =
      time_us k (fun () ->
          for _ = 1 to 25 do
            K.context_switch k ~from_:p1 ~to_:p2 ~asids;
            touch_pages_kernel k p2 ~va:va2 ~len ~write:false;
            K.context_switch k ~from_:p2 ~to_:p1 ~asids;
            touch_pages_kernel k p1 ~va:va1 ~len ~write:false
          done)
    in
    (tt, stat k "tlb_miss" - m0)
  in
  let t_flush, m_flush = run false in
  Sim.Table.add_row t
    [ "no ASIDs (flush per switch)"; Sim.Table.cell_float t_flush; Sim.Table.cell_int m_flush ];
  let t_asid, m_asid = run true in
  Sim.Table.add_row t
    [ "ASIDs (entries survive)"; Sim.Table.cell_float t_asid; Sim.Table.cell_int m_asid ];
  t

(* A12: shootdown cost scales with core count; per-page unmap multiplies
   it by the page count, range unmap pays it once. *)
let tab_smp_shootdown () =
  let t = Sim.Table.create ~title:"A12 - unmap 64MiB on an N-core machine (us)"
      ~columns:[ "cores"; "per-page unmap"; "range unmap"; "ratio" ]
  in
  List.iter
    (fun cores ->
      let cm = { Sim.Cost_model.default with Sim.Cost_model.cores } in
      let cfg = { (Bench_env.config ~nvm:(Sim.Units.gib 2) ()) with Os.Kernel.cost_model = cm } in
      let k = K.create ~config:cfg () in
      let fom = F.create k () in
      let p = K.create_process k ~range_translations:true () in
      let len = Sim.Units.mib 64 in
      let r1 = F.alloc fom p ~strategy:F.Per_page ~len ~prot:Hw.Prot.rw () in
      (* Warm the TLB so the shootdowns have entries to kill. *)
      touch_pages_fom fom p ~va:r1.F.va ~len ~write:false;
      let t_pp = time_us k (fun () -> F.free fom p r1) in
      let r2 = F.alloc fom p ~strategy:F.Range_translation ~len ~prot:Hw.Prot.rw () in
      touch_pages_fom fom p ~va:r2.F.va ~len ~write:false;
      let t_rt = time_us k (fun () -> F.free fom p r2) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_int cores;
          Sim.Table.cell_float t_pp;
          Sim.Table.cell_float t_rt;
          Sim.Table.cell_float ~dp:0 (t_pp /. t_rt);
        ])
    [ 1; 4; 16; 64 ];
  t

(* A13: madvise heap trimming — the per-page release path FOM retires. *)
let tab_madvise () =
  let t = Sim.Table.create ~title:"A13 - releasing idle heap memory (us)"
      ~columns:[ "variant"; "release us"; "pages released" ]
  in
  (* Baseline: churn leaves free blocks; trim madvises them away. *)
  let k = kernel ~dram:(Sim.Units.gib 1) () in
  let p = K.create_process k () in
  let h = Heap.Malloc_sim.create k p in
  let blocks = List.init 512 (fun _ -> Heap.Malloc_sim.malloc h ~bytes:(Sim.Units.kib 16)) in
  List.iter (fun va -> touch_pages_kernel k p ~va ~len:(Sim.Units.kib 16) ~write:true) blocks;
  List.iter (Heap.Malloc_sim.free h) blocks;
  let released = ref 0 in
  let t_trim = time_us k (fun () -> released := Heap.Malloc_sim.trim h) in
  Sim.Table.add_row t
    [ "malloc + madvise trim"; Sim.Table.cell_float t_trim; Sim.Table.cell_int !released ];
  (* FOM: freeing the file releases everything wholesale. *)
  let k2, fom = kernel_and_fom () in
  let p2 = K.create_process k2 () in
  let r = F.alloc fom p2 ~len:(512 * Sim.Units.kib 16) ~prot:Hw.Prot.rw () in
  touch_pages_fom fom p2 ~va:r.F.va ~len:r.F.len ~write:true;
  let t_free = time_us k2 (fun () -> F.free fom p2 r) in
  Sim.Table.add_row t
    [ "FOM whole-file free"; Sim.Table.cell_float t_free;
      Sim.Table.cell_int (512 * Sim.Units.kib 16 / Sim.Units.page_size) ];
  t

(* A14: fragmentation is the enemy of O(1). A fragmented FS splits files
   across extents -> more range entries, more grafted masters' extents;
   defragmentation restores one-extent files. *)
let tab_fragmentation () =
  let t = Sim.Table.create
      ~title:"A14 - FS fragmentation vs range entries (8MiB file), and defrag"
      ~columns:[ "state"; "avg extents/file"; "entries for 8MiB"; "map us" ]
  in
  let k, fom = kernel_and_fom ~nvm:(Sim.Units.mib 512) () in
  let fs = F.fs fom in
  let p = K.create_process k ~range_translations:true () in
  let rt = Option.get (Os.Address_space.range_table p.Os.Proc.aspace) in
  let measure state =
    let e0 = Hw.Range_table.entry_count rt in
    let tt =
      time_us k (fun () ->
          ignore
            (F.alloc fom p ~name:("/probe-" ^ state) ~strategy:F.Range_translation
               ~len:(Sim.Units.mib 8) ~prot:Hw.Prot.rw ()))
    in
    Sim.Table.add_row t
      [
        state;
        Sim.Table.cell_float ~dp:2 (Fs.Memfs.average_extents_per_file fs);
        Sim.Table.cell_int (Hw.Range_table.entry_count rt - e0);
        Sim.Table.cell_float tt;
      ]
  in
  measure "fresh FS";
  (* Fragment: interleave two files' 128 KiB extents until the FS is
     completely full, then delete one — free space is now all 32-frame
     holes. *)
  let a = Fs.Memfs.create_file fs "/frag-a" ~persistence:Fs.Inode.Volatile in
  let b = Fs.Memfs.create_file fs "/frag-b" ~persistence:Fs.Inode.Volatile in
  (try
     while true do
       Fs.Memfs.extend fs a ~bytes_wanted:(Sim.Units.kib 128);
       Fs.Memfs.extend fs b ~bytes_wanted:(Sim.Units.kib 128)
     done
   with Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> ());
  Fs.Memfs.unlink fs "/frag-b";
  measure "fragmented (holes of 128KiB)";
  (* The workload that fragmented the disk winds down (most of /frag-a is
     truncated away, merging holes into big runs); compaction can then
     restore one-extent files. *)
  Fs.Memfs.truncate fs a ~bytes:(Sim.Units.mib 8);
  ignore (Fs.Memfs.defragment fs ());
  measure "after defragment";
  t

(* A15: O(1) is about tails. Allocation latency distribution under churn:
   demand-paged malloc pays for sizes at touch time; FOM's cost is flat
   per operation class. *)
let tab_tail_latency () =
  let t = Sim.Table.create ~title:"A15 - alloc+touch latency distribution under churn (us)"
      ~columns:[ "backend"; "p50"; "p99"; "max"; "mean" ]
  in
  let trace =
    Wl.Churn.generate ~rng:(Sim.Rng.create ~seed:31) ~ops:600 ~max_bytes:(Sim.Units.mib 1) ()
  in
  let percentiles h =
    [
      Sim.Table.cell_float ~dp:1
        (Sim.Cost_model.cycles_to_us Sim.Cost_model.default (Sim.Histogram.percentile h 50.0));
      Sim.Table.cell_float ~dp:1
        (Sim.Cost_model.cycles_to_us Sim.Cost_model.default (Sim.Histogram.percentile h 99.0));
      Sim.Table.cell_float ~dp:1
        (Sim.Cost_model.cycles_to_us Sim.Cost_model.default (Sim.Histogram.max_value h));
      Sim.Table.cell_float ~dp:1
        (Sim.Cost_model.cycles_to_us Sim.Cost_model.default (int_of_float (Sim.Histogram.mean h)));
    ]
  in
  (* Baseline: malloc + touch per allocation. *)
  let k = kernel ~dram:(Sim.Units.gib 2) () in
  let p = K.create_process k () in
  let h = Heap.Malloc_sim.create k p in
  let hist = Sim.Histogram.create () in
  let clock = K.clock k in
  let sizes = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Wl.Churn.Alloc { id; bytes } ->
        let before = Sim.Clock.now clock in
        let va = Heap.Malloc_sim.malloc h ~bytes in
        touch_pages_kernel k p ~va ~len:bytes ~write:true;
        Sim.Histogram.observe hist (Sim.Clock.elapsed clock ~since:before);
        Hashtbl.replace sizes id (va, bytes)
      | Wl.Churn.Free { id } ->
        let va, _ = Hashtbl.find sizes id in
        Heap.Malloc_sim.free h va;
        Hashtbl.remove sizes id
      | Wl.Churn.Touch _ -> ())
    trace;
  Sim.Table.add_row t ("malloc (demand)" :: percentiles hist);
  (* FOM. *)
  let k2, fom = kernel_and_fom () in
  let p2 = K.create_process k2 () in
  let fh = Heap.Fom_heap.create fom p2 () in
  let hist2 = Sim.Histogram.create () in
  let clock2 = K.clock k2 in
  let sizes2 = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Wl.Churn.Alloc { id; bytes } ->
        let before = Sim.Clock.now clock2 in
        let va = Heap.Fom_heap.malloc fh ~bytes in
        touch_pages_fom fom p2 ~va ~len:bytes ~write:true;
        Sim.Histogram.observe hist2 (Sim.Clock.elapsed clock2 ~since:before);
        Hashtbl.replace sizes2 id va
      | Wl.Churn.Free { id } ->
        Heap.Fom_heap.free fh (Hashtbl.find sizes2 id);
        Hashtbl.remove sizes2 id
      | Wl.Churn.Touch _ -> ())
    trace;
  Sim.Table.add_row t ("FOM heap" :: percentiles hist2);
  t

(* A16: even the baseline's swap traffic can land in NVM. Throughput of
   reclaiming dirty pages under the two swap backings. *)
let tab_swap_backing () =
  let t = Sim.Table.create ~title:"A16 - evict 2048 dirty pages: swap device vs PMFS swapfile (us)"
      ~columns:[ "backing"; "evict us"; "per page us" ]
  in
  let run name backing =
    let cfg =
      { (Bench_env.config ~dram:(Sim.Units.gib 1) ~nvm:(Sim.Units.gib 1) ()) with
        Os.Kernel.swap_backing = backing }
    in
    let k = K.create ~config:cfg () in
    let p = K.create_process k () in
    let len = Sim.Units.mib 16 in
    let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
    touch_pages_kernel k p ~va ~len ~write:true;
    (* Age the pages once so the scan's second-chance pass evicts. *)
    ignore (Os.Reclaim.scan (K.reclaim k) ~target_frames:0);
    let frames = len / Sim.Units.page_size in
    let tt = time_us k (fun () -> ignore (Os.Reclaim.scan (K.reclaim k) ~target_frames:frames)) in
    Sim.Table.add_row t
      [ name; Sim.Table.cell_float tt; Sim.Table.cell_float ~dp:2 (tt /. float_of_int frames) ]
  in
  run "NVMe-class device" `Device;
  run "PMFS swapfile (NVM)" `Pmfs;
  t

(* A17: contiguity after churn. The paper: Linux "does not aggressively
   merge pages, so there may be contiguity present that is not available
   for use". Compare merging vs non-merging buddy and the FS extent
   allocator after identical alloc/free churn. *)
let tab_contiguity () =
  let t = Sim.Table.create
      ~title:"A17 - contiguity after churn: free 2MiB blocks available"
      ~columns:[ "allocator"; "free frames"; "free 2MiB blocks"; "largest run" ]
  in
  let rng_ops seed =
    (* A fixed random churn schedule of order-0..4 allocations. *)
    let rng = Sim.Rng.create ~seed in
    List.init 4000 (fun _ -> (Sim.Rng.int rng 5, Sim.Rng.int rng 3 = 0))
  in
  let churn_buddy ~merge =
    let mem =
      Physmem.Phys_mem.create ~clock:(Sim.Clock.create Sim.Cost_model.default)
        ~stats:(Sim.Stats.create ()) ~dram_bytes:(Sim.Units.mib 256) ~nvm_bytes:0 ()
    in
    let b = Alloc.Buddy.create ~mem ~first:0 ~count:(64 * 1024) ~merge () in
    let live = ref [] in
    List.iter
      (fun (order, free_one) ->
        (match Alloc.Buddy.alloc b ~order with
        | Some p -> live := (p, order) :: !live
        | None -> ());
        if free_one then
          match !live with
          | (p, o) :: rest ->
            Alloc.Buddy.free b p ~order:o;
            live := rest
          | [] -> ())
      (rng_ops 4242);
    (* Drain. *)
    List.iter (fun (p, o) -> Alloc.Buddy.free b p ~order:o) !live;
    let blocks = Alloc.Buddy.free_blocks_per_order b in
    let free_2m = ref 0 in
    for o = 9 to Alloc.Buddy.max_order b do
      free_2m := !free_2m + (blocks.(o) lsl (o - 9))
    done;
    let largest = match Alloc.Buddy.largest_free_order b with Some o -> 1 lsl o | None -> 0 in
    (Alloc.Buddy.free_frames_count b, !free_2m, largest)
  in
  let f1, b1, l1 = churn_buddy ~merge:true in
  Sim.Table.add_row t
    [ "buddy (merging)"; Sim.Table.cell_int f1; Sim.Table.cell_int b1; Sim.Table.cell_int l1 ];
  let f2, b2, l2 = churn_buddy ~merge:false in
  Sim.Table.add_row t
    [ "buddy (non-merging)"; Sim.Table.cell_int f2; Sim.Table.cell_int b2; Sim.Table.cell_int l2 ];
  (* Extent allocator under the same schedule (orders -> frame counts). *)
  let mem =
    Physmem.Phys_mem.create ~clock:(Sim.Clock.create Sim.Cost_model.default)
      ~stats:(Sim.Stats.create ()) ~dram_bytes:(Sim.Units.mib 256) ~nvm_bytes:0 ()
  in
  let e = Alloc.Extent_alloc.create ~mem ~first:0 ~count:(64 * 1024) ~policy:Alloc.Extent_alloc.First_fit in
  let live = ref [] in
  List.iter
    (fun (order, free_one) ->
      let frames = 1 lsl order in
      (match Alloc.Extent_alloc.alloc e ~frames with
      | Some p -> live := (p, frames) :: !live
      | None -> ());
      if free_one then
        match !live with
        | (p, n) :: rest ->
          Alloc.Extent_alloc.free e ~first:p ~frames:n;
          live := rest
        | [] -> ())
    (rng_ops 4242);
  List.iter (fun (p, n) -> Alloc.Extent_alloc.free e ~first:p ~frames:n) !live;
  Sim.Table.add_row t
    [
      "extent allocator (FS)";
      Sim.Table.cell_int (Alloc.Extent_alloc.free_frames e);
      Sim.Table.cell_int (Alloc.Extent_alloc.largest_free e / 512);
      Sim.Table.cell_int (Alloc.Extent_alloc.largest_free e);
    ];
  t

let run () =
  print_header "A1" "THP fixes contiguity after the fact; FOM extents are born contiguous.";
  Sim.Table.print (tab_thp ());
  print_header "A2" "With zeroing off the critical path, FOM allocation is near-O(1).";
  Sim.Table.print (tab_alloc_erase ());
  print_header "A3" "Graft windows grow with the file: GiB files need a couple of pointers.";
  Sim.Table.print (tab_graft_window ());
  print_header "A4" "Range-TLB capacity: how many live regions fit before misses appear.";
  Sim.Table.print (tab_range_tlb_capacity ());
  print_header "A5" "Page-TLB geometry: reach is entries x 4KiB; the scan never fits.";
  Sim.Table.print (tab_tlb_geometry ());
  print_header "A6" "Heap designs under one churn trace.";
  Sim.Table.print (tab_heaps ());
  print_header "A7" "fork does per-page CoW setup; FOM siblings map whole files.";
  Sim.Table.print (tab_fork ());
  print_header "A8" "Apps that still want swapping pay for it themselves (userfaultfd).";
  Sim.Table.print (tab_uswap ());
  print_header "A9" "The lost optimisation: VMA merging vs one file per allocation.";
  Sim.Table.print (tab_vma_merging ());
  print_header "A10" "Caches stay precious: working-set cliff, and the two allocation paths.";
  Sim.Table.print (tab_cache ());
  Sim.Table.print (tab_cache_alloc_paths ());
  print_header "A11" "Context switches without ASIDs flush the TLB every time.";
  Sim.Table.print (tab_context_switch ());
  print_header "A12" "Shootdowns scale with cores; whole-region unmap pays them once.";
  Sim.Table.print (tab_smp_shootdown ());
  print_header "A13" "Releasing idle heap memory: per-page madvise vs whole-file free.";
  Sim.Table.print (tab_madvise ());
  print_header "A14" "Fragmentation splits files into extents; defragmentation restores O(1).";
  Sim.Table.print (tab_fragmentation ());
  print_header "A15" "Predictable tails: allocation latency percentiles under churn.";
  Sim.Table.print (tab_tail_latency ());
  print_header "A16" "Swap media: the baseline's vestigial swap traffic, on NVMe vs in NVM.";
  Sim.Table.print (tab_swap_backing ());
  print_header "A17" "Contiguity after churn: non-merging buddies strand it; extents coalesce.";
  Sim.Table.print (tab_contiguity ())
