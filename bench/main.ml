(* Benchmark harness: regenerates every table and figure of the paper
   (sections E1..E17, printed as tables of *simulated* time), then runs a
   Bechamel suite timing the host-side cost of each experiment's core
   operation (one Test.make per experiment). *)

let separator title =
  Printf.printf "\n%s\n== %s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

let run_tables () =
  Printf.printf "o1mem bench harness - reproduction of 'Towards O(1) Memory' (HotOS'17)\n";
  Format.printf "%a@." Sim.Cost_model.pp Sim.Cost_model.default;
  Printf.printf "All times below are simulated (virtual 2GHz clock), deterministic.\n";
  separator "Mapping costs (E1, E2, E4, E8)";
  Experiments.Exp_mapping.run ();
  separator "Allocation costs (E3, E9, E14, E15)";
  Experiments.Exp_alloc.run ();
  separator "Page-table sharing (E5, E6, E16)";
  Experiments.Exp_sharing.run ();
  separator "Range translations and walk costs (E7, E10)";
  Experiments.Exp_range.run ();
  separator "OS economics (E11, E12, E13, E17)";
  Experiments.Exp_os.run ();
  separator "Ablations (A1..A9)";
  Experiments.Exp_ablation.run ();
  separator "Complexity classes (C1)";
  Experiments.Exp_complexity.run ();
  separator "Robustness (R1)";
  Experiments.Exp_faults.run ();
  separator "Store robustness (R2)";
  Experiments.Exp_store.run ()

(* ------------------------------------------------------------------ *)
(* Bechamel: host wall-clock of each experiment's core operation.      *)

open Bechamel
open Toolkit

module B = Experiments.Bench_env

let bechamel_tests () =
  let mk name f = Test.make ~name (Staged.stage f) in
  (* Long-lived fixtures; every thunk below is repeatable and leaves the
     machine in a steady state. *)
  let k1 = B.kernel () in
  let p1 = Os.Kernel.create_process k1 () in
  let fs1, path1, _ = B.tmpfs_file k1 ~bytes:(Sim.Units.kib 64) in
  let k2, fom2 = B.kernel_and_fom () in
  let p2 = Os.Kernel.create_process k2 ~range_translations:true () in
  let shared = O1mem.Fom.alloc fom2 p2 ~name:"/bench-shared" ~len:(Sim.Units.mib 8) ~prot:Hw.Prot.r () in
  ignore shared;
  let warm = O1mem.Fom.alloc fom2 p2 ~len:(Sim.Units.mib 1) ~prot:Hw.Prot.rw () in
  let k3 = B.kernel () in
  let p3 = Os.Kernel.create_process k3 () in
  let va3 = Os.Kernel.mmap_anon k3 p3 ~len:(Sim.Units.mib 1) ~prot:Hw.Prot.rw ~populate:true in
  [
    mk "E1:mmap_populate_64k" (fun () ->
        let va =
          Os.Kernel.mmap_file k1 p1 ~fs:fs1 ~path:path1 ~prot:Hw.Prot.r ~share:Os.Vma.Private
            ~populate:true ()
        in
        Os.Kernel.munmap k1 p1 ~va ~len:(Sim.Units.kib 64));
    mk "E2:touch_256_pages_populated" (fun () ->
        B.touch_pages_kernel k3 p3 ~va:va3 ~len:(Sim.Units.mib 1) ~write:false);
    mk "E3:fom_alloc_free_64k" (fun () ->
        let r = O1mem.Fom.alloc fom2 p2 ~len:(Sim.Units.kib 64) ~prot:Hw.Prot.rw () in
        O1mem.Fom.free fom2 p2 r);
    mk "E5:graft_map_unmap_8m" (fun () ->
        let r = O1mem.Fom.map_path fom2 p2 "/bench-shared" in
        O1mem.Fom.unmap fom2 p2 r);
    mk "E7:range_alloc_touch_free_1m" (fun () ->
        let r =
          O1mem.Fom.alloc fom2 p2 ~strategy:O1mem.Fom.Range_translation ~len:(Sim.Units.mib 1)
            ~prot:Hw.Prot.rw ()
        in
        B.touch_pages_fom fom2 p2 ~va:r.O1mem.Fom.va ~len:r.O1mem.Fom.len ~write:false;
        O1mem.Fom.free fom2 p2 r);
    mk "E8:read_syscall_16k" (fun () ->
        let ino = Option.get (Fs.Memfs.lookup fs1 path1) in
        ignore (Os.Kernel.read_syscall k1 p1 ~fs:fs1 ~ino ~off:0 ~len:(Sim.Units.kib 16)));
    mk "E9:bulk_erase_16m" (fun () ->
        let e = O1mem.Erase.create ~mem:(Os.Kernel.mem k1) ~strategy:O1mem.Erase.Bulk_device in
        O1mem.Erase.erase_extent e ~first:0 ~count:4096);
    mk "E12:discard_pressure" (fun () ->
        let d = O1mem.Discard.create ~fs:(O1mem.Fom.fs fom2) in
        O1mem.Discard.register_cache_file d ~path:"/bench-cache" ~size:(Sim.Units.kib 256);
        ignore (O1mem.Discard.pressure d ~needed_bytes:(Sim.Units.kib 256)));
    mk "E14:fom_touch_warm_1m" (fun () ->
        B.touch_pages_fom fom2 p2 ~va:warm.O1mem.Fom.va ~len:warm.O1mem.Fom.len ~write:true);
    mk "E11:fs_study_small" (fun () ->
        ignore
          (Wl.Fs_study.run ~rng:(Sim.Rng.create ~seed:1)
             { Wl.Fs_study.default_params with Wl.Fs_study.machines = 20; years = 3 }));
  ]

let run_bechamel () =
  separator "Bechamel micro-benchmarks (host wall-clock of the simulator itself)";
  let tests = bechamel_tests () in
  let test = Test.make_grouped ~name:"o1mem" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _witness tbl ->
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        (List.sort compare rows))
    merged

(* ------------------------------------------------------------------ *)
(* --json [--out FILE] [--smoke]: run the deterministic metrics workload
   (plus the complexity sweeps) and write the JSON export to FILE,
   defaulting to BENCH_<date>.json. The default file name depends on the
   host (today's date), and the appended "throughput" (wall-clock ops/sec
   medians over k trials; --smoke shrinks its workloads) and "host"
   (Hostprof attribution: ns noisy, allocated words deterministic)
   sections mix in host measurements; everything else is purely
   virtual-clock-derived and byte-identical across machines — which is
   why bench-diff gates on those sections, reports on throughput/host ns,
   and gates host allocated words only under --gate-host-alloc. *)

let smoke () = Array.exists (( = ) "--smoke") Sys.argv

let run_json () =
  let rec out_arg = function
    | "--out" :: f :: _ -> Some f
    | _ :: tl -> out_arg tl
    | [] -> None
  in
  let file =
    match out_arg (Array.to_list Sys.argv) with
    | Some f -> f
    | None ->
      let tm = Unix.localtime (Unix.time ()) in
      Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday
  in
  let json =
    match Experiments.Exp_metrics.run_to_json ~events_limit:256 () with
    | Sim.Json.Obj fields ->
      Sim.Json.Obj
        (fields
        @ [
            ("throughput", Experiments.Exp_throughput.to_json ~smoke:(smoke ()) ());
            ("host", Experiments.Exp_hostprof.to_json ());
          ])
    | other -> other
  in
  let oc = open_out file in
  output_string oc (Sim.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file

let () =
  if Array.exists (( = ) "--json") Sys.argv then run_json ()
  else if Array.exists (( = ) "--throughput") Sys.argv then
    Experiments.Exp_throughput.run ~smoke:(smoke ()) ()
  else begin
    run_tables ();
    run_bechamel ();
    Printf.printf "\nDone.\n"
  end
