(* R1 — does it survive? The robustness experiment behind the "faults"
   section of the bench JSON:

   - recovery scaling: crash + recover over n persistent FOM files and
     fit the virtual-clock recovery cost — the paper's persistence story
     only holds if recovery is O(files), i.e. O(1) per file;
   - injection overhead: the exact same workload with the fault plane
     detached vs attached-but-never-firing must cost the same cycles —
     the plane is free when off;
   - graceful degradation: a sustained frame-allocation fault plan, and
     how often the reclaim-then-retry pass saved the allocation vs a
     typed OOM;
   - the crash explorers: power failure at every durable boundary of a
     WAL workload and of a full FOM machine, with zero invariant
     violations.

   Everything runs on the virtual clock with fixed seeds, so every
   number here is bit-identical across runs and hosts. *)

module K = Os.Kernel
module F = O1mem.Fom
module FI = Sim.Fault_inject
module C = Sim.Complexity
open Bench_env

(* ------------------------- recovery scaling ------------------------ *)

let recovery_files = [ 4; 8; 16; 32; 64 ]

let recovery_point n =
  let k, fom = kernel_and_fom ~dram:(Sim.Units.mib 64) ~nvm:(Sim.Units.mib 64) () in
  let p = K.create_process k () in
  for i = 1 to n do
    ignore
      (F.alloc fom p ~name:(Printf.sprintf "/r%d" i) ~persistence:Fs.Inode.Persistent
         ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ())
  done;
  let report = O1mem.Persistence.crash_and_recover fom in
  (n, report.O1mem.Persistence.recovery_cycles)

(* ------------------------ injection overhead ------------------------ *)

(* A workload that crosses every injection site: anonymous faults
   (frame_alloc_fail, zero_cache_empty), munmap shootdowns
   (tlb_ack_lost), and journaled FOM allocation on PMFS (quota_enospc,
   wal_partial_flush, nvm_torn_line, nvm_bit_flip, durable_step). *)
let overhead_workload k =
  let fom = F.create k () in
  let p = K.create_process k () in
  let len = Sim.Units.kib 64 in
  let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
  ignore (K.access_range k p ~va ~len ~write:true ~stride:Sim.Units.page_size);
  K.munmap k p ~va ~len;
  ignore (K.background_zero k ~budget_frames:8);
  let r = F.alloc fom p ~name:"/ovh" ~persistence:Fs.Inode.Persistent ~len:(Sim.Units.kib 32)
      ~prot:Hw.Prot.rw () in
  ignore (F.access_range fom p ~va:r.F.va ~len:r.F.len ~write:true ~stride:Sim.Units.page_size);
  F.free fom p r

let overhead_cycles ~attached =
  let k = kernel ~dram:(Sim.Units.mib 64) ~nvm:(Sim.Units.mib 64) () in
  if attached then begin
    (* Attached and armed, but at probability zero: every site is
       consulted on its hot path yet never fires. *)
    let plane = FI.create ~seed:3 ~stats:(K.stats k) () in
    Sim.Trace.attach_faults (K.trace k) plane;
    List.iter (fun site -> FI.arm plane ~site (FI.Prob 0.0)) FI.all_sites
  end;
  overhead_workload k;
  Sim.Clock.now (K.clock k)

(* ------------------------------ results ----------------------------- *)

type results = {
  points : (int * int) list;
  fit : C.fit;
  cycles_off : int;
  cycles_on : int;
  degradation : O1mem.Chaos.plan_outcome;
  wal : O1mem.Chaos.explorer_report;
  fs : O1mem.Chaos.explorer_report;
}

let results =
  lazy
    (let points = List.map recovery_point recovery_files in
     {
       points;
       fit = C.fit points;
       cycles_off = overhead_cycles ~attached:false;
       cycles_on = overhead_cycles ~attached:true;
       degradation = O1mem.Chaos.run_plan ~seed:42 ~plan:"alloc" ();
       wal = O1mem.Chaos.explore_wal ~records:6 ~seed:7 ();
       fs = O1mem.Chaos.explore_fs ~files:4 ~seed:11 ();
     })

let explorer_json (r : O1mem.Chaos.explorer_report) =
  Sim.Json.Obj
    [
      ("steps", Sim.Json.Int r.O1mem.Chaos.steps);
      ("fences", Sim.Json.Int r.O1mem.Chaos.fences);
      ("crashes", Sim.Json.Int r.O1mem.Chaos.crashes);
      ("violations", Sim.Json.Int (List.length r.O1mem.Chaos.violations));
    ]

let to_json () =
  let r = Lazy.force results in
  let fit_fields = match C.fit_to_json r.fit with Sim.Json.Obj f -> f | _ -> [] in
  Sim.Json.Obj
    [
      ( "recovery",
        Sim.Json.Obj
          (( "points",
             Sim.Json.List
               (List.map
                  (fun (n, c) ->
                    Sim.Json.Obj [ ("files", Sim.Json.Int n); ("cycles", Sim.Json.Int c) ])
                  r.points) )
          :: fit_fields) );
      ( "overhead",
        Sim.Json.Obj
          [
            ("cycles_off", Sim.Json.Int r.cycles_off);
            ("cycles_on", Sim.Json.Int r.cycles_on);
            ("zero_cost_when_off", Sim.Json.Bool (r.cycles_off = r.cycles_on));
          ] );
      ( "degradation",
        Sim.Json.Obj
          [
            ("plan", Sim.Json.String r.degradation.O1mem.Chaos.plan);
            ("injected", Sim.Json.Int r.degradation.O1mem.Chaos.injected_total);
            ("enomem", Sim.Json.Int r.degradation.O1mem.Chaos.enomem);
            ("enospc", Sim.Json.Int r.degradation.O1mem.Chaos.enospc);
            ("retried", Sim.Json.Int r.degradation.O1mem.Chaos.retried);
            ("reclaimed_frames", Sim.Json.Int r.degradation.O1mem.Chaos.reclaimed_frames);
            ("ooms", Sim.Json.Int r.degradation.O1mem.Chaos.ooms);
            ("violations", Sim.Json.Int (List.length r.degradation.O1mem.Chaos.checks));
          ] );
      ( "explorer",
        Sim.Json.Obj [ ("wal", explorer_json r.wal); ("fs", explorer_json r.fs) ] );
    ]

let run () =
  let r = Lazy.force results in
  print_header "R1 - does it survive?"
    "Crash at every durable step, recover, check invariants; inject faults under load and degrade with typed errors.";
  let t =
    Sim.Table.create ~title:"R1 - robustness summary"
      ~columns:[ "probe"; "result"; "verdict" ]
  in
  let n_min, _ = List.hd r.points in
  let n_max, _ = List.nth r.points (List.length r.points - 1) in
  Sim.Table.add_row t
    [
      Printf.sprintf "recovery %d..%d files" n_min n_max;
      Printf.sprintf "%s (exponent %.2f)" (C.cls_name r.fit.C.cls) r.fit.C.exponent;
      (if C.rank r.fit.C.cls <= C.rank C.Linear then "O(files): ok" else "SUPERLINEAR");
    ];
  Sim.Table.add_row t
    [
      "injection plane off vs armed-never";
      Printf.sprintf "%d vs %d cycles" r.cycles_off r.cycles_on;
      (if r.cycles_off = r.cycles_on then "zero-cost: ok" else "COSTS CYCLES");
    ];
  Sim.Table.add_row t
    [
      "alloc plan degradation";
      Printf.sprintf "%d injected, %d retried, %d oom" r.degradation.O1mem.Chaos.injected_total
        r.degradation.O1mem.Chaos.retried r.degradation.O1mem.Chaos.ooms;
      (if r.degradation.O1mem.Chaos.checks = [] then "invariants: ok" else "VIOLATIONS");
    ];
  Sim.Table.add_row t
    [
      "WAL crash explorer";
      Printf.sprintf "%d steps, %d crashes" r.wal.O1mem.Chaos.steps r.wal.O1mem.Chaos.crashes;
      (if r.wal.O1mem.Chaos.violations = [] && r.wal.O1mem.Chaos.steps > 0 then "recovered: ok"
       else "VIOLATIONS");
    ];
  Sim.Table.add_row t
    [
      "FS crash explorer";
      Printf.sprintf "%d steps, %d crashes" r.fs.O1mem.Chaos.steps r.fs.O1mem.Chaos.crashes;
      (if r.fs.O1mem.Chaos.violations = [] && r.fs.O1mem.Chaos.steps > 0 then "recovered: ok"
       else "VIOLATIONS");
    ];
  print_string (Sim.Table.render t)
