(* T1 — wall-clock throughput of the simulator itself: real ops/sec
   (Unix.gettimeofday, NOT the virtual clock) over the churn and fs-study
   workloads. Unlike everything else in the bench export these numbers
   are machine- and load-dependent, so bench-diff treats the "throughput"
   section as report-only unless --gate-throughput is passed; their value
   is the trajectory, not any single run. *)

module K = Os.Kernel

let run_churn backend ~ops =
  let rng = Sim.Rng.create ~seed:42 in
  let trace = Wl.Churn.generate ~rng ~ops ~max_bytes:(Sim.Units.kib 64) () in
  let k = Bench_env.kernel ~dram:(Sim.Units.gib 1) ~nvm:(Sim.Units.gib 1) () in
  match backend with
  | `Malloc ->
    let p = K.create_process k () in
    let h = Heap.Malloc_sim.create k p in
    Wl.Churn.run trace
      {
        Wl.Churn.h_malloc = (fun ~bytes -> Heap.Malloc_sim.malloc h ~bytes);
        h_free = (fun va -> Heap.Malloc_sim.free h va);
        h_touch =
          (fun ~va ~bytes ->
            ignore
              (K.access_range k p ~va ~len:(max 1 bytes) ~write:true
                 ~stride:Sim.Units.page_size));
      }
  | `Fom ->
    let fom = O1mem.Fom.create k () in
    let p = K.create_process k () in
    let h = Heap.Fom_heap.create fom p () in
    Wl.Churn.run trace
      {
        Wl.Churn.h_malloc = (fun ~bytes -> Heap.Fom_heap.malloc h ~bytes);
        h_free = (fun va -> Heap.Fom_heap.free h va);
        h_touch =
          (fun ~va ~bytes ->
            ignore
              (O1mem.Fom.access_range fom p ~va ~len:(max 1 bytes) ~write:true
                 ~stride:Sim.Units.page_size));
      }

let run_fs_study ~machines =
  let r =
    Wl.Fs_study.run ~rng:(Sim.Rng.create ~seed:2017)
      { Wl.Fs_study.default_params with Wl.Fs_study.machines; years = 3 }
  in
  r.Wl.Fs_study.samples

(* Smoke mode keeps CI cheap; the full sizes are for trajectory numbers. *)
let scenarios ~smoke =
  let churn_ops = if smoke then 200 else 5000 in
  let machines = if smoke then 10 else 100 in
  [
    ("churn_malloc", fun () -> run_churn `Malloc ~ops:churn_ops);
    ("churn_fom", fun () -> run_churn `Fom ~ops:churn_ops);
    ("fs_study", fun () -> run_fs_study ~machines);
  ]

let measure ~smoke =
  List.map
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      let ops = f () in
      let seconds = Unix.gettimeofday () -. t0 in
      (name, ops, seconds))
    (scenarios ~smoke)

let ops_per_sec ops seconds = float_of_int ops /. Float.max seconds 1e-9

let to_json ?(smoke = false) () =
  Sim.Json.Obj
    (List.map
       (fun (name, ops, seconds) ->
         ( name,
           Sim.Json.Obj
             [
               ("ops", Sim.Json.Int ops);
               ("seconds", Sim.Json.Float seconds);
               ("ops_per_sec", Sim.Json.Float (ops_per_sec ops seconds));
             ] ))
       (measure ~smoke))

let run ?(smoke = false) () =
  Bench_env.print_header "T1"
    "Host throughput (wall clock, ops/sec) of the simulator over real workloads.";
  let t =
    Sim.Table.create
      ~title:
        (Printf.sprintf "T1 - wall-clock throughput%s" (if smoke then " (smoke)" else ""))
      ~columns:[ "scenario"; "ops"; "seconds"; "ops/sec" ]
  in
  List.iter
    (fun (name, ops, seconds) ->
      Sim.Table.add_row t
        [
          name;
          string_of_int ops;
          Sim.Table.cell_float ~dp:3 seconds;
          Sim.Table.cell_float ~dp:0 (ops_per_sec ops seconds);
        ])
    (measure ~smoke);
  Sim.Table.print t
