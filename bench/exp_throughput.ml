(* T1 — wall-clock throughput of the simulator itself: real ops/sec
   (monotonic host clock, NOT the virtual clock) over the churn and
   fs-study workloads.

   Variance-aware: every scenario runs [trials] times and reports the
   median with the inter-quartile range, because a single wall-clock
   number on a shared machine is mostly noise. `bench-diff` compares
   medians against an IQR-derived noise floor, and even then the
   "throughput" section is report-only unless --gate-throughput is
   passed; its value is the trajectory, not any single run. *)

module K = Os.Kernel

(* One monotonic host-nanosecond source for the whole bench layer. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let run_churn backend ~ops =
  let rng = Sim.Rng.create ~seed:42 in
  let trace = Wl.Churn.generate ~rng ~ops ~max_bytes:(Sim.Units.kib 64) () in
  let k = Bench_env.kernel ~dram:(Sim.Units.gib 1) ~nvm:(Sim.Units.gib 1) () in
  match backend with
  | `Malloc ->
    let p = K.create_process k () in
    let h = Heap.Malloc_sim.create k p in
    Wl.Churn.run trace
      {
        Wl.Churn.h_malloc = (fun ~bytes -> Heap.Malloc_sim.malloc h ~bytes);
        h_free = (fun va -> Heap.Malloc_sim.free h va);
        h_touch =
          (fun ~va ~bytes ->
            ignore
              (K.access_range k p ~va ~len:(max 1 bytes) ~write:true
                 ~stride:Sim.Units.page_size));
      }
  | `Fom ->
    let fom = O1mem.Fom.create k () in
    let p = K.create_process k () in
    let h = Heap.Fom_heap.create fom p () in
    Wl.Churn.run trace
      {
        Wl.Churn.h_malloc = (fun ~bytes -> Heap.Fom_heap.malloc h ~bytes);
        h_free = (fun va -> Heap.Fom_heap.free h va);
        h_touch =
          (fun ~va ~bytes ->
            ignore
              (O1mem.Fom.access_range fom p ~va ~len:(max 1 bytes) ~write:true
                 ~stride:Sim.Units.page_size));
      }

let run_fs_study ~machines ~years =
  let r =
    Wl.Fs_study.run ~rng:(Sim.Rng.create ~seed:2017)
      { Wl.Fs_study.default_params with Wl.Fs_study.machines; years }
  in
  r.Wl.Fs_study.samples

(* Explicit presets, not shared knobs: --smoke is a small-n preset whose
   cost is predictable in CI, and it still runs every workload (and every
   trial) at least once. The full sizes are for trajectory numbers. *)
type preset = { churn_ops : int; fs_machines : int; fs_years : int; trials : int }

let full_preset = { churn_ops = 5000; fs_machines = 100; fs_years = 3; trials = 5 }
let smoke_preset = { churn_ops = 200; fs_machines = 10; fs_years = 2; trials = 3 }
let preset ~smoke = if smoke then smoke_preset else full_preset

let scenarios p =
  [
    ("churn_malloc", fun () -> run_churn `Malloc ~ops:p.churn_ops);
    ("churn_fom", fun () -> run_churn `Fom ~ops:p.churn_ops);
    ("fs_study", fun () -> run_fs_study ~machines:p.fs_machines ~years:p.fs_years);
  ]

type measurement = {
  name : string;
  ops : int;  (* as returned by the run; identical across trials (deterministic workload) *)
  seconds : float list;  (* one wall-clock timing per trial *)
  ops_per_sec : float list;
  median_ops_per_sec : float;
  iqr_ops_per_sec : float;
  p25 : float;
  p75 : float;
  median_seconds : float;
}

let time_trial f =
  let t0 = now_ns () in
  let ops = f () in
  let seconds = float_of_int (max 1 (now_ns () - t0)) /. 1e9 in
  (ops, seconds)

let measure_one ~trials (name, f) =
  let runs = List.init trials (fun _ -> time_trial f) in
  let ops = match runs with (n, _) :: _ -> n | [] -> 0 in
  let seconds = List.map snd runs in
  let ops_per_sec = List.map (fun s -> float_of_int ops /. Float.max s 1e-9) seconds in
  let p25, med, p75 = Sim.Regress.quartiles ops_per_sec in
  {
    name;
    ops;
    seconds;
    ops_per_sec;
    median_ops_per_sec = med;
    iqr_ops_per_sec = p75 -. p25;
    p25;
    p75;
    median_seconds = Sim.Regress.median seconds;
  }

let measure ~smoke =
  let p = preset ~smoke in
  List.map (measure_one ~trials:p.trials) (scenarios p)

let to_json ?(smoke = false) () =
  let p = preset ~smoke in
  Sim.Json.Obj
    (List.map
       (fun m ->
         ( m.name,
           Sim.Json.Obj
             [
               ("ops", Sim.Json.Int m.ops);
               ("trials", Sim.Json.Int p.trials);
               ("seconds", Sim.Json.List (List.map (fun s -> Sim.Json.Float s) m.seconds));
               ( "ops_per_sec_trials",
                 Sim.Json.List (List.map (fun s -> Sim.Json.Float s) m.ops_per_sec) );
               ("median_ops_per_sec", Sim.Json.Float m.median_ops_per_sec);
               ("p25_ops_per_sec", Sim.Json.Float m.p25);
               ("p75_ops_per_sec", Sim.Json.Float m.p75);
               ("iqr_ops_per_sec", Sim.Json.Float m.iqr_ops_per_sec);
               ("median_seconds", Sim.Json.Float m.median_seconds);
             ] ))
       (measure ~smoke))

let run ?(smoke = false) () =
  let p = preset ~smoke in
  Bench_env.print_header "T1"
    "Host throughput (wall clock, ops/sec) of the simulator over real workloads.";
  let t =
    Sim.Table.create
      ~title:
        (Printf.sprintf "T1 - wall-clock throughput, %d trials%s" p.trials
           (if smoke then " (smoke preset)" else ""))
      ~columns:[ "scenario"; "ops"; "median s"; "median ops/sec"; "IQR ops/sec"; "IQR/median" ]
  in
  List.iter
    (fun m ->
      Sim.Table.add_row t
        [
          m.name;
          string_of_int m.ops;
          Sim.Table.cell_float ~dp:3 m.median_seconds;
          Sim.Table.cell_float ~dp:0 m.median_ops_per_sec;
          Sim.Table.cell_float ~dp:0 m.iqr_ops_per_sec;
          Sim.Table.cell_float ~dp:3 (m.iqr_ops_per_sec /. Float.max m.median_ops_per_sec 1e-9);
        ])
    (measure ~smoke);
  Sim.Table.print t
