(* R2 — does the store survive? The robustness experiment behind the
   "store" section of the bench JSON:

   - recovery vs population: preload n objects (YCSB-style zipfian
     updates), checkpoint, run a fixed 8-transaction burst, lose power
     with a transaction in flight, and fit the charged recovery cost
     against n. The store's persistence story only holds if recovery is
     O(files + WAL records) — the object count must not appear in the
     fit (the manifest snapshot is a persistent-index stand-in that
     recovery re-maps, not reads);
   - recovery vs log length: same machine, fixed 512 objects, growing
     post-checkpoint burst — recovery may grow with the records it
     replays, but no worse than linearly;
   - the crash explorer: power failure at every clwb/sfence/WAL boundary
     of a mixed put/delete/grow burst, plus torn-line and bit-flip arms
     whose damage must be detected (truncation or EIO), never served;
   - the "store" fault plan: injected allocation/commit/apply faults
     under load, a mid-plan crash, and an over-capacity commit that must
     degrade to a typed ENOSPC.

   Everything runs on the virtual clock with fixed seeds: deterministic
   across runs and hosts. *)

module K = Os.Kernel
module C = Sim.Complexity
module Kv = Store.Kv
open Bench_env

let store_machine () =
  let k = kernel ~dram:(Sim.Units.mib 64) ~nvm:(Sim.Units.mib 64) () in
  (k, O1mem.Fom.create k ())

let key i = Printf.sprintf "obj%04d" i
let value i v = String.make (64 + ((i * 13) mod 64)) (Char.chr (Char.code 'a' + ((i + v) mod 26)))

(* Preload in batches (the WAL auto-checkpoints when full), then cut the
   log so the burst is the only thing recovery replays. *)
let preload st ~keys =
  let batch = 64 in
  let i = ref 1 in
  while !i <= keys do
    ignore (Kv.begin_txn st);
    for j = !i to min keys (!i + batch - 1) do
      Kv.put st (key j) (value j 0)
    done;
    Kv.commit st;
    i := !i + batch
  done;
  Kv.checkpoint st

(* YCSB-flavoured update burst: 4 zipfian re-puts per transaction plus a
   root move to the last key written (so roots always name live data). *)
let burst st ~keys ~txns ~seed =
  let rng = Sim.Rng.create ~seed in
  for c = 1 to txns do
    ignore (Kv.begin_txn st);
    let last = ref 1 in
    for _ = 1 to 4 do
      let i = 1 + Sim.Rng.zipf rng ~n:keys ~theta:0.99 in
      Kv.put st (key i) (value i c);
      last := i
    done;
    Kv.set_root st "hot" (key !last);
    Kv.commit st
  done

(* One crash/recovery measurement: power fails with a transaction in
   flight; the charged recovery cost and the replay count come back. *)
let recovery_point ~keys ~txns =
  let k, fom = store_machine () in
  let p = K.create_process k () in
  let st = Kv.create fom p ~manifest_bytes:(Sim.Units.kib 256) ~name:"/bench" () in
  preload st ~keys;
  burst st ~keys ~txns ~seed:(keys + txns);
  ignore (Kv.begin_txn st);
  Kv.put st (key 1) (String.make 80 'x');
  let report = O1mem.Persistence.crash_and_recover fom in
  let cycles = report.O1mem.Persistence.recovery_cycles in
  let replayed = Kv.last_replayed st in
  let violations = List.length (Kv.verify st) in
  Kv.detach st;
  (cycles, replayed, violations)

let keys_sweep = [ 256; 512; 1024; 2048 ]
let records_sweep = [ 8; 16; 32; 64 ]
let fixed_txns = 8
let fixed_keys = 512

type results = {
  keys_points : (int * int * int) list; (* keys, cycles, replayed *)
  keys_fit : C.fit;
  rec_points : (int * int * int) list; (* txns, cycles, replayed *)
  rec_fit : C.fit;
  sweep_violations : int;
  explorer : Store.Chaos.report;
  degradation : O1mem.Chaos.plan_outcome;
}

let results =
  lazy
    (let viol = ref 0 in
     let keys_points =
       List.map
         (fun n ->
           let c, r, v = recovery_point ~keys:n ~txns:fixed_txns in
           viol := !viol + v;
           (n, c, r))
         keys_sweep
     in
     let rec_points =
       List.map
         (fun txns ->
           let c, r, v = recovery_point ~keys:fixed_keys ~txns in
           viol := !viol + v;
           (txns, c, r))
         records_sweep
     in
     let sweep_violations = !viol in
     {
       keys_points;
       keys_fit = C.fit (List.map (fun (n, c, _) -> (n, c)) keys_points);
       rec_points;
       rec_fit = C.fit (List.map (fun (t, c, _) -> (t, c)) rec_points);
       sweep_violations;
       explorer = Store.Chaos.explore_store ~keys:6 ~txns:3 ~seed:17 ();
       degradation = Store.Chaos.run_plan ~seed:42 ~rounds:12 ();
     })

let to_json () =
  let r = Lazy.force results in
  let fit_fields f = match C.fit_to_json f with Sim.Json.Obj l -> l | _ -> [] in
  let sweep name pts fit =
    ( name,
      Sim.Json.Obj
        (( "points",
           Sim.Json.List
             (List.map
                (fun (n, c, rep) ->
                  Sim.Json.Obj
                    [
                      ("n", Sim.Json.Int n);
                      ("cycles", Sim.Json.Int c);
                      ("replayed", Sim.Json.Int rep);
                    ])
                pts) )
        :: fit_fields fit) )
  in
  Sim.Json.Obj
    [
      sweep "recovery_keys" r.keys_points r.keys_fit;
      sweep "recovery_records" r.rec_points r.rec_fit;
      ("sweep_violations", Sim.Json.Int r.sweep_violations);
      ( "explorer",
        Sim.Json.Obj
          [
            ("steps", Sim.Json.Int r.explorer.Store.Chaos.steps);
            ("fences", Sim.Json.Int r.explorer.Store.Chaos.fences);
            ("crashes", Sim.Json.Int r.explorer.Store.Chaos.crashes);
            ("torn_detections", Sim.Json.Int r.explorer.Store.Chaos.torn_detections);
            ("flip_detections", Sim.Json.Int r.explorer.Store.Chaos.flip_detections);
            ("violations", Sim.Json.Int (List.length r.explorer.Store.Chaos.violations));
          ] );
      ( "degradation",
        Sim.Json.Obj
          [
            ("plan", Sim.Json.String r.degradation.O1mem.Chaos.plan);
            ("injected", Sim.Json.Int r.degradation.O1mem.Chaos.injected_total);
            ("enomem", Sim.Json.Int r.degradation.O1mem.Chaos.enomem);
            ("enospc", Sim.Json.Int r.degradation.O1mem.Chaos.enospc);
            ("retried", Sim.Json.Int r.degradation.O1mem.Chaos.retried);
            ("violations", Sim.Json.Int (List.length r.degradation.O1mem.Chaos.checks));
          ] );
    ]

let run () =
  let r = Lazy.force results in
  print_header "R2 - does the store survive?"
    "Transactional object store on the FOM heap: crash at every durable boundary, detect every torn write, recover in O(files + WAL records).";
  let t =
    Sim.Table.create ~title:"R2 - store robustness summary"
      ~columns:[ "probe"; "result"; "verdict" ]
  in
  Sim.Table.add_row t
    [
      Printf.sprintf "recovery vs objects (%d..%d, %d-txn burst)" (List.hd keys_sweep)
        (List.nth keys_sweep (List.length keys_sweep - 1))
        fixed_txns;
      Printf.sprintf "%s (exponent %.2f)" (C.cls_name r.keys_fit.C.cls) r.keys_fit.C.exponent;
      (if C.rank r.keys_fit.C.cls < C.rank C.Linear then "object count absent: ok"
       else "O(objects): BAD");
    ];
  Sim.Table.add_row t
    [
      Printf.sprintf "recovery vs burst (%d objects, %d..%d txns)" fixed_keys
        (List.hd records_sweep)
        (List.nth records_sweep (List.length records_sweep - 1));
      Printf.sprintf "%s (exponent %.2f)" (C.cls_name r.rec_fit.C.cls) r.rec_fit.C.exponent;
      (if C.rank r.rec_fit.C.cls <= C.rank C.Linear then "O(WAL records): ok" else "SUPERLINEAR");
    ];
  Sim.Table.add_row t
    [
      "store crash explorer";
      Printf.sprintf "%d steps, %d crashes, %d+%d detections" r.explorer.Store.Chaos.steps
        r.explorer.Store.Chaos.crashes r.explorer.Store.Chaos.torn_detections
        r.explorer.Store.Chaos.flip_detections;
      (if
         r.explorer.Store.Chaos.violations = []
         && r.explorer.Store.Chaos.steps > 0
         && r.explorer.Store.Chaos.torn_detections >= 1
         && r.explorer.Store.Chaos.flip_detections >= 1
       then "recovered + detected: ok"
       else "VIOLATIONS");
    ];
  Sim.Table.add_row t
    [
      "store fault plan";
      Printf.sprintf "%d injected, %d enospc, %d retried" r.degradation.O1mem.Chaos.injected_total
        r.degradation.O1mem.Chaos.enospc r.degradation.O1mem.Chaos.retried;
      (if r.degradation.O1mem.Chaos.checks = [] then "invariants: ok" else "VIOLATIONS");
    ];
  print_string (Sim.Table.render t)
