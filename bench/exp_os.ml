(* E11/E12/E13/E17 — OS-economics experiments (paper §2 utilization
   claim, §4.1 reclamation and persistence, and the metadata overheads
   behind the "25 flags / 38 fields" observation). *)
open Bench_env

(* E11 / §2: the Agrawal-style fleet model: file systems run below 50%
   full, so persistent-memory capacity is available for volatile use. *)
let tab_utilization () =
  let t = Sim.Table.create ~title:"E11 - simulated 5-year fleet: file-system utilization"
      ~columns:[ "metric"; "value" ]
  in
  let r = Wl.Fs_study.run ~rng:(Sim.Rng.create ~seed:2017) Wl.Fs_study.default_params in
  Sim.Table.add_row t [ "samples"; Sim.Table.cell_int r.Wl.Fs_study.samples ];
  Sim.Table.add_row t
    [ "mean utilization"; Sim.Table.cell_float ~dp:3 r.Wl.Fs_study.mean_utilization ];
  Sim.Table.add_row t
    [ "median utilization"; Sim.Table.cell_float ~dp:3 r.Wl.Fs_study.median_utilization ];
  Sim.Table.add_row t
    [ "fraction below 50%"; Sim.Table.cell_float ~dp:3 r.Wl.Fs_study.fraction_below_half ];
  t

(* E12 / §4.1: reclaiming memory under pressure — per-page scanning
   (CLOCK and 2Q) vs deleting discardable files. *)
let tab_reclaim () =
  let t = Sim.Table.create ~title:"E12 - reclaim N MiB under pressure (us, pages examined)"
      ~columns:[ "target"; "CLOCK us"; "examined"; "2Q us"; "examined"; "file discard us"; "files" ]
  in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      let frames = len / Sim.Units.page_size in
      let scan policy =
        let k = kernel ~dram:(Sim.Units.gib 2) ~reclaim:policy () in
        let p = K.create_process k () in
        (* Resident set twice the target so the scanner has cold pages. *)
        let va = K.mmap_anon k p ~len:(2 * len) ~prot:Hw.Prot.rw ~populate:false in
        touch_pages_kernel k p ~va ~len:(2 * len) ~write:true;
        let ex0 = Os.Reclaim.pages_examined (K.reclaim k) in
        let tt = time_us k (fun () -> ignore (Os.Reclaim.scan (K.reclaim k) ~target_frames:frames)) in
        (tt, Os.Reclaim.pages_examined (K.reclaim k) - ex0)
      in
      let t_clock, ex_clock = scan Os.Reclaim.Clock in
      let t_2q, ex_2q = scan Os.Reclaim.Two_q in
      (* Discardable files: 4 MiB cache files. *)
      let k, fom = kernel_and_fom () in
      let d = O1mem.Discard.create ~fs:(F.fs fom) in
      let file_sz = Sim.Units.mib 4 in
      let files = (2 * len) / file_sz in
      for i = 1 to files do
        O1mem.Discard.register_cache_file d ~path:(Printf.sprintf "/c%d" i) ~size:file_sz
      done;
      let t_discard = time_us k (fun () -> ignore (O1mem.Discard.pressure d ~needed_bytes:len)) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes len;
          Sim.Table.cell_float t_clock;
          Sim.Table.cell_int ex_clock;
          Sim.Table.cell_float t_2q;
          Sim.Table.cell_int ex_2q;
          Sim.Table.cell_float t_discard;
          Sim.Table.cell_int (max 1 (len / file_sz));
        ])
    [ 16; 64; 256 ];
  t

(* E13 / §2: metadata overhead as machines grow to the 6 TB the paper
   quotes: struct page vs file-system metadata, plus boot-time init. *)
let tab_metadata () =
  let t = Sim.Table.create ~title:"E13 - per-page vs per-file metadata at scale"
      ~columns:
        [ "memory"; "struct page bytes"; "boot init (ms)"; "FS metadata bytes (1000 files)"; "ratio" ]
  in
  let model = Sim.Cost_model.default in
  List.iter
    (fun gb ->
      let bytes = Sim.Units.gib gb in
      let frames = bytes / Sim.Units.page_size in
      let sp_bytes = frames * Os.Page_meta.bytes_per_page in
      let boot_ms = Sim.Cost_model.cycles_to_ms model (frames * model.Sim.Cost_model.struct_page_init) in
      (* FS metadata for the same memory held as 1000 equal files: inode
         (128 B) + one extent record (24 B) each, plus a 1-bit-per-frame
         bitmap. *)
      let fs_bytes = (1000 * (128 + 24)) + (frames / 8) in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes bytes;
          Sim.Table.cell_bytes sp_bytes;
          Sim.Table.cell_float ~dp:1 boot_ms;
          Sim.Table.cell_bytes fs_bytes;
          Sim.Table.cell_float ~dp:1 (float_of_int sp_bytes /. float_of_int fs_bytes);
        ])
    [ 1; 16; 128; 1024; 6144 ];
  t

(* E17 / §4.1: crash + recovery. Recovery scans files, not bytes. *)
let tab_crash () =
  let t = Sim.Table.create ~title:"E17 - crash recovery cost (us) vs data volume"
      ~columns:[ "volatile data"; "files"; "recovery us"; "per-file us" ]
  in
  List.iter
    (fun (files, mb_each) ->
      let k, fom = kernel_and_fom ~nvm:(Sim.Units.gib 4) () in
      let p = K.create_process k () in
      for i = 1 to files do
        ignore
          (F.alloc fom p ~name:(Printf.sprintf "/v%d" i) ~persistence:Fs.Inode.Volatile
             ~len:(Sim.Units.mib mb_each) ~prot:Hw.Prot.rw ())
      done;
      let report = O1mem.Persistence.crash_and_recover fom in
      let rec_us = us k report.O1mem.Persistence.recovery_cycles in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes (files * Sim.Units.mib mb_each);
          Sim.Table.cell_int report.O1mem.Persistence.files_scanned;
          Sim.Table.cell_float rec_us;
          Sim.Table.cell_float (rec_us /. float_of_int (max 1 report.O1mem.Persistence.files_scanned));
        ])
    [ (8, 1); (8, 64); (64, 1); (64, 16) ];
  t

(* E18 (macro): a whole desktop mix, baseline vs FOM, with and without
   ASIDs. The per-operation savings compound at system level. *)
let tab_macro () =
  let t = Sim.Table.create
      ~title:"E18 - desktop mix: 6 apps x 300 steps, round-robin (totals)"
      ~columns:[ "configuration"; "sim ms"; "switches"; "faults"; "tlb misses" ]
  in
  let apps () = Wl.Scenario.desktop_mix ~rng:(Sim.Rng.create ~seed:77) ~apps:6 ~steps:300 in
  let row name backend asids =
    let k = kernel ~dram:(Sim.Units.gib 2) ~nvm:(Sim.Units.gib 2) () in
    let fom = match backend with Wl.Scenario.Fom -> Some (F.create k ()) | _ -> None in
    let r = Wl.Scenario.run k ?fom ~backend ~asids ~quantum:8 (apps ()) in
    Sim.Table.add_row t
      [
        name;
        Sim.Table.cell_float ~dp:2 (r.Wl.Scenario.sim_us /. 1000.0);
        Sim.Table.cell_int r.Wl.Scenario.switches;
        Sim.Table.cell_int r.Wl.Scenario.faults;
        Sim.Table.cell_int r.Wl.Scenario.tlb_misses;
      ]
  in
  row "baseline, no ASIDs" Wl.Scenario.Baseline false;
  row "baseline, ASIDs" Wl.Scenario.Baseline true;
  row "FOM, no ASIDs" Wl.Scenario.Fom false;
  row "FOM, ASIDs" Wl.Scenario.Fom true;
  t

let run () =
  print_header "E11" "Storage utilization stays under 50%: the excess is usable as volatile memory.";
  Sim.Table.print (tab_utilization ());
  print_header "E12" "Reclaim: page scanning is linear in resident pages; file discard is O(files).";
  Sim.Table.print (tab_reclaim ());
  print_header "E13" "Metadata: 64B/page struct page vs per-file records, up to the 6TB server.";
  Sim.Table.print (tab_metadata ());
  print_header "E17" "Crash recovery scans files, not bytes: per-file cost is flat.";
  Sim.Table.print (tab_crash ());
  print_header "E18" "System level: the per-operation savings compound across a desktop mix.";
  Sim.Table.print (tab_macro ())
