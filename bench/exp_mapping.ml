(* E1/E2/E4/E8 — memory-mapping cost experiments (paper Figures 1a/6a,
   1b/6b, the companion report's fault-count figure, and the §4.3
   read()-vs-mmap claim). *)
open Bench_env

(* E1 / Figure 1a-6a: time of one mmap() of a tmpfs file, MAP_POPULATE vs
   demand (MAP_PRIVATE), across file sizes. *)
let fig1a () =
  let t = Sim.Table.create ~title:"Figure 1a/6a - mmap() on tmpfs (us)"
      ~columns:[ "file size"; "demand (MAP_PRIVATE)"; "populate (MAP_POPULATE)"; "ratio" ]
  in
  let dem_pts = ref [] and pop_pts = ref [] in
  List.iter
    (fun kb ->
      let run populate =
        let k = kernel () in
        let p = K.create_process k () in
        let fs, path, _ = tmpfs_file k ~bytes:(Sim.Units.kib kb) in
        time_us k (fun () ->
            ignore (K.mmap_file k p ~fs ~path ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate ()))
      in
      let demand = run false and populate = run true in
      dem_pts := (float_of_int kb, demand) :: !dem_pts;
      pop_pts := (float_of_int kb, populate) :: !pop_pts;
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes (Sim.Units.kib kb);
          Sim.Table.cell_float demand;
          Sim.Table.cell_float populate;
          Sim.Table.cell_float ~dp:1 (populate /. demand);
        ])
    (Wl.Workload.size_sweep_kb ());
  let chart =
    Sim.Chart.render ~logx:true ~logy:true
      ~title:"Figure 1a (chart): mmap us vs file size (KB), log-log"
      [
        { Sim.Chart.label = "demand (flat ~8us)"; points = List.rev !dem_pts };
        { Sim.Chart.label = "populate (linear)"; points = List.rev !pop_pts };
      ]
  in
  (t, chart)

(* E2 / Figure 1b-6b: total time to touch one byte of every page of the
   mapped file, pre-populated vs demand faulting. *)
let fig1b () =
  let t = Sim.Table.create ~title:"Figure 1b/6b - read 1 byte/page of mapped file (us)"
      ~columns:[ "file size"; "populate read"; "demand read"; "demand/populate" ]
  in
  List.iter
    (fun kb ->
      let run populate =
        let k = kernel () in
        let p = K.create_process k () in
        let fs, path, _ = tmpfs_file k ~bytes:(Sim.Units.kib kb) in
        let va = K.mmap_file k p ~fs ~path ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate () in
        time_us k (fun () -> touch_pages_kernel k p ~va ~len:(Sim.Units.kib kb) ~write:false)
      in
      let populate = run true and demand = run false in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes (Sim.Units.kib kb);
          Sim.Table.cell_float populate;
          Sim.Table.cell_float demand;
          Sim.Table.cell_float ~dp:1 (demand /. populate);
        ])
    (Wl.Workload.size_sweep_kb ());
  t

(* E4 / report figure: minor-fault counts while touching every page. *)
let fig_faults () =
  let t = Sim.Table.create ~title:"Report Fig (faults) - minor faults touching every page"
      ~columns:[ "pages"; "demand faults"; "populate faults" ]
  in
  List.iter
    (fun pages ->
      if pages <= 16384 then begin
        let run populate =
          let k = kernel ~dram:(Sim.Units.mib 512) () in
          let p = K.create_process k () in
          let len = pages * Sim.Units.page_size in
          let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate in
          touch_pages_kernel k p ~va ~len ~write:false;
          stat k "minor_fault"
        in
        Sim.Table.add_row t
          [
            Sim.Table.cell_int pages;
            Sim.Table.cell_int (run false);
            Sim.Table.cell_int (run true);
          ]
      end)
    (Wl.Workload.page_sweep ());
  t

(* E1b / report Figs 3-5: the same mmap+read microbenchmark on TMPFS
   (DRAM) vs PMFS (NVM) — the report's TMPFS/DAX split. The control path
   is media-independent; data touches pay NVM latency, and PMFS metadata
   ops carry journal (clwb/fence) costs. *)
let fig_media () =
  let t = Sim.Table.create ~title:"Report Figs 3-5 - TMPFS (DRAM) vs PMFS (NVM), 256KB file (us)"
      ~columns:[ "operation"; "tmpfs"; "pmfs" ]
  in
  let run use_pmfs =
    let k = kernel () in
    let p = K.create_process k () in
    let fs = if use_pmfs then Option.get (K.pmfs k) else K.tmpfs k in
    let ino = Fs.Memfs.create_file fs "/m" ~persistence:Fs.Inode.Volatile in
    let t_alloc = time_us k (fun () -> Fs.Memfs.extend fs ino ~bytes_wanted:(Sim.Units.kib 256)) in
    let t_mmap =
      time_us k (fun () ->
          ignore
            (K.mmap_file k p ~fs ~path:"/m" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:false ()))
    in
    let va = K.mmap_file k p ~fs ~path:"/m" ~prot:Hw.Prot.r ~share:Os.Vma.Shared ~populate:true () in
    let t_read =
      time_us k (fun () -> touch_pages_kernel k p ~va ~len:(Sim.Units.kib 256) ~write:false)
    in
    (t_alloc, t_mmap, t_read)
  in
  let a_t, m_t, r_t = run false in
  let a_p, m_p, r_p = run true in
  Sim.Table.add_row t
    [ "create+extend 256KB"; Sim.Table.cell_float a_t; Sim.Table.cell_float a_p ];
  Sim.Table.add_row t
    [ "mmap (demand)"; Sim.Table.cell_float m_t; Sim.Table.cell_float m_p ];
  Sim.Table.add_row t
    [ "read 1B/page (populated)"; Sim.Table.cell_float r_t; Sim.Table.cell_float r_p ];
  t

(* E8 / §4.3 claim: reading 16 KB via read() vs through a mapping. *)
let read_vs_mmap () =
  let t = Sim.Table.create ~title:"Claim (4.3) - read() vs mapped access, 16KB (us)"
      ~columns:[ "method"; "time"; "notes" ]
  in
  let len = Sim.Units.kib 16 in
  let k = kernel () in
  let p = K.create_process k () in
  let fs = K.tmpfs k in
  let ino = Fs.Memfs.create_file fs "/r" ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.write_file fs ino ~off:0 (String.make len 'y');
  let t_read = time_us k (fun () -> ignore (K.read_syscall k p ~fs ~ino ~off:0 ~len)) in
  Sim.Table.add_row t [ "read() syscall"; Sim.Table.cell_float t_read; "streams via kernel copy" ];
  let va_demand =
    K.mmap_file k p ~fs ~path:"/r" ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate:false ()
  in
  let t_demand =
    time_us k (fun () -> ignore (K.access_range k p ~va:va_demand ~len ~write:false ~stride:64))
  in
  Sim.Table.add_row t
    [ "mmap, demand faulting"; Sim.Table.cell_float t_demand; "4 faults + walks + line refs" ];
  let va_pop =
    K.mmap_file k p ~fs ~path:"/r" ~prot:Hw.Prot.r ~share:Os.Vma.Private ~populate:true ()
  in
  Hw.Mmu.flush_tlbs (Os.Address_space.mmu p.Os.Proc.aspace);
  let t_cold =
    time_us k (fun () -> ignore (K.access_range k p ~va:va_pop ~len ~write:false ~stride:64))
  in
  Sim.Table.add_row t
    [ "mmap populated, cold TLB"; Sim.Table.cell_float t_cold; "walks + line refs" ];
  let t_warm =
    time_us k (fun () -> ignore (K.access_range k p ~va:va_pop ~len ~write:false ~stride:64))
  in
  Sim.Table.add_row t [ "mmap populated, warm TLB"; Sim.Table.cell_float t_warm; "line refs only" ];
  t

let run () =
  print_header "E1" "mmap cost: MAP_POPULATE is linear in file size; demand mmap is flat (~8us).";
  let t1a, chart1a = fig1a () in
  Sim.Table.print t1a;
  print_string chart1a;
  print_header "E2" "Access cost: demand faulting one byte per page is tens of times populate.";
  Sim.Table.print (fig1b ());
  print_header "E4" "Fault counts: demand = one minor fault per page; populate = none.";
  Sim.Table.print (fig_faults ());
  print_header "E1b" "Media split: control path identical; NVM pays on touches and journaling.";
  Sim.Table.print (fig_media ());
  print_header "E8" "read() beats touching the same bytes through a cold or faulting mapping.";
  Sim.Table.print (read_vs_mmap ())
