(* E3/E9/E14/E15 — allocation-path experiments (paper Figure 2/7, the
   §4.1 erase discussion, the headline O(1) claim, and the
   space-for-time trade). *)
open Bench_env

(* E3 / Figure 2-7: allocating + touching N pages via malloc(MAP_ANON)
   vs a PMFS file. The paper: "using the file system to allocate memory
   has little extra cost". *)
let fig7 () =
  let t = Sim.Table.create ~title:"Figure 2/7 - allocate+touch N pages: malloc vs PMFS file (us)"
      ~columns:[ "pages"; "malloc (anon)"; "pmfs file (FOM)"; "pmfs/malloc" ]
  in
  List.iter
    (fun pages ->
      let len = pages * Sim.Units.page_size in
      let t_malloc =
        let k = kernel ~dram:(Sim.Units.mib 512) () in
        let p = K.create_process k () in
        let h = Heap.Malloc_sim.create k p in
        time_us k (fun () ->
            let va = Heap.Malloc_sim.malloc h ~bytes:len in
            touch_pages_kernel k p ~va ~len ~write:true)
      in
      let t_pmfs =
        let k, fom = kernel_and_fom () in
        let p = K.create_process k () in
        time_us k (fun () ->
            let r = F.alloc fom p ~len ~prot:Hw.Prot.rw () in
            touch_pages_fom fom p ~va:r.F.va ~len ~write:true)
      in
      Sim.Table.add_row t
        [
          Sim.Table.cell_int pages;
          Sim.Table.cell_float t_malloc;
          Sim.Table.cell_float t_pmfs;
          Sim.Table.cell_float (t_pmfs /. t_malloc);
        ])
    (Wl.Workload.page_sweep ());
  t

(* E9: erase strategies across extent sizes; the critical-path cost the
   allocator pays before memory can be reused. *)
let tab_erase () =
  let t = Sim.Table.create ~title:"E9 - erase-on-reuse critical path (us)"
      ~columns:[ "extent"; "eager memset"; "background queue"; "bulk device erase" ]
  in
  List.iter
    (fun mb ->
      let frames = Sim.Units.mib mb / Sim.Units.page_size in
      let cost strategy =
        let mem =
          Physmem.Phys_mem.create
            ~clock:(Sim.Clock.create Sim.Cost_model.default)
            ~stats:(Sim.Stats.create ()) ~dram_bytes:(Sim.Units.gib 2) ~nvm_bytes:0 ()
        in
        let e = O1mem.Erase.create ~mem ~strategy in
        let c =
          O1mem.Erase.critical_path_cycles e (fun () ->
              O1mem.Erase.erase_extent e ~first:0 ~count:frames)
        in
        Sim.Cost_model.cycles_to_us Sim.Cost_model.default c
      in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes (Sim.Units.mib mb);
          Sim.Table.cell_float (cost O1mem.Erase.Eager);
          Sim.Table.cell_float (cost O1mem.Erase.Background);
          Sim.Table.cell_float (cost O1mem.Erase.Bulk_device);
        ])
    [ 1; 4; 16; 64; 256; 1024 ];
  t

(* E14 / headline: the mapping operation itself should be O(1)-ish in
   size. The map-only columns compare installing translations for an
   existing file (baseline populate vs FOM graft/range); the end-to-end
   columns add allocation, zeroing and touching every page (inherently
   linear work, where FOM still wins by a constant factor). *)
let tab_o1 () =
  let t = Sim.Table.create
      ~title:"E14 - map-only and end-to-end: baseline vs FOM (us)"
      ~columns:
        [ "size"; "map: populate"; "map: graft"; "map: range"; "e2e: demand"; "e2e: FOM cold" ]
  in
  let pts_pop = ref [] and pts_graft = ref [] and pts_range = ref [] in
  List.iter
    (fun mb ->
      let len = Sim.Units.mib mb in
      (* Map-only: the file already exists; time only the mapping call. *)
      let map_populate =
        let k = kernel ~dram:(Sim.Units.gib 2) () in
        let p = K.create_process k () in
        let fs, path, _ = tmpfs_file k ~bytes:len in
        time_us k (fun () ->
            ignore (K.mmap_file k p ~fs ~path ~prot:Hw.Prot.rw ~share:Os.Vma.Shared ~populate:true ()))
      in
      let map_fom strategy range =
        let k, fom = kernel_and_fom ~nvm:(Sim.Units.gib 2) () in
        let p0 = K.create_process k ~range_translations:range () in
        ignore (F.alloc fom p0 ~name:"/file" ~strategy ~len ~prot:Hw.Prot.rw ());
        let p = K.create_process k ~range_translations:range () in
        time_us k (fun () -> ignore (F.map_path fom p ~strategy "/file"))
      in
      (* End-to-end: allocate fresh memory and touch every page. *)
      let e2e_demand =
        let k = kernel ~dram:(Sim.Units.gib 2) () in
        let p = K.create_process k () in
        time_us k (fun () ->
            let va = K.mmap_anon k p ~len ~prot:Hw.Prot.rw ~populate:false in
            touch_pages_kernel k p ~va ~len ~write:true)
      in
      let e2e_fom =
        let k, fom = kernel_and_fom ~nvm:(Sim.Units.gib 2) () in
        let p = K.create_process k () in
        time_us k (fun () ->
            let r = F.alloc fom p ~len ~prot:Hw.Prot.rw () in
            touch_pages_fom fom p ~va:r.F.va ~len ~write:true)
      in
      let map_graft = map_fom F.Shared_subtree false in
      let map_range = map_fom F.Range_translation true in
      Sim.Table.add_row t
        [
          Sim.Table.cell_bytes len;
          Sim.Table.cell_float map_populate;
          Sim.Table.cell_float map_graft;
          Sim.Table.cell_float map_range;
          Sim.Table.cell_float e2e_demand;
          Sim.Table.cell_float e2e_fom;
        ];
      pts_pop := (float_of_int mb, map_populate) :: !pts_pop;
      pts_graft := (float_of_int mb, map_graft) :: !pts_graft;
      pts_range := (float_of_int mb, map_range) :: !pts_range)
    [ 1; 4; 16; 64; 256 ];
  let chart =
    Sim.Chart.render ~logx:true ~logy:true
      ~title:"E14 (chart): map-only us vs size (MB), log-log"
      [
        { Sim.Chart.label = "populate PTEs"; points = List.rev !pts_pop };
        { Sim.Chart.label = "graft subtrees"; points = List.rev !pts_graft };
        { Sim.Chart.label = "range entry (flat)"; points = List.rev !pts_range };
      ]
  in
  (t, chart)

(* E15 / space-for-time: what the waste side of the trade looks like
   under an allocation churn workload. *)
let tab_space () =
  let t = Sim.Table.create ~title:"E15 - space overhead under churn (waste = footprint - live)"
      ~columns:[ "backend"; "live"; "footprint"; "waste"; "waste %" ]
  in
  let trace =
    Wl.Churn.generate ~rng:(Sim.Rng.create ~seed:7) ~ops:400 ~max_bytes:(Sim.Units.kib 512) ()
  in
  (* Stop the replay at peak live volume (before the final drain). *)
  let prefix =
    let n = List.length trace in
    List.filteri (fun i _ -> i < n * 3 / 4) trace
    |> List.filter (fun op -> match op with Wl.Churn.Touch _ -> false | _ -> true)
  in
  let replay malloc free =
    let vas = Hashtbl.create 64 in
    List.iter
      (fun op ->
        match op with
        | Wl.Churn.Alloc { id; bytes } -> Hashtbl.replace vas id (malloc bytes)
        | Wl.Churn.Free { id } -> (
          match Hashtbl.find_opt vas id with
          | Some va ->
            free va;
            Hashtbl.remove vas id
          | None -> ())
        | Wl.Churn.Touch _ -> ())
      prefix
  in
  let k = kernel ~dram:(Sim.Units.gib 1) () in
  let p = K.create_process k () in
  let mh = Heap.Malloc_sim.create k p in
  replay (fun bytes -> Heap.Malloc_sim.malloc mh ~bytes) (Heap.Malloc_sim.free mh);
  let row name live fp =
    Sim.Table.add_row t
      [
        name;
        Sim.Table.cell_bytes live;
        Sim.Table.cell_bytes fp;
        Sim.Table.cell_bytes (fp - live);
        Sim.Table.cell_float ~dp:1 (100.0 *. float_of_int (fp - live) /. float_of_int (max 1 fp));
      ]
  in
  row "malloc (4K pages)" (Heap.Malloc_sim.live_bytes mh) (Heap.Malloc_sim.footprint_bytes mh);
  let k2, fom = kernel_and_fom () in
  let p2 = K.create_process k2 () in
  let fh = Heap.Fom_heap.create fom p2 () in
  replay (fun bytes -> Heap.Fom_heap.malloc fh ~bytes) (Heap.Fom_heap.free fh);
  row "FOM heap (files)" (Heap.Fom_heap.live_bytes fh) (Heap.Fom_heap.footprint_bytes fh);
  (* Slab over buddy: the paper's suggestion for physical-memory
     management; measure its internal fragmentation at a fixed object mix. *)
  let mem =
    Physmem.Phys_mem.create
      ~clock:(Sim.Clock.create Sim.Cost_model.default)
      ~stats:(Sim.Stats.create ()) ~dram_bytes:(Sim.Units.mib 512) ~nvm_bytes:0 ()
  in
  let buddy = Alloc.Buddy.create ~mem ~first:0 ~count:(128 * 1024) () in
  let cache = Alloc.Slab.create_cache ~mem ~backing:buddy ~name:"obj" ~obj_bytes:3000 () in
  for _ = 1 to 1000 do
    ignore (Alloc.Slab.alloc cache)
  done;
  row "slab cache (3000B objs)"
    (Alloc.Slab.live_objects cache * 3000)
    (Alloc.Slab.footprint_bytes cache);
  (* Log-structured memory at 50% utilization. *)
  let extents =
    Alloc.Extent_alloc.create ~mem ~first:(128 * 1024) ~count:2048
      ~policy:Alloc.Extent_alloc.First_fit
  in
  let log = Alloc.Log_alloc.create ~mem ~backing:extents ~segment_frames:256 () in
  let handles = List.init 64 (fun _ -> Option.get (Alloc.Log_alloc.alloc log ~bytes:65536)) in
  List.iteri (fun i h -> if i mod 2 = 0 then Alloc.Log_alloc.free log h) handles;
  row "log-structured (pre-clean)" (Alloc.Log_alloc.live_bytes log)
    (Alloc.Log_alloc.footprint_bytes log);
  t

let run () =
  print_header "E3" "Allocating through the file system costs about the same as anonymous malloc.";
  Sim.Table.print (fig7 ());
  print_header "E9" "Erase-on-reuse: eager zeroing is linear; background and device erase are O(1).";
  Sim.Table.print (tab_erase ());
  print_header "E14" "The headline: baseline cost grows with size; FOM map cost stays near-flat.";
  let t14, chart14 = tab_o1 () in
  Sim.Table.print t14;
  print_string chart14;
  print_header "E15" "The price: space wasted by whole-file/huge/slab allocation.";
  Sim.Table.print (tab_space ())
