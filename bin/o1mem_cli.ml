(* Command-line front end for the o1mem simulator.

   o1mem_cli experiments [-o GROUP]   regenerate the paper's tables/figures
   o1mem_cli study ...                run the FS-utilization fleet model
   o1mem_cli walkrefs ...             translation reference counts
   o1mem_cli simulate ...             one-off alloc+touch measurement
   o1mem_cli metrics ...              run the traced workload, print JSON
   o1mem_cli faults ...               fault injection, crash explorers
   o1mem_cli store ...                persistent store crash/recovery demo *)

open Cmdliner

(* ------------------------- experiments ---------------------------- *)

let groups =
  [
    ("mapping", Experiments.Exp_mapping.run);
    ("alloc", Experiments.Exp_alloc.run);
    ("sharing", Experiments.Exp_sharing.run);
    ("range", Experiments.Exp_range.run);
    ("os", Experiments.Exp_os.run);
    ("ablation", Experiments.Exp_ablation.run);
    ("complexity", Experiments.Exp_complexity.run);
  ]

let experiments only =
  Format.printf "%a@." Sim.Cost_model.pp Sim.Cost_model.default;
  let selected =
    match only with
    | [] -> groups
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt n groups with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown group %S (have: %s)\n" n
              (String.concat ", " (List.map fst groups));
            None)
        names
  in
  List.iter (fun (_, f) -> f ()) selected

let only_arg =
  let doc =
    "Run only this experiment group (mapping, alloc, sharing, range, os, ablation, complexity); \
     repeatable."
  in
  Arg.(value & opt_all string [] & info [ "o"; "only" ] ~docv:"GROUP" ~doc)

let experiments_cmd =
  let doc = "Regenerate the paper's tables and figures (simulated time)" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const experiments $ only_arg)

(* ----------------------------- study ------------------------------ *)

let study machines years growth seed =
  let params =
    {
      Wl.Fs_study.default_params with
      Wl.Fs_study.machines;
      years;
      annual_data_growth = growth;
    }
  in
  let r = Wl.Fs_study.run ~rng:(Sim.Rng.create ~seed) params in
  Printf.printf "fleet: %d machines, %d years, +%.0f%%/year data growth\n" machines years
    (100.0 *. growth);
  Printf.printf "mean utilization:   %.3f\n" r.Wl.Fs_study.mean_utilization;
  Printf.printf "median utilization: %.3f\n" r.Wl.Fs_study.median_utilization;
  Printf.printf "fraction below 50%%: %.3f  (%d samples)\n" r.Wl.Fs_study.fraction_below_half
    r.Wl.Fs_study.samples

let study_cmd =
  let doc = "Run the Agrawal-style file-system utilization fleet model (E11)" in
  let machines = Arg.(value & opt int 500 & info [ "machines" ] ~doc:"Fleet size.") in
  let years = Arg.(value & opt int 5 & info [ "years" ] ~doc:"Simulated years.") in
  let growth = Arg.(value & opt float 0.45 & info [ "growth" ] ~doc:"Annual data growth.") in
  let seed = Arg.(value & opt int 2017 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "study" ~doc) Term.(const study $ machines $ years $ growth $ seed)

(* --------------------------- walkrefs ------------------------------ *)

let walkrefs levels nested =
  let mode = match nested with None -> Hw.Walker.Native | Some h -> Hw.Walker.Virtualized h in
  List.iter
    (fun (label, size) ->
      let depth = levels - 1 - Hw.Page_size.depth_above_leaf size in
      Printf.printf "%-8s leaf: %2d memory references per TLB miss\n" label
        (Hw.Walker.refs_for_walk ~guest_levels:levels ~leaf_depth:depth ~mode))
    [ ("4K", Hw.Page_size.Small); ("2M", Hw.Page_size.Huge_2m); ("1G", Hw.Page_size.Huge_1g) ]

let walkrefs_cmd =
  let doc = "Print translation reference counts for a paging configuration (E10)" in
  let levels =
    Arg.(value & opt int 4 & info [ "levels" ] ~doc:"Page-table levels (4 or 5).")
  in
  let nested =
    Arg.(value & opt (some int) None & info [ "nested" ] ~doc:"Host levels when virtualized.")
  in
  Cmd.v (Cmd.info "walkrefs" ~doc) Term.(const walkrefs $ levels $ nested)

(* --------------------------- simulate ------------------------------ *)

let simulate size_mb strategy_name touch cores =
  let strategy =
    match strategy_name with
    | "per-page" -> O1mem.Fom.Per_page
    | "huge" -> O1mem.Fom.Huge_pages
    | "subtree" -> O1mem.Fom.Shared_subtree
    | "range" -> O1mem.Fom.Range_translation
    | s -> failwith ("unknown strategy: " ^ s ^ " (per-page|huge|subtree|range)")
  in
  let k = Experiments.Bench_env.kernel ~nvm:(Sim.Units.gib 4) ~cores () in
  let fom = O1mem.Fom.create k ~strategy () in
  let p = Os.Kernel.create_process k ~range_translations:(strategy = O1mem.Fom.Range_translation) () in
  let len = Sim.Units.mib size_mb in
  let t_alloc =
    Experiments.Bench_env.time_us k (fun () ->
        ignore (O1mem.Fom.alloc fom p ~name:"/sim" ~len ~prot:Hw.Prot.rw ()))
  in
  Printf.printf "alloc+map %s via %s: %.2f us\n" (Sim.Units.bytes_to_string len) strategy_name
    t_alloc;
  if touch then begin
    let r = Option.get (O1mem.Fom.region_of fom p ~va:(O1mem.Fom.map_path fom p "/sim").O1mem.Fom.va) in
    let t_touch =
      Experiments.Bench_env.time_us k (fun () ->
          Experiments.Bench_env.touch_pages_fom fom p ~va:r.O1mem.Fom.va ~len ~write:true)
    in
    Printf.printf "touch every page: %.2f us\n" t_touch;
    (* On an SMP machine, migrate after the touch and unmap from the new
       core: the teardown's shootdown is now a real cross-core IPI round. *)
    if cores > 1 then begin
      Os.Kernel.migrate k p ~core:((p.Os.Proc.core + 1) mod cores);
      let t_unmap =
        Experiments.Bench_env.time_us k (fun () -> O1mem.Fom.free fom p r)
      in
      Printf.printf "cross-core unmap (core %d, %d cores): %.2f us\n" p.Os.Proc.core cores
        t_unmap
    end
  end;
  let stats = Os.Kernel.stats k in
  List.iter
    (fun key ->
      let v = Sim.Stats.get stats key in
      if v > 0 then Printf.printf "  %-20s %d\n" key v)
    [
      "pte_write"; "fom_grafts"; "range_table_op"; "page_fault"; "tlb_miss"; "fs_extend";
      "migration"; "ipi_sent"; "ipi_acked"; "tlb_shootdown";
    ]

let simulate_cmd =
  let doc = "Allocate and map a region under a chosen strategy and report costs" in
  let size = Arg.(value & opt int 64 & info [ "size" ] ~doc:"Region size in MiB.") in
  let strategy =
    Arg.(value & opt string "subtree" & info [ "strategy" ] ~doc:"per-page|huge|subtree|range.")
  in
  let touch = Arg.(value & flag & info [ "touch" ] ~doc:"Also touch every page.") in
  let cores =
    Arg.(value & opt int 1 & info [ "cores" ] ~doc:"Simulated cores (per-core TLBs, IPI shootdowns).")
  in
  Cmd.v (Cmd.info "simulate" ~doc) Term.(const simulate $ size $ strategy $ touch $ cores)

(* ---------------------------- metrics ------------------------------ *)

let metrics events_limit compact =
  let json = Experiments.Exp_metrics.run_to_json ~events_limit () in
  print_string (Sim.Json.to_string ~pretty:(not compact) json);
  print_newline ()

let metrics_cmd =
  let doc =
    "Run a deterministic workload over every instrumented subsystem and print the collected \
     stats and per-operation latency histograms as JSON"
  in
  let events_limit =
    Arg.(
      value & opt int 64
      & info [ "events" ] ~docv:"N" ~doc:"Include at most $(docv) raw trace events (newest first).")
  in
  let compact = Arg.(value & flag & info [ "compact" ] ~doc:"Single-line JSON output.") in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const metrics $ events_limit $ compact)

(* ---------------------------- profile ------------------------------ *)

let profile_backend_of = function
  | "malloc" -> `Malloc
  | "fom" -> `Fom
  | other -> failwith ("unknown backend: " ^ other ^ " (malloc|fom)")

let profile backend ops format =
  let _, p = Experiments.Exp_profile.run_churn ~ops (profile_backend_of backend) in
  match format with
  | "tree" -> Format.printf "%a@." Sim.Profile.pp p
  | "chrome" ->
    print_string (Sim.Json.to_string ~pretty:true (Sim.Profile.to_chrome_json p));
    print_newline ()
  | "collapsed" -> print_string (Sim.Profile.to_collapsed p)
  | other -> failwith ("unknown format: " ^ other ^ " (tree|chrome|collapsed)")

let profile_cmd =
  let doc =
    "Replay the churn workload with the cycle-attribution profiler attached and print the call \
     tree, a Chrome trace-event JSON (load in chrome://tracing or Perfetto), or collapsed stacks \
     (pipe into flamegraph.pl or speedscope)"
  in
  let backend = Arg.(value & opt string "fom" & info [ "backend" ] ~doc:"malloc|fom.") in
  let ops = Arg.(value & opt int 400 & info [ "ops" ] ~doc:"Operations in the trace.") in
  let format =
    Arg.(value & opt string "tree" & info [ "format" ] ~docv:"FMT" ~doc:"tree|chrome|collapsed.")
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const profile $ backend $ ops $ format)

(* ------------------------------ top -------------------------------- *)

(* procfs-style rollup after a profiled churn run: per-process memory,
   machine gauges, and the hottest spans by self cycles. *)
let top backend ops k_spans =
  let k, p = Experiments.Exp_profile.run_churn ~ops (profile_backend_of backend) in
  let procs =
    Hashtbl.fold (fun _ pr acc -> pr :: acc) (Os.Kernel.processes k) []
    |> List.sort (fun a b -> compare a.Os.Proc.pid b.Os.Proc.pid)
  in
  Printf.printf "%-6s %-10s %-10s %-10s %s\n" "PID" "RSS" "PSS" "PT" "VMAS";
  List.iter
    (fun pr ->
      Printf.printf "%-6d %-10s %-10s %-10s %d\n" pr.Os.Proc.pid
        (Sim.Units.bytes_to_string (Os.Procfs.rss_pages pr * Sim.Units.page_size))
        (Sim.Units.bytes_to_string
           (int_of_float
              (Float.round (Os.Procfs.pss_pages k pr *. float_of_int Sim.Units.page_size))))
        (Sim.Units.bytes_to_string (Os.Procfs.pt_bytes pr))
        (Os.Address_space.vma_count pr.Os.Proc.aspace))
    procs;
  print_newline ();
  Printf.printf "%-6s %-6s %12s %10s %10s %10s\n" "CORE" "NODE" "BUSY" "IPI_SENT" "IPI_RCVD" "IPI_ACKED";
  Hw.Smp.iter_cores (Os.Kernel.smp k) (fun c ->
      Printf.printf "%-6d %-6d %12d %10d %10d %10d\n" c.Hw.Smp.id c.Hw.Smp.numa_node
        c.Hw.Smp.busy_cycles c.Hw.Smp.ipi_sent c.Hw.Smp.ipi_received c.Hw.Smp.ipi_acked);
  print_newline ();
  Printf.printf "%-24s %10s %10s\n" "GAUGE" "VALUE" "HWM";
  List.iter
    (fun (name, v, hwm) -> Printf.printf "%-24s %10d %10d\n" name v hwm)
    (Sim.Stats.gauges (Os.Kernel.stats k));
  print_newline ();
  Printf.printf "%-40s %10s %12s %12s\n" "SPAN" "CALLS" "SELF" "CUM";
  List.iter
    (fun (path, calls, self, cum) ->
      Printf.printf "%-40s %10d %12d %12d\n" path calls self cum)
    (Sim.Profile.top_spans ~k:k_spans p);
  Printf.printf "\n%d/%d cycles attributed (%.1f%%), %d unattributed\n"
    (Sim.Profile.attributed_cycles p) (Sim.Profile.total_cycles p)
    (100.0 *. Sim.Profile.attributed_fraction p)
    (Sim.Profile.unattributed_cycles p)

let top_cmd =
  let doc =
    "Run the churn workload and print a procfs-style rollup: per-process RSS/PSS/page-table \
     bytes, machine gauges with high watermarks, and the top spans by self cycles"
  in
  let backend = Arg.(value & opt string "fom" & info [ "backend" ] ~doc:"malloc|fom.") in
  let ops = Arg.(value & opt int 400 & info [ "ops" ] ~doc:"Operations in the trace.") in
  let k_spans = Arg.(value & opt int 10 & info [ "spans" ] ~doc:"Spans to show.") in
  Cmd.v (Cmd.info "top" ~doc) Term.(const top $ backend $ ops $ k_spans)

(* ---------------------------- timeline ----------------------------- *)

let timeline compact =
  print_string (Sim.Json.to_string ~pretty:(not compact) (Experiments.Exp_causal.timeline_json ()));
  print_newline ()

let timeline_cmd =
  let doc =
    "Run the 4-core migration workload with the causal plane attached and print a Chrome \
     trace-event JSON: per-core slices, causal flow arrows (IPI/migrate/sched/NUMA/reclaim), \
     and sampled per-core busy counters. Load the output in chrome://tracing or \
     https://ui.perfetto.dev"
  in
  let compact = Arg.(value & flag & info [ "compact" ] ~doc:"Single-line JSON output.") in
  Cmd.v (Cmd.info "timeline" ~doc) Term.(const timeline $ compact)

(* -------------------------- critical-path -------------------------- *)

(* Exit codes: 0 = the causal engine attributes >= 95% of the makespan
   and both hop-count sweeps land on their expected class, 1 = either
   gate failed. *)
let critical_path () =
  Experiments.Exp_causal.run ();
  let ok = ref true in
  (match Sim.Json.member (Experiments.Exp_causal.to_json ()) "attributed" with
  | Some (Sim.Json.Bool true) -> ()
  | _ ->
    Printf.eprintf "critical-path: < 95%% of makespan cycles attributed to named shares\n";
    ok := false);
  (match Sim.Json.member (Experiments.Exp_causal.to_json ()) "sweeps" with
  | Some (Sim.Json.Obj sweeps) ->
    List.iter
      (fun (name, s) ->
        match Sim.Json.member s "match" with
        | Some (Sim.Json.Bool true) -> ()
        | _ ->
          Printf.eprintf "critical-path: sweep %s off its expected complexity class\n" name;
          ok := false)
      sweeps
  | _ ->
    Printf.eprintf "critical-path: no sweeps in the causal export\n";
    ok := false);
  if not !ok then exit 1

let critical_path_cmd =
  let doc =
    "Decompose the 4-core migration workload's makespan into work / IPI-wait / scheduler / \
     remote-NUMA shares via the causal graph, report the longest dependent chain, and \
     machine-check that a batched shootdown's critical path stays O(1) in batch size while the \
     per-page path grows O(pages); exits non-zero if attribution falls below 95% or a sweep \
     misses its class"
  in
  Cmd.v (Cmd.info "critical-path" ~doc) Term.(const critical_path $ const ())

(* ----------------------------- faults ------------------------------ *)

(* Exit codes: 0 = survived (explorers consistent, plan behaved as its
   contract says), 1 = an invariant was violated — or a plan that is
   *supposed* to break TLB coherence failed to surface any violation,
   which would mean the checker has gone blind. *)
let faults seed plan rounds explore =
  let failed = ref false in
  if explore then begin
    let report label (r : O1mem.Chaos.explorer_report) =
      Printf.printf "%-4s explorer: %d durable steps (%d fences), %d crashes, %d violations\n"
        label r.O1mem.Chaos.steps r.O1mem.Chaos.fences r.O1mem.Chaos.crashes
        (List.length r.O1mem.Chaos.violations);
      List.iter (fun v -> Printf.printf "    VIOLATION %s\n" v) r.O1mem.Chaos.violations;
      if r.O1mem.Chaos.violations <> [] || r.O1mem.Chaos.steps = 0 then failed := true
    in
    report "wal" (O1mem.Chaos.explore_wal ~seed ());
    report "fs" (O1mem.Chaos.explore_fs ~seed ());
    let s = Store.Chaos.explore_store ~seed () in
    Printf.printf
      "store explorer: %d durable steps (%d fences), %d crashes, %d torn + %d flip detections, %d \
       violations\n"
      s.Store.Chaos.steps s.Store.Chaos.fences s.Store.Chaos.crashes s.Store.Chaos.torn_detections
      s.Store.Chaos.flip_detections
      (List.length s.Store.Chaos.violations);
    List.iter (fun v -> Printf.printf "    VIOLATION %s\n" v) s.Store.Chaos.violations;
    if
      s.Store.Chaos.violations <> [] || s.Store.Chaos.steps = 0
      || s.Store.Chaos.torn_detections = 0 || s.Store.Chaos.flip_detections = 0
    then failed := true;
    print_newline ()
  end;
  let outcomes =
    let run p =
      if p = "store" then Store.Chaos.run_plan ~seed ~rounds ()
      else O1mem.Chaos.run_plan ~seed ~rounds ~plan:p ()
    in
    match plan with
    | "each" -> List.map run (O1mem.Chaos.plans @ [ "store" ])
    | p -> (
      try [ run p ]
      with Invalid_argument msg ->
        Printf.eprintf "o1mem_cli faults: %s\n" msg;
        exit 2)
  in
  List.iter
    (fun (o : O1mem.Chaos.plan_outcome) ->
      Printf.printf "plan %-6s seed %d: %d injected over %d rounds\n" o.O1mem.Chaos.plan
        o.O1mem.Chaos.seed o.O1mem.Chaos.injected_total rounds;
      List.iter
        (fun (site, evals, injected) ->
          if evals > 0 then Printf.printf "  %-20s %6d evaluated %6d injected\n" site evals injected)
        o.O1mem.Chaos.sites;
      Printf.printf
        "  degradation: %d ENOMEM, %d ENOSPC, %d reclaim retries (%d frames), %d OOMs\n"
        o.O1mem.Chaos.enomem o.O1mem.Chaos.enospc o.O1mem.Chaos.retried
        o.O1mem.Chaos.reclaimed_frames o.O1mem.Chaos.ooms;
      let expects = O1mem.Chaos.plan_expects_violations o.O1mem.Chaos.plan in
      (match (o.O1mem.Chaos.checks, expects) with
      | [], false -> Printf.printf "  invariants: all hold\n"
      | [], true ->
        Printf.printf "  invariants: EXPECTED violations, found none — checker blind?\n";
        failed := true
      | vs, true ->
        Printf.printf "  invariants: %d violations (expected — lost shootdowns detected)\n"
          (List.length vs)
      | vs, false ->
        Printf.printf "  invariants: %d UNEXPECTED violations\n" (List.length vs);
        List.iter (fun v -> Printf.printf "    %s\n" (Os.Check.violation_to_string v)) vs;
        failed := true))
    outcomes;
  if !failed then exit 1

let faults_cmd =
  let doc =
    "Run the fault-injection plane: optional crash-at-every-step explorers (WAL and FOM \
     file-system recovery) plus a named sustained-pressure plan, printing injected-site counts, \
     typed degradation outcomes, and the cross-layer invariant verdict"
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic injection seed.") in
  let plan =
    Arg.(
      value & opt string "all"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:"alloc|nvm|quota|tlb|all|store, or 'each' to run every plan.")
  in
  let rounds = Arg.(value & opt int 16 & info [ "rounds" ] ~doc:"Workload rounds per plan.") in
  let explore =
    Arg.(value & flag & info [ "explore" ] ~doc:"Also run the crash-at-every-step explorers.")
  in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const faults $ seed $ plan $ rounds $ explore)

(* ------------------------------ store ------------------------------ *)

(* End-to-end demonstration of the persistent object store: populate,
   lose power with a transaction in flight, recover through the FOM
   recovery hooks, and print what came back. Exit 1 if the recovered
   store is unusable: a committed object lost, a verify or Os.Check
   violation, or a probe write that does not read back. *)
let store keys txns seed =
  let k = Experiments.Bench_env.kernel ~dram:(Sim.Units.mib 32) ~nvm:(Sim.Units.mib 32) () in
  let fom = O1mem.Fom.create k () in
  let p = Os.Kernel.create_process k () in
  let st = Store.Kv.create fom p ~name:"/cli" () in
  let key i = Printf.sprintf "key%03d" i in
  let rng = Sim.Rng.create ~seed in
  ignore (Store.Kv.begin_txn st);
  for i = 1 to keys do
    Store.Kv.put st (key i) (String.make (48 + (i mod 64)) 'a')
  done;
  Store.Kv.set_root st "head" (key 1);
  Store.Kv.commit st;
  Store.Kv.checkpoint st;
  for c = 1 to txns do
    ignore (Store.Kv.begin_txn st);
    for _ = 1 to 3 do
      let i = 1 + Sim.Rng.zipf rng ~n:keys ~theta:0.99 in
      Store.Kv.put st (key i) (String.make (48 + (c mod 64)) (Char.chr (Char.code 'a' + (c mod 26))))
    done;
    Store.Kv.commit st
  done;
  ignore (Store.Kv.begin_txn st);
  Store.Kv.put st (key 1) (String.make 64 'z');
  Printf.printf "store %s: %d objects, %d roots, generation %d, %d WAL records before crash\n"
    (Store.Kv.name st) (Store.Kv.object_count st)
    (List.length (Store.Kv.roots st))
    (Store.Kv.generation st) (Store.Kv.wal_record_count st);
  let report = O1mem.Persistence.crash_and_recover fom in
  Printf.printf "crash with a transaction in flight; recovery: %d cycles charged\n"
    report.O1mem.Persistence.recovery_cycles;
  List.iter
    (fun (h, n) -> Printf.printf "  hook %-12s replayed %d committed record(s)\n" h n)
    report.O1mem.Persistence.hook_records;
  Printf.printf
    "recovered: %d objects, %d roots, generation %d, %d WAL records, %d truncated tails\n"
    (Store.Kv.object_count st)
    (List.length (Store.Kv.roots st))
    (Store.Kv.generation st) (Store.Kv.wal_record_count st)
    (Store.Kv.recovery_truncations st);
  let failed = ref false in
  if Store.Kv.object_count st < keys then begin
    Printf.printf "LOST OBJECTS: %d of %d survive\n" (Store.Kv.object_count st) keys;
    failed := true
  end;
  (match Store.Kv.verify st with
  | [] -> Printf.printf "verify: every root and object checks out\n"
  | vs ->
    List.iter (fun v -> Printf.printf "VIOLATION %s\n" (Os.Check.violation_to_string v)) vs;
    failed := true);
  (match Os.Check.run k with
  | [] -> ()
  | vs ->
    List.iter (fun v -> Printf.printf "VIOLATION %s\n" (Os.Check.violation_to_string v)) vs;
    failed := true);
  ignore (Store.Kv.begin_txn st);
  Store.Kv.put st "probe" "usable";
  Store.Kv.commit st;
  if Store.Kv.get st "probe" <> Some "usable" then begin
    Printf.printf "UNUSABLE: post-recovery probe write does not read back\n";
    failed := true
  end
  else Printf.printf "post-recovery probe write reads back: store is usable\n";
  Store.Kv.detach st;
  if !failed then exit 1

let store_cmd =
  let doc =
    "Run the crash-consistent persistent object store end to end: populate it, cut power with a \
     transaction in flight, recover through the FOM recovery hooks, and verify every root, \
     checksum and invariant; exits non-zero if any committed state was lost or the recovered \
     store is unusable"
  in
  let keys = Arg.(value & opt int 48 & info [ "keys" ] ~doc:"Objects to preload.") in
  let txns = Arg.(value & opt int 6 & info [ "txns" ] ~doc:"Update transactions before the crash.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic workload seed.") in
  Cmd.v (Cmd.info "store" ~doc) Term.(const store $ keys $ txns $ seed)

(* ---------------------------- hotspots ----------------------------- *)

(* What the HOST pays to simulate: replay the churn workload with the
   host-cost plane attached and rank call-tree paths by self host-ns and
   by self allocated words. The ns numbers are real wall-clock (noisy);
   the words and call counts are deterministic per binary. *)
let hotspots_by_of = function
  | "ns" -> `Ns
  | "words" -> `Words
  | other -> failwith ("unknown ranking: " ^ other ^ " (ns|words)")

let hotspots backend ops top_n format by =
  let _, hp = Experiments.Exp_hostprof.run_churn ~ops (profile_backend_of backend) in
  let ranked = Sim.Hostprof.top_paths ~k:top_n ~by:(hotspots_by_of by) hp in
  (match format with
  | "tree" ->
    let table title by =
      Printf.printf "%s\n%-44s %8s %12s %12s %12s %10s\n" title "PATH" "CALLS" "SELF_NS"
        "SELF_WORDS" "CUM_NS" "NS/VCYCLE";
      List.iter
        (fun (path, n) ->
          Printf.printf "%-44s %8d %12d %12d %12d %10.1f\n" path n.Sim.Hostprof.calls
            n.Sim.Hostprof.self_ns n.Sim.Hostprof.self_words n.Sim.Hostprof.ns
            (Sim.Hostprof.ns_per_vcycle ~ns:n.Sim.Hostprof.ns ~vcycles:n.Sim.Hostprof.vcycles))
        (Sim.Hostprof.top_paths ~k:top_n ~by hp);
      print_newline ()
    in
    table (Printf.sprintf "Top %d paths by self host-ns:" top_n) `Ns;
    table (Printf.sprintf "Top %d paths by self allocated words:" top_n) `Words;
    Printf.printf "%d ns total, %.1f%% attributed; %d words allocated, %.1f%% attributed\n"
      (Sim.Hostprof.total_ns hp)
      (100.0 *. Sim.Hostprof.attributed_ns_fraction hp)
      (Sim.Hostprof.total_words hp)
      (100.0 *. Sim.Hostprof.attributed_words_fraction hp)
  | "csv" ->
    Printf.printf "path,calls,self_ns,ns,self_words,words,vcycles,ns_per_vcycle\n";
    List.iter
      (fun (path, n) ->
        Printf.printf "%s,%d,%d,%d,%d,%d,%d,%.3f\n" path n.Sim.Hostprof.calls
          n.Sim.Hostprof.self_ns n.Sim.Hostprof.ns n.Sim.Hostprof.self_words
          n.Sim.Hostprof.words n.Sim.Hostprof.vcycles
          (Sim.Hostprof.ns_per_vcycle ~ns:n.Sim.Hostprof.ns ~vcycles:n.Sim.Hostprof.vcycles))
      ranked
  | "collapsed" -> print_string (Sim.Hostprof.to_collapsed ~by:(hotspots_by_of by) hp)
  | other -> failwith ("unknown format: " ^ other ^ " (tree|csv|collapsed)"))

let hotspots_cmd =
  let doc =
    "Replay the churn workload with the host-cost attribution plane attached and print the \
     hottest call-tree paths by self host-nanoseconds and by self allocated words (what the host \
     pays per simulated op), as ranked tables, CSV, or collapsed stacks for flamegraph.pl"
  in
  let backend = Arg.(value & opt string "fom" & info [ "backend" ] ~doc:"malloc|fom.") in
  let ops = Arg.(value & opt int 400 & info [ "ops" ] ~doc:"Operations in the trace.") in
  let top_n = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Paths per ranking.") in
  let format =
    Arg.(value & opt string "tree" & info [ "format" ] ~docv:"FMT" ~doc:"tree|csv|collapsed.")
  in
  let by =
    Arg.(
      value & opt string "ns"
      & info [ "by" ] ~docv:"METRIC" ~doc:"Ranking metric for csv/collapsed output: ns|words.")
  in
  Cmd.v (Cmd.info "hotspots" ~doc) Term.(const hotspots $ backend $ ops $ top_n $ format $ by)

(* --------------------------- bench-diff ---------------------------- *)

(* Exit codes: 0 = no regression, 1 = regression or class downgrade,
   2 = documents unreadable or incomparable (schema/provenance). *)
let bench_diff old_file new_file threshold gate_throughput gate_host_alloc =
  let read f =
    let ic = open_in_bin f in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let parse f =
    match read f with
    | exception Sys_error e ->
      Printf.eprintf "bench-diff: %s\n" e;
      exit 2
    | s -> (
      match Sim.Json.of_string s with
      | Ok v -> v
      | Error e ->
        Printf.eprintf "bench-diff: %s: %s\n" f e;
        exit 2)
  in
  let old_doc = parse old_file in
  let new_doc = parse new_file in
  match
    Sim.Regress.compare_docs ~threshold_pct:threshold ~gate_throughput ~gate_host_alloc ~old_doc
      ~new_doc ()
  with
  | Error reason ->
    Printf.eprintf "bench-diff: %s\n" reason;
    exit 2
  | Ok report ->
    print_string (Sim.Regress.render report);
    if Sim.Regress.regressions report <> [] then exit 1

let bench_diff_cmd =
  let doc =
    "Compare two bench JSON exports (counters, p50/p99 latencies, fitted complexity classes) and \
     fail on regressions beyond the threshold or any complexity-class downgrade"
  in
  let old_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json") in
  let new_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json") in
  let threshold =
    Arg.(
      value & opt float 10.0
      & info [ "threshold" ] ~docv:"PCT" ~doc:"Allowed counter/latency drift in percent.")
  in
  let gate_throughput =
    Arg.(
      value & flag
      & info [ "gate-throughput" ]
          ~doc:
            "Fail on wall-clock throughput drops too. Off by default: real-time ops/sec is \
             machine- and load-dependent, so it is reported but never gates.")
  in
  let gate_host_alloc =
    Arg.(
      value & flag
      & info [ "gate-host-alloc" ]
          ~doc:
            "Fail when host allocated-words metrics grow beyond the threshold. Unlike wall-clock \
             time, GC allocation counts are deterministic for a fixed binary and workload, so \
             growth is a real code change.")
  in
  Cmd.v (Cmd.info "bench-diff" ~doc)
    Term.(const bench_diff $ old_arg $ new_arg $ threshold $ gate_throughput $ gate_host_alloc)

(* ----------------------------- churn ------------------------------- *)

let churn backend ops max_kib seed =
  let rng = Sim.Rng.create ~seed in
  let trace = Wl.Churn.generate ~rng ~ops ~max_bytes:(Sim.Units.kib max_kib) () in
  let k = Experiments.Bench_env.kernel ~dram:(Sim.Units.gib 2) ~nvm:(Sim.Units.gib 2) () in
  let run_with driver =
    let clock = Os.Kernel.clock k in
    let before = Sim.Clock.now clock in
    let n = Wl.Churn.run trace driver in
    (n, Sim.Clock.us clock (Sim.Clock.elapsed clock ~since:before))
  in
  let n, us, footprint =
    match backend with
    | "malloc" ->
      let p = Os.Kernel.create_process k () in
      let h = Heap.Malloc_sim.create k p in
      let n, us =
        run_with
          {
            Wl.Churn.h_malloc = (fun ~bytes -> Heap.Malloc_sim.malloc h ~bytes);
            h_free = (fun va -> Heap.Malloc_sim.free h va);
            h_touch =
              (fun ~va ~bytes ->
                ignore
                  (Os.Kernel.access_range k p ~va ~len:(max 1 bytes) ~write:true
                     ~stride:Sim.Units.page_size));
          }
      in
      (n, us, Heap.Malloc_sim.footprint_bytes h)
    | "tcmalloc" ->
      let p = Os.Kernel.create_process k () in
      let h = Heap.Tcmalloc_sim.create k p () in
      let next = ref 0 in
      let owner = Hashtbl.create 64 in
      let n, us =
        run_with
          {
            Wl.Churn.h_malloc =
              (fun ~bytes ->
                let th = !next mod 4 in
                incr next;
                let va = Heap.Tcmalloc_sim.malloc h ~thread:th ~bytes in
                Hashtbl.replace owner va th;
                va);
            h_free =
              (fun va ->
                Heap.Tcmalloc_sim.free h ~thread:(Option.value (Hashtbl.find_opt owner va) ~default:0) va);
            h_touch =
              (fun ~va ~bytes ->
                ignore
                  (Os.Kernel.access_range k p ~va ~len:(max 1 bytes) ~write:true
                     ~stride:Sim.Units.page_size));
          }
      in
      (n, us, Heap.Tcmalloc_sim.footprint_bytes h)
    | "fom" ->
      let fom = O1mem.Fom.create k () in
      let p = Os.Kernel.create_process k () in
      let h = Heap.Fom_heap.create fom p () in
      let n, us =
        run_with
          {
            Wl.Churn.h_malloc = (fun ~bytes -> Heap.Fom_heap.malloc h ~bytes);
            h_free = (fun va -> Heap.Fom_heap.free h va);
            h_touch =
              (fun ~va ~bytes ->
                ignore
                  (O1mem.Fom.access_range fom p ~va ~len:(max 1 bytes) ~write:true
                     ~stride:Sim.Units.page_size));
          }
      in
      (n, us, Heap.Fom_heap.footprint_bytes h)
    | other -> failwith ("unknown backend: " ^ other ^ " (malloc|tcmalloc|fom)")
  in
  Printf.printf "backend %-8s  %d ops in %.1f us simulated, footprint %s
" backend n us
    (Sim.Units.bytes_to_string footprint);
  List.iter
    (fun key ->
      let v = Sim.Stats.get (Os.Kernel.stats k) key in
      if v > 0 then Printf.printf "  %-16s %d
" key v)
    [ "page_fault"; "minor_fault"; "pte_write"; "fom_grafts"; "syscall" ]

let churn_cmd =
  let doc = "Replay an allocation-churn trace on a chosen heap backend" in
  let backend = Arg.(value & opt string "fom" & info [ "backend" ] ~doc:"malloc|tcmalloc|fom.") in
  let ops = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Operations in the trace.") in
  let max_kib = Arg.(value & opt int 256 & info [ "max-kib" ] ~doc:"Largest object, KiB.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "churn" ~doc) Term.(const churn $ backend $ ops $ max_kib $ seed)

let () =
  let doc = "file-only memory simulator (reproduction of 'Towards O(1) Memory', HotOS'17)" in
  let info = Cmd.info "o1mem_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiments_cmd; study_cmd; walkrefs_cmd; simulate_cmd; churn_cmd; metrics_cmd;
            profile_cmd; top_cmd; hotspots_cmd; timeline_cmd; critical_path_cmd; faults_cmd;
            store_cmd; bench_diff_cmd;
          ]))
