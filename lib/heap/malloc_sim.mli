(** A dlmalloc-style user heap over the baseline kernel (the paper's
    "malloc" comparator, Figure 2/7).

    Small requests are carved from demand-paged anonymous arenas with
    segregated power-of-two free lists; large requests go straight to
    [mmap(MAP_ANONYMOUS)]. Pages are touched only when the program
    touches them — exactly the behaviour whose fault costs Figure 7
    prices. *)

type t

val create : Os.Kernel.t -> Os.Proc.t -> t

val malloc : t -> bytes:int -> int
(** Returns the block's VA. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] for an unknown or already-freed VA. *)

val size_of : t -> int -> int option
(** Usable size of a live block. *)

val live_bytes : t -> int
val footprint_bytes : t -> int
(** Virtual memory reserved from the kernel (arenas + large blocks). *)

val trim : t -> int
(** Release the physical pages under free blocks back to the kernel with
    MADV_DONTNEED (blocks of a page or larger only). Returns pages
    released. This is the per-page housekeeping the paper notes heaps
    must do today ("the heap need not identify unused pages to release
    with madvise()" under file-only memory). *)

val arena_count : t -> int
