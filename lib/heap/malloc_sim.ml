let arena_bytes = Sim.Units.mib 1
let large_threshold = Sim.Units.kib 128
let min_class = 16

type block = { va : int; size : int; large : bool }

type t = {
  kernel : Os.Kernel.t;
  proc : Os.Proc.t;
  (* free_lists.(k) holds blocks of exactly [min_class * 2^k] bytes. *)
  free_lists : int list array;
  live : (int, block) Hashtbl.t;
  mutable arena_cursor : int; (* unused bytes at the current arena tail *)
  mutable arena_tail : int;
  mutable arenas : int;
  mutable footprint : int;
  mutable live_bytes : int;
}

let classes = 14 (* 16 B .. 128 KiB *)

let create kernel proc =
  {
    kernel;
    proc;
    free_lists = Array.make classes [];
    live = Hashtbl.create 256;
    arena_cursor = 0;
    arena_tail = 0;
    arenas = 0;
    footprint = 0;
    live_bytes = 0;
  }

let class_of bytes =
  let rec loop k size = if size >= bytes then k else loop (k + 1) (size * 2) in
  loop 0 min_class

let class_size k = min_class lsl k

let grow_arena t =
  let va =
    Os.Kernel.mmap_anon t.kernel t.proc ~len:arena_bytes ~prot:Hw.Prot.rw ~populate:false
  in
  t.arena_cursor <- va;
  t.arena_tail <- va + arena_bytes;
  t.arenas <- t.arenas + 1;
  t.footprint <- t.footprint + arena_bytes

let malloc t ~bytes =
  if bytes <= 0 then invalid_arg "Malloc_sim.malloc: non-positive size";
  if bytes >= large_threshold then begin
    let len = Sim.Units.round_up bytes ~align:Sim.Units.page_size in
    let va = Os.Kernel.mmap_anon t.kernel t.proc ~len ~prot:Hw.Prot.rw ~populate:false in
    Hashtbl.replace t.live va { va; size = len; large = true };
    t.footprint <- t.footprint + len;
    t.live_bytes <- t.live_bytes + len;
    va
  end
  else begin
    let k = class_of bytes in
    let size = class_size k in
    match t.free_lists.(k) with
    | va :: rest ->
      t.free_lists.(k) <- rest;
      Hashtbl.replace t.live va { va; size; large = false };
      t.live_bytes <- t.live_bytes + size;
      va
    | [] ->
      if t.arena_cursor + size > t.arena_tail then grow_arena t;
      let va = t.arena_cursor in
      t.arena_cursor <- va + size;
      Hashtbl.replace t.live va { va; size; large = false };
      t.live_bytes <- t.live_bytes + size;
      va
  end

let free t va =
  match Hashtbl.find_opt t.live va with
  | None -> invalid_arg "Malloc_sim.free: unknown block"
  | Some b ->
    Hashtbl.remove t.live va;
    t.live_bytes <- t.live_bytes - b.size;
    if b.large then begin
      Os.Kernel.munmap t.kernel t.proc ~va ~len:b.size;
      t.footprint <- t.footprint - b.size
    end
    else t.free_lists.(class_of b.size) <- va :: t.free_lists.(class_of b.size)

let trim t =
  let released = ref 0 in
  Array.iteri
    (fun k blocks ->
      let size = class_size k in
      if size >= Sim.Units.page_size then
        List.iter
          (fun va -> released := !released + Os.Kernel.madvise_dontneed t.kernel t.proc ~va ~len:size)
          blocks)
    t.free_lists;
  !released

let size_of t va = Option.map (fun b -> b.size) (Hashtbl.find_opt t.live va)
let live_bytes t = t.live_bytes
let footprint_bytes t = t.footprint
let arena_count t = t.arenas
