(** A TCMalloc-style thread-caching allocator — the paper's example of an
    existing design that "wastes space for improved performance" (§2).

    Each simulated thread owns per-size-class free lists served without
    synchronization; they refill in batches from a central list (paying a
    lock cost), which in turn carves spans out of mmap'd arenas. Compare
    with {!Malloc_sim} (no caching, no deliberate waste) and
    {!Fom_heap}. *)

type t

val create : Os.Kernel.t -> Os.Proc.t -> ?threads:int -> unit -> t
(** [threads] defaults to 4. *)

val malloc : t -> thread:int -> bytes:int -> int
val free : t -> thread:int -> int -> unit
val size_of : t -> int -> int option

val live_bytes : t -> int
val footprint_bytes : t -> int
(** Arena memory reserved — includes everything parked in thread caches
    and central lists: the waste bought for speed. *)

val cached_bytes : t -> int
(** Free bytes held in thread caches + central lists (not returned to
    the OS). *)

val central_refills : t -> int
(** Times a thread cache had to take the central lock. *)
