let large_threshold = Sim.Units.kib 128
let min_class = 16
let classes = 14

type t = {
  fom : O1mem.Fom.t;
  proc : Os.Proc.t;
  arena_bytes : int;
  free_lists : int list array;
  live : (int, int) Hashtbl.t; (* va -> size *)
  large_regions : (int, O1mem.Fom.region) Hashtbl.t; (* va -> region *)
  mutable arena_regions : O1mem.Fom.region list;
  mutable arena_cursor : int;
  mutable arena_tail : int;
  mutable live_bytes : int;
}

let create fom proc ?(arena_bytes = Sim.Units.mib 1) () =
  {
    fom;
    proc;
    arena_bytes;
    free_lists = Array.make classes [];
    live = Hashtbl.create 256;
    large_regions = Hashtbl.create 16;
    arena_regions = [];
    arena_cursor = 0;
    arena_tail = 0;
    live_bytes = 0;
  }

let class_of bytes =
  let rec loop k size = if size >= bytes then k else loop (k + 1) (size * 2) in
  loop 0 min_class

let class_size k = min_class lsl k

let grow_arena t =
  let r = O1mem.Fom.alloc t.fom t.proc ~len:t.arena_bytes ~prot:Hw.Prot.rw () in
  t.arena_regions <- r :: t.arena_regions;
  t.arena_cursor <- r.O1mem.Fom.va;
  t.arena_tail <- r.O1mem.Fom.va + r.O1mem.Fom.len

let malloc t ~bytes =
  if bytes <= 0 then invalid_arg "Fom_heap.malloc: non-positive size";
  if bytes >= large_threshold then begin
    let r = O1mem.Fom.alloc t.fom t.proc ~len:bytes ~prot:Hw.Prot.rw () in
    Hashtbl.replace t.large_regions r.O1mem.Fom.va r;
    Hashtbl.replace t.live r.O1mem.Fom.va r.O1mem.Fom.len;
    t.live_bytes <- t.live_bytes + r.O1mem.Fom.len;
    r.O1mem.Fom.va
  end
  else begin
    let k = class_of bytes in
    let size = class_size k in
    match t.free_lists.(k) with
    | va :: rest ->
      t.free_lists.(k) <- rest;
      Hashtbl.replace t.live va size;
      t.live_bytes <- t.live_bytes + size;
      va
    | [] ->
      if t.arena_cursor + size > t.arena_tail then grow_arena t;
      let va = t.arena_cursor in
      t.arena_cursor <- va + size;
      Hashtbl.replace t.live va size;
      t.live_bytes <- t.live_bytes + size;
      va
  end

let free t va =
  match Hashtbl.find_opt t.live va with
  | None -> invalid_arg "Fom_heap.free: unknown block"
  | Some size ->
    Hashtbl.remove t.live va;
    t.live_bytes <- t.live_bytes - size;
    (match Hashtbl.find_opt t.large_regions va with
    | Some r ->
      Hashtbl.remove t.large_regions va;
      O1mem.Fom.free t.fom t.proc r
    | None -> t.free_lists.(class_of size) <- va :: t.free_lists.(class_of size))

let size_of t va = Hashtbl.find_opt t.live va
let live_bytes t = t.live_bytes

let footprint_bytes t =
  List.fold_left (fun acc (r : O1mem.Fom.region) -> acc + r.O1mem.Fom.len) 0 t.arena_regions
  + Hashtbl.fold (fun _ (r : O1mem.Fom.region) acc -> acc + r.O1mem.Fom.len) t.large_regions 0

let region_count t = List.length t.arena_regions + Hashtbl.length t.large_regions

let destroy t =
  List.iter (fun r -> O1mem.Fom.free t.fom t.proc r) t.arena_regions;
  Hashtbl.iter (fun _ r -> O1mem.Fom.free t.fom t.proc r) t.large_regions;
  t.arena_regions <- [];
  Hashtbl.reset t.large_regions;
  Hashtbl.reset t.live;
  Array.fill t.free_lists 0 classes [];
  t.live_bytes <- 0;
  t.arena_cursor <- 0;
  t.arena_tail <- 0
