let large_threshold = Sim.Units.kib 128
let min_class = 16
let classes = 14

type t = {
  fom : O1mem.Fom.t;
  mutable proc : Os.Proc.t;
  arena_bytes : int;
  file_prefix : string option;
  free_lists : int list array;
  live : (int, int) Hashtbl.t; (* va -> size *)
  large_regions : (int, O1mem.Fom.region) Hashtbl.t; (* va -> region *)
  mutable arena_regions : O1mem.Fom.region list; (* creation order *)
  mutable arena_cursor : int;
  mutable arena_tail : int;
  mutable live_bytes : int;
}

let create fom proc ?(arena_bytes = Sim.Units.mib 1) ?file_prefix () =
  {
    fom;
    proc;
    arena_bytes;
    file_prefix;
    free_lists = Array.make classes [];
    live = Hashtbl.create 256;
    large_regions = Hashtbl.create 16;
    arena_regions = [];
    arena_cursor = 0;
    arena_tail = 0;
    live_bytes = 0;
  }

let class_of bytes =
  let rec loop k size = if size >= bytes then k else loop (k + 1) (size * 2) in
  loop 0 min_class

let class_size k = min_class lsl k

let grow_arena t =
  let r =
    match t.file_prefix with
    | None -> O1mem.Fom.alloc t.fom t.proc ~len:t.arena_bytes ~prot:Hw.Prot.rw ()
    | Some prefix ->
      (* Named, persistent arenas: the heap's memory survives a crash and
         can be re-mapped by path, in creation order, after recovery. *)
      O1mem.Fom.alloc t.fom t.proc
        ~name:(Printf.sprintf "%s.%d" prefix (List.length t.arena_regions))
        ~persistence:Fs.Inode.Persistent ~len:t.arena_bytes ~prot:Hw.Prot.rw ()
  in
  t.arena_regions <- t.arena_regions @ [ r ];
  t.arena_cursor <- r.O1mem.Fom.va;
  t.arena_tail <- r.O1mem.Fom.va + r.O1mem.Fom.len

let malloc t ~bytes =
  if bytes <= 0 then invalid_arg "Fom_heap.malloc: non-positive size";
  if bytes >= large_threshold then begin
    let r = O1mem.Fom.alloc t.fom t.proc ~len:bytes ~prot:Hw.Prot.rw () in
    Hashtbl.replace t.large_regions r.O1mem.Fom.va r;
    Hashtbl.replace t.live r.O1mem.Fom.va r.O1mem.Fom.len;
    t.live_bytes <- t.live_bytes + r.O1mem.Fom.len;
    r.O1mem.Fom.va
  end
  else begin
    let k = class_of bytes in
    let size = class_size k in
    match t.free_lists.(k) with
    | va :: rest ->
      t.free_lists.(k) <- rest;
      Hashtbl.replace t.live va size;
      t.live_bytes <- t.live_bytes + size;
      va
    | [] ->
      if t.arena_cursor + size > t.arena_tail then grow_arena t;
      let va = t.arena_cursor in
      t.arena_cursor <- va + size;
      Hashtbl.replace t.live va size;
      t.live_bytes <- t.live_bytes + size;
      va
  end

let free t va =
  match Hashtbl.find_opt t.live va with
  | None -> invalid_arg "Fom_heap.free: unknown block"
  | Some size ->
    Hashtbl.remove t.live va;
    t.live_bytes <- t.live_bytes - size;
    (match Hashtbl.find_opt t.large_regions va with
    | Some r ->
      Hashtbl.remove t.large_regions va;
      O1mem.Fom.free t.fom t.proc r
    | None -> t.free_lists.(class_of size) <- va :: t.free_lists.(class_of size))

let size_of t va = Hashtbl.find_opt t.live va
let live_bytes t = t.live_bytes

let footprint_bytes t =
  List.fold_left (fun acc (r : O1mem.Fom.region) -> acc + r.O1mem.Fom.len) 0 t.arena_regions
  + Hashtbl.fold (fun _ (r : O1mem.Fom.region) acc -> acc + r.O1mem.Fom.len) t.large_regions 0

let region_count t = List.length t.arena_regions + Hashtbl.length t.large_regions

(* Arena-relative addressing: stable block identities for persistent
   callers. A (arena index, byte offset) pair survives crashes and
   re-mapping at new VAs, which raw virtual addresses do not. *)

let arena_count t = List.length t.arena_regions

let arena_region t i =
  match List.nth_opt t.arena_regions i with
  | Some r -> r
  | None -> invalid_arg "Fom_heap.arena_region: no such arena"

let locate t va =
  let rec loop i = function
    | [] -> None
    | (r : O1mem.Fom.region) :: rest ->
      if va >= r.O1mem.Fom.va && va < r.O1mem.Fom.va + r.O1mem.Fom.len then
        Some (i, va - r.O1mem.Fom.va)
      else loop (i + 1) rest
  in
  loop 0 t.arena_regions

let address t ~arena ~off =
  let r = arena_region t arena in
  if off < 0 || off >= r.O1mem.Fom.len then invalid_arg "Fom_heap.address: offset out of arena";
  r.O1mem.Fom.va + off

let iter_live t f = Hashtbl.iter f t.live

let reattach t proc =
  if t.file_prefix = None then invalid_arg "Fom_heap.reattach: heap has no file_prefix";
  if Hashtbl.length t.large_regions > 0 then
    invalid_arg "Fom_heap.reattach: large regions do not survive reattach";
  let old_arenas = t.arena_regions in
  let fresh =
    List.map
      (fun (r : O1mem.Fom.region) -> O1mem.Fom.map_path t.fom proc ~prot:Hw.Prot.rw r.O1mem.Fom.path)
      old_arenas
  in
  (* Rebase every VA-keyed structure: same arena index + offset, new base. *)
  let translate va =
    let rec loop olds news =
      match (olds, news) with
      | (o : O1mem.Fom.region) :: otl, (n : O1mem.Fom.region) :: ntl ->
        if va >= o.O1mem.Fom.va && va < o.O1mem.Fom.va + o.O1mem.Fom.len then
          n.O1mem.Fom.va + (va - o.O1mem.Fom.va)
        else loop otl ntl
      | _ -> invalid_arg "Fom_heap.reattach: va outside every arena"
    in
    loop old_arenas fresh
  in
  let live' = Hashtbl.fold (fun va size acc -> (translate va, size) :: acc) t.live [] in
  Hashtbl.reset t.live;
  List.iter (fun (va, size) -> Hashtbl.replace t.live va size) live';
  Array.iteri (fun k l -> t.free_lists.(k) <- List.map translate l) t.free_lists;
  (match (List.rev old_arenas, List.rev fresh) with
  | last_old :: _, last_fresh :: _ ->
    t.arena_cursor <- last_fresh.O1mem.Fom.va + (t.arena_cursor - last_old.O1mem.Fom.va);
    t.arena_tail <- last_fresh.O1mem.Fom.va + last_fresh.O1mem.Fom.len
  | _ -> ());
  t.arena_regions <- fresh;
  t.proc <- proc

let destroy t =
  List.iter (fun r -> O1mem.Fom.free t.fom t.proc r) t.arena_regions;
  Hashtbl.iter (fun _ r -> O1mem.Fom.free t.fom t.proc r) t.large_regions;
  t.arena_regions <- [];
  Hashtbl.reset t.large_regions;
  Hashtbl.reset t.live;
  Array.fill t.free_lists 0 classes [];
  t.live_bytes <- 0;
  t.arena_cursor <- 0;
  t.arena_tail <- 0
