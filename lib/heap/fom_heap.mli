(** A user heap backed by file-only memory: the heap segment is a file.

    Small requests are carved from file-backed arena regions mapped whole
    at creation (no demand faults, ever); large requests get a file of
    their own. Allocation latency is therefore flat: the mapping work was
    O(extents) up front and the fault machinery is gone. *)

type t

val create : O1mem.Fom.t -> Os.Proc.t -> ?arena_bytes:int -> unit -> t

val malloc : t -> bytes:int -> int
val free : t -> int -> unit
val size_of : t -> int -> int option

val live_bytes : t -> int
val footprint_bytes : t -> int
val region_count : t -> int
(** Files currently backing the heap. *)

val destroy : t -> unit
(** Free every backing file (heap teardown = a handful of whole-file
    frees, the paper's process-exit story). *)
