(** A user heap backed by file-only memory: the heap segment is a file.

    Small requests are carved from file-backed arena regions mapped whole
    at creation (no demand faults, ever); large requests get a file of
    their own. Allocation latency is therefore flat: the mapping work was
    O(extents) up front and the fault machinery is gone.

    With [file_prefix] the arenas are {e named persistent} files
    ("<prefix>.<n>"), so the heap's memory survives a machine crash; the
    arena-relative addressing below ({!locate} / {!address}) plus
    {!reattach} let a persistent caller (the object store) keep stable
    block identities across crashes even though virtual addresses
    change — the Puddles relocatable-region idea. *)

type t

val create : O1mem.Fom.t -> Os.Proc.t -> ?arena_bytes:int -> ?file_prefix:string -> unit -> t
(** [file_prefix] makes every arena a named persistent file
    "<prefix>.<n>" (n = creation index) instead of an anonymous
    volatile temporary. *)

val malloc : t -> bytes:int -> int
val free : t -> int -> unit
val size_of : t -> int -> int option

val live_bytes : t -> int
val footprint_bytes : t -> int
val region_count : t -> int
(** Files currently backing the heap. *)

(** {1 Arena-relative addressing (persistent heaps)} *)

val arena_count : t -> int

val arena_region : t -> int -> O1mem.Fom.region
(** The region currently mapping arena [i] (creation order). Raises
    [Invalid_argument] on an out-of-range index. *)

val locate : t -> int -> (int * int) option
(** [(arena index, byte offset)] of a VA inside some arena — the
    crash-stable name of the location. [None] for VAs outside every
    arena (e.g. large blocks, which have no stable identity). *)

val address : t -> arena:int -> off:int -> int
(** Current VA of an arena-relative location (inverse of {!locate}). *)

val iter_live : t -> (int -> int -> unit) -> unit
(** Iterate live blocks as [f va size], in no particular order. *)

val reattach : t -> Os.Proc.t -> unit
(** Post-crash relocation: re-map every named arena by path into [proc]
    (fresh VAs) and rebase the live table, free lists, and bump cursor to
    the new bases. Arena indices and offsets are unchanged — only VAs
    move. Requires [file_prefix]; refuses if large blocks are live (they
    are not relocatable). *)

val destroy : t -> unit
(** Free every backing file (heap teardown = a handful of whole-file
    frees, the paper's process-exit story). *)
