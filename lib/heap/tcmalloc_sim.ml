let min_class = 16
let classes = 14 (* 16 B .. 128 KiB *)
let large_threshold = Sim.Units.kib 128
let batch = 32
let span_bytes = Sim.Units.kib 64
let arena_bytes = Sim.Units.mib 1

(* Cost constants: the point of the design. *)
let thread_cache_op = 5
let central_lock = 120

type t = {
  kernel : Os.Kernel.t;
  proc : Os.Proc.t;
  threads : int;
  (* caches.(thread).(class) *)
  caches : int list array array;
  central : int list array;
  live : (int, int) Hashtbl.t; (* va -> size *)
  large : (int, int) Hashtbl.t; (* va -> mmap length *)
  mutable arena_cursor : int;
  mutable arena_tail : int;
  mutable footprint : int;
  mutable live_bytes : int;
  mutable cached : int;
  mutable refills : int;
}

let create kernel proc ?(threads = 4) () =
  if threads <= 0 then invalid_arg "Tcmalloc_sim.create: no threads";
  {
    kernel;
    proc;
    threads;
    caches = Array.init threads (fun _ -> Array.make classes []);
    central = Array.make classes [];
    live = Hashtbl.create 256;
    large = Hashtbl.create 16;
    arena_cursor = 0;
    arena_tail = 0;
    footprint = 0;
    live_bytes = 0;
    cached = 0;
    refills = 0;
  }

let class_of bytes =
  let rec loop k size = if size >= bytes then k else loop (k + 1) (size * 2) in
  loop 0 min_class

let class_size k = min_class lsl k

let charge t c = Sim.Clock.charge (Os.Kernel.clock t.kernel) c

let grow_arena t =
  let va =
    Os.Kernel.mmap_anon t.kernel t.proc ~len:arena_bytes ~prot:Hw.Prot.rw ~populate:false
  in
  t.arena_cursor <- va;
  t.arena_tail <- va + arena_bytes;
  t.footprint <- t.footprint + arena_bytes

(* Carve a span into objects for the central list of class [k]. *)
let refill_central t k =
  let size = class_size k in
  let span = max span_bytes size in
  if t.arena_cursor + span > t.arena_tail then grow_arena t;
  let base = t.arena_cursor in
  t.arena_cursor <- base + span;
  let objs = span / size in
  for i = objs - 1 downto 0 do
    t.central.(k) <- (base + (i * size)) :: t.central.(k)
  done;
  t.cached <- t.cached + span

let rec take_central t k n acc =
  if n = 0 then acc
  else
    match t.central.(k) with
    | [] ->
      refill_central t k;
      take_central t k n acc
    | va :: rest ->
      t.central.(k) <- rest;
      take_central t k (n - 1) (va :: acc)

let check_thread t thread =
  if thread < 0 || thread >= t.threads then invalid_arg "Tcmalloc_sim: bad thread id"

let malloc t ~thread ~bytes =
  check_thread t thread;
  if bytes <= 0 then invalid_arg "Tcmalloc_sim.malloc: non-positive size";
  if bytes >= large_threshold then begin
    let len = Sim.Units.round_up bytes ~align:Sim.Units.page_size in
    let va = Os.Kernel.mmap_anon t.kernel t.proc ~len ~prot:Hw.Prot.rw ~populate:false in
    Hashtbl.replace t.large va len;
    Hashtbl.replace t.live va len;
    t.footprint <- t.footprint + len;
    t.live_bytes <- t.live_bytes + len;
    va
  end
  else begin
    let k = class_of bytes in
    let size = class_size k in
    charge t thread_cache_op;
    (match t.caches.(thread).(k) with
    | [] ->
      (* Miss: batch refill under the central lock. *)
      charge t central_lock;
      t.refills <- t.refills + 1;
      t.caches.(thread).(k) <- take_central t k batch []
    | _ -> ());
    match t.caches.(thread).(k) with
    | va :: rest ->
      t.caches.(thread).(k) <- rest;
      Hashtbl.replace t.live va size;
      t.live_bytes <- t.live_bytes + size;
      t.cached <- t.cached - size;
      va
    | [] -> assert false
  end

let free t ~thread va =
  check_thread t thread;
  match Hashtbl.find_opt t.live va with
  | None -> invalid_arg "Tcmalloc_sim.free: unknown block"
  | Some size ->
    Hashtbl.remove t.live va;
    t.live_bytes <- t.live_bytes - size;
    (match Hashtbl.find_opt t.large va with
    | Some len ->
      Hashtbl.remove t.large va;
      Os.Kernel.munmap t.kernel t.proc ~va ~len;
      t.footprint <- t.footprint - len
    | None ->
      charge t thread_cache_op;
      let k = class_of size in
      t.caches.(thread).(k) <- va :: t.caches.(thread).(k);
      t.cached <- t.cached + size;
      (* Overfull thread cache: release a batch to the central list. *)
      if List.length t.caches.(thread).(k) > 2 * batch then begin
        charge t central_lock;
        let rec split n l = if n = 0 then ([], l) else match l with [] -> ([], []) | x :: r -> let a, b = split (n - 1) r in (x :: a, b) in
        let back, keep = split batch t.caches.(thread).(k) in
        t.caches.(thread).(k) <- keep;
        t.central.(k) <- back @ t.central.(k)
      end)

let size_of t va = Hashtbl.find_opt t.live va
let live_bytes t = t.live_bytes
let footprint_bytes t = t.footprint
let cached_bytes t = t.cached
let central_refills t = t.refills
