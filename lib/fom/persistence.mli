(** Crash and recovery orchestration (paper §4.1, experiment E17).

    "All data lives in files that can be marked at any time as volatile
    or persistent to indicate whether they should survive process
    terminations and system restarts."

    A crash kills every process and loses DRAM (tmpfs included); PMFS
    metadata and [Persistent] file contents survive. Recovery is
    O(files): volatile files in PMFS are deleted (their frames
    bulk-erased), persistent files — and their pre-created master page
    tables — are immediately usable again. *)

type report = {
  files_scanned : int;
  masters_kept : int;
  masters_dropped : int;
  recovery_cycles : int;
  hook_records : (string * int) list;
      (** per registered recovery hook (name order): records it replayed *)
}

val crash : Fom.t -> unit
(** Power failure: all processes die, DRAM contents and the tmpfs
    namespace are lost, unflushed NVM lines are torn. Registered
    {!Fom.on_crash} hooks run first. *)

val recover : Fom.t -> report
(** Bring the machine back: run PMFS recovery, prune master page tables
    of files that did not survive, and reset FOM's region registry; then
    run registered {!Fom.on_recover} hooks (e.g. store WAL replay), so
    recovery completes before any process remaps the data. *)

val crash_and_recover : Fom.t -> report
