(** File-granularity memory reclamation (paper §4.1): applications put
    non-critical data (caches) in files marked discardable; under memory
    pressure the OS simply deletes cold files — O(files) work that frees
    arbitrary amounts of memory, the transcendent-memory benefit without
    per-page scanning. *)

type t

val create : fs:Fs.Memfs.t -> t

val register_cache_file :
  t -> path:string -> size:int -> unit
(** Create a discardable volatile file of [size] bytes — an application
    cache. *)

val touch : t -> path:string -> unit
(** Record a use of the cache file (coarse, per-file access tracking). *)

val still_present : t -> path:string -> bool
(** Has the file survived reclamation so far? *)

val pressure : t -> needed_bytes:int -> int
(** Reclaim at least [needed_bytes] by deleting the coldest discardable
    files; returns bytes freed. *)

val registered : t -> int
