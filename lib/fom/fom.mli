(** File-only memory — the paper's primary proposal (§4.1).

    All user memory is allocated as files in a memory file system and
    mapped {e whole-file}: no demand paging, no per-page metadata, no
    page-granular permissions. Four mapping strategies are provided so
    experiments can compare them:

    - [Per_page]: classic 4 KiB PTEs for every page (linear; here for
      comparison only);
    - [Huge_pages]: largest page size alignment allows (paper §3: ample
      memory makes wasting space inside a 2 MiB page acceptable);
    - [Shared_subtree]: graft pre-created master page-table subtrees, one
      pointer per 2 MiB window (Figure 3);
    - [Range_translation]: one range-table entry per file extent
      (Figure 4/9) — O(extents) map and unmap, independent of size.

    Regions are whole files: protection, pinning, persistence and
    reclamation all operate at file granularity. *)

type strategy = Per_page | Huge_pages | Shared_subtree | Range_translation

val strategy_name : strategy -> string

type region = {
  va : int;
  len : int;  (** bytes, page-rounded *)
  ino : int;
  path : string;
  temp : bool;  (** created by {!alloc} without a name: deleted on free *)
  strategy : strategy;
  prot : Hw.Prot.t;  (** protection this mapping was installed with *)
  graft_windows : int;  (** [Shared_subtree]: pointers grafted, at... *)
  graft_window_bytes : int;  (** ...this window size (0 otherwise). The
      region remembers its own graft geometry so unmapping stays correct
      even after the file's master is rebuilt (e.g. by {!grow}). *)
}

type t

val create : Os.Kernel.t -> ?fs:Fs.Memfs.t -> ?strategy:strategy -> unit -> t
(** [fs] defaults to the kernel's PMFS when present, else its tmpfs.
    [strategy] defaults to [Shared_subtree]. *)

val kernel : t -> Os.Kernel.t
val fs : t -> Fs.Memfs.t
val shared_pt : t -> Shared_pt.t
val default_strategy : t -> strategy

(** {1 The O(1) allocation API} *)

val alloc :
  t -> Os.Proc.t -> ?name:string -> ?persistence:Fs.Inode.persistence ->
  ?strategy:strategy -> ?guard:bool -> len:int -> prot:Hw.Prot.t -> unit -> region
(** Allocate memory as a file and map it whole. Unnamed allocations are
    volatile temporary files. The file is a single extent whenever the
    file system's free space allows. With [guard:true] an unmapped guard
    page is reserved after the region, so an overflow faults instead of
    silently entering the next mapping — the file-granular stand-in for
    the per-page guard pages the paper notes FOM cannot easily provide. *)

val map_path : t -> Os.Proc.t -> ?prot:Hw.Prot.t -> ?strategy:strategy -> string -> region
(** Map an existing file ([prot] defaults to the file's whole-file
    protection). Two processes mapping the same file under
    [Shared_subtree] share the master's page-table nodes. *)

val unmap : ?batch:Hw.Tlb_batch.t -> t -> Os.Proc.t -> region -> unit
(** Whole-file unmap: drop grafts / range entries / PTEs and the file
    reference. Memory is reclaimed only here or at process exit — there
    is no background reclaim to pay for. With [batch] the final TLB
    invalidation is gathered into it instead of issued immediately, so a
    caller tearing down many regions flushes once. *)

val free : ?batch:Hw.Tlb_batch.t -> t -> Os.Proc.t -> region -> unit
(** {!unmap}, then delete the file if it was a temporary. *)

val access : t -> Os.Proc.t -> va:int -> write:bool -> unit
(** Touch one byte. FOM mappings are always fully populated, so this
    never takes a demand fault; it raises {!Os.Fault.Segfault} outside
    any region or on a protection violation. *)

val access_range : t -> Os.Proc.t -> va:int -> len:int -> write:bool -> stride:int -> int

val protect : t -> Os.Proc.t -> region -> prot:Hw.Prot.t -> region
(** Whole-file permission change: updates the file's protection and
    remaps (O(windows) or O(extents), never O(pages) except under
    [Per_page]). Returns the updated region. *)

val grow : t -> Os.Proc.t -> region -> new_len:int -> region
(** mremap, file-only style: extend the backing file and remap it whole
    at a fresh base VA (the returned region's [va] changes). Because a
    whole-file map is O(windows)/O(extents) under FOM, growing is cheap
    without the in-place VMA-merging contortions the paper mentions —
    the data never moves, only translations do. *)

val copy_region : t -> Os.Proc.t -> region -> ?name:string -> unit -> region
(** Eagerly duplicate a region into a fresh file and map it. This is the
    file-only substitute for copy-on-write, which the paper concedes
    "cannot easily be supported" without page-granular mappings: you pay
    the copy up front, at memory bandwidth, instead of per-page faults
    later. *)

val persist : t -> region -> unit
(** Mark the backing file persistent (survives crashes). *)

val make_volatile : t -> region -> unit
val make_discardable : t -> region -> unit

val region_of : t -> Os.Proc.t -> va:int -> region option
val regions_of : t -> Os.Proc.t -> region list

val smaps : t -> Os.Proc.t -> string
(** /proc-style rollup of the process's file-only regions: one line per
    region (va, length, protection, strategy, backing path), plus totals
    including the master page tables shared across processes. *)

(** {1 Process launch (E16)} *)

val launch :
  t -> code_bytes:int -> heap_bytes:int -> stack_bytes:int ->
  Os.Proc.t * region list
(** Launch a process whose code, heap and stack segments are three files
    ("code segments, heap segments, and stack segments can all be
    represented as separate files"). Code maps from a shared named file
    (created on first launch — later launches reuse its master table);
    heap and stack are fresh volatile files. *)

val exit_process : t -> Os.Proc.t -> unit
(** Unmap all the process's regions (freeing temporaries) and tear the
    process down. All the regions' shootdowns are gathered into a single
    {!Hw.Tlb_batch} flushed once. *)

(** {1 Persistence hooks}

    Components layered above Fom (e.g. the object store) register here
    so {!Persistence.crash} / {!Persistence.recover} can drive their
    crash semantics and recovery {e application-independently}: recovery
    hooks run inside [Persistence.recover], before any process remaps
    the recovered data. Hooks are keyed by name (re-registering a name
    replaces the old hook) and run in name order. *)

val on_crash : t -> name:string -> (unit -> unit) -> unit
(** Run at the start of {!Persistence.crash}, before volatile state is
    torn down — e.g. revert unflushed store-WAL lines. Must not touch
    kernel/process state. *)

val on_recover : t -> name:string -> (unit -> int) -> unit
(** Run at the end of {!Persistence.recover}, after the file system is
    recovered. Returns the number of records the hook replayed, surfaced
    in the report's [hook_records]. *)

val remove_hooks : t -> name:string -> unit

(**/**)

val run_crash_hooks : t -> unit
val run_recovery_hooks : t -> (string * int) list
(** Internal (used by {!Persistence}). *)

val reset_after_crash : t -> unit
(** Internal (used by {!Persistence}): forget all live regions — the
    processes holding them died with the machine. *)
