(** Physically based mappings (paper §4.2, Figure 8).

    Virtual addresses are generated algorithmically from physical ones:
    [va = pa + pbm_offset]. Because the algorithm is the same for every
    process, a given physical extent gets the {e same} VA everywhere —
    no collisions (physical addresses are unique), no coordination.

    All PBM mappings live in one kernel-owned global page table covering
    the PBM virtual window. A process "attaches" by grafting a single
    root-level pointer to that table: O(1) per process, regardless of how
    many PBM regions exist or how large they are.

    Security note: PBM addresses are by construction identical in every
    process and cannot be randomized — code or data in the PBM window is
    exempt from ASLR ({!Os.Kernel.config}[.aslr]). The paper does not
    discuss this trade; we surface it here. *)

type t

val create : Os.Kernel.t -> t

val pbm_offset : int
(** Base of the PBM virtual window (512 GiB-aligned so the whole window
    sits under one root entry of a 4-level table). *)

val va_of_addr : int -> int
(** The virtual address every process uses for a physical byte. *)

val addr_of_va : int -> int

val map_region : t -> first:Physmem.Frame.t -> count:int -> prot:Hw.Prot.t -> int
(** Enter a contiguous physical extent into the global PBM table (using
    huge pages where alignment allows) and return its (universal) VA. *)

val unmap_region : t -> first:Physmem.Frame.t -> count:int -> unit

val attach : t -> Os.Proc.t -> unit
(** Graft the PBM window into the process: one pointer write. *)

val detach : t -> Os.Proc.t -> unit

val attached : t -> Os.Proc.t -> bool
val region_count : t -> int
val metadata_bytes : t -> int
(** Bytes of the single shared PBM table (contrast with per-process
    replicas in the baseline). *)
