(* Crash-at-every-step exploration and named fault plans.

   The explorers lean on one property of the injection plane: an unarmed
   site still counts its evaluations. A first pass runs the workload to
   completion with ["durable_step"] unarmed, which enumerates every
   clwb/sfence boundary the workload crosses; the explorer then replays
   the workload once per boundary with [On_nth k] armed, crashes the
   machine at that exact point, recovers, and checks invariants. Every
   pass uses the same seed, so the k-th replay is byte-identical to the
   baseline up to the crash. *)

module FI = Sim.Fault_inject

type explorer_report = {
  steps : int;
  fences : int;
  crashes : int;
  violations : string list;
}

let add violations k msg =
  violations := Printf.sprintf "step %d: %s" k msg :: !violations

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
  | _ :: _, [] -> false

(* ------------------------------------------------------------------ *)
(* WAL explorer: a bare NVM machine, no kernel.                        *)
(* ------------------------------------------------------------------ *)

let wal_capacity = Sim.Units.kib 16

(* Deterministic payloads with lengths that straddle cache-line and
   word boundaries, so flushes cover 1..2 lines. *)
let wal_payloads ~records ~seed =
  let rng = Sim.Rng.create ~seed in
  let acc = ref [] in
  for i = 0 to records - 1 do
    let len = 5 + Sim.Rng.int rng 76 in
    acc := String.make len (Char.chr (Char.code 'a' + (i mod 26))) :: !acc
  done;
  List.rev !acc

let wal_machine ~seed =
  let clock = Sim.Clock.create Sim.Cost_model.default in
  let stats = Sim.Stats.create () in
  let trace = Sim.Trace.create ~clock () in
  let mem =
    Physmem.Phys_mem.create ~clock ~stats ~trace ~dram_bytes:(Sim.Units.mib 1)
      ~nvm_bytes:(Sim.Units.mib 1) ()
  in
  let nvm = Physmem.Nvm.create mem in
  let base = Physmem.Frame.to_addr (Physmem.Phys_mem.dram_frames mem) in
  let plane = FI.create ~seed ~stats () in
  Sim.Trace.attach_faults trace plane;
  (plane, stats, nvm, base)

let explore_wal ?(records = 6) ?(seed = 7) () =
  let payloads = wal_payloads ~records ~seed in
  let append_all wal =
    List.iter
      (fun p ->
        match Fs.Wal.append wal p with
        | Ok () -> ()
        | Error Fs.Wal.Wal_full ->
          invalid_arg "Chaos.explore_wal: workload exceeds the WAL capacity")
      payloads
  in
  (* Pass 0: enumerate the durable-step boundaries. *)
  let plane0, stats0, nvm0, base0 = wal_machine ~seed in
  let wal0 = Fs.Wal.create ~nvm:nvm0 ~base:base0 ~capacity:wal_capacity in
  append_all wal0;
  let steps = FI.evaluations plane0 ~site:FI.site_durable_step in
  let fences = Sim.Stats.get stats0 "sfence" in
  let attempted = Fs.Wal.entries wal0 in
  let violations = ref [] in
  for k = 1 to steps do
    let plane, _, nvm, base = wal_machine ~seed in
    FI.arm plane ~site:FI.site_durable_step (FI.On_nth k);
    let wal = Fs.Wal.create ~nvm ~base ~capacity:wal_capacity in
    let committed = ref [] in
    let crashed =
      try
        List.iter
          (fun p ->
            match Fs.Wal.append wal p with
            | Ok () -> committed := p :: !committed
            | Error Fs.Wal.Wal_full -> ())
          payloads;
        false
      with FI.Injected_crash _ -> true
    in
    if not crashed then add violations k "durable step never fired";
    Physmem.Nvm.crash nvm;
    let back = Fs.Wal.recover ~nvm ~base ~capacity:wal_capacity in
    let recovered = Fs.Wal.entries back in
    let committed = List.rev !committed in
    (* Committed-prefix durability: every acknowledged append survives.
       Recovery may additionally keep the in-flight record when the
       crash hit the post-marker fence — the record was durable, only
       the acknowledgement was lost — which is why [recovered] may run
       one past [committed]. *)
    if not (is_prefix committed recovered) then
      add violations k
        (Printf.sprintf "acknowledged record lost (committed %d, recovered %d)"
           (List.length committed) (List.length recovered));
    (* No torn record: whatever recovery kept is a clean prefix of what
       the workload wrote, byte for byte. *)
    if not (is_prefix recovered attempted) then
      add violations k
        (Printf.sprintf "recovered log torn or reordered (%d records)"
           (List.length recovered));
    (* The recovered log must remain usable. *)
    (match Fs.Wal.append back "post-recovery" with
    | Ok () | Error Fs.Wal.Wal_full -> ())
  done;
  { steps; fences; crashes = steps; violations = List.rev !violations }

(* ------------------------------------------------------------------ *)
(* File-system explorer: kernel + FOM, crash inside journaled ops.     *)
(* ------------------------------------------------------------------ *)

let chaos_config =
  {
    Os.Kernel.default_config with
    Os.Kernel.dram_bytes = Sim.Units.mib 8;
    nvm_bytes = Sim.Units.mib 8;
    (* SMP so a lost shootdown ack has a victim: the tlb plan migrates
       between access and unmap, making the IPI round target a remote
       core that really caches the pages. *)
    cores = 4;
  }

let fom_machine ~seed =
  let kernel = Os.Kernel.create ~config:chaos_config () in
  let plane = FI.create ~seed ~stats:(Os.Kernel.stats kernel) () in
  Sim.Trace.attach_faults (Os.Kernel.trace kernel) plane;
  let fom = Fom.create kernel () in
  (kernel, fom, plane)

let fs_payload i = Printf.sprintf "chaos-%02d" i

(* Alternate persistent named files and volatile temporaries; [made]
   records each region the moment its data write completed, so a crash
   mid-allocation leaves the in-flight file untracked (recovery may
   legitimately keep or drop it). *)
let fs_workload ~files (kernel, fom) made =
  let proc = Os.Kernel.create_process kernel () in
  for i = 1 to files do
    let persistent = i mod 2 = 1 in
    let r =
      if persistent then
        Fom.alloc fom proc ~name:(Printf.sprintf "/chaos%d" i)
          ~persistence:Fs.Inode.Persistent ~len:(Sim.Units.kib 16)
          ~prot:Hw.Prot.rw ()
      else Fom.alloc fom proc ~len:(Sim.Units.kib 16) ~prot:Hw.Prot.rw ()
    in
    Fs.Memfs.write_file (Fom.fs fom) r.Fom.ino ~off:0 (fs_payload i);
    made := (r, persistent, i) :: !made
  done

let explore_fs ?(files = 5) ?(seed = 11) () =
  (* Pass 0: run to completion, counting durable boundaries. *)
  let kernel0, fom0, plane0 = fom_machine ~seed in
  let made0 = ref [] in
  fs_workload ~files (kernel0, fom0) made0;
  let steps = FI.evaluations plane0 ~site:FI.site_durable_step in
  let fences = Sim.Stats.get (Os.Kernel.stats kernel0) "sfence" in
  let violations = ref [] in
  for k = 1 to steps do
    let kernel, fom, plane = fom_machine ~seed in
    FI.arm plane ~site:FI.site_durable_step (FI.On_nth k);
    let made = ref [] in
    let crashed =
      try
        fs_workload ~files (kernel, fom) made;
        false
      with FI.Injected_crash _ -> true
    in
    if not crashed then add violations k "durable step never fired";
    let masters_before = Shared_pt.master_count (Fom.shared_pt fom) in
    let report = Persistence.crash_and_recover fom in
    (* Master pruning is total: every pre-crash master was either kept
       (its file survived) or dropped, and a second prune finds nothing
       — masters are pruned iff their file died, exactly once. *)
    if report.Persistence.masters_kept + report.Persistence.masters_dropped
       <> masters_before
    then
      add violations k
        (Printf.sprintf "master accounting: %d before, %d kept + %d dropped"
           masters_before report.Persistence.masters_kept
           report.Persistence.masters_dropped);
    if Shared_pt.prune_dead (Fom.shared_pt fom) ~fs:(Fom.fs fom) <> 0 then
      add violations k "recovery left masters pointing at dead files";
    let fs = Fom.fs fom in
    List.iter
      (fun (r, persistent, i) ->
        match (Fs.Memfs.lookup fs r.Fom.path, persistent) with
        | Some ino, true ->
          let want = fs_payload i in
          let got =
            Bytes.to_string
              (Fs.Memfs.read_file fs ino ~off:0 ~len:(String.length want))
          in
          if not (String.equal got want) then
            add violations k
              (Printf.sprintf "persistent %s corrupted (%S <> %S)" r.Fom.path
                 got want)
        | None, true ->
          add violations k
            (Printf.sprintf "persistent %s lost by recovery" r.Fom.path)
        | Some _, false ->
          add violations k
            (Printf.sprintf "volatile %s survived recovery" r.Fom.path)
        | None, false -> ())
      (List.rev !made);
    (match Os.Check.run kernel with
    | [] -> ()
    | vs ->
      List.iter (fun v -> add violations k (Os.Check.violation_to_string v)) vs);
    (* Graceful continuation: the recovered machine still allocates. *)
    let p2 = Os.Kernel.create_process kernel () in
    let r2 = Fom.alloc fom p2 ~len:(Sim.Units.kib 4) ~prot:Hw.Prot.rw () in
    Fom.free fom p2 r2
  done;
  { steps; fences; crashes = steps; violations = List.rev !violations }

(* ------------------------------------------------------------------ *)
(* Named fault plans: sustained probabilistic injection + degradation. *)
(* ------------------------------------------------------------------ *)

type plan_outcome = {
  plan : string;
  seed : int;
  sites : (string * int * int) list;
  injected_total : int;
  enomem : int;
  enospc : int;
  retried : int;
  reclaimed_frames : int;
  ooms : int;
  checks : Os.Check.violation list;
}

let plans = [ "alloc"; "nvm"; "quota"; "tlb"; "all" ]

(* The tlb plan intentionally breaks coherence: the checker is expected
   to find the stale entries, so its violations are the pass condition,
   not a failure. *)
let plan_expects_violations = function "tlb" | "all" -> true | _ -> false

let arm_plan plane plan =
  let arm site mode = FI.arm plane ~site mode in
  let alloc () =
    arm FI.site_frame_alloc_fail (FI.Prob 0.05);
    arm FI.site_zero_cache_empty (FI.Prob 0.25)
  in
  let nvm () =
    arm FI.site_nvm_torn_line (FI.Prob 0.05);
    arm FI.site_nvm_bit_flip (FI.Prob 0.05);
    arm FI.site_wal_partial_flush (FI.Prob 0.1)
  in
  let quota () = arm FI.site_quota_enospc (FI.Prob 0.2) in
  let tlb () = arm FI.site_tlb_ack_lost (FI.Prob 0.5) in
  match plan with
  | "alloc" -> alloc ()
  | "nvm" -> nvm ()
  | "quota" -> quota ()
  | "tlb" -> tlb ()
  | "all" ->
    alloc ();
    nvm ();
    quota ();
    tlb ()
  | p ->
    invalid_arg
      (Printf.sprintf "Chaos.run_plan: unknown plan %S (expected one of %s)" p
         (String.concat ", " plans))

let run_plan ?(seed = 1) ?(rounds = 16) ~plan () =
  let kernel = Os.Kernel.create ~config:chaos_config () in
  let plane = FI.create ~seed ~stats:(Os.Kernel.stats kernel) () in
  Sim.Trace.attach_faults (Os.Kernel.trace kernel) plane;
  arm_plan plane plan;
  let fom = Fom.create kernel () in
  let enomem = ref 0 and enospc = ref 0 in
  (* Typed errors are the degradation contract: anything else escaping
     a faulted operation is a real bug and propagates to the caller. *)
  let guard f =
    try f () with
    | Sim.Errno.Error (Sim.Errno.ENOMEM, _) -> incr enomem
    | Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> incr enospc
  in
  let p1 = Os.Kernel.create_process kernel () in
  let p2 = Os.Kernel.create_process kernel () in
  let cores = chaos_config.Os.Kernel.cores in
  for i = 1 to rounds do
    guard (fun () ->
        let len = Sim.Units.kib 64 in
        (* Touch the pages on one core, unmap from another: the shootdown
           must now cross cores, so a dropped ack (tlb plan) leaves a
           stale entry the final checker can catch. *)
        Os.Kernel.migrate kernel p1 ~core:(i mod cores);
        let va =
          Os.Kernel.mmap_anon kernel p1 ~len ~prot:Hw.Prot.rw ~populate:false
        in
        ignore
          (Os.Kernel.access_range kernel p1 ~va ~len ~write:true
             ~stride:Sim.Units.page_size);
        Os.Kernel.migrate kernel p1 ~core:((i + 1) mod cores);
        Os.Kernel.munmap kernel p1 ~va ~len);
    guard (fun () ->
        let len = Sim.Units.kib 16 in
        let va =
          Os.Kernel.mmap_anon kernel p2 ~len ~prot:Hw.Prot.rw ~populate:true
        in
        Os.Kernel.munmap kernel p2 ~va ~len);
    ignore (Os.Kernel.background_zero kernel ~budget_frames:8);
    guard (fun () ->
        let r =
          Fom.alloc fom p1 ~name:(Printf.sprintf "/plan%d" i)
            ~persistence:Fs.Inode.Persistent ~len:(Sim.Units.kib 32)
            ~prot:Hw.Prot.rw ()
        in
        ignore
          (Fom.access_range fom p1 ~va:r.Fom.va ~len:r.Fom.len ~write:true
             ~stride:Sim.Units.page_size);
        Fom.free fom p1 r)
  done;
  (* Pressure finale: overcommit the anonymous pool ~3x. Injected faults
     aside, allocation now fails for real, so the reclaim-then-retry
     pass (and, if reclaim cannot keep up, the typed OOM) is exercised
     under genuine exhaustion, not just simulated refusals. *)
  let hog = Os.Kernel.create_process kernel () in
  guard (fun () ->
      for _ = 1 to 12 do
        let len = Sim.Units.mib 1 in
        let va =
          Os.Kernel.mmap_anon kernel hog ~len ~prot:Hw.Prot.rw ~populate:false
        in
        ignore
          (Os.Kernel.access_range kernel hog ~va ~len ~write:true
             ~stride:Sim.Units.page_size)
      done);
  let stats = Os.Kernel.stats kernel in
  {
    plan;
    seed;
    sites = FI.totals plane;
    injected_total = FI.injected_total plane;
    enomem = !enomem;
    enospc = !enospc;
    retried = Sim.Stats.get stats "alloc_retry_reclaim";
    reclaimed_frames = Sim.Stats.get stats "alloc_reclaimed_frames";
    ooms = Sim.Stats.get stats "alloc_oom";
    checks = Os.Check.run kernel;
  }
