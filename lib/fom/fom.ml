type strategy = Per_page | Huge_pages | Shared_subtree | Range_translation

let strategy_name = function
  | Per_page -> "per-page"
  | Huge_pages -> "huge-pages"
  | Shared_subtree -> "shared-subtree"
  | Range_translation -> "range-translation"

type region = {
  va : int;
  len : int;
  ino : int;
  path : string;
  temp : bool;
  strategy : strategy;
  prot : Hw.Prot.t;
  graft_windows : int;
  graft_window_bytes : int;
}

type t = {
  kernel : Os.Kernel.t;
  fs : Fs.Memfs.t;
  default_strategy : strategy;
  shared_pt : Shared_pt.t;
  regions : (int * int, region) Hashtbl.t; (* (pid, va) -> region *)
  mutable next_temp : int;
  crash_hooks : (string, unit -> unit) Hashtbl.t;
  recovery_hooks : (string, unit -> int) Hashtbl.t;
}

let create kernel ?fs ?(strategy = Shared_subtree) () =
  let fs =
    match fs with
    | Some fs -> fs
    | None -> (
      match Os.Kernel.pmfs kernel with Some p -> p | None -> Os.Kernel.tmpfs kernel)
  in
  {
    kernel;
    fs;
    default_strategy = strategy;
    shared_pt = Shared_pt.create kernel;
    regions = Hashtbl.create 64;
    next_temp = 0;
    crash_hooks = Hashtbl.create 4;
    recovery_hooks = Hashtbl.create 4;
  }

(* Persistence hooks: components above Fom (the object store) register
   here so crash/recovery stay application-independent — Persistence
   drives them by name without knowing what they recover. Replace-by-name
   keeps re-registration (fresh store over the same files) idempotent. *)
let on_crash t ~name f = Hashtbl.replace t.crash_hooks name f
let on_recover t ~name f = Hashtbl.replace t.recovery_hooks name f

let remove_hooks t ~name =
  Hashtbl.remove t.crash_hooks name;
  Hashtbl.remove t.recovery_hooks name

let sorted_hooks tbl =
  Hashtbl.fold (fun name f acc -> (name, f) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_crash_hooks t = List.iter (fun (_, f) -> f ()) (sorted_hooks t.crash_hooks)

let run_recovery_hooks t =
  List.map (fun (name, f) -> (name, f ())) (sorted_hooks t.recovery_hooks)

let kernel t = t.kernel
let fs t = t.fs
let trace t = Os.Kernel.trace t.kernel
let now t = Sim.Clock.now (Os.Kernel.clock t.kernel)
let shared_pt t = t.shared_pt
let default_strategy t = t.default_strategy

let charge_syscall t =
  let clock = Os.Kernel.clock t.kernel in
  Sim.Clock.charge clock (Sim.Clock.model clock).Sim.Cost_model.syscall

let pspan t name f = Sim.Trace.prof_span (trace t) name f

(* Map every extent of [ino] into the process according to [strategy];
   returns the chosen base VA. *)
let install_mapping t (proc : Os.Proc.t) ~ino ~prot ~strategy =
  let aspace = proc.Os.Proc.aspace in
  let table = Os.Address_space.page_table aspace in
  let node = Fs.Memfs.inode t.fs ino in
  let len =
    Fs.Extent_tree.pages (Fs.Inode.extents node) * Sim.Units.page_size
  in
  if len = 0 then invalid_arg "Fom: cannot map an empty file";
  match strategy with
  | Shared_subtree ->
    let m = Shared_pt.master_for t.shared_pt ~fs:t.fs ~ino ~prot in
    let va = Os.Address_space.alloc_va aspace ~len ~align:(Shared_pt.window_bytes m) in
    let windows =
      pspan t "fom_graft" @@ fun () ->
      let start = now t in
      let windows = Shared_pt.graft t.shared_pt m ~dst:table ~dst_va:va in
      Sim.Trace.record (trace t) ~op:"fom_graft" ~start ~arg:windows ();
      windows
    in
    (va, len, windows, Shared_pt.window_bytes m)
  | Per_page | Huge_pages ->
    let huge = strategy = Huge_pages in
    let align = if huge then Sim.Units.huge_2m else Sim.Units.page_size in
    let va = Os.Address_space.alloc_va aspace ~len ~align in
    Fs.Extent_tree.iter (Fs.Inode.extents node) (fun e ->
        ignore
          (Hw.Page_table.map_range table
             ~va:(va + (e.Fs.Extent.logical * Sim.Units.page_size))
             ~pfn:e.Fs.Extent.start
             ~len:(e.Fs.Extent.count * Sim.Units.page_size)
             ~prot ~huge));
    (va, len, 0, 0)
  | Range_translation -> (
    match Os.Address_space.range_table aspace with
    | None ->
      invalid_arg "Fom: process has no range table (create it with ~range_translations:true)"
    | Some rt ->
      let va = Os.Address_space.alloc_va aspace ~len ~align:Sim.Units.page_size in
      Fs.Extent_tree.iter (Fs.Inode.extents node) (fun e ->
          let base = va + (e.Fs.Extent.logical * Sim.Units.page_size) in
          let pa = Physmem.Frame.to_addr e.Fs.Extent.start in
          Hw.Range_table.insert rt ~base
            ~limit:(e.Fs.Extent.count * Sim.Units.page_size)
            ~offset:(pa - base) ~prot);
      (va, len, 0, 0))

let register_region t (proc : Os.Proc.t) region =
  Hashtbl.replace t.regions (proc.Os.Proc.pid, region.va) region

let temp_dir = "/tmp"

let ensure_temp_dir t =
  if Fs.Memfs.lookup t.fs temp_dir = None then Fs.Memfs.mkdir t.fs temp_dir

let alloc t proc ?name ?persistence ?strategy ?(guard = false) ~len ~prot () =
  pspan t "fom_alloc" @@ fun () ->
  let start = now t in
  charge_syscall t;
  if len <= 0 then invalid_arg "Fom.alloc: empty allocation";
  let strategy = match strategy with Some s -> s | None -> t.default_strategy in
  let path, temp, persistence =
    match name with
    | Some p -> (p, false, Option.value persistence ~default:Fs.Inode.Persistent)
    | None ->
      ensure_temp_dir t;
      let p = Printf.sprintf "%s/fom.%d" temp_dir t.next_temp in
      t.next_temp <- t.next_temp + 1;
      (p, true, Option.value persistence ~default:Fs.Inode.Volatile)
  in
  let ino = Fs.Memfs.create_file t.fs path ~persistence in
  (* ENOSPC degrades gracefully: undo the create so the namespace holds no
     empty husk, then let the typed error surface to the caller. *)
  (try Fs.Memfs.extend t.fs ino ~bytes_wanted:len
   with Sim.Errno.Error (Sim.Errno.ENOSPC, _) as e ->
     Fs.Memfs.unlink t.fs path;
     Sim.Stats.incr (Os.Kernel.stats t.kernel) "fom_alloc_enospc";
     raise e);
  Fs.Memfs.set_prot t.fs ino prot;
  Fs.Memfs.open_file t.fs ino;
  let va, len, graft_windows, graft_window_bytes = install_mapping t proc ~ino ~prot ~strategy in
  if guard then
    (* Burn one page of VA so nothing can ever be mapped flush against
       the region's end. *)
    ignore
      (Os.Address_space.alloc_va proc.Os.Proc.aspace ~len:Sim.Units.page_size
         ~align:Sim.Units.page_size);
  let region = { va; len; ino; path; temp; strategy; prot; graft_windows; graft_window_bytes } in
  register_region t proc region;
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "fom_alloc";
  Sim.Trace.record (trace t) ~op:"fom_alloc" ~start ~arg:len ();
  region

let map_path t proc ?prot ?strategy path =
  pspan t "fom_map" @@ fun () ->
  let start = now t in
  charge_syscall t;
  let strategy = match strategy with Some s -> s | None -> t.default_strategy in
  let ino =
    match Fs.Memfs.lookup t.fs path with
    | Some ino -> ino
    | None -> invalid_arg ("Fom.map_path: no such file: " ^ path)
  in
  let node = Fs.Memfs.inode t.fs ino in
  let prot = Option.value prot ~default:node.Fs.Inode.prot in
  if not (Hw.Prot.subset prot ~of_:node.Fs.Inode.prot) then
    invalid_arg "Fom.map_path: permission denied (whole-file check)";
  Fs.Memfs.open_file t.fs ino;
  let va, len, graft_windows, graft_window_bytes = install_mapping t proc ~ino ~prot ~strategy in
  let region =
    { va; len; ino; path; temp = false; strategy; prot; graft_windows; graft_window_bytes }
  in
  register_region t proc region;
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "fom_map";
  Sim.Trace.record (trace t) ~op:"fom_map" ~start ~arg:len ();
  region

let remove_mapping ?batch t (proc : Os.Proc.t) region =
  let prot = region.prot in
  let aspace = proc.Os.Proc.aspace in
  let table = Os.Address_space.page_table aspace in
  ignore prot;
  (match region.strategy with
  | Shared_subtree ->
    (* Use the geometry recorded at map time: the file's master may have
       been rebuilt since (e.g. by grow) with a different window count. *)
    let levels = Hw.Page_table.levels table in
    let depth = if region.graft_window_bytes = Sim.Units.huge_1g then levels - 2 else levels - 1 in
    for w = 0 to region.graft_windows - 1 do
      Hw.Page_table.unshare table ~va:(region.va + (w * region.graft_window_bytes)) ~depth
    done;
    Sim.Stats.add (Os.Kernel.stats t.kernel) "fom_ungrafts" region.graft_windows
  | Per_page | Huge_pages ->
    ignore (Hw.Page_table.unmap_range table ~va:region.va ~len:region.len)
  | Range_translation -> (
    match Os.Address_space.range_table aspace with
    | None -> assert false
    | Some rt ->
      (* Remove every entry whose base falls inside the region, shooting
         down its range-TLB entry as we go (the paper's unmap: one table
         update plus one shootdown per extent). *)
      let bases = ref [] in
      Hw.Range_table.iter rt (fun e ->
          if e.Hw.Range_table.base >= region.va && e.Hw.Range_table.base < region.va + region.len
          then bases := e.Hw.Range_table.base :: !bases);
      let mmu = Os.Address_space.mmu aspace in
      List.iter
        (fun base ->
          (* Through the MMU, not the raw range TLB: the shootdown must
             carry this address space's ASID and IPI every other core
             that may cache the entry. *)
          Hw.Mmu.invalidate_base mmu ~base;
          ignore (Hw.Range_table.remove rt ~base))
        !bases));
  (* Ungraft feeds the caller's shootdown batch when one is in flight
     (process exit); otherwise invalidate immediately as before. *)
  match batch with
  | Some b -> Hw.Tlb_batch.add b ~va:region.va ~len:region.len
  | None -> Hw.Mmu.invalidate_range (Os.Address_space.mmu aspace) ~va:region.va ~len:region.len

let unmap ?batch t (proc : Os.Proc.t) region =
  pspan t "fom_unmap" @@ fun () ->
  let start = now t in
  charge_syscall t;
  (match Hashtbl.find_opt t.regions (proc.Os.Proc.pid, region.va) with
  | None -> invalid_arg "Fom.unmap: unknown region"
  | Some _ -> ());
  ignore (Fs.Memfs.inode t.fs region.ino);
  remove_mapping ?batch t proc region;
  Hashtbl.remove t.regions (proc.Os.Proc.pid, region.va);
  Fs.Memfs.close_file t.fs region.ino;
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "fom_unmap";
  Sim.Trace.record (trace t) ~op:"fom_unmap" ~start ~arg:region.len ()

let free ?batch t proc region =
  (* Capture before unmap: close_file may reap an already-unlinked file. *)
  let was_temp = region.temp && Fs.Memfs.lookup t.fs region.path = Some region.ino in
  unmap ?batch t proc region;
  if was_temp then begin
    Shared_pt.drop_masters_for t.shared_pt ~ino:region.ino;
    Fs.Memfs.unlink t.fs region.path
  end

let access t (proc : Os.Proc.t) ~va ~write =
  pspan t "access" @@ fun () ->
  let aspace = proc.Os.Proc.aspace in
  match Hw.Mmu.access (Os.Address_space.mmu aspace) ~mem:(Os.Kernel.mem t.kernel) ~va ~write with
  | Ok () -> ()
  | Error _ -> raise (Os.Fault.Segfault va)

let access_range t proc ~va ~len ~write ~stride =
  if stride <= 0 then invalid_arg "Fom.access_range: bad stride";
  let count = ref 0 in
  let cursor = ref va in
  while !cursor < va + len do
    access t proc ~va:!cursor ~write;
    incr count;
    cursor := !cursor + stride
  done;
  !count

let protect t proc region ~prot =
  charge_syscall t;
  let node = Fs.Memfs.inode t.fs region.ino in
  remove_mapping t proc region;
  Fs.Memfs.set_prot t.fs region.ino prot;
  let aspace = proc.Os.Proc.aspace in
  let table = Os.Address_space.page_table aspace in
  (* Remap at the same VA under the new protection. *)
  let new_graft = ref (region.graft_windows, region.graft_window_bytes) in
  (match region.strategy with
  | Shared_subtree ->
    let m = Shared_pt.master_for t.shared_pt ~fs:t.fs ~ino:region.ino ~prot in
    let w = Shared_pt.graft t.shared_pt m ~dst:table ~dst_va:region.va in
    new_graft := (w, Shared_pt.window_bytes m)
  | Per_page | Huge_pages ->
    let huge = region.strategy = Huge_pages in
    Fs.Extent_tree.iter (Fs.Inode.extents node) (fun e ->
        ignore
          (Hw.Page_table.map_range table
             ~va:(region.va + (e.Fs.Extent.logical * Sim.Units.page_size))
             ~pfn:e.Fs.Extent.start
             ~len:(e.Fs.Extent.count * Sim.Units.page_size)
             ~prot ~huge))
  | Range_translation -> (
    match Os.Address_space.range_table aspace with
    | None -> assert false
    | Some rt ->
      Fs.Extent_tree.iter (Fs.Inode.extents node) (fun e ->
          let base = region.va + (e.Fs.Extent.logical * Sim.Units.page_size) in
          let pa = Physmem.Frame.to_addr e.Fs.Extent.start in
          Hw.Range_table.insert rt ~base
            ~limit:(e.Fs.Extent.count * Sim.Units.page_size)
            ~offset:(pa - base) ~prot)));
  let graft_windows, graft_window_bytes = !new_graft in
  let updated = { region with prot; graft_windows; graft_window_bytes } in
  Hashtbl.replace t.regions (proc.Os.Proc.pid, region.va) updated;
  updated

let grow t (proc : Os.Proc.t) region ~new_len =
  pspan t "fom_grow" @@ fun () ->
  let start = now t in
  charge_syscall t;
  if new_len <= region.len then invalid_arg "Fom.grow: new length not larger";
  (* mremap, file-only style: extend the file, then remap it whole at a
     fresh base — which FOM makes cheap (O(windows) or O(extents)), so
     "growing" never needs the in-place contortions of VMA merging. *)
  remove_mapping t proc region;
  Hashtbl.remove t.regions (proc.Os.Proc.pid, region.va);
  Fs.Memfs.extend t.fs region.ino ~bytes_wanted:(new_len - region.len);
  if region.strategy = Shared_subtree then
    (* The master covers only the old pages: rebuild it for the grown
       file. Other processes' grafts keep working (the old nodes live on
       under their page tables). *)
    Shared_pt.drop_masters_for t.shared_pt ~ino:region.ino;
  let va, len, graft_windows, graft_window_bytes =
    install_mapping t proc ~ino:region.ino ~prot:region.prot ~strategy:region.strategy
  in
  let updated = { region with va; len; graft_windows; graft_window_bytes } in
  register_region t proc updated;
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "fom_grow";
  Sim.Trace.record (trace t) ~op:"fom_grow" ~start ~arg:new_len ();
  updated

let copy_region t proc region ?name () =
  let src = Fs.Memfs.inode t.fs region.ino in
  let size = src.Fs.Inode.size in
  let dst = alloc t proc ?name ~len:(max size region.len) ~prot:region.prot () in
  (* Stream the contents extent by extent through the file API. *)
  let chunk = Sim.Units.mib 1 in
  let rec copy off =
    if off < size then begin
      let n = min chunk (size - off) in
      let data = Fs.Memfs.read_file t.fs region.ino ~off ~len:n in
      Fs.Memfs.write_file t.fs dst.ino ~off (Bytes.to_string data);
      copy (off + n)
    end
  in
  copy 0;
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "fom_copy_region";
  dst

let persist t region = Fs.Memfs.set_persistence t.fs region.ino Fs.Inode.Persistent
let make_volatile t region = Fs.Memfs.set_persistence t.fs region.ino Fs.Inode.Volatile
let make_discardable t region = Fs.Memfs.set_discardable t.fs region.ino true

let region_of t (proc : Os.Proc.t) ~va =
  let found = ref None in
  Hashtbl.iter
    (fun (pid, _) r ->
      if pid = proc.Os.Proc.pid && va >= r.va && va < r.va + r.len then found := Some r)
    t.regions;
  !found

let regions_of t (proc : Os.Proc.t) =
  Hashtbl.fold
    (fun (pid, _) r acc -> if pid = proc.Os.Proc.pid then r :: acc else acc)
    t.regions []
  |> List.sort (fun a b -> compare a.va b.va)

let smaps t (proc : Os.Proc.t) =
  let buf = Buffer.create 256 in
  let total = ref 0 in
  List.iter
    (fun r ->
      total := !total + r.len;
      Buffer.add_string buf
        (Format.asprintf "%012x-%012x %a %-17s %s\n" r.va (r.va + r.len) Hw.Prot.pp r.prot
           (strategy_name r.strategy) r.path))
    (regions_of t proc);
  Buffer.add_string buf
    (Printf.sprintf "total %s in %d regions; own PT %s; shared masters %s (%d)\n"
       (Sim.Units.bytes_to_string !total)
       (List.length (regions_of t proc))
       (Sim.Units.bytes_to_string
          (Hw.Page_table.metadata_bytes (Os.Address_space.page_table proc.Os.Proc.aspace)))
       (Sim.Units.bytes_to_string (Shared_pt.metadata_bytes t.shared_pt))
       (Shared_pt.master_count t.shared_pt));
  Buffer.contents buf

let code_path = "/fom-code-segment"

let launch t ~code_bytes ~heap_bytes ~stack_bytes =
  let use_rt = t.default_strategy = Range_translation in
  let proc = Os.Kernel.create_process t.kernel ~range_translations:use_rt () in
  let code =
    match Fs.Memfs.lookup t.fs code_path with
    | Some _ -> map_path t proc ~prot:Hw.Prot.rx code_path
    | None ->
      let r =
        alloc t proc ~name:code_path ~persistence:Fs.Inode.Persistent ~len:code_bytes
          ~prot:Hw.Prot.rx ()
      in
      r
  in
  let heap = alloc t proc ~len:heap_bytes ~prot:Hw.Prot.rw () in
  let stack = alloc t proc ~len:stack_bytes ~prot:Hw.Prot.rw () in
  (proc, [ code; heap; stack ])

let exit_process t proc =
  (* Gather every region's shootdown into one batch: exit pays one flush
     no matter how many files the process had mapped. *)
  let batch = Hw.Tlb_batch.create (Os.Address_space.mmu proc.Os.Proc.aspace) in
  List.iter (fun r -> free ~batch t proc r) (regions_of t proc);
  Hw.Tlb_batch.flush batch;
  Os.Kernel.exit_process t.kernel proc

let reset_after_crash t =
  Hashtbl.reset t.regions
