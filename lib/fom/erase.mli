(** Memory-erasure strategies (paper §4.1).

    Reused memory must be zeroed for security. Zeroing is the last
    inherently linear operation in file-only memory, so the paper calls
    for "new techniques to efficiently erase memory in constant time".
    Three strategies are modelled for experiment E9:

    - [Eager]: synchronous memset at free/alloc time — linear, on the
      critical path (the baseline).
    - [Background]: frames enter a dirty queue and are zeroed off the
      critical path; allocation takes pre-zeroed frames in O(1). The
      linear work still happens, but latency-critical operations don't
      wait for it.
    - [Bulk_device]: a constant-time device-level erase per extent
      (e.g. dropping a media encryption key). *)

type strategy = Eager | Background | Bulk_device

type t

val create : mem:Physmem.Phys_mem.t -> strategy:strategy -> t

val engine : t -> Physmem.Zero_engine.t

val erase_extent : t -> first:Physmem.Frame.t -> count:int -> unit
(** Erase a physical extent under the configured strategy. [Eager]
    charges the full linear cost now; [Background] enqueues (charge one
    constant enqueue cost now); [Bulk_device] issues one erase command. *)

val drain_background : t -> budget_frames:int -> int
(** Let the background zeroer run (charges the real zeroing cost, off
    any measured critical path). Returns frames zeroed. *)

val critical_path_cycles : t -> (unit -> unit) -> int
(** Run a thunk and return the cycles it charged — convenience for
    benchmarking the on-critical-path cost of each strategy. *)
