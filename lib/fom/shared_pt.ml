type master = {
  table : Hw.Page_table.t;
  ino : int;
  prot : Hw.Prot.t;
  windows : int;
  window_bytes : int;  (* 2 MiB, or 1 GiB for GiB-scale files *)
}

type t = { kernel : Os.Kernel.t; masters : (int * Hw.Prot.t, master) Hashtbl.t }

(* Every master maps its file at the same fixed, 1 GiB-aligned VA, so
   window w of any file always begins at a 2 MiB boundary with offset 0. *)
let master_base = 0x4000_0000_0000


let create kernel = { kernel; masters = Hashtbl.create 16 }

let alloc_pt_frame t () =
  match Alloc.Buddy.alloc (Os.Kernel.buddy t.kernel) ~order:0 with
  | Some pfn -> pfn
  | None -> Sim.Errno.fail Sim.Errno.ENOMEM "master page-table frame"

let build_master t ~fs ~ino ~prot =
  let clock = Os.Kernel.clock t.kernel in
  let stats = Os.Kernel.stats t.kernel in
  let levels = (Os.Kernel.config t.kernel).Os.Kernel.levels in
  let table =
    Hw.Page_table.create ~clock ~stats ~levels ~alloc_frame:(alloc_pt_frame t)
  in
  let node = Fs.Memfs.inode fs ino in
  (* 4 KiB leaves throughout: grafting shares the leaf-holding nodes, so
     the master must not collapse windows into huge-page leaves. *)
  Fs.Extent_tree.iter (Fs.Inode.extents node) (fun e ->
      ignore
        (Hw.Page_table.map_range table
           ~va:(master_base + (e.Fs.Extent.logical * Sim.Units.page_size))
           ~pfn:e.Fs.Extent.start
           ~len:(e.Fs.Extent.count * Sim.Units.page_size)
           ~prot ~huge:false));
  let file_bytes = Fs.Extent_tree.pages (Fs.Inode.extents node) * Sim.Units.page_size in
  (* GiB-scale files graft whole GiB subtrees: even fewer pointers. *)
  let window_bytes =
    if file_bytes >= Sim.Units.huge_1g then Sim.Units.huge_1g else Sim.Units.huge_2m
  in
  let windows = (file_bytes + window_bytes - 1) / window_bytes in
  Sim.Stats.incr stats "fom_master_built";
  { table; ino; prot; windows; window_bytes }

let master_for t ~fs ~ino ~prot =
  match Hashtbl.find_opt t.masters (ino, prot) with
  | Some m -> m
  | None ->
    let m = build_master t ~fs ~ino ~prot in
    Hashtbl.replace t.masters (ino, prot) m;
    m

let graft_depth m =
  let levels = Hw.Page_table.levels m.table in
  if m.window_bytes = Sim.Units.huge_1g then levels - 2 else levels - 1

let graft t m ~dst ~dst_va =
  if not (Sim.Units.is_aligned dst_va ~align:m.window_bytes) then
    invalid_arg "Shared_pt.graft: destination not aligned to the graft window";
  let depth = graft_depth m in
  for w = 0 to m.windows - 1 do
    Hw.Page_table.share_subtree ~src:m.table
      ~src_va:(master_base + (w * m.window_bytes))
      ~dst
      ~dst_va:(dst_va + (w * m.window_bytes))
      ~depth
  done;
  Sim.Stats.add (Os.Kernel.stats t.kernel) "fom_grafts" m.windows;
  m.windows

let ungraft t m ~dst ~dst_va =
  let depth = graft_depth m in
  for w = 0 to m.windows - 1 do
    Hw.Page_table.unshare dst ~va:(dst_va + (w * m.window_bytes)) ~depth
  done;
  Sim.Stats.add (Os.Kernel.stats t.kernel) "fom_ungrafts" m.windows;
  m.windows

let windows m = m.windows
let window_bytes m = m.window_bytes

let drop_masters_for t ~ino =
  let doomed =
    Hashtbl.fold (fun (i, p) _ acc -> if i = ino then (i, p) :: acc else acc) t.masters []
  in
  List.iter (Hashtbl.remove t.masters) doomed

let master_count t = Hashtbl.length t.masters

let metadata_bytes t =
  Hashtbl.fold (fun _ m acc -> acc + Hw.Page_table.metadata_bytes m.table) t.masters 0

let prune_dead t ~fs =
  let doomed =
    Hashtbl.fold
      (fun key m acc ->
        match Fs.Memfs.inode fs m.ino with
        | (_ : Fs.Inode.t) -> acc
        | exception Not_found -> key :: acc)
      t.masters []
  in
  List.iter (Hashtbl.remove t.masters) doomed;
  List.length doomed
