(** Crash-at-every-step exploration and named fault plans.

    Two explorers drive the "does it survive?" question exhaustively:
    each first runs its workload to completion with the ["durable_step"]
    site unarmed — the evaluation count enumerates every clwb/sfence
    boundary — then replays the workload once per boundary with
    [On_nth k] armed, loses power at exactly that point, recovers, and
    checks invariants. Determinism (same seed, same workload) makes the
    k-th replay identical to the baseline up to the crash.

    {!run_plan} is the sustained-pressure side: probabilistic injection
    across a named set of sites while a mixed VM + FOM workload runs,
    counting typed degradations (ENOMEM / ENOSPC), reclaim retries and
    OOMs, with a final {!Os.Check} verdict. *)

type explorer_report = {
  steps : int;  (** durable-step boundaries the workload crosses *)
  fences : int;  (** sfence count of the baseline pass *)
  crashes : int;  (** replays performed — one crash per boundary *)
  violations : string list;  (** empty = every recovery was consistent *)
}

val explore_wal : ?records:int -> ?seed:int -> unit -> explorer_report
(** Append [records] (default 6) deterministic records to a bare WAL on
    a standalone NVM machine, crashing after every durable step.
    Invariants per crash: acknowledged appends survive recovery
    (committed-prefix durability; recovery may keep one extra record
    whose post-marker fence was the crash point — durable but
    unacknowledged), the recovered log is a byte-exact prefix of the
    attempted log (no torn record), and it accepts further appends. *)

val explore_fs : ?files:int -> ?seed:int -> unit -> explorer_report
(** Allocate [files] (default 5) FOM regions — alternating persistent
    named files and volatile temporaries — on a full kernel + FOM
    machine, crashing inside every journaled durable step. Invariants
    per crash: persistent files whose write completed survive with
    their data intact, volatile files are gone, masters are pruned iff
    their file died (kept + dropped = pre-crash count, second prune
    finds nothing), the cross-layer {!Os.Check} passes, and the
    recovered machine still allocates. *)

(** {1 Named fault plans} *)

type plan_outcome = {
  plan : string;
  seed : int;
  sites : (string * int * int) list;
      (** (site, evaluations, injected) for every consulted site *)
  injected_total : int;
  enomem : int;  (** operations that degraded to a typed ENOMEM *)
  enospc : int;  (** operations that degraded to a typed ENOSPC *)
  retried : int;  (** allocations saved by the reclaim-then-retry pass *)
  reclaimed_frames : int;
  ooms : int;  (** allocations that still failed after reclaim *)
  checks : Os.Check.violation list;
}

val plans : string list
(** ["alloc"] (frame-allocation failures + forced zero-cache misses),
    ["nvm"] (torn lines, bit flips, partial WAL flushes), ["quota"]
    (refused quota charges), ["tlb"] (lost shootdown acks), ["all"]. *)

val plan_expects_violations : string -> bool
(** The tlb-bearing plans deliberately break TLB coherence; the
    invariant checker {e finding} those stale entries is their pass
    condition. *)

val run_plan : ?seed:int -> ?rounds:int -> plan:string -> unit -> plan_outcome
(** Run the named plan over [rounds] (default 16) iterations of a mixed
    anonymous-VM + FOM workload. Operations may only fail with typed
    {!Sim.Errno.Error}s — anything else escaping is a bug and
    propagates. Raises [Invalid_argument] on an unknown plan name. *)
