type t = {
  fom : Fom.t;
  proc : Os.Proc.t;
  ino : int;
  base : int;
  len : int;
  window : int;
  resident : int Queue.t; (* page indices, oldest first *)
  mutable faults : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let page = Sim.Units.page_size

let kernel t = Fom.kernel t.fom
let fs t = Fom.fs t.fom

let evict_one t =
  match Queue.take_opt t.resident with
  | None -> ()
  | Some idx ->
    let va = t.base + (idx * page) in
    let table = Os.Address_space.page_table t.proc.Os.Proc.aspace in
    (match Hw.Page_table.lookup table ~va with
    | Some (pa, leaf) when leaf.Hw.Page_table.dirty ->
      (* Write the page back to the backing file before dropping it. *)
      let content = Physmem.Phys_mem.read (Os.Kernel.mem (kernel t)) ~addr:pa ~len:page in
      Fs.Memfs.write_file (fs t) t.ino ~off:(idx * page) (Bytes.to_string content);
      t.writebacks <- t.writebacks + 1
    | _ -> ());
    ignore (Os.Kernel.user_page_release (kernel t) t.proc ~va);
    t.evictions <- t.evictions + 1

let create fom proc ~backing_path ~window_pages =
  if window_pages <= 0 then invalid_arg "Uswap.create: empty window";
  let fs = Fom.fs fom in
  let ino =
    match Fs.Memfs.lookup fs backing_path with
    | Some ino -> ino
    | None -> invalid_arg ("Uswap.create: no such backing file: " ^ backing_path)
  in
  let node = Fs.Memfs.inode fs ino in
  let len = Sim.Units.round_up node.Fs.Inode.size ~align:page in
  if len = 0 then invalid_arg "Uswap.create: empty backing file";
  Fs.Memfs.open_file fs ino;
  let base = Os.Address_space.alloc_va proc.Os.Proc.aspace ~len ~align:page in
  let t =
    {
      fom;
      proc;
      ino;
      base;
      len;
      window = window_pages;
      resident = Queue.create ();
      faults = 0;
      evictions = 0;
      writebacks = 0;
    }
  in
  let handler ~va ~write =
    ignore write;
    let idx = (va - base) / page in
    if Queue.length t.resident >= t.window then evict_one t;
    t.faults <- t.faults + 1;
    Queue.add idx t.resident;
    let content = Fs.Memfs.read_file (Fom.fs fom) ino ~off:(idx * page) ~len:page in
    Os.Userfault.Provide (Bytes.to_string content)
  in
  Os.Userfault.register (Os.Kernel.userfault (Fom.kernel fom)) ~pid:proc.Os.Proc.pid ~va:base
    ~len ~prot:Hw.Prot.rw handler;
  t

let va t = t.base
let length t = t.len

let read_byte t ~off =
  if off < 0 || off >= t.len then invalid_arg "Uswap.read_byte: out of range";
  let va = t.base + off in
  Os.Kernel.access (kernel t) t.proc ~va ~write:false;
  (* The access is now resident: read the byte through the translation. *)
  let table = Os.Address_space.page_table t.proc.Os.Proc.aspace in
  match Hw.Page_table.lookup table ~va with
  | Some (pa, _) -> Physmem.Phys_mem.read_byte (Os.Kernel.mem (kernel t)) pa
  | None -> assert false

let write_byte t ~off c =
  if off < 0 || off >= t.len then invalid_arg "Uswap.write_byte: out of range";
  let va = t.base + off in
  Os.Kernel.access (kernel t) t.proc ~va ~write:true;
  let table = Os.Address_space.page_table t.proc.Os.Proc.aspace in
  match Hw.Page_table.lookup table ~va with
  | Some (pa, _) -> Physmem.Phys_mem.write_byte (Os.Kernel.mem (kernel t)) pa c
  | None -> assert false

let resident_pages t = Queue.length t.resident
let faults t = t.faults
let evictions t = t.evictions
let writebacks t = t.writebacks

let destroy t =
  while not (Queue.is_empty t.resident) do
    evict_one t
  done;
  Os.Userfault.unregister (Os.Kernel.userfault (kernel t)) ~pid:t.proc.Os.Proc.pid ~va:t.base;
  Fs.Memfs.close_file (fs t) t.ino
