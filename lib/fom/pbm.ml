type t = {
  kernel : Os.Kernel.t;
  table : Hw.Page_table.t; (* the global PBM table *)
  mutable regions : (Physmem.Frame.t * int) list;
  attached : (int, unit) Hashtbl.t; (* pids *)
}

(* 0x4000_0000_0000 = 2^46: 512 GiB-aligned, inside the 48-bit canonical
   space, clear of Proc layouts and the Shared_pt master base window's
   root entry would be distinct too (masters are never attached; only
   grafted window-by-window). *)
let pbm_offset = 0x4000_0000_0000 + (1 lsl 39)

let va_of_addr pa = pa + pbm_offset
let addr_of_va va = va - pbm_offset

let alloc_pt_frame kernel () =
  match Alloc.Buddy.alloc (Os.Kernel.buddy kernel) ~order:0 with
  | Some pfn -> pfn
  | None -> Sim.Errno.fail Sim.Errno.ENOMEM "PBM page-table frame"

let create kernel =
  let clock = Os.Kernel.clock kernel in
  let stats = Os.Kernel.stats kernel in
  let levels = (Os.Kernel.config kernel).Os.Kernel.levels in
  let table = Hw.Page_table.create ~clock ~stats ~levels ~alloc_frame:(alloc_pt_frame kernel) in
  (* Pre-create the window's depth-1 node so processes can attach before
     any region is mapped, and so it is never pruned away under them. *)
  Hw.Page_table.ensure_node table ~va:pbm_offset ~depth:1;
  { kernel; table; regions = []; attached = Hashtbl.create 8 }

let map_region t ~first ~count ~prot =
  if count <= 0 then invalid_arg "Pbm.map_region: empty region";
  let pa = Physmem.Frame.to_addr first in
  let va = va_of_addr pa in
  Hw.Page_table.ensure_node t.table ~va:pbm_offset ~depth:1;
  ignore
    (Hw.Page_table.map_range t.table ~va ~pfn:first ~len:(count * Sim.Units.page_size) ~prot
       ~huge:true);
  t.regions <- (first, count) :: t.regions;
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "pbm_map_region";
  va

let unmap_region t ~first ~count =
  if not (List.mem (first, count) t.regions) then invalid_arg "Pbm.unmap_region: unknown region";
  let va = va_of_addr (Physmem.Frame.to_addr first) in
  ignore (Hw.Page_table.unmap_range t.table ~va ~len:(count * Sim.Units.page_size));
  t.regions <- List.filter (fun r -> r <> (first, count)) t.regions

(* The PBM window is the root-entry span containing pbm_offset. *)
let window_base t =
  Sim.Units.round_down pbm_offset ~align:(Hw.Page_table.entry_span t.table ~depth:0)

let attach t (proc : Os.Proc.t) =
  if Hashtbl.mem t.attached proc.Os.Proc.pid then invalid_arg "Pbm.attach: already attached";
  let dst = Os.Address_space.page_table proc.Os.Proc.aspace in
  Hw.Page_table.ensure_node t.table ~va:pbm_offset ~depth:1;
  Hw.Page_table.share_subtree ~src:t.table ~src_va:(window_base t) ~dst
    ~dst_va:(window_base t) ~depth:1;
  Hashtbl.replace t.attached proc.Os.Proc.pid ();
  Sim.Stats.incr (Os.Kernel.stats t.kernel) "pbm_attach"

let detach t (proc : Os.Proc.t) =
  if not (Hashtbl.mem t.attached proc.Os.Proc.pid) then invalid_arg "Pbm.detach: not attached";
  let dst = Os.Address_space.page_table proc.Os.Proc.aspace in
  Hw.Page_table.unshare dst ~va:(window_base t) ~depth:1;
  Hashtbl.remove t.attached proc.Os.Proc.pid

let attached t (proc : Os.Proc.t) = Hashtbl.mem t.attached proc.Os.Proc.pid
let region_count t = List.length t.regions
let metadata_bytes t = Hw.Page_table.metadata_bytes t.table
