type t = { fs : Fs.Memfs.t; mutable paths : string list }

let create ~fs = { fs; paths = [] }

let register_cache_file t ~path ~size =
  let ino = Fs.Memfs.create_file t.fs path ~persistence:Fs.Inode.Volatile in
  Fs.Memfs.extend t.fs ino ~bytes_wanted:size;
  Fs.Memfs.set_discardable t.fs ino true;
  t.paths <- path :: t.paths

let touch t ~path =
  match Fs.Memfs.lookup t.fs path with
  | Some ino -> Fs.Memfs.open_file t.fs ino; Fs.Memfs.close_file t.fs ino
  | None -> ()

let still_present t ~path = Fs.Memfs.lookup t.fs path <> None

let pressure t ~needed_bytes =
  let freed = Fs.Memfs.reclaim_discardable t.fs ~target_bytes:needed_bytes in
  t.paths <- List.filter (fun p -> still_present t ~path:p) t.paths;
  freed

let registered t = List.length t.paths
