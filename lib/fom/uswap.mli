(** User-level swapping over file-only memory.

    The kernel under file-only memory never swaps (§4.1); an application
    whose working set exceeds the memory it wants resident implements
    paging itself (§3.1, "userfaultd"). [Uswap] keeps a bounded window of
    a large backing file resident: faults outside the window are
    delivered by {!Os.Userfault}; the pager reads the page from the
    backing file, evicting the least-recently-installed page (writing it
    back if dirty) when the window is full.

    This is exactly the machinery the paper wants *out* of the kernel:
    here it costs only the applications that opt in. *)

type t

val create :
  Fom.t -> Os.Proc.t -> backing_path:string -> window_pages:int -> t
(** Manage the file at [backing_path] (in the FOM file system; must
    exist and be non-empty). Reserves a virtual range the size of the
    file and registers the fault handler. At most [window_pages] pages
    are resident at once. *)

val va : t -> int
(** Base of the managed virtual range. *)

val length : t -> int
(** Bytes covered (the backing file's size, page-rounded). *)

val read_byte : t -> off:int -> char
(** Read through the managed window, faulting/paging as needed. *)

val write_byte : t -> off:int -> char -> unit
(** Write through the managed window; the page is written back to the
    backing file when evicted. *)

val resident_pages : t -> int
val faults : t -> int
(** Pages the handler supplied so far. *)

val evictions : t -> int
val writebacks : t -> int

val destroy : t -> unit
(** Evict everything (writing dirty pages back) and unregister. *)
