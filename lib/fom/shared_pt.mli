(** Pre-created, shared page tables for file mappings (paper Figure 3).

    For every (file, protection) pair a {e master} page-table subtree is
    built once, mapping the file's extents starting at a fixed
    2 MiB-aligned base. Mapping the file into a process then reduces to
    grafting one pointer per 2 MiB window — and unmapping to removing
    those pointers — instead of writing one PTE per page. Masters for
    persistent files can be kept across (simulated) crashes, so even a
    first-time map after reboot reuses an existing table. *)

type t

val create : Os.Kernel.t -> t

type master

val master_for : t -> fs:Fs.Memfs.t -> ino:int -> prot:Hw.Prot.t -> master
(** Build (or fetch from the registry) the master subtree for a file at
    this protection. Building walks the file's extents once — the cost is
    paid a single time, not per process. *)

val graft : t -> master -> dst:Hw.Page_table.t -> dst_va:int -> int
(** Map the whole file into [dst] at [dst_va] (aligned to
    {!window_bytes}) by grafting the master's subtree windows: one
    pointer write per window. Returns the number of grafts. *)

val ungraft : t -> master -> dst:Hw.Page_table.t -> dst_va:int -> int
(** Remove the grafted pointers; O(windows), not O(pages). *)

val windows : master -> int
(** Number of graft windows the file occupies. *)

val window_bytes : master -> int
(** Graft granularity: 2 MiB, or 1 GiB for files of a GiB or more (one
    pointer then maps a full GiB). *)

val master_base : int
(** The fixed VA at which every master maps its file. *)

val drop_masters_for : t -> ino:int -> unit
(** Forget all masters of a file (on unlink). *)

val master_count : t -> int
val metadata_bytes : t -> int
(** Page-table bytes held by all masters: the shared tables each process
    would otherwise replicate. *)

val prune_dead : t -> fs:Fs.Memfs.t -> int
(** Drop masters whose backing file no longer exists (post-crash /
    post-unlink sweep); returns masters dropped. *)
