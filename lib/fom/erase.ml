type strategy = Eager | Background | Bulk_device

type t = { mem : Physmem.Phys_mem.t; strategy : strategy; zero : Physmem.Zero_engine.t }

let enqueue_cycles = 60

let create ~mem ~strategy = { mem; strategy; zero = Physmem.Zero_engine.create mem }

let engine t = t.zero

let erase_extent t ~first ~count =
  let start = Sim.Clock.now (Physmem.Phys_mem.clock t.mem) in
  (match t.strategy with
  | Eager ->
    for pfn = first to first + count - 1 do
      Physmem.Zero_engine.eager_zero t.zero pfn
    done
  | Background ->
    Physmem.Zero_engine.put_dirty t.zero (List.init count (fun i -> first + i));
    Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) enqueue_cycles
  | Bulk_device -> Physmem.Zero_engine.bulk_erase t.zero ~first ~count);
  Sim.Trace.record (Physmem.Phys_mem.trace t.mem) ~op:"erase_extent" ~start ~arg:count ()

let drain_background t ~budget_frames =
  Physmem.Zero_engine.background_step t.zero ~budget_frames

let critical_path_cycles t f =
  let clock = Physmem.Phys_mem.clock t.mem in
  let before = Sim.Clock.now clock in
  f ();
  Sim.Clock.elapsed clock ~since:before
