type report = {
  files_scanned : int;
  masters_kept : int;
  masters_dropped : int;
  recovery_cycles : int;
  hook_records : (string * int) list;
}

let crash fom =
  let kernel = Fom.kernel fom in
  (* Component crash hooks first, while their handles still make sense:
     e.g. the store reverts unflushed lines of its private WAL handle. *)
  Fom.run_crash_hooks fom;
  (* Processes die with the machine: no orderly teardown, no unmap cost. *)
  Physmem.Phys_mem.crash (Os.Kernel.mem kernel);
  Fs.Memfs.crash (Os.Kernel.tmpfs kernel);
  (match Os.Kernel.pmfs kernel with Some p -> Fs.Memfs.crash p | None -> ());
  Os.Kernel.reset_after_crash kernel;
  Fom.reset_after_crash fom;
  Sim.Stats.incr (Os.Kernel.stats kernel) "machine_crash"

let recover fom =
  let kernel = Fom.kernel fom in
  let clock = Os.Kernel.clock kernel in
  let before = Sim.Clock.now clock in
  let files_scanned =
    match Os.Kernel.pmfs kernel with Some p -> Fs.Memfs.recover p | None -> 0
  in
  let dropped = Shared_pt.prune_dead (Fom.shared_pt fom) ~fs:(Fom.fs fom) in
  let kept = Shared_pt.master_count (Fom.shared_pt fom) in
  (* Re-baseline the journal gauge: recovery replayed/kept the WAL, and
     the gauge must reflect the post-recovery log, not the pre-crash one. *)
  (match Os.Kernel.pmfs kernel with
  | Some p -> Sim.Stats.set_gauge (Os.Kernel.stats kernel) "wal_bytes" (Fs.Memfs.journal_bytes p)
  | None -> ());
  (* Component recovery hooks last: the file system is consistent, so the
     store (and anything else registered) can replay its own WAL and
     rebuild its index — before any process maps the recovered data. *)
  let hook_records = Fom.run_recovery_hooks fom in
  {
    files_scanned;
    masters_kept = kept;
    masters_dropped = dropped;
    recovery_cycles = Sim.Clock.elapsed clock ~since:before;
    hook_records;
  }

let crash_and_recover fom =
  crash fom;
  recover fom
