(** Simple log-bucketed histogram for latency and size distributions. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample. Raises [Invalid_argument] on a negative sample. *)

val count : t -> int
(** Number of samples recorded. *)

val total : t -> int
(** Sum of samples. *)

val mean : t -> float
(** Arithmetic mean; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when empty. *)

val min_value : t -> int
(** Smallest sample; 0 when empty. *)

val max_value : t -> int
(** Largest sample; 0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0, 100]: an upper bound on the value at
    that rank, exact to the bucket boundary (buckets are powers of two),
    clamped to [[min_value t, max_value t]] so it never exceeds any
    observed sample. Monotone in [p]. *)

val to_json : t -> Json.t
(** Summary object: count/total/mean/stddev/min/max/p50/p90/p99. *)

val pp : Format.formatter -> t -> unit
