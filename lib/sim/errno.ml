type t = ENOMEM | ENOSPC | EIO | EAGAIN

let to_string = function
  | ENOMEM -> "ENOMEM"
  | ENOSPC -> "ENOSPC"
  | EIO -> "EIO"
  | EAGAIN -> "EAGAIN"

exception Error of t * string

let fail errno what = raise (Error (errno, what))

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error (e, what) -> Some (Printf.sprintf "Sim.Errno.Error(%s, %S)" (to_string e) what)
    | _ -> None)
