(** Structured tracing over the virtual clock.

    A [Trace.t] holds a bounded ring buffer of events (operation name, start
    and end cycle, operand size, outcome string) and a per-operation latency
    {!Histogram.t}, so experiments can report p50/p99/max latency per
    operation rather than flat counts.

    Components store a trace field defaulting to {!disabled}, a shared no-op
    sentinel: recording into it does nothing, and {!span} just runs its
    function. Costs charged to the clock never depend on whether tracing is
    enabled. *)

type event = {
  seq : int;  (** monotonic sequence number: emission order, never reused *)
  op : string;  (** operation name, e.g. "tlb_lookup" *)
  core : int;  (** core the event was recorded on *)
  start : int;  (** virtual cycle when the op began *)
  finish : int;  (** virtual cycle when the op ended *)
  arg : int;  (** operand size (bytes, pages, refs...); 0 if n/a *)
  outcome : string;  (** "ok", "hit", "miss", "minor", "raised", ... *)
}

type t

val create : clock:Clock.t -> ?capacity:int -> unit -> t
(** A live trace reading timestamps from [clock]. [capacity] (default 4096)
    bounds the event ring; older events are dropped, histograms keep every
    sample. Raises [Invalid_argument] if [capacity <= 0]. *)

val disabled : t
(** Shared no-op sentinel: never records, safe to use from any component. *)

val profile : t -> Profile.t
(** The cycle-attribution profiler attached to this trace —
    {!Profile.disabled} until {!attach_profile}. Components wrap their
    hot paths in [Profile.span (Trace.profile trace) name f]; with no
    profiler attached that is a no-op. *)

val attach_profile : t -> Profile.t -> unit
(** Attach a profiler so every component sharing this trace starts
    attributing spans. Raises [Invalid_argument] on {!disabled} (the
    sentinel is shared machine-wide). *)

val hostprof : t -> Hostprof.t
(** The host-side cost-attribution plane attached to this trace —
    {!Hostprof.disabled} until {!attach_hostprof}. *)

val attach_hostprof : t -> Hostprof.t -> unit
(** Attach a host profiler so every {!prof_span} additionally records
    host-nanosecond and GC allocated-words deltas into the same
    call-tree paths. Never touches the virtual clock. Raises
    [Invalid_argument] on {!disabled}. *)

val prof_span : t -> string -> (unit -> 'a) -> 'a
(** [prof_span t name f] runs [f] under both attribution planes: a
    {!Profile.span} charging nothing virtual, nested inside a
    {!Hostprof.span} measuring host ns and allocated words. Every
    instrumented hot path uses this single combinator so the two call
    trees share their paths. With neither plane attached it just runs
    [f]. *)

val faults : t -> Fault_inject.t
(** The fault-injection plane attached to this trace —
    {!Fault_inject.disabled} until {!attach_faults}. Components consult
    it at named sites with [Fault_inject.fires (Trace.faults trace)
    ~site]; with no plane attached that is a single always-false branch. *)

val attach_faults : t -> Fault_inject.t -> unit
(** Attach a fault plane so every component sharing this trace starts
    consulting it, and wire its reporter to record a ["fault_inject"]
    trace event (outcome = site name) on each injection. Raises
    [Invalid_argument] on {!disabled}. *)

val causal : t -> Causal.t
(** The cross-core causal plane attached to this trace —
    {!Causal.disabled} until {!attach_causal}. Components emit graph
    nodes/edges and cycle shares through it; with no plane attached
    every call is a cheap no-op. *)

val attach_causal : t -> Causal.t -> unit
(** Attach a causal plane so every component sharing this trace starts
    emitting cross-core edges. Raises [Invalid_argument] on
    {!disabled}. *)

val current_core : t -> int
(** The core currently stamped onto recorded events (default 0). *)

val set_core : t -> int -> unit
(** Set the core stamped onto subsequent events. The kernel brackets
    each syscall with this; components below it inherit the stamp.
    No-op on {!disabled} (the sentinel is shared). *)

val enabled : t -> bool
val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded, including ones the ring has since dropped. *)

val dropped : t -> int
(** Events evicted from the ring by wraparound. *)

val record :
  t -> op:string -> start:int -> ?arg:int -> ?outcome:string -> ?core:int -> unit -> unit
(** Record one event ending now; latency [now - start] feeds the per-op
    histogram. [core] overrides the {!current_core} stamp (components
    acting on a remote core's behalf pass it explicitly). No-op on
    {!disabled}. *)

val span : t -> op:string -> ?arg:int -> ?outcome:('a -> string) -> (unit -> 'a) -> 'a
(** [span t ~op f] runs [f], charging the clock with whatever [f] itself
    charges, and records one event covering it. [outcome] maps the result to
    an outcome string (default "ok"); an exception records outcome "raised"
    and re-raises. On {!disabled} it just runs [f]. *)

val events : t -> event list
(** Retained events, oldest first. *)

val latency : t -> string -> Histogram.t option
(** Latency histogram for one operation, if it ever recorded. *)

val ops : t -> (string * Histogram.t) list
(** All per-operation histograms, sorted by operation name. *)

val reset : t -> unit

val to_json : ?events_limit:int -> t -> Json.t
(** Export: capacity/recorded/dropped, per-op histogram summaries, and the
    retained events (newest [events_limit] of them, default all retained).
    Each op summary carries a [recorded] count (events ever recorded for
    that op) and an [in_ring] count (events still retained by the ring),
    so per-op dropped-event skew is visible: [recorded - in_ring] events
    of that op were evicted by wraparound. *)

val chrome_events : t -> Json.t list
(** Retained events as Chrome trace-event "X" slices, one track per
    core, sorted by (start cycle, sequence number) so equal-cycle events
    export in a deterministic order. *)

val pp : Format.formatter -> t -> unit
