(** Seeded, deterministic fault injection.

    A plane is a set of named injection sites, each armed with a firing
    mode. Components consult the plane on their hot paths with {!fires};
    the shared {!disabled} sentinel answers in one branch with no
    allocation and no clock charge, so sites cost nothing when injection
    is off. An enabled plane is fully deterministic: same seed, same
    arming, same workload — same faults.

    Sites reach components the same way the profiler does (PR 4): the
    plane rides on {!Trace.t} via [Trace.attach_faults], so every layer
    that already holds a trace handle can be attacked without new
    plumbing. Each injected fault bumps the "fault_inject" counter (plus
    a per-site counter) in the attached {!Stats.t} and is reported as a
    ["fault_inject"] trace op through the reporter hook. *)

type mode =
  | Never  (** armed off: evaluations are counted but never fire *)
  | Always  (** fire on every evaluation *)
  | Prob of float  (** fire with this probability (seeded RNG) *)
  | On_nth of int  (** fire exactly on the n-th evaluation (1-based) *)

type t

exception Injected_crash of string
(** Raised by a component when the ["durable_step"] site fires: the
    machine "loses power" at that durable boundary. The crash explorer
    catches it, crashes the machine properly, and checks recovery. *)

val disabled : t
(** Shared no-op sentinel: {!fires} is always false, in one branch. *)

val create : ?seed:int -> ?stats:Stats.t -> unit -> t
(** A live plane. [seed] (default 1) drives the probabilistic modes;
    [stats] receives "fault_inject" counters on every injection. *)

val enabled : t -> bool
val seed : t -> int

val arm : t -> site:string -> mode -> unit
(** Arm a site. Unarmed sites behave as [Never] (evaluations still
    counted — the crash explorer uses this to enumerate durable steps).
    Raises [Invalid_argument] on {!disabled}, a probability outside
    [0,1], or [On_nth n] with [n < 1]. *)

val disarm : t -> site:string -> unit

val fires : t -> site:string -> bool
(** The hot-path question: should this site inject now? Counts the
    evaluation, decides per the armed mode, and on firing bumps counters
    and calls the reporter. Always false on {!disabled}. *)

val rand_int : t -> int -> int
(** Deterministic auxiliary randomness for a firing site (e.g. which bit
    to flip), drawn from the plane's seeded stream. *)

val set_reporter : t -> (string -> unit) -> unit
(** Called with the site name on every injection; [Trace.attach_faults]
    wires this to a ["fault_inject"] trace event. *)

val evaluations : t -> site:string -> int
(** Times the site was consulted (fired or not). *)

val injected : t -> site:string -> int
(** Times the site actually fired. *)

val totals : t -> (string * int * int) list
(** [(site, evaluations, injected)] for every consulted site, sorted. *)

val injected_total : t -> int

val reset_counts : t -> unit
(** Zero evaluation/injection counts, keeping the arming and RNG state. *)

(** {1 Canonical site names} *)

val site_nvm_torn_line : string
(** [Physmem.Nvm.flush]: one cache line silently not written to media. *)

val site_nvm_bit_flip : string
(** [Physmem.Nvm.flush]: a bit of the durable line image is flipped. *)

val site_wal_partial_flush : string
(** [Memfs.Wal.append]: only a prefix of the record's lines is flushed
    before the fence (models a buggy flush loop). *)

val site_frame_alloc_fail : string
(** Kernel frame allocation: the buddy pretends to be empty. *)

val site_zero_cache_empty : string
(** [Zero_cache.take]: forced miss even when frames are cached. *)

val site_quota_enospc : string
(** [Memfs.extend]: the quota charge is refused. *)

val site_tlb_ack_lost : string
(** [Tlb_batch.flush]: one range's shootdown is dropped, leaving stale
    TLB entries for the invariant checker to find. *)

val site_durable_step : string
(** Every clwb/sfence boundary in [Physmem.Nvm]. Firing raises
    {!Injected_crash}; evaluating without firing counts the boundary. *)

val site_store_commit : string
(** [Store.commit], before the commit record is appended: the store
    aborts the transaction with a typed EIO instead of committing. *)

val site_store_apply : string
(** [Store.commit], while applying a committed transaction's redo
    records in place: the first durable slot write fails once and is
    retried (charged twice). *)

val site_store_alloc : string
(** [Store] slot allocation: the heap pretends to be out of arena
    space, exercising the defragment-and-retry degradation pass. *)

val all_sites : string list

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
