(* Nested-span cycle-attribution profiler over the virtual clock.

   Spans push/pop a per-simulation stack; every cycle charged while a
   stack is active is attributed to the current path, building a call
   tree with per-node call counts, cumulative and self cycles. The
   profiler itself never charges the clock, so attribution overhead is
   zero simulated cycles whether or not it is enabled.

   Like [Trace.disabled], the [disabled] sentinel lets components keep a
   profile reachable without optional plumbing: [span] on it just runs
   its function. *)

type node = { name : string; calls : int; cum : int; self : int; children : node list }

(* Mutable call-tree node; one per distinct path, children keyed by name. *)
type inode = {
  iname : string;
  mutable calls : int;
  mutable cum : int;
  mutable child_cum : int;
  children : (string, inode) Hashtbl.t;
}

type ev = { depth : int; ename : string; start : int; finish : int }

type t = {
  clock : Clock.t option; (* None = disabled sentinel *)
  roots : (string, inode) Hashtbl.t;
  mutable stack : (inode * int) list; (* (node, start cycle), innermost first *)
  mutable started : int; (* cycle when created/reset: cycles before it are out of scope *)
  ring : ev option array;
  mutable ev_recorded : int;
}

let default_events_capacity = 8192

let create ~clock ?(events_capacity = default_events_capacity) () =
  if events_capacity <= 0 then invalid_arg "Profile.create: capacity must be positive";
  {
    clock = Some clock;
    roots = Hashtbl.create 16;
    stack = [];
    started = Clock.now clock;
    ring = Array.make events_capacity None;
    ev_recorded = 0;
  }

let disabled =
  { clock = None; roots = Hashtbl.create 1; stack = []; started = 0; ring = [||]; ev_recorded = 0 }

let enabled t = t.clock <> None
let depth t = List.length t.stack

let reset t =
  (match t.clock with Some c -> t.started <- Clock.now c | None -> ());
  Hashtbl.reset t.roots;
  t.stack <- [];
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ev_recorded <- 0

let child_of t name =
  let tbl = match t.stack with (n, _) :: _ -> n.children | [] -> t.roots in
  match Hashtbl.find_opt tbl name with
  | Some n -> n
  | None ->
    let n = { iname = name; calls = 0; cum = 0; child_cum = 0; children = Hashtbl.create 4 } in
    Hashtbl.add tbl name n;
    n

let record_event t ~depth ~name ~start ~finish =
  let cap = Array.length t.ring in
  if cap > 0 then begin
    t.ring.(t.ev_recorded mod cap) <- Some { depth; ename = name; start; finish };
    t.ev_recorded <- t.ev_recorded + 1
  end

let span t name f =
  match t.clock with
  | None -> f ()
  | Some clock ->
    let node = child_of t name in
    let d = List.length t.stack in
    let start = Clock.now clock in
    t.stack <- (node, start) :: t.stack;
    let pop () =
      match t.stack with
      | (n, s) :: rest ->
        t.stack <- rest;
        let finish = Clock.now clock in
        let delta = finish - s in
        n.calls <- n.calls + 1;
        n.cum <- n.cum + delta;
        (match rest with (p, _) :: _ -> p.child_cum <- p.child_cum + delta | [] -> ());
        record_event t ~depth:d ~name:n.iname ~start:s ~finish
      | [] -> assert false
    in
    (match f () with
    | v ->
      pop ();
      v
    | exception e ->
      (* Exception-safe: the frame is popped (and its cycles up to the
         raise attributed) before the exception continues outward, so a
         partial stack never leaks. *)
      pop ();
      raise e)

(* ------------------------------ snapshot ------------------------------ *)

let rec snapshot (n : inode) =
  let children =
    Hashtbl.fold (fun _ c acc -> snapshot c :: acc) n.children []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  { name = n.iname; calls = n.calls; cum = n.cum; self = max 0 (n.cum - n.child_cum); children }

let tree t =
  Hashtbl.fold (fun _ n acc -> snapshot n :: acc) t.roots []
  |> List.sort (fun a b -> String.compare a.name b.name)

let total_cycles t = match t.clock with None -> 0 | Some c -> Clock.now c - t.started
let attributed_cycles t = Hashtbl.fold (fun _ n acc -> acc + n.cum) t.roots 0
let unattributed_cycles t = max 0 (total_cycles t - attributed_cycles t)

let flatten t =
  let out = ref [] in
  let rec go prefix n =
    let path = if prefix = "" then n.name else prefix ^ ";" ^ n.name in
    out := (path, n.calls, n.self, n.cum) :: !out;
    List.iter (go path) n.children
  in
  List.iter (go "") (tree t);
  List.rev !out

let top_spans ?(k = 10) t =
  flatten t
  |> List.sort (fun (pa, _, sa, _) (pb, _, sb, _) ->
         if sa <> sb then compare sb sa else String.compare pa pb)
  |> List.filteri (fun i _ -> i < k)

(* ------------------------------- events ------------------------------- *)

let events_recorded t = t.ev_recorded
let events_dropped t = max 0 (t.ev_recorded - Array.length t.ring)

let events t =
  let cap = Array.length t.ring in
  if cap = 0 || t.ev_recorded = 0 then []
  else begin
    let kept = min t.ev_recorded cap in
    let first = t.ev_recorded - kept in
    List.init kept (fun i ->
        match t.ring.((first + i) mod cap) with Some e -> e | None -> assert false)
  end

(* ------------------------------ exporters ----------------------------- *)

let attributed_fraction t =
  let total = total_cycles t in
  if total = 0 then 1.0 else float_of_int (attributed_cycles t) /. float_of_int total

let rec node_to_json (n : node) =
  Json.Obj
    ([ ("calls", Json.Int n.calls); ("cum", Json.Int n.cum); ("self", Json.Int n.self) ]
    @
    if n.children = [] then []
    else [ ("children", Json.Obj (List.map (fun c -> (c.name, node_to_json c)) n.children)) ])

let to_json t =
  Json.Obj
    [
      ("enabled", Json.Bool (enabled t));
      ("total_cycles", Json.Int (total_cycles t));
      ("attributed_cycles", Json.Int (attributed_cycles t));
      ("unattributed_cycles", Json.Int (unattributed_cycles t));
      ("attributed_fraction", Json.Float (attributed_fraction t));
      ("events_recorded", Json.Int (events_recorded t));
      ("events_dropped", Json.Int (events_dropped t));
      ("tree", Json.Obj (List.map (fun n -> (n.name, node_to_json n)) (tree t)));
    ]

(* Chrome trace-event JSON (chrome://tracing, Perfetto, speedscope).
   Virtual cycles are exported as microseconds; viewers rebuild the stack
   from the nesting of complete ("ph":"X") events on one thread, so
   events are sorted parents-first: by start, then longest duration. *)
let to_chrome_json t =
  let evs =
    List.sort
      (fun a b ->
        if a.start <> b.start then compare a.start b.start
        else if a.finish <> b.finish then compare b.finish a.finish
        else compare a.depth b.depth)
      (events t)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.String e.ename);
                   ("cat", Json.String "sim");
                   ("ph", Json.String "X");
                   ("ts", Json.Int e.start);
                   ("dur", Json.Int (e.finish - e.start));
                   ("pid", Json.Int 1);
                   ("tid", Json.Int 1);
                 ])
             evs) );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "virtual cycles exported as microseconds");
            ("dropped_events", Json.Int (events_dropped t));
            ("unattributed_cycles", Json.Int (unattributed_cycles t));
          ] );
    ]

(* Collapsed stacks for flamegraph.pl / speedscope: one "a;b;c self"
   line per path with non-zero self cycles, in deterministic DFS order.
   The unattributed remainder is reported explicitly as its own root. *)
let to_collapsed t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, _, self, _) ->
      if self > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" path self))
    (flatten t);
  let rest = unattributed_cycles t in
  if rest > 0 then Buffer.add_string buf (Printf.sprintf "(unattributed) %d\n" rest);
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>profile: %d total cycles, %d attributed (%.1f%%), %d unattributed@,"
    (total_cycles t) (attributed_cycles t)
    (100.0 *. attributed_fraction t)
    (unattributed_cycles t);
  let rec go indent n =
    Format.fprintf ppf "%s%-*s calls=%-8d self=%-12d cum=%d@," indent
      (max 1 (28 - String.length indent))
      n.name n.calls n.self n.cum;
    List.iter (go (indent ^ "  ")) n.children
  in
  List.iter (go "") (tree t);
  Format.fprintf ppf "@]"
