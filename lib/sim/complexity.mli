(** Scaling-law fitting: turn measured (operand size, cost) series into a
    complexity class, making the paper's O(1) claim machine-checkable.

    An operation is run at geometrically increasing operand sizes on the
    virtual clock; the per-size cycle costs are fitted with a least-squares
    line in log-log space. The fitted slope is the operation's empirical
    exponent: ~0 for constant cost, ~1 for linear. Because a logarithmic
    curve has a small but nonzero log-log slope, the classifier also looks
    at the fitted end-to-end growth (cost ratio between the largest and
    smallest operand predicted by the fit): a flat-slope series that still
    grows materially across the sweep is logarithmic, not constant. *)

type cls =
  | Constant  (** O(1): cost independent of operand size *)
  | Logarithmic  (** O(log n): sublinear but material growth *)
  | Linear  (** O(n) *)
  | Superlinear  (** worse than linear *)

val cls_name : cls -> string
(** "O(1)", "O(log n)", "O(n)", "O(n^2+)". *)

val cls_of_name : string -> cls option
(** Inverse of {!cls_name}; [None] for unknown strings. *)

val rank : cls -> int
(** Severity order, [Constant] = 0 ... [Superlinear] = 3. A rank increase
    between two bench runs is a complexity-class downgrade. *)

val pp_cls : Format.formatter -> cls -> unit

type lsq = { slope : float; intercept : float; r2 : float }
(** Ordinary least squares of [y = intercept + slope * x]. [r2] is the
    coefficient of determination; 1.0 when the residuals vanish (including
    the all-[y]-equal case, which a zero-slope line fits exactly). *)

val least_squares : (float * float) list -> lsq
(** Raises [Invalid_argument] on fewer than two points or when all [x]
    coincide. *)

type fit = {
  exponent : float;  (** log-log slope: the empirical scaling exponent *)
  r2 : float;  (** quality of the log-log fit *)
  growth : float;  (** fitted cost(n_max) / cost(n_min), = ratio^exponent *)
  cls : cls;
}

val fit : (int * int) list -> fit
(** [fit points] with [points] = [(operand size, cost in cycles)]. Sizes
    must be positive; costs are clamped to >= 1 cycle so free operations
    fit cleanly. Raises [Invalid_argument] on fewer than two distinct
    sizes. *)

val classify : exponent:float -> growth:float -> cls
(** The classification rule used by {!fit}, exposed for tests:
    exponent >= 1.4 is [Superlinear], >= 0.6 is [Linear]; below that,
    fitted growth > 2x across the sweep is [Logarithmic], else
    [Constant]. *)

val fit_to_json : fit -> Json.t
(** Object with "class", "exponent", "r2", "growth". *)
