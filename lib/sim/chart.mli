(** ASCII line charts, for rendering the paper's figures in the bench
    output (log axes supported, several series overlaid with distinct
    markers). *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int -> ?height:int -> ?logx:bool -> ?logy:bool -> title:string -> series list -> string
(** A [width] x [height] (default 64 x 16) plot. Points with
    non-positive coordinates are dropped when the matching axis is
    logarithmic. Returns the chart followed by a legend. *)

val print :
  ?width:int -> ?height:int -> ?logx:bool -> ?logy:bool -> title:string -> series list -> unit
