(** ASCII line charts, for rendering the paper's figures in the bench
    output (log axes supported, several series overlaid with distinct
    markers). *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int -> ?height:int -> ?logx:bool -> ?logy:bool -> title:string -> series list -> string
(** A [width] x [height] (default 64 x 16) plot. Points with
    non-positive coordinates are dropped when the matching axis is
    logarithmic. Returns the chart followed by a legend mapping each
    series label to its marker; cells where two *different* series
    collide are drawn as ['&'] and the legend explains that marker
    whenever it appears. A chart with no drawable points still renders
    its title and legend. *)

val print :
  ?width:int -> ?height:int -> ?logx:bool -> ?logy:bool -> title:string -> series list -> unit
