let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let tib n = n * 1024 * 1024 * 1024 * 1024
let page_shift = 12
let page_size = 1 lsl page_shift
let huge_2m = 2 * 1024 * 1024
let huge_1g = 1024 * 1024 * 1024
let pages_of_bytes n = (n + page_size - 1) / page_size

let round_up n ~align =
  assert (align > 0 && align land (align - 1) = 0);
  (n + align - 1) land lnot (align - 1)

let round_down n ~align =
  assert (align > 0 && align land (align - 1) = 0);
  n land lnot (align - 1)

let is_aligned n ~align = n land (align - 1) = 0
let is_power_of_two n = n >= 1 && n land (n - 1) = 0

let log2_floor n =
  assert (n >= 1);
  let rec loop k n = if n = 1 then k else loop (k + 1) (n lsr 1) in
  loop 0 n

let log2_ceil n =
  assert (n >= 1);
  let f = log2_floor n in
  if 1 lsl f = n then f else f + 1

let rec pp_bytes ppf n =
  let suffixes = [| "B"; "KiB"; "MiB"; "GiB"; "TiB"; "PiB" |] in
  let rec pick i n = if n >= 1024 && n mod 1024 = 0 && i < 5 then pick (i + 1) (n / 1024) else (i, n) in
  if n < 0 then Format.fprintf ppf "-%a" pp_bytes (-n)
  else
    let i, v = pick 0 n in
    Format.fprintf ppf "%d%s" v suffixes.(i)

let bytes_to_string n = Format.asprintf "%a" pp_bytes n
