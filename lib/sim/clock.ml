type t = { mutable cycles : int; model : Cost_model.t }

let create model = { cycles = 0; model }
let model t = t.model
let now t = t.cycles

let charge t c =
  assert (c >= 0);
  t.cycles <- t.cycles + c

let reset t = t.cycles <- 0
let elapsed t ~since = t.cycles - since

let time t f =
  let start = t.cycles in
  let r = f () in
  (r, t.cycles - start)

let us t c = Cost_model.cycles_to_us t.model c
