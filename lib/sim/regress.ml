(* Compare two metrics JSON documents and flag regressions. Pure Json.t ->
   report; file IO and exit codes live in the CLI. *)

type status = Within | Regressed | Improved | Added | Removed | Downgraded | Upgraded

let status_name = function
  | Within -> "within"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Added -> "added"
  | Removed -> "removed"
  | Downgraded -> "DOWNGRADED"
  | Upgraded -> "upgraded"

type delta = {
  section : string;
  key : string;
  old_v : string;
  new_v : string;
  pct : float option;
  status : status;
}

type report = { threshold_pct : float; compared : int; deltas : delta list }

(* --------------------------- order stats ----------------------------- *)

(* Shared by the k-trial throughput harness (producing medians/IQRs) and
   the noise-floor gate below (consuming them): linear-interpolation
   quantiles over a small sample. *)
let quantile xs q =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Regress.quantile: empty sample"
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let pos = q *. float_of_int (n - 1) in
      let lo = min (int_of_float pos) (n - 2) in
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(lo + 1) -. a.(lo)))
    end

let median xs = quantile xs 0.5

let quartiles xs =
  let q1 = quantile xs 0.25 and q2 = quantile xs 0.5 and q3 = quantile xs 0.75 in
  (q1, q2, q3)

(* ---------------------------- JSON access ---------------------------- *)

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let path doc keys = List.fold_left (fun v k -> Option.bind v (fun v -> Json.member v k)) (Some doc) keys

let fields = function Some (Json.Obj f) -> f | _ -> []

let union_keys a b =
  List.sort_uniq String.compare (List.map fst a @ List.map fst b)

let show_number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

(* ------------------------------ compare ------------------------------ *)

type acc = { mutable n : int; mutable rows : delta list }

let emit acc d = acc.rows <- d :: acc.rows

(* One numeric metric present on both sides. *)
let numeric acc ~threshold ~section ~key old_ new_ =
  acc.n <- acc.n + 1;
  if old_ <> new_ then begin
    let pct = if old_ = 0.0 then Float.infinity *. Float.of_int (Stdlib.compare new_ old_) else (new_ -. old_) /. old_ *. 100.0 in
    let status =
      if Float.abs pct <= threshold then Within else if new_ > old_ then Regressed else Improved
    in
    emit acc
      { section; key; old_v = show_number old_; new_v = show_number new_; pct = Some pct; status }
  end

let one_sided acc ~section ~key ~status v =
  acc.n <- acc.n + 1;
  let s = match number v with Some f -> show_number f | None -> Json.to_string v in
  let old_v, new_v = if status = Added then ("-", s) else (s, "-") in
  emit acc { section; key; old_v; new_v; pct = None; status }

(* Walk the union of an object's keys, comparing numeric members. *)
let compare_numeric_obj acc ~threshold ~section old_fields new_fields =
  List.iter
    (fun k ->
      match (List.assoc_opt k old_fields, List.assoc_opt k new_fields) with
      | Some o, Some n -> (
        match (number o, number n) with
        | Some fo, Some fn -> numeric acc ~threshold ~section ~key:k fo fn
        | _ -> ())
      | Some o, None -> one_sided acc ~section ~key:k ~status:Removed o
      | None, Some n -> one_sided acc ~section ~key:k ~status:Added n
      | None, None -> ())
    (union_keys old_fields new_fields)

let compare_latency acc ~threshold old_doc new_doc =
  let old_ops = fields (path old_doc [ "trace"; "ops" ]) in
  let new_ops = fields (path new_doc [ "trace"; "ops" ]) in
  List.iter
    (fun op ->
      match (List.assoc_opt op old_ops, List.assoc_opt op new_ops) with
      | Some o, Some n ->
        List.iter
          (fun q ->
            match (Option.bind (Json.member o q) number, Option.bind (Json.member n q) number) with
            | Some fo, Some fn -> numeric acc ~threshold ~section:"latency" ~key:(op ^ " " ^ q) fo fn
            | _ -> ())
          [ "p50"; "p99" ]
      | Some o, None -> one_sided acc ~section:"latency" ~key:op ~status:Removed o
      | None, Some n -> one_sided acc ~section:"latency" ~key:op ~status:Added n
      | None, None -> ())
    (union_keys old_ops new_ops)

let compare_complexity acc old_doc new_doc =
  let old_ops = fields (path old_doc [ "complexity" ]) in
  let new_ops = fields (path new_doc [ "complexity" ]) in
  let str v k = match Option.bind (Json.member v k) (function Json.String s -> Some s | _ -> None) with
    | Some s -> s
    | None -> "?"
  in
  List.iter
    (fun op ->
      match (List.assoc_opt op old_ops, List.assoc_opt op new_ops) with
      | Some o, Some n ->
        let co = str o "class" and cn = str n "class" in
        acc.n <- acc.n + 1;
        if co <> cn then begin
          let status =
            match (Complexity.cls_of_name co, Complexity.cls_of_name cn) with
            | Some a, Some b ->
              if Complexity.rank b > Complexity.rank a then Downgraded else Upgraded
            | _ -> Downgraded (* unknown class names: fail safe *)
          in
          emit acc { section = "complexity"; key = op ^ " class"; old_v = co; new_v = cn; pct = None; status }
        end;
        (match (Option.bind (Json.member o "exponent") number, Option.bind (Json.member n "exponent") number) with
        | Some fo, Some fn ->
          acc.n <- acc.n + 1;
          (* Exponent drift is informational; the gate acts on class changes. *)
          if fo <> fn then
            emit acc
              {
                section = "complexity";
                key = op ^ " exponent";
                old_v = show_number fo;
                new_v = show_number fn;
                pct = None;
                status = Within;
              }
        | _ -> ())
      | Some o, None -> one_sided acc ~section:"complexity" ~key:op ~status:Removed o
      | None, Some n -> one_sided acc ~section:"complexity" ~key:op ~status:Added n
      | None, None -> ())
    (union_keys old_ops new_ops)

(* The "faults" section (R1): a recursive numeric walk over its nested
   objects. Everything in it runs on the virtual clock, so any drift is a
   code change. Two leaves gate specially: a recovery "class" string acts
   like a complexity class (Downgraded on rank increase), and a boolean
   flipping to false (e.g. "zero_cost_when_off") is a regression. *)
let rec compare_faults_obj acc ~threshold ~section old_fields new_fields =
  List.iter
    (fun k ->
      match (List.assoc_opt k old_fields, List.assoc_opt k new_fields) with
      | Some (Json.Obj o), Some (Json.Obj n) ->
        compare_faults_obj acc ~threshold ~section:(section ^ "." ^ k) o n
      | Some (Json.Bool o), Some (Json.Bool n) ->
        acc.n <- acc.n + 1;
        if o <> n then
          emit acc
            {
              section;
              key = k;
              old_v = string_of_bool o;
              new_v = string_of_bool n;
              pct = None;
              status = (if n then Improved else Regressed);
            }
      | Some (Json.String co), Some (Json.String cn) when k = "class" ->
        acc.n <- acc.n + 1;
        if co <> cn then begin
          let status =
            match (Complexity.cls_of_name co, Complexity.cls_of_name cn) with
            | Some a, Some b ->
              if Complexity.rank b > Complexity.rank a then Downgraded else Upgraded
            | _ -> Downgraded (* unknown class names: fail safe *)
          in
          emit acc { section; key = k; old_v = co; new_v = cn; pct = None; status }
        end
      | Some o, Some n -> (
        match (number o, number n) with
        | Some fo, Some fn -> numeric acc ~threshold ~section ~key:k fo fn
        | _ -> ())
      | Some o, None -> one_sided acc ~section ~key:k ~status:Removed o
      | None, Some n -> one_sided acc ~section ~key:k ~status:Added n
      | None, None -> ())
    (union_keys old_fields new_fields)

let compare_faults acc ~threshold old_doc new_doc =
  match (path old_doc [ "faults" ], path new_doc [ "faults" ]) with
  | None, None -> ()
  | o, n -> compare_faults_obj acc ~threshold ~section:"faults" (fields o) (fields n)

(* The "smp" section: machine-wide and per-core IPI/TLB/NUMA counters
   from the 4-core migration workload — the same recursive numeric walk,
   since every leaf is a virtual-clock-exact integer. *)
let compare_smp acc ~threshold old_doc new_doc =
  match (path old_doc [ "smp" ], path new_doc [ "smp" ]) with
  | None, None -> ()
  | o, n -> compare_faults_obj acc ~threshold ~section:"smp" (fields o) (fields n)

(* The "causal" section (T1): makespan decomposition, critical-path
   summary, IPI latency matrices and the hop-count sweeps. Same walk:
   the "class" strings catch a critical-path complexity downgrade, the
   "match"/"attributed" booleans catch a gate flipping false. *)
let compare_causal acc ~threshold old_doc new_doc =
  match (path old_doc [ "causal" ], path new_doc [ "causal" ]) with
  | None, None -> ()
  | o, n -> compare_faults_obj acc ~threshold ~section:"causal" (fields o) (fields n)

(* The "store" section (R2): recovery-complexity fits, the crash-explorer
   counters and the degradation-plan tallies. The walk catches both perf
   drift (recovery cycles) and robustness drift — a "violations" count
   going nonzero, a detection count going to zero, or a fit "class"
   string changing all surface as diffs. *)
let compare_store acc ~threshold old_doc new_doc =
  match (path old_doc [ "store" ], path new_doc [ "store" ]) with
  | None, None -> ()
  | o, n -> compare_faults_obj acc ~threshold ~section:"store" (fields o) (fields n)

(* Wall-clock ops/sec per scenario: direction is inverted (lower = worse)
   and the numbers are real time, hence noisy — drops only count as
   regressions when the caller opts in with [gate].

   k-trial documents carry median + IQR per scenario; the IQR is a
   measured noise floor, so the effective threshold for a scenario is
   max(threshold, 2 * worst IQR/median ratio of the two runs): a delta
   smaller than twice the observed run-to-run spread is indistinguishable
   from noise and never flagged. Legacy single-run documents (a bare
   "ops_per_sec") fall back to the flat threshold. *)
let compare_throughput acc ~threshold ~gate old_doc new_doc =
  let old_scen = fields (path old_doc [ "throughput" ]) in
  let new_scen = fields (path new_doc [ "throughput" ]) in
  let num d k = Option.bind (Json.member d k) number in
  let rate acc ~key ~eff fo fn =
    acc.n <- acc.n + 1;
    if fo <> fn then begin
      let pct =
        if fo = 0.0 then Float.infinity *. Float.of_int (Stdlib.compare fn fo)
        else (fn -. fo) /. fo *. 100.0
      in
      let status =
        if Float.abs pct <= eff then Within
        else if fn < fo then if gate then Regressed else Within
        else Improved
      in
      emit acc
        {
          section = "throughput";
          key;
          old_v = show_number fo;
          new_v = show_number fn;
          pct = Some pct;
          status;
        }
    end
  in
  List.iter
    (fun scen ->
      match (List.assoc_opt scen old_scen, List.assoc_opt scen new_scen) with
      | Some o, Some n -> (
        match (num o "median_ops_per_sec", num n "median_ops_per_sec") with
        | Some fo, Some fn ->
          let spread d m =
            match num d "iqr_ops_per_sec" with
            | Some iqr when m > 0.0 -> iqr /. m
            | _ -> 0.0
          in
          let noise_pct = 100.0 *. Float.max (spread o fo) (spread n fn) in
          let eff = Float.max threshold (2.0 *. noise_pct) in
          rate acc ~key:(scen ^ " median ops/sec") ~eff fo fn
        | _ -> (
          match (num o "ops_per_sec", num n "ops_per_sec") with
          | Some fo, Some fn -> rate acc ~key:(scen ^ " ops/sec") ~eff:threshold fo fn
          | _ -> ()))
      | Some o, None -> one_sided acc ~section:"throughput" ~key:scen ~status:Removed o
      | None, Some n -> one_sided acc ~section:"throughput" ~key:scen ~status:Added n
      | None, None -> ())
    (union_keys old_scen new_scen)

(* The "host" section (H1): Hostprof attribution per churn backend. Two
   very different metric families live here. Host nanoseconds are machine
   noise: the summary total_ns/attributed_ns are reported (status Within,
   never gated) and per-path ns keys are not walked at all — they differ
   on every run and would flood the table. Allocated words, call counts
   and virtual cycles are deterministic for a fixed binary, so a delta is
   a real code change: reported by default, and the words family becomes
   a gate under [gate_alloc] (more allocation per op = the simulator got
   more expensive to host). Heap-state gauges ("self", heap/collection
   counts) depend on GC timing relative to export, so they are skipped. *)
let compare_host acc ~threshold ~gate_alloc old_doc new_doc =
  let words_key k =
    match k with
    | "words" | "self_words" | "total_words" | "attributed_words" | "allocated_words"
    | "minor_words" | "promoted_words" | "major_words" ->
      true
    | _ -> false
  in
  let deterministic k =
    words_key k || k = "calls" || k = "vcycles" || k = "total_vcycles" || k = "ops"
  in
  let report_ns k = k = "total_ns" || k = "attributed_ns" in
  let emit_num ~section ~key ~gated fo fn =
    acc.n <- acc.n + 1;
    if fo <> fn then begin
      let pct =
        if fo = 0.0 then Float.infinity *. Float.of_int (Stdlib.compare fn fo)
        else (fn -. fo) /. fo *. 100.0
      in
      let status =
        if Float.abs pct <= threshold then Within
        else if fn > fo then if gated then Regressed else Within
        else Improved
      in
      emit acc
        { section; key; old_v = show_number fo; new_v = show_number fn; pct = Some pct; status }
    end
  in
  let rec walk ~section old_fields new_fields =
    List.iter
      (fun k ->
        match (List.assoc_opt k old_fields, List.assoc_opt k new_fields) with
        | Some (Json.Obj o), Some (Json.Obj n) ->
          if k <> "self" then walk ~section:(section ^ "." ^ k) o n
        | Some (Json.Bool o), Some (Json.Bool n) ->
          acc.n <- acc.n + 1;
          (* "enabled" flipping false means the plane silently detached. *)
          if o <> n then
            emit acc
              {
                section;
                key = k;
                old_v = string_of_bool o;
                new_v = string_of_bool n;
                pct = None;
                status = (if n then Improved else Regressed);
              }
        | Some o, Some n -> (
          match (number o, number n) with
          | Some fo, Some fn ->
            if deterministic k then
              emit_num ~section ~key:k ~gated:(gate_alloc && words_key k) fo fn
            else if report_ns k then emit_num ~section ~key:k ~gated:false fo fn
          | _ -> ())
        | Some o, None ->
          if deterministic k || (match o with Json.Obj _ -> true | _ -> false) then
            one_sided acc ~section ~key:k ~status:Removed o
        | None, Some n ->
          if deterministic k || (match n with Json.Obj _ -> true | _ -> false) then
            one_sided acc ~section ~key:k ~status:Added n
        | None, None -> ())
      (union_keys old_fields new_fields)
  in
  match (path old_doc [ "host" ], path new_doc [ "host" ]) with
  | None, None -> ()
  | o, n -> walk ~section:"host" (fields o) (fields n)

let compare_docs ?(threshold_pct = 10.0) ?(gate_throughput = false) ?(gate_host_alloc = false)
    ~old_doc ~new_doc () =
  let schema d = match Json.member d "schema" with Some (Json.String s) -> Some s | _ -> None in
  match (schema old_doc, schema new_doc) with
  | None, _ | _, None -> Error "missing \"schema\" field: not a metrics document"
  | Some a, Some b when a <> b ->
    Error (Printf.sprintf "schema mismatch: %S vs %S — regenerate the baseline" a b)
  | Some _, Some _ -> (
    match (Json.member old_doc "provenance", Json.member new_doc "provenance") with
    | Some p, Some q when p <> q ->
      Error "provenance mismatch (cost model or trace capacity differ): runs are not comparable"
    | Some _, None | None, Some _ ->
      Error "provenance present in only one document: runs are not comparable"
    | _ ->
      let acc = { n = 0; rows = [] } in
      (match (Option.bind (Json.member old_doc "clock_cycles") number,
              Option.bind (Json.member new_doc "clock_cycles") number) with
      | Some o, Some n -> numeric acc ~threshold:threshold_pct ~section:"clock" ~key:"clock_cycles" o n
      | _ -> ());
      compare_numeric_obj acc ~threshold:threshold_pct ~section:"counters"
        (fields (Json.member old_doc "stats"))
        (fields (Json.member new_doc "stats"));
      compare_latency acc ~threshold:threshold_pct old_doc new_doc;
      compare_complexity acc old_doc new_doc;
      compare_faults acc ~threshold:threshold_pct old_doc new_doc;
      compare_smp acc ~threshold:threshold_pct old_doc new_doc;
      compare_causal acc ~threshold:threshold_pct old_doc new_doc;
      compare_store acc ~threshold:threshold_pct old_doc new_doc;
      compare_throughput acc ~threshold:threshold_pct ~gate:gate_throughput old_doc new_doc;
      compare_host acc ~threshold:threshold_pct ~gate_alloc:gate_host_alloc old_doc new_doc;
      Ok { threshold_pct; compared = acc.n; deltas = List.rev acc.rows })

let regressions r =
  List.filter (fun d -> d.status = Regressed || d.status = Downgraded) r.deltas

let render r =
  if r.deltas = [] then
    Printf.sprintf "bench-diff: %d metrics compared, no differences (threshold %.1f%%)\n" r.compared
      r.threshold_pct
  else begin
    let t =
      Table.create ~title:"bench-diff deltas"
        ~columns:[ "section"; "metric"; "old"; "new"; "delta"; "status" ]
    in
    List.iter
      (fun d ->
        let delta =
          match d.pct with
          | Some p when Float.is_finite p -> Printf.sprintf "%+.1f%%" p
          | Some p -> if p > 0.0 then "+inf" else "-inf"
          | None -> "-"
        in
        Table.add_row t [ d.section; d.key; d.old_v; d.new_v; delta; status_name d.status ])
      r.deltas;
    let bad = List.length (regressions r) in
    let improved = List.length (List.filter (fun d -> d.status = Improved) r.deltas) in
    Table.render t
    ^ Printf.sprintf "\n%d metrics compared, %d changed: %d regression%s, %d improvement%s (threshold %.1f%%)\n"
        r.compared (List.length r.deltas) bad
        (if bad = 1 then "" else "s")
        improved
        (if improved = 1 then "" else "s")
        r.threshold_pct
  end
