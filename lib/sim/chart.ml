type series = { label : string; points : (float * float) list }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ?(logx = false) ?(logy = false) ~title series =
  let tx v = if logx then log v else v in
  let ty v = if logy then log v else v in
  let usable (x, y) = ((not logx) || x > 0.0) && ((not logy) || y > 0.0) in
  let legend buf =
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "            %c  %s\n" markers.(si mod Array.length markers) s.label))
      series
  in
  let pts = List.concat_map (fun s -> List.filter usable s.points) series in
  if pts = [] then begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf (title ^ "\n(no data)\n");
    legend buf;
    Buffer.contents buf
  end
  else begin
    let xs = List.map (fun (x, _) -> tx x) pts and ys = List.map (fun (_, y) -> ty y) pts in
    let fmin l = List.fold_left min (List.hd l) l and fmax l = List.fold_left max (List.hd l) l in
    let x0 = fmin xs and x1 = fmax xs and y0 = fmin ys and y1 = fmax ys in
    let xr = if x1 > x0 then x1 -. x0 else 1.0 and yr = if y1 > y0 then y1 -. y0 else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let m = markers.(si mod Array.length markers) in
        List.iter
          (fun p ->
            if usable p then begin
              let x, y = p in
              let cx =
                int_of_float (Float.round ((tx x -. x0) /. xr *. float_of_int (width - 1)))
              in
              let cy =
                height - 1
                - int_of_float (Float.round ((ty y -. y0) /. yr *. float_of_int (height - 1)))
              in
              if cx >= 0 && cx < width && cy >= 0 && cy < height then begin
                (* '&' only when *different* series collide; repeated points
                   of one series keep its own marker. *)
                let prev = grid.(cy).(cx) in
                if prev = ' ' then grid.(cy).(cx) <- m
                else if prev <> m then grid.(cy).(cx) <- '&'
              end
            end)
          s.points)
      series;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (title ^ "\n");
    let y_top = if logy then exp y1 else y1 and y_bot = if logy then exp y0 else y0 in
    let label v = Printf.sprintf "%10.4g" v in
    Array.iteri
      (fun row line ->
        let lbl =
          if row = 0 then label y_top
          else if row = height - 1 then label y_bot
          else String.make 10 ' '
        in
        Buffer.add_string buf (lbl ^ " |");
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ' ^ "+" ^ String.make width '-' ^ "\n");
    let x_left = if logx then exp x0 else x0 and x_right = if logx then exp x1 else x1 in
    Buffer.add_string buf
      (Printf.sprintf "%s%-10.4g%s%10.4g\n" (String.make 12 ' ') x_left
         (String.make (max 0 (width - 20)) ' ')
         x_right);
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s\n"
         (String.make 12 ' ')
         (if logx then "(log x) " else "")
         (if logy then "(log y)" else ""));
    legend buf;
    if Array.exists (fun row -> Array.exists (( = ) '&') row) grid then
      Buffer.add_string buf "            &  (overlapping series)\n";
    Buffer.contents buf
  end

let print ?width ?height ?logx ?logy ~title series =
  print_string (render ?width ?height ?logx ?logy ~title series);
  print_newline ()
