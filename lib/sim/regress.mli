(** Cross-run bench regression gate.

    Compares two metrics documents (the JSON written by [bench --json] /
    [o1mem_cli metrics]) and reports every metric that moved: the virtual
    clock total, each [Stats] counter, per-operation p50/p99 latencies from
    the trace, and fitted complexity classes/exponents. Because the bench
    workload is deterministic, a self-comparison is empty; any delta on an
    unchanged workload is a real behaviour change.

    Two documents are only comparable when their schema and provenance
    (cost-model parameters, trace capacity) agree — otherwise deltas would
    reflect configuration, not code. *)

val quantile : float list -> float -> float
(** [quantile xs q] is the linearly-interpolated [q]-quantile (0..1) of
    the sample. Raises [Invalid_argument] on an empty list. Exposed here
    because both the throughput harness (producer) and the noise-floor
    gate (consumer) need the same order statistics. *)

val median : float list -> float
val quartiles : float list -> float * float * float
(** [(p25, median, p75)]. *)

type status =
  | Within  (** changed, inside the threshold *)
  | Regressed  (** cost grew beyond the threshold *)
  | Improved  (** cost shrank beyond the threshold *)
  | Added  (** metric present only in the new run *)
  | Removed  (** metric present only in the old run *)
  | Downgraded  (** complexity class got worse — always fails the gate *)
  | Upgraded  (** complexity class got better *)

val status_name : status -> string

type delta = {
  section : string;  (** "counters", "latency", "complexity", "clock", "throughput" *)
  key : string;
  old_v : string;
  new_v : string;
  pct : float option;  (** percentage change when both sides are numeric *)
  status : status;
}

type report = {
  threshold_pct : float;
  compared : int;  (** metrics examined across both documents *)
  deltas : delta list;  (** only metrics that differ, section-ordered *)
}

val compare_docs :
  ?threshold_pct:float -> ?gate_throughput:bool -> ?gate_host_alloc:bool -> old_doc:Json.t ->
  new_doc:Json.t -> unit -> (report, string) result
(** [threshold_pct] defaults to 10. [Error reason] when the documents are
    incompatible: unequal schemas, or unequal/missing provenance.

    Wall-clock "throughput" scenarios (ops/sec, lower = worse) are
    compared report-only by default — real-time numbers are machine- and
    load-dependent, so a drop is shown but never fails the gate unless
    [gate_throughput:true]. k-trial documents compare medians against an
    IQR-derived noise floor: the effective threshold is
    max(threshold, 2 x worst IQR/median of the two runs), so deltas
    inside the measured run-to-run spread never flag.

    The "host" section is report-only by default: host nanoseconds are
    never gated, but allocated-words keys (deterministic for a fixed
    binary) fail the gate under [gate_host_alloc:true] when they grow
    beyond the threshold. Complexity-class downgrades always fail. *)

val regressions : report -> delta list
(** The deltas that fail the gate: [Regressed] and [Downgraded]. *)

val render : report -> string
(** Human-readable delta table (via {!Table}) plus a one-line verdict. *)
