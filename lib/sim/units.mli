(** Byte-size units, page geometry and alignment arithmetic.

    All sizes and addresses in the simulator are [int] (63-bit on 64-bit
    hosts), which comfortably covers the petabyte address spaces the paper
    discusses. *)

val kib : int -> int
(** [kib n] is [n] kibibytes. *)

val mib : int -> int
(** [mib n] is [n] mebibytes. *)

val gib : int -> int
(** [gib n] is [n] gibibytes. *)

val tib : int -> int
(** [tib n] is [n] tebibytes. *)

val page_size : int
(** Base page size, 4096 bytes, as on x86-64. *)

val page_shift : int
(** [log2 page_size] = 12. *)

val huge_2m : int
(** 2 MiB huge-page size. *)

val huge_1g : int
(** 1 GiB huge-page size. *)

val pages_of_bytes : int -> int
(** [pages_of_bytes n] is the number of base pages covering [n] bytes
    (rounds up). *)

val round_up : int -> align:int -> int
(** [round_up n ~align] rounds [n] up to a multiple of [align].
    [align] must be a power of two. *)

val round_down : int -> align:int -> int
(** [round_down n ~align] rounds [n] down to a multiple of [align]. *)

val is_aligned : int -> align:int -> bool
(** [is_aligned n ~align] is [true] iff [n] is a multiple of [align]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] for [n >= 1]. [false] for [n <= 0]. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the smallest [k] with [2^k >= n]. Requires [n >= 1]. *)

val log2_floor : int -> int
(** [log2_floor n] is the largest [k] with [2^k <= n]. Requires [n >= 1]. *)

val pp_bytes : Format.formatter -> int -> unit
(** Pretty-print a byte count with a binary-unit suffix, e.g. "64KiB". *)

val bytes_to_string : int -> string
(** [bytes_to_string n] is [Fmt.str "%a" pp_bytes n]. *)
