(* Host-side cost attribution: what the *host* pays to run the simulator.

   Every profiled span records, in addition to whatever Sim.Profile
   attributes on the virtual clock, a monotonic host-nanosecond delta and
   a GC allocated-words delta (minor + major - promoted, via
   Gc.counters), aggregated into the same call-tree paths as Profile.
   Nothing here ever touches the virtual clock, so attaching a Hostprof
   costs zero simulated cycles — test-asserted, like Profile and Causal.

   The time source is injected ([now_ns]) rather than read from Unix:
   the sim library stays dependency-free, tests can drive a fake clock,
   and callers pick the best monotonic source they have (the bench layer
   uses bechamel's clock_gettime stub). Host-ns deltas are clamped to be
   non-negative, so a stepping wall clock can never produce negative
   attribution; allocated-words deltas are deterministic for a fixed
   binary and workload, which is what makes them gateable where raw
   nanoseconds are not. *)

type node = {
  name : string;
  calls : int;
  ns : int;  (* cumulative host nanoseconds *)
  self_ns : int;
  words : int;  (* cumulative allocated words *)
  self_words : int;
  vcycles : int;  (* cumulative virtual cycles spent under this path *)
  children : node list;
}

(* Mutable call-tree node; one per distinct path, children keyed by name. *)
type inode = {
  iname : string;
  mutable calls : int;
  mutable ns : int;
  mutable words : int;
  mutable vcycles : int;
  mutable child_ns : int;
  mutable child_words : int;
  children : (string, inode) Hashtbl.t;
}

(* One measurement point: host time, allocation counter, virtual clock. *)
type point = { p_ns : int; p_words : float; p_vcycles : int }

type self_sample = {
  at_ns : int;  (* host ns since create/reset *)
  heap_words : int;
  top_heap_words : int;
  minor_collections : int;
  major_collections : int;
  rss_kb : int;
}

type t = {
  now_ns : (unit -> int) option; (* None = disabled sentinel *)
  vclock : Clock.t option;
  read_rss_kb : (unit -> int) option;
  roots : (string, inode) Hashtbl.t;
  mutable stack : (inode * point) list; (* innermost first *)
  mutable started : point;
  mutable started_gc : float * float * float; (* Gc.counters at create/reset *)
  self : self_sample Queue.t;
  mutable self_recorded : int;
}

let self_capacity = 1024

let allocated_words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let point_of t =
  match t.now_ns with
  | None -> { p_ns = 0; p_words = 0.0; p_vcycles = 0 }
  | Some now ->
    {
      p_ns = now ();
      p_words = allocated_words ();
      p_vcycles = (match t.vclock with Some c -> Clock.now c | None -> 0);
    }

let create ~now_ns ?vclock ?rss_kb () =
  let t =
    {
      now_ns = Some now_ns;
      vclock;
      read_rss_kb = rss_kb;
      roots = Hashtbl.create 16;
      stack = [];
      started = { p_ns = 0; p_words = 0.0; p_vcycles = 0 };
      started_gc = Gc.counters ();
      self = Queue.create ();
      self_recorded = 0;
    }
  in
  t.started <- point_of t;
  t

let disabled =
  {
    now_ns = None;
    vclock = None;
    read_rss_kb = None;
    roots = Hashtbl.create 1;
    stack = [];
    started = { p_ns = 0; p_words = 0.0; p_vcycles = 0 };
    started_gc = (0.0, 0.0, 0.0);
    self = Queue.create ();
    self_recorded = 0;
  }

let enabled t = t.now_ns <> None
let depth t = List.length t.stack

let reset t =
  Hashtbl.reset t.roots;
  t.stack <- [];
  Queue.clear t.self;
  t.self_recorded <- 0;
  if enabled t then t.started_gc <- Gc.counters ();
  t.started <- point_of t

let child_of t name =
  let tbl = match t.stack with (n, _) :: _ -> n.children | [] -> t.roots in
  match Hashtbl.find_opt tbl name with
  | Some n -> n
  | None ->
    let n =
      {
        iname = name;
        calls = 0;
        ns = 0;
        words = 0;
        vcycles = 0;
        child_ns = 0;
        child_words = 0;
        children = Hashtbl.create 4;
      }
    in
    Hashtbl.add tbl name n;
    n

let span t name f =
  match t.now_ns with
  | None -> f ()
  | Some _ ->
    let node = child_of t name in
    let p0 = point_of t in
    t.stack <- (node, p0) :: t.stack;
    let pop () =
      match t.stack with
      | (n, s) :: rest ->
        t.stack <- rest;
        let p1 = point_of t in
        (* Clamp: a non-monotonic host clock must never attribute
           negative time. Allocation counters only grow, but clamp them
           too so a float rounding artifact cannot go negative. *)
        let d_ns = max 0 (p1.p_ns - s.p_ns) in
        let d_words = max 0 (int_of_float (p1.p_words -. s.p_words)) in
        let d_vcycles = max 0 (p1.p_vcycles - s.p_vcycles) in
        n.calls <- n.calls + 1;
        n.ns <- n.ns + d_ns;
        n.words <- n.words + d_words;
        n.vcycles <- n.vcycles + d_vcycles;
        (match rest with
        | (parent, _) :: _ ->
          parent.child_ns <- parent.child_ns + d_ns;
          parent.child_words <- parent.child_words + d_words
        | [] -> ())
      | [] -> assert false
    in
    (match f () with
    | v ->
      pop ();
      v
    | exception e ->
      (* Exception-safe, like Profile.span: the frame is popped (and its
         host cost up to the raise attributed) before the exception
         continues outward. *)
      pop ();
      raise e)

(* ---------------------------- self-gauges ---------------------------- *)

(* Sampled simulator self-state: OCaml heap occupancy, GC activity, and
   (when a reader was injected) resident set size. Callers sample at
   workload top-of-loop; the ring is bounded like every other series. *)
let sample_self t =
  match t.now_ns with
  | None -> ()
  | Some now ->
    let q = Gc.quick_stat () in
    Queue.push
      {
        at_ns = max 0 (now () - t.started.p_ns);
        heap_words = q.Gc.heap_words;
        top_heap_words = q.Gc.top_heap_words;
        minor_collections = q.Gc.minor_collections;
        major_collections = q.Gc.major_collections;
        rss_kb = (match t.read_rss_kb with Some f -> f () | None -> 0);
      }
      t.self;
    if Queue.length t.self > self_capacity then ignore (Queue.pop t.self);
    t.self_recorded <- t.self_recorded + 1

let self_samples t = List.of_seq (Queue.to_seq t.self)
let self_recorded t = t.self_recorded

(* ------------------------------ snapshot ------------------------------ *)

let rec snapshot (n : inode) =
  let children =
    Hashtbl.fold (fun _ c acc -> snapshot c :: acc) n.children []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  {
    name = n.iname;
    calls = n.calls;
    ns = n.ns;
    self_ns = max 0 (n.ns - n.child_ns);
    words = n.words;
    self_words = max 0 (n.words - n.child_words);
    vcycles = n.vcycles;
    children;
  }

let tree t =
  Hashtbl.fold (fun _ n acc -> snapshot n :: acc) t.roots []
  |> List.sort (fun a b -> String.compare a.name b.name)

let total_ns t =
  match t.now_ns with None -> 0 | Some now -> max 0 (now () - t.started.p_ns)

let total_words t =
  match t.now_ns with
  | None -> 0
  | Some _ -> max 0 (int_of_float (allocated_words () -. t.started.p_words))

let total_vcycles t =
  match t.vclock with None -> 0 | Some c -> max 0 (Clock.now c - t.started.p_vcycles)

let attributed_ns t = Hashtbl.fold (fun _ n acc -> acc + n.ns) t.roots 0
let attributed_words t = Hashtbl.fold (fun _ n acc -> acc + n.words) t.roots 0

let fraction ~part ~total = if total = 0 then 1.0 else float_of_int part /. float_of_int total
let attributed_ns_fraction t = fraction ~part:(attributed_ns t) ~total:(total_ns t)
let attributed_words_fraction t = fraction ~part:(attributed_words t) ~total:(total_words t)

let flatten t =
  let out = ref [] in
  let rec go prefix n =
    let path = if prefix = "" then n.name else prefix ^ ";" ^ n.name in
    out := (path, n) :: !out;
    List.iter (go path) n.children
  in
  List.iter (go "") (tree t);
  List.rev !out

let metric ~by (n : node) = match by with `Ns -> n.self_ns | `Words -> n.self_words

let top_paths ?(k = 10) ~by t =
  flatten t
  |> List.sort (fun (pa, a) (pb, b) ->
         let ma = metric ~by a and mb = metric ~by b in
         if ma <> mb then compare mb ma else String.compare pa pb)
  |> List.filteri (fun i _ -> i < k)

(* ------------------------------ exporters ----------------------------- *)

(* Word counters are deltas since create/reset (workload-scoped); heap
   occupancy and collection counts are current process state. *)
let gc_to_json t =
  let q = Gc.quick_stat () in
  let minor, promoted, major = Gc.counters () in
  let minor0, promoted0, major0 = t.started_gc in
  let d now started = max 0 (int_of_float (now -. started)) in
  Json.Obj
    [
      ("allocated_words", Json.Int (total_words t));
      ("minor_words", Json.Int (d minor minor0));
      ("promoted_words", Json.Int (d promoted promoted0));
      ("major_words", Json.Int (d major major0));
      ("minor_collections", Json.Int q.Gc.minor_collections);
      ("major_collections", Json.Int q.Gc.major_collections);
      ("heap_words", Json.Int q.Gc.heap_words);
      ("top_heap_words", Json.Int q.Gc.top_heap_words);
      ("compactions", Json.Int q.Gc.compactions);
    ]

let self_to_json t =
  let samples = self_samples t in
  let max_of f = List.fold_left (fun acc s -> max acc (f s)) 0 samples in
  let last f = match List.rev samples with s :: _ -> f s | [] -> 0 in
  Json.Obj
    [
      ("samples", Json.Int (self_recorded t));
      ("heap_words_max", Json.Int (max_of (fun s -> s.heap_words)));
      ("top_heap_words", Json.Int (last (fun s -> s.top_heap_words)));
      ("rss_kb_max", Json.Int (max_of (fun s -> s.rss_kb)));
      ("minor_collections", Json.Int (last (fun s -> s.minor_collections)));
      ("major_collections", Json.Int (last (fun s -> s.major_collections)));
    ]

let rec node_to_json (n : node) =
  Json.Obj
    ([
       ("calls", Json.Int n.calls);
       ("ns", Json.Int n.ns);
       ("self_ns", Json.Int n.self_ns);
       ("words", Json.Int n.words);
       ("self_words", Json.Int n.self_words);
       ("vcycles", Json.Int n.vcycles);
     ]
    @
    if n.children = [] then []
    else [ ("children", Json.Obj (List.map (fun c -> (c.name, node_to_json c)) n.children)) ])

let to_json t =
  Json.Obj
    [
      ("enabled", Json.Bool (enabled t));
      ("total_ns", Json.Int (total_ns t));
      ("attributed_ns", Json.Int (attributed_ns t));
      ("attributed_ns_fraction", Json.Float (attributed_ns_fraction t));
      ("total_words", Json.Int (total_words t));
      ("attributed_words", Json.Int (attributed_words t));
      ("attributed_words_fraction", Json.Float (attributed_words_fraction t));
      ("total_vcycles", Json.Int (total_vcycles t));
      ("gc", gc_to_json t);
      ("self", self_to_json t);
      ("tree", Json.Obj (List.map (fun n -> (n.name, node_to_json n)) (tree t)));
    ]

(* Collapsed stacks for flamegraph.pl / speedscope: one "a;b;c value"
   line per path with a non-zero self value — host nanoseconds or
   allocated words, caller's choice — plus the unattributed remainder as
   its own explicit root. *)
let to_collapsed ?(by = `Ns) t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, n) ->
      let v = metric ~by n in
      if v > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" path v))
    (flatten t);
  let rest =
    match by with
    | `Ns -> max 0 (total_ns t - attributed_ns t)
    | `Words -> max 0 (total_words t - attributed_words t)
  in
  if rest > 0 then Buffer.add_string buf (Printf.sprintf "(unattributed) %d\n" rest);
  Buffer.contents buf

let ns_per_vcycle ~ns ~vcycles =
  if vcycles <= 0 then 0.0 else float_of_int ns /. float_of_int vcycles

let pp ppf t =
  Format.fprintf ppf
    "@[<v>hostprof: %d ns total (%.1f%% attributed), %d words allocated (%.1f%% attributed)@,"
    (total_ns t)
    (100.0 *. attributed_ns_fraction t)
    (total_words t)
    (100.0 *. attributed_words_fraction t);
  let rec go indent (n : node) =
    Format.fprintf ppf "%s%-*s calls=%-8d self_ns=%-12d self_words=%-10d ns/vcycle=%.1f@," indent
      (max 1 (28 - String.length indent))
      n.name n.calls n.self_ns n.self_words
      (ns_per_vcycle ~ns:n.ns ~vcycles:n.vcycles);
    List.iter (go (indent ^ "  ")) n.children
  in
  List.iter (go "") (tree t);
  Format.fprintf ppf "@]"
