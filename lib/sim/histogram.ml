(* 63 power-of-two buckets: bucket k counts samples in [2^(k-1), 2^k), with
   bucket 0 holding zero-valued samples. *)
type t = {
  buckets : int array;
  mutable count : int;
  mutable total : int;
  mutable sq : float; (* sum of squared samples, for stddev *)
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make 63 0; count = 0; total = 0; sq = 0.0; min_v = max_int; max_v = 0 }

let bucket_of v = if v <= 0 then 0 else 1 + Units.log2_floor v

let observe t v =
  if v < 0 then invalid_arg "Histogram.observe: negative sample";
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.total <- t.total + v;
  t.sq <- t.sq +. (float_of_int v *. float_of_int v);
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v

let stddev t =
  if t.count = 0 then 0.0
  else
    let n = float_of_int t.count in
    let m = mean t in
    (* population stddev; max guards the tiny negative from float rounding *)
    sqrt (max 0.0 ((t.sq /. n) -. (m *. m)))

let percentile t p =
  assert (p >= 0.0 && p <= 100.0);
  if t.count = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = max 1 rank in
    let rec loop b seen =
      if b >= Array.length t.buckets then t.max_v
      else
        let seen = seen + t.buckets.(b) in
        if seen >= rank then if b = 0 then 0 else 1 lsl b else loop (b + 1) seen
    in
    (* The bucket upper bound is exclusive, so clamp into the range of values
       actually observed — otherwise p100 can overshoot max_v by up to 2x. *)
    min (max (loop 0 0) (min_value t)) (max_value t)

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("total", Json.Int t.total);
      ("mean", Json.Float (mean t));
      ("stddev", Json.Float (stddev t));
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("p50", Json.Int (percentile t 50.0));
      ("p90", Json.Int (percentile t 90.0));
      ("p99", Json.Int (percentile t 99.0));
    ]

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f min=%d p50=%d p99=%d max=%d" t.count (mean t) (min_value t)
    (percentile t 50.0) (percentile t 99.0) (max_value t)
