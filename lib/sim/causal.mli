(** Cross-core causal tracing and critical-path makespan attribution.

    A [Causal.t] collects a causal event graph over the virtual clock:
    nodes are cross-core interaction points (IPI send/deliver/ack,
    migrations, scheduler placements, remote NUMA references, reclaim
    wakeups) and edges are the happens-before arrows between them.
    Alongside the graph it accumulates per-core cycle shares (IPI-wait,
    scheduler, remote-NUMA) against per-core busy totals, a per-core-pair
    IPI latency histogram, and a NUMA node-pair traffic matrix.

    Components reach the plane through their trace handle
    ([Sim.Trace.causal trace]), the same attachment pattern as
    {!Profile} and {!Fault_inject}: the {!disabled} sentinel makes every
    emission a cheap no-op, and nothing here ever charges the clock. *)

type node = {
  id : int;  (** emission order; doubles as the graph vertex id *)
  core : int;  (** emitting core; negative = off-core service point *)
  cycle : int;  (** virtual cycle at emission *)
  op : string;  (** e.g. "ipi_send", "migrate_in", "numa_req" *)
  detail : string;  (** free-form qualifier, "" if none *)
}

type edge = { src : int; dst : int; kind : string }

type share = Ipi_wait | Sched | Numa_remote

val share_name : share -> string
(** "ipi_wait", "sched", "numa_remote". *)

val all_shares : share list

type t

val create : clock:Clock.t -> unit -> t
val disabled : t
val enabled : t -> bool
val reset : t -> unit

val emit : t -> core:int -> op:string -> ?detail:string -> unit -> int
(** Add a node stamped with the current cycle; returns its id, or [-1]
    on {!disabled} (safe to pass straight to {!link}). *)

val link : t -> src:int -> dst:int -> kind:string -> unit
(** Add a happens-before edge between two node ids. Negative ids (from
    {!emit} on a disabled plane) are silently ignored. *)

val add_busy : t -> core:int -> cycles:int -> unit
(** Credit busy cycles to a core; the makespan is the max over cores. *)

val attribute : t -> core:int -> share:share -> cycles:int -> unit
(** Carve [cycles] of a core's busy time out into a named share. *)

val observe_ipi : t -> src:int -> dst:int -> cycles:int -> unit
(** Feed the per-core-pair IPI latency histogram. *)

val record_numa : t -> src_node:int -> dst_node:int -> lines:int -> unit
(** Feed the NUMA node-pair traffic matrix (units: cache lines). *)

val node_count : t -> int
val edge_count : t -> int

val nodes : t -> node list
(** All nodes, in emission (= id) order. *)

val edges : t -> edge list
(** All edges, in emission order. *)

(** {2 Makespan decomposition} *)

type breakdown = {
  bd_core : int;
  bd_busy : int;  (** total busy cycles credited to the core *)
  work : int;  (** busy minus the named shares, clamped at 0 *)
  ipi_wait : int;
  sched : int;
  numa_remote : int;
}

val breakdown_of : t -> core:int -> breakdown
val breakdowns : t -> breakdown list
(** Per-core decompositions, sorted by core id. *)

val busy_of : t -> core:int -> int
val share_of : t -> core:int -> share -> int

val makespan : t -> int
(** Max busy cycles over all cores. *)

val makespan_core : t -> breakdown option
(** The breakdown of the core defining the makespan. *)

val attributed_fraction : t -> float
(** Fraction of the makespan core's busy cycles covered by named shares
    (work included); 1.0 when nothing was recorded. The T1 gate asserts
    this stays >= 0.95, mirroring the profile-attribution gate. *)

(** {2 Critical path} *)

type chain = {
  hops : int;  (** nodes on the longest dependent chain *)
  cycles : int;  (** cycle span from first to last node on the chain *)
  path : node list;  (** the chain itself, oldest first *)
}

val critical_path : t -> chain
(** Longest dependent chain through the graph: explicit edges plus
    implicit same-core program order (two nodes on one core are
    serialized by that core; off-core nodes with [core < 0] only chain
    through explicit edges). Ties prefer longer cycle spans. *)

(** {2 Export} *)

val chrome_events : t -> Json.t list
(** Chrome trace-event fragments: each node as a zero-duration complete
    event on its core's track, each edge as an s/f flow-event pair
    (drawn as arrows in chrome://tracing / Perfetto). *)

val to_json : ?nodes_limit:int -> t -> Json.t
(** Counts, per-core breakdowns, makespan, attributed fraction, the
    critical path summary, IPI latency histograms keyed "src->dst", the
    NUMA traffic matrix, and the node/edge lists (newest [nodes_limit]
    nodes, default all). *)

val pp : Format.formatter -> t -> unit
