(** Named event counters.

    Each simulated component owns a [Stats.t] and bumps counters such as
    "tlb_miss" or "minor_fault"; experiments snapshot and diff them. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one (creating it at 0 first if needed). *)

val add : t -> string -> int -> unit
(** Add [n] to a counter. *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val reset : t -> unit
(** Zero every counter. *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter difference [after - before], dropping zero entries. *)

val to_json : t -> Json.t
(** All counters as one JSON object, keys sorted by name. *)

val pp : Format.formatter -> t -> unit
