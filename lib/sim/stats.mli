(** Named event counters and gauges.

    Each simulated component owns (or shares) a [Stats.t]. Counters such
    as "tlb_miss" or "minor_fault" only go up between resets; experiments
    snapshot and diff them. Gauges track a current level — resident pages,
    zero-cache depth, TLB occupancy, WAL bytes — with a high watermark,
    and can be sampled periodically against the virtual clock into a
    bounded time series. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one (creating it at 0 first if needed). *)

val add : t -> string -> int -> unit
(** Add [n] to a counter. *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val reset : t -> unit
(** Zero every counter and gauge (values, watermarks, and series). *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter difference [after - before], dropping zero entries. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> int -> unit
(** Set a gauge to an absolute level (creating it at 0 first if needed).
    Updates the high watermark. *)

val add_gauge : t -> string -> int -> unit
(** Adjust a gauge by a delta. Components that share one machine-wide
    [Stats.t] (e.g. per-process TLBs) use deltas so the gauge reads as an
    aggregate occupancy. *)

val gauge : t -> string -> int
(** Current level; 0 for a gauge never touched. *)

val gauge_hwm : t -> string -> int
(** Highest level the gauge ever reached (since creation or {!reset}). *)

val gauges : t -> (string * int * int) list
(** All gauges as [(name, value, hwm)], sorted by name. *)

val set_sample_interval : t -> cycles:int -> unit
(** Sample every gauge into its time series whenever {!sample} observes
    the clock having advanced [cycles] past the previous sample point.
    [cycles = 0] (the default) disables sampling. Raises
    [Invalid_argument] on a negative interval. *)

val sample : t -> now:int -> unit
(** Record a time-series point for every gauge if the sampling interval
    has elapsed; cheap no-op otherwise. Hot paths (syscall entry, fault
    handling) call this with [Clock.now]. Each series is bounded (1024
    points); older points fall off the front. *)

val series : t -> string -> (int * int) list
(** Sampled [(cycle, value)] points for one gauge, oldest first. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** All counters as one flat JSON object, keys sorted by name. Gauges are
    deliberately excluded — regression diffing compares this object
    numerically — and exported via {!gauges_to_json} instead. *)

val gauges_to_json : t -> Json.t
(** All gauges as one JSON object: [{name: {value, hwm, samples}}]. *)

val pp : Format.formatter -> t -> unit
