(* Cross-core causal tracing over the virtual clock.

   The plane collects three things, all fed by components that already
   hold a trace handle (the same attachment pattern as Profile and
   Fault_inject):

   - a causal event graph: nodes are cross-core interaction points
     (IPI send/deliver/ack, migrations, scheduler placements, remote
     NUMA references, reclaim wakeups), edges are the explicit
     happens-before arrows between them;
   - per-core cycle shares (IPI-wait / scheduler / remote-NUMA) plus
     per-core busy cycles, from which the critical-path engine
     decomposes the makespan;
   - telemetry matrices: a per-core-pair IPI latency histogram and a
     NUMA node-pair traffic matrix.

   The critical-path engine treats same-core program order as an
   implicit edge (two nodes on one core are serialized by that core),
   so the longest dependent chain through a per-page shootdown grows
   with the page count while a batched shootdown's stays constant —
   the O(1) claim, machine-checkable on the graph alone.

   Like Trace/Profile, the [disabled] sentinel makes every emission a
   single-branch no-op, and nothing here ever charges the clock. *)

type node = { id : int; core : int; cycle : int; op : string; detail : string }
type edge = { src : int; dst : int; kind : string }
type share = Ipi_wait | Sched | Numa_remote

let share_name = function
  | Ipi_wait -> "ipi_wait"
  | Sched -> "sched"
  | Numa_remote -> "numa_remote"

let all_shares = [ Ipi_wait; Sched; Numa_remote ]

type t = {
  clock : Clock.t option; (* None = disabled sentinel *)
  mutable nodes : node list; (* newest first *)
  mutable n_nodes : int;
  mutable edges : edge list; (* newest first *)
  mutable n_edges : int;
  busy : (int, int ref) Hashtbl.t; (* core -> cycles attributed *)
  shares : (int * string, int ref) Hashtbl.t; (* (core, share) -> cycles *)
  ipi_latency : (int * int, Histogram.t) Hashtbl.t; (* (src, dst) core pair *)
  numa_traffic : (int * int, int ref) Hashtbl.t; (* (src, dst) node pair -> lines *)
}

let create ~clock () =
  {
    clock = Some clock;
    nodes = [];
    n_nodes = 0;
    edges = [];
    n_edges = 0;
    busy = Hashtbl.create 8;
    shares = Hashtbl.create 16;
    ipi_latency = Hashtbl.create 8;
    numa_traffic = Hashtbl.create 4;
  }

let disabled =
  {
    clock = None;
    nodes = [];
    n_nodes = 0;
    edges = [];
    n_edges = 0;
    busy = Hashtbl.create 1;
    shares = Hashtbl.create 1;
    ipi_latency = Hashtbl.create 1;
    numa_traffic = Hashtbl.create 1;
  }

let enabled t = t.clock <> None
let node_count t = t.n_nodes
let edge_count t = t.n_edges
let nodes t = List.rev t.nodes
let edges t = List.rev t.edges

let reset t =
  t.nodes <- [];
  t.n_nodes <- 0;
  t.edges <- [];
  t.n_edges <- 0;
  Hashtbl.reset t.busy;
  Hashtbl.reset t.shares;
  Hashtbl.reset t.ipi_latency;
  Hashtbl.reset t.numa_traffic

(* ------------------------------ emission ------------------------------ *)

let emit t ~core ~op ?(detail = "") () =
  match t.clock with
  | None -> -1
  | Some clock ->
    let id = t.n_nodes in
    t.nodes <- { id; core; cycle = Clock.now clock; op; detail } :: t.nodes;
    t.n_nodes <- id + 1;
    id

let link t ~src ~dst ~kind =
  match t.clock with
  | None -> ()
  | Some _ ->
    if src >= 0 && dst >= 0 then begin
      t.edges <- { src; dst; kind } :: t.edges;
      t.n_edges <- t.n_edges + 1
    end

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let add_busy t ~core ~cycles =
  match t.clock with
  | None -> ()
  | Some _ -> cell t.busy core := !(cell t.busy core) + cycles

let attribute t ~core ~share ~cycles =
  match t.clock with
  | None -> ()
  | Some _ ->
    let r = cell t.shares (core, share_name share) in
    r := !r + cycles

let observe_ipi t ~src ~dst ~cycles =
  match t.clock with
  | None -> ()
  | Some _ ->
    let h =
      match Hashtbl.find_opt t.ipi_latency (src, dst) with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.add t.ipi_latency (src, dst) h;
        h
    in
    Histogram.observe h (max 0 cycles)

let record_numa t ~src_node ~dst_node ~lines =
  match t.clock with
  | None -> ()
  | Some _ -> cell t.numa_traffic (src_node, dst_node) := !(cell t.numa_traffic (src_node, dst_node)) + lines

(* --------------------------- attribution ---------------------------- *)

type breakdown = {
  bd_core : int;
  bd_busy : int;
  work : int;
  ipi_wait : int;
  sched : int;
  numa_remote : int;
}

let share_of t ~core share =
  match Hashtbl.find_opt t.shares (core, share_name share) with Some r -> !r | None -> 0

let busy_of t ~core = match Hashtbl.find_opt t.busy core with Some r -> !r | None -> 0

let breakdown_of t ~core =
  let busy = busy_of t ~core in
  let ipi = share_of t ~core Ipi_wait in
  let sched = share_of t ~core Sched in
  let numa = share_of t ~core Numa_remote in
  (* Work is the remainder of the core's busy cycles once the explicit
     cross-core shares are carved out; a negative remainder (shares
     charged outside any busy attribution) is clamped and shows up as
     attributed_fraction < 1. *)
  {
    bd_core = core;
    bd_busy = busy;
    work = max 0 (busy - ipi - sched - numa);
    ipi_wait = ipi;
    sched;
    numa_remote = numa;
  }

let cores_seen t =
  let set = Hashtbl.create 8 in
  Hashtbl.iter (fun c _ -> Hashtbl.replace set c ()) t.busy;
  Hashtbl.iter (fun (c, _) _ -> if c >= 0 then Hashtbl.replace set c ()) t.shares;
  Hashtbl.fold (fun c () acc -> c :: acc) set [] |> List.sort compare

let breakdowns t = List.map (fun core -> breakdown_of t ~core) (cores_seen t)

let makespan t = List.fold_left (fun acc b -> max acc b.bd_busy) 0 (breakdowns t)

let makespan_core t =
  List.fold_left
    (fun best b -> match best with Some m when m.bd_busy >= b.bd_busy -> best | _ -> Some b)
    None (breakdowns t)

(* Fraction of the makespan core's busy cycles landing in a named share
   (work included). By construction this is 1.0 unless some share was
   charged outside busy attribution — the T1 gate mirrors PR 4's
   profile-attribution gate. *)
let attributed_fraction t =
  match makespan_core t with
  | None -> 1.0
  | Some b ->
    if b.bd_busy = 0 then 1.0
    else
      float_of_int (min b.bd_busy (b.work + b.ipi_wait + b.sched + b.numa_remote))
      /. float_of_int b.bd_busy

(* ------------------------ critical-path engine ------------------------ *)

type chain = { hops : int; cycles : int; path : node list }

(* Longest dependent chain: DP over nodes in id order (ids are emission
   order, and every edge points forward in time), following explicit
   edges plus implicit same-core program order. Nodes with a negative
   core (off-core service points, e.g. a remote NUMA node) take part in
   explicit edges but are not program-order chained. *)
let critical_path t =
  let ns = Array.of_list (nodes t) in
  let n = Array.length ns in
  if n = 0 then { hops = 0; cycles = 0; path = [] }
  else begin
    let incoming = Hashtbl.create (max 16 t.n_edges) in
    List.iter (fun e -> if e.dst < n then Hashtbl.add incoming e.dst e.src) t.edges;
    let best_len = Array.make n 1 in
    let best_pred = Array.make n (-1) in
    let start_cycle = Array.make n 0 in
    let last_on_core = Hashtbl.create 8 in
    for i = 0 to n - 1 do
      start_cycle.(i) <- ns.(i).cycle;
      let consider p =
        if p >= 0 && p < i then begin
          let len = best_len.(p) + 1 in
          if
            len > best_len.(i)
            || (len = best_len.(i) && start_cycle.(p) < start_cycle.(i))
          then begin
            best_len.(i) <- len;
            best_pred.(i) <- p;
            start_cycle.(i) <- start_cycle.(p)
          end
        end
      in
      List.iter consider (Hashtbl.find_all incoming i);
      if ns.(i).core >= 0 then begin
        (match Hashtbl.find_opt last_on_core ns.(i).core with
        | Some p -> consider p
        | None -> ());
        Hashtbl.replace last_on_core ns.(i).core i
      end
    done;
    let tail = ref 0 in
    for i = 1 to n - 1 do
      let better =
        best_len.(i) > best_len.(!tail)
        || (best_len.(i) = best_len.(!tail)
           && ns.(i).cycle - start_cycle.(i) > ns.(!tail).cycle - start_cycle.(!tail))
      in
      if better then tail := i
    done;
    let rec walk i acc = if i < 0 then acc else walk best_pred.(i) (ns.(i) :: acc) in
    {
      hops = best_len.(!tail);
      cycles = ns.(!tail).cycle - start_cycle.(!tail);
      path = walk !tail [];
    }
  end

(* ------------------------------ export ------------------------------- *)

let pair_key a b = Printf.sprintf "%d->%d" a b

let sorted_pairs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun ((a, b), _) ((c, d), _) -> compare (a, b) (c, d))

let ipi_latency_to_json t =
  Json.Obj
    (List.map
       (fun ((src, dst), h) -> (pair_key src dst, Histogram.to_json h))
       (sorted_pairs t.ipi_latency))

let numa_traffic_to_json t =
  Json.Obj
    (List.map (fun ((s, d), r) -> (pair_key s d, Json.Int !r)) (sorted_pairs t.numa_traffic))

let breakdown_to_json b =
  Json.Obj
    [
      ("busy", Json.Int b.bd_busy);
      ("work", Json.Int b.work);
      ("ipi_wait", Json.Int b.ipi_wait);
      ("sched", Json.Int b.sched);
      ("numa_remote", Json.Int b.numa_remote);
    ]

let node_to_json nd =
  Json.Obj
    ([ ("id", Json.Int nd.id); ("core", Json.Int nd.core); ("cycle", Json.Int nd.cycle);
       ("op", Json.String nd.op) ]
    @ if nd.detail = "" then [] else [ ("detail", Json.String nd.detail) ])

let to_json ?(nodes_limit = max_int) t =
  let cp = critical_path t in
  let ns = nodes t in
  let kept = if t.n_nodes <= nodes_limit then ns else List.filteri (fun i _ -> i >= t.n_nodes - nodes_limit) ns in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled t));
      ("nodes", Json.Int t.n_nodes);
      ("edges", Json.Int t.n_edges);
      ( "per_core",
        Json.Obj
          (List.map (fun b -> (Printf.sprintf "core%d" b.bd_core, breakdown_to_json b)) (breakdowns t))
      );
      ("makespan_cycles", Json.Int (makespan t));
      ("attributed_fraction", Json.Float (attributed_fraction t));
      ( "critical_path",
        Json.Obj [ ("hops", Json.Int cp.hops); ("cycles", Json.Int cp.cycles) ] );
      ("ipi_latency", ipi_latency_to_json t);
      ("numa_traffic", numa_traffic_to_json t);
      ("events", Json.List (List.map node_to_json kept));
      ( "links",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [ ("src", Json.Int e.src); ("dst", Json.Int e.dst); ("kind", Json.String e.kind) ])
             (edges t)) );
    ]

(* Chrome trace-event fragments: every causal node as a zero-duration
   complete event on its core's track (negative cores land on track
   1000-core, keeping off-core service points visible but separate), and
   every causal edge as a flow-event s/f pair (chrome://tracing and
   Perfetto draw these as arrows between tracks). *)
let chrome_tid core = if core >= 0 then core else 1000 - core

let chrome_events t =
  let node_ev nd =
    Json.Obj
      [
        ("name", Json.String nd.op);
        ("cat", Json.String "causal");
        ("ph", Json.String "X");
        ("ts", Json.Int nd.cycle);
        ("dur", Json.Int 0);
        ("pid", Json.Int 1);
        ("tid", Json.Int (chrome_tid nd.core));
        ( "args",
          Json.Obj
            (( "node", Json.Int nd.id)
            :: (if nd.detail = "" then [] else [ ("detail", Json.String nd.detail) ])) );
      ]
  in
  let ns = Array.of_list (nodes t) in
  let flow i (e : edge) =
    if e.src >= Array.length ns || e.dst >= Array.length ns then []
    else
      let s = ns.(e.src) and d = ns.(e.dst) in
      [
        Json.Obj
          [
            ("name", Json.String e.kind);
            ("cat", Json.String "flow");
            ("ph", Json.String "s");
            ("id", Json.Int i);
            ("ts", Json.Int s.cycle);
            ("pid", Json.Int 1);
            ("tid", Json.Int (chrome_tid s.core));
          ];
        Json.Obj
          [
            ("name", Json.String e.kind);
            ("cat", Json.String "flow");
            ("ph", Json.String "f");
            ("bp", Json.String "e");
            ("id", Json.Int i);
            ("ts", Json.Int d.cycle);
            ("pid", Json.Int 1);
            ("tid", Json.Int (chrome_tid d.core));
          ];
      ]
  in
  List.map node_ev (nodes t) @ List.concat (List.mapi flow (edges t))

let pp ppf t =
  let cp = critical_path t in
  Format.fprintf ppf "@[<v>causal: %d nodes, %d edges, makespan %d cycles@," t.n_nodes t.n_edges
    (makespan t);
  List.iter
    (fun b ->
      Format.fprintf ppf "core%d: busy=%d work=%d ipi_wait=%d sched=%d numa_remote=%d@," b.bd_core
        b.bd_busy b.work b.ipi_wait b.sched b.numa_remote)
    (breakdowns t);
  Format.fprintf ppf "critical path: %d hops over %d cycles@," cp.hops cp.cycles;
  Format.fprintf ppf "@]"
