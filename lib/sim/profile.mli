(** Nested-span cycle-attribution profiler over the virtual clock.

    {!span} pushes a frame on a per-simulation stack, runs its function,
    and pops the frame — exception-safe, like {!Trace.span}. Every cycle
    charged to the clock while the stack is non-empty is attributed to
    the innermost span's path, producing a call tree with call counts,
    cumulative and self cycles per node, plus a bounded ring of raw span
    events for timeline export.

    The profiler never charges the clock: a profiled run spends exactly
    the same simulated cycles as an unprofiled one. Components reach the
    machine's profiler through their {!Trace.t}
    (see {!Trace.profile}); the {!disabled} sentinel makes every
    operation a no-op, so instrumentation needs no optional plumbing. *)

type node = {
  name : string;
  calls : int;  (** completed spans at this path *)
  cum : int;  (** cycles charged while this span (or a child) was innermost *)
  self : int;  (** [cum] minus the children's cumulative cycles *)
  children : node list;  (** sorted by name *)
}

type t

val create : clock:Clock.t -> ?events_capacity:int -> unit -> t
(** A live profiler reading the given clock. Cycles charged before
    creation are outside its scope. [events_capacity] (default 8192)
    bounds the span-event ring used by {!to_chrome_json}; the call tree
    is exact regardless. Raises [Invalid_argument] if
    [events_capacity <= 0]. *)

val disabled : t
(** Shared no-op sentinel: {!span} just runs its function. *)

val enabled : t -> bool

val depth : t -> int
(** Current span-stack depth (0 when idle). *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span named [name]. Cycles charged
    during [f] accrue to the span (and, transitively, its ancestors). If
    [f] raises, the frame is popped and the cycles up to the raise are
    still attributed before the exception propagates. On {!disabled} it
    just runs [f]. *)

val reset : t -> unit
(** Drop the tree and events and restart attribution at the current
    cycle. The stack must be empty (spans in flight are discarded). *)

(** {1 Results} *)

val tree : t -> node list
(** Call-tree roots, sorted by name. *)

val flatten : t -> (string * int * int * int) list
(** Every node as [(";"-joined path, calls, self, cum)], DFS order. *)

val top_spans : ?k:int -> t -> (string * int * int * int) list
(** The [k] (default 10) paths with the most self cycles, descending. *)

val total_cycles : t -> int
(** Cycles the clock advanced since the profiler was created/reset. *)

val attributed_cycles : t -> int
(** Cycles covered by completed root spans. *)

val unattributed_cycles : t -> int
(** [total_cycles - attributed_cycles], floored at 0: cycles charged
    while no span was active. *)

val attributed_fraction : t -> float
(** Attributed / total; 1.0 when no cycles were charged. *)

val events_recorded : t -> int
val events_dropped : t -> int

(** {1 Exporters} *)

val to_json : t -> Json.t
(** Attribution summary plus the full call tree (deterministic). *)

val to_chrome_json : t -> Json.t
(** Chrome trace-event JSON (chrome://tracing, Perfetto, speedscope):
    complete events on one thread, virtual cycles as microseconds. *)

val to_collapsed : t -> string
(** Collapsed-stack text for flamegraph.pl / speedscope: one
    ["a;b;c self-cycles"] line per path, plus an explicit
    ["(unattributed)"] line for cycles outside any span. *)

val pp : Format.formatter -> t -> unit
(** Human-readable tree with the attribution summary. *)
