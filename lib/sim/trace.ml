(* Structured tracing: a bounded ring of events plus per-operation latency
   histograms, all in virtual cycles. The [disabled] sentinel lets components
   default a [trace] field to a shared no-op without optional plumbing. *)

type event = {
  seq : int;
  op : string;
  core : int;
  start : int;
  finish : int;
  arg : int;
  outcome : string;
}

type t = {
  clock : Clock.t option; (* None = disabled sentinel *)
  ring : event option array;
  mutable recorded : int; (* total events ever recorded, ring or not *)
  latencies : (string, Histogram.t) Hashtbl.t;
  mutable profile : Profile.t; (* cycle-attribution profiler, if attached *)
  mutable hostprof : Hostprof.t; (* host-cost attribution plane, if attached *)
  mutable faults : Fault_inject.t; (* fault-injection plane, if attached *)
  mutable causal : Causal.t; (* cross-core causal plane, if attached *)
  mutable cur_core : int; (* core executing right now, for event stamping *)
}

let default_capacity = 4096

let create ~clock ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    clock = Some clock;
    ring = Array.make capacity None;
    recorded = 0;
    latencies = Hashtbl.create 32;
    profile = Profile.disabled;
    hostprof = Hostprof.disabled;
    faults = Fault_inject.disabled;
    causal = Causal.disabled;
    cur_core = 0;
  }

let disabled =
  {
    clock = None;
    ring = [||];
    recorded = 0;
    latencies = Hashtbl.create 1;
    profile = Profile.disabled;
    hostprof = Hostprof.disabled;
    faults = Fault_inject.disabled;
    causal = Causal.disabled;
    cur_core = 0;
  }

let enabled t = t.clock <> None

let profile t = t.profile

let attach_profile t p =
  if not (enabled t) then invalid_arg "Trace.attach_profile: disabled trace";
  t.profile <- p

let hostprof t = t.hostprof

let attach_hostprof t h =
  if not (enabled t) then invalid_arg "Trace.attach_hostprof: disabled trace";
  t.hostprof <- h

(* The one span combinator every instrumented hot path uses: the same
   name feeds both attribution planes, so virtual-cycle and host-cost
   call trees share their paths. Hostprof wraps Profile so the (host)
   cost of virtual attribution itself is measured, not hidden. Both
   sentinels reduce this to running [f]. *)
let prof_span t name f = Hostprof.span t.hostprof name (fun () -> Profile.span t.profile name f)

let faults t = t.faults
let causal t = t.causal

let attach_causal t c =
  if not (enabled t) then invalid_arg "Trace.attach_causal: disabled trace";
  t.causal <- c

let current_core t = t.cur_core

(* Guarded so the shared [disabled] sentinel never accumulates state
   across unrelated components. *)
let set_core t core = if enabled t then t.cur_core <- core

let capacity t = Array.length t.ring
let recorded t = t.recorded
let dropped t = max 0 (t.recorded - Array.length t.ring)

let latency_for t op =
  match Hashtbl.find_opt t.latencies op with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.latencies op h;
    h

let record t ~op ~start ?(arg = 0) ?(outcome = "ok") ?core () =
  match t.clock with
  | None -> ()
  | Some clock ->
    let finish = Clock.now clock in
    let core = match core with Some c -> c | None -> t.cur_core in
    t.ring.(t.recorded mod Array.length t.ring) <-
      Some { seq = t.recorded; op; core; start; finish; arg; outcome };
    t.recorded <- t.recorded + 1;
    Histogram.observe (latency_for t op) (max 0 (finish - start))

let attach_faults t f =
  if not (enabled t) then invalid_arg "Trace.attach_faults: disabled trace";
  t.faults <- f;
  (* Every injection shows up as a zero-length "fault_inject" event whose
     outcome names the site. *)
  Fault_inject.set_reporter f (fun site ->
      match t.clock with
      | None -> ()
      | Some clock -> record t ~op:"fault_inject" ~start:(Clock.now clock) ~outcome:site ())

let span t ~op ?(arg = 0) ?outcome f =
  match t.clock with
  | None -> f ()
  | Some clock -> (
    let start = Clock.now clock in
    match f () with
    | v ->
      let outcome = match outcome with Some g -> g v | None -> "ok" in
      record t ~op ~start ~arg ~outcome ();
      v
    | exception e ->
      record t ~op ~start ~arg ~outcome:"raised" ();
      raise e)

let events t =
  let cap = Array.length t.ring in
  if cap = 0 || t.recorded = 0 then []
  else begin
    let kept = min t.recorded cap in
    let first = t.recorded - kept in
    (* oldest retained event first *)
    List.init kept (fun i ->
        match t.ring.((first + i) mod cap) with
        | Some e -> e
        | None -> assert false)
  end

let latency t op = Hashtbl.find_opt t.latencies op

let ops t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.latencies []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.recorded <- 0;
  Hashtbl.reset t.latencies

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("op", Json.String e.op);
      ("core", Json.Int e.core);
      ("start", Json.Int e.start);
      ("end", Json.Int e.finish);
      ("arg", Json.Int e.arg);
      ("outcome", Json.String e.outcome);
    ]

let to_json ?(events_limit = max_int) t =
  let evs = events t in
  let total = List.length evs in
  (* Retained ring events per op: [recorded - in_ring] is how many of an
     op's events wraparound evicted, making dropped-event skew visible
     per operation instead of only in the global [dropped] count. *)
  let in_ring = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace in_ring e.op (1 + Option.value (Hashtbl.find_opt in_ring e.op) ~default:0))
    evs;
  let op_summary k h =
    let hist = match Histogram.to_json h with Json.Obj fields -> fields | other -> [ ("histogram", other) ] in
    Json.Obj
      (hist
      @ [
          ("recorded", Json.Int (Histogram.count h));
          ("in_ring", Json.Int (Option.value (Hashtbl.find_opt in_ring k) ~default:0));
        ])
  in
  let evs =
    if total <= events_limit then evs
    else (* keep the newest [events_limit] events *)
      List.filteri (fun i _ -> i >= total - events_limit) evs
  in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled t));
      ("capacity", Json.Int (capacity t));
      ("recorded", Json.Int t.recorded);
      ("dropped", Json.Int (dropped t));
      ("ops", Json.Obj (List.map (fun (k, h) -> (k, op_summary k h)) (ops t)));
      ("events", Json.List (List.map event_to_json evs));
    ]

(* Chrome trace-event fragments: each retained event as a complete ("X")
   slice on its core's track. Ordering is deterministic even for
   zero-cost ops stamping the same cycle: the monotonic sequence number
   breaks start-cycle ties. *)
let chrome_events t =
  events t
  |> List.sort (fun a b -> compare (a.start, a.seq) (b.start, b.seq))
  |> List.map (fun e ->
         Json.Obj
           [
             ("name", Json.String e.op);
             ("cat", Json.String "trace");
             ("ph", Json.String "X");
             ("ts", Json.Int e.start);
             ("dur", Json.Int (max 0 (e.finish - e.start)));
             ("pid", Json.Int 1);
             ("tid", Json.Int (max 0 e.core));
             ( "args",
               Json.Obj
                 [
                   ("seq", Json.Int e.seq);
                   ("arg", Json.Int e.arg);
                   ("outcome", Json.String e.outcome);
                 ] );
           ])

let pp ppf t =
  Format.fprintf ppf "@[<v>trace: %d recorded, %d dropped (capacity %d)@," t.recorded (dropped t)
    (capacity t);
  List.iter (fun (op, h) -> Format.fprintf ppf "%-24s %a@," op Histogram.pp h) (ops t);
  Format.fprintf ppf "@]"
