(** Host-side cost attribution: what the host pays to run the simulator.

    A [Hostprof.t] mirrors {!Profile}'s nested-span call tree, but the
    metrics are host-side: monotonic host nanoseconds and GC
    allocated-words deltas ([Gc.counters]: minor + major - promoted) per
    span, plus the virtual cycles spent under each path so readers get a
    host-ns-per-simulated-cycle ratio. It never reads or charges the
    virtual clock, so attaching one costs zero simulated cycles
    (test-asserted, like Profile and Causal).

    The host time source is injected at {!create}: the sim library stays
    dependency-free, tests drive deterministic fake clocks, and the bench
    layer passes a real monotonic clock. Nanosecond deltas are clamped
    non-negative; allocated-words deltas are deterministic for a fixed
    binary and workload — which is why bench-diff can gate on words but
    only report nanoseconds.

    Components reach a hostprof through {!Trace.prof_span}; the
    {!disabled} sentinel makes every operation a no-op. *)

type node = {
  name : string;
  calls : int;
  ns : int;  (** cumulative host nanoseconds under this path *)
  self_ns : int;  (** [ns] minus children's — time spent in this span itself *)
  words : int;  (** cumulative allocated words under this path *)
  self_words : int;
  vcycles : int;  (** cumulative virtual cycles under this path *)
  children : node list;  (** sorted by name *)
}

type self_sample = {
  at_ns : int;  (** host ns since create/reset *)
  heap_words : int;
  top_heap_words : int;
  minor_collections : int;
  major_collections : int;
  rss_kb : int;  (** 0 unless an RSS reader was injected *)
}

type t

val create : now_ns:(unit -> int) -> ?vclock:Clock.t -> ?rss_kb:(unit -> int) -> unit -> t
(** A live host profiler reading host time from [now_ns] (monotonic
    nanoseconds preferred; non-monotonic sources are safe but lose
    precision to clamping). [vclock] enables per-path virtual-cycle
    accumulation (the ns-per-cycle denominator); [rss_kb] supplies
    resident-set readings for {!sample_self}. *)

val disabled : t
(** Shared no-op sentinel: {!span} just runs its function. *)

val enabled : t -> bool
val depth : t -> int
val reset : t -> unit

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], attributing its host-ns, allocated-words
    and virtual-cycle deltas to the call-tree path named by the current
    nesting. Exception-safe: a raise pops the frame (attributing cost up
    to the raise) before continuing outward. On {!disabled}, just [f ()].

    Bookkeeping itself allocates a small constant number of words per
    call (measurement points and stack frames), attributed to the
    enclosing span — visible, deterministic, and discountable via the
    exported call counts. *)

val sample_self : t -> unit
(** Record one simulator self-gauge sample (OCaml heap words, GC
    collection counts, RSS if a reader was injected) into a bounded
    series. Callers sample at workload top-of-loop. No-op on
    {!disabled}. *)

val self_samples : t -> self_sample list
(** Retained self-gauge samples, oldest first (bounded; oldest dropped). *)

val self_recorded : t -> int

val tree : t -> node list
(** Call-tree roots, sorted by name. *)

val flatten : t -> (string * node) list
(** Depth-first paths ["a;b;c"] with their nodes, DFS order. *)

val top_paths : ?k:int -> by:[ `Ns | `Words ] -> t -> (string * node) list
(** The [k] (default 10) hottest paths by self host-ns or self allocated
    words; ties break by path name for determinism. *)

val total_ns : t -> int
(** Host ns elapsed since create/reset. *)

val total_words : t -> int
(** Words allocated since create/reset. *)

val total_vcycles : t -> int
val attributed_ns : t -> int
val attributed_words : t -> int

val attributed_ns_fraction : t -> float
(** [attributed_ns / total_ns]; 1.0 when nothing was measured. *)

val attributed_words_fraction : t -> float

val ns_per_vcycle : ns:int -> vcycles:int -> float
(** Host nanoseconds per simulated cycle; 0.0 when no cycles elapsed. *)

val to_json : t -> Json.t
(** Attribution summary, GC block (scoped word deltas + current heap
    state), self-gauge summary, and the full call tree. Word counts,
    call counts and vcycles are deterministic; ns values are not. *)

val to_collapsed : ?by:[ `Ns | `Words ] -> t -> string
(** Collapsed stacks ("path;to;span value" lines, default self-ns) for
    flamegraph.pl / speedscope; the unattributed remainder is an explicit
    ["(unattributed)"] root. *)

val pp : Format.formatter -> t -> unit
