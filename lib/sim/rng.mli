(** Deterministic pseudo-random numbers (xoshiro256 star-star).

    The simulator never uses [Random] from the stdlib so that every
    experiment is exactly reproducible from a seed. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-like sample in [0, n) with skew [theta] in (0, 1); higher theta is
    more skewed. Uses the standard rejection-free approximation of
    Gray et al. *)
