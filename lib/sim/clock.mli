(** Virtual cycle clock shared by all simulated components.

    Components charge cycles for the work they do; experiments read the
    clock before and after an operation to obtain its simulated latency. *)

type t

val create : Cost_model.t -> t
(** Fresh clock at cycle 0 carrying the given cost model. *)

val model : t -> Cost_model.t
(** The cost model this clock charges with. *)

val now : t -> int
(** Current cycle count. *)

val charge : t -> int -> unit
(** [charge t c] advances the clock by [c] cycles. [c] must be >= 0. *)

val reset : t -> unit
(** Reset the clock to cycle 0 (counters are independent, see {!Stats}). *)

val elapsed : t -> since:int -> int
(** [elapsed t ~since] is [now t - since]. *)

val time : t -> (unit -> 'a) -> 'a * int
(** [time t f] runs [f ()] and returns its result with the cycles charged
    during the call. *)

val us : t -> int -> float
(** Convert cycles to microseconds under the clock's model. *)
