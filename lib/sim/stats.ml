(* Counters plus a gauge registry. Counters only go up (between resets);
   gauges track a current level (TLB occupancy, zero-cache depth, resident
   pages...) with a high watermark and an optional clock-driven time
   series sampled at a fixed cycle interval. *)

type gauge = {
  mutable value : int;
  mutable hwm : int;
  points : (int * int) Queue.t; (* (cycle, value), oldest first *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  mutable sample_interval : int; (* cycles between samples; 0 = sampling off *)
  mutable next_sample : int;
}

let series_capacity = 1024

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 16; sample_interval = 0; next_sample = 0 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (cell t name)
let add t name n = cell t name := !(cell t name) + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      let prev = match Hashtbl.find_opt tbl k with Some p -> p | None -> 0 in
      Hashtbl.replace tbl k (prev + v))
    after;
  Hashtbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------- gauges ------------------------------- *)

let gauge_cell t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { value = 0; hwm = 0; points = Queue.create () } in
    Hashtbl.add t.gauges name g;
    g

let set_gauge t name v =
  let g = gauge_cell t name in
  g.value <- v;
  if v > g.hwm then g.hwm <- v

let add_gauge t name d =
  let g = gauge_cell t name in
  g.value <- g.value + d;
  if g.value > g.hwm then g.hwm <- g.value

let gauge t name = match Hashtbl.find_opt t.gauges name with Some g -> g.value | None -> 0
let gauge_hwm t name = match Hashtbl.find_opt t.gauges name with Some g -> g.hwm | None -> 0

let gauges t =
  Hashtbl.fold (fun k g acc -> (k, g.value, g.hwm) :: acc) t.gauges []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let set_sample_interval t ~cycles =
  if cycles < 0 then invalid_arg "Stats.set_sample_interval: negative interval";
  t.sample_interval <- cycles;
  t.next_sample <- 0

let sample t ~now =
  if t.sample_interval > 0 && now >= t.next_sample then begin
    Hashtbl.iter
      (fun _ g ->
        Queue.push (now, g.value) g.points;
        if Queue.length g.points > series_capacity then ignore (Queue.pop g.points))
      t.gauges;
    t.next_sample <- now + t.sample_interval
  end

let series t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> List.of_seq (Queue.to_seq g.points)
  | None -> []

let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0;
      g.hwm <- 0;
      Queue.clear g.points)
    t.gauges;
  t.next_sample <- 0

(* ------------------------------- export ------------------------------- *)

let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (snapshot t))

let gauges_to_json t =
  Json.Obj
    (List.map
       (fun (k, v, hwm) ->
         ( k,
           Json.Obj
             [
               ("value", Json.Int v);
               ("hwm", Json.Int hwm);
               ("samples", Json.Int (List.length (series t k)));
             ] ))
       (gauges t))

let pp ppf t =
  let entries = snapshot t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@," k v) entries;
  List.iter (fun (k, v, hwm) -> Format.fprintf ppf "%s = %d (hwm %d)@," k v hwm) (gauges t);
  Format.fprintf ppf "@]"
