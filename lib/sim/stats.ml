type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = Stdlib.incr (cell t name)
let add t name n = cell t name := !(cell t name) + n
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      let prev = match Hashtbl.find_opt tbl k with Some p -> p | None -> 0 in
      Hashtbl.replace tbl k (prev + v))
    after;
  Hashtbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (snapshot t))

let pp ppf t =
  let entries = snapshot t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@," k v) entries;
  Format.fprintf ppf "@]"
