(** Typed kernel error codes.

    Resource exhaustion is a legal outcome, not a simulator bug: allocation
    and file-growth paths raise [Error (ENOMEM | ENOSPC, context)] instead
    of a bare [Failure], so callers (and the fault-injection harness) can
    distinguish graceful degradation from programming errors and react —
    retry after reclaim, surface the errno, or kill a victim — rather than
    aborting the run. *)

type t =
  | ENOMEM  (** no frame available, even after one reclaim pass *)
  | ENOSPC  (** file system out of space / quota exhausted / WAL full *)
  | EIO  (** media error (checksum mismatch surfaced to a caller) *)
  | EAGAIN  (** transient failure; caller may retry *)

exception Error of t * string
(** The second component says which operation failed, for diagnostics. *)

val fail : t -> string -> 'a
(** [fail errno what] raises {!Error}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
