(** Cycle-cost model for simulated memory-management operations.

    Every cost is in CPU cycles of a virtual core running at [freq_ghz].
    The defaults are calibrated so that the headline constants of the
    paper come out right on the baseline system: an `mmap` fast path of
    about 8 us on tmpfs, a minor page fault of about 2 us, and a
    pre-populated PTE write of about 0.4 us per page (see DESIGN.md §5). *)

type t = {
  freq_ghz : float;  (** Virtual core frequency used to convert cycles to time. *)
  syscall : int;  (** Kernel entry + exit (trap, register save/restore). *)
  vma_setup : int;  (** Creating a VMA / region descriptor and FS lookup. *)
  pte_write : int;  (** Allocating + writing one last-level PTE (populate path). *)
  pt_node_alloc : int;  (** Allocating one page-table node (any level). *)
  fault_trap : int;  (** Page-fault trap + kernel fault-path dispatch. *)
  mem_ref_dram : int;  (** One cache-missing memory reference to NUMA-local DRAM. *)
  mem_ref_nvm_read : int;  (** One read reference to NUMA-local NVM. *)
  mem_ref_nvm_write : int;  (** One write reference to NUMA-local NVM. *)
  mem_ref_dram_remote : int;  (** DRAM reference crossing a NUMA interconnect hop. *)
  mem_ref_nvm_read_remote : int;  (** NVM read from a remote NUMA domain. *)
  mem_ref_nvm_write_remote : int;  (** NVM write to a remote NUMA domain. *)
  cache_ref : int;  (** One cache-hitting reference. *)
  tlb_hit : int;  (** TLB lookup that hits. *)
  tlb_shootdown : int;  (** Local TLB invalidation of one entry or range (INVLPG-class). *)
  cores : int;  (** Informational default core count; the simulated machine's real core count lives in [Os.Kernel.config]. *)
  ipi : int;  (** Cost of one IPI round-trip to a remote core (send + remote handler + ack). *)
  zero_byte_num : int;  (** Zeroing cost numerator: cycles per... *)
  zero_byte_den : int;  (** ...this many bytes (default 1 cycle / 4 B). *)
  zero_cache_pop : int;  (** Popping one frame off the pre-zeroed cache (the O(1) handout). *)
  frame_alloc : int;  (** Buddy/physical allocator work per frame. *)
  struct_page_init : int;  (** Initialising per-page kernel metadata. *)
  fs_lookup : int;  (** Path / inode lookup in the memory FS. *)
  fs_extent_op : int;  (** Allocating or freeing one extent in the FS. *)
  range_table_op : int;  (** Inserting/removing one range-table entry. *)
  scheduler : int;  (** Context-switch slice charged by swap waits. *)
  copy_byte_num : int;  (** memcpy cost numerator: cycles per... *)
  copy_byte_den : int;  (** ...this many bytes (default 1 cycle / 8 B). *)
}

val default : t
(** Calibrated defaults (2 GHz core). *)

val cycles_to_us : t -> int -> float
(** Convert a cycle count to microseconds under this model. *)

val cycles_to_ms : t -> int -> float

val shootdown_cost : t -> int
(** Cost of one {e local} TLB invalidation (INVLPG-class), i.e. exactly
    [tlb_shootdown]. Remote cores are not folded in analytically: the MMU
    layer sends explicit IPIs, charged at [ipi] per remote core actually
    interrupted, so the O(cores) tax shows up as measured IPI traffic. *)

val zero_cost : t -> bytes:int -> int
(** Cycles to zero [bytes] bytes with the model's zeroing bandwidth. *)

val copy_cost : t -> bytes:int -> int
(** Cycles to copy [bytes] bytes. *)

val pp : Format.formatter -> t -> unit
(** Print the key constants of the model, for bench headers. *)

val to_json : t -> Json.t
(** Every parameter of the model as a flat JSON object — recorded as
    provenance in bench exports so regression comparisons can refuse to
    diff runs taken under different models. *)
