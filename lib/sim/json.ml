(* Minimal JSON value with a printer and a recursive-descent parser, so the
   simulator can export machine-readable results without external deps. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_literal f =
  if not (Float.is_finite f) then "null" (* JSON has no inf/nan *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad level = if pretty then Buffer.add_string buf (String.make (2 * level) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec write level v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          write (level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf (if pretty then "\": " else "\":");
          write (level + 1) item)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'
  in
  write 0 v;
  Buffer.contents buf

exception Parse_error of string * int

let of_string ?(max_depth = 512) s =
  let n = String.length s in
  let pos = ref 0 in
  let depth = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> add_utf8 buf code
          | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let saw = ref false in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        saw := true;
        incr pos
      done;
      if not !saw then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      if !depth >= max_depth then fail "nesting too deep";
      incr depth;
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        decr depth;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            decr depth;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      if !depth >= max_depth then fail "nesting too deep";
      incr depth;
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        decr depth;
        List []
      end
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            decr depth;
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing data";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)

let member v key =
  match v with
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let pp ppf v = Format.pp_print_string ppf (to_string ~pretty:true v)
