(* Least-squares scaling-law fits over (operand size, cost) series. All
   arithmetic is plain IEEE double on deterministic inputs, so fits are
   bit-identical across runs and hosts — bench JSON containing them can be
   compared byte-for-byte. *)

type cls = Constant | Logarithmic | Linear | Superlinear

let cls_name = function
  | Constant -> "O(1)"
  | Logarithmic -> "O(log n)"
  | Linear -> "O(n)"
  | Superlinear -> "O(n^2+)"

let cls_of_name = function
  | "O(1)" -> Some Constant
  | "O(log n)" -> Some Logarithmic
  | "O(n)" -> Some Linear
  | "O(n^2+)" -> Some Superlinear
  | _ -> None

let rank = function Constant -> 0 | Logarithmic -> 1 | Linear -> 2 | Superlinear -> 3
let pp_cls ppf c = Format.pp_print_string ppf (cls_name c)

type lsq = { slope : float; intercept : float; r2 : float }

let least_squares pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Complexity.least_squares: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0.0 pts in
  if sxx = 0.0 then invalid_arg "Complexity.least_squares: all x coincide";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. (intercept +. (slope *. x)) in
        a +. (e *. e))
      0.0 pts
  in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0.0 pts in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

type fit = { exponent : float; r2 : float; growth : float; cls : cls }

(* Slope thresholds: a true O(n) series fits slope ~1 and a true O(1)
   series slope ~0; O(log n) lands in between with a small slope but
   material end-to-end growth. The growth cut at 2x separates "flat with
   noise" from "genuinely climbing". *)
let classify ~exponent ~growth =
  if exponent >= 1.4 then Superlinear
  else if exponent >= 0.6 then Linear
  else if growth > 2.0 then Logarithmic
  else Constant

let fit points =
  let log_pts =
    List.map
      (fun (n, c) ->
        if n <= 0 then invalid_arg "Complexity.fit: operand sizes must be positive";
        (log (float_of_int n), log (float_of_int (max 1 c))))
      points
  in
  let { slope; intercept = _; r2 } = least_squares log_pts in
  let xs = List.map fst log_pts in
  let x_min = List.fold_left min (List.hd xs) xs in
  let x_max = List.fold_left max (List.hd xs) xs in
  let growth = exp (slope *. (x_max -. x_min)) in
  { exponent = slope; r2; growth; cls = classify ~exponent:slope ~growth }

let fit_to_json f =
  Json.Obj
    [
      ("class", Json.String (cls_name f.cls));
      ("exponent", Json.Float f.exponent);
      ("r2", Json.Float f.r2);
      ("growth", Json.Float f.growth);
    ]
