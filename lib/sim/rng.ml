type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 to expand the seed into four non-zero words. *)
let splitmix state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix state in
  let s1 = splitmix state in
  let s2 = splitmix state in
  let s3 = splitmix state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)

let zipf t ~n ~theta =
  assert (n > 0 && theta > 0.0 && theta < 1.0);
  (* Gray et al., "Quickly generating billion-record synthetic databases". *)
  let zeta n theta =
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int i ** theta))
    done;
    !acc
  in
  (* Cache zetan per (n, theta) pair; experiments reuse a handful of values. *)
  let zetan = zeta (min n 10_000) theta *. (if n > 10_000 then float_of_int n /. 10_000.0 ** (1.0 -. theta) else 1.0) in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta 2 theta /. zetan))
  in
  let u = float t in
  let uz = u *. zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** theta) then 1
  else
    let k = int_of_float (float_of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha)) in
    if k >= n then n - 1 else if k < 0 then 0 else k
