type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.columns);
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if i = 0 then cell ^ String.make n ' ' else String.make n ' ' ^ cell
  in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  emit_row t.columns;
  rule ();
  List.iter emit_row rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int n = string_of_int n
let cell_float ?(dp = 2) f = Printf.sprintf "%.*f" dp f
let cell_bytes n = Units.bytes_to_string n
