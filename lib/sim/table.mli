(** ASCII table rendering for experiment output.

    The bench harness prints one table per reproduced figure; this module
    keeps the formatting in one place so every experiment reads the same. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val render : t -> string
(** The fully formatted table, right-aligned numeric-friendly columns. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a blank line. *)

val cell_int : int -> string
val cell_float : ?dp:int -> float -> string
val cell_bytes : int -> string
(** Formatting helpers for common cell kinds ([dp] = decimal places,
    default 2). *)
