(* A seeded, deterministic fault-injection plane. Components consult the
   plane at named sites on their hot paths via [fires]; a disabled plane
   answers with a single branch and no allocation, so the sites are
   zero-cost (host and virtual) in normal runs. *)

type mode =
  | Never
  | Always
  | Prob of float
  | On_nth of int

type site_state = {
  mutable mode : mode;
  mutable evaluations : int;
  mutable injected : int;
}

type t = {
  enabled : bool;
  seed : int;
  rng : Rng.t;
  sites : (string, site_state) Hashtbl.t;
  stats : Stats.t option;
  mutable reporter : (string -> unit) option;
}

exception Injected_crash of string

(* Canonical site names, so components and plans agree on spelling. *)
let site_nvm_torn_line = "nvm_torn_line"
let site_nvm_bit_flip = "nvm_bit_flip"
let site_wal_partial_flush = "wal_partial_flush"
let site_frame_alloc_fail = "frame_alloc_fail"
let site_zero_cache_empty = "zero_cache_empty"
let site_quota_enospc = "quota_enospc"
let site_tlb_ack_lost = "tlb_ack_lost"
let site_durable_step = "durable_step"
let site_store_commit = "store_commit"
let site_store_apply = "store_apply"
let site_store_alloc = "store_alloc"

let all_sites =
  [
    site_nvm_torn_line;
    site_nvm_bit_flip;
    site_wal_partial_flush;
    site_frame_alloc_fail;
    site_zero_cache_empty;
    site_quota_enospc;
    site_tlb_ack_lost;
    site_durable_step;
    site_store_commit;
    site_store_apply;
    site_store_alloc;
  ]

let disabled =
  {
    enabled = false;
    seed = 0;
    rng = Rng.create ~seed:0;
    sites = Hashtbl.create 1;
    stats = None;
    reporter = None;
  }

let create ?(seed = 1) ?stats () =
  { enabled = true; seed; rng = Rng.create ~seed; sites = Hashtbl.create 16; stats; reporter = None }

let enabled t = t.enabled
let seed t = t.seed

let state t ~site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
    let s = { mode = Never; evaluations = 0; injected = 0 } in
    Hashtbl.add t.sites site s;
    s

let arm t ~site mode =
  if not t.enabled then invalid_arg "Fault_inject.arm: disabled plane";
  (match mode with
  | Prob p when not (p >= 0.0 && p <= 1.0) -> invalid_arg "Fault_inject.arm: probability not in [0,1]"
  | On_nth n when n <= 0 -> invalid_arg "Fault_inject.arm: On_nth needs n >= 1"
  | _ -> ());
  (state t ~site).mode <- mode

let disarm t ~site = match Hashtbl.find_opt t.sites site with Some s -> s.mode <- Never | None -> ()

let set_reporter t f =
  if not t.enabled then invalid_arg "Fault_inject.set_reporter: disabled plane";
  t.reporter <- Some f

let fires t ~site =
  if not t.enabled then false
  else begin
    let s = state t ~site in
    s.evaluations <- s.evaluations + 1;
    let fire =
      match s.mode with
      | Never -> false
      | Always -> true
      | Prob p -> Rng.float t.rng < p
      | On_nth n -> s.evaluations = n
    in
    if fire then begin
      s.injected <- s.injected + 1;
      (match t.stats with
      | Some stats ->
        Stats.incr stats "fault_inject";
        Stats.incr stats ("fault_inject:" ^ site)
      | None -> ());
      match t.reporter with Some f -> f site | None -> ()
    end;
    fire
  end

let rand_int t bound = Rng.int t.rng bound

let evaluations t ~site =
  match Hashtbl.find_opt t.sites site with Some s -> s.evaluations | None -> 0

let injected t ~site = match Hashtbl.find_opt t.sites site with Some s -> s.injected | None -> 0

let totals t =
  Hashtbl.fold (fun site s acc -> (site, s.evaluations, s.injected) :: acc) t.sites []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let injected_total t = Hashtbl.fold (fun _ s acc -> acc + s.injected) t.sites 0

let reset_counts t =
  Hashtbl.iter
    (fun _ s ->
      s.evaluations <- 0;
      s.injected <- 0)
    t.sites

let to_json t =
  Json.Obj
    [
      ("enabled", Json.Bool t.enabled);
      ("seed", Json.Int t.seed);
      ( "sites",
        Json.Obj
          (List.map
             (fun (site, evals, injected) ->
               (site, Json.Obj [ ("evaluations", Json.Int evals); ("injected", Json.Int injected) ]))
             (totals t)) );
    ]

let pp ppf t =
  if not t.enabled then Format.fprintf ppf "fault injection: disabled"
  else begin
    Format.fprintf ppf "@[<v>fault injection (seed %d):@," t.seed;
    List.iter
      (fun (site, evals, injected) ->
        Format.fprintf ppf "%-20s %8d evaluated %8d injected@," site evals injected)
      (totals t);
    Format.fprintf ppf "@]"
  end
