(** Minimal JSON support (printer and parser), kept dependency-free so the
    simulator can export machine-readable results anywhere.

    Integers are printed exactly; floats use a shortest-ish decimal form and
    non-finite floats print as [null] (JSON has no encoding for them). The
    parser accepts standard JSON; [\u] escapes outside the BMP are not
    combined into surrogate pairs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) adds newlines and 2-space indent. *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Containers nested deeper than [max_depth] (default 512) are rejected
    with a ["nesting too deep"] error instead of risking stack overflow
    on adversarial input. *)

val member : t -> string -> t option
(** [member (Obj fields) key] looks up [key]; [None] on non-objects. *)

val pp : Format.formatter -> t -> unit
