type t = {
  freq_ghz : float;
  syscall : int;
  vma_setup : int;
  pte_write : int;
  pt_node_alloc : int;
  fault_trap : int;
  mem_ref_dram : int;
  mem_ref_nvm_read : int;
  mem_ref_nvm_write : int;
  mem_ref_dram_remote : int;
  mem_ref_nvm_read_remote : int;
  mem_ref_nvm_write_remote : int;
  cache_ref : int;
  tlb_hit : int;
  tlb_shootdown : int;
  cores : int;
  ipi : int;
  zero_byte_num : int;
  zero_byte_den : int;
  zero_cache_pop : int;
  frame_alloc : int;
  struct_page_init : int;
  fs_lookup : int;
  fs_extent_op : int;
  range_table_op : int;
  scheduler : int;
  copy_byte_num : int;
  copy_byte_den : int;
}

let default =
  {
    freq_ghz = 2.0;
    syscall = 1600;
    vma_setup = 12800;
    pte_write = 520;
    pt_node_alloc = 400;
    fault_trap = 2400;
    mem_ref_dram = 80;
    mem_ref_nvm_read = 120;
    mem_ref_nvm_write = 400;
    mem_ref_dram_remote = 130;
    mem_ref_nvm_read_remote = 190;
    mem_ref_nvm_write_remote = 640;
    cache_ref = 4;
    tlb_hit = 1;
    tlb_shootdown = 400;
    cores = 1;
    ipi = 4000;
    zero_byte_num = 1;
    zero_byte_den = 4;
    zero_cache_pop = 20;
    frame_alloc = 200;
    struct_page_init = 120;
    fs_lookup = 2400;
    fs_extent_op = 800;
    range_table_op = 600;
    scheduler = 3000;
    copy_byte_num = 1;
    copy_byte_den = 8;
  }

(* Local invalidation only. Remote-core invalidation is not an analytic
   multiplier any more: {!Hw.Mmu} sends explicit IPIs (charged at [ipi]
   each) to exactly the cores that may cache the address space, so IPI
   traffic is measured, not extrapolated — a purely local flush (context
   switch, single-core machine) costs exactly [tlb_shootdown]. *)
let shootdown_cost t = t.tlb_shootdown

let cycles_to_us t c = float_of_int c /. (t.freq_ghz *. 1000.0)
let cycles_to_ms t c = cycles_to_us t c /. 1000.0
let zero_cost t ~bytes = bytes * t.zero_byte_num / t.zero_byte_den
let copy_cost t ~bytes = bytes * t.copy_byte_num / t.copy_byte_den

let to_json t =
  Json.Obj
    [
      ("freq_ghz", Json.Float t.freq_ghz);
      ("syscall", Json.Int t.syscall);
      ("vma_setup", Json.Int t.vma_setup);
      ("pte_write", Json.Int t.pte_write);
      ("pt_node_alloc", Json.Int t.pt_node_alloc);
      ("fault_trap", Json.Int t.fault_trap);
      ("mem_ref_dram", Json.Int t.mem_ref_dram);
      ("mem_ref_nvm_read", Json.Int t.mem_ref_nvm_read);
      ("mem_ref_nvm_write", Json.Int t.mem_ref_nvm_write);
      ("mem_ref_dram_remote", Json.Int t.mem_ref_dram_remote);
      ("mem_ref_nvm_read_remote", Json.Int t.mem_ref_nvm_read_remote);
      ("mem_ref_nvm_write_remote", Json.Int t.mem_ref_nvm_write_remote);
      ("cache_ref", Json.Int t.cache_ref);
      ("tlb_hit", Json.Int t.tlb_hit);
      ("tlb_shootdown", Json.Int t.tlb_shootdown);
      ("cores", Json.Int t.cores);
      ("ipi", Json.Int t.ipi);
      ("zero_byte_num", Json.Int t.zero_byte_num);
      ("zero_byte_den", Json.Int t.zero_byte_den);
      ("zero_cache_pop", Json.Int t.zero_cache_pop);
      ("frame_alloc", Json.Int t.frame_alloc);
      ("struct_page_init", Json.Int t.struct_page_init);
      ("fs_lookup", Json.Int t.fs_lookup);
      ("fs_extent_op", Json.Int t.fs_extent_op);
      ("range_table_op", Json.Int t.range_table_op);
      ("scheduler", Json.Int t.scheduler);
      ("copy_byte_num", Json.Int t.copy_byte_num);
      ("copy_byte_den", Json.Int t.copy_byte_den);
    ]

let pp ppf t =
  Format.fprintf ppf
    "cost model: %.1f GHz, syscall=%d vma=%d pte=%d fault=%d dram=%d nvm(r/w)=%d/%d shootdown=%d"
    t.freq_ghz t.syscall t.vma_setup t.pte_write t.fault_trap t.mem_ref_dram
    t.mem_ref_nvm_read t.mem_ref_nvm_write t.tlb_shootdown
