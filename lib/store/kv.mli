(** A crash-consistent transactional KV/object store on the FOM heap.

    Objects live in named persistent arena files ({!Heap.Fom_heap} with a
    file prefix); durability comes from redo logging through {!Fs.Wal}
    plus a ping-pong manifest of periodic snapshots. The commit protocol
    is: log every operation and a commit record (each durable before the
    next), then apply in place with durable slot writes. A crash at any
    clwb/sfence/WAL boundary recovers to the committed prefix — exactly
    the transactions whose commit record survived — and torn or bit-flipped
    log records are {e detected} by the WAL's per-record checksums (and
    value reads by per-slot checksums), never silently replayed.

    Recovery is application-independent: {!create} registers hooks with
    the store's {!O1mem.Fom.t}, so {!O1mem.Persistence.crash} drops the
    store's unflushed lines and {!O1mem.Persistence.recover} re-attaches
    the arenas (fresh VAs, same arena-relative slots), picks the newest
    valid manifest snapshot, and replays the log — charged cost
    O(files + WAL records), independent of how many objects exist.

    The key → slot index and root table are host-side bookkeeping: the
    stand-in for a PMO-style persistent index living in the arenas, so
    rebuilding them charges nothing (see DESIGN.md). *)

type t

val create :
  O1mem.Fom.t ->
  Os.Proc.t ->
  ?arena_bytes:int ->
  ?wal_bytes:int ->
  ?manifest_bytes:int ->
  name:string ->
  unit ->
  t
(** [create fom proc ~name ()] opens a fresh store rooted at absolute
    path [name] on [fom]'s file system (which must be the kernel's
    persistent pmfs). Creates "<name>.wal", "<name>.manifest" and
    "<name>.arena.<n>" as named persistent files, and registers the
    crash/recovery hooks plus an {!Os.Check} rule ("store_roots") that
    validates every live root maps through a valid FOM extent.

    Defaults: 1 MiB arenas, 128 KiB WAL, 128 KiB manifest. Raises
    [Invalid_argument] for a relative [name], a volatile FOM, or if
    store files already exist at [name] — create initialises blank
    journals and never reopens (or silently wipes) a prior store. *)

val detach : t -> unit
(** Unregister the store's hooks and check rule (for tests that build
    many stores on one machine). The files remain. *)

(** {1 Transactions}

    One transaction open at a time; operations buffer until {!commit}.
    Keys are 1..512 bytes, values 1..16 KiB (small-class blocks only:
    large regions have no crash-stable identity). *)

val begin_txn : t -> int
(** Returns the transaction id. Raises [Invalid_argument] if one is
    already open. *)

val put : t -> string -> string -> unit
val delete : t -> string -> unit
(** Deleting a key also clears any roots that reference it. *)

val set_root : t -> string -> string -> unit
(** [set_root t root key] durably names [key] under [root] at commit. *)

val clear_root : t -> string -> unit
val abort : t -> unit

val commit : t -> unit
(** Allocate slots, log, apply. Typed failures leave the store
    consistent: [ENOSPC] (WAL or heap exhausted after one
    checkpoint/defragment-and-retry round) rolls the transaction back;
    an injected [EIO] at the [store_commit] fault site aborts before
    anything is logged. Log records a rolled-back commit leaves behind
    are durably cut where possible and in any case carry the failed
    transaction's id, which recovery refuses to attribute to any later
    commit record — a crash after a failed commit never resurrects its
    ops. *)

val checkpoint : t -> unit
(** Snapshot the live index into the inactive manifest half (durably),
    flip halves, and cut the redo log. Crash-safe at every step: recovery
    picks the newest valid half and replays the log on top, which is
    idempotent. Raises [Invalid_argument] while a transaction is open. *)

(** {1 Reads} *)

val get : t -> string -> string option
(** Charged media read; raises [EIO] (and bumps "store_eio") if the
    stored bytes no longer match the slot checksum — this is how torn
    lines and bit flips surface as detections rather than bad data. *)

val mem : t -> string -> bool
val root : t -> string -> string option
val roots : t -> (string * string) list
val keys : t -> string list

(** {1 Introspection} *)

val object_count : t -> int
val txn_live : t -> bool
val wal_used_bytes : t -> int
val wal_record_count : t -> int
val arena_count : t -> int
val generation : t -> int
(** Manifest snapshot generation (bumps on every checkpoint). *)

val recovery_truncations : t -> int
(** Cumulative damaged-record detections across recoveries (WAL and
    manifest halves). *)

val last_replayed : t -> int
(** Records replayed by the most recent recovery. *)

val name : t -> string
val proc : t -> Os.Proc.t
(** The owning process — replaced by recovery with a fresh one. *)

val verify : t -> Os.Check.violation list
(** Full self-check: the root rule plus a checksum sweep of every live
    object (host-side, uncharged). *)
