(** Crash-at-every-boundary exploration and the "store" fault plan for
    {!Kv}, in the style of {!O1mem.Chaos}. *)

type report = {
  steps : int;  (** durable boundaries the burst crosses (post-preload) *)
  fences : int;  (** sfence count of the baseline burst *)
  crashes : int;  (** replays performed: one per boundary + damage arms *)
  torn_detections : int;
      (** torn-line arm: WAL/manifest truncations + EIO reads detected *)
  flip_detections : int;  (** bit-flip arm likewise *)
  violations : string list;  (** empty = every recovery was consistent *)
}

val explore_store : ?keys:int -> ?txns:int -> ?seed:int -> unit -> report
(** Preload [keys] (default 6, min 4) objects, checkpoint, then run
    [txns] (default 3) mixed put/delete/grow/root transactions, crashing
    at every clwb/sfence/WAL boundary of the burst. Invariants per clean
    crash: the recovered state is exactly the committed prefix (the
    mirror after [acked] commits, or [acked]+1 when the crash fell
    between commit-record durability and the acknowledgement), the
    cross-layer {!Os.Check} passes, and the store still serves fresh
    writes. Torn-line and bit-flip arms then damage sampled boundaries:
    losses are permitted but must be {e detected} (truncation or EIO —
    each arm must detect at least once), and any value the store returns
    must be one the workload actually wrote. *)

val run_plan : ?seed:int -> ?rounds:int -> unit -> O1mem.Chaos.plan_outcome
(** The "store" plan: probabilistic injection at [store_alloc] /
    [store_commit] / [store_apply] while [rounds] (default 12)
    transactions run, a mid-plan crash/recover, then an over-WAL-capacity
    commit that must degrade to a typed [ENOSPC] with no partial state.
    [retried] counts defragment-and-retry allocation saves
    ("store_alloc_retry"); [checks] merges {!Os.Check.run} with
    {!Kv.verify} and is empty on success. *)
