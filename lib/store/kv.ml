(* A transactional persistent KV/object store on the FOM heap.

   Layout (all named persistent files under the store's prefix):

     <name>.wal        redo log, raw NVM journaled via Memfs.Wal
     <name>.manifest   two ping-pong snapshot halves, each a one-record WAL
     <name>.arena.<n>  Fom_heap arenas holding the object bytes

   Commit protocol (redo logging): ops buffer volatile; commit allocates
   every slot up front, appends [op records..., commit record] to the
   WAL (each record durable before the next — Wal.append's clwb/sfence
   discipline), then applies in place with durable slot writes. A crash
   anywhere yields the committed prefix: recovery replays exactly the
   transactions whose commit record survived, and everything else — torn
   records included — is detected by the WAL's checksums and truncated.
   Every record carries its transaction id and replay only adopts
   pending ops tagged with the id of the commit record that closes them,
   so records orphaned by a failed commit (e.g. ENOSPC after the
   auto-checkpoint retry) are inert even if they linger in the log ahead
   of a later transaction's records.

   Object identity is arena-relative (arena index, byte offset), never a
   virtual address: after a crash the arenas are re-mapped at fresh VAs
   (Fom_heap.reattach) and every slot still names the same bytes — the
   Puddles relocatable-region idea.

   The key -> slot index and root table are host-side bookkeeping, the
   stand-in for a persistent index structure that would live in the
   arenas themselves (PMO-style) and be re-mapped O(extents) at
   recovery; rebuilding them charges nothing, so recovery's charged cost
   is O(files + WAL records), which bench/exp_store.ml fits. *)

module FI = Sim.Fault_inject

let max_key_bytes = 512
let max_value_bytes = Sim.Units.kib 16

type slot = { arena : int; off : int; len : int; cksum : int }

type op =
  | Put of string * string
  | Delete of string
  | Set_root of string * string
  | Clear_root of string

type txn = { id : int; mutable ops : op list (* newest first *) }

type t = {
  fom : O1mem.Fom.t;
  mutable proc : Os.Proc.t;
  name : string;
  heap : Heap.Fom_heap.t;
  nvm : Physmem.Nvm.t; (* private handle: its unflushed lines are the store's *)
  wal_base : int;
  wal_capacity : int;
  mutable wal : Fs.Wal.t;
  manifest_base : int;
  manifest_half : int;
  mutable manifest_current : int; (* half holding the live snapshot *)
  mutable generation : int;
  index : (string, slot) Hashtbl.t;
  root_tbl : (string, string) Hashtbl.t;
  mutable txn : txn option;
  mutable next_txn_id : int;
  mutable detached : bool;
  mutable recovery_truncations : int;
  mutable last_replayed : int;
  rule_name : string;
}

let kernel t = O1mem.Fom.kernel t.fom
let fs t = O1mem.Fom.fs t.fom
let stats t = Os.Kernel.stats (kernel t)
let trace t = Os.Kernel.trace (kernel t)
let plane t = Sim.Trace.faults (trace t)
let now t = Sim.Clock.now (Os.Kernel.clock (kernel t))
let pspan t name f = Sim.Trace.prof_span (trace t) name f

(* Same Adler-ish checksum as the WAL's, for value integrity: a get whose
   bytes no longer match raises EIO instead of serving damage. *)
let checksum s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  let v = (!b lsl 16) lor !a in
  if v = 0 then 1 else v

(* --- record encoding ----------------------------------------------- *)

let w32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let wstr buf s =
  w32 buf (String.length s);
  Buffer.add_string buf s

let r32 s pos =
  if !pos + 4 > String.length s then invalid_arg "Store: truncated record";
  let v = Int32.to_int (Bytes.get_int32_le (Bytes.of_string (String.sub s !pos 4)) 0) land 0xFFFFFFFF in
  pos := !pos + 4;
  v

let rstr s pos =
  let n = r32 s pos in
  if !pos + n > String.length s then invalid_arg "Store: truncated record";
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

type rec_op =
  | R_put of string * slot * string
  | R_delete of string
  | R_set_root of string * string
  | R_clear_root of string
  | R_commit of int

(* Every record opens with [tag; txn id]: replay matches pending ops to
   their commit record by id, so orphans can never ride a later commit. *)

let encode_put ~id k slot v =
  let b = Buffer.create (String.length k + String.length v + 32) in
  Buffer.add_char b 'P';
  w32 b id;
  wstr b k;
  w32 b slot.arena;
  w32 b slot.off;
  w32 b slot.len;
  w32 b slot.cksum;
  Buffer.add_string b v;
  Buffer.contents b

let encode_delete ~id k =
  let b = Buffer.create (String.length k + 12) in
  Buffer.add_char b 'D';
  w32 b id;
  wstr b k;
  Buffer.contents b

let encode_set_root ~id r k =
  let b = Buffer.create (String.length r + String.length k + 16) in
  Buffer.add_char b 'R';
  w32 b id;
  wstr b r;
  wstr b k;
  Buffer.contents b

let encode_clear_root ~id r =
  let b = Buffer.create (String.length r + 12) in
  Buffer.add_char b 'C';
  w32 b id;
  wstr b r;
  Buffer.contents b

let encode_commit id =
  let b = Buffer.create 8 in
  Buffer.add_char b 'T';
  w32 b id;
  Buffer.contents b

let decode payload =
  if payload = "" then invalid_arg "Store: empty record";
  let pos = ref 1 in
  let tag = payload.[0] in
  let id = r32 payload pos in
  match tag with
  | 'P' ->
    let k = rstr payload pos in
    let arena = r32 payload pos in
    let off = r32 payload pos in
    let len = r32 payload pos in
    let cksum = r32 payload pos in
    if !pos + len > String.length payload then invalid_arg "Store: truncated put";
    (id, R_put (k, { arena; off; len; cksum }, String.sub payload !pos len))
  | 'D' -> (id, R_delete (rstr payload pos))
  | 'R' ->
    let r = rstr payload pos in
    (id, R_set_root (r, rstr payload pos))
  | 'C' -> (id, R_clear_root (rstr payload pos))
  | 'T' -> (id, R_commit id)
  | c -> invalid_arg (Printf.sprintf "Store: unknown record tag %C" c)

(* Snapshot: generation, then the whole index and root table. *)
let encode_snapshot t ~gen =
  let b = Buffer.create 1024 in
  Buffer.add_char b 'S';
  w32 b gen;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.index [] |> List.sort String.compare in
  w32 b (List.length keys);
  List.iter
    (fun k ->
      let s = Hashtbl.find t.index k in
      wstr b k;
      w32 b s.arena;
      w32 b s.off;
      w32 b s.len;
      w32 b s.cksum)
    keys;
  let roots = Hashtbl.fold (fun r k acc -> (r, k) :: acc) t.root_tbl [] |> List.sort compare in
  w32 b (List.length roots);
  List.iter
    (fun (r, k) ->
      wstr b r;
      wstr b k)
    roots;
  Buffer.contents b

let decode_snapshot payload =
  if payload = "" || payload.[0] <> 'S' then invalid_arg "Store: bad snapshot";
  let pos = ref 1 in
  let gen = r32 payload pos in
  let nobj = r32 payload pos in
  let objs = ref [] in
  for _ = 1 to nobj do
    let k = rstr payload pos in
    let arena = r32 payload pos in
    let off = r32 payload pos in
    let len = r32 payload pos in
    let cksum = r32 payload pos in
    objs := (k, { arena; off; len; cksum }) :: !objs
  done;
  let nroots = r32 payload pos in
  let roots = ref [] in
  for _ = 1 to nroots do
    let r = rstr payload pos in
    let k = rstr payload pos in
    roots := (r, k) :: !roots
  done;
  (gen, List.rev !objs, List.rev !roots)

(* --- media addressing ---------------------------------------------- *)

(* Physical chunks backing [off, off+len) of an arena file (the arena
   region maps the file whole from offset 0, so a heap offset is a file
   offset). Values may straddle extent boundaries. *)
let phys_chunks t ~arena ~off ~len =
  let r = Heap.Fom_heap.arena_region t.heap arena in
  let page = Sim.Units.page_size in
  let exts = Fs.Memfs.file_extents (fs t) r.O1mem.Fom.ino in
  let chunks = ref [] in
  let remaining = ref len and cur = ref off in
  while !remaining > 0 do
    let pageno = !cur / page in
    match
      List.find_opt
        (fun (e : Fs.Extent.t) -> pageno >= e.Fs.Extent.logical && pageno < e.Fs.Extent.logical + e.Fs.Extent.count)
        exts
    with
    | None -> invalid_arg "Store: slot outside its arena's extents"
    | Some e ->
      let within = !cur - (e.Fs.Extent.logical * page) in
      let avail = (e.Fs.Extent.count * page) - within in
      let n = min avail !remaining in
      chunks := (Physmem.Frame.to_addr e.Fs.Extent.start + within, n) :: !chunks;
      cur := !cur + n;
      remaining := !remaining - n
  done;
  List.rev !chunks

let write_slot t slot value =
  let chunks = phys_chunks t ~arena:slot.arena ~off:slot.off ~len:(String.length value) in
  let pos = ref 0 in
  List.iter
    (fun (addr, n) ->
      Physmem.Nvm.write_persistent t.nvm ~addr (String.sub value !pos n);
      Physmem.Nvm.flush t.nvm ~addr ~len:n;
      pos := !pos + n)
    chunks;
  Physmem.Nvm.fence t.nvm

let read_slot t slot =
  let mem = Physmem.Nvm.mem t.nvm in
  let buf = Buffer.create slot.len in
  List.iter
    (fun (addr, n) -> Buffer.add_bytes buf (Physmem.Phys_mem.read mem ~addr ~len:n))
    (phys_chunks t ~arena:slot.arena ~off:slot.off ~len:slot.len);
  Buffer.contents buf

(* A WAL or manifest file must be one contiguous extent: the journal is
   raw NVM addressed linearly. FOM files are single-extent whenever free
   space allows; defragment once if not. *)
let contiguous_base fsys ino ~bytes =
  let single () =
    match Fs.Memfs.file_extents fsys ino with
    | [ e ] when e.Fs.Extent.count * Sim.Units.page_size >= bytes ->
      Some (Physmem.Frame.to_addr e.Fs.Extent.start)
    | _ -> None
  in
  match single () with
  | Some base -> base
  | None -> (
    ignore (Fs.Memfs.defragment fsys ());
    match single () with
    | Some base -> base
    | None -> invalid_arg "Store: journal file is not a single extent")

(* --- gauges -------------------------------------------------------- *)

let update_gauges t =
  let s = stats t in
  Sim.Stats.set_gauge s "store_objects" (Hashtbl.length t.index);
  Sim.Stats.set_gauge s "store_txn_live" (match t.txn with Some _ -> 1 | None -> 0);
  Sim.Stats.set_gauge s "store_wal_bytes" (Fs.Wal.used_bytes t.wal)

(* --- invariant rule ------------------------------------------------ *)

let root_rule t kernel' =
  if t.detached || not (kernel' == kernel t) then []
  else
    Hashtbl.fold
      (fun root key acc ->
        let bad detail = { Os.Check.check = "store_roots"; detail = t.name ^ ": " ^ detail } in
        match Hashtbl.find_opt t.index key with
        | None -> bad (Printf.sprintf "root %S -> missing key %S" root key) :: acc
        | Some slot -> (
          match Heap.Fom_heap.arena_region t.heap slot.arena with
          | exception Invalid_argument _ ->
            bad (Printf.sprintf "root %S -> key %S in unknown arena %d" root key slot.arena) :: acc
          | r ->
            if Fs.Memfs.lookup (fs t) r.O1mem.Fom.path <> Some r.O1mem.Fom.ino then
              bad (Printf.sprintf "root %S -> key %S: arena file %s gone" root key r.O1mem.Fom.path)
              :: acc
            else (
              match phys_chunks t ~arena:slot.arena ~off:slot.off ~len:slot.len with
              | _ -> acc
              | exception Invalid_argument _ ->
                bad
                  (Printf.sprintf "root %S -> key %S: slot (%d, %d, %d) outside arena extents" root
                     key slot.arena slot.off slot.len)
                :: acc)))
      t.root_tbl []

(* --- recovery ------------------------------------------------------ *)

let apply_replayed t ops =
  let replayed = ref 0 in
  let latest_put = Hashtbl.create 16 in
  List.iter
    (fun op ->
      incr replayed;
      match op with
      | R_put (k, slot, v) ->
        Hashtbl.replace t.index k slot;
        Hashtbl.replace latest_put k (slot, v)
      | R_delete k ->
        Hashtbl.remove t.index k;
        Hashtbl.remove latest_put k;
        let dead = Hashtbl.fold (fun r k' acc -> if k' = k then r :: acc else acc) t.root_tbl [] in
        List.iter (Hashtbl.remove t.root_tbl) dead
      | R_set_root (r, k) -> Hashtbl.replace t.root_tbl r k
      | R_clear_root r -> Hashtbl.remove t.root_tbl r
      | R_commit _ -> ())
    ops;
  (!replayed, latest_put)

let recover_hook t () =
  if t.detached then 0
  else
    pspan t "store_recover" @@ fun () ->
    let start = now t in
    t.proc <- Os.Kernel.create_process (kernel t) ();
    Heap.Fom_heap.reattach t.heap t.proc;
    (* Pick the newest valid manifest snapshot (ping-pong halves). A torn
       half fails the WAL's checksums — detected, counted, ignored. The
       scan is uncharged (recover_host): the snapshot stands in for a
       persistent index that recovery would re-map in O(extents), not
       stream through the CPU — this is what keeps recovery's charged
       cost O(files + WAL records) rather than O(objects). *)
    let best = ref None in
    for half = 0 to 1 do
      let w =
        Fs.Wal.recover_host ~nvm:t.nvm ~base:(t.manifest_base + (half * t.manifest_half))
          ~capacity:t.manifest_half
      in
      (match Fs.Wal.recovery_detail w with
      | Some { Fs.Wal.truncated = Some _; _ } ->
        t.recovery_truncations <- t.recovery_truncations + 1;
        Sim.Stats.incr (stats t) "store_manifest_truncated"
      | _ -> ());
      match Fs.Wal.entries w with
      | snap :: _ -> (
        match decode_snapshot snap with
        | gen, objs, roots -> (
          match !best with
          | Some (g, _, _, _) when g >= gen -> ()
          | _ -> best := Some (gen, objs, roots, half))
        | exception Invalid_argument _ ->
          t.recovery_truncations <- t.recovery_truncations + 1;
          Sim.Stats.incr (stats t) "store_manifest_truncated")
      | [] -> ()
    done;
    Hashtbl.reset t.index;
    Hashtbl.reset t.root_tbl;
    (match !best with
    | Some (gen, objs, roots, half) ->
      t.generation <- gen;
      t.manifest_current <- half;
      List.iter (fun (k, s) -> Hashtbl.replace t.index k s) objs;
      List.iter (fun (r, k) -> Hashtbl.replace t.root_tbl r k) roots
    | None ->
      t.generation <- 0;
      t.manifest_current <- 1);
    (* Replay the committed prefix of the redo log. *)
    let w = Fs.Wal.recover ~nvm:t.nvm ~base:t.wal_base ~capacity:t.wal_capacity in
    (match Fs.Wal.recovery_detail w with
    | Some { Fs.Wal.truncated = Some _; _ } ->
      t.recovery_truncations <- t.recovery_truncations + 1;
      Sim.Stats.incr (stats t) "store_wal_truncated"
    | _ -> ());
    t.wal <- w;
    (* Two-phase: fold committed transactions into the final index first,
       then redo value writes — never write a logged value into a slot
       the final index assigns to someone else (slot reuse). A commit
       record adopts only the pending ops tagged with its own txn id:
       anything else is an orphan of a commit that failed after logging
       (its id was never committed and ids are never reused), so it is
       dropped, not replayed. *)
    let pending = ref [] and committed = ref [] in
    List.iter
      (fun payload ->
        match decode payload with
        | _, (R_commit cid as c) ->
          let mine, orphans = List.partition (fun (id, _) -> id = cid) !pending in
          if orphans <> [] then
            Sim.Stats.add (stats t) "store_wal_orphans" (List.length orphans);
          committed := !committed @ List.rev_map snd ((cid, c) :: mine);
          pending := []
        | tagged -> pending := tagged :: !pending
        | exception Invalid_argument _ -> pending := [] (* defensive; WAL checksums make this unreachable *))
      (Fs.Wal.entries w);
    let replayed, latest_put = apply_replayed t !committed in
    Hashtbl.iter
      (fun k (slot, v) ->
        match Hashtbl.find_opt t.index k with
        | Some s when s = slot -> write_slot t slot v
        | _ -> ())
      latest_put;
    (* Reconcile the heap: blocks allocated by uncommitted transactions
       (or orphaned by truncation) are not referenced by the final index
       — free them. Host-side sweep, the stand-in for a journaled
       allocator walking its own metadata. *)
    let referenced = Hashtbl.create 64 in
    Hashtbl.iter (fun _ s -> Hashtbl.replace referenced (s.arena, s.off) ()) t.index;
    let stale = ref [] in
    Heap.Fom_heap.iter_live t.heap (fun va _ ->
        match Heap.Fom_heap.locate t.heap va with
        | Some (arena, off) when not (Hashtbl.mem referenced (arena, off)) -> stale := va :: !stale
        | _ -> ());
    List.iter (fun va -> Heap.Fom_heap.free t.heap va) !stale;
    t.txn <- None;
    t.last_replayed <- replayed;
    update_gauges t;
    Sim.Stats.incr (stats t) "store_recover";
    Sim.Trace.record (trace t) ~op:"store_recover" ~start ~arg:replayed ();
    replayed

(* --- lifecycle ----------------------------------------------------- *)

let instance = ref 0

let create fom proc ?(arena_bytes = Sim.Units.mib 1) ?(wal_bytes = Sim.Units.kib 128)
    ?(manifest_bytes = Sim.Units.kib 128) ~name () =
  if name = "" || name.[0] <> '/' then invalid_arg "Store.create: name must be an absolute path";
  (match Os.Kernel.pmfs (O1mem.Fom.kernel fom) with
  | Some p when p == O1mem.Fom.fs fom -> ()
  | _ -> invalid_arg "Store.create: the FOM must live on the persistent file system");
  let fsys = O1mem.Fom.fs fom in
  (* Creating over an existing store would silently wipe its committed
     state (both journals are initialised blank below); reopening is not
     supported, so refuse rather than destroy. *)
  let mk path bytes =
    match Fs.Memfs.lookup fsys path with
    | Some _ ->
      invalid_arg (Printf.sprintf "Store.create: %s already exists (create never reopens a prior store)" path)
    | None ->
      let ino = Fs.Memfs.create_file fsys path ~persistence:Fs.Inode.Persistent in
      Fs.Memfs.extend fsys ino ~bytes_wanted:bytes;
      ino
  in
  let wal_ino = mk (name ^ ".wal") wal_bytes in
  let manifest_ino = mk (name ^ ".manifest") manifest_bytes in
  let nvm = Physmem.Nvm.create (Os.Kernel.mem (O1mem.Fom.kernel fom)) in
  let heap = Heap.Fom_heap.create fom proc ~arena_bytes ~file_prefix:(name ^ ".arena") () in
  let wal_base = contiguous_base fsys wal_ino ~bytes:wal_bytes in
  let manifest_base = contiguous_base fsys manifest_ino ~bytes:manifest_bytes in
  let manifest_half = manifest_bytes / 2 in
  let wal = Fs.Wal.create ~nvm ~base:wal_base ~capacity:wal_bytes in
  Fs.Wal.reset wal;
  (* Start from a clean slate durably: both manifest halves blank. *)
  for half = 0 to 1 do
    let w = Fs.Wal.create ~nvm ~base:(manifest_base + (half * manifest_half)) ~capacity:manifest_half in
    Fs.Wal.reset w
  done;
  incr instance;
  let t =
    {
      fom;
      proc;
      name;
      heap;
      nvm;
      wal_base;
      wal_capacity = wal_bytes;
      wal;
      manifest_base;
      manifest_half;
      manifest_current = 1;
      generation = 0;
      index = Hashtbl.create 256;
      root_tbl = Hashtbl.create 8;
      txn = None;
      next_txn_id = 1;
      detached = false;
      recovery_truncations = 0;
      last_replayed = 0;
      rule_name = Printf.sprintf "store_roots:%s#%d" name !instance;
    }
  in
  O1mem.Fom.on_crash fom ~name:("store" ^ name) (fun () ->
      if not t.detached then Physmem.Nvm.crash t.nvm);
  O1mem.Fom.on_recover fom ~name:("store" ^ name) (fun () -> recover_hook t ());
  Os.Check.register_rule ~name:t.rule_name (root_rule t);
  update_gauges t;
  t

let detach t =
  t.detached <- true;
  Os.Check.unregister_rule ~name:t.rule_name;
  O1mem.Fom.remove_hooks t.fom ~name:("store" ^ t.name)

(* --- transactions --------------------------------------------------- *)

let require_txn t =
  match t.txn with
  | Some txn -> txn
  | None -> invalid_arg "Store: no open transaction"

let begin_txn t =
  if t.detached then invalid_arg "Store: detached";
  (match t.txn with Some _ -> invalid_arg "Store.begin_txn: transaction already open" | None -> ());
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  t.txn <- Some { id; ops = [] };
  update_gauges t;
  id

let put t key value =
  if key = "" || String.length key > max_key_bytes then invalid_arg "Store.put: bad key";
  if value = "" || String.length value > max_value_bytes then invalid_arg "Store.put: bad value size";
  let txn = require_txn t in
  txn.ops <- Put (key, value) :: txn.ops

let delete t key =
  let txn = require_txn t in
  txn.ops <- Delete key :: txn.ops

let set_root t root key =
  if root = "" then invalid_arg "Store.set_root: empty root name";
  let txn = require_txn t in
  txn.ops <- Set_root (root, key) :: txn.ops

let clear_root t root =
  let txn = require_txn t in
  txn.ops <- Clear_root root :: txn.ops

let abort t =
  ignore (require_txn t);
  t.txn <- None;
  update_gauges t

let addr_of t slot = Heap.Fom_heap.address t.heap ~arena:slot.arena ~off:slot.off

let alloc_block t len =
  let attempt () =
    if FI.fires (plane t) ~site:FI.site_store_alloc then
      Sim.Errno.fail Sim.Errno.ENOSPC "Store.alloc (injected)"
    else Heap.Fom_heap.malloc t.heap ~bytes:len
  in
  try attempt ()
  with Sim.Errno.Error ((Sim.Errno.ENOMEM | Sim.Errno.ENOSPC), _) ->
    (* Graceful degradation: defragment the file system (coalescing free
       space so the next arena can be a single extent) and retry once. *)
    Sim.Stats.incr (stats t) "store_alloc_retry";
    ignore (Fs.Memfs.defragment (fs t) ());
    attempt ()

let live_apply_put t key slot =
  (match Hashtbl.find_opt t.index key with
  | Some old -> Heap.Fom_heap.free t.heap (addr_of t old)
  | None -> ());
  Hashtbl.replace t.index key slot

let live_apply_delete t key =
  match Hashtbl.find_opt t.index key with
  | None -> ()
  | Some old ->
    Heap.Fom_heap.free t.heap (addr_of t old);
    Hashtbl.remove t.index key;
    let dead = Hashtbl.fold (fun r k acc -> if k = key then r :: acc else acc) t.root_tbl [] in
    List.iter (Hashtbl.remove t.root_tbl) dead

let checkpoint_locked t =
  let gen = t.generation + 1 in
  let snap = encode_snapshot t ~gen in
  let half = 1 - t.manifest_current in
  let base = t.manifest_base + (half * t.manifest_half) in
  let mwal = Fs.Wal.create ~nvm:t.nvm ~base ~capacity:t.manifest_half in
  Fs.Wal.reset mwal;
  (match Fs.Wal.append mwal snap with
  | Ok () -> ()
  | Error Fs.Wal.Wal_full -> Sim.Errno.fail Sim.Errno.ENOSPC "Store.checkpoint: manifest too small");
  (* The new snapshot is durable; only now may the redo log be cut. A
     crash in between replays the log on top of the snapshot, which is
     idempotent. *)
  t.generation <- gen;
  t.manifest_current <- half;
  Fs.Wal.reset t.wal;
  Sim.Stats.incr (stats t) "store_checkpoint";
  update_gauges t

let checkpoint t =
  if t.detached then invalid_arg "Store: detached";
  (match t.txn with Some _ -> invalid_arg "Store.checkpoint: transaction open" | None -> ());
  pspan t "store_checkpoint" @@ fun () -> checkpoint_locked t

let commit t =
  let txn = require_txn t in
  pspan t "store_commit" @@ fun () ->
  let start = now t in
  if FI.fires (plane t) ~site:FI.site_store_commit then begin
    t.txn <- None;
    update_gauges t;
    Sim.Stats.incr (stats t) "store_commit_abort";
    Sim.Errno.fail Sim.Errno.EIO "Store.commit: injected abort"
  end;
  let ops = List.rev txn.ops in
  let allocated = ref [] in
  let rollback () =
    List.iter (fun va -> Heap.Fom_heap.free t.heap va) !allocated;
    t.txn <- None;
    update_gauges t
  in
  let staged =
    try
      List.map
        (fun op ->
          match op with
          | Put (k, v) ->
            let va = alloc_block t (String.length v) in
            allocated := va :: !allocated;
            let arena, off =
              match Heap.Fom_heap.locate t.heap va with
              | Some x -> x
              | None -> assert false (* values are capped below the large threshold *)
            in
            let slot = { arena; off; len = String.length v; cksum = checksum v } in
            (op, Some slot, encode_put ~id:txn.id k slot v)
          | Delete k -> (op, None, encode_delete ~id:txn.id k)
          | Set_root (r, k) -> (op, None, encode_set_root ~id:txn.id r k)
          | Clear_root r -> (op, None, encode_clear_root ~id:txn.id r))
        ops
    with e ->
      rollback ();
      raise e
  in
  let payloads = List.map (fun (_, _, p) -> p) staged @ [ encode_commit txn.id ] in
  let append_all () =
    let rec go = function
      | [] -> true
      | p :: tl -> (
        match Fs.Wal.append t.wal p with
        | Ok () -> go tl
        | Error Fs.Wal.Wal_full -> false)
    in
    go payloads
  in
  if not (append_all ()) then begin
    (* WAL full mid-commit: checkpoint and retry once. Apply-at-commit
       means every committed transaction is already durable in place, so
       cutting the log loses nothing; the current transaction's partial
       records die with the reset (its commit record never landed) and
       are re-appended whole. *)
    Sim.Stats.incr (stats t) "store_wal_checkpoint";
    (try checkpoint_locked t
     with e ->
       (* Checkpoint itself failed (e.g. the snapshot outgrew a manifest
          half): the transaction cannot land. Its partial records stay in
          the log but are txn-id-tagged, so replay can never attribute
          them to a later commit. *)
       rollback ();
       raise e);
    if not (append_all ()) then begin
      (* The checkpoint just cut the log, so it now holds only this
         transaction's partial records: cut them durably so the
         rolled-back ops can never be replayed. *)
      Fs.Wal.reset t.wal;
      rollback ();
      Sim.Errno.fail Sim.Errno.ENOSPC "Store.commit: transaction exceeds WAL capacity"
    end
  end;
  (* Commit point passed: apply in place (redo). *)
  List.iter
    (fun (op, slot, _) ->
      match (op, slot) with
      | Put (k, v), Some slot ->
        if FI.fires (plane t) ~site:FI.site_store_apply then begin
          (* A failed media write: pay for it, then redo. *)
          Sim.Stats.incr (stats t) "store_apply_retry";
          write_slot t slot v
        end;
        write_slot t slot v;
        live_apply_put t k slot
      | Delete k, _ -> live_apply_delete t k
      | Set_root (r, k), _ -> Hashtbl.replace t.root_tbl r k
      | Clear_root r, _ -> Hashtbl.remove t.root_tbl r
      | Put _, None -> assert false)
    staged;
  t.txn <- None;
  Sim.Stats.incr (stats t) "store_commit";
  update_gauges t;
  Sim.Trace.record (trace t) ~op:"store_commit" ~start ~arg:(List.length ops) ()

(* --- reads ---------------------------------------------------------- *)

let get t key =
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some slot ->
    let v = read_slot t slot in
    if checksum v <> slot.cksum then begin
      Sim.Stats.incr (stats t) "store_eio";
      Sim.Errno.fail Sim.Errno.EIO (Printf.sprintf "Store.get: checksum mismatch for %S" key)
    end;
    Some v

let mem t key = Hashtbl.mem t.index key
let root t name = Hashtbl.find_opt t.root_tbl name

let roots t =
  Hashtbl.fold (fun r k acc -> (r, k) :: acc) t.root_tbl [] |> List.sort compare

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.index [] |> List.sort String.compare
let object_count t = Hashtbl.length t.index
let txn_live t = match t.txn with Some _ -> true | None -> false
let wal_used_bytes t = Fs.Wal.used_bytes t.wal
let wal_record_count t = Fs.Wal.entry_count t.wal
let arena_count t = Heap.Fom_heap.arena_count t.heap
let generation t = t.generation
let recovery_truncations t = t.recovery_truncations
let last_replayed t = t.last_replayed
let name t = t.name
let proc t = t.proc

let verify t =
  let acc = ref (root_rule t (kernel t)) in
  Hashtbl.iter
    (fun k slot ->
      match read_slot t slot with
      | v ->
        if checksum v <> slot.cksum then
          acc :=
            {
              Os.Check.check = "store_data";
              detail = Printf.sprintf "%s: key %S fails its checksum" t.name k;
            }
            :: !acc
      | exception Invalid_argument msg ->
        acc :=
          { Os.Check.check = "store_data"; detail = Printf.sprintf "%s: key %S: %s" t.name k msg }
          :: !acc)
    t.index;
  List.rev !acc
