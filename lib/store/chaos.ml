(* Crash/torn-write exploration and the "store" fault plan.

   Same discipline as O1mem.Chaos: pass 0 runs a deterministic mixed
   put/delete/grow burst to completion with ["durable_step"] unarmed,
   which enumerates every clwb/sfence/WAL boundary the burst crosses
   (boundaries crossed by store creation and preload are excluded — the
   interesting window is the burst). The explorer then replays the burst
   once per boundary with [On_nth k] armed, loses power exactly there,
   recovers through O1mem.Persistence (which runs the store's hooks),
   and demands the committed-prefix state.

   Two damage arms ride on sampled boundaries: torn lines and bit flips
   armed probabilistically while the burst runs. Those crashes may lose
   more than the in-flight transaction — but every loss must be
   *detected* (a WAL/manifest truncation or an EIO on read), never
   served as silently wrong data: any value the store does return must
   be one the workload actually wrote. *)

module FI = Sim.Fault_inject

type report = {
  steps : int;
  fences : int;
  crashes : int;
  torn_detections : int;
  flip_detections : int;
  violations : string list;
}

let add violations k msg = violations := Printf.sprintf "step %d: %s" k msg :: !violations

(* O1mem.Chaos does not export its machine config; keep a copy in sync. *)
let chaos_config =
  {
    Os.Kernel.default_config with
    Os.Kernel.dram_bytes = Sim.Units.mib 8;
    nvm_bytes = Sim.Units.mib 8;
    cores = 4;
  }

let store_machine ~seed =
  let kernel = Os.Kernel.create ~config:chaos_config () in
  let plane = FI.create ~seed ~stats:(Os.Kernel.stats kernel) () in
  Sim.Trace.attach_faults (Os.Kernel.trace kernel) plane;
  let fom = O1mem.Fom.create kernel () in
  (kernel, fom, plane)

(* --- the deterministic workload ------------------------------------ *)

type wop =
  | W_put of string * string
  | W_delete of string
  | W_set_root of string * string
  | W_clear_root of string

let key i = Printf.sprintf "key%02d" i

(* Version v of key i: length grows with v so re-puts change size class
   and slots move. *)
let value i v = String.make (24 + (40 * v)) (Char.chr (Char.code 'a' + ((i + v) mod 26)))

(* Transaction c of the burst: two puts (one growing re-put), a delete on
   even rounds, and root churn. The delete target is distinct from both
   puts for any keys >= 4, so the root set in the same transaction always
   names a live key. *)
let ops_of_txn ~keys c =
  let a = 2 * c mod keys and b = ((2 * c) + 1) mod keys in
  let d = ((2 * c) + 3) mod keys in
  [ W_put (key a, value a c); W_put (key b, value b c) ]
  @ (if c mod 2 = 0 then [ W_delete (key d) ] else [])
  @ [ W_set_root ("head", key a) ]
  @ if c mod 3 = 0 then [ W_set_root ("aux", key b) ] else [ W_clear_root "aux" ]

let preload_ops ~keys =
  List.init keys (fun i -> W_put (key i, value i 0)) @ [ W_set_root ("head", key 0) ]

(* Host-side mirror of the store semantics (delete clears referencing
   roots), applied transaction by transaction; mirrors.(c) is the state
   after commit c (0 = after preload + checkpoint). *)
let mirror_states ~keys ~txns =
  let objs = Hashtbl.create 16 and roots = Hashtbl.create 4 in
  let apply = function
    | W_put (k, v) -> Hashtbl.replace objs k v
    | W_delete k ->
      Hashtbl.remove objs k;
      let dead = Hashtbl.fold (fun r k' acc -> if k' = k then r :: acc else acc) roots [] in
      List.iter (Hashtbl.remove roots) dead
    | W_set_root (r, k) -> Hashtbl.replace roots r k
    | W_clear_root r -> Hashtbl.remove roots r
  in
  let snap () =
    ( Hashtbl.fold (fun k v acc -> (k, v) :: acc) objs [] |> List.sort compare,
      Hashtbl.fold (fun r k acc -> (r, k) :: acc) roots [] |> List.sort compare )
  in
  List.iter apply (preload_ops ~keys);
  Array.init (txns + 1) (fun c ->
      if c > 0 then List.iter apply (ops_of_txn ~keys c);
      snap ())

(* Every value ever written per key, for the damage arms: whatever the
   recovered store returns must be one of these. *)
let history ~keys ~txns =
  let h = Hashtbl.create 16 in
  let note = function
    | W_put (k, v) ->
      Hashtbl.replace h k (v :: (Option.value (Hashtbl.find_opt h k) ~default:[]))
    | _ -> ()
  in
  List.iter note (preload_ops ~keys);
  for c = 1 to txns do
    List.iter note (ops_of_txn ~keys c)
  done;
  h

let apply_store st = function
  | W_put (k, v) -> Kv.put st k v
  | W_delete k -> Kv.delete st k
  | W_set_root (r, k) -> Kv.set_root st r k
  | W_clear_root r -> Kv.clear_root st r

(* Build the store, preload, checkpoint (calling [on_loaded] at the
   boundary watermark), then run the burst; [acked] tracks acknowledged
   commits so a crash replay knows which mirror to expect. *)
let run_workload ~keys ~txns (kernel, fom) ~on_loaded ~acked ~store_out =
  let proc = Os.Kernel.create_process kernel () in
  let st = Kv.create fom proc ~name:"/kv" () in
  store_out := Some st;
  ignore (Kv.begin_txn st);
  List.iter (apply_store st) (preload_ops ~keys);
  Kv.commit st;
  Kv.checkpoint st;
  on_loaded ();
  for c = 1 to txns do
    ignore (Kv.begin_txn st);
    List.iter (apply_store st) (ops_of_txn ~keys c);
    Kv.commit st;
    acked := c
  done

let state_of st =
  let objs = List.map (fun k -> (k, Option.get (Kv.get st k))) (Kv.keys st) in
  (objs, Kv.roots st)

let state_eq (o1, r1) (o2, r2) =
  List.length o1 = List.length o2
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && String.equal v1 v2) o1 o2
  && r1 = r2

let describe (objs, roots) =
  Printf.sprintf "%d object(s), %d root(s)" (List.length objs) (List.length roots)

(* Post-recovery usability: the store must still accept transactions and
   serve fresh writes exactly. The full checksum sweep only applies to
   clean crashes — damage arms intentionally corrupt values, and their
   detection is counted through EIO reads instead. *)
let probe_usable ?(verify = true) st violations k =
  ignore (Kv.begin_txn st);
  Kv.put st "probe" "post-recovery";
  Kv.commit st;
  (match Kv.get st "probe" with
  | Some "post-recovery" -> ()
  | _ -> add violations k "recovered store does not serve a fresh write"
  | exception _ -> add violations k "recovered store cannot serve a fresh write");
  if verify then
    match Kv.verify st with
    | [] -> ()
    | vs -> List.iter (fun v -> add violations k (Os.Check.violation_to_string v)) vs

let check_os kernel violations k =
  match Os.Check.run kernel with
  | [] -> ()
  | vs -> List.iter (fun v -> add violations k (Os.Check.violation_to_string v)) vs

let explore_store ?(keys = 6) ?(txns = 3) ?(seed = 17) () =
  if keys < 4 then invalid_arg "Chaos.explore_store: keys must be >= 4";
  let mirrors = mirror_states ~keys ~txns in
  let hist = history ~keys ~txns in
  (* Pass 0: enumerate the burst's durable boundaries. *)
  let kernel0, fom0, plane0 = store_machine ~seed in
  let e0 = ref 0 and f0 = ref 0 in
  let acked0 = ref 0 and st0 = ref None in
  run_workload ~keys ~txns (kernel0, fom0)
    ~on_loaded:(fun () ->
      e0 := FI.evaluations plane0 ~site:FI.site_durable_step;
      f0 := Sim.Stats.get (Os.Kernel.stats kernel0) "sfence")
    ~acked:acked0 ~store_out:st0;
  let e1 = FI.evaluations plane0 ~site:FI.site_durable_step in
  let fences = Sim.Stats.get (Os.Kernel.stats kernel0) "sfence" - !f0 in
  (* Pass 0 must end in the final mirror, or the explorer proves nothing. *)
  let violations = ref [] in
  (match !st0 with
  | Some st ->
    if not (state_eq (state_of st) mirrors.(txns)) then
      add violations 0
        (Printf.sprintf "baseline mismatch: store has %s, mirror %s" (describe (state_of st))
           (describe mirrors.(txns)));
    Kv.detach st
  | None -> add violations 0 "baseline workload built no store");
  let steps = e1 - !e0 in
  let crashes = ref 0 in
  (* Clean power-loss at every burst boundary: the recovered state is the
     committed prefix — mirror [acked], or [acked+1] when the crash fell
     between the commit record becoming durable and the acknowledgement
     (redo replays the in-flight transaction). *)
  for k = !e0 + 1 to e1 do
    let kernel, fom, plane = store_machine ~seed in
    FI.arm plane ~site:FI.site_durable_step (FI.On_nth k);
    let acked = ref 0 and store_out = ref None in
    let crashed =
      try
        run_workload ~keys ~txns (kernel, fom) ~on_loaded:(fun () -> ()) ~acked ~store_out;
        false
      with FI.Injected_crash _ -> true
    in
    incr crashes;
    if not crashed then add violations k "durable step never fired";
    let report = O1mem.Persistence.crash_and_recover fom in
    (match List.assoc_opt "store/kv" report.O1mem.Persistence.hook_records with
    | Some _ -> ()
    | None -> add violations k "recovery never ran the store hook");
    (match !store_out with
    | None -> add violations k "crash before the store existed (boundary accounting is off)"
    | Some st ->
      let got = state_of st in
      let want = mirrors.(!acked) in
      let next = if !acked < txns then Some mirrors.(!acked + 1) else None in
      if not (state_eq got want || match next with Some n -> state_eq got n | None -> false) then
        add violations k
          (Printf.sprintf "recovered %s; committed prefix has %s (acked %d)" (describe got)
             (describe want) !acked);
      check_os kernel violations k;
      probe_usable st violations k;
      Kv.detach st)
  done;
  (* Damage arms: torn lines / bit flips active during the burst, crash at
     sampled boundaries. Losses are allowed; *undetected* damage is not. *)
  let torn_detections = ref 0 and flip_detections = ref 0 in
  let damage_arm ~site ~p ~counter =
    let pass ~stride ~p ~salt =
    let boundary = ref (!e0 + 1) in
    while !boundary <= e1 do
      let k = !boundary in
      boundary := !boundary + stride;
      (* A fresh plane seed per boundary: with a shared seed every run
         draws the same tear pattern, and one unlucky trajectory (all
         damage healed by later flushes or the redo pass) would blind
         the whole arm. *)
      let kernel, fom, plane = store_machine ~seed:(seed + (salt * k)) in
      FI.arm plane ~site:FI.site_durable_step (FI.On_nth k);
      FI.arm plane ~site (FI.Prob p);
      let acked = ref 0 and store_out = ref None in
      let crashed =
        try
          run_workload ~keys ~txns (kernel, fom) ~on_loaded:(fun () -> ()) ~acked ~store_out;
          false
        with FI.Injected_crash _ -> true
      in
      incr crashes;
      if not crashed then add violations k "durable step never fired (damage arm)";
      (* The damage happened while power was on; recovery itself runs on
         healthy hardware. *)
      FI.disarm plane ~site;
      FI.disarm plane ~site:FI.site_durable_step;
      ignore (O1mem.Persistence.crash_and_recover fom);
      (match !store_out with
      | None -> add violations k "crash before the store existed (damage arm)"
      | Some st ->
        counter := !counter + Kv.recovery_truncations st;
        List.iter
          (fun key ->
            match Kv.get st key with
            | None -> ()
            | Some v ->
              let known = Option.value (Hashtbl.find_opt hist key) ~default:[] in
              if not (List.exists (String.equal v) known) then
                add violations k
                  (Printf.sprintf "key %S recovered with a value that was never written" key)
            | exception Sim.Errno.Error (Sim.Errno.EIO, _) -> incr counter)
          (Kv.keys st);
        check_os kernel violations k;
        probe_usable ~verify:false st violations k;
        Kv.detach st)
    done
    in
    pass ~stride:(max 1 (steps / 4)) ~p ~salt:997;
    (* Damage can legitimately land only on lines a later flush or the
       recovery redo pass rewrites; escalate (denser boundaries, hotter
       injection, new seeds) before concluding the detectors are blind. *)
    if !counter = 0 then pass ~stride:(max 1 (steps / 8)) ~p:(min 0.9 (3.0 *. p)) ~salt:1009
  in
  damage_arm ~site:FI.site_nvm_torn_line ~p:0.35 ~counter:torn_detections;
  damage_arm ~site:FI.site_nvm_bit_flip ~p:0.2 ~counter:flip_detections;
  if !torn_detections = 0 then
    add violations 0 "torn-line arm: no crash produced a detected truncation or EIO";
  if !flip_detections = 0 then
    add violations 0 "bit-flip arm: no crash produced a detected truncation or EIO";
  {
    steps;
    fences;
    crashes = !crashes;
    torn_detections = !torn_detections;
    flip_detections = !flip_detections;
    violations = List.rev !violations;
  }

(* --- the "store" fault plan ----------------------------------------- *)

(* Sustained probabilistic injection at the store's own sites while a
   transaction mix runs, a mid-run crash/recover, then the ENOSPC finale:
   a value bigger than the WAL can ever hold must fail typed, with the
   store intact. Returned as an O1mem.Chaos.plan_outcome so the faults
   CLI prints every plan uniformly. *)
let run_plan ?(seed = 1) ?(rounds = 12) () =
  let kernel, fom, plane = store_machine ~seed in
  FI.arm plane ~site:FI.site_store_alloc (FI.Prob 0.15);
  FI.arm plane ~site:FI.site_store_commit (FI.Prob 0.1);
  FI.arm plane ~site:FI.site_store_apply (FI.Prob 0.15);
  let proc = Os.Kernel.create_process kernel () in
  let st = Kv.create fom proc ~name:"/kv" () in
  let enomem = ref 0 and enospc = ref 0 in
  let guard f =
    try f () with
    | Sim.Errno.Error (Sim.Errno.ENOMEM, _) -> incr enomem
    | Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> incr enospc
    | Sim.Errno.Error (Sim.Errno.EIO, _) -> () (* injected commit abort: txn rolled back *)
  in
  for i = 1 to rounds do
    guard (fun () ->
        ignore (Kv.begin_txn st);
        Kv.put st (key (i mod 8)) (value (i mod 8) (i mod 5));
        Kv.put st (Printf.sprintf "round%02d" i) (String.make (64 + (i * 16 mod 512)) 'r');
        if i mod 3 = 0 then Kv.delete st (key ((i + 1) mod 8));
        Kv.set_root st "latest" (Printf.sprintf "round%02d" i);
        Kv.commit st);
    if Kv.txn_live st then Kv.abort st;
    if i mod 4 = 0 then guard (fun () -> Kv.checkpoint st)
  done;
  (* Mid-plan power loss: the store must come back and keep serving. *)
  ignore (O1mem.Persistence.crash_and_recover fom);
  guard (fun () ->
      ignore (Kv.begin_txn st);
      Kv.put st "after-crash" "still here";
      Kv.commit st);
  (* ENOSPC finale: a transaction that cannot fit the WAL even after the
     checkpoint-and-retry pass must fail typed and leave no trace. *)
  (try
     ignore (Kv.begin_txn st);
     for j = 1 to 24 do
       Kv.put st (Printf.sprintf "huge%02d" j) (String.make (Sim.Units.kib 8) 'h')
     done;
     Kv.commit st
   with
  | Sim.Errno.Error (Sim.Errno.ENOSPC, _) -> incr enospc
  | Sim.Errno.Error ((Sim.Errno.ENOMEM | Sim.Errno.EIO), _) -> ());
  if Kv.txn_live st then Kv.abort st;
  let partial = List.filter (fun k -> String.length k >= 4 && String.sub k 0 4 = "huge") (Kv.keys st) in
  let checks =
    Os.Check.run kernel @ Kv.verify st
    @
    if partial <> [] then
      [
        {
          Os.Check.check = "store_degrade";
          detail = Printf.sprintf "failed bulk commit left %d partial object(s)" (List.length partial);
        };
      ]
    else []
  in
  let stats = Os.Kernel.stats kernel in
  {
    O1mem.Chaos.plan = "store";
    seed;
    sites = FI.totals plane;
    injected_total = FI.injected_total plane;
    enomem = !enomem;
    enospc = !enospc;
    retried = Sim.Stats.get stats "store_alloc_retry";
    reclaimed_frames = Sim.Stats.get stats "alloc_reclaimed_frames";
    ooms = Sim.Stats.get stats "alloc_oom";
    checks;
  }
