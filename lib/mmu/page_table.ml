module Frame = Physmem.Frame

type leaf = {
  mutable pfn : Frame.t;
  mutable prot : Prot.t;
  mutable accessed : bool;
  mutable dirty : bool;
  size : Page_size.t;
}

type entry = Empty | Table of node | Leaf of leaf

and node = {
  frame : Frame.t;
  entries : entry array;
  mutable live : int; (* non-empty entries *)
  mutable refs : int; (* parents pointing at this node (graft sharing) *)
}

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  levels : int;
  alloc_frame : unit -> Frame.t;
  root : node;
  mutable owned_nodes : int;
}

let fanout = 512
let bits_per_level = 9

let model t = Sim.Clock.model t.clock
let charge t c = Sim.Clock.charge t.clock c

let new_node t =
  let frame = t.alloc_frame () in
  charge t (model t).Sim.Cost_model.pt_node_alloc;
  Sim.Stats.incr t.stats "pt_node_alloc";
  t.owned_nodes <- t.owned_nodes + 1;
  { frame; entries = Array.make fanout Empty; live = 0; refs = 1 }

let create ~clock ~stats ~levels ~alloc_frame =
  if levels <> 4 && levels <> 5 then invalid_arg "Page_table.create: levels must be 4 or 5";
  let frame = alloc_frame () in
  Sim.Clock.charge clock (Sim.Clock.model clock).Sim.Cost_model.pt_node_alloc;
  let root = { frame; entries = Array.make fanout Empty; live = 0; refs = 1 } in
  { clock; stats; levels; alloc_frame; root; owned_nodes = 1 }

let levels t = t.levels
let va_bits t = (t.levels * bits_per_level) + Sim.Units.page_shift

(* Shift for the index of a node at [depth]; root is depth 0. *)
let shift t ~depth = Sim.Units.page_shift + (bits_per_level * (t.levels - 1 - depth))
let index t ~depth va = (va lsr shift t ~depth) land (fanout - 1)
let entry_span t ~depth = 1 lsl shift t ~depth

let max_va t = 1 lsl va_bits t

let check_va t va =
  if va < 0 || va >= max_va t then invalid_arg "Page_table: VA out of range"

(* Depth of the node holding the leaf for a page of [size]. *)
let leaf_node_depth t size = t.levels - 1 - Page_size.depth_above_leaf size

(* Walk to the node at [depth] along [va], creating missing interior
   nodes when [create_path] is set. *)
let rec descend t node ~cur ~depth ~va ~create_path =
  if cur = depth then Some node
  else
    let i = index t ~depth:cur va in
    match node.entries.(i) with
    | Table child -> descend t child ~cur:(cur + 1) ~depth ~va ~create_path
    | Leaf _ -> None
    | Empty ->
      if not create_path then None
      else begin
        let child = new_node t in
        node.entries.(i) <- Table child;
        node.live <- node.live + 1;
        descend t child ~cur:(cur + 1) ~depth ~va ~create_path
      end

let map_page t ~va ~pfn ~prot ~size =
  check_va t va;
  let bytes = Page_size.bytes size in
  if not (Sim.Units.is_aligned va ~align:bytes) then
    invalid_arg "Page_table.map_page: misaligned VA";
  if not (Sim.Units.is_aligned (Frame.to_addr pfn) ~align:bytes) then
    invalid_arg "Page_table.map_page: misaligned PA";
  let depth = leaf_node_depth t size in
  match descend t t.root ~cur:0 ~depth ~va ~create_path:true with
  | None -> invalid_arg "Page_table.map_page: blocked by an existing mapping"
  | Some node ->
    let i = index t ~depth va in
    (match node.entries.(i) with
    | Empty ->
      node.entries.(i) <- Leaf { pfn; prot; accessed = false; dirty = false; size };
      node.live <- node.live + 1;
      charge t (model t).Sim.Cost_model.pte_write;
      Sim.Stats.incr t.stats "pte_write"
    | Leaf _ -> invalid_arg "Page_table.map_page: already mapped"
    | Table _ -> invalid_arg "Page_table.map_page: occupied by a page-table subtree")

let map_range t ~va ~pfn ~len ~prot ~huge =
  check_va t va;
  let pa = Frame.to_addr pfn in
  if not (Sim.Units.is_aligned va ~align:Sim.Units.page_size)
     || not (Sim.Units.is_aligned len ~align:Sim.Units.page_size)
  then invalid_arg "Page_table.map_range: unaligned VA or length";
  let rec loop va pa remaining count =
    if remaining = 0 then count
    else
      let size =
        if huge then
          (* Both the virtual and physical cursors must be aligned. *)
          let s_va = Page_size.largest_for ~addr:va ~len:remaining in
          let s_pa = Page_size.largest_for ~addr:pa ~len:remaining in
          if Page_size.bytes s_va <= Page_size.bytes s_pa then s_va else s_pa
        else Page_size.Small
      in
      let b = Page_size.bytes size in
      map_page t ~va ~pfn:(Frame.of_addr pa) ~prot ~size;
      loop (va + b) (pa + b) (remaining - b) (count + 1)
  in
  loop va pa len 0

(* Walk down recording the path so we can prune empty nodes. Fails (None)
   if the leaf is missing. *)
let path_to_leaf t va =
  let rec loop node depth acc =
    let i = index t ~depth va in
    match node.entries.(i) with
    | Empty -> None
    | Leaf leaf -> Some (leaf, (node, i) :: acc)
    | Table child -> loop child (depth + 1) ((node, i) :: acc)
  in
  loop t.root 0 []

let free_node t node =
  t.owned_nodes <- t.owned_nodes - 1;
  Sim.Stats.incr t.stats "pt_node_free";
  ignore node.frame

let unmap_page t ~va =
  check_va t va;
  match path_to_leaf t va with
  | None -> invalid_arg "Page_table.unmap_page: not mapped"
  | Some (_, path) ->
    charge t (model t).Sim.Cost_model.pte_write;
    Sim.Stats.incr t.stats "pte_clear";
    (* path is deepest-first. Clearing a leaf inside a shared subtree is
       legitimate (all sharers see the unmap — that is the semantics of a
       shared mapping), but a node referenced by other tables must never
       be pruned. *)
    let rec clear = function
      | [] -> ()
      | (node, i) :: rest ->
        (match node.entries.(i) with
        | Empty -> ()
        | Leaf _ ->
          node.entries.(i) <- Empty;
          node.live <- node.live - 1
        | Table child ->
          if child.live = 0 && child.refs = 1 then begin
            node.entries.(i) <- Empty;
            node.live <- node.live - 1;
            free_node t child
          end);
        (* Continue pruning upward only while nodes empty out. *)
        (match node.entries.(i) with
        | Empty when node.live = 0 -> clear rest
        | _ -> ())
    in
    clear path

let ensure_node t ~va ~depth =
  check_va t va;
  if depth < 0 || depth >= t.levels then invalid_arg "Page_table.ensure_node: bad depth";
  match descend t t.root ~cur:0 ~depth ~va ~create_path:true with
  | Some _ -> ()
  | None -> invalid_arg "Page_table.ensure_node: blocked by an existing leaf"

let lookup t ~va =
  check_va t va;
  let rec loop node depth =
    let i = index t ~depth va in
    match node.entries.(i) with
    | Empty -> None
    | Leaf leaf ->
      let span = Page_size.bytes leaf.size in
      let off = va land (span - 1) in
      Some (Frame.to_addr leaf.pfn + off, leaf)
    | Table child -> loop child (depth + 1)
  in
  loop t.root 0

let leaf_depth t ~va =
  check_va t va;
  let rec loop node depth =
    let i = index t ~depth va in
    match node.entries.(i) with
    | Empty -> None
    | Leaf _ -> Some depth
    | Table child -> loop child (depth + 1)
  in
  loop t.root 0

let unmap_range t ~va ~len =
  check_va t va;
  if len <= 0 then 0
  else begin
    check_va t (va + len - 1);
    let count = ref 0 in
    let cursor = ref va in
    while !cursor < va + len do
      match lookup t ~va:!cursor with
      | None -> cursor := !cursor + Sim.Units.page_size
      | Some (_, leaf) ->
        let span = Page_size.bytes leaf.size in
        let base = Sim.Units.round_down !cursor ~align:span in
        unmap_page t ~va:base;
        incr count;
        cursor := base + span
    done;
    !count
  end

let protect_range t ~va ~len ~prot =
  check_va t va;
  if len <= 0 then 0
  else begin
    let count = ref 0 in
    let cursor = ref va in
    while !cursor < va + len do
      (match lookup t ~va:!cursor with
      | None -> cursor := !cursor + Sim.Units.page_size
      | Some (_, leaf) ->
        leaf.prot <- prot;
        charge t (model t).Sim.Cost_model.pte_write;
        Sim.Stats.incr t.stats "pte_protect";
        incr count;
        let span = Page_size.bytes leaf.size in
        cursor := Sim.Units.round_down !cursor ~align:span + span)
    done;
    !count
  end

let node_at t ~va ~depth =
  (* The node at [depth] whose entry (index of va) roots the subtree. *)
  descend t t.root ~cur:0 ~depth ~va ~create_path:false

let share_subtree ~src ~src_va ~dst ~dst_va ~depth =
  if src.levels <> dst.levels then invalid_arg "Page_table.share_subtree: level mismatch";
  if depth <= 0 || depth >= src.levels then invalid_arg "Page_table.share_subtree: bad depth";
  let span = entry_span src ~depth:(depth - 1) in
  (* The shared unit is the subtree under one entry of a depth-1 node...
     concretely: the entry at [depth-1] indexed by va points to the node
     at [depth]. Alignment must be to that entry's span. *)
  if not (Sim.Units.is_aligned src_va ~align:span) || not (Sim.Units.is_aligned dst_va ~align:span)
  then invalid_arg "Page_table.share_subtree: VAs not aligned to subtree span";
  match node_at src ~va:src_va ~depth with
  | None -> invalid_arg "Page_table.share_subtree: source subtree missing"
  | Some src_node -> (
    match descend dst dst.root ~cur:0 ~depth:(depth - 1) ~va:dst_va ~create_path:true with
    | None -> invalid_arg "Page_table.share_subtree: destination blocked"
    | Some parent ->
      let i = index dst ~depth:(depth - 1) dst_va in
      (match parent.entries.(i) with
      | Empty ->
        parent.entries.(i) <- Table src_node;
        parent.live <- parent.live + 1;
        src_node.refs <- src_node.refs + 1;
        Sim.Clock.charge dst.clock (Sim.Clock.model dst.clock).Sim.Cost_model.pte_write;
        Sim.Stats.incr dst.stats "pt_subtree_share"
      | _ -> invalid_arg "Page_table.share_subtree: destination slot occupied"))

let unshare t ~va ~depth =
  if depth <= 0 || depth >= t.levels then invalid_arg "Page_table.unshare: bad depth";
  match descend t t.root ~cur:0 ~depth:(depth - 1) ~va ~create_path:false with
  | None -> invalid_arg "Page_table.unshare: no such entry"
  | Some parent -> (
    let i = index t ~depth:(depth - 1) va in
    match parent.entries.(i) with
    | Table child when child.refs > 1 ->
      child.refs <- child.refs - 1;
      parent.entries.(i) <- Empty;
      parent.live <- parent.live - 1;
      charge t (model t).Sim.Cost_model.pte_write;
      Sim.Stats.incr t.stats "pt_subtree_unshare"
    | Table _ -> invalid_arg "Page_table.unshare: subtree is not shared"
    | Empty | Leaf _ -> invalid_arg "Page_table.unshare: no subtree at this entry")

let is_shared_at t ~va ~depth =
  if depth <= 0 || depth >= t.levels then false
  else
    match descend t t.root ~cur:0 ~depth:(depth - 1) ~va ~create_path:false with
    | None -> false
    | Some parent -> (
      match parent.entries.(index t ~depth:(depth - 1) va) with
      | Table child -> child.refs > 1
      | Empty | Leaf _ -> false)

let iter_leaves t f =
  let rec walk node depth va_base =
    Array.iteri
      (fun i e ->
        let va = va_base + (i * entry_span t ~depth) in
        match e with
        | Empty -> ()
        | Leaf leaf -> f va leaf
        | Table child -> walk child (depth + 1) va)
      node.entries
  in
  walk t.root 0 0

let pte_count t =
  let n = ref 0 in
  iter_leaves t (fun _ _ -> incr n);
  !n

let node_count t = t.owned_nodes
let metadata_bytes t = t.owned_nodes * Sim.Units.page_size
