type mode = Native | Virtualized of int

let refs_for_walk ~guest_levels ~leaf_depth ~mode =
  let g = leaf_depth + 1 in
  (* g guest-table references to reach the leaf. *)
  ignore guest_levels;
  match mode with
  | Native -> g
  | Virtualized h ->
    (* Each guest reference costs a host walk (h refs) plus itself, and the
       final guest-physical data address needs one more host walk:
       g*(h+1) + h = (g+1)*(h+1) - 1. *)
    ((g + 1) * (h + 1)) - 1

let walk ?(trace = Sim.Trace.disabled) ~clock ~stats ~table ~mode ~va () =
  Sim.Trace.prof_span trace "page_walk" @@ fun () ->
  let start = Sim.Clock.now clock in
  let leaf_depth =
    match Page_table.leaf_depth table ~va with
    | Some d -> d
    | None -> Page_table.levels table - 1 (* walked all the way to the hole *)
  in
  let refs =
    refs_for_walk ~guest_levels:(Page_table.levels table) ~leaf_depth ~mode
  in
  let model = Sim.Clock.model clock in
  (* Page-walk caches: upper-level entries hit in the PWC/data caches;
     only the final leaf PTE read goes to memory. *)
  Sim.Clock.charge clock
    (model.Sim.Cost_model.mem_ref_dram + ((refs - 1) * model.Sim.Cost_model.cache_ref));
  Sim.Stats.add stats "walk_refs" refs;
  Sim.Stats.incr stats "page_walks";
  let result =
    match Page_table.lookup table ~va with
    | None -> None
    | Some (pa, leaf) ->
      leaf.Page_table.accessed <- true;
      Some (pa, leaf)
  in
  Sim.Trace.record trace ~op:"page_walk" ~start ~arg:refs
    ~outcome:(match result with Some _ -> "ok" | None -> "hole")
    ();
  result
