type entry = { base : int; limit : int; offset : int; prot : Prot.t }

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  entries : entry Btree.t;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) () =
  { clock; stats; trace; entries = Btree.create () }

let model t = Sim.Clock.model t.clock

let charge_op t ~op =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.range_table_op;
  Sim.Stats.incr t.stats "range_table_op";
  Sim.Trace.record t.trace ~op ~start ()

let overlaps t ~base ~limit =
  (match Btree.find_last_leq t.entries ~key:base with
  | Some (_, e) -> e.base + e.limit > base
  | None -> false)
  ||
  match Btree.find_first_gt t.entries ~key:base with
  | Some (_, e) -> base + limit > e.base
  | None -> false

let insert t ~base ~limit ~offset ~prot =
  if limit <= 0 then invalid_arg "Range_table.insert: empty range";
  if not (Sim.Units.is_aligned base ~align:Sim.Units.page_size)
     || not (Sim.Units.is_aligned limit ~align:Sim.Units.page_size)
  then invalid_arg "Range_table.insert: unaligned range";
  if overlaps t ~base ~limit then invalid_arg "Range_table.insert: overlapping range";
  charge_op t ~op:"range_table_insert";
  Btree.insert t.entries ~key:base { base; limit; offset; prot }

let remove t ~base =
  match Btree.remove t.entries ~key:base with
  | None -> raise Not_found
  | Some e ->
    charge_op t ~op:"range_table_remove";
    e

let lookup t ~va =
  match Btree.find_last_leq t.entries ~key:va with
  | Some (_, e) when va < e.base + e.limit -> Some e
  | _ -> None

let walk t ~va =
  let start = Sim.Clock.now t.clock in
  (* A hardware refill reads one B-tree node per level. *)
  let refs = Btree.height t.entries in
  Sim.Clock.charge t.clock (refs * (model t).Sim.Cost_model.mem_ref_dram);
  Sim.Stats.add t.stats "range_walk_refs" refs;
  Sim.Stats.incr t.stats "range_walks";
  let result = lookup t ~va in
  Sim.Trace.record t.trace ~op:"range_table_walk" ~start ~arg:refs
    ~outcome:(match result with Some _ -> "hit" | None -> "miss")
    ();
  result

let entry_count t = Btree.cardinal t.entries
let metadata_bytes t = 32 * Btree.cardinal t.entries
let iter t f = Btree.iter t.entries (fun _ e -> f e)
