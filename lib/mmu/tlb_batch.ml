type t = {
  mmu : Mmu.t;
  mutable ranges : (int * int) list; (* (va, len), reverse accumulation order *)
  mutable pages : int;
}

let create mmu = { mmu; ranges = []; pages = 0 }

let add t ~va ~len =
  if len > 0 then begin
    t.ranges <- (va, len) :: t.ranges;
    t.pages <- t.pages + Sim.Units.pages_of_bytes len
  end

let pages t = t.pages

let flush t =
  if t.pages > 0 then begin
    Sim.Profile.span (Sim.Trace.profile (Mmu.trace t.mmu)) "tlb_batch" @@ fun () ->
    let clock = Mmu.clock t.mmu in
    let start = Sim.Clock.now clock in
    let full = t.pages >= Tlb.full_flush_threshold_pages in
    let plane = Sim.Trace.faults (Mmu.trace t.mmu) in
    if full then Mmu.flush_tlbs t.mmu
    else
      List.iter
        (fun (va, len) ->
          (* Lost shootdown acknowledgement: this range's INVLPGs never
             happen, leaving stale TLB entries for Check to find. *)
          if Sim.Fault_inject.fires plane ~site:Sim.Fault_inject.site_tlb_ack_lost then
            Sim.Stats.incr (Mmu.stats t.mmu) "tlb_ack_lost"
          else Mmu.invalidate_range t.mmu ~va ~len)
        t.ranges;
    Sim.Stats.incr (Mmu.stats t.mmu) "tlb_batch";
    Sim.Stats.add (Mmu.stats t.mmu) "tlb_batch_pages" t.pages;
    Sim.Trace.record (Mmu.trace t.mmu) ~op:"tlb_batch" ~start ~arg:t.pages
      ~outcome:(if full then "full_flush" else "invlpg")
      ();
    t.ranges <- [];
    t.pages <- 0
  end
