type t = {
  mmu : Mmu.t;
  mutable ranges : (int * int) list; (* (va, len), reverse accumulation order *)
  mutable pages : int;
}

let create mmu = { mmu; ranges = []; pages = 0 }

let add t ~va ~len =
  if len > 0 then begin
    t.ranges <- (va, len) :: t.ranges;
    t.pages <- t.pages + Sim.Units.pages_of_bytes len
  end

let pages t = t.pages

let flush t =
  if t.pages > 0 then begin
    Sim.Trace.prof_span (Mmu.trace t.mmu) "tlb_batch" @@ fun () ->
    let clock = Mmu.clock t.mmu in
    let start = Sim.Clock.now clock in
    let full = t.pages >= Tlb.full_flush_threshold_pages in
    (* One IPI round for the whole batch, however many ranges or pages it
       holds — the shootdown analogue of mmu_gather. Ack loss is handled
       inside the round: the victim core skips its invalidations and
       keeps stale entries. *)
    Mmu.shootdown_ranges t.mmu ~ranges:t.ranges ~pages:t.pages;
    Sim.Stats.incr (Mmu.stats t.mmu) "tlb_batch";
    Sim.Stats.add (Mmu.stats t.mmu) "tlb_batch_pages" t.pages;
    Sim.Trace.record (Mmu.trace t.mmu) ~op:"tlb_batch" ~start ~arg:t.pages
      ~outcome:(if full then "full_flush" else "invlpg")
      ();
    t.ranges <- [];
    t.pages <- 0
  end
