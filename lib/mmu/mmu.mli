(** Per-address-space MMU front end: the address space's page/range
    tables wired to the shared {!Smp} core complex. Translations fill the
    TLBs of the core the owning process currently runs on ([core]), and a
    [cpumask] (Linux's mm_cpumask) remembers every core that may still
    cache this address space's translations.

    Translation order on an access: the current core's page TLB, then its
    range TLB, then the backing structures (range table first if present
    — a hit there covers arbitrarily large spans with one entry — then
    the radix page table).

    Invalidations are local work plus an explicit IPI round-trip to every
    {e other} core in the cpumask: send (charged at the model's [ipi]
    cost, counted in "ipi_sent" and the source core's [ipi_sent]), remote
    invalidate, ack ("ipi_acked"). A fired [tlb_ack_lost] fault drops the
    remote handler and its ack, leaving a stale entry on the victim core
    that only [Os.Check] can catch. *)

type fault = Not_mapped | Protection

type t

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?trace:Sim.Trace.t -> table:Page_table.t ->
  ?range_table:Range_table.t -> ?mode:Walker.mode -> ?tlb_sets:int -> ?tlb_ways:int ->
  ?range_tlb_entries:int -> ?smp:Smp.t -> ?asid:int -> unit -> t
(** [smp] is the machine the address space runs on; omitted, a private
    single-core {!Smp} is built from the TLB geometry arguments (the
    pre-SMP behaviour, right for standalone tests and micro-benches).
    [asid] (default 0) tags this address space's entries in the shared
    per-core TLBs. [trace] (default {!Sim.Trace.disabled}) is threaded
    into the TLBs and walker so every lookup/walk/shootdown/IPI records a
    latency event. *)

val table : t -> Page_table.t
val range_table : t -> Range_table.t option

val tlb : t -> Tlb.t
(** The page TLB of the core this address space currently runs on. *)

val range_tlb : t -> Range_tlb.t option
(** The current core's range TLB, present iff the address space has a
    range table. *)

val clock : t -> Sim.Clock.t
val stats : t -> Sim.Stats.t
val trace : t -> Sim.Trace.t
val smp : t -> Smp.t
val asid : t -> int

val core : t -> int
(** Core the owning process is currently scheduled on. *)

val set_core : t -> int -> unit
(** Migrate the address space's execution to another core (scheduler
    use). Costs nothing here — the scheduler charges its own overhead —
    but subsequent translations fill the new core's TLBs. *)

val cpumask : t -> int
(** Bitmask of cores that may cache this address space's translations:
    exactly the cores an invalidation will IPI (minus the current one,
    handled locally). *)

val translate : t -> va:int -> write:bool -> exec:bool -> (int, fault) result
(** Translate one access, charging TLB probe / walk costs and maintaining
    accessed/dirty bits. *)

val access : t -> mem:Physmem.Phys_mem.t -> va:int -> write:bool -> (unit, fault) result
(** [translate] then touch the physical byte (charging the memory
    reference). *)

val flush_tlbs : t -> unit
(** Purely local full flush of the current core's TLBs (context switch):
    zero IPIs, exactly one [tlb_shootdown]-cost charge per TLB — the
    single-core cost {!Sim.Cost_model.shootdown_cost} now models. *)

val invalidate_page : t -> va:int -> unit
(** Invalidate one page locally, then one IPI round: every other
    cpumask core is interrupted and invalidates the page. O(cores) per
    page — the per-page shootdown tax the paper's range translations
    avoid. *)

val invalidate_range : t -> va:int -> len:int -> unit
(** Shoot down page-TLB entries in the range and any range-TLB entry
    whose base lies within it, locally and via one IPI round. *)

val invalidate_base : t -> base:int -> unit
(** Range-entry shootdown: drop the range-TLB entry with this base on
    the local core and, via one IPI round, on every other cpumask core.
    O(cores) total regardless of the range's size — the paper's O(1)
    (per core) unmap. *)

val shootdown_ranges : t -> ranges:(int * int) list -> pages:int -> unit
(** The batched exit path ({!Tlb_batch}): invalidate every [(va, len)]
    range locally, then issue ONE IPI round in which each remote core
    processes the whole list — O(cores) IPIs per batch rather than per
    page. At {!Tlb.full_flush_threshold_pages}+ total pages each involved
    core full-flushes instead, still one IPI round, and the cpumask
    resets. *)
