(** Per-address-space MMU front end: page TLB + page-table walker, and —
    when the address space has a range table — a range TLB probed in
    parallel, as in Redundant Memory Mappings.

    Translation order on an access: page TLB, then range TLB, then the
    backing structures (range table first if present — a hit there covers
    arbitrarily large spans with one entry — then the radix page table). *)

type fault = Not_mapped | Protection

type t

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?trace:Sim.Trace.t -> table:Page_table.t ->
  ?range_table:Range_table.t -> ?mode:Walker.mode -> ?tlb_sets:int -> ?tlb_ways:int ->
  ?range_tlb_entries:int -> unit -> t
(** [trace] (default {!Sim.Trace.disabled}) is threaded into the TLB,
    range TLB and walker so every lookup/walk/shootdown records a latency
    event. *)

val table : t -> Page_table.t
val range_table : t -> Range_table.t option
val tlb : t -> Tlb.t
val range_tlb : t -> Range_tlb.t option
val clock : t -> Sim.Clock.t
val stats : t -> Sim.Stats.t
val trace : t -> Sim.Trace.t

val translate : t -> va:int -> write:bool -> exec:bool -> (int, fault) result
(** Translate one access, charging TLB probe / walk costs and maintaining
    accessed/dirty bits. *)

val access : t -> mem:Physmem.Phys_mem.t -> va:int -> write:bool -> (unit, fault) result
(** [translate] then touch the physical byte (charging the memory
    reference). *)

val flush_tlbs : t -> unit
(** Flush both TLBs (context switch without ASIDs). *)

val invalidate_range : t -> va:int -> len:int -> unit
(** Shoot down page-TLB entries in the range, and any range-TLB entry
    whose base lies within it. *)
