(** Radix page tables, x86-64 style: 9 translation bits per level, 12-bit
    page offset, 4 levels (48-bit VA) or 5 levels (57-bit VA).

    Besides the usual map/unmap/protect, the table supports {b grafting a
    subtree of another table} at a page-table-boundary-aligned address —
    the paper's Figure 3 mechanism ("creating a pointer from one
    process's page table to an internal page-table node of another
    process sharing the file"), which makes mapping a shared file O(1).

    The table charges the clock for the software cost of its own updates
    (PTE writes, node allocations); hardware walk costs are charged by
    {!Walker} and {!Tlb}. *)

type t

type leaf = {
  mutable pfn : Physmem.Frame.t;
  mutable prot : Prot.t;
  mutable accessed : bool;
  mutable dirty : bool;
  size : Page_size.t;
}

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> levels:int ->
  alloc_frame:(unit -> Physmem.Frame.t) -> t
(** [levels] is 4 or 5. [alloc_frame] supplies physical frames for
    page-table nodes (typically from the kernel's buddy allocator). *)

val levels : t -> int
val va_bits : t -> int
(** 48 for 4 levels, 57 for 5. *)

val entry_span : t -> depth:int -> int
(** Bytes covered by one entry of a node at [depth] (root = depth 0).
    E.g. with 4 levels, depth 2 entries span 2 MiB. *)

val map_page : t -> va:int -> pfn:Physmem.Frame.t -> prot:Prot.t -> size:Page_size.t -> unit
(** Install one leaf. [va] must be size-aligned and unmapped; the target
    slot must not be occupied by a smaller-page subtree.
    Raises [Invalid_argument] otherwise. *)

val map_range :
  t -> va:int -> pfn:Physmem.Frame.t -> len:int -> prot:Prot.t -> huge:bool -> int
(** Map a contiguous physical range. With [huge:true] the largest page
    size permitted by alignment is used at each step. [va], [len] and the
    physical base must be page-aligned and congruent. Returns the number
    of leaf PTEs written. *)

val unmap_page : t -> va:int -> unit
(** Remove the leaf covering [va]; prunes page-table nodes that become
    empty — except nodes other tables still reference, which survive (an
    unmap inside a shared subtree is visible to every sharer, as shared
    mappings require). Raises [Invalid_argument] if not mapped. *)

val ensure_node : t -> va:int -> depth:int -> unit
(** Pre-create the interior path down to the node at [depth] covering
    [va] ("pre-created page tables"). Raises [Invalid_argument] if a
    huge-page leaf blocks the path. *)

val unmap_range : t -> va:int -> len:int -> int
(** Unmap every leaf starting in [va, va+len); returns leaves removed. *)

val protect_range : t -> va:int -> len:int -> prot:Prot.t -> int
(** Rewrite protection on every leaf in range; returns PTEs touched. *)

val lookup : t -> va:int -> (int * leaf) option
(** Software lookup (no hardware cost): physical address + leaf. *)

val leaf_depth : t -> va:int -> int option
(** Depth at which [va]'s leaf sits, for walk-cost computation. *)

val share_subtree : src:t -> src_va:int -> dst:t -> dst_va:int -> depth:int -> unit
(** Graft the [src] subtree under the entry at [depth] covering [src_va]
    into [dst] at [dst_va]: a single pointer write (plus path creation in
    [dst] down to [depth]). Both VAs must be aligned to
    [entry_span ~depth] and congruent modulo it; the [dst] slot must be
    empty; the two tables must have equal level counts. *)

val unshare : t -> va:int -> depth:int -> unit
(** Drop a grafted pointer: O(1). The subtree itself survives in its
    owning table. *)

val is_shared_at : t -> va:int -> depth:int -> bool
(** True iff the entry at that position is a subtree referenced by more
    than one parent. *)

val iter_leaves : t -> (int -> leaf -> unit) -> unit
(** Iterate (va, leaf) over every mapping, ascending VA. Visits grafted
    subtrees too. *)

val pte_count : t -> int
(** Number of leaf entries reachable (including via grafts). *)

val node_count : t -> int
(** Page-table nodes owned by this table (grafted foreign subtrees are
    not counted — they are the other table's memory). *)

val metadata_bytes : t -> int
(** [node_count * 4096]: the physical memory spent on this table. *)
