(** Hardware page-table walker cost model.

    On a TLB miss the walker issues one memory reference per radix level
    down to the leaf. Under virtualization each of those guest references
    itself requires a nested walk of the host table, giving the
    [(g+1)*(h+1) - 1] reference count the paper cites: 24 references for
    4-level-on-4-level and up to 35 for 5-level-on-5-level. *)

type mode = Native | Virtualized of int
(** [Virtualized h]: nested paging with an [h]-level host table. *)

val refs_for_walk : guest_levels:int -> leaf_depth:int -> mode:mode -> int
(** Memory references to resolve one miss whose leaf sits at [leaf_depth]
    (root = 0; a 4 KiB leaf in a 4-level table is at depth 3 and costs 4
    native references). *)

val walk :
  ?trace:Sim.Trace.t ->
  clock:Sim.Clock.t ->
  stats:Sim.Stats.t ->
  table:Page_table.t ->
  mode:mode ->
  va:int ->
  unit ->
  (int * Page_table.leaf) option
(** Resolve [va]. Charges one full DRAM reference for the leaf PTE and a
    cache-hit cost for each upper-level access (modelling page-walk
    caches); bumps "walk_refs" by the raw reference count. Sets the
    leaf's accessed bit. [None] for an unmapped address (the walk cost is
    still charged — the hardware walked to find the hole). [trace]
    records a "page_walk" event with the reference count as [arg]. *)
