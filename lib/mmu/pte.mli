(** Bit-level x86-64 page-table entry encoding.

    The simulator's page tables store structured leaves; this module
    round-trips them through the real 64-bit entry layout, so metadata
    sizes and flag budgets are honest ("the Linux PAGE structure has 25
    separate flags" is only damning because the hardware entry has so
    few):

    {v
    bit 0     P    present
    bit 1     R/W  writable
    bit 2     U/S  user
    bit 5     A    accessed
    bit 6     D    dirty
    bit 7     PS   page size (huge leaf at non-terminal level)
    bits 12.. PFN  frame number (40 bits)
    bit 63    NX   no-execute
    v} *)

type t = int64

val encode :
  present:bool -> pfn:Physmem.Frame.t -> prot:Prot.t -> accessed:bool -> dirty:bool ->
  huge:bool -> t
(** Raises [Invalid_argument] if [pfn] exceeds 40 bits. Note the
    hardware cannot express a present-but-unreadable page: decoded
    protection always has [read = true] for present entries. *)

val not_present : t
(** The all-zero entry. *)

val present : t -> bool
val pfn : t -> Physmem.Frame.t
val prot : t -> Prot.t
val accessed : t -> bool
val dirty : t -> bool
val huge : t -> bool

val set_accessed : t -> bool -> t
val set_dirty : t -> bool -> t

val of_leaf : Page_table.leaf -> t
(** Encode a simulator leaf. *)

val to_leaf : t -> Page_table.leaf option
(** Decode; [None] when not present. The page size is 4 KiB unless the
    PS bit is set, in which case 2 MiB is assumed (the level carries the
    real size on hardware; callers that need 1 GiB track the level). *)

val pp : Format.formatter -> t -> unit
