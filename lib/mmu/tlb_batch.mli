(** Batched TLB shootdowns, after Linux's [mmu_gather]: unmap paths that
    tear down many VMAs (or many FOM regions) accumulate the affected
    ranges here and pay for invalidation once at the end — per-page
    INVLPGs while the batch is small, a single full flush once it crosses
    {!Tlb.full_flush_threshold_pages}. This is what makes teardown cost
    O(1) in the number of VMAs rather than one shootdown per VMA. *)

type t

val create : Mmu.t -> t
(** A batch is cheap and short-lived: create one per teardown operation
    against the address space's MMU. *)

val add : t -> va:int -> len:int -> unit
(** Record a range to invalidate. Free: no cycles are charged until
    {!flush}. *)

val pages : t -> int
(** Pages accumulated so far. *)

val flush : t -> unit
(** Pay for the batch: below the threshold, per-page INVLPGs for each
    accumulated range (n shootdown charges); at or above it, one full
    flush of both TLBs. Either way remote cores are interrupted with
    exactly ONE IPI round for the whole batch
    ({!Mmu.shootdown_ranges}) — O(cores) per batch, not per page. Bumps
    "tlb_batch" and adds the page count to "tlb_batch_pages"; records a
    "tlb_batch" trace span whose outcome is ["invlpg"] or
    ["full_flush"]. Empty batches are free no-ops. The batch resets and
    may be reused. *)
