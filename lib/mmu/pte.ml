type t = int64

let bit_p = 0
let bit_rw = 1
let bit_us = 2
let bit_a = 5
let bit_d = 6
let bit_ps = 7
let bit_nx = 63
let pfn_shift = 12
let pfn_bits = 40

let bit b = Int64.shift_left 1L b
let test e b = Int64.logand e (bit b) <> 0L
let set e b v = if v then Int64.logor e (bit b) else Int64.logand e (Int64.lognot (bit b))

let not_present = 0L

let encode ~present ~pfn ~prot ~accessed ~dirty ~huge =
  if pfn < 0 || pfn >= 1 lsl pfn_bits then invalid_arg "Pte.encode: PFN out of 40 bits";
  let e = 0L in
  let e = set e bit_p present in
  let e = set e bit_rw prot.Prot.write in
  (* x86 cannot express a present-but-unreadable page; U/S marks user
     mappings, which is everything this simulator maps. *)
  let e = set e bit_us true in
  ignore prot.Prot.read;
  let e = set e bit_a accessed in
  let e = set e bit_d dirty in
  let e = set e bit_ps huge in
  let e = set e bit_nx (not prot.Prot.exec) in
  Int64.logor e (Int64.shift_left (Int64.of_int pfn) pfn_shift)

let present e = test e bit_p

let pfn e =
  Int64.to_int
    (Int64.logand (Int64.shift_right_logical e pfn_shift) (Int64.of_int ((1 lsl pfn_bits) - 1)))

let prot e = { Prot.read = present e; write = test e bit_rw; exec = not (test e bit_nx) }

let accessed e = test e bit_a
let dirty e = test e bit_d
let huge e = test e bit_ps

let set_accessed e v = set e bit_a v
let set_dirty e v = set e bit_d v

let of_leaf (leaf : Page_table.leaf) =
  encode ~present:true ~pfn:leaf.Page_table.pfn ~prot:leaf.Page_table.prot
    ~accessed:leaf.Page_table.accessed ~dirty:leaf.Page_table.dirty
    ~huge:(leaf.Page_table.size <> Page_size.Small)

let to_leaf e =
  if not (present e) then None
  else
    Some
      {
        Page_table.pfn = pfn e;
        prot = prot e;
        accessed = accessed e;
        dirty = dirty e;
        size = (if huge e then Page_size.Huge_2m else Page_size.Small);
      }

let pp ppf e =
  if not (present e) then Format.pp_print_string ppf "<not present>"
  else
    Format.fprintf ppf "pfn=%#x %a%s%s%s" (pfn e) Prot.pp (prot e)
      (if accessed e then " A" else "")
      (if dirty e then " D" else "")
      (if huge e then " PS" else "")
