(** The simulated machine's core complex.

    Each core owns a private page {!Tlb} and {!Range_tlb} plus IPI and
    cycle-attribution counters; all cores share one virtual clock and one
    stats sink. The simulator is sequential, so "parallel" execution is
    modelled as per-core cycle attribution ([busy_cycles]) over a single
    timeline — fault throughput vs cores is read off as the makespan
    (max per-core busy cycles), while coherence (shootdown IPIs) is
    simulated exactly. Cores are partitioned contiguously across
    [numa_nodes] NUMA domains. *)

type core = {
  id : int;
  numa_node : int;  (** NUMA domain this core belongs to. *)
  tlb : Tlb.t;
  range_tlb : Range_tlb.t;
  mutable ipi_sent : int;  (** Shootdown IPIs this core initiated. *)
  mutable ipi_received : int;  (** Shootdown IPIs delivered to this core. *)
  mutable ipi_acked : int;  (** Acks returned; lags [ipi_received] when an ack is lost. *)
  mutable busy_cycles : int;  (** Cycles attributed to work run on this core. *)
}

type t

val create :
  clock:Sim.Clock.t ->
  stats:Sim.Stats.t ->
  ?trace:Sim.Trace.t ->
  ?cores:int ->
  ?numa_nodes:int ->
  ?tlb_sets:int ->
  ?tlb_ways:int ->
  ?range_tlb_entries:int ->
  unit ->
  t
(** Defaults: 1 core, 1 NUMA node — the pre-SMP machine. [numa_nodes]
    must not exceed [cores]. *)

val clock : t -> Sim.Clock.t
val stats : t -> Sim.Stats.t
val trace : t -> Sim.Trace.t

val cores : t -> int
val numa_nodes : t -> int

val core : t -> int -> core
(** The core with this id; raises [Invalid_argument] out of range. *)

val iter_cores : t -> (core -> unit) -> unit
val numa_node_of_core : t -> int -> int

val add_busy : t -> int -> int -> unit
(** [add_busy t core cycles] attributes [cycles] of work to [core],
    feeds the causal plane's makespan accounting, and updates the
    [core<N>_busy] gauge (clock-sampled into the PR 4 time series). *)

val clear : t -> unit
(** Host-side reset of every core's TLBs (crash recovery): no cycles, no
    stat bumps, gauges kept correct. IPI counters are preserved — they
    are cumulative traffic, not cached state. *)
