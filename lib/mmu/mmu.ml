type fault = Not_mapped | Protection

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  table : Page_table.t;
  range_table : Range_table.t option;
  mode : Walker.mode;
  tlb : Tlb.t;
  range_tlb : Range_tlb.t option;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ~table ?range_table
    ?(mode = Walker.Native) ?tlb_sets ?tlb_ways ?range_tlb_entries () =
  {
    clock;
    stats;
    trace;
    table;
    range_table;
    mode;
    tlb = Tlb.create ~clock ~stats ~trace ?sets:tlb_sets ?ways:tlb_ways ();
    range_tlb =
      (match range_table with
      | Some _ -> Some (Range_tlb.create ~clock ~stats ~trace ?entries:range_tlb_entries ())
      | None -> None);
  }

let table t = t.table
let range_table t = t.range_table
let tlb t = t.tlb
let range_tlb t = t.range_tlb
let clock t = t.clock
let stats t = t.stats
let trace t = t.trace

let check_prot prot ~write ~exec = Prot.allows prot ~write ~exec

(* Dirty/accessed maintenance on a TLB hit costs nothing extra in the
   model: hardware updates the PTE bits asynchronously. *)
let note_access t ~va ~write =
  if write then
    match Page_table.lookup t.table ~va with
    | Some (_, leaf) ->
      leaf.Page_table.accessed <- true;
      leaf.Page_table.dirty <- true
    | None -> ()

let translate t ~va ~write ~exec =
  match Tlb.lookup t.tlb ~va with
  | Some (pfn, prot, size) ->
    if check_prot prot ~write ~exec then begin
      note_access t ~va ~write;
      let off = va land (Page_size.bytes size - 1) in
      Ok (Physmem.Frame.to_addr pfn + off)
    end
    else Error Protection
  | None -> (
    let via_range_tlb =
      match t.range_tlb with Some rtlb -> Range_tlb.lookup rtlb ~va | None -> None
    in
    match via_range_tlb with
    | Some e ->
      if check_prot e.Range_table.prot ~write ~exec then Ok (va + e.Range_table.offset)
      else Error Protection
    | None -> (
      (* Refill: range table first (one entry can cover the whole region),
         then the radix table. *)
      let via_range_walk =
        match t.range_table with Some rt -> Range_table.walk rt ~va | None -> None
      in
      match via_range_walk with
      | Some e ->
        (match t.range_tlb with Some rtlb -> Range_tlb.insert rtlb e | None -> ());
        if check_prot e.Range_table.prot ~write ~exec then Ok (va + e.Range_table.offset)
        else Error Protection
      | None -> (
        match
          Walker.walk ~trace:t.trace ~clock:t.clock ~stats:t.stats ~table:t.table ~mode:t.mode
            ~va ()
        with
        | None -> Error Not_mapped
        | Some (pa, leaf) ->
          if write then leaf.Page_table.dirty <- true;
          Tlb.insert t.tlb
            ~va:(Sim.Units.round_down va ~align:(Page_size.bytes leaf.Page_table.size))
            ~pfn:leaf.Page_table.pfn ~prot:leaf.Page_table.prot ~size:leaf.Page_table.size;
          if check_prot leaf.Page_table.prot ~write ~exec then Ok pa else Error Protection)))

let access t ~mem ~va ~write =
  match translate t ~va ~write ~exec:false with
  | Error _ as e -> e
  | Ok pa ->
    if write then Physmem.Phys_mem.write_byte mem pa 'x' else Physmem.Phys_mem.touch mem pa;
    Ok ()

let flush_tlbs t =
  Tlb.flush t.tlb;
  match t.range_tlb with Some r -> Range_tlb.flush r | None -> ()

let invalidate_range t ~va ~len =
  Tlb.invalidate_range t.tlb ~va ~len;
  match (t.range_tlb, t.range_table) with
  | Some rtlb, Some rt ->
    Range_table.iter rt (fun e ->
        if e.Range_table.base >= va && e.Range_table.base < va + len then
          Range_tlb.invalidate rtlb ~base:e.Range_table.base)
  | _ -> ()
