type fault = Not_mapped | Protection

(* An address space's view of the machine: its page/range tables plus the
   shared {!Smp} core complex. [core] is where the owning process is
   currently scheduled — translations fill that core's TLBs — and
   [cpumask] tracks which cores may still cache this address space's
   translations (Linux's mm_cpumask): exactly those cores are interrupted
   on a shootdown. *)
type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  table : Page_table.t;
  range_table : Range_table.t option;
  mode : Walker.mode;
  smp : Smp.t;
  asid : int;
  mutable core : int;
  mutable cpumask : int;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ~table ?range_table
    ?(mode = Walker.Native) ?tlb_sets ?tlb_ways ?range_tlb_entries ?smp ?(asid = 0) () =
  let smp =
    match smp with
    | Some smp -> smp
    | None ->
      (* Standalone MMU (tests, micro-benches): a private single-core
         machine with the requested TLB geometry. *)
      Smp.create ~clock ~stats ~trace ?tlb_sets ?tlb_ways ?range_tlb_entries ()
  in
  { clock; stats; trace; table; range_table; mode; smp; asid; core = 0; cpumask = 0 }

let table t = t.table
let range_table t = t.range_table
let clock t = t.clock
let stats t = t.stats
let trace t = t.trace
let smp t = t.smp
let asid t = t.asid
let core t = t.core
let cpumask t = t.cpumask

let set_core t core =
  if core < 0 || core >= Smp.cores t.smp then invalid_arg "Mmu.set_core: no such core";
  t.core <- core

let local t = Smp.core t.smp t.core
let tlb t = (local t).Smp.tlb

let range_tlb t =
  match t.range_table with Some _ -> Some (local t).Smp.range_tlb | None -> None

let model t = Sim.Clock.model t.clock
let mark_cached t = t.cpumask <- t.cpumask lor (1 lsl t.core)

let check_prot prot ~write ~exec = Prot.allows prot ~write ~exec

(* Dirty/accessed maintenance on a TLB hit costs nothing extra in the
   model: hardware updates the PTE bits asynchronously. *)
let note_access t ~va ~write =
  if write then
    match Page_table.lookup t.table ~va with
    | Some (_, leaf) ->
      leaf.Page_table.accessed <- true;
      leaf.Page_table.dirty <- true
    | None -> ()

let translate t ~va ~write ~exec =
  let c = local t in
  match Tlb.lookup c.Smp.tlb ~asid:t.asid ~va () with
  | Some (pfn, prot, size) ->
    if check_prot prot ~write ~exec then begin
      note_access t ~va ~write;
      let off = va land (Page_size.bytes size - 1) in
      Ok (Physmem.Frame.to_addr pfn + off)
    end
    else Error Protection
  | None -> (
    let via_range_tlb =
      match t.range_table with
      | Some _ -> Range_tlb.lookup c.Smp.range_tlb ~asid:t.asid ~va ()
      | None -> None
    in
    match via_range_tlb with
    | Some e ->
      if check_prot e.Range_table.prot ~write ~exec then Ok (va + e.Range_table.offset)
      else Error Protection
    | None -> (
      (* Refill: range table first (one entry can cover the whole region),
         then the radix table. *)
      let via_range_walk =
        match t.range_table with Some rt -> Range_table.walk rt ~va | None -> None
      in
      match via_range_walk with
      | Some e ->
        (match t.range_table with
        | Some _ ->
          Range_tlb.insert c.Smp.range_tlb ~asid:t.asid e;
          mark_cached t
        | None -> ());
        if check_prot e.Range_table.prot ~write ~exec then Ok (va + e.Range_table.offset)
        else Error Protection
      | None -> (
        match
          Walker.walk ~trace:t.trace ~clock:t.clock ~stats:t.stats ~table:t.table ~mode:t.mode
            ~va ()
        with
        | None -> Error Not_mapped
        | Some (pa, leaf) ->
          if write then leaf.Page_table.dirty <- true;
          Tlb.insert c.Smp.tlb ~asid:t.asid
            ~va:(Sim.Units.round_down va ~align:(Page_size.bytes leaf.Page_table.size))
            ~pfn:leaf.Page_table.pfn ~prot:leaf.Page_table.prot ~size:leaf.Page_table.size ();
          mark_cached t;
          if check_prot leaf.Page_table.prot ~write ~exec then Ok pa else Error Protection)))

let access t ~mem ~va ~write =
  match translate t ~va ~write ~exec:false with
  | Error _ as e -> e
  | Ok pa ->
    if write then Physmem.Phys_mem.write_byte mem pa 'x' else Physmem.Phys_mem.touch mem pa;
    Ok ()

(* Purely local full flush (context switch): current core only, zero
   IPIs — the single-core cost the fixed {!Sim.Cost_model.shootdown_cost}
   now charges. *)
let flush_tlbs t =
  let c = local t in
  Tlb.flush c.Smp.tlb;
  (match t.range_table with Some _ -> Range_tlb.flush c.Smp.range_tlb | None -> ());
  t.cpumask <- t.cpumask land lnot (1 lsl t.core)

(* One shootdown IPI round-trip: interrupt every *other* core in the
   cpumask, run [f] as its invalidation handler, collect the ack. A fired
   [tlb_ack_lost] fault drops the handler and the ack — the victim core
   keeps its stale entries, which only [Os.Check] can catch. The send is
   charged whether or not the ack comes back. *)
let ipi_round t f =
  (* Skip (and don't open a span) when no *other* core has this address
     space cached: the loop below would do nothing. *)
  if t.cpumask land lnot (1 lsl t.core) <> 0 then
  Sim.Trace.prof_span t.trace "ipi_round" @@ fun () ->
  let src = local t in
  let faults = Sim.Trace.faults t.trace in
  let causal = Sim.Trace.causal t.trace in
  for r = 0 to Smp.cores t.smp - 1 do
    if r <> t.core && t.cpumask land (1 lsl r) <> 0 then begin
      let dst = Smp.core t.smp r in
      let start = Sim.Clock.now t.clock in
      let send = Sim.Causal.emit causal ~core:t.core ~op:"ipi_send" () in
      Sim.Clock.charge t.clock (model t).Sim.Cost_model.ipi;
      src.Smp.ipi_sent <- src.Smp.ipi_sent + 1;
      dst.Smp.ipi_received <- dst.Smp.ipi_received + 1;
      Sim.Stats.incr t.stats "ipi_sent";
      let deliver = Sim.Causal.emit causal ~core:r ~op:"ipi_deliver" () in
      Sim.Causal.link causal ~src:send ~dst:deliver ~kind:"ipi";
      if Sim.Fault_inject.fires faults ~site:Sim.Fault_inject.site_tlb_ack_lost then begin
        (* Lost ack: the deliver node stays a dead end — no ack node, no
           ack edge — so [ipi_acked < ipi_received] is visible from the
           graph alone. *)
        Sim.Stats.incr t.stats "tlb_ack_lost";
        Sim.Trace.record t.trace ~op:"ipi" ~start ~outcome:"ack_lost" ~core:t.core ()
      end
      else begin
        f dst;
        dst.Smp.ipi_acked <- dst.Smp.ipi_acked + 1;
        Sim.Stats.incr t.stats "ipi_acked";
        let ack = Sim.Causal.emit causal ~core:t.core ~op:"ipi_ack" () in
        Sim.Causal.link causal ~src:deliver ~dst:ack ~kind:"ack";
        Sim.Trace.record t.trace ~op:"ipi" ~start ~outcome:"acked" ~core:t.core ()
      end;
      let cycles = Sim.Clock.now t.clock - start in
      Sim.Causal.observe_ipi causal ~src:t.core ~dst:r ~cycles;
      Sim.Causal.attribute causal ~core:t.core ~share:Sim.Causal.Ipi_wait ~cycles
    end
  done

let invalidate_page t ~va =
  Tlb.invalidate_page (local t).Smp.tlb ~asid:t.asid ~va ();
  ipi_round t (fun dst -> Tlb.invalidate_page dst.Smp.tlb ~asid:t.asid ~va ())

(* Range-table bases falling inside [va, va+len): each needs its own
   range-TLB shootdown alongside the page-TLB range invalidate. *)
let range_bases t ~va ~len =
  match t.range_table with
  | None -> []
  | Some rt ->
    let acc = ref [] in
    Range_table.iter rt (fun e ->
        if e.Range_table.base >= va && e.Range_table.base < va + len then
          acc := e.Range_table.base :: !acc);
    !acc

let invalidate_range_on t (c : Smp.core) ~va ~len ~bases =
  Tlb.invalidate_range c.Smp.tlb ~asid:t.asid ~va ~len ();
  List.iter (fun base -> Range_tlb.invalidate c.Smp.range_tlb ~asid:t.asid ~base ()) bases

let invalidate_range t ~va ~len =
  let bases = range_bases t ~va ~len in
  invalidate_range_on t (local t) ~va ~len ~bases;
  ipi_round t (fun dst -> invalidate_range_on t dst ~va ~len ~bases)

let invalidate_base t ~base =
  Range_tlb.invalidate (local t).Smp.range_tlb ~asid:t.asid ~base ();
  ipi_round t (fun dst -> Range_tlb.invalidate dst.Smp.range_tlb ~asid:t.asid ~base ())

(* The batch exit path: every accumulated range invalidated locally, then
   ONE IPI round in which each remote core processes the whole list —
   this is the O(cores) amortisation (vs O(cores * pages) for unbatched
   per-page shootdowns). At [Tlb.full_flush_threshold_pages]+ pages the
   per-range work degenerates to full flushes on every involved core,
   still one IPI round. *)
let shootdown_ranges t ~ranges ~pages =
  if pages >= Tlb.full_flush_threshold_pages then begin
    flush_tlbs t;
    ipi_round t (fun dst ->
        Tlb.flush dst.Smp.tlb;
        match t.range_table with
        | Some _ -> Range_tlb.flush dst.Smp.range_tlb
        | None -> ());
    (* The OS believes every core is clean now; a lost ack silently
       falsifies that belief (the stale entries stay behind). *)
    t.cpumask <- 0
  end
  else begin
    let rs = List.map (fun (va, len) -> (va, len, range_bases t ~va ~len)) ranges in
    List.iter (fun (va, len, bases) -> invalidate_range_on t (local t) ~va ~len ~bases) rs;
    ipi_round t (fun dst ->
        List.iter (fun (va, len, bases) -> invalidate_range_on t dst ~va ~len ~bases) rs)
  end
