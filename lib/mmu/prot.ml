type t = { read : bool; write : bool; exec : bool }

let none = { read = false; write = false; exec = false }
let r = { read = true; write = false; exec = false }
let rw = { read = true; write = true; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }

let allows p ~write ~exec =
  if write then p.write else if exec then p.exec else p.read

let subset a ~of_:b =
  (not a.read || b.read) && (not a.write || b.write) && (not a.exec || b.exec)

let equal a b = a = b

let pp ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')
