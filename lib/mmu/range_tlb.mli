(** Range TLB: a small fully-associative cache of range-table entries
    (Figure 4/9). One entry covers an arbitrarily large contiguous range,
    so a handful of entries can translate terabytes — the hardware half
    of the paper's O(1) story. Default 32 entries, as proposed for
    Redundant Memory Mappings. Backed by interval-ordered maps keyed by
    base, so lookup, insert and overlap eviction are O(log entries)
    rather than O(entries). *)

type t

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?trace:Sim.Trace.t -> ?entries:int -> unit -> t

val capacity : t -> int

val lookup : t -> va:int -> Range_table.entry option
(** Probe; charges the hit cost; bumps "range_tlb_hit"/"range_tlb_miss". *)

val insert : t -> Range_table.entry -> unit
(** Fill after a range-table walk; LRU eviction. Any cached entry whose
    range overlaps the new one is evicted first, so a lookup can never
    return a stale overlapping translation. *)

val invalidate : t -> base:int -> unit
(** Shoot down the entry with this base, if cached: the single-operation
    unmap the paper describes. Charges one shootdown. *)

val flush : t -> unit
val entry_count : t -> int
