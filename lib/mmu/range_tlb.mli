(** Range TLB: a small fully-associative cache of range-table entries
    (Figure 4/9). One entry covers an arbitrarily large contiguous range,
    so a handful of entries can translate terabytes — the hardware half
    of the paper's O(1) story. Default 32 entries, as proposed for
    Redundant Memory Mappings. Backed by interval-ordered maps keyed by
    (ASID, base), so lookup, insert and overlap eviction are
    O(log entries) rather than O(entries).

    Like the page {!Tlb}, one [t] models one core's range TLB shared by
    every address space scheduled there, hence the ASID tag. *)

type t

val create :
  clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?trace:Sim.Trace.t -> ?entries:int -> unit -> t

val capacity : t -> int

val lookup : t -> ?asid:int -> va:int -> unit -> Range_table.entry option
(** Probe; charges the hit cost; bumps "range_tlb_hit"/"range_tlb_miss". *)

val insert : t -> ?asid:int -> Range_table.entry -> unit
(** Fill after a range-table walk; LRU eviction. Any cached entry of the
    same ASID whose range overlaps the new one is evicted first, so a
    lookup can never return a stale overlapping translation. *)

val invalidate : t -> ?asid:int -> base:int -> unit -> unit
(** Shoot down the entry of [asid] with this base, if cached: the
    single-operation unmap the paper describes. Charges one shootdown
    and bumps "range_tlb_shootdown". *)

val flush : t -> unit
(** Drop every entry, all ASIDs; charges one shootdown. *)

val clear : t -> unit
(** Host-side reset (crash recovery): no cycle charge, gauge kept
    correct. *)

val entry_count : t -> int
