(** Access protection bits. *)

type t = { read : bool; write : bool; exec : bool }

val none : t
val r : t
val rw : t
val rx : t
val rwx : t

val allows : t -> write:bool -> exec:bool -> bool
(** [allows p ~write ~exec] is [true] iff an access of that kind is
    permitted ([write] and [exec] accesses also require nothing further;
    plain reads require [read]). *)

val subset : t -> of_:t -> bool
(** [subset a ~of_:b]: every right in [a] is also in [b]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
