(* CLRS-style B-tree, minimum degree 4. *)

let t_min = 4
let max_keys = (2 * t_min) - 1

type 'v node = {
  mutable n : int;
  keys : int array; (* capacity max_keys; [0, n) valid *)
  vals : 'v option array;
  mutable kids : 'v node array; (* capacity max_keys + 1; [0, n] valid when not leaf *)
  mutable leaf : bool;
}

type 'v t = { mutable root : 'v node; mutable cardinal : int }

let mk_node ~leaf =
  { n = 0; keys = Array.make max_keys 0; vals = Array.make max_keys None; kids = [||]; leaf }

let mk_internal () =
  let node = mk_node ~leaf:false in
  node.kids <- Array.make (max_keys + 1) node;
  (* self-references as placeholders; always overwritten before use *)
  node

let create () = { root = mk_node ~leaf:true; cardinal = 0 }

(* Index of the first key > k (also: number of keys <= k). *)
let upper_bound node k =
  let rec loop i = if i < node.n && node.keys.(i) <= k then loop (i + 1) else i in
  loop 0

(* Index of the first key >= k. *)
let lower_bound node k =
  let rec loop i = if i < node.n && node.keys.(i) < k then loop (i + 1) else i in
  loop 0

let rec find_in node k =
  let i = lower_bound node k in
  if i < node.n && node.keys.(i) = k then node.vals.(i)
  else if node.leaf then None
  else find_in node.kids.(i) k

let find t ~key = find_in t.root key

let rec find_last_leq_in node k best =
  let i = upper_bound node k in
  let best = if i > 0 then Some (node.keys.(i - 1), Option.get node.vals.(i - 1)) else best in
  if node.leaf then best else find_last_leq_in node.kids.(i) k best

let find_last_leq t ~key = find_last_leq_in t.root key None

let rec find_first_gt_in node k best =
  let i = upper_bound node k in
  let best = if i < node.n then Some (node.keys.(i), Option.get node.vals.(i)) else best in
  if node.leaf then best else find_first_gt_in node.kids.(i) k best

let find_first_gt t ~key = find_first_gt_in t.root key None

(* Split the full child kids.(i) of (non-full) [parent]. *)
let split_child parent i =
  let child = parent.kids.(i) in
  let sibling = mk_node ~leaf:child.leaf in
  if not child.leaf then sibling.kids <- Array.make (max_keys + 1) child;
  (* Upper t_min-1 keys move to the sibling. *)
  for j = 0 to t_min - 2 do
    sibling.keys.(j) <- child.keys.(j + t_min);
    sibling.vals.(j) <- child.vals.(j + t_min);
    child.vals.(j + t_min) <- None
  done;
  if not child.leaf then
    for j = 0 to t_min - 1 do
      sibling.kids.(j) <- child.kids.(j + t_min)
    done;
  sibling.n <- t_min - 1;
  let med_key = child.keys.(t_min - 1) and med_val = child.vals.(t_min - 1) in
  child.vals.(t_min - 1) <- None;
  child.n <- t_min - 1;
  (* Shift the parent's keys/kids right to make room at i. *)
  for j = parent.n downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1);
    parent.vals.(j) <- parent.vals.(j - 1)
  done;
  for j = parent.n + 1 downto i + 2 do
    parent.kids.(j) <- parent.kids.(j - 1)
  done;
  parent.keys.(i) <- med_key;
  parent.vals.(i) <- med_val;
  parent.kids.(i + 1) <- sibling;
  parent.n <- parent.n + 1

let rec insert_nonfull node k v =
  let i = lower_bound node k in
  if i < node.n && node.keys.(i) = k then invalid_arg "Btree.insert: duplicate key";
  if node.leaf then begin
    for j = node.n downto i + 1 do
      node.keys.(j) <- node.keys.(j - 1);
      node.vals.(j) <- node.vals.(j - 1)
    done;
    node.keys.(i) <- k;
    node.vals.(i) <- Some v;
    node.n <- node.n + 1
  end
  else begin
    let i =
      if node.kids.(i).n = max_keys then begin
        split_child node i;
        if k = node.keys.(i) then invalid_arg "Btree.insert: duplicate key";
        if k > node.keys.(i) then i + 1 else i
      end
      else i
    in
    insert_nonfull node.kids.(i) k v
  end

let insert t ~key v =
  if t.root.n = max_keys then begin
    let new_root = mk_internal () in
    new_root.kids.(0) <- t.root;
    t.root <- new_root;
    split_child new_root 0
  end;
  insert_nonfull t.root key v;
  t.cardinal <- t.cardinal + 1

(* Deletion (CLRS). All helpers assume the caller ensured [node] has at
   least t_min keys unless it is the root. *)

let rec max_binding node =
  if node.leaf then (node.keys.(node.n - 1), Option.get node.vals.(node.n - 1))
  else max_binding node.kids.(node.n)

let rec min_binding node =
  if node.leaf then (node.keys.(0), Option.get node.vals.(0))
  else min_binding node.kids.(0)

(* Merge kids.(i), keys.(i) and kids.(i+1) into kids.(i). *)
let merge_children node i =
  let left = node.kids.(i) and right = node.kids.(i + 1) in
  left.keys.(left.n) <- node.keys.(i);
  left.vals.(left.n) <- node.vals.(i);
  for j = 0 to right.n - 1 do
    left.keys.(left.n + 1 + j) <- right.keys.(j);
    left.vals.(left.n + 1 + j) <- right.vals.(j)
  done;
  if not left.leaf then
    for j = 0 to right.n do
      left.kids.(left.n + 1 + j) <- right.kids.(j)
    done;
  left.n <- left.n + 1 + right.n;
  (* Close the gap in the parent. *)
  for j = i to node.n - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.vals.(j) <- node.vals.(j + 1)
  done;
  node.vals.(node.n - 1) <- None;
  for j = i + 1 to node.n - 1 do
    node.kids.(j) <- node.kids.(j + 1)
  done;
  node.n <- node.n - 1

(* Make sure kids.(i) has at least t_min keys, borrowing or merging. On
   return the index of the (possibly merged) child to descend into. *)
let ensure_child node i =
  let child = node.kids.(i) in
  if child.n >= t_min then i
  else if i > 0 && node.kids.(i - 1).n >= t_min then begin
    (* Borrow from the left sibling through the separator. *)
    let left = node.kids.(i - 1) in
    for j = child.n downto 1 do
      child.keys.(j) <- child.keys.(j - 1);
      child.vals.(j) <- child.vals.(j - 1)
    done;
    if not child.leaf then
      for j = child.n + 1 downto 1 do
        child.kids.(j) <- child.kids.(j - 1)
      done;
    child.keys.(0) <- node.keys.(i - 1);
    child.vals.(0) <- node.vals.(i - 1);
    if not child.leaf then child.kids.(0) <- left.kids.(left.n);
    node.keys.(i - 1) <- left.keys.(left.n - 1);
    node.vals.(i - 1) <- left.vals.(left.n - 1);
    left.vals.(left.n - 1) <- None;
    left.n <- left.n - 1;
    child.n <- child.n + 1;
    i
  end
  else if i < node.n && node.kids.(i + 1).n >= t_min then begin
    (* Borrow from the right sibling. *)
    let right = node.kids.(i + 1) in
    child.keys.(child.n) <- node.keys.(i);
    child.vals.(child.n) <- node.vals.(i);
    if not child.leaf then child.kids.(child.n + 1) <- right.kids.(0);
    node.keys.(i) <- right.keys.(0);
    node.vals.(i) <- right.vals.(0);
    for j = 0 to right.n - 2 do
      right.keys.(j) <- right.keys.(j + 1);
      right.vals.(j) <- right.vals.(j + 1)
    done;
    right.vals.(right.n - 1) <- None;
    if not right.leaf then
      for j = 0 to right.n - 1 do
        right.kids.(j) <- right.kids.(j + 1)
      done;
    right.n <- right.n - 1;
    child.n <- child.n + 1;
    i
  end
  else if i > 0 then begin
    merge_children node (i - 1);
    i - 1
  end
  else begin
    merge_children node i;
    i
  end

let rec delete_from node k =
  let i = lower_bound node k in
  if i < node.n && node.keys.(i) = k then
    if node.leaf then begin
      let v = node.vals.(i) in
      for j = i to node.n - 2 do
        node.keys.(j) <- node.keys.(j + 1);
        node.vals.(j) <- node.vals.(j + 1)
      done;
      node.vals.(node.n - 1) <- None;
      node.n <- node.n - 1;
      v
    end
    else if node.kids.(i).n >= t_min then begin
      let pk, pv = max_binding node.kids.(i) in
      let v = node.vals.(i) in
      node.keys.(i) <- pk;
      node.vals.(i) <- Some pv;
      ignore (delete_from node.kids.(i) pk);
      v
    end
    else if node.kids.(i + 1).n >= t_min then begin
      let sk, sv = min_binding node.kids.(i + 1) in
      let v = node.vals.(i) in
      node.keys.(i) <- sk;
      node.vals.(i) <- Some sv;
      ignore (delete_from node.kids.(i + 1) sk);
      v
    end
    else begin
      merge_children node i;
      delete_from node.kids.(i) k
    end
  else if node.leaf then None
  else begin
    let i = ensure_child node i in
    (* After a merge the key may now live inside the merged child at the
       same index; re-resolve the descent position. *)
    let i =
      let j = lower_bound node k in
      if j < node.n && node.keys.(j) = k then j else min i (node.n)
    in
    if i < node.n && node.keys.(i) = k then delete_from node k
    else
      let j = upper_bound node k in
      delete_from node.kids.(j) k
  end

let remove t ~key =
  let v = delete_from t.root key in
  if v <> None then t.cardinal <- t.cardinal - 1;
  if t.root.n = 0 && not t.root.leaf then t.root <- t.root.kids.(0);
  v

let cardinal t = t.cardinal

let height t =
  let rec loop node acc = if node.leaf then acc else loop node.kids.(0) (acc + 1) in
  loop t.root 1

let iter t f =
  let rec walk node =
    if node.leaf then
      for i = 0 to node.n - 1 do
        f node.keys.(i) (Option.get node.vals.(i))
      done
    else begin
      for i = 0 to node.n - 1 do
        walk node.kids.(i);
        f node.keys.(i) (Option.get node.vals.(i))
      done;
      walk node.kids.(node.n)
    end
  in
  walk t.root

let check_invariants t =
  let ok = ref true in
  let leaf_depths = ref [] in
  let rec walk node ~lo ~hi ~depth ~is_root =
    if node.n > max_keys then ok := false;
    if (not is_root) && node.n < t_min - 1 then ok := false;
    for i = 0 to node.n - 1 do
      let k = node.keys.(i) in
      (match lo with Some l when k <= l -> ok := false | _ -> ());
      (match hi with Some h when k >= h -> ok := false | _ -> ());
      if i > 0 && node.keys.(i - 1) >= k then ok := false;
      if node.vals.(i) = None then ok := false
    done;
    if node.leaf then leaf_depths := depth :: !leaf_depths
    else
      for i = 0 to node.n do
        let lo = if i = 0 then lo else Some node.keys.(i - 1) in
        let hi = if i = node.n then hi else Some node.keys.(i) in
        walk node.kids.(i) ~lo ~hi ~depth:(depth + 1) ~is_root:false
      done
  in
  walk t.root ~lo:None ~hi:None ~depth:0 ~is_root:true;
  (match List.sort_uniq compare !leaf_depths with [ _ ] -> () | [] -> () | _ -> ok := false);
  let count = ref 0 in
  iter t (fun _ _ -> incr count);
  !ok && !count = t.cardinal
