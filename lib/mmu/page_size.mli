(** The page sizes x86-64 supports: the paper's point is that there are
    only a few and they carry power-of-512 alignment restrictions. *)

type t = Small | Huge_2m | Huge_1g

val bytes : t -> int
val frames : t -> int
(** Number of 4 KiB frames covered. *)

val depth_above_leaf : t -> int
(** How many radix levels above the deepest one the leaf PTE sits:
    0 for 4 KiB, 1 for 2 MiB, 2 for 1 GiB. *)

val largest_for : addr:int -> len:int -> t
(** Largest page size usable at [addr] given alignment and [len]
    remaining. *)

val pp : Format.formatter -> t -> unit
