(** Set-associative translation lookaside buffer.

    Tags are (ASID, virtual page number, page size); each set is a fixed
    array of ways with per-slot LRU clocks, so lookup, fill and eviction
    are O(ways) with no allocation. The default geometry approximates a
    Haswell-class L2 STLB: 128 sets, 8 ways, 1024 entries.

    One [t] models the TLB of one physical core and is shared (PCID-style)
    by every address space scheduled there; [asid] scopes lookups and
    invalidations to one address space, while {!flush} drops everything. *)

type t

val create :
  clock:Sim.Clock.t ->
  stats:Sim.Stats.t ->
  ?trace:Sim.Trace.t ->
  ?sets:int ->
  ?ways:int ->
  unit ->
  t
(** [trace] (default {!Sim.Trace.disabled}) records lookup, shootdown and
    flush events. *)

val capacity : t -> int

val lookup : t -> ?asid:int -> va:int -> unit -> (Physmem.Frame.t * Prot.t * Page_size.t) option
(** Probe; charges the hit cost and bumps "tlb_hit" on success or
    "tlb_miss" on failure (no walk is performed — callers decide how to
    refill, see {!Mmu}). *)

val insert :
  t -> ?asid:int -> va:int -> pfn:Physmem.Frame.t -> prot:Prot.t -> size:Page_size.t -> unit -> unit
(** Fill after a walk, evicting the set's LRU entry if full. Each
    eviction of a live entry bumps "tlb_evictions"; re-filling an
    already-resident page or taking a free slot does not. *)

val invalidate_page : t -> ?asid:int -> va:int -> unit -> unit
(** Drop any entry of [asid] covering [va] (all page sizes probed);
    charges the shootdown cost and bumps "tlb_shootdown". *)

val invalidate_range : t -> ?asid:int -> va:int -> len:int -> unit -> unit
(** Shoot down every entry of [asid] overlapping the range. For a range
    of n pages below the full-flush threshold this issues n per-page
    INVLPGs — n shootdown charges and "tlb_shootdown" += n, whether or
    not the pages are resident; at 33+ pages the whole TLB (all ASIDs) is
    flushed instead (one charge), as Linux does. *)

val flush : t -> unit
(** Full flush, all ASIDs; charges one shootdown and bumps "tlb_flush". *)

val entry_count : t -> int

val shootdowns : t -> int
(** This TLB's contribution to the global "tlb_shootdown" stat. Across
    all cores of a machine the sum must equal the stat — [Os.Check]
    enforces the reconciliation. *)

val flushes : t -> int
(** This TLB's contribution to the global "tlb_flush" stat. *)

val iter :
  t ->
  (asid:int -> va:int -> size:Page_size.t -> pfn:Physmem.Frame.t -> prot:Prot.t -> unit) ->
  unit
(** Visit every valid entry ([va] is the size-aligned tag). Host-side
    introspection for the invariant checker: no cost is charged and no
    LRU state is touched. *)

val clear : t -> unit
(** Host-side reset (crash recovery): drop every entry with no cycle
    charge and no stat bumps, keeping the occupancy gauge correct. *)

val full_flush_threshold_pages : int
(** Ranges of at least this many pages are invalidated with one full
    flush rather than per-page INVLPGs (Linux's tlb_single_page_flush
    ceiling: 33). *)
