type entry = { tag : int; size : Page_size.t; pfn : Physmem.Frame.t; prot : Prot.t }

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  sets : int;
  ways : int;
  (* sets.(s) holds up to [ways] entries, MRU first. *)
  data : entry list array;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ?(sets = 128) ?(ways = 8) () =
  if sets <= 0 || ways <= 0 || not (Sim.Units.is_power_of_two sets) then
    invalid_arg "Tlb.create: sets must be a positive power of two";
  { clock; stats; trace; sets; ways; data = Array.make sets [] }

let capacity t = t.sets * t.ways

let model t = Sim.Clock.model t.clock

(* Tag = VA with in-page bits cleared for the entry's page size; the set
   index mixes in the size so different sizes coexist predictably. *)
let tag_of va size = Sim.Units.round_down va ~align:(Page_size.bytes size)

let set_of t va size =
  let vpn = va / Page_size.bytes size in
  (vpn lxor (Page_size.bytes size lsr 12)) land (t.sets - 1)

let sizes = [ Page_size.Small; Page_size.Huge_2m; Page_size.Huge_1g ]

let lookup t ~va =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.tlb_hit;
  let found = ref None in
  List.iter
    (fun size ->
      if !found = None then begin
        let s = set_of t va size in
        let tag = tag_of va size in
        match List.find_opt (fun e -> e.tag = tag && e.size = size) t.data.(s) with
        | Some e ->
          (* Move to MRU position. *)
          t.data.(s) <- e :: List.filter (fun x -> x != e) t.data.(s);
          found := Some (e.pfn, e.prot, e.size)
        | None -> ()
      end)
    sizes;
  (match !found with
  | Some _ -> Sim.Stats.incr t.stats "tlb_hit"
  | None -> Sim.Stats.incr t.stats "tlb_miss");
  Sim.Trace.record t.trace ~op:"tlb_lookup" ~start
    ~outcome:(match !found with Some _ -> "hit" | None -> "miss")
    ();
  !found

let insert t ~va ~pfn ~prot ~size =
  let s = set_of t va size in
  let tag = tag_of va size in
  let without = List.filter (fun e -> not (e.tag = tag && e.size = size)) t.data.(s) in
  let trimmed =
    if List.length without >= t.ways then
      (* Drop LRU (last). *)
      List.filteri (fun i _ -> i < t.ways - 1) without
    else without
  in
  t.data.(s) <- { tag; size; pfn; prot } :: trimmed

let invalidate_page t ~va =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "tlb_shootdown";
  List.iter
    (fun size ->
      let s = set_of t va size in
      let tag = tag_of va size in
      t.data.(s) <- List.filter (fun e -> not (e.tag = tag && e.size = size)) t.data.(s))
    sizes;
  Sim.Trace.record t.trace ~op:"tlb_shootdown" ~start ~arg:1 ()

let flush t =
  let start = Sim.Clock.now t.clock in
  let had = Array.fold_left (fun acc l -> acc + List.length l) 0 t.data in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "tlb_flush";
  Array.fill t.data 0 t.sets [];
  Sim.Trace.record t.trace ~op:"tlb_flush" ~start ~arg:had ()

(* Beyond this many pages Linux stops issuing per-page INVLPGs and just
   flushes the whole TLB. *)
let full_flush_threshold_pages = 33

let invalidate_range t ~va ~len =
  let pages = Sim.Units.pages_of_bytes len in
  if pages >= full_flush_threshold_pages then flush t
  else begin
    let start = Sim.Clock.now t.clock in
    (* One INVLPG per page in the range, resident or not — same cost and
       stat accounting as [invalidate_page], applied n times. *)
    Sim.Clock.charge t.clock (pages * Sim.Cost_model.shootdown_cost (model t));
    Sim.Stats.add t.stats "tlb_shootdown" pages;
    let lo = va and hi = va + len in
    Array.iteri
      (fun s entries ->
        t.data.(s) <-
          List.filter
            (fun e ->
              let e_lo = e.tag and e_hi = e.tag + Page_size.bytes e.size in
              e_hi <= lo || e_lo >= hi)
            entries)
      t.data;
    Sim.Trace.record t.trace ~op:"tlb_shootdown" ~start ~arg:pages ()
  end

let entry_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.data
