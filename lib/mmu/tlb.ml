(* Each set is a fixed array of [ways] slots with a per-slot LRU clock:
   lookup, insert and eviction are all O(ways) array scans with no list
   allocation — the O(1) hot path the rest of the simulator leans on.

   Entries are ASID-tagged (PCID-style): one physical TLB per core is
   shared by every address space scheduled there, and invalidations are
   scoped to one ASID while a full flush drops everything. *)
type slot = {
  mutable valid : bool;
  mutable asid : int;
  mutable tag : int;
  mutable size : Page_size.t;
  mutable pfn : Physmem.Frame.t;
  mutable prot : Prot.t;
  mutable used : int; (* global tick of last touch; smallest = LRU *)
}

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  sets : int;
  ways : int;
  data : slot array array;
  mutable tick : int;
  (* Local mirrors of the global "tlb_shootdown" / "tlb_flush" counters:
     every bump of the shared stat bumps these by the same amount, so the
     per-core sums must reconcile with the machine-wide stat (Os.Check
     enforces it). *)
  mutable shootdowns : int;
  mutable flushes : int;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ?(sets = 128) ?(ways = 8) () =
  if sets <= 0 || ways <= 0 || not (Sim.Units.is_power_of_two sets) then
    invalid_arg "Tlb.create: sets must be a positive power of two";
  let mk_slot _ =
    { valid = false; asid = 0; tag = 0; size = Page_size.Small; pfn = 0; prot = Prot.r; used = 0 }
  in
  {
    clock;
    stats;
    trace;
    sets;
    ways;
    data = Array.init sets (fun _ -> Array.init ways mk_slot);
    tick = 0;
    shootdowns = 0;
    flushes = 0;
  }

let capacity t = t.sets * t.ways
let shootdowns t = t.shootdowns
let flushes t = t.flushes

let model t = Sim.Clock.model t.clock
let pspan t name f = Sim.Trace.prof_span t.trace name f

(* Occupancy gauge: per-core TLBs share the machine Stats, so the
   gauge is maintained with deltas and reads as aggregate live entries. *)
let gauge_delta t d = if d <> 0 then Sim.Stats.add_gauge t.stats "tlb_entries" d

let touch t =
  t.tick <- t.tick + 1;
  t.tick

(* Tag = VA with in-page bits cleared for the entry's page size; the set
   index mixes in the size so different sizes coexist predictably. *)
let tag_of va size = Sim.Units.round_down va ~align:(Page_size.bytes size)

let set_of t va size =
  let vpn = va / Page_size.bytes size in
  (vpn lxor (Page_size.bytes size lsr 12)) land (t.sets - 1)

let sizes = [ Page_size.Small; Page_size.Huge_2m; Page_size.Huge_1g ]

let find_slot t ~asid va size =
  let set = t.data.(set_of t va size) in
  let tag = tag_of va size in
  let found = ref None in
  for i = 0 to t.ways - 1 do
    let s = set.(i) in
    if !found = None && s.valid && s.asid = asid && s.tag = tag && s.size = size then
      found := Some s
  done;
  !found

let lookup t ?(asid = 0) ~va () =
  pspan t "tlb_lookup" @@ fun () ->
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.tlb_hit;
  let found = ref None in
  List.iter
    (fun size ->
      if !found = None then
        match find_slot t ~asid va size with
        | Some s ->
          s.used <- touch t;
          found := Some (s.pfn, s.prot, s.size)
        | None -> ())
    sizes;
  (match !found with
  | Some _ -> Sim.Stats.incr t.stats "tlb_hit"
  | None -> Sim.Stats.incr t.stats "tlb_miss");
  Sim.Trace.record t.trace ~op:"tlb_lookup" ~start
    ~outcome:(match !found with Some _ -> "hit" | None -> "miss")
    ();
  !found

let insert t ?(asid = 0) ~va ~pfn ~prot ~size () =
  let set = t.data.(set_of t va size) in
  let tag = tag_of va size in
  (* Reuse a matching or invalid slot; otherwise evict the LRU slot. *)
  let victim = ref set.(0) in
  let exception Found in
  (try
     for i = 0 to t.ways - 1 do
       let s = set.(i) in
       if s.valid && s.asid = asid && s.tag = tag && s.size = size then begin
         victim := s;
         raise Found
       end;
       if not s.valid then begin
         if !victim.valid then victim := s
       end
       else if !victim.valid && s.used < !victim.used then victim := s
     done
   with Found -> ());
  let s = !victim in
  if s.valid && not (s.asid = asid && s.tag = tag && s.size = size) then
    Sim.Stats.incr t.stats "tlb_evictions";
  if not s.valid then gauge_delta t 1;
  s.valid <- true;
  s.asid <- asid;
  s.tag <- tag;
  s.size <- size;
  s.pfn <- pfn;
  s.prot <- prot;
  s.used <- touch t

let count_shootdown t n =
  Sim.Stats.add t.stats "tlb_shootdown" n;
  t.shootdowns <- t.shootdowns + n

let invalidate_page t ?(asid = 0) ~va () =
  pspan t "tlb_shootdown" @@ fun () ->
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  count_shootdown t 1;
  List.iter
    (fun size ->
      match find_slot t ~asid va size with
      | Some s ->
        s.valid <- false;
        gauge_delta t (-1)
      | None -> ())
    sizes;
  Sim.Trace.record t.trace ~op:"tlb_shootdown" ~start ~arg:1 ()

let iter t f =
  Array.iter
    (fun set ->
      Array.iter
        (fun s ->
          if s.valid then f ~asid:s.asid ~va:s.tag ~size:s.size ~pfn:s.pfn ~prot:s.prot)
        set)
    t.data

let entry_count t =
  Array.fold_left
    (fun acc set -> Array.fold_left (fun acc s -> if s.valid then acc + 1 else acc) acc set)
    0 t.data

let clear t =
  gauge_delta t (-entry_count t);
  Array.iter (fun set -> Array.iter (fun s -> s.valid <- false) set) t.data

let flush t =
  pspan t "tlb_flush" @@ fun () ->
  let start = Sim.Clock.now t.clock in
  let had = entry_count t in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "tlb_flush";
  t.flushes <- t.flushes + 1;
  clear t;
  Sim.Trace.record t.trace ~op:"tlb_flush" ~start ~arg:had ()

(* Beyond this many pages Linux stops issuing per-page INVLPGs and just
   flushes the whole TLB. *)
let full_flush_threshold_pages = 33

let invalidate_range t ?(asid = 0) ~va ~len () =
  let pages = Sim.Units.pages_of_bytes len in
  if pages >= full_flush_threshold_pages then flush t
  else begin
    pspan t "tlb_shootdown" @@ fun () ->
    let start = Sim.Clock.now t.clock in
    (* One INVLPG per page in the range, resident or not — same cost and
       stat accounting as [invalidate_page], applied n times. *)
    Sim.Clock.charge t.clock (pages * Sim.Cost_model.shootdown_cost (model t));
    count_shootdown t pages;
    let lo = va and hi = va + len in
    Array.iter
      (fun set ->
        Array.iter
          (fun s ->
            if s.valid && s.asid = asid then begin
              let e_lo = s.tag and e_hi = s.tag + Page_size.bytes s.size in
              if not (e_hi <= lo || e_lo >= hi) then begin
                s.valid <- false;
                gauge_delta t (-1)
              end
            end)
          set)
      t.data;
    Sim.Trace.record t.trace ~op:"tlb_shootdown" ~start ~arg:pages ()
  end
