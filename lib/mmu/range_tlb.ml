type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  capacity : int;
  mutable entries : Range_table.entry list; (* MRU first *)
}

let create ~clock ~stats ?(entries = 32) () =
  if entries <= 0 then invalid_arg "Range_tlb.create: no capacity";
  { clock; stats; capacity = entries; entries = [] }

let capacity t = t.capacity

let model t = Sim.Clock.model t.clock

let lookup t ~va =
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.tlb_hit;
  match
    List.find_opt
      (fun (e : Range_table.entry) -> va >= e.base && va < e.base + e.limit)
      t.entries
  with
  | Some e ->
    t.entries <- e :: List.filter (fun x -> x != e) t.entries;
    Sim.Stats.incr t.stats "range_tlb_hit";
    Some e
  | None ->
    Sim.Stats.incr t.stats "range_tlb_miss";
    None

let insert t e =
  let without =
    List.filter (fun (x : Range_table.entry) -> x.base <> e.Range_table.base) t.entries
  in
  let trimmed =
    if List.length without >= t.capacity then List.filteri (fun i _ -> i < t.capacity - 1) without
    else without
  in
  t.entries <- e :: trimmed

let invalidate t ~base =
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "range_tlb_shootdown";
  t.entries <- List.filter (fun (e : Range_table.entry) -> e.base <> base) t.entries

let flush t =
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  t.entries <- []

let entry_count t = List.length t.entries
