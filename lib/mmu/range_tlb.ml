type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  capacity : int;
  mutable entries : Range_table.entry list; (* MRU first *)
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ?(entries = 32) () =
  if entries <= 0 then invalid_arg "Range_tlb.create: no capacity";
  { clock; stats; trace; capacity = entries; entries = [] }

let capacity t = t.capacity

let model t = Sim.Clock.model t.clock

let lookup t ~va =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.tlb_hit;
  let hit =
    List.find_opt
      (fun (e : Range_table.entry) -> va >= e.base && va < e.base + e.limit)
      t.entries
  in
  (match hit with
  | Some e ->
    t.entries <- e :: List.filter (fun x -> x != e) t.entries;
    Sim.Stats.incr t.stats "range_tlb_hit"
  | None -> Sim.Stats.incr t.stats "range_tlb_miss");
  Sim.Trace.record t.trace ~op:"range_tlb_lookup" ~start
    ~outcome:(match hit with Some _ -> "hit" | None -> "miss")
    ();
  hit

let overlaps (a : Range_table.entry) (b : Range_table.entry) =
  a.base < b.base + b.limit && b.base < a.base + a.limit

let insert t e =
  (* Evict anything overlapping the new range, not just an equal base — a
     stale overlapping entry would otherwise keep winning lookups. *)
  let without = List.filter (fun x -> not (overlaps x e)) t.entries in
  let trimmed =
    if List.length without >= t.capacity then List.filteri (fun i _ -> i < t.capacity - 1) without
    else without
  in
  t.entries <- e :: trimmed

let invalidate t ~base =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "range_tlb_shootdown";
  t.entries <- List.filter (fun (e : Range_table.entry) -> e.base <> base) t.entries;
  Sim.Trace.record t.trace ~op:"range_tlb_shootdown" ~start ~arg:1 ()

let flush t =
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  t.entries <- []

let entry_count t = List.length t.entries
