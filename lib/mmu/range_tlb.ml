(* Entries are kept in two interval-ordered maps keyed by (asid, base):
   [by_key] for O(log n) point lookup and overlap eviction, [by_tick] for
   O(log n) LRU victim selection. Cached ranges are pairwise disjoint per
   ASID (insert evicts overlaps), so a point query is one predecessor
   probe. Like the page {!Tlb}, one physical range TLB per core is shared
   by every address space scheduled there, hence the ASID tag. *)

module KeyMap = Map.Make (struct
  type t = int * int (* asid, base *)

  let compare = compare
end)

module IntMap = Map.Make (Int)

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  capacity : int;
  mutable by_key : (Range_table.entry * int) KeyMap.t; (* (asid, base) -> entry, tick *)
  mutable by_tick : (int * int) IntMap.t; (* tick -> (asid, base); min tick = LRU *)
  mutable tick : int;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ?(entries = 32) () =
  if entries <= 0 then invalid_arg "Range_tlb.create: no capacity";
  {
    clock;
    stats;
    trace;
    capacity = entries;
    by_key = KeyMap.empty;
    by_tick = IntMap.empty;
    tick = 0;
  }

let capacity t = t.capacity

let model t = Sim.Clock.model t.clock

let touch t =
  t.tick <- t.tick + 1;
  t.tick

(* Occupancy gauge, maintained as deltas like [Tlb]'s: the machine-wide
   Stats aggregates every range TLB sharing it. *)
let gauge_delta t d = if d <> 0 then Sim.Stats.add_gauge t.stats "range_tlb_entries" d

let drop t ~key ~tick =
  t.by_key <- KeyMap.remove key t.by_key;
  t.by_tick <- IntMap.remove tick t.by_tick;
  gauge_delta t (-1)

let lookup t ?(asid = 0) ~va () =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.tlb_hit;
  let hit =
    match KeyMap.find_last_opt (fun (a, base) -> a < asid || (a = asid && base <= va)) t.by_key with
    | Some (((a, _) as key), ((e : Range_table.entry), tick))
      when a = asid && va < e.base + e.limit ->
      let now = touch t in
      t.by_tick <- IntMap.add now key (IntMap.remove tick t.by_tick);
      t.by_key <- KeyMap.add key (e, now) t.by_key;
      Some e
    | _ -> None
  in
  (match hit with
  | Some _ -> Sim.Stats.incr t.stats "range_tlb_hit"
  | None -> Sim.Stats.incr t.stats "range_tlb_miss");
  Sim.Trace.record t.trace ~op:"range_tlb_lookup" ~start
    ~outcome:(match hit with Some _ -> "hit" | None -> "miss")
    ();
  hit

let insert t ?(asid = 0) (e : Range_table.entry) =
  (* Evict anything of the same ASID overlapping the new range, not just
     an equal base — a stale overlapping entry would otherwise keep
     winning lookups. Cached ranges are disjoint per ASID, so overlaps are
     the base-order predecessor plus a run of successors starting inside
     [e]. *)
  (match KeyMap.find_last_opt (fun (a, base) -> a < asid || (a = asid && base < e.base)) t.by_key with
  | Some (((a, _) as key), ((prev : Range_table.entry), tick))
    when a = asid && prev.base + prev.limit > e.base ->
    drop t ~key ~tick
  | _ -> ());
  let rec evict_from lo =
    match KeyMap.find_first_opt (fun (a, base) -> a > asid || (a = asid && base >= lo)) t.by_key with
    | Some (((a, base) as key), (_, tick)) when a = asid && base < e.base + e.limit ->
      drop t ~key ~tick;
      evict_from (base + 1)
    | _ -> ()
  in
  evict_from e.base;
  while KeyMap.cardinal t.by_key >= t.capacity do
    let tick, key = IntMap.min_binding t.by_tick in
    drop t ~key ~tick
  done;
  let now = touch t in
  t.by_key <- KeyMap.add (asid, e.base) (e, now) t.by_key;
  t.by_tick <- IntMap.add now (asid, e.base) t.by_tick;
  gauge_delta t 1

let invalidate t ?(asid = 0) ~base () =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "range_tlb_shootdown";
  (match KeyMap.find_opt (asid, base) t.by_key with
  | Some (_, tick) -> drop t ~key:(asid, base) ~tick
  | None -> ());
  Sim.Trace.record t.trace ~op:"range_tlb_shootdown" ~start ~arg:1 ()

let clear t =
  gauge_delta t (-KeyMap.cardinal t.by_key);
  t.by_key <- KeyMap.empty;
  t.by_tick <- IntMap.empty

let flush t =
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  clear t

let entry_count t = KeyMap.cardinal t.by_key
