module IntMap = Map.Make (Int)

(* Entries are kept in two interval-ordered maps: [by_base] for O(log n)
   point lookup and overlap eviction, [by_tick] for O(log n) LRU victim
   selection. Cached ranges are pairwise disjoint (insert evicts
   overlaps), so a point query is one predecessor probe. *)
type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  capacity : int;
  mutable by_base : (Range_table.entry * int) IntMap.t; (* base -> entry, tick *)
  mutable by_tick : int IntMap.t; (* tick -> base; min tick = LRU *)
  mutable tick : int;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ?(entries = 32) () =
  if entries <= 0 then invalid_arg "Range_tlb.create: no capacity";
  {
    clock;
    stats;
    trace;
    capacity = entries;
    by_base = IntMap.empty;
    by_tick = IntMap.empty;
    tick = 0;
  }

let capacity t = t.capacity

let model t = Sim.Clock.model t.clock

let touch t =
  t.tick <- t.tick + 1;
  t.tick

(* Occupancy gauge, maintained as deltas like [Tlb]'s: the machine-wide
   Stats aggregates every range TLB sharing it. *)
let gauge_delta t d = if d <> 0 then Sim.Stats.add_gauge t.stats "range_tlb_entries" d

let drop t ~base ~tick =
  t.by_base <- IntMap.remove base t.by_base;
  t.by_tick <- IntMap.remove tick t.by_tick;
  gauge_delta t (-1)

let lookup t ~va =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (model t).Sim.Cost_model.tlb_hit;
  let hit =
    match IntMap.find_last_opt (fun base -> base <= va) t.by_base with
    | Some (base, ((e : Range_table.entry), tick)) when va < e.base + e.limit ->
      let now = touch t in
      t.by_tick <- IntMap.add now base (IntMap.remove tick t.by_tick);
      t.by_base <- IntMap.add base (e, now) t.by_base;
      Some e
    | _ -> None
  in
  (match hit with
  | Some _ -> Sim.Stats.incr t.stats "range_tlb_hit"
  | None -> Sim.Stats.incr t.stats "range_tlb_miss");
  Sim.Trace.record t.trace ~op:"range_tlb_lookup" ~start
    ~outcome:(match hit with Some _ -> "hit" | None -> "miss")
    ();
  hit

let insert t (e : Range_table.entry) =
  (* Evict anything overlapping the new range, not just an equal base — a
     stale overlapping entry would otherwise keep winning lookups. Cached
     ranges are disjoint, so overlaps are the base-order predecessor plus
     a run of successors starting inside [e]. *)
  (match IntMap.find_last_opt (fun base -> base < e.base) t.by_base with
  | Some (base, ((prev : Range_table.entry), tick)) when prev.base + prev.limit > e.base ->
    drop t ~base ~tick
  | _ -> ());
  let rec evict_from lo =
    match IntMap.find_first_opt (fun base -> base >= lo) t.by_base with
    | Some (base, (_, tick)) when base < e.base + e.limit ->
      drop t ~base ~tick;
      evict_from (base + 1)
    | _ -> ()
  in
  evict_from e.base;
  while IntMap.cardinal t.by_base >= t.capacity do
    let tick, base = IntMap.min_binding t.by_tick in
    drop t ~base ~tick
  done;
  let now = touch t in
  t.by_base <- IntMap.add e.base (e, now) t.by_base;
  t.by_tick <- IntMap.add now e.base t.by_tick;
  gauge_delta t 1

let invalidate t ~base =
  let start = Sim.Clock.now t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  Sim.Stats.incr t.stats "range_tlb_shootdown";
  (match IntMap.find_opt base t.by_base with
  | Some (_, tick) -> drop t ~base ~tick
  | None -> ());
  Sim.Trace.record t.trace ~op:"range_tlb_shootdown" ~start ~arg:1 ()

let flush t =
  Sim.Clock.charge t.clock (Sim.Cost_model.shootdown_cost (model t));
  gauge_delta t (-IntMap.cardinal t.by_base);
  t.by_base <- IntMap.empty;
  t.by_tick <- IntMap.empty

let entry_count t = IntMap.cardinal t.by_base
