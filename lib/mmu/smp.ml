(* The simulated machine's core complex: each core owns a page TLB and a
   range TLB plus IPI and occupancy counters. All cores share one virtual
   clock and one stats sink — the simulator is sequential, so "parallel"
   cores are modelled as per-core cycle attribution ([busy_cycles]) over
   a single timeline. *)

type core = {
  id : int;
  numa_node : int;
  tlb : Tlb.t;
  range_tlb : Range_tlb.t;
  mutable ipi_sent : int;
  mutable ipi_received : int;
  mutable ipi_acked : int;
  mutable busy_cycles : int;
}

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  cores : core array;
  numa_nodes : int;
}

let node_of ~cores ~numa_nodes id = id * numa_nodes / cores

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ?(cores = 1) ?(numa_nodes = 1) ?tlb_sets
    ?tlb_ways ?range_tlb_entries () =
  if cores <= 0 then invalid_arg "Smp.create: cores must be positive";
  if numa_nodes <= 0 || numa_nodes > cores then
    invalid_arg "Smp.create: numa_nodes must be in [1, cores]";
  let mk_core id =
    {
      id;
      numa_node = node_of ~cores ~numa_nodes id;
      tlb = Tlb.create ~clock ~stats ~trace ?sets:tlb_sets ?ways:tlb_ways ();
      range_tlb = Range_tlb.create ~clock ~stats ~trace ?entries:range_tlb_entries ();
      ipi_sent = 0;
      ipi_received = 0;
      ipi_acked = 0;
      busy_cycles = 0;
    }
  in
  { clock; stats; trace; cores = Array.init cores mk_core; numa_nodes }

let clock t = t.clock
let stats t = t.stats
let trace t = t.trace
let cores t = Array.length t.cores
let numa_nodes t = t.numa_nodes

let core t i =
  if i < 0 || i >= Array.length t.cores then invalid_arg "Smp.core: no such core";
  t.cores.(i)

let iter_cores t f = Array.iter f t.cores
let numa_node_of_core t i = (core t i).numa_node
(* Besides the raw counter, each attribution feeds the causal plane's
   makespan accounting and a [core<N>_busy] gauge whose clock-sampled
   series gives per-core utilization over time, not just final totals. *)
let add_busy t i cycles =
  let c = core t i in
  c.busy_cycles <- c.busy_cycles + cycles;
  Sim.Causal.add_busy (Sim.Trace.causal t.trace) ~core:i ~cycles;
  Sim.Stats.set_gauge t.stats (Printf.sprintf "core%d_busy" i) c.busy_cycles;
  Sim.Stats.sample t.stats ~now:(Sim.Clock.now t.clock)

let clear t =
  Array.iter
    (fun c ->
      Tlb.clear c.tlb;
      Range_tlb.clear c.range_tlb)
    t.cores
