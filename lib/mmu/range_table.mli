(** Range table (Figure 9): the OS-managed structure for range
    translations, after Gandhi et al.'s Redundant Memory Mappings.

    Each entry maps an arbitrarily long contiguous virtual range
    [base, base+limit) to physical memory at [base + offset], with one
    protection word — a single fixed-size entry regardless of range
    length, which is what makes map and unmap O(1). Entries live in a
    B-tree keyed by base (as in Redundant Memory Mappings), so a hardware
    refill reads one node per tree level. *)

type entry = { base : int; limit : int; offset : int; prot : Prot.t }
(** [limit] is the range length in bytes; translation of [va] is
    [va + offset]. *)

type t

val create : clock:Sim.Clock.t -> stats:Sim.Stats.t -> ?trace:Sim.Trace.t -> unit -> t
(** [trace] records "range_table_insert"/"range_table_remove"/
    "range_table_walk" events. *)

val insert : t -> base:int -> limit:int -> offset:int -> prot:Prot.t -> unit
(** O(1) table update (one ordered-map insertion); charges the
    range-table operation cost. Raises [Invalid_argument] if the range
    is empty, misaligned, or overlaps an existing entry. *)

val remove : t -> base:int -> entry
(** Remove the entry starting at [base]; O(1) table-side. Raises
    [Not_found] if absent. *)

val lookup : t -> va:int -> entry option
(** Software lookup, no cost. *)

val walk : t -> va:int -> entry option
(** Hardware refill walk: descends the B-tree, charging one memory
    reference per level (height 1 up to ~7 entries, 2 up to ~50, ...). *)

val entry_count : t -> int
val metadata_bytes : t -> int
(** 32 bytes per entry (base, limit, offset, protection). *)

val iter : t -> (entry -> unit) -> unit
