type t = Small | Huge_2m | Huge_1g

let bytes = function
  | Small -> Sim.Units.page_size
  | Huge_2m -> Sim.Units.huge_2m
  | Huge_1g -> Sim.Units.huge_1g

let frames s = bytes s / Sim.Units.page_size

let depth_above_leaf = function Small -> 0 | Huge_2m -> 1 | Huge_1g -> 2

let largest_for ~addr ~len =
  let fits s = Sim.Units.is_aligned addr ~align:(bytes s) && len >= bytes s in
  if fits Huge_1g then Huge_1g else if fits Huge_2m then Huge_2m else Small

let pp ppf s =
  Format.pp_print_string ppf
    (match s with Small -> "4K" | Huge_2m -> "2M" | Huge_1g -> "1G")
