(** A mutable B-tree keyed by [int] — the index structure a range table
    actually uses (Redundant Memory Mappings keeps its OS-side ranges in
    a B-tree so hardware refills touch O(height) cache lines, not
    O(log2 n) pointer hops of a binary tree).

    Minimum degree 4: nodes hold 3–7 keys, so a few thousand ranges fit
    in a tree of height 3–4. *)

type 'v t

val create : unit -> 'v t

val insert : 'v t -> key:int -> 'v -> unit
(** Raises [Invalid_argument] on a duplicate key. *)

val remove : 'v t -> key:int -> 'v option
(** Remove and return the binding, or [None]. *)

val find : 'v t -> key:int -> 'v option

val find_last_leq : 'v t -> key:int -> (int * 'v) option
(** The binding with the greatest key <= [key]. *)

val find_first_gt : 'v t -> key:int -> (int * 'v) option
(** The binding with the smallest key > [key]. *)

val cardinal : 'v t -> int

val height : 'v t -> int
(** Levels from root to leaf inclusive; 1 for a lone root. *)

val iter : 'v t -> (int -> 'v -> unit) -> unit
(** In ascending key order. *)

val check_invariants : 'v t -> bool
(** Structural check (sorted keys, node occupancy, uniform depth) — used
    by the property tests. *)
