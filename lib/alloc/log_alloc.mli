(** Log-structured memory allocator (after Rumble et al., FAST '14).

    The paper cites log-structured memory as an existing design that
    "wastes space for improved performance": allocation is a pointer bump
    into the head segment (O(1)); space is reclaimed by a cleaner that
    copies live objects out of lightly-used segments. Objects are
    referenced through stable handles so that cleaning can relocate them. *)

type t

type handle
(** Stable reference to a live allocation; survives cleaning. *)

val create :
  mem:Physmem.Phys_mem.t -> backing:Extent_alloc.t -> ?segment_frames:int -> unit -> t
(** [segment_frames] defaults to 2048 (8 MiB segments, as in RAMCloud). *)

val alloc : t -> bytes:int -> handle option
(** Bump-allocate. Opens a new segment from the backing extent allocator
    when the head is full; [None] when backing space is exhausted and
    cleaning cannot help. Objects larger than a segment are rejected
    with [Invalid_argument]. *)

val free : t -> handle -> unit
(** Mark the object dead (tombstone); space is reclaimed by the cleaner.
    Raises [Invalid_argument] on double free. *)

val addr_of : t -> handle -> int
(** Current physical address of a live object. Raises [Not_found] after
    [free]. *)

val size_of : t -> handle -> int

val clean : t -> max_segments:int -> int
(** Run the cleaner on up to [max_segments] of the emptiest closed
    segments: live objects are copied to the head (charging copy cost)
    and the segments returned to the backing allocator. Returns segments
    reclaimed. *)

val live_bytes : t -> int
val footprint_bytes : t -> int
(** Bytes held in segments (including dead space — the waste). *)

val segment_count : t -> int
val utilization : t -> float
(** live/footprint, 0 when empty. *)
