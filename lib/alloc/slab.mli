(** Bonwick-style slab allocator.

    The paper proposes "using techniques from heaps, such as slab
    allocators, to manage physical memory". A cache serves objects of one
    fixed size; slabs (contiguous frame blocks from a buddy allocator)
    are carved into objects chained on a free list, so allocation and
    free are O(1) pushes/pops. Empty slabs are returned to the buddy. *)

type cache

val create_cache :
  mem:Physmem.Phys_mem.t -> backing:Buddy.t -> name:string -> obj_bytes:int ->
  ?slab_frames:int -> unit -> cache
(** A cache of objects of [obj_bytes] (rounded up to 64 B). [slab_frames]
    (default: enough for at least 8 objects, min 1, power of two) is the
    size of each backing block. Raises [Invalid_argument] if an object
    cannot fit in the largest backing block. *)

val name : cache -> string
val obj_bytes : cache -> int

val alloc : cache -> int option
(** Physical byte address of a fresh object, or [None] if the backing
    allocator is exhausted. O(1) unless a new slab must be fetched. *)

val free : cache -> int -> unit
(** Return an object by address. Raises [Invalid_argument] if the address
    does not belong to a live object of this cache. A slab whose objects
    are all free is handed back to the buddy allocator. *)

val live_objects : cache -> int
val slab_count : cache -> int

val footprint_bytes : cache -> int
(** Bytes of physical memory currently held by the cache (all slabs),
    including internal fragmentation — the space half of the paper's
    space-for-time trade (E15). *)

val wasted_bytes : cache -> int
(** Footprint minus bytes in live objects. *)
