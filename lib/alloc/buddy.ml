module Frame = Physmem.Frame

type t = {
  mem : Physmem.Phys_mem.t;
  first : Frame.t;
  count : int;
  max_order : int;
  merge : bool;
  (* free.(k) maps block start frame -> () for free blocks of order k. *)
  free : (Frame.t, unit) Hashtbl.t array;
  mutable free_frames : int;
}

let charge t c = Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) c
let model t = Sim.Clock.model (Physmem.Phys_mem.clock t.mem)
let stats t = Physmem.Phys_mem.stats t.mem

let create ~mem ~first ~count ?(max_order = 10) ?(merge = true) () =
  let block = 1 lsl max_order in
  if count <= 0 || count mod block <> 0 then
    invalid_arg "Buddy.create: count must be a positive multiple of 2^max_order";
  if first mod block <> 0 then invalid_arg "Buddy.create: first not aligned to max order";
  let t =
    {
      mem;
      first;
      count;
      max_order;
      merge;
      free = Array.init (max_order + 1) (fun _ -> Hashtbl.create 64);
      free_frames = count;
    }
  in
  let top = t.free.(max_order) in
  let rec seed pfn = if pfn < first + count then (Hashtbl.replace top pfn (); seed (pfn + block)) in
  seed first;
  t

let max_order t = t.max_order

let in_range t pfn = pfn >= t.first && pfn < t.first + t.count

let buddy_of t pfn ~order = t.first + ((pfn - t.first) lxor (1 lsl order))

let rec find_order t order =
  if order > t.max_order then None
  else if Hashtbl.length t.free.(order) > 0 then Some order
  else find_order t (order + 1)

let pop_any tbl =
  (* Deterministic choice: smallest start frame, keeping layouts stable. *)
  let best = Hashtbl.fold (fun k () acc -> match acc with None -> Some k | Some b -> Some (min b k)) tbl None in
  match best with
  | None -> None
  | Some k ->
    Hashtbl.remove tbl k;
    Some k

let alloc t ~order =
  if order < 0 || order > t.max_order then invalid_arg "Buddy.alloc: bad order";
  charge t (model t).Sim.Cost_model.frame_alloc;
  match find_order t order with
  | None -> None
  | Some avail ->
    let pfn =
      match pop_any t.free.(avail) with Some p -> p | None -> assert false
    in
    (* Split down to the requested order, freeing the upper halves. *)
    let rec split pfn k =
      if k = order then pfn
      else begin
        let k = k - 1 in
        let upper = pfn + (1 lsl k) in
        Hashtbl.replace t.free.(k) upper ();
        Sim.Stats.incr (stats t) "buddy_split";
        charge t 40;
        split pfn k
      end
    in
    let pfn = split pfn avail in
    t.free_frames <- t.free_frames - (1 lsl order);
    Some pfn

let rec insert_and_merge t pfn order =
  if t.merge && order < t.max_order then begin
    let buddy = buddy_of t pfn ~order in
    if Hashtbl.mem t.free.(order) buddy then begin
      Hashtbl.remove t.free.(order) buddy;
      Sim.Stats.incr (stats t) "buddy_merge";
      charge t 40;
      insert_and_merge t (min pfn buddy) (order + 1)
    end
    else Hashtbl.replace t.free.(order) pfn ()
  end
  else Hashtbl.replace t.free.(order) pfn ()

let is_free t pfn =
  if not (in_range t pfn) then false
  else
    let rec probe order =
      if order > t.max_order then false
      else
        let start = t.first + Sim.Units.round_down (pfn - t.first) ~align:(1 lsl order) in
        Hashtbl.mem t.free.(order) start || probe (order + 1)
    in
    probe 0

let free t pfn ~order =
  if order < 0 || order > t.max_order then invalid_arg "Buddy.free: bad order";
  if not (in_range t pfn) then invalid_arg "Buddy.free: frame out of range";
  if (pfn - t.first) land ((1 lsl order) - 1) <> 0 then
    invalid_arg "Buddy.free: misaligned block";
  if is_free t pfn then invalid_arg "Buddy.free: double free";
  charge t (model t).Sim.Cost_model.frame_alloc;
  insert_and_merge t pfn order;
  t.free_frames <- t.free_frames + (1 lsl order)

let alloc_frames t ~frames =
  if frames <= 0 then invalid_arg "Buddy.alloc_frames: non-positive size";
  let order = Sim.Units.log2_ceil frames in
  if order > t.max_order then None else alloc t ~order

let free_frames_count t = t.free_frames

let largest_free_order t =
  let rec loop k = if k < 0 then None else if Hashtbl.length t.free.(k) > 0 then Some k else loop (k - 1) in
  loop t.max_order

let free_blocks_per_order t = Array.map Hashtbl.length t.free


