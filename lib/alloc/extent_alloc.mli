(** Free-extent allocator with first-fit / best-fit policies and eager
    coalescing.

    This is the contiguity engine behind file-only memory: file systems
    "can efficiently allocate large contiguous extents, which reduces the
    per-page cost of allocation". Free space is a set of (start, length)
    extents ordered by address; frees coalesce with both neighbours, so —
    unlike the non-merging buddy — all contiguity present is usable. *)

type policy = First_fit | Best_fit

type t

val create :
  mem:Physmem.Phys_mem.t -> first:Physmem.Frame.t -> count:int -> policy:policy -> t

val alloc : t -> frames:int -> Physmem.Frame.t option
(** Claim exactly [frames] contiguous frames, or [None]. Constant-ish
    cost: one ordered-map search plus one extent update. *)

val alloc_largest : t -> (Physmem.Frame.t * int) option
(** Claim the single largest free extent (used to grab "whatever is
    left" for best-effort contiguity). *)

val free : t -> first:Physmem.Frame.t -> frames:int -> unit
(** Return a range; coalesces with adjacent free extents.
    Raises [Invalid_argument] on overlap with free space or out-of-range. *)

val free_frames : t -> int
val total_frames : t -> int
val largest_free : t -> int
val extent_count : t -> int
(** Number of distinct free extents (fragmentation indicator). *)

val fragmentation : t -> float
(** [1 - largest_free/free_frames]; 0 when free space is one extent or
    empty. *)

val iter_free : t -> (Physmem.Frame.t -> int -> unit) -> unit
(** Iterate free extents in address order. *)
