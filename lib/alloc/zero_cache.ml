type t = {
  mem : Physmem.Phys_mem.t;
  engine : Physmem.Zero_engine.t;
  queues : Physmem.Frame.t Queue.t array; (* index = block order *)
}

let create ~mem ~engine ?(max_order = 4) () =
  if max_order < 0 then invalid_arg "Zero_cache.create: negative max_order";
  { mem; engine; queues = Array.init (max_order + 1) (fun _ -> Queue.create ()) }

let model t = Sim.Clock.model (Physmem.Phys_mem.clock t.mem)

(* Current cached-frame count across all orders, as a gauge with deltas
   (the machine Stats is shared). *)
let depth_delta t d =
  if d <> 0 then Sim.Stats.add_gauge (Physmem.Phys_mem.stats t.mem) "zero_cache_depth" d

let take t ~order =
  let stats = Physmem.Phys_mem.stats t.mem in
  if order < 0 || order >= Array.length t.queues then begin
    Sim.Stats.incr stats "zero_cache_miss";
    None
  end
  else if
    Sim.Fault_inject.fires
      (Sim.Trace.faults (Physmem.Phys_mem.trace t.mem))
      ~site:Sim.Fault_inject.site_zero_cache_empty
  then begin
    (* Injected exhaustion: pretend the cache is dry so callers exercise
       their slow path. *)
    Sim.Stats.incr stats "zero_cache_miss";
    None
  end
  else
    match Queue.take_opt t.queues.(order) with
    | Some frame ->
      (* The O(1) handout: one pop, no zeroing on the critical path. *)
      Sim.Trace.prof_span (Physmem.Phys_mem.trace t.mem) "zero_cache_pop"
      @@ fun () ->
      Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) (model t).Sim.Cost_model.zero_cache_pop;
      Sim.Stats.incr stats "zero_cache_hit";
      depth_delta t (-1);
      Some frame
    | None ->
      Sim.Stats.incr stats "zero_cache_miss";
      None

let put t ~order frame =
  if order < 0 || order >= Array.length t.queues then
    invalid_arg "Zero_cache.put: order out of range";
  Queue.push frame t.queues.(order);
  depth_delta t 1

let refill t ~budget_frames =
  let zeroed = Physmem.Zero_engine.background_step t.engine ~budget_frames in
  let rec drain n =
    match Physmem.Zero_engine.take_zeroed t.engine with
    | Some frame ->
      Queue.push frame t.queues.(0);
      drain (n + 1)
    | None -> n
  in
  depth_delta t (drain 0);
  zeroed

let available t ~order =
  if order < 0 || order >= Array.length t.queues then 0 else Queue.length t.queues.(order)

let depth t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues
