(** File-system style bitmap free-space manager.

    One bit per frame, next-fit search for contiguous runs — the
    mechanism the paper credits file systems with: "unused blocks are
    represented by a single bit in a bitmap, as compared to the complex
    per-page metadata maintained by memory management systems". *)

type t

val create : mem:Physmem.Phys_mem.t -> first:Physmem.Frame.t -> count:int -> t

val alloc_contig : t -> count:int -> Physmem.Frame.t option
(** Find and claim a run of [count] contiguous free frames (next-fit,
    wrapping once). *)

val free_range : t -> first:Physmem.Frame.t -> count:int -> unit
(** Mark a run free. Raises [Invalid_argument] if any frame is already
    free or out of range. *)

val is_free : t -> Physmem.Frame.t -> bool
val free_frames : t -> int
val total_frames : t -> int

val utilization : t -> float
(** Fraction of frames allocated, in [0, 1]. *)

val largest_free_run : t -> int
(** Length of the longest free run (O(n) scan; diagnostics only). *)

val metadata_bytes : t -> int
(** Size of the bitmap itself: one bit per frame, rounded up. Used by the
    metadata-overhead experiment (E13). *)
