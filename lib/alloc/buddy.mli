(** Binary buddy allocator over a contiguous range of physical frames,
    in the style of Linux's page allocator.

    Blocks are power-of-two numbers of frames ("orders"); freeing a block
    merges it with its buddy when both are free. A non-merging mode
    reproduces the paper's observation that Linux "does not aggressively
    merge pages, so there may be contiguity present that is not available
    for use". *)

type t

val create :
  mem:Physmem.Phys_mem.t -> first:Physmem.Frame.t -> count:int -> ?max_order:int ->
  ?merge:bool -> unit -> t
(** Manage frames [first .. first+count-1]. [first] must be aligned to
    [2^max_order] frames and [count] a multiple of it. [max_order]
    defaults to 10 (4 MiB blocks, as in Linux); [merge] defaults to
    [true]. *)

val max_order : t -> int

val alloc : t -> order:int -> Physmem.Frame.t option
(** Allocate a block of [2^order] frames; splits larger blocks as needed.
    Charges allocator work plus one unit per split. *)

val free : t -> Physmem.Frame.t -> order:int -> unit
(** Return a block. In merging mode, coalesces with free buddies upward.
    The block must have been allocated at exactly this order.
    Raises [Invalid_argument] on double free or misaligned block. *)

val alloc_frames : t -> frames:int -> Physmem.Frame.t option
(** Allocate at the smallest order covering [frames] frames. *)

val free_frames_count : t -> int
(** Total free frames currently held. *)

val largest_free_order : t -> int option
(** Largest order with a non-empty free list; [None] if empty. *)

val free_blocks_per_order : t -> int array
(** Index [k] holds the number of free blocks of order [k]. *)

val is_free : t -> Physmem.Frame.t -> bool
(** True iff the frame lies inside some free block. O(orders) probe. *)
