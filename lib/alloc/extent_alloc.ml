module IntMap = Map.Make (Int)

type policy = First_fit | Best_fit

type t = {
  mem : Physmem.Phys_mem.t;
  first : Physmem.Frame.t;
  count : int;
  policy : policy;
  mutable by_addr : int IntMap.t; (* start frame -> length *)
  mutable free : int;
}

let charge t =
  let model = Sim.Clock.model (Physmem.Phys_mem.clock t.mem) in
  Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) model.Sim.Cost_model.fs_extent_op

let create ~mem ~first ~count ~policy =
  if count <= 0 then invalid_arg "Extent_alloc.create: empty range";
  { mem; first; count; policy; by_addr = IntMap.singleton first count; free = count }

let pick_extent t frames =
  match t.policy with
  | First_fit ->
    IntMap.to_seq t.by_addr
    |> Seq.find (fun (_, len) -> len >= frames)
  | Best_fit ->
    IntMap.fold
      (fun start len acc ->
        if len < frames then acc
        else
          match acc with
          | Some (_, best_len) when best_len <= len -> acc
          | _ -> Some (start, len))
      t.by_addr None

let alloc t ~frames =
  if frames <= 0 then invalid_arg "Extent_alloc.alloc: non-positive size";
  charge t;
  match pick_extent t frames with
  | None -> None
  | Some (start, len) ->
    t.by_addr <- IntMap.remove start t.by_addr;
    if len > frames then t.by_addr <- IntMap.add (start + frames) (len - frames) t.by_addr;
    t.free <- t.free - frames;
    Some start

let alloc_largest t =
  charge t;
  let best =
    IntMap.fold
      (fun start len acc ->
        match acc with Some (_, bl) when bl >= len -> acc | _ -> Some (start, len))
      t.by_addr None
  in
  match best with
  | None -> None
  | Some (start, len) ->
    t.by_addr <- IntMap.remove start t.by_addr;
    t.free <- t.free - len;
    Some (start, len)

let free t ~first ~frames =
  if frames <= 0 then invalid_arg "Extent_alloc.free: non-positive size";
  if first < t.first || first + frames > t.first + t.count then
    invalid_arg "Extent_alloc.free: out of range";
  charge t;
  (* Check overlap with the free extent at or below, and the one above. *)
  let below = IntMap.find_last_opt (fun s -> s <= first) t.by_addr in
  (match below with
  | Some (s, l) when s + l > first -> invalid_arg "Extent_alloc.free: overlaps free space"
  | _ -> ());
  let above = IntMap.find_first_opt (fun s -> s > first) t.by_addr in
  (match above with
  | Some (s, _) when first + frames > s -> invalid_arg "Extent_alloc.free: overlaps free space"
  | _ -> ());
  (* Coalesce with neighbours. *)
  let start, len =
    match below with
    | Some (s, l) when s + l = first ->
      t.by_addr <- IntMap.remove s t.by_addr;
      (s, l + frames)
    | _ -> (first, frames)
  in
  let len =
    match above with
    | Some (s, l) when start + len = s ->
      t.by_addr <- IntMap.remove s t.by_addr;
      len + l
    | _ -> len
  in
  t.by_addr <- IntMap.add start len t.by_addr;
  t.free <- t.free + frames

let free_frames t = t.free
let total_frames t = t.count

let largest_free t = IntMap.fold (fun _ len acc -> max len acc) t.by_addr 0

let extent_count t = IntMap.cardinal t.by_addr

let fragmentation t =
  if t.free = 0 then 0.0 else 1.0 -. (float_of_int (largest_free t) /. float_of_int t.free)

let iter_free t f = IntMap.iter f t.by_addr
