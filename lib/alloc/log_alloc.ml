module Frame = Physmem.Frame
module IntMap = Map.Make (Int)

type obj = { mutable addr : int; size : int; mutable live : bool }

type segment = {
  base : Frame.t;
  mutable used : int; (* bump offset, bytes *)
  mutable live_bytes : int;
  mutable objects : obj list; (* objects placed here, newest first *)
}

type handle = int

type t = {
  mem : Physmem.Phys_mem.t;
  backing : Extent_alloc.t;
  segment_frames : int;
  mutable head : segment option;
  mutable closed : segment list;
  objects : (handle, obj) Hashtbl.t;
  mutable next_handle : int;
  mutable live : int;
}

let segment_bytes t = t.segment_frames * Sim.Units.page_size

let create ~mem ~backing ?(segment_frames = 2048) () =
  if segment_frames <= 0 then invalid_arg "Log_alloc.create: bad segment size";
  {
    mem;
    backing;
    segment_frames;
    head = None;
    closed = [];
    objects = Hashtbl.create 256;
    next_handle = 0;
    live = 0;
  }

let charge t n = Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) n

let open_segment t =
  match Extent_alloc.alloc t.backing ~frames:t.segment_frames with
  | None -> None
  | Some base ->
    let seg = { base; used = 0; live_bytes = 0; objects = [] } in
    t.head <- Some seg;
    Sim.Stats.incr (Physmem.Phys_mem.stats t.mem) "log_segment_open";
    Some seg

let place t seg ~bytes =
  let addr = Frame.to_addr seg.base + seg.used in
  seg.used <- seg.used + bytes;
  seg.live_bytes <- seg.live_bytes + bytes;
  let o = { addr; size = bytes; live = true } in
  seg.objects <- o :: seg.objects;
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Hashtbl.replace t.objects h o;
  t.live <- t.live + bytes;
  o.addr <- addr;
  h

let rec alloc t ~bytes =
  if bytes <= 0 then invalid_arg "Log_alloc.alloc: non-positive size";
  let bytes_al = Sim.Units.round_up bytes ~align:16 in
  if bytes_al > segment_bytes t then invalid_arg "Log_alloc.alloc: object larger than segment";
  charge t 20;
  match t.head with
  | Some seg when seg.used + bytes_al <= segment_bytes t -> Some (place t seg ~bytes:bytes_al)
  | Some seg ->
    (* Head full: close it and retry with a fresh head. *)
    t.closed <- seg :: t.closed;
    t.head <- None;
    alloc t ~bytes
  | None -> (
    match open_segment t with
    | Some _ -> alloc t ~bytes
    | None ->
      (* Out of backing space: try cleaning, then retry once. *)
      if clean t ~max_segments:4 > 0 then alloc t ~bytes else None)

and free t h =
  match Hashtbl.find_opt t.objects h with
  | None -> invalid_arg "Log_alloc.free: unknown or already-freed handle"
  | Some o ->
    if not o.live then invalid_arg "Log_alloc.free: double free";
    o.live <- false;
    Hashtbl.remove t.objects h;
    t.live <- t.live - o.size;
    let seg_of_addr addr =
      let in_seg s =
        addr >= Frame.to_addr s.base && addr < Frame.to_addr s.base + segment_bytes t
      in
      match t.head with
      | Some s when in_seg s -> Some s
      | _ -> List.find_opt in_seg t.closed
    in
    (match seg_of_addr o.addr with
    | Some seg -> seg.live_bytes <- seg.live_bytes - o.size
    | None -> ());
    charge t 20

and clean t ~max_segments =
  (* Pick the emptiest closed segments and evacuate their live objects into
     the head. A victim is only freed once every survivor has moved; if we
     run out of space mid-evacuation the victim goes back to the closed
     list with its remaining objects intact. *)
  let victims =
    List.sort (fun a b -> compare a.live_bytes b.live_bytes) t.closed
    |> List.filteri (fun i _ -> i < max_segments)
  in
  let model = Sim.Clock.model (Physmem.Phys_mem.clock t.mem) in
  let reclaimed = ref 0 in
  let evacuate o =
    let dest =
      match t.head with
      | Some h when h.used + o.size <= segment_bytes t -> Some h
      | _ ->
        (match t.head with Some h -> t.closed <- h :: t.closed | None -> ());
        t.head <- None;
        open_segment t
    in
    match dest with
    | None -> false
    | Some h ->
      charge t (Sim.Cost_model.copy_cost model ~bytes:o.size);
      let addr = Frame.to_addr h.base + h.used in
      h.used <- h.used + o.size;
      h.live_bytes <- h.live_bytes + o.size;
      h.objects <- o :: h.objects;
      o.addr <- addr;
      true
  in
  List.iter
    (fun seg ->
      t.closed <- List.filter (fun s -> s != seg) t.closed;
      let rec move : obj list -> obj list = function
        | [] -> []
        | o :: rest when not o.live -> move rest
        | o :: rest -> if evacuate o then move rest else o :: rest
      in
      let leftovers = move seg.objects in
      if leftovers = [] then begin
        Extent_alloc.free t.backing ~first:seg.base ~frames:t.segment_frames;
        Sim.Stats.incr (Physmem.Phys_mem.stats t.mem) "log_segment_clean";
        incr reclaimed
      end
      else begin
        seg.objects <- leftovers;
        seg.live_bytes <- List.fold_left (fun acc o -> acc + o.size) 0 leftovers;
        t.closed <- seg :: t.closed
      end)
    victims;
  !reclaimed

let addr_of t h =
  match Hashtbl.find_opt t.objects h with
  | Some o when o.live -> o.addr
  | _ -> raise Not_found

let size_of t h =
  match Hashtbl.find_opt t.objects h with
  | Some o when o.live -> o.size
  | _ -> raise Not_found

let live_bytes t = t.live

let footprint_bytes t =
  let n = List.length t.closed + (match t.head with Some _ -> 1 | None -> 0) in
  n * segment_bytes t

let segment_count t = List.length t.closed + (match t.head with Some _ -> 1 | None -> 0)

let utilization t =
  let fp = footprint_bytes t in
  if fp = 0 then 0.0 else float_of_int t.live /. float_of_int fp
