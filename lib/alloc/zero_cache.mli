(** Per-order cache of pre-zeroed frames in front of {!Physmem.Zero_engine}.

    The PM file-system literature's standard fast path: keep a pool of
    frames zeroed during idle time so that allocation-time handout is one
    queue pop (the cost model's [zero_cache_pop]) instead of a linear
    memset. Fault and file-extend paths try {!take} first and fall back
    to on-demand zeroing when the background engine hasn't kept up; the
    "zero_cache_hit" / "zero_cache_miss" counters expose the hit rate. *)

type t

val create : mem:Physmem.Phys_mem.t -> engine:Physmem.Zero_engine.t -> ?max_order:int -> unit -> t
(** Queues for block orders 0..[max_order] (default 4). *)

val take : t -> order:int -> Physmem.Frame.t option
(** Pop a pre-zeroed block of 2^[order] frames. On a hit charges
    [zero_cache_pop] and bumps "zero_cache_hit"; on a miss (empty queue
    or order out of range) bumps "zero_cache_miss" and returns [None] —
    the caller falls back to eager zeroing. The ["zero_cache_empty"]
    fault-injection site forces a miss. *)

val put : t -> order:int -> Physmem.Frame.t -> unit
(** Stash an already-zeroed block for later handout (no charge — the
    zeroing was paid for wherever the block came from). *)

val refill : t -> budget_frames:int -> int
(** Run the background engine for up to [budget_frames] frames and drain
    everything it has zeroed into the order-0 queue. Returns the number
    of frames zeroed this step. Call from idle/housekeeping paths. *)

val available : t -> order:int -> int

val depth : t -> int
(** Cached frames across all orders — the true level of the
    "zero_cache_depth" gauge, used to re-baseline it after a crash. *)
