type t = {
  mem : Physmem.Phys_mem.t;
  first : Physmem.Frame.t;
  count : int;
  bits : Bytes.t; (* 1 bit per frame; 1 = allocated *)
  mutable free : int;
  mutable next : int; (* next-fit cursor, index relative to [first] *)
}

let create ~mem ~first ~count =
  if count <= 0 then invalid_arg "Bitmap_alloc.create: empty range";
  { mem; first; count; bits = Bytes.make ((count + 7) / 8) '\000'; free = count; next = 0 }

let get t i = Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i v =
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bits (i lsr 3) (Char.chr byte)

let charge t c = Sim.Clock.charge (Physmem.Phys_mem.clock t.mem) c

(* Cheap per-word scan cost: bitmap search is fast but not free. *)
let scan_cost frames = 2 + (frames / 64)

let run_free_at t i count =
  let rec loop j = if j >= count then true else if get t (i + j) then false else loop (j + 1) in
  i + count <= t.count && loop 0

let alloc_contig t ~count =
  if count <= 0 then invalid_arg "Bitmap_alloc.alloc_contig: non-positive count";
  if count > t.free then None
  else begin
    let found = ref None in
    let scanned = ref 0 in
    let i = ref t.next in
    (* Next-fit from the cursor; the budget bounds the scan to two full
       passes, which covers every window even when the cursor sits inside
       the last [count] frames (where a naive wrap test never terminates). *)
    let budget = ref (2 * t.count) in
    while !found = None && !budget > 0 do
      if !i + count > t.count then begin
        budget := !budget - (t.count - !i) - 1;
        i := 0
      end
      else if run_free_at t !i count then found := Some !i
      else begin
        (* Skip past the first allocated frame in the window. *)
        let rec skip j = if j >= !i + count then j else if get t j then j + 1 else skip (j + 1) in
        let next_i = skip !i in
        scanned := !scanned + (next_i - !i);
        budget := !budget - (next_i - !i);
        i := next_i
      end
    done;
    charge t (scan_cost (!scanned + count));
    match !found with
    | None -> None
    | Some idx ->
      for j = idx to idx + count - 1 do
        set t j true
      done;
      t.free <- t.free - count;
      t.next <- (if idx + count >= t.count then 0 else idx + count);
      Some (t.first + idx)
  end

let free_range t ~first ~count =
  let idx = first - t.first in
  if idx < 0 || count <= 0 || idx + count > t.count then
    invalid_arg "Bitmap_alloc.free_range: out of range";
  for j = idx to idx + count - 1 do
    if not (get t j) then invalid_arg "Bitmap_alloc.free_range: double free";
    set t j false
  done;
  charge t (scan_cost count);
  t.free <- t.free + count

let is_free t pfn =
  let idx = pfn - t.first in
  idx >= 0 && idx < t.count && not (get t idx)

let free_frames t = t.free
let total_frames t = t.count
let utilization t = float_of_int (t.count - t.free) /. float_of_int t.count

let largest_free_run t =
  let best = ref 0 and cur = ref 0 in
  for i = 0 to t.count - 1 do
    if get t i then cur := 0
    else begin
      incr cur;
      if !cur > !best then best := !cur
    end
  done;
  !best

let metadata_bytes t = (t.count + 7) / 8
