module Frame = Physmem.Frame

type slab = {
  base : Frame.t;
  mutable free_list : int list; (* object addresses free in this slab *)
  mutable live : int;
}

type cache = {
  mem : Physmem.Phys_mem.t;
  backing : Buddy.t;
  name : string;
  obj_bytes : int;
  slab_frames : int;
  objs_per_slab : int;
  slabs : (Frame.t, slab) Hashtbl.t;
  (* Slabs with at least one free object, by base frame. *)
  mutable partial : Frame.t list;
  mutable live : int;
}

let create_cache ~mem ~backing ~name ~obj_bytes ?slab_frames () =
  if obj_bytes <= 0 then invalid_arg "Slab.create_cache: non-positive object size";
  let obj_bytes = Sim.Units.round_up obj_bytes ~align:64 in
  let default_frames =
    let wanted = Sim.Units.pages_of_bytes (8 * obj_bytes) in
    1 lsl Sim.Units.log2_ceil (max 1 wanted)
  in
  let slab_frames = match slab_frames with Some f -> f | None -> default_frames in
  if not (Sim.Units.is_power_of_two slab_frames) then
    invalid_arg "Slab.create_cache: slab_frames must be a power of two";
  if Sim.Units.log2_ceil slab_frames > Buddy.max_order backing then
    invalid_arg "Slab.create_cache: slab larger than buddy max order";
  let slab_bytes = slab_frames * Sim.Units.page_size in
  if obj_bytes > slab_bytes then invalid_arg "Slab.create_cache: object larger than slab";
  {
    mem;
    backing;
    name;
    obj_bytes;
    slab_frames;
    objs_per_slab = slab_bytes / obj_bytes;
    slabs = Hashtbl.create 16;
    partial = [];
    live = 0;
  }

let name c = c.name
let obj_bytes c = c.obj_bytes

let charge c n = Sim.Clock.charge (Physmem.Phys_mem.clock c.mem) n

let grow c =
  match Buddy.alloc c.backing ~order:(Sim.Units.log2_ceil c.slab_frames) with
  | None -> None
  | Some base ->
    let addr0 = Frame.to_addr base in
    let free_list =
      List.init c.objs_per_slab (fun i -> addr0 + (i * c.obj_bytes))
    in
    let slab = { base; free_list; live = 0 } in
    Hashtbl.replace c.slabs base slab;
    c.partial <- base :: c.partial;
    Sim.Stats.incr (Physmem.Phys_mem.stats c.mem) "slab_grow";
    Some slab

let alloc c =
  charge c 30;
  let slab =
    match c.partial with
    | base :: _ -> Some (Hashtbl.find c.slabs base)
    | [] -> grow c
  in
  match slab with
  | None -> None
  | Some slab -> (
    match slab.free_list with
    | [] -> assert false (* partial list invariant *)
    | addr :: rest ->
      slab.free_list <- rest;
      slab.live <- slab.live + 1;
      c.live <- c.live + 1;
      if rest = [] then c.partial <- List.filter (fun b -> b <> slab.base) c.partial;
      Some addr)

let slab_of_addr c addr =
  let slab_bytes = c.slab_frames * Sim.Units.page_size in
  let base = Frame.of_addr (Sim.Units.round_down addr ~align:slab_bytes) in
  Hashtbl.find_opt c.slabs base

let free c addr =
  charge c 30;
  match slab_of_addr c addr with
  | None -> invalid_arg "Slab.free: address not in any slab of this cache"
  | Some slab ->
    let off = addr - Frame.to_addr slab.base in
    if off mod c.obj_bytes <> 0 then invalid_arg "Slab.free: misaligned object address";
    if List.mem addr slab.free_list then invalid_arg "Slab.free: double free";
    let was_full = slab.free_list = [] in
    slab.free_list <- addr :: slab.free_list;
    slab.live <- slab.live - 1;
    c.live <- c.live - 1;
    if slab.live = 0 then begin
      (* Fully free slab: return it to the buddy allocator. *)
      Hashtbl.remove c.slabs slab.base;
      c.partial <- List.filter (fun b -> b <> slab.base) c.partial;
      Buddy.free c.backing slab.base ~order:(Sim.Units.log2_ceil c.slab_frames);
      Sim.Stats.incr (Physmem.Phys_mem.stats c.mem) "slab_reap"
    end
    else if was_full then c.partial <- slab.base :: c.partial

let live_objects c = c.live
let slab_count c = Hashtbl.length c.slabs

let footprint_bytes c = slab_count c * c.slab_frames * Sim.Units.page_size
let wasted_bytes c = footprint_bytes c - (c.live * c.obj_bytes)
