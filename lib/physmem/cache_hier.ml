type level_cfg = { name : string; size_bytes : int; ways : int; latency : int }

let default_l1 = { name = "l1"; size_bytes = 32 * 1024; ways = 8; latency = 4 }
let default_l2 = { name = "l2"; size_bytes = 256 * 1024; ways = 8; latency = 14 }
let default_llc = { name = "llc"; size_bytes = 8 * 1024 * 1024; ways = 16; latency = 42 }

let line_bytes = 64

type line = { tag : int; mutable dirty : bool }

type level = {
  cfg : level_cfg;
  sets : int;
  data : line list array; (* MRU first *)
}

type t = { clock : Sim.Clock.t; stats : Sim.Stats.t; levels : level array }

let mk_level cfg =
  let sets = max 1 (cfg.size_bytes / line_bytes / cfg.ways) in
  if not (Sim.Units.is_power_of_two sets) then
    invalid_arg ("Cache_hier: set count not a power of two for " ^ cfg.name);
  { cfg; sets; data = Array.make sets [] }

let create ~clock ~stats ?(levels = [ default_l1; default_l2; default_llc ]) () =
  if levels = [] then invalid_arg "Cache_hier.create: no levels";
  { clock; stats; levels = Array.of_list (List.map mk_level levels) }

type outcome = Hit of int | Miss

let set_of lvl tag = tag land (lvl.sets - 1)

(* Install a line at the MRU slot; return a dirty victim if one spills. *)
let install lvl ~tag ~dirty =
  let s = set_of lvl tag in
  let without = List.filter (fun l -> l.tag <> tag) lvl.data.(s) in
  let victim =
    if List.length without >= lvl.cfg.ways then
      match List.rev without with v :: _ -> Some v | [] -> None
    else None
  in
  let kept =
    match victim with
    | Some v -> List.filter (fun l -> l != v) without
    | None -> without
  in
  lvl.data.(s) <- { tag; dirty } :: kept;
  match victim with Some v when v.dirty -> Some v.tag | _ -> None

let probe lvl tag =
  let s = set_of lvl tag in
  match List.find_opt (fun l -> l.tag = tag) lvl.data.(s) with
  | Some l ->
    (* Move to MRU. *)
    lvl.data.(s) <- l :: List.filter (fun x -> x != l) lvl.data.(s);
    Some l
  | None -> None

let access t ~addr ~write =
  let tag = addr / line_bytes in
  let n = Array.length t.levels in
  let rec search i =
    if i >= n then Miss
    else
      match probe t.levels.(i) tag with
      | Some l ->
        if write then l.dirty <- true;
        Hit i
      | None -> search (i + 1)
  in
  let outcome = search 0 in
  (match outcome with
  | Hit i ->
    Sim.Clock.charge t.clock t.levels.(i).cfg.latency;
    Sim.Stats.incr t.stats (t.levels.(i).cfg.name ^ "_hit");
    (* Fill the line into the nearer levels. *)
    for j = 0 to i - 1 do
      ignore (install t.levels.(j) ~tag ~dirty:write)
    done
  | Miss ->
    (* Paid the full lookup chain; the caller charges memory. *)
    Array.iter (fun lvl -> Sim.Clock.charge t.clock lvl.cfg.latency) t.levels;
    Sim.Stats.incr t.stats (t.levels.(n - 1).cfg.name ^ "_miss");
    Array.iter
      (fun lvl ->
        match install lvl ~tag ~dirty:write with
        | Some _victim -> Sim.Stats.incr t.stats "cache_writeback"
        | None -> ())
      t.levels);
  outcome

let flush t = Array.iter (fun lvl -> Array.fill lvl.data 0 lvl.sets []) t.levels

let line_count t =
  Array.fold_left
    (fun acc lvl -> acc + Array.fold_left (fun a l -> a + List.length l) 0 lvl.data)
    0 t.levels
