type t = { mem : Phys_mem.t; dirty : Frame.t Queue.t; zeroed : Frame.t Queue.t }

(* One erase command is modelled as a fixed device latency, ~1 us: the point
   of E9 is that it does not scale with the extent size. *)
let bulk_erase_cycles = 2000

let create mem = { mem; dirty = Queue.create (); zeroed = Queue.create () }
let put_dirty t frames = List.iter (fun f -> Queue.add f t.dirty) frames
let take_zeroed t = Queue.take_opt t.zeroed

let pspan t name f = Sim.Trace.prof_span (Phys_mem.trace t.mem) name f

let eager_zero t pfn = pspan t "zeroing" @@ fun () -> Phys_mem.zero_frame t.mem pfn

let background_step t ~budget_frames =
  pspan t "background_zero" @@ fun () ->
  let rec loop n =
    if n >= budget_frames then n
    else
      match Queue.take_opt t.dirty with
      | None -> n
      | Some pfn ->
        Phys_mem.zero_frame t.mem pfn;
        Queue.add pfn t.zeroed;
        loop (n + 1)
  in
  loop 0

let bulk_erase t ~first ~count =
  if count < 0 then invalid_arg "Zero_engine.bulk_erase: negative count";
  (* The device clears contents internally (e.g. by dropping a media
     encryption key), so no per-byte CPU cost is charged — only the fixed
     command latency below. *)
  for pfn = first to first + count - 1 do
    if Phys_mem.valid_frame t.mem pfn then Phys_mem.discard_frame t.mem pfn
  done;
  Sim.Clock.charge (Phys_mem.clock t.mem) bulk_erase_cycles;
  Sim.Stats.incr (Phys_mem.stats t.mem) "bulk_erase_cmds"

let pending t = Queue.length t.dirty
let available t = Queue.length t.zeroed
