let fence_cycles = 100

type t = {
  mem : Phys_mem.t;
  unflushed : (int, unit) Hashtbl.t;
  (* Last flushed 64-byte image of every line ever flushed: what the
     media holds. Unflushed stores live only in the (volatile) cache
     hierarchy, so a crash reverts their lines to this image. *)
  durable : (int, string) Hashtbl.t;
}

let create mem = { mem; unflushed = Hashtbl.create 64; durable = Hashtbl.create 64 }

let line_of addr = addr / 64

let write_persistent t ~addr s =
  Phys_mem.write t.mem ~addr s;
  let len = String.length s in
  if len > 0 then
    for line = line_of addr to line_of (addr + len - 1) do
      Hashtbl.replace t.unflushed line ()
    done

let snapshot_line t line =
  let addr = line * 64 in
  if Phys_mem.valid_frame t.mem (Frame.of_addr addr) then
    Hashtbl.replace t.durable line (Bytes.to_string (Phys_mem.read t.mem ~addr ~len:64))

let flush t ~addr ~len =
  if len > 0 then begin
    let first = line_of addr and last = line_of (addr + len - 1) in
    let model = Sim.Clock.model (Phys_mem.clock t.mem) in
    for line = first to last do
      if Hashtbl.mem t.unflushed line then begin
        Hashtbl.remove t.unflushed line;
        snapshot_line t line;
        Sim.Clock.charge (Phys_mem.clock t.mem) model.Sim.Cost_model.mem_ref_nvm_write;
        Sim.Stats.incr (Phys_mem.stats t.mem) "clwb"
      end
    done
  end

let fence t =
  Sim.Clock.charge (Phys_mem.clock t.mem) fence_cycles;
  Sim.Stats.incr (Phys_mem.stats t.mem) "sfence"

let unflushed_lines t = Hashtbl.length t.unflushed

let crash t =
  (* Unflushed NVM lines were still in the volatile cache hierarchy:
     the media reverts to the last flushed image (zeros if never
     flushed). *)
  Hashtbl.iter
    (fun line () ->
      let addr = line * 64 in
      if Phys_mem.valid_frame t.mem (Frame.of_addr addr) then begin
        Phys_mem.discard_range t.mem ~addr ~len:64;
        match Hashtbl.find_opt t.durable line with
        | Some image -> Phys_mem.restore_range t.mem ~addr image
        | None -> ()
      end)
    t.unflushed;
  Hashtbl.reset t.unflushed;
  Phys_mem.crash t.mem

let mem t = t.mem
