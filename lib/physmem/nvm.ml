let fence_cycles = 100

type t = {
  mem : Phys_mem.t;
  unflushed : (int, unit) Hashtbl.t;
  (* Last flushed 64-byte image of every line ever flushed: what the
     media holds. Unflushed stores live only in the (volatile) cache
     hierarchy, so a crash reverts their lines to this image. *)
  durable : (int, string) Hashtbl.t;
}

let create mem = { mem; unflushed = Hashtbl.create 64; durable = Hashtbl.create 64 }

let line_of addr = addr / 64

let write_persistent t ~addr s =
  Phys_mem.write t.mem ~addr s;
  let len = String.length s in
  if len > 0 then
    for line = line_of addr to line_of (addr + len - 1) do
      Hashtbl.replace t.unflushed line ()
    done

let snapshot_line t line =
  let addr = line * 64 in
  if Phys_mem.valid_frame t.mem (Frame.of_addr addr) then
    Hashtbl.replace t.durable line (Bytes.to_string (Phys_mem.read t.mem ~addr ~len:64))

let faults t = Sim.Trace.faults (Phys_mem.trace t.mem)

(* An injected media fault: flip one bit of the just-snapshotted durable
   line image, on the media and in the snapshot, so the corruption both
   is live immediately and survives a crash. *)
let corrupt_line t plane line =
  match Hashtbl.find_opt t.durable line with
  | None -> ()
  | Some image ->
    let i = Sim.Fault_inject.rand_int plane (String.length image) in
    let bit = Sim.Fault_inject.rand_int plane 8 in
    let b = Bytes.of_string image in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    let image = Bytes.to_string b in
    Hashtbl.replace t.durable line image;
    Phys_mem.restore_range t.mem ~addr:(line * 64) image

let flush t ~addr ~len =
  if len > 0 then begin
    let plane = faults t in
    let first = line_of addr and last = line_of (addr + len - 1) in
    (* Torn line: the first dirty line of this flush silently stays in the
       cache hierarchy — a later crash reverts it. *)
    let first =
      if Sim.Fault_inject.fires plane ~site:Sim.Fault_inject.site_nvm_torn_line then first + 1
      else first
    in
    let model = Sim.Clock.model (Phys_mem.clock t.mem) in
    for line = first to last do
      if Hashtbl.mem t.unflushed line then begin
        Hashtbl.remove t.unflushed line;
        snapshot_line t line;
        if Sim.Fault_inject.fires plane ~site:Sim.Fault_inject.site_nvm_bit_flip then
          corrupt_line t plane line;
        Sim.Clock.charge (Phys_mem.clock t.mem) model.Sim.Cost_model.mem_ref_nvm_write;
        Sim.Stats.incr (Phys_mem.stats t.mem) "clwb"
      end
    done;
    (* One durable-step boundary per clwb batch: power can fail here. *)
    if Sim.Fault_inject.fires plane ~site:Sim.Fault_inject.site_durable_step then
      raise (Sim.Fault_inject.Injected_crash "clwb")
  end

let fence t =
  Sim.Clock.charge (Phys_mem.clock t.mem) fence_cycles;
  Sim.Stats.incr (Phys_mem.stats t.mem) "sfence";
  if Sim.Fault_inject.fires (faults t) ~site:Sim.Fault_inject.site_durable_step then
    raise (Sim.Fault_inject.Injected_crash "sfence")

let unflushed_lines t = Hashtbl.length t.unflushed

let crash t =
  (* Unflushed NVM lines were still in the volatile cache hierarchy:
     the media reverts to the last flushed image (zeros if never
     flushed). *)
  Hashtbl.iter
    (fun line () ->
      let addr = line * 64 in
      if Phys_mem.valid_frame t.mem (Frame.of_addr addr) then begin
        Phys_mem.discard_range t.mem ~addr ~len:64;
        match Hashtbl.find_opt t.durable line with
        | Some image -> Phys_mem.restore_range t.mem ~addr image
        | None -> ()
      end)
    t.unflushed;
  Hashtbl.reset t.unflushed;
  Phys_mem.crash t.mem

let mem t = t.mem
