type region = Dram | Nvm

(* Contents are sparse: a 4 KiB host buffer is materialized for a frame
   on its first nonzero write and dropped when it becomes all-zero
   again, so terabyte machines cost nothing until touched. *)
type frame_store = { data : Bytes.t; mutable nonzero : int }

type t = {
  clock : Sim.Clock.t;
  stats : Sim.Stats.t;
  trace : Sim.Trace.t;
  dram_frames : int;
  nvm_frames : int;
  numa_nodes : int;
  mutable accessor_node : int;
  contents : (int, frame_store) Hashtbl.t;
  mutable cache : Cache_hier.t option;
}

let create ~clock ~stats ?(trace = Sim.Trace.disabled) ~dram_bytes ~nvm_bytes
    ?(numa_nodes = 1) () =
  if not (Sim.Units.is_aligned dram_bytes ~align:Sim.Units.page_size) then
    invalid_arg "Phys_mem.create: dram_bytes not page-aligned";
  if not (Sim.Units.is_aligned nvm_bytes ~align:Sim.Units.page_size) then
    invalid_arg "Phys_mem.create: nvm_bytes not page-aligned";
  if dram_bytes + nvm_bytes <= 0 then invalid_arg "Phys_mem.create: empty machine";
  if numa_nodes <= 0 then invalid_arg "Phys_mem.create: numa_nodes must be positive";
  {
    clock;
    stats;
    trace;
    dram_frames = dram_bytes / Sim.Units.page_size;
    nvm_frames = nvm_bytes / Sim.Units.page_size;
    numa_nodes;
    accessor_node = 0;
    contents = Hashtbl.create 1024;
    cache = None;
  }

let clock t = t.clock
let stats t = t.stats
let trace t = t.trace
let attach_cache t c = t.cache <- Some c
let detach_cache t = t.cache <- None
let total_frames t = t.dram_frames + t.nvm_frames
let dram_frames t = t.dram_frames
let nvm_frames t = t.nvm_frames
let valid_frame t pfn = pfn >= 0 && pfn < total_frames t

let region_of_frame t pfn =
  if not (valid_frame t pfn) then invalid_arg "Phys_mem.region_of_frame: bad frame";
  if pfn < t.dram_frames then Dram else Nvm

let numa_nodes t = t.numa_nodes

(* DRAM and NVM DIMMs are each partitioned contiguously across the NUMA
   domains, so every node owns a slice of both media. *)
let node_of_frame t pfn =
  if not (valid_frame t pfn) then invalid_arg "Phys_mem.node_of_frame: bad frame";
  if t.numa_nodes = 1 then 0
  else if pfn < t.dram_frames then pfn * t.numa_nodes / t.dram_frames
  else (pfn - t.dram_frames) * t.numa_nodes / t.nvm_frames

let accessor_node t = t.accessor_node

let set_accessor_node t node =
  if node < 0 || node >= t.numa_nodes then invalid_arg "Phys_mem.set_accessor_node: bad node";
  t.accessor_node <- node

(* Flat (cache-less) memory charge for [lines] cache lines; remote-node
   references pay the interconnect-hop price. *)
let charge_access t ~addr ~lines ~write =
  let model = Sim.Clock.model t.clock in
  let pfn = Frame.of_addr addr in
  let home = node_of_frame t pfn in
  let remote = home <> t.accessor_node in
  if remote then Sim.Stats.add t.stats "numa_remote_ref" lines;
  let causal = Sim.Trace.causal t.trace in
  let req =
    if remote && Sim.Causal.enabled causal then begin
      Sim.Causal.record_numa causal ~src_node:t.accessor_node ~dst_node:home ~lines;
      Sim.Causal.emit causal
        ~core:(Sim.Trace.current_core t.trace)
        ~op:"numa_req"
        ~detail:(Printf.sprintf "node%d" home)
        ()
    end
    else -1
  in
  let m = model in
  let cost =
    match (region_of_frame t pfn, write, remote) with
    | Dram, _, false ->
      Sim.Stats.add t.stats (if write then "dram_write" else "dram_read") lines;
      m.Sim.Cost_model.mem_ref_dram
    | Dram, _, true ->
      Sim.Stats.add t.stats (if write then "dram_write" else "dram_read") lines;
      m.Sim.Cost_model.mem_ref_dram_remote
    | Nvm, false, false ->
      Sim.Stats.add t.stats "nvm_read" lines;
      m.Sim.Cost_model.mem_ref_nvm_read
    | Nvm, false, true ->
      Sim.Stats.add t.stats "nvm_read" lines;
      m.Sim.Cost_model.mem_ref_nvm_read_remote
    | Nvm, true, false ->
      Sim.Stats.add t.stats "nvm_write" lines;
      m.Sim.Cost_model.mem_ref_nvm_write
    | Nvm, true, true ->
      Sim.Stats.add t.stats "nvm_write" lines;
      m.Sim.Cost_model.mem_ref_nvm_write_remote
  in
  Sim.Clock.charge t.clock (lines * cost);
  if req >= 0 then begin
    (* The home node's service point lives off-core (core -1): it joins
       the graph through this edge but never program-order chains. *)
    let serve =
      Sim.Causal.emit causal ~core:(-1) ~op:"numa_serve"
        ~detail:(Printf.sprintf "node%d" home) ()
    in
    Sim.Causal.link causal ~src:req ~dst:serve ~kind:"numa";
    Sim.Causal.attribute causal
      ~core:(Sim.Trace.current_core t.trace)
      ~share:Sim.Causal.Numa_remote ~cycles:(lines * cost)
  end

let lines_covered ~addr ~len =
  if len <= 0 then 0
  else
    let first = addr / 64 and last = (addr + len - 1) / 64 in
    last - first + 1

let frame_table t pfn = Hashtbl.find_opt t.contents pfn

let frame_table_create t pfn =
  match Hashtbl.find_opt t.contents pfn with
  | Some fr -> fr
  | None ->
    let fr = { data = Bytes.make Sim.Units.page_size '\000'; nonzero = 0 } in
    Hashtbl.add t.contents pfn fr;
    fr

let peek_byte t addr =
  match frame_table t (Frame.of_addr addr) with
  | None -> '\000'
  | Some fr -> Bytes.get fr.data (Frame.offset_in_frame addr)

let poke_byte t addr c =
  let pfn = Frame.of_addr addr in
  if c = '\000' then (
    match frame_table t pfn with
    | None -> ()
    | Some fr ->
      let off = Frame.offset_in_frame addr in
      if Bytes.get fr.data off <> '\000' then begin
        Bytes.set fr.data off '\000';
        fr.nonzero <- fr.nonzero - 1;
        if fr.nonzero = 0 then Hashtbl.remove t.contents pfn
      end)
  else begin
    let fr = frame_table_create t pfn in
    let off = Frame.offset_in_frame addr in
    if Bytes.get fr.data off = '\000' then fr.nonzero <- fr.nonzero + 1;
    Bytes.set fr.data off c
  end

let check_addr t addr len =
  if addr < 0 || len < 0 || Frame.of_addr (addr + max 0 (len - 1)) >= total_frames t then
    invalid_arg "Phys_mem: address out of range"

(* One demand access: through the cache hierarchy when attached. *)
let charge_demand t ~addr ~write =
  match t.cache with
  | None -> charge_access t ~addr ~lines:1 ~write
  | Some cache -> (
    match Cache_hier.access cache ~addr ~write with
    | Cache_hier.Hit _ -> () (* the cache charged its own latency *)
    | Cache_hier.Miss -> charge_access t ~addr ~lines:1 ~write)

let read_byte t addr =
  check_addr t addr 1;
  charge_demand t ~addr ~write:false;
  peek_byte t addr

let write_byte t addr c =
  check_addr t addr 1;
  charge_demand t ~addr ~write:true;
  poke_byte t addr c

(* Bulk accesses stream: one full-latency reference for the first line,
   then sequential-bandwidth cost for the rest (hardware prefetchers hide
   the per-line latency). Single-byte accesses pay the full latency. *)
let charge_bulk t ~addr ~len ~write =
  let lines = lines_covered ~addr ~len in
  charge_access t ~addr ~lines:1 ~write;
  if lines > 1 then begin
    let model = Sim.Clock.model t.clock in
    Sim.Clock.charge t.clock (Sim.Cost_model.copy_cost model ~bytes:len);
    Sim.Stats.add t.stats (if write then "stream_write_lines" else "stream_read_lines") (lines - 1)
  end

(* Blit frame-sized chunks instead of byte-at-a-time host work. *)
let read_raw t ~addr ~len buf =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Frame.of_addr a in
    let off = Frame.offset_in_frame a in
    let run = min (len - !pos) (Sim.Units.page_size - off) in
    (match frame_table t pfn with
    | Some fr -> Bytes.blit fr.data off buf !pos run
    | None -> Bytes.fill buf !pos run '\000');
    pos := !pos + run
  done

let read t ~addr ~len =
  check_addr t addr len;
  charge_bulk t ~addr ~len ~write:false;
  let buf = Bytes.create len in
  read_raw t ~addr ~len buf;
  buf

let peek t ~addr ~len =
  check_addr t addr len;
  let buf = Bytes.create len in
  read_raw t ~addr ~len buf;
  buf

let write t ~addr s =
  let len = String.length s in
  check_addr t addr len;
  charge_bulk t ~addr ~len ~write:true;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Frame.of_addr a in
    let off = Frame.offset_in_frame a in
    let run = min (len - !pos) (Sim.Units.page_size - off) in
    (* Fast path: count nonzero delta over the run once. *)
    let fr = frame_table_create t pfn in
    for i = 0 to run - 1 do
      let old = Bytes.get fr.data (off + i) and c = s.[!pos + i] in
      if old = '\000' && c <> '\000' then fr.nonzero <- fr.nonzero + 1
      else if old <> '\000' && c = '\000' then fr.nonzero <- fr.nonzero - 1
    done;
    Bytes.blit_string s !pos fr.data off run;
    if fr.nonzero = 0 then Hashtbl.remove t.contents pfn;
    pos := !pos + run
  done

let touch t addr =
  check_addr t addr 1;
  charge_demand t ~addr ~write:false

let zero_frame t pfn =
  if not (valid_frame t pfn) then invalid_arg "Phys_mem.zero_frame: bad frame";
  Hashtbl.remove t.contents pfn;
  let model = Sim.Clock.model t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.zero_cost model ~bytes:Sim.Units.page_size);
  Sim.Stats.add t.stats "bytes_zeroed" Sim.Units.page_size

let zero_range t ~addr ~len =
  check_addr t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Frame.of_addr a in
    let off = Frame.offset_in_frame a in
    let run = min (len - !pos) (Sim.Units.page_size - off) in
    (match frame_table t pfn with
    | Some fr ->
      let lost = ref 0 in
      for i = 0 to run - 1 do
        if Bytes.get fr.data (off + i) <> '\000' then incr lost
      done;
      Bytes.fill fr.data off run '\000';
      fr.nonzero <- fr.nonzero - !lost;
      if fr.nonzero = 0 then Hashtbl.remove t.contents pfn
    | None -> ());
    pos := !pos + run
  done;
  let model = Sim.Clock.model t.clock in
  Sim.Clock.charge t.clock (Sim.Cost_model.zero_cost model ~bytes:len);
  Sim.Stats.add t.stats "bytes_zeroed" len

let discard_frame t pfn =
  if not (valid_frame t pfn) then invalid_arg "Phys_mem.discard_frame: bad frame";
  Hashtbl.remove t.contents pfn

let discard_range t ~addr ~len =
  check_addr t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Frame.of_addr a in
    let off = Frame.offset_in_frame a in
    let run = min (len - !pos) (Sim.Units.page_size - off) in
    (match frame_table t pfn with
    | Some fr ->
      let lost = ref 0 in
      for i = 0 to run - 1 do
        if Bytes.get fr.data (off + i) <> '\000' then incr lost
      done;
      Bytes.fill fr.data off run '\000';
      fr.nonzero <- fr.nonzero - !lost;
      if fr.nonzero = 0 then Hashtbl.remove t.contents pfn
    | None -> ());
    pos := !pos + run
  done

let restore_range t ~addr s =
  check_addr t addr (String.length s);
  String.iteri (fun i c -> poke_byte t (addr + i) c) s

let frame_is_zero t pfn =
  match frame_table t pfn with None -> true | Some fr -> fr.nonzero = 0

let crash t =
  let doomed = ref [] in
  Hashtbl.iter (fun pfn _ -> if pfn < t.dram_frames then doomed := pfn :: !doomed) t.contents;
  List.iter (Hashtbl.remove t.contents) !doomed

let resident_bytes t = Hashtbl.fold (fun _ fr acc -> acc + fr.nonzero) t.contents 0
