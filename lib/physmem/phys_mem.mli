(** Simulated physical address space.

    The space is split into a DRAM region (frames [0 .. dram_frames-1]) and
    an NVM region above it, mirroring a machine with both DIMM types. Byte
    contents are stored sparsely: an address never written reads as zero,
    so terabyte spaces cost nothing until touched.

    Every access charges the shared {!Sim.Clock} one cache-line-granular
    memory reference priced by the region (DRAM vs NVM read/write), and
    bumps the "dram_read" / "nvm_write" / ... counters in the shared
    {!Sim.Stats}. *)

type t

type region = Dram | Nvm

val create :
  clock:Sim.Clock.t ->
  stats:Sim.Stats.t ->
  ?trace:Sim.Trace.t ->
  dram_bytes:int ->
  nvm_bytes:int ->
  ?numa_nodes:int ->
  unit ->
  t
(** Both sizes must be page-aligned and >= 0; total must be > 0. [trace]
    (default {!Sim.Trace.disabled}) is carried for components built on
    top of this memory (file system, fault handler) to record into.
    [numa_nodes] (default 1) partitions each medium's frames contiguously
    across that many NUMA domains; accesses from a different domain
    (see {!set_accessor_node}) pay the model's remote reference costs. *)

val clock : t -> Sim.Clock.t
val stats : t -> Sim.Stats.t

val trace : t -> Sim.Trace.t
(** The trace passed at creation; {!Sim.Trace.disabled} if none was. *)

val attach_cache : t -> Cache_hier.t -> unit
(** Route demand (single-line) accesses through a cache hierarchy: hits
    are charged at cache latency, misses at cache lookup + memory
    latency. Bulk {!read}/{!write} streaming bypasses the cache
    (non-temporal), as hardware streaming stores do. *)

val detach_cache : t -> unit

val total_frames : t -> int
val dram_frames : t -> int
val nvm_frames : t -> int

val region_of_frame : t -> Frame.t -> region
(** Raises [Invalid_argument] for an out-of-range frame. *)

val numa_nodes : t -> int

val node_of_frame : t -> Frame.t -> int
(** NUMA domain owning this frame (DRAM and NVM are each split
    contiguously across the domains). Raises [Invalid_argument] for an
    out-of-range frame. *)

val accessor_node : t -> int

val set_accessor_node : t -> int -> unit
(** Set the NUMA domain subsequent accesses originate from (the kernel
    points this at the running process's core before each access).
    References to frames owned by another domain charge the remote
    DRAM/NVM costs and bump "numa_remote_ref". *)

val valid_frame : t -> Frame.t -> bool

val read_byte : t -> int -> char
(** [read_byte t addr] charges one memory reference. *)

val write_byte : t -> int -> char -> unit

val read : t -> addr:int -> len:int -> bytes
(** Bulk read; charges one reference per 64-byte cache line covered. *)

val peek : t -> addr:int -> len:int -> bytes
(** Like {!read} but charges nothing. Only for host-side introspection
    (invariant checkers) and for stand-ins whose real implementation
    would not stream the bytes through the CPU — e.g. re-mapping a
    persistent index at recovery, where the data is reachable after
    O(extents) mapping work without being read. Workloads must never
    model data access with [peek]. *)

val write : t -> addr:int -> string -> unit
(** Bulk write; same charging rule as {!read}. *)

val touch : t -> int -> unit
(** Model a one-off access to [addr] (charges one reference) without
    reading or writing content. Used by workloads that only care about
    translation and access cost, not data. *)

val zero_frame : t -> Frame.t -> unit
(** Clear the frame's content and charge the model's zeroing cost for one
    page. Bumps "bytes_zeroed". *)

val zero_range : t -> addr:int -> len:int -> unit
(** Clear an arbitrary byte range, charging linear zeroing cost. *)

val frame_is_zero : t -> Frame.t -> bool
(** True iff no nonzero byte is currently stored in the frame. *)

val discard_frame : t -> Frame.t -> unit
(** Drop the frame's contents without charging any CPU cost. Only for
    modelling device-internal erasure (see {!Zero_engine.bulk_erase});
    ordinary zeroing must use {!zero_frame}. *)

val discard_range : t -> addr:int -> len:int -> unit
(** Drop a byte range's contents without charging any CPU cost. Only for
    modelling crash-time loss (torn cache lines). *)

val restore_range : t -> addr:int -> string -> unit
(** Overwrite a byte range without charging any CPU cost. Only for
    modelling crash-time media state (reverting torn lines to their last
    durable image). *)

val crash : t -> unit
(** Power failure: all DRAM contents vanish; NVM contents survive.
    Charges nothing (the machine is off). *)

val resident_bytes : t -> int
(** Number of distinct bytes currently stored (host-side bookkeeping, used
    by tests; not a simulated quantity). *)
